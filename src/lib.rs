//! # OSIRIS-rs
//!
//! A Rust reproduction of **"OSIRIS: Efficient and Consistent Recovery of
//! Compartmentalized Operating Systems"** (Bhat et al., DSN 2016): a
//! compartmentalized OS simulator whose core servers recover from crashes —
//! including *persistent* software faults — without runtime dependency
//! tracking, by restricting recovery to statically provable **safe recovery
//! windows**.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`checkpoint`] — undo-log in-memory checkpointing ([`Heap`], `PCell`,
//!   `PMap`, `PVec`, `PBuf`).
//! * [`core`] — the recovery framework: SEEPs, recovery windows, policies,
//!   reconciliation decisions.
//! * [`kernel`] — the deterministic microkernel substrate and the
//!   user-process host ([`Sys`], [`Host`], [`ProgramRegistry`]).
//! * [`servers`] — the five core servers (PM, VM, VFS, DS, RS) plus the
//!   disk driver, assembled as [`Os`].
//! * [`monolith`] — the monolithic baseline with the same syscall ABI.
//! * [`faults`] — EDFI-style fault injection and campaign tooling.
//! * [`workloads`] — the prototype test suite and Unixbench analogs.
//! * [`trace`] — the deterministic flight recorder (event ring, histograms,
//!   Chrome-trace export, post-mortem black box).
//! * [`metrics`] — the unified metrics registry (typed counter/gauge/
//!   histogram handles, Prometheus and JSON exposition).
//! * [`axiom`] — the authoritative control-plane log: hash-chained typed
//!   events, pure control-state reduction, whole-system replay, divergence
//!   bisection.
//!
//! # Quickstart
//!
//! ```
//! use osiris::{Host, Os, OsConfig, PolicyKind, ProgramRegistry};
//!
//! let mut registry = ProgramRegistry::new();
//! registry.register("hello", |sys| {
//!     let pid = sys.getpid().expect("PM answers");
//!     i32::from(pid.0 != 1)
//! });
//!
//! let os = Os::new(OsConfig::with_policy(PolicyKind::Enhanced));
//! let mut host = Host::new(os, registry);
//! let outcome = host.run("hello", &[]);
//! assert!(outcome.completed());
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use osiris_axiom as axiom;
pub use osiris_checkpoint as checkpoint;
pub use osiris_core as core;
pub use osiris_cothread as cothread;
pub use osiris_faults as faults;
pub use osiris_kernel as kernel;
pub use osiris_metrics as metrics;
pub use osiris_monolith as monolith;
pub use osiris_servers as servers;
pub use osiris_trace as trace;
pub use osiris_workloads as workloads;

pub use osiris_axiom::{AxiomConfig, AxiomEvent, AxiomLog, ControlState};
pub use osiris_checkpoint::Heap;
pub use osiris_core::{
    CrashContext, Enhanced, EscalationPolicy, EscalationStep, Naive, Pessimistic, PolicyKind,
    RecoveryAction, RecoveryPolicy, RecoveryWindow, RestartBudget, SeepClass, SeepMeta, Stateless,
};
pub use osiris_kernel::{
    install_quiet_panic_hook, Host, Instrumentation, OsEngine, ProgramRegistry, RunOutcome,
    ShutdownKind, Sys, WatchdogConfig,
};
pub use osiris_metrics::{MetricsConfig, MetricsHandle};
pub use osiris_monolith::Monolith;
pub use osiris_servers::{Os, OsConfig};
pub use osiris_trace::{TraceConfig, TraceEvent, TraceHandle};
