//! Long-running stress scenarios: sustained mixed workloads under rotating
//! fault load across *all* core servers, asserting the system-level
//! guarantees hold over time, not just per-incident.

use osiris::faults::PeriodicCrash;
use osiris::kernel::{FaultEffect, FaultHook, Probe};
use osiris::{
    AxiomConfig, AxiomEvent, EscalationPolicy, Host, Os, OsConfig, ProgramRegistry, RunOutcome,
    WatchdogConfig,
};

/// Injects fail-stop faults into a rotating set of components, each only
/// inside a consistently recoverable window, at a fixed interval.
struct RotatingCrash {
    targets: Vec<&'static str>,
    interval: u64,
    next_at: u64,
    cursor: usize,
    injected: u64,
}

impl RotatingCrash {
    fn new(targets: Vec<&'static str>, interval: u64) -> Self {
        RotatingCrash {
            targets,
            interval,
            next_at: interval,
            cursor: 0,
            injected: 0,
        }
    }
}

impl FaultHook for RotatingCrash {
    fn on_site(&mut self, probe: &Probe) -> FaultEffect {
        if probe.now >= self.next_at
            && probe.window_open
            && probe.replyable
            && probe.component == self.targets[self.cursor]
        {
            self.next_at = probe.now + self.interval;
            self.cursor = (self.cursor + 1) % self.targets.len();
            self.injected += 1;
            FaultEffect::Panic
        } else {
            FaultEffect::None
        }
    }
}

fn mixed_registry() -> ProgramRegistry {
    let mut registry = ProgramRegistry::new();
    registry.register("cmd", |sys| {
        use osiris::kernel::abi::OpenFlags;
        sys.set_retry_ecrash(true);
        let path = format!("/tmp/s{}", sys.pid().0);
        let fd = sys.open(&path, OpenFlags::RDWR_CREATE).unwrap();
        sys.write(fd, b"payload-payload").unwrap();
        sys.close(fd).unwrap();
        sys.ds_put(&format!("k{}", sys.pid().0), b"v").unwrap();
        let id = sys.mmap(2).unwrap();
        sys.munmap(id).unwrap();
        sys.unlink(&path).unwrap();
        0
    });
    registry.register("main", |sys| {
        sys.set_retry_ecrash(true);
        for round in 0..30 {
            let child = sys.spawn("cmd", &[]).unwrap();
            assert_eq!(sys.waitpid(child).unwrap(), 0, "round {round}");
            sys.compute(2_000);
        }
        0
    });
    registry
}

#[test]
fn sustained_rotating_crashes_across_all_servers() {
    osiris::install_quiet_panic_hook();
    let mut os = Os::new(OsConfig {
        vm_frames: 2048,
        // These scenarios deliberately sustain crash-recover cycling far
        // past any sane restart budget: bench the escalation ladder, not
        // the servers.
        escalation: EscalationPolicy::unbounded(),
        ..Default::default()
    });
    os.set_fault_hook(Box::new(RotatingCrash::new(
        vec!["pm", "vfs", "vm", "ds"],
        40_000,
    )));
    let mut host = Host::new(os, mixed_registry());
    let outcome = host.run("main", &[]);
    let os = host.into_engine();
    assert!(
        matches!(outcome, RunOutcome::Completed { init_code: 0, .. }),
        "the workload must survive the rotating crash storm: {outcome:?}"
    );
    assert!(
        os.metrics().recovered_rollback >= 4,
        "the storm must actually have hit multiple servers: {}",
        os.metrics().recovered_rollback
    );
    assert_eq!(
        os.metrics().crashes,
        os.metrics().recovered_rollback + os.metrics().controlled_shutdowns,
        "every crash was either recovered or (never, here) shut down"
    );
    assert!(
        os.audit().is_empty(),
        "no inconsistency accumulates: {:?}",
        os.audit()
    );
    // Every core server but RS should have logged at least one recovery
    // across a long enough run (RS is excluded from the rotation).
    let recovered: Vec<&str> = os
        .reports()
        .iter()
        .filter(|r| r.recoveries > 0)
        .map(|r| r.name)
        .collect();
    assert!(
        recovered.len() >= 2,
        "recoveries spread across servers: {recovered:?}"
    );
}

/// Wedges a rotating set of components (fail-silent hang, no crash signal)
/// at a fixed interval, each only inside a consistently recoverable window.
struct RotatingHang {
    targets: Vec<&'static str>,
    interval: u64,
    next_at: u64,
    cursor: usize,
}

impl FaultHook for RotatingHang {
    fn on_site(&mut self, probe: &Probe) -> FaultEffect {
        if probe.now >= self.next_at
            && probe.window_open
            && probe.replyable
            && probe.component == self.targets[self.cursor]
        {
            self.next_at = probe.now + self.interval;
            self.cursor = (self.cursor + 1) % self.targets.len();
            FaultEffect::Hang
        } else {
            FaultEffect::None
        }
    }
}

/// A hang storm rotating across the core servers while recoveries are
/// continuously in flight: every wedge is detected by the virtual-time
/// watchdog (no crash signal exists), the workload completes, and the
/// retry machinery never amplifies — the axiom's sealed retry decisions
/// show at most `max_retries` grants per message, storm or not.
#[test]
fn hang_storm_during_recovery_does_not_amplify_retries() {
    osiris::install_quiet_panic_hook();
    let watchdog = WatchdogConfig::on();
    let mut os = Os::new(OsConfig {
        vm_frames: 2048,
        watchdog,
        axiom: AxiomConfig::on(),
        escalation: EscalationPolicy::unbounded(),
        ..Default::default()
    });
    os.set_fault_hook(Box::new(RotatingHang {
        targets: vec!["pm", "vfs", "vm", "ds"],
        interval: 1_200_000,
        next_at: 200_000,
        cursor: 0,
    }));
    let mut host = Host::new(os, mixed_registry());
    let outcome = host.run("main", &[]);
    let os = host.into_engine();
    assert!(
        matches!(outcome, RunOutcome::Completed { init_code: 0, .. }),
        "the workload must survive the hang storm: {outcome:?}"
    );
    let m = os.metrics();
    assert!(m.hangs >= 3, "the storm must actually wedge servers: {m:?}");
    assert!(
        m.wd_expired >= m.hangs,
        "every wedge must expire an armed deadline"
    );
    assert!(os.audit().is_empty(), "audit: {:?}", os.audit());

    // No retry amplification: the sealed decisions grant at most
    // `max_retries` attempts per message, and the aggregate counters agree.
    let mut grants_per_msg = std::collections::BTreeMap::new();
    for r in os.kernel().axiom().records() {
        if let AxiomEvent::RetryDecision {
            msg_id,
            granted: true,
            ..
        } = r.event
        {
            *grants_per_msg.entry(msg_id).or_insert(0u32) += 1;
        }
    }
    for (msg_id, grants) in &grants_per_msg {
        assert!(
            *grants <= watchdog.max_retries,
            "retry amplification on msg {msg_id}: {grants} grants"
        );
    }
    assert!(
        m.retries_granted <= u64::from(watchdog.max_retries) * m.wd_expired,
        "aggregate retry volume must stay within the per-expiry budget: {m:?}"
    );
}

#[test]
fn ds_crash_storm_preserves_every_acknowledged_write() {
    // Harsher variant of the kv example, as a regression test: every PUT
    // that was acknowledged must be readable afterwards, every crash-failed
    // PUT must have left nothing behind (error virtualization discards).
    osiris::install_quiet_panic_hook();
    let mut registry = ProgramRegistry::new();
    registry.register("main", |sys| {
        let mut acked = Vec::new();
        for i in 0..150u32 {
            let key = format!("k{i}");
            match sys.ds_put(&key, &i.to_le_bytes()) {
                Ok(()) => acked.push(i),
                Err(osiris::kernel::abi::Errno::ECRASH) => {
                    // Discarded: the key must NOT exist. (The probe read may
                    // itself hit the storm; only a *successful* read of the
                    // key disproves the discard.)
                    if let Ok(_v) = sys.ds_get(&key) {
                        return 2;
                    }
                }
                Err(_) => return 3,
            }
        }
        // Verification runs under the same ongoing storm: retry reads.
        sys.set_retry_ecrash(true);
        for i in &acked {
            let key = format!("k{i}");
            match sys.ds_get(&key) {
                Ok(v) if v == i.to_le_bytes() => {}
                _ => return 4,
            }
        }
        i32::from(acked.len() < 100) // the storm must not starve progress
    });
    let mut os = Os::new(OsConfig {
        vm_frames: 1024,
        escalation: EscalationPolicy::unbounded(),
        ..Default::default()
    });
    os.set_fault_hook(Box::new(PeriodicCrash::new("ds", 20_000)));
    let mut host = Host::new(os, registry);
    let outcome = host.run("main", &[]);
    let os = host.into_engine();
    assert!(
        matches!(outcome, RunOutcome::Completed { init_code: 0, .. }),
        "{outcome:?}"
    );
    assert!(os.metrics().recovered_rollback > 0);
    assert!(os.audit().is_empty());
}

#[test]
fn deep_process_trees_survive_pm_fault_load() {
    osiris::install_quiet_panic_hook();
    let mut registry = ProgramRegistry::new();
    registry.register("main", |sys| {
        sys.set_retry_ecrash(true);
        // A 3-deep process tree, several times, under PM fault load.
        for _ in 0..6 {
            let child = loop {
                match sys.fork_run(|c| {
                    c.set_retry_ecrash(true);
                    let gc = loop {
                        match c.fork_run(|g| g.getpid().map(|p| (p.0 % 7) as i32).unwrap_or(9)) {
                            Ok(p) => break p,
                            Err(osiris::kernel::abi::Errno::ECRASH) => continue,
                            Err(_) => return 8,
                        }
                    };
                    match c.waitpid(gc) {
                        Ok(code) if code < 7 => 0,
                        _ => 8,
                    }
                }) {
                    Ok(p) => break p,
                    Err(osiris::kernel::abi::Errno::ECRASH) => continue,
                    Err(_) => return 1,
                }
            };
            if sys.waitpid(child) != Ok(0) {
                return 1;
            }
        }
        0
    });
    let mut os = Os::new(OsConfig {
        vm_frames: 2048,
        escalation: EscalationPolicy::unbounded(),
        ..Default::default()
    });
    os.set_fault_hook(Box::new(PeriodicCrash::new("pm", 30_000)));
    let mut host = Host::new(os, registry);
    let outcome = host.run("main", &[]);
    let os = host.into_engine();
    assert!(
        matches!(outcome, RunOutcome::Completed { init_code: 0, .. }),
        "{outcome:?}"
    );
    assert!(os.audit().is_empty(), "{:?}", os.audit());
}
