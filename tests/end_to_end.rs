//! Workspace-level integration tests spanning every crate: full-OS runs,
//! engine parity, determinism, and policy behaviour.

use osiris::workloads::{build_testsuite, run_suite_on, run_suite_on_osiris};
use osiris::{Host, Monolith, Os, OsConfig, OsEngine, PolicyKind, ProgramRegistry, RunOutcome};

#[test]
fn suite_green_on_every_standard_policy_without_faults() {
    // With no faults injected, every policy must run the full suite clean:
    // recovery machinery must be invisible during normal operation.
    for policy in PolicyKind::STANDARD {
        let (outcome, os) = run_suite_on_osiris(policy);
        match outcome {
            RunOutcome::Completed { init_code, .. } => {
                assert_eq!(init_code, 0, "{policy}: {init_code} failing tests")
            }
            other => panic!("{policy}: suite did not complete: {other:?}"),
        }
        assert!(os.audit().is_empty(), "{policy}: audit {:?}", os.audit());
    }
}

#[test]
fn suite_green_on_monolith() {
    let (outcome, _) = run_suite_on(Monolith::new());
    match outcome {
        RunOutcome::Completed { init_code, .. } => assert_eq!(init_code, 0),
        other => panic!("monolith: {other:?}"),
    }
}

#[test]
fn runs_are_deterministic() {
    // Two identical runs must agree on virtual time and every per-component
    // counter — the fault-injection experiments rely on this.
    let run = || {
        let (outcome, os) = run_suite_on_osiris(PolicyKind::Enhanced);
        let reports: Vec<(String, u64, u64, u64)> = os
            .reports()
            .into_iter()
            .map(|r| (r.name.to_string(), r.cycles, r.messages, r.writes))
            .collect();
        (outcome, os.now(), reports)
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1, "virtual clock diverged");
    assert_eq!(a.2, b.2, "per-component counters diverged");
}

#[test]
fn microkernel_and_monolith_agree_on_results() {
    // The same program must compute identical results on both engines
    // (timing differs, semantics must not). The program folds everything it
    // observes — file contents, child exit codes, data-store state — into
    // its exit code.
    fn run_on<E: OsEngine>(engine: E) -> RunOutcome {
        let mut registry = ProgramRegistry::new();
        registry.register("main", |sys| {
            use osiris::kernel::abi::{OpenFlags, SeekFrom};
            let fd = sys.open("/tmp/x", OpenFlags::RDWR_CREATE).unwrap();
            sys.write(fd, b"abcdef").unwrap();
            sys.seek(fd, SeekFrom::Start(2)).unwrap();
            let part = sys.read(fd, 3).unwrap();
            sys.ds_put("result", &part).unwrap();
            let child = sys
                .fork_run(|c| i32::from(c.getpid().unwrap().0 > 1))
                .unwrap();
            let code = sys.waitpid(child).unwrap();
            let stored = sys.ds_get("result").unwrap();
            let mut acc = code;
            for b in stored {
                acc = acc.wrapping_mul(31).wrapping_add(i32::from(b));
            }
            acc & 0x7f
        });
        let mut host = Host::new(engine, registry);
        host.run("main", &[])
    }
    let a = run_on(Os::new(OsConfig::default()));
    let b = run_on(Monolith::new());
    match (&a, &b) {
        (
            RunOutcome::Completed { init_code: ca, .. },
            RunOutcome::Completed { init_code: cb, .. },
        ) => assert_eq!(ca, cb, "engines disagree"),
        other => panic!("unexpected outcomes: {other:?}"),
    }
}

#[test]
fn enhanced_policy_never_leaves_inconsistent_state() {
    // The paper's core claim, as an invariant: under the enhanced policy, a
    // single fail-stop fault anywhere in PM must never cause an
    // *uncontrolled kernel crash* and must never leave cross-component
    // state inconsistent. (Workload-level deadlocks — e.g. a test whose
    // failed `kill` orphans a blocked child — are still possible and are
    // what the paper's residual "crash" percentage counts.)
    use osiris::faults::{plan_faults, FaultModel, Injector, Recorder};
    use osiris::ShutdownKind;
    osiris::install_quiet_panic_hook();

    let recorder = Recorder::new();
    let handle = recorder.clone();
    let (_, _) = osiris::workloads::run_suite_with(
        OsConfig::with_policy(PolicyKind::Enhanced),
        Some(Box::new(recorder)),
    );
    let profile = handle.profile().restrict_to(&["pm"]);
    let plans = plan_faults(&profile, FaultModel::FailStop, 3);
    assert!(plans.len() > 10, "too few PM fault sites: {}", plans.len());

    // Persistent hot-site faults would trip the escalation ladder long
    // before the suite ends; this test is about the per-incident recovery
    // invariant, so let PM restart forever.
    let unbounded = || {
        let mut cfg = OsConfig::with_policy(PolicyKind::Enhanced);
        cfg.escalation = osiris::EscalationPolicy::unbounded();
        cfg
    };
    for plan in plans {
        let (outcome, os) =
            osiris::workloads::run_suite_with(unbounded(), Some(Box::new(Injector::new(&plan))));
        if let RunOutcome::Shutdown(kind) = &outcome {
            assert!(
                matches!(kind, ShutdownKind::Controlled(_)),
                "uncontrolled kernel crash on {:?}: {:?}",
                plan,
                kind
            );
        }
        if outcome.completed() {
            assert!(
                os.audit().is_empty(),
                "inconsistent state after {:?}: {:?}",
                plan,
                os.audit()
            );
        }
    }
}

#[test]
fn stateless_policy_loses_state_where_enhanced_does_not() {
    use osiris::faults::{FaultKind, FaultPlan, Injector, SiteId, SiteKindTag};
    osiris::install_quiet_panic_hook();
    // A persistent crash at PM's wait path: enhanced error-virtualizes it;
    // stateless resets the whole process table.
    let plan = FaultPlan {
        site: SiteId {
            component: "pm".into(),
            site: "pm.wait.entry".into(),
            kind: SiteKindTag::Block,
        },
        kind: FaultKind::Crash,
        transient: false,
    };
    let restart_forever = |policy: PolicyKind| {
        let mut cfg = OsConfig::with_policy(policy);
        cfg.escalation = osiris::EscalationPolicy::unbounded();
        cfg
    };
    let (enhanced, _) = osiris::workloads::run_suite_with(
        restart_forever(PolicyKind::Enhanced),
        Some(Box::new(Injector::new(&plan))),
    );
    // Enhanced completes (waits fail with E_CRASH but the system lives).
    match enhanced {
        RunOutcome::Completed { init_code, .. } => assert!(init_code > 0),
        other => panic!("enhanced should complete with failures: {other:?}"),
    }
    let (stateless, _) = osiris::workloads::run_suite_with(
        restart_forever(PolicyKind::Stateless),
        Some(Box::new(Injector::new(&plan))),
    );
    // Stateless loses the process table: the suite cannot finish cleanly.
    match stateless {
        RunOutcome::Completed { init_code, .. } => assert!(init_code != 0),
        RunOutcome::Hang(_) | RunOutcome::Shutdown(_) => {}
    }
}

#[test]
fn facade_reexports_are_usable() {
    // Compile-time check that the facade exposes the advertised surface.
    let _policy: osiris::PolicyKind = osiris::PolicyKind::Enhanced;
    let _heap = osiris::Heap::new("facade");
    let (registry, names) = build_testsuite();
    assert!(names.len() >= 89);
    assert!(registry.get("suite").is_some());
}
