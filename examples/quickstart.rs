//! Quickstart: boot the OSIRIS OS, run a workload, crash the Process
//! Manager mid-call, and watch the system recover with error
//! virtualization. The run is flight-recorded; a Chrome-trace JSON (open
//! it in `chrome://tracing` or <https://ui.perfetto.dev>) is written to
//! `target/quickstart_trace.json`, or to the path in `OSIRIS_TRACE_OUT`.
//! The kernel's metrics registry is exported alongside it as Prometheus
//! text and JSON (`target/quickstart_metrics.{prom,json}`, overridable via
//! `OSIRIS_METRICS_OUT`).
//!
//! ```text
//! cargo run --example quickstart
//! ```

use std::sync::atomic::{AtomicBool, Ordering};

use osiris::kernel::{FaultEffect, FaultHook, Probe};
use osiris::{Host, Os, OsConfig, PolicyKind, ProgramRegistry};

/// A single fail-stop fault in PM's fork path, fired once.
struct CrashForkOnce(AtomicBool);

impl FaultHook for CrashForkOnce {
    fn on_site(&mut self, probe: &Probe) -> FaultEffect {
        if probe.site == "pm.fork.validate" && !self.0.swap(true, Ordering::Relaxed) {
            println!(
                "[injector] firing a fail-stop fault at {}::{}",
                probe.component, probe.site
            );
            FaultEffect::Panic
        } else {
            FaultEffect::None
        }
    }
}

fn main() {
    osiris::install_quiet_panic_hook();

    let mut registry = ProgramRegistry::new();
    registry.register("worker", |sys| {
        // Some honest work: a file and a computation.
        let fd = sys
            .open("/tmp/out", osiris::kernel::abi::OpenFlags::CREATE)
            .unwrap();
        sys.write(fd, b"results").unwrap();
        sys.close(fd).unwrap();
        sys.compute(10_000);
        7
    });
    registry.register("main", |sys| {
        println!("[init] pid {} booted; spawning a worker...", sys.pid());
        let child = sys.spawn("worker", &[]).expect("spawn works");
        let code = sys.waitpid(child).expect("waitpid works");
        println!("[init] worker {child} exited with {code}");

        // Now fork — the injected fault crashes PM while it handles this
        // very call. OSIRIS rolls PM back to the top of its request loop
        // and answers E_CRASH instead (error virtualization).
        match sys.fork_run(|_child| 0) {
            Err(osiris::kernel::abi::Errno::ECRASH) => {
                println!("[init] fork failed with E_CRASH: PM crashed and was recovered");
            }
            other => println!("[init] unexpected fork result: {other:?}"),
        }

        // PM is alive again: the same call now succeeds.
        let child = sys.fork_run(|_child| 3).expect("PM recovered");
        let code = sys.waitpid(child).expect("waitpid after recovery");
        println!("[init] post-recovery fork: child {child} exited with {code}");
        0
    });

    let mut cfg = OsConfig::with_policy(PolicyKind::Enhanced);
    cfg.trace = osiris::TraceConfig::on();
    cfg.axiom = osiris::axiom::AxiomConfig::on();
    cfg.timeseries = osiris::metrics::TimeseriesConfig::on();
    let mut os = Os::new(cfg);
    os.set_fault_hook(Box::new(CrashForkOnce(AtomicBool::new(false))));

    let mut host = Host::new(os, registry);
    let outcome = host.run("main", &[]);
    let mut os = host.into_engine();

    println!("\noutcome:   {outcome:?}");
    println!(
        "recovered: {} component crash(es) by rollback + error virtualization",
        os.metrics().recovered_rollback
    );
    let violations = os.audit();
    println!(
        "audit:     {}",
        if violations.is_empty() {
            "globally consistent".to_string()
        } else {
            format!("{violations:?}")
        }
    );

    // Export the flight-recorder trace in Chrome trace_event format.
    let out =
        std::env::var("OSIRIS_TRACE_OUT").unwrap_or_else(|_| "target/quickstart_trace.json".into());
    if let Some(parent) = std::path::Path::new(&out).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create trace output dir");
        }
    }
    std::fs::write(&out, os.chrome_trace().pretty()).expect("write trace JSON");
    println!(
        "trace:     {} events -> {out} (open in chrome://tracing or ui.perfetto.dev)",
        os.trace_handle().with(|t| t.len())
    );

    // Export the metrics registry as Prometheus text + JSON.
    let base =
        std::env::var("OSIRIS_METRICS_OUT").unwrap_or_else(|_| "target/quickstart_metrics".into());
    let (prom, json) = os.write_metrics(&base).expect("write metrics exports");
    println!("metrics:   {} and {}", prom.display(), json.display());

    // Export the virtual-time series the sampler collected during the run
    // (p50/p99/p99.9 request latency over virtual time, recovery counters).
    // The same lanes ride along in the Chrome trace as counter tracks.
    let ts_out = std::env::var("OSIRIS_TIMESERIES_OUT")
        .unwrap_or_else(|_| "target/quickstart_timeseries.json".into());
    let ts_path = os.write_timeseries(&ts_out).expect("write timeseries");
    println!(
        "series:    {} sampled points -> {}",
        os.timeseries().len(),
        ts_path.display()
    );

    // Export the authoritative control-plane log (the axiom): verify the
    // hash chain end to end, then persist the crash-consistent image. The
    // `axiom_replay` tool reconstructs the control state from this file and
    // byte-compares a replayed run's exports against this one.
    os.verify_axiom().expect("axiom chain intact");
    let axiom_out =
        std::env::var("OSIRIS_AXIOM_OUT").unwrap_or_else(|_| "target/quickstart_axiom.bin".into());
    let path = os.write_axiom(&axiom_out).expect("write axiom");
    println!(
        "axiom:     {} chained events -> {}",
        os.axiom().len(),
        path.display()
    );

    assert!(outcome.completed() && violations.is_empty());
}
