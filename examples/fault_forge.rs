//! Snapshot-fork fault campaign: sweep the full DoubleFault ×
//! DuringRecovery space in seconds by forking every fault variant from a
//! shared prefix snapshot instead of rerunning the workload from boot.
//!
//! The forge profiles the script workload once per policy, snapshots the
//! clean prefix in front of every injection site, then forks each (site ×
//! fault-model × policy) variant from the shared snapshot — an O(dirty)
//! copy, byte-identical to a from-boot run reaching the same state. A
//! coverage map over (component, window, policy, model, outcome) cells
//! tracks what the sweep has proven; a refinement wave then probes the
//! *frontier* — sites where neighboring variants flip between outcome
//! classes — with transient and hang refinements.
//!
//! ```text
//! cargo run --release --example fault_forge
//! ```

use osiris::faults::{Forge, ForgeConfig};

fn main() {
    osiris::install_quiet_panic_hook();

    // Default config: every policy, reachability boundaries, the standard
    // 512-injection budget, deterministic regardless of thread count.
    let forge = Forge::new(ForgeConfig::default());
    let plan = forge.plan();
    println!(
        "plan: {} base variants over {} policies ({} deferred by budget)",
        plan.variants.len(),
        plan.profiles.len(),
        plan.deferred.len()
    );

    let result = forge.run_plan(&plan);
    let report = &result.report;

    println!("{}", result.campaign.render_matrix());
    println!(
        "{} injections: {} fresh forks, {} snapshot re-adoptions, {} dirty bytes copied",
        report.injections, report.stats.forks, report.stats.readopts, report.stats.fork_dirty_bytes
    );
    println!(
        "coverage: fail-stop {:.0}% ({}/{}), recovery space {:.0}% ({}/{}), {} outcome cells",
        report.fail_stop_pct(),
        report.fail_stop.1,
        report.fail_stop.0,
        report.recovery_space_pct(),
        report.recovery_space.1,
        report.recovery_space.0,
        report.outcome_cells
    );
    println!(
        "frontier: {} outcome-class flips across {} sites, {} refinement runs",
        report.frontier.flips,
        report.frontier.sites.len(),
        report.refinements
    );
    for site in report.frontier.sites.iter().take(8) {
        println!("  frontier site: {site}");
    }
}
