//! Retrofitting the OSIRIS framework onto a different system (paper §VII,
//! "Generality of the framework"): a miniature **three-tier server
//! application** — gateway → session service → storage — built directly on
//! the generic `osiris-kernel` substrate with its own protocol, its own
//! SEEP classification, and the stock recovery policies.
//!
//! The gateway consults the session service read-only (a non-state-modifying
//! SEEP, so its recovery window survives under the enhanced policy) before
//! committing an order to storage (state-modifying, closing the window).
//! A crash in the lookup phase is recovered by rollback + error
//! virtualization; the client sees `E_CRASH` (a retryable 503, in web
//! terms), retries, and the system never loses or duplicates an order.
//!
//! ```text
//! cargo run --release --example retrofit_webapp
//! ```

use osiris::checkpoint::{PCell, PMap};
use osiris::core::{SeepClass, SeepMeta};
use osiris::kernel::abi::{Pid, SysReply};
use osiris::kernel::{
    Ctx, Endpoint, FaultEffect, FaultHook, Kernel, KernelConfig, Message, Probe, Protocol, Server,
    SyscallId,
};
use osiris::PolicyKind;

/// The application protocol. Each variant carries its SEEP engraving, just
/// like the OS protocol does.
#[derive(Clone, Debug)]
enum AppMsg {
    /// Client request to the gateway: place an order.
    PlaceOrder {
        user: u32,
        item: &'static str,
    },
    /// Gateway → sessions: read-only credit check.
    CheckCredit {
        user: u32,
    },
    /// Gateway → storage: commit the order (state-modifying).
    Commit {
        user: u32,
        item: &'static str,
    },
    /// Generic success/value replies.
    ROk,
    RVal(u64),
    /// Error virtualization reply.
    RCrash,
    /// Kernel → recovery manager.
    Notify(u8),
    /// Final client reply.
    ClientReply(SysReply),
}

impl Protocol for AppMsg {
    fn seep(&self) -> SeepMeta {
        match self {
            AppMsg::PlaceOrder { .. } => SeepMeta::request(SeepClass::StateModifying),
            AppMsg::CheckCredit { .. } => SeepMeta::request(SeepClass::NonStateModifying),
            AppMsg::Commit { .. } => SeepMeta::request(SeepClass::StateModifying),
            AppMsg::ROk | AppMsg::RVal(_) | AppMsg::RCrash | AppMsg::ClientReply(_) => {
                SeepMeta::reply(SeepClass::StateModifying)
            }
            AppMsg::Notify(_) => SeepMeta::notification(SeepClass::NonStateModifying),
        }
    }
    fn crash_reply() -> Self {
        AppMsg::RCrash
    }
    fn crash_notify(target: u8) -> Self {
        AppMsg::Notify(target)
    }
    fn as_user_reply(&self) -> Option<SysReply> {
        match self {
            AppMsg::ClientReply(r) => Some(r.clone()),
            _ => None,
        }
    }
    fn label(&self) -> &'static str {
        match self {
            AppMsg::PlaceOrder { .. } => "place_order",
            AppMsg::CheckCredit { .. } => "check_credit",
            AppMsg::Commit { .. } => "commit",
            AppMsg::ROk => "r_ok",
            AppMsg::RVal(_) => "r_val",
            AppMsg::RCrash => "r_crash",
            AppMsg::Notify(_) => "notify",
            AppMsg::ClientReply(_) => "client_reply",
        }
    }
}

/// The recovery manager tier (the RS analog).
#[derive(Clone)]
struct Manager;

impl Server<AppMsg> for Manager {
    fn name(&self) -> &'static str {
        "manager"
    }
    fn init(&mut self, _ctx: &mut Ctx<'_, AppMsg>) {}
    fn handle(&mut self, msg: &Message<AppMsg>, ctx: &mut Ctx<'_, AppMsg>) {
        if let AppMsg::Notify(target) = msg.payload {
            println!("[manager] recovering tier {target}");
            ctx.recover(target);
        }
    }
    fn clone_box(&self) -> Box<dyn Server<AppMsg>> {
        Box::new(self.clone())
    }
}

/// The gateway tier: orchestrates a credit check then a commit, keeping a
/// continuation in its checkpointed heap exactly like PM does for `spawn`.
#[derive(Clone)]
struct Gateway {
    sessions: Endpoint,
    storage: Endpoint,
    pending: Option<PMap<u64, (u32, &'static str, osiris::kernel::ReturnPath)>>,
    orders_routed: Option<PCell<u64>>,
}

impl Server<AppMsg> for Gateway {
    fn name(&self) -> &'static str {
        "gateway"
    }
    fn init(&mut self, ctx: &mut Ctx<'_, AppMsg>) {
        self.pending = Some(ctx.heap().alloc_map("gw.pending"));
        self.orders_routed = Some(ctx.heap().alloc_cell("gw.routed", 0));
    }
    fn handle(&mut self, msg: &Message<AppMsg>, ctx: &mut Ctx<'_, AppMsg>) {
        let pending = self.pending.expect("init");
        let routed = self.orders_routed.expect("init");
        match &msg.payload {
            AppMsg::PlaceOrder { user, item } => {
                ctx.site("gw.order.entry");
                routed.update(ctx.heap(), |n| *n += 1);
                // Read-only credit check: the enhanced window stays open, so
                // a crash anywhere in this phase is recoverable.
                let id = ctx.send_request(self.sessions, AppMsg::CheckCredit { user: *user });
                pending.insert(ctx.heap(), id.0, (*user, item, msg.return_path()));
                ctx.site("gw.order.checking");
            }
            AppMsg::RVal(credit) => {
                let Some(reply_to) = msg.reply_to else { return };
                let Some((user, item, rp)) = pending.remove(ctx.heap(), &reply_to.0) else {
                    return;
                };
                ctx.site("gw.order.checked");
                if *credit == 0 {
                    ctx.reply(
                        rp,
                        AppMsg::ClientReply(SysReply::Err(osiris::kernel::abi::Errno::EPERM)),
                    );
                    return;
                }
                // Commit is state-modifying: from here on, a crash means a
                // controlled shutdown rather than a risky recovery.
                let id = ctx.send_request(self.storage, AppMsg::Commit { user, item });
                pending.insert(ctx.heap(), id.0, (user, item, rp));
            }
            AppMsg::ROk => {
                let Some(reply_to) = msg.reply_to else { return };
                if let Some((_, _, rp)) = pending.remove(ctx.heap(), &reply_to.0) {
                    ctx.site("gw.order.done");
                    ctx.reply(rp, AppMsg::ClientReply(SysReply::Ok));
                }
            }
            AppMsg::RCrash => {
                // A downstream tier crashed and was recovered: surface a
                // retryable error to the client.
                let Some(reply_to) = msg.reply_to else { return };
                if let Some((_, _, rp)) = pending.remove(ctx.heap(), &reply_to.0) {
                    ctx.reply(
                        rp,
                        AppMsg::ClientReply(SysReply::Err(osiris::kernel::abi::Errno::ECRASH)),
                    );
                }
            }
            _ => {}
        }
    }
    fn clone_box(&self) -> Box<dyn Server<AppMsg>> {
        Box::new(self.clone())
    }
}

/// The session tier: read-only credit lookups.
#[derive(Clone)]
struct Sessions {
    credit: Option<PMap<u32, u64>>,
}

impl Server<AppMsg> for Sessions {
    fn name(&self) -> &'static str {
        "sessions"
    }
    fn init(&mut self, ctx: &mut Ctx<'_, AppMsg>) {
        let credit = ctx.heap().alloc_map("sess.credit");
        for user in 1..=8 {
            credit.insert(ctx.heap(), user, 100);
        }
        self.credit = Some(credit);
    }
    fn handle(&mut self, msg: &Message<AppMsg>, ctx: &mut Ctx<'_, AppMsg>) {
        if let AppMsg::CheckCredit { user } = &msg.payload {
            ctx.site("sess.check");
            let credit = self
                .credit
                .expect("init")
                .get(ctx.heap_ref(), user)
                .unwrap_or(0);
            ctx.site("sess.reply");
            ctx.reply(msg.return_path(), AppMsg::RVal(credit));
        }
    }
    fn clone_box(&self) -> Box<dyn Server<AppMsg>> {
        Box::new(self.clone())
    }
}

/// The storage tier: the committed orders ledger.
#[derive(Clone)]
struct Storage {
    orders: Option<PMap<u64, (u32, &'static str)>>,
    next: Option<PCell<u64>>,
}

impl Server<AppMsg> for Storage {
    fn name(&self) -> &'static str {
        "storage"
    }
    fn init(&mut self, ctx: &mut Ctx<'_, AppMsg>) {
        self.orders = Some(ctx.heap().alloc_map("store.orders"));
        self.next = Some(ctx.heap().alloc_cell("store.next", 0));
    }
    fn handle(&mut self, msg: &Message<AppMsg>, ctx: &mut Ctx<'_, AppMsg>) {
        if let AppMsg::Commit { user, item } = &msg.payload {
            ctx.site("store.commit");
            let next = self.next.expect("init");
            let id = next.get(ctx.heap_ref());
            next.set(ctx.heap(), id + 1);
            self.orders
                .expect("init")
                .insert(ctx.heap(), id, (*user, item));
            ctx.reply(msg.return_path(), AppMsg::ROk);
        }
    }
    fn audit_facts(&self, heap: &osiris::Heap) -> Vec<(String, u64)> {
        vec![(
            "orders".to_string(),
            self.orders.expect("init").len(heap) as u64,
        )]
    }
    fn clone_box(&self) -> Box<dyn Server<AppMsg>> {
        Box::new(self.clone())
    }
}

/// Crash the session lookup every time (a persistent fault in tier 2).
struct CrashSessions;
impl FaultHook for CrashSessions {
    fn on_site(&mut self, probe: &Probe) -> FaultEffect {
        if probe.site == "sess.check" && probe.now < 60_000 {
            FaultEffect::Panic
        } else {
            FaultEffect::None
        }
    }
}

fn main() {
    osiris::install_quiet_panic_hook();

    let mut kernel: Kernel<AppMsg> = Kernel::new(KernelConfig {
        policy: PolicyKind::Enhanced.instantiate(),
        ..Default::default()
    });
    let manager = kernel.register(Box::new(Manager), true);
    let sessions = kernel.register(Box::new(Sessions { credit: None }), false);
    let storage = kernel.register(
        Box::new(Storage {
            orders: None,
            next: None,
        }),
        false,
    );
    let gateway = kernel.register(
        Box::new(Gateway {
            sessions,
            storage,
            pending: None,
            orders_routed: None,
        }),
        false,
    );
    let _ = manager;
    kernel.init_components();
    kernel.set_fault_hook(Box::new(CrashSessions));

    // The "client": retries on E_CRASH like any HTTP client retries a 503.
    let mut placed = 0;
    let mut retries = 0;
    let mut sid = 0u64;
    for user in 1..=8u32 {
        loop {
            sid += 1;
            kernel.send_user_request(
                gateway,
                AppMsg::PlaceOrder {
                    user,
                    item: "widget",
                },
                SyscallId(sid),
                Pid(u64::from(user) as u32),
            );
            kernel.pump();
            let reply = kernel
                .take_user_replies()
                .pop()
                .expect("one reply per request");
            match reply.2 {
                SysReply::Ok => {
                    placed += 1;
                    break;
                }
                SysReply::Err(osiris::kernel::abi::Errno::ECRASH) => {
                    retries += 1;
                    continue;
                }
                other => panic!("unexpected reply {other:?}"),
            }
        }
    }

    let orders = kernel
        .audit_facts()
        .into_iter()
        .find(|(c, k, _)| *c == "storage" && k == "orders")
        .map(|(_, _, v)| v)
        .expect("storage exports its ledger size");

    println!("orders placed:        {placed}");
    println!("client retries:       {retries} (each = a recovered tier-2 crash)");
    println!("ledger entries:       {orders}");
    println!(
        "recoveries performed: {}",
        kernel.metrics().recovered_rollback
    );
    assert_eq!(placed, 8);
    assert_eq!(orders, 8, "no order lost, none duplicated");
    assert!(retries > 0, "the fault load must have been felt");
    assert!(kernel.shutdown_state().is_none());
    println!("\nthe same framework that recovers OS servers recovers an app tier.");
}
