//! A miniature survivability campaign (paper §VI-B, Tables II/III):
//! profile the test suite, plan one fail-stop fault per triggered PM/VFS
//! site, inject each in a fresh run under two recovery policies, and
//! compare the outcome distributions.
//!
//! The runs stream through a [`Campaign`] observer, which prints live
//! progress plus a policy × component × outcome matrix to stderr, dumps a
//! flight-recorder black box for the first uncontrolled crashes, and can
//! render a machine-readable report at the end.
//!
//! ```text
//! cargo run --release --example fault_injection
//! ```

use osiris::faults::{
    classify_run, plan_faults, run_parallel, Campaign, FaultModel, InjectionRecord, Injector,
    Outcome, Recorder, RecoveryActionTag, Tally,
};
use osiris::workloads::{build_testsuite, run_suite_with};
use osiris::{Host, Os, OsConfig, PolicyKind, TraceConfig};

fn main() {
    osiris::install_quiet_panic_hook();

    // 1. Profiling run: which instrumentation sites does the suite trigger?
    println!("profiling the test suite...");
    let recorder = Recorder::new();
    let handle = recorder.clone();
    let (_, _) = run_suite_with(
        OsConfig::with_policy(PolicyKind::Enhanced),
        Some(Box::new(recorder)),
    );
    // Keep the campaign small: PM and VFS sites only.
    let profile = handle.profile().restrict_to(&["pm", "vfs"]);
    println!("{} distinct PM/VFS sites triggered", profile.len());

    // 2. One fail-stop fault per site.
    let plans = plan_faults(&profile, FaultModel::FailStop, 7);
    println!("{} faults planned\n", plans.len());

    // 3. Inject each fault in its own fresh run, per policy, streaming
    //    every outcome through the campaign observer.
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let policies = [PolicyKind::Naive, PolicyKind::Enhanced];
    let campaign = Campaign::new(
        "example-failstop",
        FaultModel::FailStop,
        plans.len() * policies.len(),
    );
    println!(
        "{:<14} {:>6} {:>6} {:>9} {:>11} {:>9} {:>6}   (injecting on {} threads)",
        "policy", "pass", "fail", "degraded", "quarantined", "shutdown", "crash", threads
    );
    for policy in policies {
        let campaign = &campaign;
        let outcomes: Vec<Outcome> = run_parallel(plans.clone(), threads, |plan| {
            let injector = Injector::new(&plan);
            // Flight-record quietly (kernel auto-dump off) so a crashing
            // run can hand its trace tail to the campaign's black box.
            let mut cfg = OsConfig::with_policy(policy);
            cfg.trace = TraceConfig {
                enabled: true,
                capacity: 2048,
                blackbox_tail: 0,
                ..Default::default()
            };
            // Retain the axiom so each injection's MTTR decomposes into
            // its recovery critical path (zeros without retention).
            cfg.axiom = osiris::axiom::AxiomConfig::on();
            let mut os = Os::new(cfg);
            os.set_fault_hook(Box::new(injector));
            let (registry, _) = build_testsuite();
            let mut host = Host::new(os, registry);
            let outcome = host.run("suite", &[]);
            let os = host.into_engine();
            let violations = if outcome.completed() {
                os.audit().len()
            } else {
                0
            };
            let m = os.metrics();
            // Escalation-aware classification: runs that survived because a
            // crash-looping component was quarantined report as degraded or
            // quarantined rather than pass/crash.
            let class = classify_run(&outcome, violations, m.quarantines);
            let blackbox = (class == Outcome::Crash).then(|| {
                let tail = os.trace_handle().with(|t| t.tail_per_comp(12));
                osiris::trace::render_text(&tail, &os.kernel().trace_names())
            });
            let (critical_path, span_latency_clean, span_latency_recovery) =
                osiris::faults::run_attribution(
                    os.kernel().axiom().records(),
                    &os.metrics_snapshot(),
                );
            campaign.record(InjectionRecord {
                site: plan.site.clone(),
                kind: plan.kind,
                policy: policy.to_string(),
                outcome: class,
                action: RecoveryActionTag::from_counts(
                    m.recovered_rollback,
                    m.recovered_fresh,
                    m.recovered_quiescent,
                    m.recovered_naive,
                    m.controlled_shutdowns,
                ),
                run_cycles: os.kernel().now(),
                recoveries: m.recovered_rollback
                    + m.recovered_fresh
                    + m.recovered_quiescent
                    + m.recovered_naive,
                recovery_cycles: m.recovery_cycles,
                critical_path,
                span_latency_clean,
                span_latency_recovery,
                blackbox,
            });
            class
        });
        let t: Tally = outcomes.into_iter().collect();
        println!(
            "{:<14} {:>5} {:>6} {:>9} {:>11} {:>9} {:>6}",
            policy.to_string(),
            t.pass,
            t.fail,
            t.degraded,
            t.quarantined,
            t.shutdown,
            t.crash
        );
    }

    println!("\nfinal campaign matrix ({} runs):", campaign.done());
    print!("{}", campaign.render_matrix());
    println!("\nenhanced recovery turns uncontrolled crashes into recoveries or");
    println!("controlled shutdowns; the naive baseline survives by luck and");
    println!("leaves torn state behind (caught as crashes by the audit).");
}
