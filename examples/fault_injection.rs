//! A miniature survivability campaign (paper §VI-B, Tables II/III):
//! profile the test suite, plan one fail-stop fault per triggered PM/VFS
//! site, inject each in a fresh run under two recovery policies, and
//! compare the outcome distributions.
//!
//! ```text
//! cargo run --release --example fault_injection
//! ```

use osiris::faults::{
    classify, plan_faults, run_parallel, FaultModel, Injector, Outcome, Recorder, Tally,
};
use osiris::workloads::{build_testsuite, run_suite_with};
use osiris::{Host, Os, OsConfig, PolicyKind};

fn main() {
    osiris::install_quiet_panic_hook();

    // 1. Profiling run: which instrumentation sites does the suite trigger?
    println!("profiling the test suite...");
    let recorder = Recorder::new();
    let handle = recorder.clone();
    let (_, _) = run_suite_with(
        OsConfig::with_policy(PolicyKind::Enhanced),
        Some(Box::new(recorder)),
    );
    // Keep the campaign small: PM and VFS sites only.
    let profile = handle.profile().restrict_to(&["pm", "vfs"]);
    println!("{} distinct PM/VFS sites triggered", profile.len());

    // 2. One fail-stop fault per site.
    let plans = plan_faults(&profile, FaultModel::FailStop, 7);
    println!("{} faults planned\n", plans.len());

    // 3. Inject each fault in its own fresh run, per policy.
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    println!(
        "{:<14} {:>6} {:>6} {:>9} {:>6}   (injecting on {} threads)",
        "policy", "pass", "fail", "shutdown", "crash", threads
    );
    for policy in [PolicyKind::Naive, PolicyKind::Enhanced] {
        let outcomes: Vec<Outcome> = run_parallel(plans.clone(), threads, |plan| {
            let injector = Injector::new(&plan);
            let mut os = Os::new(OsConfig::with_policy(policy));
            os.set_fault_hook(Box::new(injector));
            let (registry, _) = build_testsuite();
            let mut host = Host::new(os, registry);
            let outcome = host.run("suite", &[]);
            let os = host.into_engine();
            let violations = if outcome.completed() {
                os.audit().len()
            } else {
                0
            };
            classify(&outcome, violations)
        });
        let t: Tally = outcomes.into_iter().collect();
        println!(
            "{:<14} {:>5} {:>6} {:>9} {:>6}",
            policy.to_string(),
            t.pass,
            t.fail,
            t.shutdown,
            t.crash
        );
    }
    println!("\nenhanced recovery turns uncontrolled crashes into recoveries or");
    println!("controlled shutdowns; the naive baseline survives by luck and");
    println!("leaves torn state behind (caught as crashes by the audit).");
}
