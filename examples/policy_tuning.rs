//! Composable recovery policies (paper §VII): define a *custom* policy and
//! measure the recovery-coverage / overhead trade-off against the built-in
//! pessimistic and enhanced policies.
//!
//! The custom "paranoid-DS" policy behaves like the enhanced policy but
//! refuses to recover unless the window never saw *any* outgoing message —
//! except it still allows heartbeat pings. It demonstrates the
//! `RecoveryPolicy` extension point: window control and reconciliation are
//! both pluggable.
//!
//! ```text
//! cargo run --release --example policy_tuning
//! ```

use osiris::core::{
    CrashContext, MessageKind, PolicyKind, RecoveryAction, RecoveryDecision, RecoveryPolicy,
    SeepClass, SeepMeta,
};
use osiris::workloads::run_suite_with;
use osiris::{Os, OsConfig};

/// Enhanced window control for pings only; pessimistic otherwise; shuts
/// down unless the failing request is replyable and the window is open.
#[derive(Clone, Copy, Debug)]
struct PingOnly;

impl RecoveryPolicy for PingOnly {
    fn name(&self) -> &'static str {
        "ping-only"
    }
    fn send_keeps_window_open(&self, seep: &SeepMeta) -> bool {
        // Only liveness probes (non-state-modifying *requests*) are free;
        // even read-only notifications close the window.
        seep.kind == MessageKind::Request && seep.class == SeepClass::NonStateModifying
    }
    fn reconcile(&self, crash: &CrashContext) -> RecoveryDecision {
        if crash.in_recovery_code {
            return RecoveryDecision::new(RecoveryAction::UncontrolledCrash, false);
        }
        if crash.window_open && crash.reply_possible {
            RecoveryDecision::new(RecoveryAction::RollbackAndErrorReply, true)
        } else {
            RecoveryDecision::new(RecoveryAction::ControlledShutdown, false)
        }
    }
    fn kind(&self) -> PolicyKind {
        PolicyKind::Custom
    }
}

fn coverage(cfg: OsConfig) -> Vec<(String, f64)> {
    let (_, os): (_, Os) = run_suite_with(cfg, None);
    os.reports()
        .into_iter()
        .filter(|r| ["pm", "vfs", "vm", "ds", "rs"].contains(&r.name))
        .map(|r| (r.name.to_string(), 100.0 * r.window.coverage_by_sites()))
        .collect()
}

fn main() {
    osiris::install_quiet_panic_hook();

    let pess = coverage(OsConfig::with_policy(PolicyKind::Pessimistic));
    let enh = coverage(OsConfig::with_policy(PolicyKind::Enhanced));
    let custom = coverage(OsConfig {
        custom_policy: Some(Box::new(PingOnly)),
        ..Default::default()
    });

    println!("recovery coverage (% of executed sites inside windows)\n");
    println!(
        "{:<8} {:>12} {:>10} {:>10}",
        "server", "pessimistic", "ping-only", "enhanced"
    );
    for i in 0..pess.len() {
        println!(
            "{:<8} {:>12.1} {:>10.1} {:>10.1}",
            pess[i].0, pess[i].1, custom[i].1, enh[i].1
        );
    }
    println!("\nthe custom policy sits between the two built-ins: it keeps");
    println!("heartbeat rounds recoverable (unlike pessimistic) but treats the");
    println!("DS trace announcements as window-closing (unlike enhanced).");
}
