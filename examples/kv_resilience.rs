//! Service continuity under sustained fault load (paper §VI-E): a client
//! hammers the Data Store while fail-stop faults are injected into DS at a
//! fixed interval inside its recovery window. Every crash is recovered by
//! rollback + error virtualization; the client retries on `E_CRASH` and the
//! run completes with zero lost or corrupted keys.
//!
//! ```text
//! cargo run --release --example kv_resilience
//! ```

use osiris::faults::PeriodicCrash;
use osiris::{Host, Os, OsConfig, PolicyKind, ProgramRegistry};

const KEYS: u32 = 200;

fn main() {
    osiris::install_quiet_panic_hook();

    let mut registry = ProgramRegistry::new();
    registry.register("kv_client", |sys| {
        // Retry transparently on E_CRASH: a well-written client treats a
        // recovered server like any transient failure.
        sys.set_retry_ecrash(true);
        for i in 0..KEYS {
            let key = format!("user/{i}");
            let value = format!("value-{i}");
            sys.ds_put(&key, value.as_bytes())
                .expect("put succeeds (after retries)");
        }
        // Verify every key survived the crash storm.
        for i in 0..KEYS {
            let key = format!("user/{i}");
            let expect = format!("value-{i}");
            let got = sys.ds_get(&key).expect("get succeeds (after retries)");
            assert_eq!(got, expect.as_bytes(), "key {key} corrupted");
        }
        let listed = sys.ds_list("user/").expect("list succeeds");
        assert_eq!(listed.len(), KEYS as usize);
        0
    });

    let mut os = Os::new(OsConfig {
        policy: PolicyKind::Enhanced,
        // This example sustains a crash storm on purpose; restart forever
        // instead of letting the escalation ladder bench DS.
        escalation: osiris::EscalationPolicy::unbounded(),
        ..Default::default()
    });
    // Crash DS inside its recovery window every 50k cycles.
    os.set_fault_hook(Box::new(PeriodicCrash::new("ds", 50_000)));

    let mut host = Host::new(os, registry);
    let outcome = host.run("kv_client", &[]);
    let os = host.into_engine();

    let ds = os
        .reports()
        .into_iter()
        .find(|r| r.name == "ds")
        .expect("ds exists");
    println!("outcome:        {outcome:?}");
    println!("DS crashes:     {}", ds.crashes);
    println!("DS recoveries:  {}", ds.recoveries);
    println!("keys intact:    {KEYS}/{KEYS}");
    let violations = os.audit();
    println!(
        "audit:          {}",
        if violations.is_empty() {
            "consistent".to_string()
        } else {
            format!("{violations:?}")
        }
    );
    assert!(outcome.completed());
    assert!(
        ds.recoveries > 0,
        "the fault load must actually have crashed DS"
    );
    assert!(violations.is_empty());
}
