//! Fail-silent hang recovery, end to end: a VFS `stat` wedges mid-request
//! (no crash signal, no reply — the fault is only visible as silence),
//! the virtual-time watchdog detects the expired deadline, heartbeat
//! probes confirm the server is hung rather than slow, the RS rolls the
//! wedged transaction back through the standard escalation ladder, and
//! the client's request is transparently retried against the recovered
//! instance — the program completes with the correct metadata and never
//! sees an error. (`stat` is `NonStateModifying` under SEEP, so the
//! watchdog may re-drive it; a `read` advances the file offset and is
//! never armed.)
//!
//! ```text
//! cargo run --release --example hang_recovery
//! ```

use osiris::faults::{FaultKind, FaultPlan, Injector, SiteId, SiteKindTag};
use osiris::{Host, Os, OsConfig, ProgramRegistry, RunOutcome, WatchdogConfig};

fn main() {
    osiris::install_quiet_panic_hook();

    // Wedge the VFS once, mid-stat: the handler stops making progress and
    // never replies. Without a watchdog this is undetectable — a hang has
    // no crash signal for the RS to observe.
    let plan = FaultPlan {
        site: SiteId {
            component: "vfs".into(),
            site: "vfs.stat.entry".into(),
            kind: SiteKindTag::Block,
        },
        kind: FaultKind::Hang,
        transient: true,
    };

    let mut registry = ProgramRegistry::new();
    registry.register("main", |sys| {
        use osiris::kernel::abi::OpenFlags;
        let payload = b"the-bytes-that-must-survive-the-hang";
        let fd = sys.open("/data", OpenFlags::RDWR_CREATE).unwrap();
        sys.write(fd, payload).unwrap();
        sys.close(fd).unwrap();
        // The stat below is the wedged request: its reply only arrives
        // after detection, rollback and one transparent retry.
        let meta = match sys.stat("/data") {
            Ok(m) => m,
            Err(_) => return 2, // the retry must hide the hang entirely
        };
        i32::from(meta.size as usize != payload.len())
    });

    let cfg = OsConfig {
        watchdog: WatchdogConfig::on(),
        ..Default::default()
    };
    let wd = cfg.watchdog;
    let mut os = Os::new(cfg);
    os.set_fault_hook(Box::new(Injector::new(&plan)));
    let mut host = Host::new(os, registry);
    let outcome = host.run("main", &[]);
    let os = host.into_engine();

    let m = os.metrics();
    println!("outcome: {outcome:?}");
    println!(
        "watchdog: {} deadlines armed, {} expired, {} probes, {} verdicts",
        m.wd_armed, m.wd_expired, m.wd_probes, m.wd_verdicts
    );
    println!(
        "recovery: {} hangs, {} rollback recoveries, {} transparent retries \
         ({} denied, {} exhausted)",
        m.hangs, m.recovered_rollback, m.retries_granted, m.retries_denied, m.retries_exhausted
    );

    assert!(
        matches!(outcome, RunOutcome::Completed { init_code: 0, .. }),
        "the client must complete with byte-identical data: {outcome:?}"
    );
    assert!(m.hangs >= 1, "the injector must wedge the VFS");
    assert!(m.wd_expired >= 1, "the wedge must expire an armed deadline");
    assert!(
        m.recovered_rollback >= 1,
        "the hung transaction must be rolled back"
    );
    assert_eq!(
        m.retries_granted, 1,
        "exactly one transparent retry completes the read"
    );
    assert!(os.audit().is_empty(), "audit: {:?}", os.audit());

    println!();
    println!("the hang was invisible to the client: the stat request wedged the");
    println!(
        "VFS, the watchdog declared it hung once the {}-cycle deadline expired,",
        wd.deadline
    );
    println!("the RS rolled the transaction back, and one retry finished the job.");
}
