#!/usr/bin/env bash
# Offline CI gate: formatting, lints, build, and the tier-1 test suite.
# Everything runs without network access; the workspace has no external
# dependencies.
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo test -q =="
cargo test -q

echo "== workspace tests =="
cargo test -q --workspace

echo "== escalation ladder: sliding-window properties + quarantine matrix =="
cargo test -q -p osiris-core --test escalation_props
cargo test -q -p osiris-servers --test escalation_matrix

echo "== trace + metrics + timeseries determinism: two identical runs, byte-identical exports =="
trace_tmp="$(mktemp -d)"
trap 'rm -rf "$trace_tmp"' EXIT
OSIRIS_TRACE_OUT="$trace_tmp/a.json" OSIRIS_METRICS_OUT="$trace_tmp/a_metrics" \
    OSIRIS_AXIOM_OUT="$trace_tmp/a_axiom.bin" \
    OSIRIS_TIMESERIES_OUT="$trace_tmp/a_timeseries.json" \
    cargo run --release --example quickstart >/dev/null
OSIRIS_TRACE_OUT="$trace_tmp/b.json" OSIRIS_METRICS_OUT="$trace_tmp/b_metrics" \
    OSIRIS_AXIOM_OUT="$trace_tmp/b_axiom.bin" \
    OSIRIS_TIMESERIES_OUT="$trace_tmp/b_timeseries.json" \
    cargo run --release --example quickstart >/dev/null
diff "$trace_tmp/a.json" "$trace_tmp/b.json"
diff "$trace_tmp/a_metrics.prom" "$trace_tmp/b_metrics.prom"
diff "$trace_tmp/a_metrics.json" "$trace_tmp/b_metrics.json"
diff "$trace_tmp/a_timeseries.json" "$trace_tmp/b_timeseries.json"
cmp "$trace_tmp/a_axiom.bin" "$trace_tmp/b_axiom.bin"

echo "== span + timeseries determinism: suite-level byte-identical exports =="
cargo test -q -p osiris-servers --test span_determinism

echo "== promlint: Prometheus exposition well-formedness =="
cargo run --release -p osiris-metrics --bin promlint -- \
    "$trace_tmp/a_metrics.prom" "$trace_tmp/b_metrics.prom"

echo "== escalation + clone-pool + axiom metrics: families present in the standard exposition =="
for fam in osiris_quarantine_total osiris_quarantine_refusals_total \
    osiris_escalation_restarts_window osiris_escalation_backoff_arms_total \
    osiris_escalation_budget_exhausted_total \
    osiris_cas_chunks osiris_cas_bytes osiris_cas_dedup_hits_total \
    osiris_restart_chunks_total osiris_comp_clone_dedup_bytes \
    osiris_axiom_events_total osiris_axiom_bytes \
    osiris_axiom_chain_verifications_total osiris_axiom_replay_divergence_total \
    osiris_span_started_total osiris_span_completed_total \
    osiris_span_latency_cycles osiris_span_hops_total \
    osiris_watchdog_armed_total osiris_watchdog_deadline_expired_total \
    osiris_watchdog_probes_total osiris_watchdog_verdicts_total \
    osiris_watchdog_replies_rejected_total \
    osiris_watchdog_detection_latency_cycles \
    osiris_retry_decisions_total osiris_retry_exhausted_total; do
    grep -q "^$fam" "$trace_tmp/a_metrics.prom" || {
        echo "missing metric family in exposition: $fam" >&2
        exit 1
    }
done

echo "== campaign smoke: degraded/quarantined outcome classes reach the report =="
OSIRIS_CAMPAIGN_OUT="$trace_tmp/campaign_smoke.json" \
    cargo run --release -p osiris-bench --bin campaign_smoke >/dev/null

echo "== content-addressed store: dedup, refcount and bit-flip properties =="
cargo test -q -p osiris-checkpoint --test cas_proptests

echo "== double-fault smoke: faults during recovery survive via the fallback chain =="
cargo test -q -p osiris-checkpoint --test integrity_proptests
cargo test -q -p osiris-servers --test recovery_fallback
OSIRIS_CAMPAIGN_OUT="$trace_tmp/double_fault.json" \
    cargo run --release -p osiris-bench --bin double_fault >/dev/null
grep -q '"during-recovery"' "$trace_tmp/double_fault.json" || {
    echo "double-fault report missing the during-recovery model" >&2
    exit 1
}

echo "== axiom chain integrity: property tests + whole-system replay suite =="
cargo test -q -p osiris-axiom --test chain_props
cargo test -q -p osiris-servers --test axiom_replay

echo "== axiom_replay: replaying the recorded axiom reproduces the run byte-for-byte =="
OSIRIS_REPLAY_TRACE_OUT="$trace_tmp/replay.json" \
    OSIRIS_REPLAY_METRICS_OUT="$trace_tmp/replay_metrics" \
    OSIRIS_REPLAY_TIMESERIES_OUT="$trace_tmp/replay_timeseries.json" \
    cargo run --release -p osiris-bench --bin axiom_replay -- "$trace_tmp/a_axiom.bin"
diff "$trace_tmp/a.json" "$trace_tmp/replay.json"
diff "$trace_tmp/a_metrics.prom" "$trace_tmp/replay_metrics.prom"
diff "$trace_tmp/a_metrics.json" "$trace_tmp/replay_metrics.json"
diff "$trace_tmp/a_timeseries.json" "$trace_tmp/replay_timeseries.json"
cargo run --release -p osiris-bench --bin axiom_bisect -- \
    "$trace_tmp/a_axiom.bin" "$trace_tmp/b_axiom.bin" >/dev/null

echo "== bench_trace --check: tracer overhead bounds =="
cargo run --release -p osiris-bench --bin bench_trace -- --check

echo "== bench_metrics --check: registry overhead bounds =="
cargo run --release -p osiris-bench --bin bench_metrics -- --check

echo "== bench_restart --check: O(dirty) restart + clone-pool dedup =="
cargo run --release -p osiris-bench --bin bench_restart -- --check

echo "== bench_axiom --check: disabled-recorder overhead + zero-alloc retention =="
cargo run --release -p osiris-bench --bin bench_axiom -- --check

echo "== bench_spans --check: disabled span-recorder overhead + zero-alloc recording =="
cargo run --release -p osiris-bench --bin bench_spans -- --check

echo "== watchdog recovery: fail-silent detection, retry/backoff and reply-integrity suite =="
cargo test -q -p osiris-servers --test watchdog_recovery

echo "== hang_recovery example: wedge -> watchdog verdict -> rollback -> transparent retry =="
cargo run --release --example hang_recovery >/dev/null

echo "== bench_timeouts --check: hang-detection latency bound + zero-alloc armed deadlines =="
cargo run --release -p osiris-bench --bin bench_timeouts -- --check

echo "== forge fork equivalence + determinism: snapshot-fork campaign suites =="
cargo test -q -p osiris-faults --test forge_fork
cargo test -q -p osiris-faults --test forge_campaign
cargo test -q -p osiris-faults --test forge_sweep
cargo test -q -p osiris-faults --test fail_silent_forge

echo "== campaign_coverage: FailStop + DoubleFault x DuringRecovery + fail-silent Hang/ReplyDrop coverage gates =="
OSIRIS_FORGE_OUT="$trace_tmp/campaign_coverage" \
    cargo run --release -p osiris-bench --bin campaign_coverage >/dev/null
cargo run --release -p osiris-metrics --bin promlint -- "$trace_tmp/campaign_coverage.prom"
for fam in osiris_forge_forks_total osiris_forge_readopts_total \
    osiris_forge_fork_dirty_bytes_total osiris_forge_snapshots_total \
    osiris_forge_cells_covered osiris_forge_frontier_flips_total; do
    grep -q "^$fam" "$trace_tmp/campaign_coverage.prom" || {
        echo "missing forge metric family in exposition: $fam" >&2
        exit 1
    }
done

echo "== bench_campaign --check: forged-injection speedup + adoption alloc discipline =="
cargo run --release -p osiris-bench --bin bench_campaign -- --check

echo "ci.sh: all gates passed"
