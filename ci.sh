#!/usr/bin/env bash
# Offline CI gate: formatting, lints, build, and the tier-1 test suite.
# Everything runs without network access; the workspace has no external
# dependencies.
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo test -q =="
cargo test -q

echo "== workspace tests =="
cargo test -q --workspace

echo "== trace determinism: two identical runs, byte-identical exports =="
trace_tmp="$(mktemp -d)"
trap 'rm -rf "$trace_tmp"' EXIT
OSIRIS_TRACE_OUT="$trace_tmp/a.json" cargo run --release --example quickstart >/dev/null
OSIRIS_TRACE_OUT="$trace_tmp/b.json" cargo run --release --example quickstart >/dev/null
diff "$trace_tmp/a.json" "$trace_tmp/b.json"

echo "== bench_trace --check: tracer overhead bounds =="
cargo run --release -p osiris-bench --bin bench_trace -- --check

echo "ci.sh: all gates passed"
