#!/usr/bin/env bash
# Offline CI gate: formatting, lints, build, and the tier-1 test suite.
# Everything runs without network access; the workspace has no external
# dependencies.
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo test -q =="
cargo test -q

echo "== workspace tests =="
cargo test -q --workspace

echo "ci.sh: all gates passed"
