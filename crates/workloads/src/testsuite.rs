//! The prototype test suite.
//!
//! The paper's recovery and survivability experiments use "a homegrown set
//! of 89 programs in total, written to maximize code coverage in the system
//! servers" (§VI). This module is that suite's analog: several dozen small,
//! genuinely distinct programs exercising every server subsystem — process
//! lifecycle, signals, sleeping, memory, files, directories, pipes, the data
//! store, descriptor inheritance, cleanup-on-exit and cross-server
//! interactions.
//!
//! Each test returns `0` on success and nonzero on failure, and treats
//! *every* error — including `ECRASH` from a recovered server — as a test
//! failure rather than a reason to wedge, matching the paper's outcome
//! classification ("fail" = suite completed with failures, system alive).

use osiris_kernel::abi::{Errno, OpenFlags, SeekFrom, Signal};
use osiris_kernel::{ProgramRegistry, Sys};

type TestFn = fn(&mut Sys) -> Result<(), Errno>;

fn check(cond: bool) -> Result<(), Errno> {
    if cond {
        Ok(())
    } else {
        Err(Errno::EINVAL)
    }
}

/// Registers one Result-returning test under `name`.
fn reg(
    registry: &mut ProgramRegistry,
    names: &mut Vec<&'static str>,
    name: &'static str,
    f: TestFn,
) {
    registry.register(name, move |sys| match f(sys) {
        Ok(()) => 0,
        Err(_) => 1,
    });
    names.push(name);
}

// --------------------------------------------------------------------
// Process management
// --------------------------------------------------------------------

fn t_getpid(sys: &mut Sys) -> Result<(), Errno> {
    let a = sys.getpid()?;
    let b = sys.getpid()?;
    check(a == b && a == sys.pid())
}

fn t_getppid(sys: &mut Sys) -> Result<(), Errno> {
    let me = sys.getpid()?;
    let child = sys.fork_run(move |c| match c.getppid() {
        Ok(p) if p == me => 0,
        _ => 1,
    })?;
    check(sys.waitpid(child)? == 0)
}

fn t_spawn_basic(sys: &mut Sys) -> Result<(), Errno> {
    let child = sys.spawn("helper_ok", &[])?;
    check(sys.waitpid(child)? == 42)
}

fn t_spawn_args(sys: &mut Sys) -> Result<(), Errno> {
    let child = sys.spawn("helper_argc", &["x", "y", "z"])?;
    check(sys.waitpid(child)? == 3)
}

fn t_spawn_missing(sys: &mut Sys) -> Result<(), Errno> {
    check(sys.spawn("no_such_program", &[]) == Err(Errno::ENOENT))
}

fn t_spawn_many(sys: &mut Sys) -> Result<(), Errno> {
    let mut pids = Vec::new();
    for _ in 0..8 {
        pids.push(sys.spawn("helper_ok", &[])?);
    }
    for pid in pids {
        check(sys.waitpid(pid)? == 42)?;
    }
    Ok(())
}

fn t_fork_basic(sys: &mut Sys) -> Result<(), Errno> {
    let child = sys.fork_run(|_c| 5)?;
    check(sys.waitpid(child)? == 5)
}

fn t_fork_nested(sys: &mut Sys) -> Result<(), Errno> {
    let child = sys.fork_run(|c| {
        let gc = match c.fork_run(|_g| 3) {
            Ok(p) => p,
            Err(_) => return 1,
        };
        match c.waitpid(gc) {
            Ok(3) => 0,
            _ => 1,
        }
    })?;
    check(sys.waitpid(child)? == 0)
}

fn t_exec_basic(sys: &mut Sys) -> Result<(), Errno> {
    let child = sys.fork_run(|c| match c.exec("helper_ok", &[]) {
        Err(_) => 1,
        Ok(never) => match never {},
    })?;
    check(sys.waitpid(child)? == 42)
}

fn t_exec_chain(sys: &mut Sys) -> Result<(), Errno> {
    let child = sys.fork_run(|c| match c.exec("helper_exec_mid", &[]) {
        Err(_) => 1,
        Ok(never) => match never {},
    })?;
    check(sys.waitpid(child)? == 42)
}

fn t_wait_any_order(sys: &mut Sys) -> Result<(), Errno> {
    let a = sys.fork_run(|_| 1)?;
    let b = sys.fork_run(|_| 2)?;
    let mut seen = [false; 3];
    for _ in 0..2 {
        let (pid, code) = sys.wait_any()?;
        check(pid == a || pid == b)?;
        seen[code as usize] = true;
    }
    check(seen[1] && seen[2])
}

fn t_wait_specific(sys: &mut Sys) -> Result<(), Errno> {
    let a = sys.fork_run(|_| 10)?;
    let b = sys.fork_run(|_| 20)?;
    // Wait for the second child first.
    check(sys.waitpid(b)? == 20)?;
    check(sys.waitpid(a)? == 10)
}

fn t_wait_echild(sys: &mut Sys) -> Result<(), Errno> {
    check(sys.wait_any() == Err(Errno::ECHILD))
}

fn t_wait_not_my_child(sys: &mut Sys) -> Result<(), Errno> {
    check(sys.waitpid(osiris_kernel::abi::Pid(4096)) == Err(Errno::ECHILD))
}

fn t_zombie_reap(sys: &mut Sys) -> Result<(), Errno> {
    let child = sys.fork_run(|_| 7)?;
    // Give the child time to exit and become a zombie before waiting.
    sys.sleep(1000)?;
    check(sys.waitpid(child)? == 7)
}

fn t_exit_codes(sys: &mut Sys) -> Result<(), Errno> {
    for code in [0, 1, 77, 126] {
        let child = sys.fork_run(move |_| code)?;
        check(sys.waitpid(child)? == code)?;
    }
    Ok(())
}

fn t_orphan_reparent(sys: &mut Sys) -> Result<(), Errno> {
    // Child spawns a grandchild and exits immediately; the grandchild is
    // reparented to init. We only verify the child's side completes and the
    // whole system stays consistent (the audit catches leaks).
    let child = sys.fork_run(|c| {
        match c.fork_run(|g| {
            let _ = g.sleep(500);
            match g.getppid() {
                Ok(p) if p.0 == 1 => 0,
                _ => 1,
            }
        }) {
            Ok(_) => 0,
            Err(_) => 1,
        }
    })?;
    check(sys.waitpid(child)? == 0)?;
    sys.sleep(2000)?;
    Ok(())
}

// --------------------------------------------------------------------
// Signals
// --------------------------------------------------------------------

fn t_kill_basic(sys: &mut Sys) -> Result<(), Errno> {
    let child = sys.fork_run(|c| {
        let _ = c.sleep(1_000_000);
        0
    })?;
    sys.kill(child, Signal::SigKill)?;
    check(sys.waitpid(child)? == -9)
}

fn t_sigterm_default(sys: &mut Sys) -> Result<(), Errno> {
    let child = sys.fork_run(|c| {
        let _ = c.sleep(1_000_000);
        0
    })?;
    sys.kill(child, Signal::SigTerm)?;
    check(sys.waitpid(child)? == -9)
}

fn t_sigterm_masked(sys: &mut Sys) -> Result<(), Errno> {
    sys.sigmask(Signal::SigTerm, true)?;
    let me = sys.getpid()?;
    sys.kill(me, Signal::SigTerm)?;
    let pending = sys.sigpending()?;
    sys.sigmask(Signal::SigTerm, false)?;
    check(pending.contains(&Signal::SigTerm))
}

fn t_sigusr_pending(sys: &mut Sys) -> Result<(), Errno> {
    let me = sys.getpid()?;
    sys.kill(me, Signal::SigUsr1)?;
    sys.kill(me, Signal::SigUsr2)?;
    sys.kill(me, Signal::SigUsr1)?;
    let pending = sys.sigpending()?;
    check(pending.contains(&Signal::SigUsr1) && pending.contains(&Signal::SigUsr2))?;
    check(sys.sigpending()?.is_empty())
}

fn t_sigmask_invalid(sys: &mut Sys) -> Result<(), Errno> {
    check(sys.sigmask(Signal::SigKill, true) == Err(Errno::EINVAL))
}

fn t_kill_esrch(sys: &mut Sys) -> Result<(), Errno> {
    check(sys.kill(osiris_kernel::abi::Pid(4097), Signal::SigKill) == Err(Errno::ESRCH))
}

fn t_sleep_basic(sys: &mut Sys) -> Result<(), Errno> {
    sys.sleep(100)?;
    sys.sleep(1)?;
    Ok(())
}

fn t_sleep_kill(sys: &mut Sys) -> Result<(), Errno> {
    let child = sys.fork_run(|c| {
        let _ = c.sleep(10_000_000);
        3
    })?;
    sys.sleep(100)?;
    sys.kill(child, Signal::SigKill)?;
    check(sys.waitpid(child)? == -9)
}

// --------------------------------------------------------------------
// Memory
// --------------------------------------------------------------------

fn t_brk_grow_shrink(sys: &mut Sys) -> Result<(), Errno> {
    let base = sys.vmstat()?;
    sys.brk(8)?;
    check(sys.vmstat()? == base + 8)?;
    sys.brk(-8)?;
    check(sys.vmstat()? == base)
}

fn t_brk_invalid(sys: &mut Sys) -> Result<(), Errno> {
    check(sys.brk(-1_000_000) == Err(Errno::EINVAL))
}

fn t_mmap_munmap(sys: &mut Sys) -> Result<(), Errno> {
    let before = sys.vmstat()?;
    let a = sys.mmap(4)?;
    let b = sys.mmap(6)?;
    check(sys.vmstat()? == before + 10)?;
    sys.munmap(a)?;
    check(sys.vmstat()? == before + 6)?;
    sys.munmap(b)?;
    check(sys.vmstat()? == before)
}

fn t_munmap_invalid(sys: &mut Sys) -> Result<(), Errno> {
    check(sys.munmap(99_999) == Err(Errno::EINVAL))?;
    check(sys.mmap(0) == Err(Errno::EINVAL))
}

fn t_vmstat_fork(sys: &mut Sys) -> Result<(), Errno> {
    sys.brk(3)?;
    let mine = sys.vmstat()?;
    let child = sys.fork_run(move |c| match c.vmstat() {
        Ok(r) if r == mine => 0,
        _ => 1,
    })?;
    let r = sys.waitpid(child)?;
    sys.brk(-3)?;
    check(r == 0)
}

fn t_mmap_large(sys: &mut Sys) -> Result<(), Errno> {
    let id = sys.mmap(512)?;
    check(sys.vmstat()? >= 512)?;
    sys.munmap(id)?;
    Ok(())
}

// --------------------------------------------------------------------
// Files
// --------------------------------------------------------------------

fn t_create_write_read(sys: &mut Sys) -> Result<(), Errno> {
    let fd = sys.open("/tmp/t_cwr", OpenFlags::CREATE)?;
    check(sys.write(fd, b"payload")? == 7)?;
    sys.close(fd)?;
    let fd = sys.open("/tmp/t_cwr", OpenFlags::RDONLY)?;
    let data = sys.read(fd, 32)?;
    sys.close(fd)?;
    sys.unlink("/tmp/t_cwr")?;
    check(data == b"payload")
}

fn t_read_eof(sys: &mut Sys) -> Result<(), Errno> {
    let fd = sys.open("/tmp/t_eof", OpenFlags::CREATE)?;
    sys.write(fd, b"ab")?;
    sys.seek(fd, SeekFrom::Start(0))?;
    let fd2 = sys.open("/tmp/t_eof", OpenFlags::RDONLY)?;
    check(sys.read(fd2, 10)? == b"ab")?;
    check(sys.read(fd2, 10)?.is_empty())?;
    sys.close(fd2)?;
    sys.close(fd)?;
    sys.unlink("/tmp/t_eof")
}

fn t_open_enoent(sys: &mut Sys) -> Result<(), Errno> {
    check(sys.open("/tmp/never_created", OpenFlags::RDONLY) == Err(Errno::ENOENT))?;
    check(sys.open("/no_dir/x", OpenFlags::CREATE) == Err(Errno::ENOENT))
}

fn t_open_truncate(sys: &mut Sys) -> Result<(), Errno> {
    let fd = sys.open("/tmp/t_trunc", OpenFlags::CREATE)?;
    sys.write(fd, b"0123456789")?;
    sys.close(fd)?;
    let fd = sys.open("/tmp/t_trunc", OpenFlags::CREATE)?; // truncates
    sys.close(fd)?;
    let st = sys.stat("/tmp/t_trunc")?;
    sys.unlink("/tmp/t_trunc")?;
    check(st.size == 0)
}

fn t_append(sys: &mut Sys) -> Result<(), Errno> {
    let fd = sys.open("/tmp/t_app", OpenFlags::CREATE)?;
    sys.write(fd, b"aaa")?;
    sys.close(fd)?;
    let fd = sys.open("/tmp/t_app", OpenFlags::APPEND)?;
    sys.write(fd, b"bbb")?;
    sys.close(fd)?;
    let fd = sys.open("/tmp/t_app", OpenFlags::RDONLY)?;
    let data = sys.read(fd, 16)?;
    sys.close(fd)?;
    sys.unlink("/tmp/t_app")?;
    check(data == b"aaabbb")
}

fn t_seek_all(sys: &mut Sys) -> Result<(), Errno> {
    let fd = sys.open("/tmp/t_seek", OpenFlags::RDWR_CREATE)?;
    sys.write(fd, b"0123456789")?;
    check(sys.seek(fd, SeekFrom::Start(4))? == 4)?;
    check(sys.read(fd, 2)? == b"45")?;
    check(sys.seek(fd, SeekFrom::Current(-3))? == 3)?;
    check(sys.seek(fd, SeekFrom::End(-1))? == 9)?;
    check(sys.read(fd, 5)? == b"9")?;
    sys.close(fd)?;
    sys.unlink("/tmp/t_seek")
}

fn t_seek_invalid(sys: &mut Sys) -> Result<(), Errno> {
    let fd = sys.open("/tmp/t_seekbad", OpenFlags::CREATE)?;
    let r = sys.seek(fd, SeekFrom::Current(-5));
    sys.close(fd)?;
    sys.unlink("/tmp/t_seekbad")?;
    check(r == Err(Errno::EINVAL))
}

fn t_sparse(sys: &mut Sys) -> Result<(), Errno> {
    let fd = sys.open("/tmp/t_sparse", OpenFlags::RDWR_CREATE)?;
    sys.seek(fd, SeekFrom::Start(3000))?;
    sys.write(fd, b"end")?;
    sys.seek(fd, SeekFrom::Start(1000))?;
    let mid = sys.read(fd, 8)?;
    sys.close(fd)?;
    sys.unlink("/tmp/t_sparse")?;
    check(mid == vec![0u8; 8])
}

fn t_mkdir_basic(sys: &mut Sys) -> Result<(), Errno> {
    sys.mkdir("/tmp/t_d1")?;
    check(sys.stat("/tmp/t_d1")?.is_dir)
}

fn t_mkdir_eexist(sys: &mut Sys) -> Result<(), Errno> {
    sys.mkdir("/tmp/t_d2")?;
    check(sys.mkdir("/tmp/t_d2") == Err(Errno::EEXIST))
}

fn t_mkdir_nested(sys: &mut Sys) -> Result<(), Errno> {
    sys.mkdir("/tmp/t_d3")?;
    sys.mkdir("/tmp/t_d3/sub")?;
    let fd = sys.open("/tmp/t_d3/sub/f", OpenFlags::CREATE)?;
    sys.close(fd)?;
    let entries = sys.readdir("/tmp/t_d3/sub")?;
    sys.unlink("/tmp/t_d3/sub/f")?;
    check(entries == vec!["f"])
}

fn t_readdir_root(sys: &mut Sys) -> Result<(), Errno> {
    let entries = sys.readdir("/")?;
    check(entries.contains(&"tmp".to_string()) && entries.contains(&"bin".to_string()))
}

fn t_readdir_on_file(sys: &mut Sys) -> Result<(), Errno> {
    let fd = sys.open("/tmp/t_rdf", OpenFlags::CREATE)?;
    sys.close(fd)?;
    let r = sys.readdir("/tmp/t_rdf");
    sys.unlink("/tmp/t_rdf")?;
    check(r == Err(Errno::ENOTDIR))
}

fn t_stat_file_dir(sys: &mut Sys) -> Result<(), Errno> {
    let fd = sys.open("/tmp/t_stat", OpenFlags::CREATE)?;
    sys.write(fd, &[9u8; 123])?;
    sys.close(fd)?;
    let st = sys.stat("/tmp/t_stat")?;
    check(st.size == 123 && !st.is_dir)?;
    check(sys.stat("/tmp")?.is_dir)?;
    sys.unlink("/tmp/t_stat")?;
    check(sys.stat("/tmp/t_stat") == Err(Errno::ENOENT))
}

fn t_unlink_enoent(sys: &mut Sys) -> Result<(), Errno> {
    check(sys.unlink("/tmp/ghost") == Err(Errno::ENOENT))
}

fn t_unlink_busy(sys: &mut Sys) -> Result<(), Errno> {
    let fd = sys.open("/tmp/t_busy", OpenFlags::CREATE)?;
    let r = sys.unlink("/tmp/t_busy");
    sys.close(fd)?;
    sys.unlink("/tmp/t_busy")?;
    check(r == Err(Errno::EBUSY))
}

fn t_rename(sys: &mut Sys) -> Result<(), Errno> {
    let fd = sys.open("/tmp/t_rn_a", OpenFlags::CREATE)?;
    sys.write(fd, b"move me")?;
    sys.close(fd)?;
    sys.rename("/tmp/t_rn_a", "/tmp/t_rn_b")?;
    check(sys.stat("/tmp/t_rn_a") == Err(Errno::ENOENT))?;
    let st = sys.stat("/tmp/t_rn_b")?;
    sys.unlink("/tmp/t_rn_b")?;
    check(st.size == 7)
}

fn t_rename_missing(sys: &mut Sys) -> Result<(), Errno> {
    check(sys.rename("/tmp/no_src", "/tmp/no_dst") == Err(Errno::ENOENT))
}

fn t_bigfile(sys: &mut Sys) -> Result<(), Errno> {
    let fd = sys.open("/tmp/t_big", OpenFlags::RDWR_CREATE)?;
    let chunk = [0x5au8; 4096];
    for _ in 0..16 {
        sys.write(fd, &chunk)?;
    }
    sys.seek(fd, SeekFrom::Start(0))?;
    let mut total = 0;
    loop {
        let d = sys.read(fd, 4096)?;
        if d.is_empty() {
            break;
        }
        check(d.iter().all(|b| *b == 0x5a))?;
        total += d.len();
    }
    sys.close(fd)?;
    sys.unlink("/tmp/t_big")?;
    check(total == 16 * 4096)
}

fn t_fsync(sys: &mut Sys) -> Result<(), Errno> {
    let fd = sys.open("/tmp/t_sync", OpenFlags::CREATE)?;
    sys.write(fd, &[1u8; 2048])?;
    sys.fsync(fd)?;
    sys.close(fd)?;
    sys.unlink("/tmp/t_sync")
}

fn t_many_files(sys: &mut Sys) -> Result<(), Errno> {
    sys.mkdir("/tmp/t_many")?;
    for i in 0..20 {
        let path = format!("/tmp/t_many/f{}", i);
        let fd = sys.open(&path, OpenFlags::CREATE)?;
        sys.write(fd, path.as_bytes())?;
        sys.close(fd)?;
    }
    check(sys.readdir("/tmp/t_many")?.len() == 20)?;
    for i in 0..20 {
        sys.unlink(&format!("/tmp/t_many/f{}", i))?;
    }
    check(sys.readdir("/tmp/t_many")?.is_empty())
}

fn t_dup_offset(sys: &mut Sys) -> Result<(), Errno> {
    let fd = sys.open("/tmp/t_dup", OpenFlags::RDWR_CREATE)?;
    sys.write(fd, b"abcd")?;
    let fd2 = sys.dup(fd)?;
    sys.seek(fd, SeekFrom::Start(1))?;
    let d = sys.read(fd2, 2)?;
    sys.close(fd)?;
    sys.close(fd2)?;
    sys.unlink("/tmp/t_dup")?;
    check(d == b"bc")
}

fn t_emfile(sys: &mut Sys) -> Result<(), Errno> {
    let mut fds = Vec::new();
    let mut hit_limit = false;
    for i in 0..70 {
        match sys.open(&format!("/tmp/t_fd{}", i), OpenFlags::CREATE) {
            Ok(fd) => fds.push((i, fd)),
            Err(Errno::EMFILE) => {
                hit_limit = true;
                break;
            }
            Err(e) => return Err(e),
        }
    }
    for (i, fd) in &fds {
        sys.close(*fd)?;
        sys.unlink(&format!("/tmp/t_fd{}", i))?;
    }
    check(hit_limit)
}

// --------------------------------------------------------------------
// Pipes
// --------------------------------------------------------------------

fn t_pipe_basic(sys: &mut Sys) -> Result<(), Errno> {
    let (r, w) = sys.pipe()?;
    sys.write(w, b"through")?;
    let d = sys.read(r, 16)?;
    sys.close(r)?;
    sys.close(w)?;
    check(d == b"through")
}

fn t_pipe_eof(sys: &mut Sys) -> Result<(), Errno> {
    let (r, w) = sys.pipe()?;
    sys.write(w, b"x")?;
    sys.close(w)?;
    check(sys.read(r, 4)? == b"x")?;
    check(sys.read(r, 4)?.is_empty())?;
    sys.close(r)
}

fn t_pipe_epipe(sys: &mut Sys) -> Result<(), Errno> {
    let (r, w) = sys.pipe()?;
    sys.close(r)?;
    let res = sys.write(w, b"x");
    sys.close(w)?;
    check(res == Err(Errno::EPIPE))
}

fn t_pipe_blocking(sys: &mut Sys) -> Result<(), Errno> {
    let (r, w) = sys.pipe()?;
    let child = sys.fork_run(move |c| {
        let _ = c.close(w);
        match c.read(r, 8) {
            Ok(d) if d == b"data" => 0,
            _ => 1,
        }
    })?;
    sys.write(w, b"data")?;
    let code = sys.waitpid(child)?;
    sys.close(r)?;
    sys.close(w)?;
    check(code == 0)
}

fn t_pipe_pingpong(sys: &mut Sys) -> Result<(), Errno> {
    let (r1, w1) = sys.pipe()?;
    let (r2, w2) = sys.pipe()?;
    let child = sys.fork_run(move |c| {
        for _ in 0..10 {
            let d = match c.read(r1, 1) {
                Ok(d) if !d.is_empty() => d,
                _ => return 1,
            };
            if c.write(w2, &d).is_err() {
                return 1;
            }
        }
        0
    })?;
    for i in 0..10u8 {
        sys.write(w1, &[i])?;
        let back = sys.read(r2, 1)?;
        check(back == vec![i])?;
    }
    check(sys.waitpid(child)? == 0)?;
    for fd in [r1, w1, r2, w2] {
        sys.close(fd)?;
    }
    Ok(())
}

fn t_pipe_chunks(sys: &mut Sys) -> Result<(), Errno> {
    let (r, w) = sys.pipe()?;
    let payload = vec![7u8; 8192];
    let child = sys.fork_run(move |c| {
        // Close the inherited write end, or EOF never arrives.
        if c.close(w).is_err() {
            return 1;
        }
        let mut total = 0usize;
        loop {
            match c.read(r, 1024) {
                Ok(d) if d.is_empty() => break,
                Ok(d) => total += d.len(),
                Err(_) => return 1,
            }
        }
        i32::from(total != 8192)
    })?;
    for chunk in payload.chunks(1024) {
        sys.write(w, chunk)?;
    }
    sys.close(w)?;
    sys.close(r)?;
    check(sys.waitpid(child)? == 0)
}

fn t_pipe_dup_ends(sys: &mut Sys) -> Result<(), Errno> {
    let (r, w) = sys.pipe()?;
    let w2 = sys.dup(w)?;
    sys.close(w)?;
    // The duplicated writer keeps the pipe alive.
    sys.write(w2, b"dup")?;
    check(sys.read(r, 8)? == b"dup")?;
    sys.close(w2)?;
    check(sys.read(r, 8)?.is_empty())?;
    sys.close(r)
}

// --------------------------------------------------------------------
// Data store
// --------------------------------------------------------------------

fn t_ds_put_get(sys: &mut Sys) -> Result<(), Errno> {
    sys.ds_put("t/basic", b"value-1")?;
    check(sys.ds_get("t/basic")? == b"value-1")
}

fn t_ds_del(sys: &mut Sys) -> Result<(), Errno> {
    sys.ds_put("t/del", b"x")?;
    sys.ds_del("t/del")?;
    check(sys.ds_get("t/del") == Err(Errno::ENOKEY))?;
    check(sys.ds_del("t/del") == Err(Errno::ENOKEY))
}

fn t_ds_list_prefix(sys: &mut Sys) -> Result<(), Errno> {
    sys.ds_put("t/list/a", b"1")?;
    sys.ds_put("t/list/b", b"2")?;
    sys.ds_put("t/other", b"3")?;
    let keys = sys.ds_list("t/list/")?;
    check(keys.len() == 2)
}

fn t_ds_overwrite(sys: &mut Sys) -> Result<(), Errno> {
    sys.ds_put("t/ow", b"old")?;
    sys.ds_put("t/ow", b"new")?;
    check(sys.ds_get("t/ow")? == b"new")
}

fn t_ds_many(sys: &mut Sys) -> Result<(), Errno> {
    for i in 0..50 {
        sys.ds_put(&format!("t/many/{}", i), &[i as u8])?;
    }
    check(sys.ds_list("t/many/")?.len() == 50)?;
    for i in 0..50 {
        sys.ds_del(&format!("t/many/{}", i))?;
    }
    Ok(())
}

// --------------------------------------------------------------------
// Cross-cutting
// --------------------------------------------------------------------

fn t_shell_like(sys: &mut Sys) -> Result<(), Errno> {
    let child = sys.spawn("helper_touch", &["/tmp/t_shell_out"])?;
    check(sys.waitpid(child)? == 0)?;
    check(sys.stat("/tmp/t_shell_out")?.size == 4)?;
    sys.unlink("/tmp/t_shell_out")
}

fn t_fd_cleanup_on_exit(sys: &mut Sys) -> Result<(), Errno> {
    let child = sys.fork_run(|c| {
        // Open files and exit without closing: VFS cleanup must release
        // them.
        let _ = c.open("/tmp/t_leak", OpenFlags::CREATE);
        0
    })?;
    check(sys.waitpid(child)? == 0)?;
    // If cleanup worked the file is no longer busy.
    sys.unlink("/tmp/t_leak")
}

fn t_kill_blocked_reader(sys: &mut Sys) -> Result<(), Errno> {
    let (r, w) = sys.pipe()?;
    let child = sys.fork_run(move |c| {
        let _ = c.read(r, 8); // blocks forever; parent kills us
        0
    })?;
    sys.sleep(100)?;
    sys.kill(child, Signal::SigKill)?;
    check(sys.waitpid(child)? == -9)?;
    sys.close(r)?;
    sys.close(w)?;
    Ok(())
}

fn t_concurrent_disk(sys: &mut Sys) -> Result<(), Errno> {
    // Two children thrash the block cache concurrently, exercising the
    // VFS cooperative threads.
    let mk = |path: &'static str| {
        move |c: &mut Sys| {
            let fd = match c.open(path, OpenFlags::RDWR_CREATE) {
                Ok(fd) => fd,
                Err(_) => return 1,
            };
            let chunk = [3u8; 4096];
            for _ in 0..20 {
                if c.write(fd, &chunk).is_err() {
                    return 1;
                }
            }
            if c.seek(fd, SeekFrom::Start(0)).is_err() {
                return 1;
            }
            let mut total = 0;
            loop {
                match c.read(fd, 4096) {
                    Ok(d) if d.is_empty() => break,
                    Ok(d) => total += d.len(),
                    Err(_) => return 1,
                }
            }
            let _ = c.close(fd);
            let _ = c.unlink(path);
            i32::from(total != 20 * 4096)
        }
    };
    let a = sys.fork_run(mk("/tmp/t_cc_a"))?;
    let b = sys.fork_run(mk("/tmp/t_cc_b"))?;
    check(sys.waitpid(a)? == 0)?;
    check(sys.waitpid(b)? == 0)
}

fn t_exec_load_cache(sys: &mut Sys) -> Result<(), Errno> {
    // The second exec of the same binary hits the VFS block cache.
    for _ in 0..2 {
        let child = sys.fork_run(|c| match c.exec("helper_ok", &[]) {
            Err(_) => 1,
            Ok(never) => match never {},
        })?;
        check(sys.waitpid(child)? == 42)?;
    }
    Ok(())
}

fn t_mixed_stress(sys: &mut Sys) -> Result<(), Errno> {
    sys.ds_put("t/stress", b"begin")?;
    let fd = sys.open("/tmp/t_stress", OpenFlags::RDWR_CREATE)?;
    let child = sys.fork_run(|c| {
        let _ = c.brk(2);
        let me = match c.getpid() {
            Ok(p) => p,
            Err(_) => return 1,
        };
        let _ = c.kill(me, Signal::SigUsr1);
        match c.sigpending() {
            Ok(p) if p.contains(&Signal::SigUsr1) => 0,
            _ => 1,
        }
    })?;
    sys.write(fd, b"stress-data")?;
    check(sys.waitpid(child)? == 0)?;
    sys.seek(fd, SeekFrom::Start(0))?;
    check(sys.read(fd, 16)? == b"stress-data")?;
    sys.close(fd)?;
    sys.unlink("/tmp/t_stress")?;
    sys.ds_del("t/stress")?;
    Ok(())
}

fn t_compute(sys: &mut Sys) -> Result<(), Errno> {
    sys.compute(1000);
    sys.getpid()?;
    sys.compute(1000);
    Ok(())
}

fn t_rename_across_dirs(sys: &mut Sys) -> Result<(), Errno> {
    sys.mkdir("/tmp/t_rsrc")?;
    sys.mkdir("/tmp/t_rdst")?;
    let fd = sys.open("/tmp/t_rsrc/f", OpenFlags::CREATE)?;
    sys.write(fd, b"mv")?;
    sys.close(fd)?;
    sys.rename("/tmp/t_rsrc/f", "/tmp/t_rdst/g")?;
    check(sys.readdir("/tmp/t_rsrc")?.is_empty())?;
    check(sys.stat("/tmp/t_rdst/g")?.size == 2)?;
    sys.unlink("/tmp/t_rdst/g")
}

fn t_rename_onto_existing(sys: &mut Sys) -> Result<(), Errno> {
    for p in ["/tmp/t_re_a", "/tmp/t_re_b"] {
        let fd = sys.open(p, OpenFlags::CREATE)?;
        sys.close(fd)?;
    }
    let r = sys.rename("/tmp/t_re_a", "/tmp/t_re_b");
    sys.unlink("/tmp/t_re_a")?;
    sys.unlink("/tmp/t_re_b")?;
    check(r == Err(Errno::EEXIST))
}

fn t_deep_paths(sys: &mut Sys) -> Result<(), Errno> {
    sys.mkdir("/tmp/t_deep")?;
    sys.mkdir("/tmp/t_deep/a")?;
    sys.mkdir("/tmp/t_deep/a/b")?;
    sys.mkdir("/tmp/t_deep/a/b/c")?;
    let fd = sys.open("/tmp/t_deep/a/b/c/leaf", OpenFlags::CREATE)?;
    sys.write(fd, b"deep")?;
    sys.close(fd)?;
    check(sys.stat("/tmp/t_deep/a/b/c/leaf")?.size == 4)?;
    sys.unlink("/tmp/t_deep/a/b/c/leaf")
}

fn t_stat_nlink(sys: &mut Sys) -> Result<(), Errno> {
    sys.mkdir("/tmp/t_nl")?;
    let before = sys.stat("/tmp/t_nl")?.nlink;
    let fd = sys.open("/tmp/t_nl/x", OpenFlags::CREATE)?;
    sys.close(fd)?;
    let after = sys.stat("/tmp/t_nl")?.nlink;
    sys.unlink("/tmp/t_nl/x")?;
    check(after == before + 1)
}

fn t_mkdir_under_file(sys: &mut Sys) -> Result<(), Errno> {
    let fd = sys.open("/tmp/t_notdir", OpenFlags::CREATE)?;
    sys.close(fd)?;
    let r = sys.mkdir("/tmp/t_notdir/sub");
    sys.unlink("/tmp/t_notdir")?;
    check(r == Err(Errno::ENOTDIR))
}

fn t_write_to_rdonly_fd(sys: &mut Sys) -> Result<(), Errno> {
    let fd = sys.open("/tmp/t_ro", OpenFlags::CREATE)?;
    sys.close(fd)?;
    let fd = sys.open("/tmp/t_ro", OpenFlags::RDONLY)?;
    let r = sys.write(fd, b"nope");
    sys.close(fd)?;
    sys.unlink("/tmp/t_ro")?;
    check(r == Err(Errno::EBADF))
}

fn t_seek_past_eof_then_write(sys: &mut Sys) -> Result<(), Errno> {
    let fd = sys.open("/tmp/t_peof", OpenFlags::RDWR_CREATE)?;
    sys.write(fd, b"head")?;
    sys.seek(fd, SeekFrom::End(100))?;
    sys.write(fd, b"tail")?;
    let st = sys.stat("/tmp/t_peof")?;
    sys.close(fd)?;
    sys.unlink("/tmp/t_peof")?;
    check(st.size == 108)
}

fn t_pipe_two_writers(sys: &mut Sys) -> Result<(), Errno> {
    let (r, w) = sys.pipe()?;
    let c1 = sys.fork_run(move |c| {
        let _ = c.close(r);
        let ok = c.write(w, b"one").is_ok();
        i32::from(!ok)
    })?;
    check(sys.waitpid(c1)? == 0)?;
    let c2 = sys.fork_run(move |c| {
        let _ = c.close(r);
        let ok = c.write(w, b"two").is_ok();
        i32::from(!ok)
    })?;
    check(sys.waitpid(c2)? == 0)?;
    let mut total = Vec::new();
    while total.len() < 6 {
        let d = sys.read(r, 8)?;
        check(!d.is_empty())?;
        total.extend(d);
    }
    sys.close(r)?;
    sys.close(w)?;
    check(total == b"onetwo")
}

fn t_exec_args(sys: &mut Sys) -> Result<(), Errno> {
    let child = sys.fork_run(
        |c| match c.exec("helper_argc", &["1", "2", "3", "4", "5"]) {
            Err(_) => -1,
            Ok(never) => match never {},
        },
    )?;
    check(sys.waitpid(child)? == 5)
}

fn t_sleep_ordering(sys: &mut Sys) -> Result<(), Errno> {
    // Two sleeping children must be reapable in wake order.
    let slow = sys.fork_run(|c| {
        let _ = c.sleep(5000);
        2
    })?;
    let fast = sys.fork_run(|c| {
        let _ = c.sleep(100);
        1
    })?;
    let (first, code1) = sys.wait_any()?;
    check(first == fast && code1 == 1)?;
    let (second, code2) = sys.wait_any()?;
    check(second == slow && code2 == 2)
}

fn t_unmask_keeps_pending(sys: &mut Sys) -> Result<(), Errno> {
    // A masked SIGTERM stays pending; unmasking later does not kill
    // retroactively (delivery here is via sigpending only).
    sys.sigmask(Signal::SigTerm, true)?;
    let me = sys.getpid()?;
    sys.kill(me, Signal::SigTerm)?;
    sys.sigmask(Signal::SigTerm, false)?;
    let pending = sys.sigpending()?;
    check(pending.contains(&Signal::SigTerm))
}

fn t_ds_binary_values(sys: &mut Sys) -> Result<(), Errno> {
    let value: Vec<u8> = (0..=255).collect();
    sys.ds_put("t/bin", &value)?;
    check(sys.ds_get("t/bin")? == value)?;
    sys.ds_del("t/bin")
}

fn t_ds_empty_value(sys: &mut Sys) -> Result<(), Errno> {
    sys.ds_put("t/empty", b"")?;
    check(sys.ds_get("t/empty")?.is_empty())?;
    sys.ds_del("t/empty")
}

fn t_vm_fork_after_munmap(sys: &mut Sys) -> Result<(), Errno> {
    let id = sys.mmap(6)?;
    sys.munmap(id)?;
    let mine = sys.vmstat()?;
    let child = sys.fork_run(move |c| match c.vmstat() {
        Ok(r) if r == mine => 0,
        _ => 1,
    })?;
    check(sys.waitpid(child)? == 0)
}

fn t_fsync_after_eviction(sys: &mut Sys) -> Result<(), Errno> {
    // Write enough to force evictions, then fsync what remains dirty.
    let fd = sys.open("/tmp/t_fse", OpenFlags::RDWR_CREATE)?;
    for _ in 0..96 {
        sys.write(fd, &[7u8; 1024])?;
    }
    sys.fsync(fd)?;
    sys.seek(fd, SeekFrom::Start(0))?;
    let head = sys.read(fd, 16)?;
    sys.close(fd)?;
    sys.unlink("/tmp/t_fse")?;
    check(head == vec![7u8; 16])
}

fn t_readdir_bin(sys: &mut Sys) -> Result<(), Errno> {
    check(sys.readdir("/bin")?.is_empty())
}

fn t_relative_path_rejected(sys: &mut Sys) -> Result<(), Errno> {
    check(sys.open("not/absolute", OpenFlags::CREATE) == Err(Errno::EINVAL))?;
    check(sys.stat("") == Err(Errno::EINVAL))
}

/// Registers every test program plus the helpers and the `suite` driver.
/// Returns the registry and the ordered list of test names.
pub fn build_testsuite() -> (ProgramRegistry, Vec<&'static str>) {
    let mut registry = ProgramRegistry::new();
    let mut names = Vec::new();

    // Helper programs used by tests.
    registry.register("helper_ok", |_sys| 42);
    registry.register("helper_argc", |sys| sys.args().len() as i32);
    registry.register("helper_exec_mid", |sys| match sys.exec("helper_ok", &[]) {
        Err(_) => 1,
        Ok(never) => match never {},
    });
    registry.register("helper_touch", |sys| {
        let Some(path) = sys.args().first().cloned() else {
            return 1;
        };
        match sys.open(&path, OpenFlags::CREATE) {
            Ok(fd) => {
                let ok = sys.write(fd, b"data").is_ok();
                let _ = sys.close(fd);
                i32::from(!ok)
            }
            Err(_) => 1,
        }
    });

    reg(&mut registry, &mut names, "t_getpid", t_getpid);
    reg(&mut registry, &mut names, "t_getppid", t_getppid);
    reg(&mut registry, &mut names, "t_spawn_basic", t_spawn_basic);
    reg(&mut registry, &mut names, "t_spawn_args", t_spawn_args);
    reg(
        &mut registry,
        &mut names,
        "t_spawn_missing",
        t_spawn_missing,
    );
    reg(&mut registry, &mut names, "t_spawn_many", t_spawn_many);
    reg(&mut registry, &mut names, "t_fork_basic", t_fork_basic);
    reg(&mut registry, &mut names, "t_fork_nested", t_fork_nested);
    reg(&mut registry, &mut names, "t_exec_basic", t_exec_basic);
    reg(&mut registry, &mut names, "t_exec_chain", t_exec_chain);
    reg(
        &mut registry,
        &mut names,
        "t_wait_any_order",
        t_wait_any_order,
    );
    reg(
        &mut registry,
        &mut names,
        "t_wait_specific",
        t_wait_specific,
    );
    reg(&mut registry, &mut names, "t_wait_echild", t_wait_echild);
    reg(
        &mut registry,
        &mut names,
        "t_wait_not_my_child",
        t_wait_not_my_child,
    );
    reg(&mut registry, &mut names, "t_zombie_reap", t_zombie_reap);
    reg(&mut registry, &mut names, "t_exit_codes", t_exit_codes);
    reg(
        &mut registry,
        &mut names,
        "t_orphan_reparent",
        t_orphan_reparent,
    );
    reg(&mut registry, &mut names, "t_kill_basic", t_kill_basic);
    reg(
        &mut registry,
        &mut names,
        "t_sigterm_default",
        t_sigterm_default,
    );
    reg(
        &mut registry,
        &mut names,
        "t_sigterm_masked",
        t_sigterm_masked,
    );
    reg(
        &mut registry,
        &mut names,
        "t_sigusr_pending",
        t_sigusr_pending,
    );
    reg(
        &mut registry,
        &mut names,
        "t_sigmask_invalid",
        t_sigmask_invalid,
    );
    reg(&mut registry, &mut names, "t_kill_esrch", t_kill_esrch);
    reg(&mut registry, &mut names, "t_sleep_basic", t_sleep_basic);
    reg(&mut registry, &mut names, "t_sleep_kill", t_sleep_kill);
    reg(
        &mut registry,
        &mut names,
        "t_brk_grow_shrink",
        t_brk_grow_shrink,
    );
    reg(&mut registry, &mut names, "t_brk_invalid", t_brk_invalid);
    reg(&mut registry, &mut names, "t_mmap_munmap", t_mmap_munmap);
    reg(
        &mut registry,
        &mut names,
        "t_munmap_invalid",
        t_munmap_invalid,
    );
    reg(&mut registry, &mut names, "t_vmstat_fork", t_vmstat_fork);
    reg(&mut registry, &mut names, "t_mmap_large", t_mmap_large);
    reg(
        &mut registry,
        &mut names,
        "t_create_write_read",
        t_create_write_read,
    );
    reg(&mut registry, &mut names, "t_read_eof", t_read_eof);
    reg(&mut registry, &mut names, "t_open_enoent", t_open_enoent);
    reg(
        &mut registry,
        &mut names,
        "t_open_truncate",
        t_open_truncate,
    );
    reg(&mut registry, &mut names, "t_append", t_append);
    reg(&mut registry, &mut names, "t_seek_all", t_seek_all);
    reg(&mut registry, &mut names, "t_seek_invalid", t_seek_invalid);
    reg(&mut registry, &mut names, "t_sparse", t_sparse);
    reg(&mut registry, &mut names, "t_mkdir_basic", t_mkdir_basic);
    reg(&mut registry, &mut names, "t_mkdir_eexist", t_mkdir_eexist);
    reg(&mut registry, &mut names, "t_mkdir_nested", t_mkdir_nested);
    reg(&mut registry, &mut names, "t_readdir_root", t_readdir_root);
    reg(
        &mut registry,
        &mut names,
        "t_readdir_on_file",
        t_readdir_on_file,
    );
    reg(
        &mut registry,
        &mut names,
        "t_stat_file_dir",
        t_stat_file_dir,
    );
    reg(
        &mut registry,
        &mut names,
        "t_unlink_enoent",
        t_unlink_enoent,
    );
    reg(&mut registry, &mut names, "t_unlink_busy", t_unlink_busy);
    reg(&mut registry, &mut names, "t_rename", t_rename);
    reg(
        &mut registry,
        &mut names,
        "t_rename_missing",
        t_rename_missing,
    );
    reg(&mut registry, &mut names, "t_bigfile", t_bigfile);
    reg(&mut registry, &mut names, "t_fsync", t_fsync);
    reg(&mut registry, &mut names, "t_many_files", t_many_files);
    reg(&mut registry, &mut names, "t_dup_offset", t_dup_offset);
    reg(&mut registry, &mut names, "t_emfile", t_emfile);
    reg(&mut registry, &mut names, "t_pipe_basic", t_pipe_basic);
    reg(&mut registry, &mut names, "t_pipe_eof", t_pipe_eof);
    reg(&mut registry, &mut names, "t_pipe_epipe", t_pipe_epipe);
    reg(
        &mut registry,
        &mut names,
        "t_pipe_blocking",
        t_pipe_blocking,
    );
    reg(
        &mut registry,
        &mut names,
        "t_pipe_pingpong",
        t_pipe_pingpong,
    );
    reg(&mut registry, &mut names, "t_pipe_chunks", t_pipe_chunks);
    reg(
        &mut registry,
        &mut names,
        "t_pipe_dup_ends",
        t_pipe_dup_ends,
    );
    reg(&mut registry, &mut names, "t_ds_put_get", t_ds_put_get);
    reg(&mut registry, &mut names, "t_ds_del", t_ds_del);
    reg(
        &mut registry,
        &mut names,
        "t_ds_list_prefix",
        t_ds_list_prefix,
    );
    reg(&mut registry, &mut names, "t_ds_overwrite", t_ds_overwrite);
    reg(&mut registry, &mut names, "t_ds_many", t_ds_many);
    reg(&mut registry, &mut names, "t_shell_like", t_shell_like);
    reg(
        &mut registry,
        &mut names,
        "t_fd_cleanup_on_exit",
        t_fd_cleanup_on_exit,
    );
    reg(
        &mut registry,
        &mut names,
        "t_kill_blocked_reader",
        t_kill_blocked_reader,
    );
    reg(
        &mut registry,
        &mut names,
        "t_concurrent_disk",
        t_concurrent_disk,
    );
    reg(
        &mut registry,
        &mut names,
        "t_exec_load_cache",
        t_exec_load_cache,
    );
    reg(&mut registry, &mut names, "t_mixed_stress", t_mixed_stress);
    reg(&mut registry, &mut names, "t_compute", t_compute);
    reg(
        &mut registry,
        &mut names,
        "t_rename_across_dirs",
        t_rename_across_dirs,
    );
    reg(
        &mut registry,
        &mut names,
        "t_rename_onto_existing",
        t_rename_onto_existing,
    );
    reg(&mut registry, &mut names, "t_deep_paths", t_deep_paths);
    reg(&mut registry, &mut names, "t_stat_nlink", t_stat_nlink);
    reg(
        &mut registry,
        &mut names,
        "t_mkdir_under_file",
        t_mkdir_under_file,
    );
    reg(
        &mut registry,
        &mut names,
        "t_write_to_rdonly_fd",
        t_write_to_rdonly_fd,
    );
    reg(
        &mut registry,
        &mut names,
        "t_seek_past_eof_then_write",
        t_seek_past_eof_then_write,
    );
    reg(
        &mut registry,
        &mut names,
        "t_pipe_two_writers",
        t_pipe_two_writers,
    );
    reg(&mut registry, &mut names, "t_exec_args", t_exec_args);
    reg(
        &mut registry,
        &mut names,
        "t_sleep_ordering",
        t_sleep_ordering,
    );
    reg(
        &mut registry,
        &mut names,
        "t_unmask_keeps_pending",
        t_unmask_keeps_pending,
    );
    reg(
        &mut registry,
        &mut names,
        "t_ds_binary_values",
        t_ds_binary_values,
    );
    reg(
        &mut registry,
        &mut names,
        "t_ds_empty_value",
        t_ds_empty_value,
    );
    reg(
        &mut registry,
        &mut names,
        "t_vm_fork_after_munmap",
        t_vm_fork_after_munmap,
    );
    reg(
        &mut registry,
        &mut names,
        "t_fsync_after_eviction",
        t_fsync_after_eviction,
    );
    reg(&mut registry, &mut names, "t_readdir_bin", t_readdir_bin);
    reg(
        &mut registry,
        &mut names,
        "t_relative_path_rejected",
        t_relative_path_rejected,
    );

    // The suite driver: runs every test as a child process, counting
    // failures. Exit code = number of failed tests (0 = all passed).
    let list: Vec<&'static str> = names.clone();
    registry.register("suite", move |sys| {
        let mut failed = 0i32;
        for name in &list {
            match sys.spawn(name, &[]) {
                Ok(pid) => match sys.waitpid(pid) {
                    Ok(0) => {}
                    _ => failed += 1,
                },
                Err(_) => failed += 1,
            }
        }
        failed.min(100)
    });

    (registry, names)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_many_distinct_tests() {
        let (_, names) = build_testsuite();
        assert!(names.len() >= 89, "only {} tests", names.len());
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "duplicate test names");
    }
}
