//! Workloads for the OSIRIS evaluation: the coverage-maximizing prototype
//! test suite (paper §VI, "a homegrown set of 89 programs") and analogs of
//! the twelve Unixbench programs used for the performance experiments.
//!
//! Both workloads are written against the neutral [`osiris_kernel::Sys`]
//! ABI, so they run unmodified on the compartmentalized OSIRIS OS
//! (`osiris-servers`) and on the monolithic baseline (`osiris-monolith`).
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod testsuite;
pub mod unixbench;

pub use testsuite::build_testsuite;
pub use unixbench::{
    default_iters, register_unixbench, run_benchmark, run_benchmark_with, BenchResult, BENCHMARKS,
    CYCLES_PER_SECOND,
};

use osiris_core::PolicyKind;
use osiris_kernel::{Host, OsEngine, RunOutcome};
use osiris_servers::{Os, OsConfig};

/// Runs the full prototype test suite on a freshly booted OSIRIS OS under
/// `policy`, returning the run outcome and the OS for inspection.
pub fn run_suite_on_osiris(policy: PolicyKind) -> (RunOutcome, Os) {
    run_suite_with(OsConfig::with_policy(policy), None)
}

/// Runs the suite with a custom configuration and optional fault hook.
pub fn run_suite_with(
    cfg: OsConfig,
    hook: Option<Box<dyn osiris_kernel::FaultHook>>,
) -> (RunOutcome, Os) {
    osiris_kernel::install_quiet_panic_hook();
    let (registry, _names) = build_testsuite();
    let mut os = Os::new(cfg);
    if let Some(h) = hook {
        os.set_fault_hook(h);
    }
    let mut host = Host::new(os, registry);
    let outcome = host.run("suite", &[]);
    (outcome, host.into_engine())
}

/// Runs the suite on an arbitrary engine (e.g. the monolith).
pub fn run_suite_on<E: OsEngine>(engine: E) -> (RunOutcome, E) {
    osiris_kernel::install_quiet_panic_hook();
    let (registry, _names) = build_testsuite();
    let mut host = Host::new(engine, registry);
    let outcome = host.run("suite", &[]);
    (outcome, host.into_engine())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_passes_on_osiris_enhanced() {
        let (outcome, os) = run_suite_on_osiris(PolicyKind::Enhanced);
        match outcome {
            RunOutcome::Completed { init_code, .. } => {
                assert_eq!(init_code, 0, "failing tests: {}", init_code)
            }
            other => panic!("suite did not complete: {:?}", other),
        }
        assert!(os.audit().is_empty(), "audit: {:?}", os.audit());
    }

    #[test]
    fn suite_passes_on_monolith() {
        let (outcome, _m) = run_suite_on(osiris_monolith::Monolith::new());
        match outcome {
            RunOutcome::Completed { init_code, .. } => assert_eq!(init_code, 0),
            other => panic!("suite did not complete: {:?}", other),
        }
    }
}
