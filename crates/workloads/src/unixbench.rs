//! Unixbench analogs.
//!
//! The paper's performance evaluation (§VI-C/D/E, Tables IV/V, Fig. 3) uses
//! the twelve classic Unixbench programs. Each analog here stresses the same
//! subsystem mix as its namesake, running unmodified against either the
//! compartmentalized OSIRIS OS or the monolithic baseline:
//!
//! | benchmark         | stresses                                        |
//! |-------------------|-------------------------------------------------|
//! | `dhry2reg`        | pure integer compute                             |
//! | `whetstone-double`| pure floating-point compute                      |
//! | `execl`           | `exec` path (PM + VFS binary load + VM reset)    |
//! | `fstime`          | 1 KiB file copy (VFS + cache)                    |
//! | `fsbuffer`        | 256 B file copy (VFS, cache-friendly)            |
//! | `fsdisk`          | 4 KiB copy on a large file (cache-thrashing)     |
//! | `pipe`            | pipe round trips through VFS                     |
//! | `context1`        | two processes ping-ponging over pipes            |
//! | `spawn`           | process creation + reaping (PM + VM + VFS)       |
//! | `syscall`         | minimal syscall (`getpid`) round trips           |
//! | `shell1`          | one "shell script" (spawn a command, wait)       |
//! | `shell8`          | eight concurrent shell scripts                   |
//!
//! Scores are *operations per virtual second* (scaled), so higher is better
//! and ratios between systems are meaningful while absolute values are not —
//! exactly how the paper uses Unixbench.

use osiris_kernel::abi::{OpenFlags, SeekFrom};
use osiris_kernel::{Host, HostConfig, OsEngine, ProgramRegistry, RunOutcome, Sys};

/// The twelve benchmark names, in the paper's table order.
pub const BENCHMARKS: [&str; 12] = [
    "dhry2reg",
    "whetstone-double",
    "execl",
    "fstime",
    "fsbuffer",
    "fsdisk",
    "pipe",
    "context1",
    "spawn",
    "syscall",
    "shell1",
    "shell8",
];

/// Parses the iteration count (args[0]) and enables transparent `ECRASH`
/// retry when "retry" is among the args (the service-disruption mode, where
/// the benchmark must run to completion under periodic fault load).
fn setup(sys: &mut Sys) -> (u64, bool) {
    let n = sys
        .args()
        .first()
        .and_then(|a| a.parse().ok())
        .unwrap_or(10);
    let retry = sys.args().iter().any(|a| a == "retry");
    sys.set_retry_ecrash(retry);
    (n, retry)
}

fn ub_dhry(sys: &mut Sys) -> i32 {
    let (n, _) = setup(sys);
    for _ in 0..n {
        sys.compute(2_000);
    }
    0
}

fn ub_whet(sys: &mut Sys) -> i32 {
    let (n, _) = setup(sys);
    for _ in 0..n {
        sys.compute(5_000);
    }
    0
}

fn ub_execl(sys: &mut Sys) -> i32 {
    let (n, retry) = setup(sys);
    for _ in 0..n {
        // fork_run cannot be retried transparently (the child closure is
        // consumed per attempt), so retry manually in disruption mode.
        let child = loop {
            match sys.fork_run(move |c| {
                c.set_retry_ecrash(retry);
                match c.exec("ub_leaf", &[]) {
                    Err(_) => 1,
                    Ok(never) => match never {},
                }
            }) {
                Ok(p) => break p,
                Err(osiris_kernel::abi::Errno::ECRASH) if retry => continue,
                Err(_) => return 1,
            }
        };
        if sys.waitpid(child) != Ok(0) {
            return 1;
        }
    }
    0
}

/// File copy with the given block size over a working set of `blocks`
/// blocks. `fstime`/`fsbuffer` fit the cache; `fsdisk` does not.
fn file_copy(sys: &mut Sys, iterations: u64, chunk: usize, total: usize) -> i32 {
    let src = "/tmp/ub_src";
    let dst = "/tmp/ub_dst";
    let data = vec![0x42u8; chunk];
    for _ in 0..iterations {
        let s = match sys.open(src, OpenFlags::RDWR_CREATE) {
            Ok(fd) => fd,
            Err(_) => return 1,
        };
        let mut written = 0;
        while written < total {
            if sys.write(s, &data).is_err() {
                return 1;
            }
            written += chunk;
        }
        let d = match sys.open(dst, OpenFlags::CREATE) {
            Ok(fd) => fd,
            Err(_) => return 1,
        };
        if sys.seek(s, SeekFrom::Start(0)).is_err() {
            return 1;
        }
        loop {
            match sys.read(s, chunk as u32) {
                Ok(b) if b.is_empty() => break,
                Ok(b) => {
                    if sys.write(d, &b).is_err() {
                        return 1;
                    }
                }
                Err(_) => return 1,
            }
        }
        let _ = sys.close(s);
        let _ = sys.close(d);
        let _ = sys.unlink(src);
        let _ = sys.unlink(dst);
    }
    0
}

fn ub_fstime(sys: &mut Sys) -> i32 {
    let (n, _) = setup(sys);
    file_copy(sys, n, 1024, 8 * 1024)
}

fn ub_fsbuffer(sys: &mut Sys) -> i32 {
    let (n, _) = setup(sys);
    file_copy(sys, n, 256, 2 * 1024)
}

fn ub_fsdisk(sys: &mut Sys) -> i32 {
    let (n, _) = setup(sys);
    // 96 KiB working set vs a 64 KiB cache: constant eviction + refetch.
    file_copy(sys, n, 4096, 96 * 1024)
}

fn ub_pipe(sys: &mut Sys) -> i32 {
    let (n, _) = setup(sys);
    let (r, w) = match sys.pipe() {
        Ok(p) => p,
        Err(_) => return 1,
    };
    let buf = [9u8; 512];
    for _ in 0..n {
        if sys.write(w, &buf).is_err() {
            return 1;
        }
        match sys.read(r, 512) {
            Ok(d) if d.len() == 512 => {}
            _ => return 1,
        }
    }
    let _ = sys.close(r);
    let _ = sys.close(w);
    0
}

fn ub_context1(sys: &mut Sys) -> i32 {
    let (n, retry) = setup(sys);
    let (r1, w1) = match sys.pipe() {
        Ok(p) => p,
        Err(_) => return 1,
    };
    let (r2, w2) = match sys.pipe() {
        Ok(p) => p,
        Err(_) => return 1,
    };
    let child = match sys.fork_run(move |c| {
        c.set_retry_ecrash(retry);
        // Close the inherited ends this side does not use, or EOF never
        // propagates.
        if c.close(w1).is_err() || c.close(r2).is_err() {
            return 1;
        }
        loop {
            match c.read(r1, 4) {
                Ok(d) if d.is_empty() => return 0,
                Ok(d) => {
                    if c.write(w2, &d).is_err() {
                        return 1;
                    }
                }
                Err(_) => return 1,
            }
        }
    }) {
        Ok(p) => p,
        Err(_) => return 1,
    };
    for i in 0..n {
        let token = (i as u32).to_le_bytes();
        if sys.write(w1, &token).is_err() {
            return 1;
        }
        match sys.read(r2, 4) {
            Ok(d) if d == token => {}
            _ => return 1,
        }
    }
    let _ = sys.close(w1);
    let _ = sys.waitpid(child);
    for fd in [r1, r2, w2] {
        let _ = sys.close(fd);
    }
    0
}

fn ub_spawn(sys: &mut Sys) -> i32 {
    let (n, retry) = setup(sys);
    let args: &[&str] = if retry { &["retry"] } else { &[] };
    for _ in 0..n {
        let child = match sys.spawn("ub_leaf", args) {
            Ok(p) => p,
            Err(_) => return 1,
        };
        if sys.waitpid(child) != Ok(0) {
            return 1;
        }
    }
    0
}

fn ub_syscall(sys: &mut Sys) -> i32 {
    let (n, _) = setup(sys);
    for _ in 0..n {
        for _ in 0..5 {
            if sys.getpid().is_err() {
                return 1;
            }
        }
    }
    0
}

/// One "shell command": touch a file, write, read back, remove.
fn ub_shell_cmd(sys: &mut Sys) -> i32 {
    let (_, _retry) = setup(sys);
    let path = format!("/tmp/ub_sh_{}", sys.pid().0);
    let fd = match sys.open(&path, OpenFlags::RDWR_CREATE) {
        Ok(fd) => fd,
        Err(_) => return 1,
    };
    if sys.write(fd, b"shell work").is_err() {
        return 1;
    }
    if sys.seek(fd, SeekFrom::Start(0)).is_err() {
        return 1;
    }
    let ok = matches!(sys.read(fd, 16), Ok(d) if d == b"shell work");
    let _ = sys.close(fd);
    let _ = sys.unlink(&path);
    i32::from(!ok)
}

fn ub_shell1(sys: &mut Sys) -> i32 {
    let (n, retry) = setup(sys);
    let args: &[&str] = if retry { &["retry"] } else { &[] };
    for _ in 0..n {
        let child = match sys.spawn("ub_shell_cmd", args) {
            Ok(p) => p,
            Err(_) => return 1,
        };
        if sys.waitpid(child) != Ok(0) {
            return 1;
        }
    }
    0
}

fn ub_shell8(sys: &mut Sys) -> i32 {
    let (n, retry) = setup(sys);
    let args: &[&str] = if retry { &["retry"] } else { &[] };
    for _ in 0..n {
        let mut children = Vec::new();
        for _ in 0..8 {
            match sys.spawn("ub_shell_cmd", args) {
                Ok(p) => children.push(p),
                Err(_) => return 1,
            }
        }
        for c in children {
            if sys.waitpid(c) != Ok(0) {
                return 1;
            }
        }
    }
    0
}

/// Registers all benchmark programs (and their helpers) into `registry`.
pub fn register_unixbench(registry: &mut ProgramRegistry) {
    registry.register("ub_leaf", |_sys| 0);
    registry.register("ub_shell_cmd", ub_shell_cmd);
    registry.register("dhry2reg", ub_dhry);
    registry.register("whetstone-double", ub_whet);
    registry.register("execl", ub_execl);
    registry.register("fstime", ub_fstime);
    registry.register("fsbuffer", ub_fsbuffer);
    registry.register("fsdisk", ub_fsdisk);
    registry.register("pipe", ub_pipe);
    registry.register("context1", ub_context1);
    registry.register("spawn", ub_spawn);
    registry.register("syscall", ub_syscall);
    registry.register("shell1", ub_shell1);
    registry.register("shell8", ub_shell8);
}

/// Default iteration counts per benchmark (tuned so each run exercises its
/// subsystem long enough for stable virtual-time ratios).
pub fn default_iters(bench: &str) -> u64 {
    match bench {
        "dhry2reg" | "whetstone-double" => 200,
        "syscall" | "pipe" => 150,
        "fstime" | "fsbuffer" => 20,
        "fsdisk" => 4,
        "execl" | "spawn" | "shell1" => 40,
        "context1" => 100,
        "shell8" => 8,
        _ => 10,
    }
}

/// Result of one benchmark run.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: String,
    /// Iterations executed.
    pub iters: u64,
    /// Virtual cycles elapsed.
    pub cycles: u64,
    /// Score: iterations per virtual second (scaled; higher is better).
    pub score: f64,
    /// Whether the run completed cleanly.
    pub ok: bool,
}

/// Cycles per "virtual second" used for score scaling.
pub const CYCLES_PER_SECOND: f64 = 1_000_000.0;

/// Runs one benchmark on a fresh engine and computes its score. With
/// `retry`, syscalls transparently retry on `ECRASH` (service-disruption
/// mode).
pub fn run_benchmark_with<E: OsEngine>(
    engine: E,
    registry: ProgramRegistry,
    bench: &str,
    iters: u64,
    retry: bool,
) -> BenchResult {
    osiris_kernel::install_quiet_panic_hook();
    let mut host = Host::new(engine, registry).with_config(HostConfig::default());
    let start = host.engine().now();
    let iter_arg = iters.to_string();
    let args: Vec<&str> = if retry {
        vec![&iter_arg, "retry"]
    } else {
        vec![&iter_arg]
    };
    let outcome = host.run(bench, &args);
    let cycles = host.engine().now().saturating_sub(start).max(1);
    let ok = matches!(outcome, RunOutcome::Completed { init_code: 0, .. });
    BenchResult {
        name: bench.to_string(),
        iters,
        cycles,
        score: iters as f64 * CYCLES_PER_SECOND / cycles as f64,
        ok,
    }
}

/// Runs one benchmark without ECRASH retry (the common case).
pub fn run_benchmark<E: OsEngine>(
    engine: E,
    registry: ProgramRegistry,
    bench: &str,
    iters: u64,
) -> BenchResult {
    run_benchmark_with(engine, registry, bench, iters, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use osiris_monolith::Monolith;

    #[test]
    fn default_iters_cover_all_benchmarks() {
        for b in BENCHMARKS {
            assert!(default_iters(b) > 0, "{}", b);
        }
    }

    #[test]
    fn benchmarks_run_on_the_monolith() {
        for b in ["syscall", "pipe", "dhry2reg"] {
            let mut registry = ProgramRegistry::new();
            register_unixbench(&mut registry);
            let r = run_benchmark(Monolith::new(), registry, b, 5);
            assert!(r.ok, "{} failed", b);
            assert!(r.score > 0.0);
        }
    }
}
