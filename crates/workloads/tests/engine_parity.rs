//! Property test: the compartmentalized OSIRIS OS and the monolithic
//! baseline implement the same ABI. Random syscall scripts must produce
//! *identical* result traces on both engines — timing may differ, semantics
//! may not. This is what makes the Table IV comparison meaningful.

use std::sync::{Arc, Mutex};

use osiris_kernel::abi::{OpenFlags, SeekFrom};
use osiris_kernel::{Host, ProgramRegistry, Sys};
use osiris_monolith::Monolith;
use osiris_rng::Rng;
use osiris_servers::{Os, OsConfig};

const CASES: u64 = 48;

/// One scripted operation. Descriptor-valued operations index into the list
/// of descriptors opened so far, so scripts stay well-formed on both
/// engines as long as they allocate descriptors identically (both use
/// lowest-free).
#[derive(Clone, Debug)]
enum Op {
    Open(u8, OpenFlags),
    Close(u8),
    Write(u8, Vec<u8>),
    Read(u8, u16),
    Seek(u8, i32),
    Unlink(u8),
    Mkdir(u8),
    ReadDir(u8),
    Stat(u8),
    Rename(u8, u8),
    Dup(u8),
    DsPut(u8, Vec<u8>),
    DsGet(u8),
    DsDel(u8),
    DsList,
    Brk(i8),
    Mmap(u8),
    VmStat,
    GetPid,
    SigPending,
}

fn gen_flags(r: &mut Rng) -> OpenFlags {
    match r.below(4) {
        0 => OpenFlags::RDONLY,
        1 => OpenFlags::CREATE,
        2 => OpenFlags::RDWR_CREATE,
        _ => OpenFlags::APPEND,
    }
}

fn gen_op(r: &mut Rng) -> Op {
    match r.below(20) {
        0 => {
            let p = r.byte();
            Op::Open(p, gen_flags(r))
        }
        1 => Op::Close(r.byte()),
        2 => {
            let len = r.below_usize(300);
            Op::Write(r.byte(), r.bytes(len))
        }
        3 => Op::Read(r.byte(), (r.next_u64() % 2048) as u16),
        4 => Op::Seek(r.byte(), (r.next_u64() as i32) % 5000),
        5 => Op::Unlink(r.byte()),
        6 => Op::Mkdir(r.byte()),
        7 => Op::ReadDir(r.byte()),
        8 => Op::Stat(r.byte()),
        9 => Op::Rename(r.byte(), r.byte()),
        10 => Op::Dup(r.byte()),
        11 => {
            let len = r.below_usize(32);
            Op::DsPut(r.byte(), r.bytes(len))
        }
        12 => Op::DsGet(r.byte()),
        13 => Op::DsDel(r.byte()),
        14 => Op::DsList,
        15 => Op::Brk((r.byte() as i8) % 8),
        16 => Op::Mmap(r.byte() % 16),
        17 => Op::VmStat,
        18 => Op::GetPid,
        _ => Op::SigPending,
    }
}

fn path(p: u8) -> String {
    // A small universe of paths, including directories and nested files.
    match p % 6 {
        0 => "/tmp/pa".to_string(),
        1 => "/tmp/pb".to_string(),
        2 => "/tmp/pc".to_string(),
        3 => "/tmp/dir".to_string(),
        4 => "/tmp/dir/inner".to_string(),
        _ => "/missing/path".to_string(),
    }
}

fn key(k: u8) -> String {
    format!("k{}", k % 5)
}

/// Executes the script, rendering every result as a string.
fn run_script(sys: &mut Sys, ops: &[Op], trace: &Mutex<Vec<String>>) {
    let mut fds = Vec::new();
    let push = |s: String| trace.lock().unwrap().push(s);
    for op in ops {
        let line = match op {
            Op::Open(p, f) => match sys.open(&path(*p), *f) {
                Ok(fd) => {
                    fds.push(fd);
                    format!("open {}", fd)
                }
                Err(e) => format!("open!{e}"),
            },
            Op::Close(i) => match fds.get(*i as usize % fds.len().max(1)) {
                Some(fd) => format!("close {:?}", sys.close(*fd)),
                None => "close-nofd".into(),
            },
            Op::Write(i, d) => match fds.get(*i as usize % fds.len().max(1)) {
                Some(fd) => format!("write {:?}", sys.write(*fd, d)),
                None => "write-nofd".into(),
            },
            Op::Read(i, n) => match fds.get(*i as usize % fds.len().max(1)) {
                Some(fd) => match sys.read(*fd, u32::from(*n)) {
                    Ok(d) => format!("read {} {:x}", d.len(), fingerprint(&d)),
                    Err(e) => format!("read!{e}"),
                },
                None => "read-nofd".into(),
            },
            Op::Seek(i, o) => match fds.get(*i as usize % fds.len().max(1)) {
                Some(fd) => {
                    let from = if *o < 0 {
                        SeekFrom::Current(i64::from(*o))
                    } else {
                        SeekFrom::Start(*o as u64)
                    };
                    format!("seek {:?}", sys.seek(*fd, from))
                }
                None => "seek-nofd".into(),
            },
            Op::Unlink(p) => format!("unlink {:?}", sys.unlink(&path(*p))),
            Op::Mkdir(p) => format!("mkdir {:?}", sys.mkdir(&path(*p))),
            Op::ReadDir(p) => format!("readdir {:?}", sys.readdir(&path(*p))),
            Op::Stat(p) => format!("stat {:?}", sys.stat(&path(*p))),
            Op::Rename(a, b) => format!("rename {:?}", sys.rename(&path(*a), &path(*b))),
            Op::Dup(i) => match fds.get(*i as usize % fds.len().max(1)) {
                Some(fd) => match sys.dup(*fd) {
                    Ok(nfd) => {
                        fds.push(nfd);
                        format!("dup {}", nfd)
                    }
                    Err(e) => format!("dup!{e}"),
                },
                None => "dup-nofd".into(),
            },
            Op::DsPut(k, v) => format!("put {:?}", sys.ds_put(&key(*k), v)),
            Op::DsGet(k) => match sys.ds_get(&key(*k)) {
                Ok(v) => format!("get {} {:x}", v.len(), fingerprint(&v)),
                Err(e) => format!("get!{e}"),
            },
            Op::DsDel(k) => format!("del {:?}", sys.ds_del(&key(*k))),
            Op::DsList => format!("list {:?}", sys.ds_list("")),
            Op::Brk(d) => format!("brk {:?}", sys.brk(i64::from(*d))),
            Op::Mmap(p) => format!("mmap {:?}", sys.mmap(u64::from(*p))),
            Op::VmStat => format!("vmstat {:?}", sys.vmstat()),
            Op::GetPid => format!("getpid {:?}", sys.getpid()),
            Op::SigPending => format!("sigpending {:?}", sys.sigpending()),
        };
        push(line);
    }
}

fn fingerprint(d: &[u8]) -> u64 {
    d.iter().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(*b)).wrapping_mul(0x0000_0100_0000_01b3)
    })
}

fn trace_on<E: osiris_kernel::OsEngine>(engine: E, ops: Vec<Op>) -> Vec<String> {
    osiris_kernel::install_quiet_panic_hook();
    let trace = Arc::new(Mutex::new(Vec::new()));
    let shared = Arc::clone(&trace);
    let mut registry = ProgramRegistry::new();
    registry.register("script", move |sys| {
        run_script(sys, &ops, &shared);
        0
    });
    let mut host = Host::new(engine, registry);
    let outcome = host.run("script", &[]);
    assert!(outcome.completed(), "script wedged: {outcome:?}");
    let out = trace.lock().unwrap().clone();
    out
}

/// Any random single-process syscall script produces the same result trace
/// on the microkernel OS and the monolith.
#[test]
fn engines_agree_on_random_scripts() {
    for case in 0..CASES {
        let mut r = Rng::new(0xEA61_0001 ^ case);
        let n = 1 + r.below_usize(39);
        let ops: Vec<Op> = (0..n).map(|_| gen_op(&mut r)).collect();
        let osiris_trace = trace_on(
            Os::new(OsConfig {
                vm_frames: 1024,
                ..Default::default()
            }),
            ops.clone(),
        );
        let monolith_trace = trace_on(Monolith::with_cost(Default::default(), 64, 1024), ops);
        assert_eq!(osiris_trace, monolith_trace, "case seed {case}");
    }
}
