//! Property test: the compartmentalized OSIRIS OS and the monolithic
//! baseline implement the same ABI. Random syscall scripts must produce
//! *identical* result traces on both engines — timing may differ, semantics
//! may not. This is what makes the Table IV comparison meaningful.

use std::sync::{Arc, Mutex};

use osiris_kernel::abi::{OpenFlags, SeekFrom};
use osiris_kernel::{Host, ProgramRegistry, Sys};
use osiris_monolith::Monolith;
use osiris_servers::{Os, OsConfig};
use proptest::prelude::*;

/// One scripted operation. Descriptor-valued operations index into the list
/// of descriptors opened so far, so scripts stay well-formed on both
/// engines as long as they allocate descriptors identically (both use
/// lowest-free).
#[derive(Clone, Debug)]
enum Op {
    Open(u8, OpenFlags),
    Close(u8),
    Write(u8, Vec<u8>),
    Read(u8, u16),
    Seek(u8, i32),
    Unlink(u8),
    Mkdir(u8),
    ReadDir(u8),
    Stat(u8),
    Rename(u8, u8),
    Dup(u8),
    DsPut(u8, Vec<u8>),
    DsGet(u8),
    DsDel(u8),
    DsList,
    Brk(i8),
    Mmap(u8),
    VmStat,
    GetPid,
    SigPending,
}

fn flags_strategy() -> impl Strategy<Value = OpenFlags> {
    prop_oneof![
        Just(OpenFlags::RDONLY),
        Just(OpenFlags::CREATE),
        Just(OpenFlags::RDWR_CREATE),
        Just(OpenFlags::APPEND),
    ]
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), flags_strategy()).prop_map(|(p, f)| Op::Open(p, f)),
        any::<u8>().prop_map(Op::Close),
        (any::<u8>(), proptest::collection::vec(any::<u8>(), 0..300))
            .prop_map(|(fd, d)| Op::Write(fd, d)),
        (any::<u8>(), any::<u16>()).prop_map(|(fd, n)| Op::Read(fd, n % 2048)),
        (any::<u8>(), any::<i32>()).prop_map(|(fd, o)| Op::Seek(fd, o % 5000)),
        any::<u8>().prop_map(Op::Unlink),
        any::<u8>().prop_map(Op::Mkdir),
        any::<u8>().prop_map(Op::ReadDir),
        any::<u8>().prop_map(Op::Stat),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::Rename(a, b)),
        any::<u8>().prop_map(Op::Dup),
        (any::<u8>(), proptest::collection::vec(any::<u8>(), 0..32))
            .prop_map(|(k, v)| Op::DsPut(k, v)),
        any::<u8>().prop_map(Op::DsGet),
        any::<u8>().prop_map(Op::DsDel),
        Just(Op::DsList),
        any::<i8>().prop_map(|d| Op::Brk(d % 8)),
        any::<u8>().prop_map(|p| Op::Mmap(p % 16)),
        Just(Op::VmStat),
        Just(Op::GetPid),
        Just(Op::SigPending),
    ]
}

fn path(p: u8) -> String {
    // A small universe of paths, including directories and nested files.
    match p % 6 {
        0 => "/tmp/pa".to_string(),
        1 => "/tmp/pb".to_string(),
        2 => "/tmp/pc".to_string(),
        3 => "/tmp/dir".to_string(),
        4 => "/tmp/dir/inner".to_string(),
        _ => "/missing/path".to_string(),
    }
}

fn key(k: u8) -> String {
    format!("k{}", k % 5)
}

/// Executes the script, rendering every result as a string.
fn run_script(sys: &mut Sys, ops: &[Op], trace: &Mutex<Vec<String>>) {
    let mut fds = Vec::new();
    let push = |s: String| trace.lock().unwrap().push(s);
    for op in ops {
        let line = match op {
            Op::Open(p, f) => match sys.open(&path(*p), *f) {
                Ok(fd) => {
                    fds.push(fd);
                    format!("open {}", fd)
                }
                Err(e) => format!("open!{e}"),
            },
            Op::Close(i) => match fds.get(*i as usize % fds.len().max(1)) {
                Some(fd) => format!("close {:?}", sys.close(*fd)),
                None => "close-nofd".into(),
            },
            Op::Write(i, d) => match fds.get(*i as usize % fds.len().max(1)) {
                Some(fd) => format!("write {:?}", sys.write(*fd, d)),
                None => "write-nofd".into(),
            },
            Op::Read(i, n) => match fds.get(*i as usize % fds.len().max(1)) {
                Some(fd) => match sys.read(*fd, u32::from(*n)) {
                    Ok(d) => format!("read {} {:x}", d.len(), fingerprint(&d)),
                    Err(e) => format!("read!{e}"),
                },
                None => "read-nofd".into(),
            },
            Op::Seek(i, o) => match fds.get(*i as usize % fds.len().max(1)) {
                Some(fd) => {
                    let from = if *o < 0 {
                        SeekFrom::Current(i64::from(*o))
                    } else {
                        SeekFrom::Start(*o as u64)
                    };
                    format!("seek {:?}", sys.seek(*fd, from))
                }
                None => "seek-nofd".into(),
            },
            Op::Unlink(p) => format!("unlink {:?}", sys.unlink(&path(*p))),
            Op::Mkdir(p) => format!("mkdir {:?}", sys.mkdir(&path(*p))),
            Op::ReadDir(p) => format!("readdir {:?}", sys.readdir(&path(*p))),
            Op::Stat(p) => format!("stat {:?}", sys.stat(&path(*p))),
            Op::Rename(a, b) => format!("rename {:?}", sys.rename(&path(*a), &path(*b))),
            Op::Dup(i) => match fds.get(*i as usize % fds.len().max(1)) {
                Some(fd) => match sys.dup(*fd) {
                    Ok(nfd) => {
                        fds.push(nfd);
                        format!("dup {}", nfd)
                    }
                    Err(e) => format!("dup!{e}"),
                },
                None => "dup-nofd".into(),
            },
            Op::DsPut(k, v) => format!("put {:?}", sys.ds_put(&key(*k), v)),
            Op::DsGet(k) => match sys.ds_get(&key(*k)) {
                Ok(v) => format!("get {} {:x}", v.len(), fingerprint(&v)),
                Err(e) => format!("get!{e}"),
            },
            Op::DsDel(k) => format!("del {:?}", sys.ds_del(&key(*k))),
            Op::DsList => format!("list {:?}", sys.ds_list("")),
            Op::Brk(d) => format!("brk {:?}", sys.brk(i64::from(*d))),
            Op::Mmap(p) => format!("mmap {:?}", sys.mmap(u64::from(*p))),
            Op::VmStat => format!("vmstat {:?}", sys.vmstat()),
            Op::GetPid => format!("getpid {:?}", sys.getpid()),
            Op::SigPending => format!("sigpending {:?}", sys.sigpending()),
        };
        push(line);
    }
}

fn fingerprint(d: &[u8]) -> u64 {
    d.iter().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(*b)).wrapping_mul(0x0000_0100_0000_01b3)
    })
}

fn trace_on<E: osiris_kernel::OsEngine>(engine: E, ops: Vec<Op>) -> Vec<String> {
    osiris_kernel::install_quiet_panic_hook();
    let trace = Arc::new(Mutex::new(Vec::new()));
    let shared = Arc::clone(&trace);
    let mut registry = ProgramRegistry::new();
    registry.register("script", move |sys| {
        run_script(sys, &ops, &shared);
        0
    });
    let mut host = Host::new(engine, registry);
    let outcome = host.run("script", &[]);
    assert!(outcome.completed(), "script wedged: {outcome:?}");
    let out = trace.lock().unwrap().clone();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any random single-process syscall script produces the same result
    /// trace on the microkernel OS and the monolith.
    #[test]
    fn engines_agree_on_random_scripts(
        ops in proptest::collection::vec(op_strategy(), 1..40),
    ) {
        let osiris_trace = trace_on(
            Os::new(OsConfig { vm_frames: 1024, ..Default::default() }),
            ops.clone(),
        );
        let monolith_trace = trace_on(Monolith::with_cost(Default::default(), 64, 1024), ops);
        prop_assert_eq!(osiris_trace, monolith_trace);
    }
}
