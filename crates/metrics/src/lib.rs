//! # osiris-metrics — unified metrics registry
//!
//! One source of truth for every number the evaluation reports: typed
//! [`Counter`], [`Gauge`], and log2-histogram ([`Hist`]) handles organized
//! into named families with static label sets. The kernel's per-component
//! accounting, the checkpoint heap statistics, and the fault-injection
//! campaign all register here, and two exporters ([`prom`] text exposition
//! and [`export`] JSON) serialize a consistent snapshot at run end.
//!
//! ## Design
//!
//! The registry follows the flight recorder's discipline
//! (`osiris-trace`): a shared `AtomicBool` gates every write with a single
//! relaxed load, so a disabled registry costs well under a nanosecond per
//! write and an enabled one performs no allocation in steady state —
//! counters and gauges are `Arc<AtomicU64>` slots created at registration
//! time, histograms are preallocated [`Log2Hist`] arrays behind a mutex
//! that is only touched at per-window (not per-operation) frequency.
//!
//! Registration is idempotent: asking for the same `(family, labels)`
//! series twice returns handles sharing one slot, which is what lets
//! `KernelMetrics` and `ComponentReport` act as *views* over the registry
//! instead of parallel bookkeeping. Families keep their series in
//! registration order and label sets are fixed at registration, so two
//! runs with the same configuration export byte-identical text.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

pub use osiris_trace::hist::{HistSummary, Log2Hist};

pub mod export;
pub mod prom;
pub mod timeseries;

pub use export::render_json;
pub use prom::{render_prometheus, validate_prometheus};
pub use timeseries::{TimeseriesConfig, TimeseriesSampler, TimeseriesState};

/// Configuration for a [`MetricsHandle`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MetricsConfig {
    /// Whether writes through handles are recorded. Registration and
    /// export work either way; a disabled registry exports zeros.
    pub enabled: bool,
}

impl Default for MetricsConfig {
    fn default() -> Self {
        MetricsConfig { enabled: true }
    }
}

impl MetricsConfig {
    /// Recording on (the default).
    pub fn on() -> MetricsConfig {
        MetricsConfig { enabled: true }
    }

    /// Recording off: every write is a single relaxed load.
    pub fn off() -> MetricsConfig {
        MetricsConfig { enabled: false }
    }
}

/// What a family of series measures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing count.
    Counter,
    /// Point-in-time value, set rather than accumulated.
    Gauge,
    /// Log2-bucketed sample distribution.
    Histogram,
}

impl MetricKind {
    /// The Prometheus `# TYPE` keyword.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

enum Slot {
    Scalar(Arc<AtomicU64>),
    Hist(Arc<Mutex<Log2Hist>>),
}

struct Series {
    labels: Vec<(String, String)>,
    slot: Slot,
}

struct Family {
    name: String,
    help: String,
    kind: MetricKind,
    series: Vec<Series>,
}

#[derive(Default)]
struct Registry {
    families: Vec<Family>,
}

impl Registry {
    fn family_mut(&mut self, name: &str, help: &str, kind: MetricKind) -> &mut Family {
        if let Some(i) = self.families.iter().position(|f| f.name == name) {
            let f = &self.families[i];
            assert_eq!(
                f.kind, kind,
                "metric family {name:?} re-registered with a different kind"
            );
            return &mut self.families[i];
        }
        assert!(
            valid_name(name),
            "invalid metric family name {name:?}: use [a-zA-Z_][a-zA-Z0-9_]*"
        );
        self.families.push(Family {
            name: name.to_string(),
            help: help.to_string(),
            kind,
            series: Vec::new(),
        });
        self.families.last_mut().unwrap()
    }

    fn scalar(
        &mut self,
        name: &str,
        help: &str,
        kind: MetricKind,
        labels: &[(&str, &str)],
    ) -> Arc<AtomicU64> {
        let family = self.family_mut(name, help, kind);
        if let Some(s) = family.series.iter().find(|s| label_eq(&s.labels, labels)) {
            match &s.slot {
                Slot::Scalar(v) => return Arc::clone(v),
                Slot::Hist(_) => unreachable!("kind checked per family"),
            }
        }
        let v = Arc::new(AtomicU64::new(0));
        family.series.push(Series {
            labels: own_labels(labels),
            slot: Slot::Scalar(Arc::clone(&v)),
        });
        v
    }

    fn hist(&mut self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Mutex<Log2Hist>> {
        let family = self.family_mut(name, help, MetricKind::Histogram);
        if let Some(s) = family.series.iter().find(|s| label_eq(&s.labels, labels)) {
            match &s.slot {
                Slot::Hist(h) => return Arc::clone(h),
                Slot::Scalar(_) => unreachable!("kind checked per family"),
            }
        }
        let h = Arc::new(Mutex::new(Log2Hist::new()));
        family.series.push(Series {
            labels: own_labels(labels),
            slot: Slot::Hist(Arc::clone(&h)),
        });
        h
    }

    fn reset(&mut self) {
        for f in &self.families {
            for s in &f.series {
                match &s.slot {
                    Slot::Scalar(v) => v.store(0, Ordering::Relaxed),
                    Slot::Hist(h) => h.lock().unwrap().reset(),
                }
            }
        }
    }

    fn restore_from(&mut self, snap: &MetricsSnapshot) {
        self.reset();
        for f in &snap.families {
            // Touch the family even when it carries no series yet, so the
            // restored exposition lists exactly the donor's families in the
            // donor's registration order.
            self.family_mut(&f.name, &f.help, f.kind);
            for s in &f.series {
                let labels: Vec<(&str, &str)> = s
                    .labels
                    .iter()
                    .map(|(k, v)| (k.as_str(), v.as_str()))
                    .collect();
                match &s.value {
                    SeriesValue::Counter(n) | SeriesValue::Gauge(n) => {
                        self.scalar(&f.name, &f.help, f.kind, &labels)
                            .store(*n, Ordering::Relaxed);
                    }
                    SeriesValue::Hist(h) => {
                        *self.hist(&f.name, &f.help, &labels).lock().unwrap() = **h;
                    }
                }
            }
        }
    }

    fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            families: self
                .families
                .iter()
                .map(|f| FamilySnapshot {
                    name: f.name.clone(),
                    help: f.help.clone(),
                    kind: f.kind,
                    series: f
                        .series
                        .iter()
                        .map(|s| SeriesSnapshot {
                            labels: s.labels.clone(),
                            value: match &s.slot {
                                Slot::Scalar(v) => {
                                    let n = v.load(Ordering::Relaxed);
                                    match f.kind {
                                        MetricKind::Counter => SeriesValue::Counter(n),
                                        _ => SeriesValue::Gauge(n),
                                    }
                                }
                                Slot::Hist(h) => SeriesValue::Hist(Box::new(*h.lock().unwrap())),
                            },
                        })
                        .collect(),
                })
                .collect(),
        }
    }
}

fn own_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    for (k, _) in labels {
        assert!(valid_name(k), "invalid label name {k:?}");
    }
    labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

fn label_eq(a: &[(String, String)], b: &[(&str, &str)]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|((ak, av), (bk, bv))| ak == bk && av == bv)
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// A shared handle to the metrics registry. Cheap to clone; all clones
/// (and every [`Counter`]/[`Gauge`]/[`Hist`] minted from them) write to
/// the same underlying slots.
#[derive(Clone)]
pub struct MetricsHandle {
    on: Arc<AtomicBool>,
    inner: Arc<Mutex<Registry>>,
}

impl Default for MetricsHandle {
    fn default() -> Self {
        MetricsHandle::new(MetricsConfig::default())
    }
}

impl std::fmt::Debug for MetricsHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsHandle")
            .field("enabled", &self.enabled())
            .finish_non_exhaustive()
    }
}

impl MetricsHandle {
    /// Creates a registry with the given config.
    pub fn new(config: MetricsConfig) -> MetricsHandle {
        MetricsHandle {
            on: Arc::new(AtomicBool::new(config.enabled)),
            inner: Arc::new(Mutex::new(Registry::default())),
        }
    }

    /// Whether writes are currently recorded.
    pub fn enabled(&self) -> bool {
        self.on.load(Ordering::Relaxed)
    }

    /// Flips recording on or off at runtime.
    pub fn set_enabled(&self, enabled: bool) {
        self.on.store(enabled, Ordering::Relaxed);
    }

    /// Registers (or finds) a counter series and returns its handle.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        let v = self
            .inner
            .lock()
            .unwrap()
            .scalar(name, help, MetricKind::Counter, labels);
        Counter {
            on: Arc::clone(&self.on),
            v,
        }
    }

    /// Registers (or finds) a gauge series and returns its handle.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        let v = self
            .inner
            .lock()
            .unwrap()
            .scalar(name, help, MetricKind::Gauge, labels);
        Gauge {
            on: Arc::clone(&self.on),
            v,
        }
    }

    /// Registers (or finds) a histogram series and returns its handle.
    pub fn hist(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Hist {
        let h = self.inner.lock().unwrap().hist(name, help, labels);
        Hist {
            on: Arc::clone(&self.on),
            h,
        }
    }

    /// Zeroes every registered series (counters and gauges to 0,
    /// histograms to empty). Registration survives; the kernel uses this
    /// to exclude boot-time activity from reports.
    pub fn reset(&self) {
        self.inner.lock().unwrap().reset();
    }

    /// A deep, consistent copy of every registered family.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.inner.lock().unwrap().snapshot()
    }

    /// Overwrites the registry with a snapshot taken from another registry:
    /// every existing series is zeroed, then each snapshotted family and
    /// series is (re-)registered in snapshot order and set to its recorded
    /// value. Registration is idempotent and order-preserving, so when the
    /// live registry's families are a boot-time prefix-subsequence of the
    /// snapshot's (the fork case: both sides booted identically, the donor
    /// may have registered more afterwards), the restored exposition is
    /// byte-identical to the donor's. Writes bypass the enabled gate — a
    /// restore mirrors the donor no matter which side is recording.
    pub fn restore_from(&self, snap: &MetricsSnapshot) {
        self.inner.lock().unwrap().restore_from(snap);
    }

    /// Renders the current state in Prometheus text exposition format.
    pub fn prometheus(&self) -> String {
        prom::render_prometheus(&self.snapshot())
    }

    /// Renders the current state as a JSON document.
    pub fn json(&self) -> osiris_trace::Json {
        export::render_json(&self.snapshot())
    }
}

/// A monotonically increasing counter backed by a registry slot.
#[derive(Clone, Debug)]
pub struct Counter {
    on: Arc<AtomicBool>,
    v: Arc<AtomicU64>,
}

impl Counter {
    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`. A disabled registry makes this a single relaxed load.
    #[inline]
    pub fn add(&self, n: u64) {
        if self.on.load(Ordering::Relaxed) {
            self.v.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Overwrites the total. For mirroring an externally maintained
    /// monotone counter (e.g. the checkpoint heap's hot-path tallies)
    /// into the registry at a sync point.
    #[inline]
    pub fn set_total(&self, n: u64) {
        if self.on.load(Ordering::Relaxed) {
            self.v.store(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// A point-in-time gauge backed by a registry slot.
#[derive(Clone, Debug)]
pub struct Gauge {
    on: Arc<AtomicBool>,
    v: Arc<AtomicU64>,
}

impl Gauge {
    /// Sets the value.
    #[inline]
    pub fn set(&self, n: u64) {
        if self.on.load(Ordering::Relaxed) {
            self.v.store(n, Ordering::Relaxed);
        }
    }

    /// Sets the value only if `n` is larger (high-water mark).
    #[inline]
    pub fn set_max(&self, n: u64) {
        if self.on.load(Ordering::Relaxed) {
            self.v.fetch_max(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// A log2-histogram series backed by a registry slot. Observation locks
/// a mutex, so use it at per-window frequency, not per-operation.
#[derive(Clone, Debug)]
pub struct Hist {
    on: Arc<AtomicBool>,
    h: Arc<Mutex<Log2Hist>>,
}

impl Hist {
    /// Records one sample.
    #[inline]
    pub fn observe(&self, value: u64) {
        if self.on.load(Ordering::Relaxed) {
            self.h.lock().unwrap().record(value);
        }
    }

    /// A copy of the underlying histogram.
    pub fn get(&self) -> Log2Hist {
        *self.h.lock().unwrap()
    }

    /// Condensed digest of the underlying histogram.
    pub fn summary(&self) -> HistSummary {
        self.h.lock().unwrap().summary()
    }
}

/// Deep copy of the registry at one instant.
#[derive(Clone, Debug)]
pub struct MetricsSnapshot {
    /// Families in registration order.
    pub families: Vec<FamilySnapshot>,
}

/// One family (shared name/help/kind) of series.
#[derive(Clone, Debug)]
pub struct FamilySnapshot {
    /// Family name, e.g. `osiris_comp_crashes_total`.
    pub name: String,
    /// One-line description for `# HELP`.
    pub help: String,
    /// Counter, gauge, or histogram.
    pub kind: MetricKind,
    /// Series in registration order.
    pub series: Vec<SeriesSnapshot>,
}

/// One labeled series inside a family.
#[derive(Clone, Debug)]
pub struct SeriesSnapshot {
    /// Label pairs in registration order.
    pub labels: Vec<(String, String)>,
    /// The captured value.
    pub value: SeriesValue,
}

/// A captured series value.
#[derive(Clone, Debug)]
pub enum SeriesValue {
    /// Counter total.
    Counter(u64),
    /// Gauge level.
    Gauge(u64),
    /// Full histogram copy (boxed: a `Log2Hist` is 65 buckets wide and
    /// would dominate the enum's footprint inline).
    Hist(Box<Log2Hist>),
}

impl MetricsSnapshot {
    /// Looks up one series value by family name and exact label set.
    pub fn find(&self, name: &str, labels: &[(&str, &str)]) -> Option<&SeriesValue> {
        self.families
            .iter()
            .find(|f| f.name == name)?
            .series
            .iter()
            .find(|s| label_eq(&s.labels, labels))
            .map(|s| &s.value)
    }
}

/// Writes both exposition formats next to each other: `<base>.prom` and
/// `<base>.json`. Returns the two paths written.
pub fn write_exports(
    snapshot: &MetricsSnapshot,
    base: &str,
) -> std::io::Result<(std::path::PathBuf, std::path::PathBuf)> {
    let prom_path = std::path::PathBuf::from(format!("{base}.prom"));
    let json_path = std::path::PathBuf::from(format!("{base}.json"));
    if let Some(dir) = prom_path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    std::fs::write(&prom_path, prom::render_prometheus(snapshot))?;
    std::fs::write(&json_path, export::render_json(snapshot).pretty())?;
    Ok((prom_path, json_path))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_dedupes_and_shares_slots() {
        let m = MetricsHandle::default();
        let a = m.counter("osiris_test_total", "test counter", &[("component", "pm")]);
        let b = m.counter("osiris_test_total", "test counter", &[("component", "pm")]);
        let other = m.counter("osiris_test_total", "test counter", &[("component", "vfs")]);
        a.add(3);
        b.inc();
        other.inc();
        assert_eq!(a.get(), 4);
        assert_eq!(b.get(), 4);
        assert_eq!(other.get(), 1);
        let snap = m.snapshot();
        assert_eq!(snap.families.len(), 1);
        assert_eq!(snap.families[0].series.len(), 2);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let m = MetricsHandle::new(MetricsConfig::off());
        let c = m.counter("osiris_off_total", "off", &[]);
        let g = m.gauge("osiris_off_gauge", "off", &[]);
        let h = m.hist("osiris_off_hist", "off", &[]);
        c.add(10);
        g.set(5);
        h.observe(7);
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0);
        assert!(h.get().is_empty());
        m.set_enabled(true);
        c.inc();
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn reset_zeroes_but_keeps_registration() {
        let m = MetricsHandle::default();
        let c = m.counter("osiris_reset_total", "r", &[]);
        let h = m.hist("osiris_reset_hist", "r", &[]);
        c.add(9);
        h.observe(100);
        m.reset();
        assert_eq!(c.get(), 0);
        assert!(h.get().is_empty());
        assert_eq!(m.snapshot().families.len(), 2);
    }

    #[test]
    fn gauge_set_max_is_a_high_water_mark() {
        let m = MetricsHandle::default();
        let g = m.gauge("osiris_peak", "p", &[]);
        g.set_max(10);
        g.set_max(4);
        assert_eq!(g.get(), 10);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_conflict_panics() {
        let m = MetricsHandle::default();
        let _ = m.counter("osiris_conflict", "c", &[]);
        let _ = m.gauge("osiris_conflict", "g", &[]);
    }

    #[test]
    fn find_locates_series() {
        let m = MetricsHandle::default();
        m.counter("osiris_find_total", "f", &[("k", "v")]).add(2);
        let snap = m.snapshot();
        match snap.find("osiris_find_total", &[("k", "v")]) {
            Some(SeriesValue::Counter(2)) => {}
            other => panic!("unexpected: {other:?}"),
        }
        assert!(snap.find("osiris_find_total", &[]).is_none());
        assert!(snap.find("nope", &[]).is_none());
    }
}
