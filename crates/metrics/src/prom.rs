//! Prometheus text exposition (version 0.0.4) rendering and a small
//! offline well-formedness validator used by CI.
//!
//! Log2 histograms render as cumulative `_bucket{le="..."}` series where
//! `le` is the inclusive upper bound of each log2 bucket (`2^b - 1`),
//! followed by the mandatory `+Inf` bucket, `_sum`, and `_count`. Buckets
//! above the highest non-empty one are elided — they would all repeat the
//! final cumulative count that `+Inf` already carries.

use std::collections::HashSet;

use crate::{FamilySnapshot, Log2Hist, MetricsSnapshot, SeriesValue};

/// Renders a snapshot in Prometheus text exposition format.
pub fn render_prometheus(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for family in &snapshot.families {
        render_family(&mut out, family);
    }
    out
}

fn render_family(out: &mut String, family: &FamilySnapshot) {
    out.push_str(&format!(
        "# HELP {} {}\n# TYPE {} {}\n",
        family.name,
        escape_help(&family.help),
        family.name,
        family.kind.as_str()
    ));
    for series in &family.series {
        match &series.value {
            SeriesValue::Counter(n) | SeriesValue::Gauge(n) => {
                out.push_str(&family.name);
                push_labels(out, &series.labels, None);
                out.push_str(&format!(" {n}\n"));
            }
            SeriesValue::Hist(h) => render_hist(out, &family.name, &series.labels, h),
        }
    }
}

fn render_hist(out: &mut String, name: &str, labels: &[(String, String)], h: &Log2Hist) {
    let buckets = h.buckets();
    let last = buckets
        .iter()
        .rposition(|&n| n != 0)
        .map(|b| b + 1)
        .unwrap_or(0);
    let mut cumulative = 0u64;
    for (b, &n) in buckets.iter().enumerate().take(last) {
        cumulative += n;
        // Bucket b covers [2^(b-1), 2^b); its inclusive upper bound is
        // 2^b - 1, except bucket 0 which holds only the value 0.
        let le = if b == 0 {
            0
        } else if b >= 64 {
            u64::MAX
        } else {
            (1u64 << b) - 1
        };
        out.push_str(&format!("{name}_bucket"));
        push_labels(out, labels, Some(&le.to_string()));
        out.push_str(&format!(" {cumulative}\n"));
    }
    out.push_str(&format!("{name}_bucket"));
    push_labels(out, labels, Some("+Inf"));
    out.push_str(&format!(" {}\n", h.count()));
    out.push_str(name);
    out.push_str("_sum");
    push_labels(out, labels, None);
    out.push_str(&format!(" {}\n", h.sum()));
    out.push_str(name);
    out.push_str("_count");
    push_labels(out, labels, None);
    out.push_str(&format!(" {}\n", h.count()));
}

fn push_labels(out: &mut String, labels: &[(String, String)], le: Option<&str>) {
    if labels.is_empty() && le.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("{k}=\"{}\"", escape_label(v)));
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        out.push_str(&format!("le=\"{le}\""));
    }
    out.push('}');
}

fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Checks that `text` is well-formed Prometheus exposition: every sample
/// belongs to a family announced by `# HELP` and `# TYPE` lines (in that
/// order, once each), `TYPE` names a known kind, histogram samples only
/// follow histogram families, and no series (name + label set) repeats.
/// Returns the first problem found, with its 1-based line number.
pub fn validate_prometheus(text: &str) -> Result<(), String> {
    let mut helped: HashSet<String> = HashSet::new();
    let mut typed: std::collections::HashMap<String, String> = std::collections::HashMap::new();
    let mut seen_series: HashSet<String> = HashSet::new();

    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split_whitespace().next().unwrap_or("");
            if name.is_empty() {
                return Err(format!("line {lineno}: HELP without a metric name"));
            }
            if !helped.insert(name.to_string()) {
                return Err(format!("line {lineno}: duplicate HELP for {name}"));
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().unwrap_or("");
            let kind = parts.next().unwrap_or("");
            if name.is_empty() || kind.is_empty() {
                return Err(format!("line {lineno}: malformed TYPE line"));
            }
            if !matches!(
                kind,
                "counter" | "gauge" | "histogram" | "summary" | "untyped"
            ) {
                return Err(format!("line {lineno}: unknown metric type {kind:?}"));
            }
            if !helped.contains(name) {
                return Err(format!("line {lineno}: TYPE for {name} precedes its HELP"));
            }
            if typed.insert(name.to_string(), kind.to_string()).is_some() {
                return Err(format!("line {lineno}: duplicate TYPE for {name}"));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // free-form comment
        }

        // Sample line: name[{labels}] value
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {lineno}: sample without a value"))?;
        if value.parse::<f64>().is_err() {
            return Err(format!("line {lineno}: unparseable sample value {value:?}"));
        }
        let name = series.split('{').next().unwrap_or("");
        if !crate::valid_name(name) {
            return Err(format!("line {lineno}: invalid metric name {name:?}"));
        }
        if series.contains('{') && !series.ends_with('}') {
            return Err(format!("line {lineno}: unterminated label set"));
        }
        // Histogram child series (_bucket/_sum/_count) resolve to the
        // family that declared them; plain series must match exactly.
        let family = resolve_family(name, &typed);
        let family = family
            .ok_or_else(|| format!("line {lineno}: sample {name} has no HELP/TYPE header"))?;
        if name != family && typed.get(family).map(String::as_str) != Some("histogram") {
            return Err(format!(
                "line {lineno}: {name} suffixed like a histogram child but {family} is not one"
            ));
        }
        if !seen_series.insert(series.to_string()) {
            return Err(format!("line {lineno}: duplicate series {series}"));
        }
    }
    Ok(())
}

/// Maps a sample name to its declaring family: itself, or for histogram
/// children the name with `_bucket`/`_sum`/`_count` stripped.
fn resolve_family<'a>(
    name: &'a str,
    typed: &std::collections::HashMap<String, String>,
) -> Option<&'a str> {
    if typed.contains_key(name) {
        return Some(name);
    }
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if typed.contains_key(base) {
                return Some(base);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MetricsConfig, MetricsHandle};

    fn sample_handle() -> MetricsHandle {
        let m = MetricsHandle::new(MetricsConfig::on());
        m.counter("osiris_ipc_total", "IPC messages delivered", &[])
            .add(12);
        m.gauge("osiris_heap_bytes", "live heap", &[("component", "pm")])
            .set(4096);
        let h = m.hist(
            "osiris_latency_cycles",
            "recovery latency",
            &[("component", "pm")],
        );
        for v in [0, 1, 3, 900, 70_000] {
            h.observe(v);
        }
        m
    }

    #[test]
    fn rendered_output_validates() {
        let text = sample_handle().prometheus();
        validate_prometheus(&text).unwrap();
        assert!(text.contains("# HELP osiris_ipc_total IPC messages delivered\n"));
        assert!(text.contains("# TYPE osiris_ipc_total counter\n"));
        assert!(text.contains("osiris_ipc_total 12\n"));
        assert!(text.contains("osiris_heap_bytes{component=\"pm\"} 4096\n"));
        assert!(text.contains("osiris_latency_cycles_bucket{component=\"pm\",le=\"0\"} 1\n"));
        assert!(text.contains("osiris_latency_cycles_bucket{component=\"pm\",le=\"+Inf\"} 5\n"));
        assert!(text.contains("osiris_latency_cycles_count{component=\"pm\"} 5\n"));
        assert!(text.contains(&format!(
            "osiris_latency_cycles_sum{{component=\"pm\"}} {}\n",
            4 + 900 + 70_000
        )));
    }

    #[test]
    fn hist_buckets_are_cumulative() {
        let m = MetricsHandle::default();
        let h = m.hist("osiris_h", "h", &[]);
        h.observe(1);
        h.observe(2);
        let text = m.prometheus();
        // bucket_of(1)=1 (le=1), bucket_of(2)=2 (le=3).
        assert!(text.contains("osiris_h_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("osiris_h_bucket{le=\"3\"} 2\n"));
        assert!(text.contains("osiris_h_bucket{le=\"+Inf\"} 2\n"));
    }

    #[test]
    fn validator_rejects_missing_header() {
        assert!(validate_prometheus("loose_metric 1\n").is_err());
    }

    #[test]
    fn validator_rejects_duplicate_series() {
        let text = "# HELP m m\n# TYPE m counter\nm 1\nm 2\n";
        let err = validate_prometheus(text).unwrap_err();
        assert!(err.contains("duplicate series"), "{err}");
    }

    #[test]
    fn validator_rejects_duplicate_headers_and_bad_type() {
        let twice = "# HELP m m\n# HELP m m\n";
        assert!(validate_prometheus(twice)
            .unwrap_err()
            .contains("duplicate HELP"));
        let bad = "# HELP m m\n# TYPE m sideways\n";
        assert!(validate_prometheus(bad)
            .unwrap_err()
            .contains("unknown metric type"));
    }

    #[test]
    fn validator_accepts_label_variants_of_one_series() {
        let text = "# HELP m m\n# TYPE m counter\nm{a=\"1\"} 1\nm{a=\"2\"} 1\n";
        validate_prometheus(text).unwrap();
    }
}
