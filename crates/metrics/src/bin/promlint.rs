//! Offline Prometheus exposition validator for CI.
//!
//! ```text
//! promlint <file.prom> [more.prom ...]
//! ```
//!
//! Exits non-zero with a diagnostic on the first malformed file:
//! missing `# HELP`/`# TYPE` headers, unknown types, duplicate headers,
//! or duplicate series.

use osiris_metrics::prom::validate_prometheus;

fn main() {
    let files: Vec<String> = std::env::args().skip(1).collect();
    if files.is_empty() {
        eprintln!("usage: promlint <file.prom> [more.prom ...]");
        std::process::exit(2);
    }
    let mut failed = false;
    for file in &files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("promlint: {file}: {e}");
                failed = true;
                continue;
            }
        };
        match validate_prometheus(&text) {
            Ok(()) => {
                let series = text
                    .lines()
                    .filter(|l| !l.is_empty() && !l.starts_with('#'))
                    .count();
                println!("promlint: {file}: OK ({series} series)");
            }
            Err(e) => {
                eprintln!("promlint: {file}: {e}");
                failed = true;
            }
        }
    }
    std::process::exit(if failed { 1 } else { 0 });
}
