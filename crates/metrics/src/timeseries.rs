//! Virtual-time telemetry: a deterministic time-series sampler over
//! registry series.
//!
//! The registry ([`crate::MetricsHandle`]) answers "what happened over the
//! whole run"; this module answers "when" — how p99 request latency moved
//! *during* a crash storm, when the crash counter stepped, how recovery
//! cycles accrued. A [`TimeseriesSampler`] holds cheap clones of selected
//! [`Counter`]/[`Hist`] handles and, every Δ virtual cycles, snapshots each
//! into a fixed ring of `Copy` sample points (a counter total, or a full
//! [`HistSummary`] with p50/p90/p99/p99.9).
//!
//! Everything is keyed to the virtual clock, never the wall clock, so two
//! same-seed runs produce byte-identical [`TimeseriesSampler::to_json`]
//! documents — the property the determinism CI gate diffs. The ring keeps
//! the most recent `capacity` points per series; when it wraps, the oldest
//! points are overwritten (flight-recorder discipline, like `osiris-trace`).

use crate::{Counter, Hist};
use osiris_trace::hist::HistSummary;
use osiris_trace::Json;

/// Configuration for a [`TimeseriesSampler`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimeseriesConfig {
    /// Whether [`TimeseriesSampler::maybe_sample`] records anything. A
    /// disabled sampler costs one branch per call and exports an empty
    /// document.
    pub enabled: bool,
    /// Δ: virtual cycles between samples. Samples land on the interval
    /// grid (multiples of Δ as crossed by the monotone clock), so the
    /// sample cadence is a property of virtual time, not of how often the
    /// pump loop happens to run.
    pub interval: u64,
    /// Points retained per tracked series; the ring overwrites its oldest
    /// point once full.
    pub capacity: usize,
}

impl Default for TimeseriesConfig {
    fn default() -> Self {
        TimeseriesConfig {
            enabled: false,
            interval: 25_000,
            capacity: 4096,
        }
    }
}

impl TimeseriesConfig {
    /// Sampling on, with the default interval and capacity.
    pub fn on() -> TimeseriesConfig {
        TimeseriesConfig {
            enabled: true,
            ..Default::default()
        }
    }
}

/// One captured point: a counter total or a histogram digest, at virtual
/// time `t`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Sample {
    /// Virtual-clock cycle the sample was taken at.
    pub t: u64,
    /// The captured value.
    pub value: SampleValue,
}

/// The value half of a [`Sample`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SampleValue {
    /// A counter's running total.
    Counter(u64),
    /// A histogram's condensed digest (count, min/max, mean, p50/p90/p99/
    /// p99.9) — cumulative over the run up to `t`, like a Prometheus
    /// histogram scrape.
    Hist(HistSummary),
}

enum Source {
    Counter(Counter),
    Hist(Hist),
}

struct Tracked {
    /// Display name, conventionally `family{label="value"}`.
    name: String,
    source: Source,
    /// Fixed ring: `points` grows to `capacity` once, then `start` marks
    /// the oldest slot and pushes overwrite in place.
    points: Vec<Sample>,
    start: usize,
}

impl Tracked {
    fn push(&mut self, cap: usize, s: Sample) {
        if self.points.len() < cap {
            self.points.push(s);
        } else {
            self.points[self.start] = s;
            self.start = (self.start + 1) % cap;
        }
    }

    fn kind(&self) -> &'static str {
        match self.source {
            Source::Counter(_) => "counter",
            Source::Hist(_) => "hist",
        }
    }

    fn in_order(&self) -> impl Iterator<Item = &Sample> {
        self.points[self.start..]
            .iter()
            .chain(self.points[..self.start].iter())
    }
}

/// Exported sampler state for the fork path: per-series recorded points
/// (normalized oldest-first) plus the armed sampling-grid position. Taken
/// with [`TimeseriesSampler::export_state`], written back with
/// [`TimeseriesSampler::restore_state`].
#[derive(Clone, Debug)]
pub struct TimeseriesState {
    next_due: u64,
    series: Vec<Vec<Sample>>,
}

/// A virtual-time sampler over registry series. See the module docs.
pub struct TimeseriesSampler {
    cfg: TimeseriesConfig,
    /// Next interval-grid cycle at which a sample is due.
    next_due: u64,
    tracked: Vec<Tracked>,
}

impl std::fmt::Debug for TimeseriesSampler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimeseriesSampler")
            .field("enabled", &self.cfg.enabled)
            .field("interval", &self.cfg.interval)
            .field("tracked", &self.tracked.len())
            .finish()
    }
}

impl TimeseriesSampler {
    /// Creates a sampler; track series with [`Self::track_counter`] /
    /// [`Self::track_hist`] before sampling.
    pub fn new(cfg: TimeseriesConfig) -> TimeseriesSampler {
        assert!(cfg.interval > 0, "timeseries interval must be positive");
        assert!(cfg.capacity > 0, "timeseries capacity must be positive");
        TimeseriesSampler {
            cfg,
            next_due: cfg.interval,
            tracked: Vec::new(),
        }
    }

    /// Whether sampling is on.
    pub fn enabled(&self) -> bool {
        self.cfg.enabled
    }

    /// The configured Δ between samples, in virtual cycles.
    pub fn interval(&self) -> u64 {
        self.cfg.interval
    }

    /// Tracks a counter series under `name` (shares the registry slot).
    pub fn track_counter(&mut self, name: &str, c: Counter) {
        self.tracked.push(Tracked {
            name: name.to_string(),
            source: Source::Counter(c),
            points: Vec::new(),
            start: 0,
        });
    }

    /// Tracks a histogram series under `name` (shares the registry slot).
    pub fn track_hist(&mut self, name: &str, h: Hist) {
        self.tracked.push(Tracked {
            name: name.to_string(),
            source: Source::Hist(h),
            points: Vec::new(),
            start: 0,
        });
    }

    /// Drops every recorded point and re-arms the sampling grid at `now`
    /// (the boot barrier: measurements start clean, like
    /// [`crate::MetricsHandle::reset`]).
    pub fn reset(&mut self, now: u64) {
        for t in &mut self.tracked {
            t.points.clear();
            t.start = 0;
        }
        self.next_due = (now / self.cfg.interval + 1) * self.cfg.interval;
    }

    /// Fork support: every tracked series' recorded points (oldest first)
    /// plus the armed grid position, for later [`Self::restore_state`] on a
    /// sampler tracking the same series in the same order.
    pub fn export_state(&self) -> TimeseriesState {
        TimeseriesState {
            next_due: self.next_due,
            series: self
                .tracked
                .iter()
                .map(|t| t.in_order().copied().collect())
                .collect(),
        }
    }

    /// Fork support: overwrites recorded points and the armed grid position
    /// with state exported from a donor sampler.
    ///
    /// # Panics
    ///
    /// Panics if the tracked-series count differs — fork and donor boot the
    /// same tracking set, so a mismatch is a programming error.
    pub fn restore_state(&mut self, state: &TimeseriesState) {
        assert_eq!(
            state.series.len(),
            self.tracked.len(),
            "timeseries restore with a different tracking set"
        );
        for (t, pts) in self.tracked.iter_mut().zip(&state.series) {
            t.points.clear();
            t.points.extend_from_slice(pts);
            t.start = 0;
        }
        self.next_due = state.next_due;
    }

    /// Takes one sample per tracked series if the monotone virtual clock
    /// has crossed the next interval-grid point. Call at any convenient
    /// pump frequency; a burst of calls within one interval records one
    /// sample, and a long jump across several intervals records one sample
    /// at `now` (the intermediate grid points are unobservable anyway).
    pub fn maybe_sample(&mut self, now: u64) {
        if !self.cfg.enabled || now < self.next_due {
            return;
        }
        self.sample(now);
        self.next_due = (now / self.cfg.interval + 1) * self.cfg.interval;
    }

    /// Unconditionally snapshots every tracked series at `t` (also the
    /// run-end flush, so the final state always appears in the export).
    pub fn sample(&mut self, t: u64) {
        if !self.cfg.enabled {
            return;
        }
        for tr in &mut self.tracked {
            let value = match &tr.source {
                Source::Counter(c) => SampleValue::Counter(c.get()),
                Source::Hist(h) => SampleValue::Hist(h.summary()),
            };
            tr.push(self.cfg.capacity, Sample { t, value });
        }
    }

    /// Total points currently held across all series.
    pub fn len(&self) -> usize {
        self.tracked.iter().map(|t| t.points.len()).sum()
    }

    /// Whether no points have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The recorded points for the series named `name`, oldest first.
    pub fn series(&self, name: &str) -> Option<Vec<Sample>> {
        self.tracked
            .iter()
            .find(|t| t.name == name)
            .map(|t| t.in_order().copied().collect())
    }

    /// Renders the recorded time series as a column-oriented JSON document:
    /// counters as `[t, value]` rows, histograms as
    /// `[t, count, p50, p90, p99, p999, max]` rows, with a `columns` header
    /// naming each position. Deterministic: same-seed runs produce
    /// byte-identical text.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("interval", Json::UInt(self.cfg.interval)),
            ("capacity", Json::UInt(self.cfg.capacity as u64)),
            (
                "series",
                Json::arr(&self.tracked, |t| {
                    let columns: &[&str] = match t.source {
                        Source::Counter(_) => &["t", "value"],
                        Source::Hist(_) => &["t", "count", "p50", "p90", "p99", "p999", "max"],
                    };
                    Json::obj([
                        ("name", Json::Str(t.name.clone())),
                        ("kind", Json::Str(t.kind().to_string())),
                        (
                            "columns",
                            Json::Arr(columns.iter().map(|c| Json::Str(c.to_string())).collect()),
                        ),
                        (
                            "points",
                            Json::Arr(
                                t.in_order()
                                    .map(|s| {
                                        let row = match s.value {
                                            SampleValue::Counter(v) => vec![s.t, v],
                                            SampleValue::Hist(h) => vec![
                                                s.t, h.count, h.p50, h.p90, h.p99, h.p999, h.max,
                                            ],
                                        };
                                        Json::Arr(row.into_iter().map(Json::UInt).collect())
                                    })
                                    .collect(),
                            ),
                        ),
                    ])
                }),
            ),
        ])
    }

    /// The recorded series as Chrome `trace_event` counter events (`ph:
    /// "C"`): one event per sample, named after the series, so the trace
    /// viewer draws each as a stacked-area counter lane under the main
    /// track. Histogram samples carry their p50/p99/p99.9 as separate
    /// counter components.
    pub fn chrome_counters(&self) -> Vec<Json> {
        let mut events = Vec::with_capacity(self.len());
        for t in &self.tracked {
            for s in t.in_order() {
                let args = match s.value {
                    SampleValue::Counter(v) => Json::obj([("value", Json::UInt(v))]),
                    SampleValue::Hist(h) => Json::obj([
                        ("p50", Json::UInt(h.p50)),
                        ("p99", Json::UInt(h.p99)),
                        ("p999", Json::UInt(h.p999)),
                    ]),
                };
                events.push(Json::obj([
                    ("name", Json::Str(t.name.clone())),
                    ("ph", Json::Str("C".to_string())),
                    ("ts", Json::UInt(s.t)),
                    ("pid", Json::UInt(1)),
                    ("args", args),
                ]));
            }
        }
        events
    }

    /// Appends [`Self::chrome_counters`] to a Chrome trace document's
    /// `traceEvents` array in place (no-op when nothing was recorded).
    pub fn append_chrome_counters(&self, doc: &mut Json) {
        if self.is_empty() {
            return;
        }
        if let Json::Obj(pairs) = doc {
            if let Some((_, Json::Arr(events))) = pairs.iter_mut().find(|(k, _)| k == "traceEvents")
            {
                events.extend(self.chrome_counters());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsHandle;

    fn sampler(interval: u64, capacity: usize) -> (TimeseriesSampler, Counter, Hist) {
        let m = MetricsHandle::default();
        let c = m.counter("osiris_ts_total", "t", &[]);
        let h = m.hist("osiris_ts_hist", "t", &[]);
        let mut s = TimeseriesSampler::new(TimeseriesConfig {
            enabled: true,
            interval,
            capacity,
        });
        s.track_counter("osiris_ts_total", c.clone());
        s.track_hist("osiris_ts_hist{overlap=\"none\"}", h.clone());
        (s, c, h)
    }

    #[test]
    fn samples_land_on_the_interval_grid() {
        let (mut s, c, _) = sampler(100, 16);
        c.add(1);
        s.maybe_sample(50); // before the first grid point: nothing
        assert!(s.is_empty());
        s.maybe_sample(100); // on the grid
        s.maybe_sample(130); // same interval: no second sample
        c.add(1);
        s.maybe_sample(250); // crossed 200
        let pts = s.series("osiris_ts_total").unwrap();
        assert_eq!(pts.len(), 2);
        assert_eq!((pts[0].t, pts[0].value), (100, SampleValue::Counter(1)));
        assert_eq!((pts[1].t, pts[1].value), (250, SampleValue::Counter(2)));
    }

    #[test]
    fn ring_keeps_the_most_recent_points() {
        let (mut s, c, _) = sampler(10, 3);
        for i in 1..=5u64 {
            c.add(1);
            s.maybe_sample(i * 10);
        }
        let pts = s.series("osiris_ts_total").unwrap();
        assert_eq!(pts.len(), 3);
        assert_eq!(
            pts.iter().map(|p| p.t).collect::<Vec<_>>(),
            vec![30, 40, 50]
        );
        assert_eq!(pts[2].value, SampleValue::Counter(5));
    }

    #[test]
    fn hist_samples_capture_the_digest() {
        let (mut s, _, h) = sampler(10, 8);
        for _ in 0..99 {
            h.observe(8);
        }
        h.observe(1 << 30);
        s.sample(10);
        let pts = s.series("osiris_ts_hist{overlap=\"none\"}").unwrap();
        match pts[0].value {
            SampleValue::Hist(d) => {
                assert_eq!(d.count, 100);
                assert_eq!(d.p50, 8);
                assert_eq!(d.p999, 1 << 30);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn disabled_sampler_records_nothing() {
        let m = MetricsHandle::default();
        let c = m.counter("osiris_ts_off_total", "t", &[]);
        let mut s = TimeseriesSampler::new(TimeseriesConfig::default());
        assert!(!s.enabled());
        s.track_counter("osiris_ts_off_total", c);
        s.maybe_sample(1_000_000);
        s.sample(2_000_000);
        assert!(s.is_empty());
    }

    #[test]
    fn reset_clears_points_and_rearms_the_grid() {
        let (mut s, c, _) = sampler(100, 8);
        c.inc();
        s.maybe_sample(100);
        assert_eq!(s.len(), 2);
        s.reset(150);
        assert!(s.is_empty());
        s.maybe_sample(150); // old grid point: already past reset's re-arm
        assert!(s.is_empty());
        s.maybe_sample(200); // next grid point after the reset
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn json_is_column_oriented_and_deterministic() {
        let (mut s, c, h) = sampler(10, 8);
        c.add(3);
        h.observe(7);
        s.sample(10);
        let text = s.to_json().pretty();
        assert!(text.contains("\"interval\": 10"), "{text}");
        assert!(text.contains("\"kind\": \"counter\""), "{text}");
        assert!(text.contains("\"kind\": \"hist\""), "{text}");
        assert!(text.contains("\"p999\""), "{text}");
        // Counter row [t, value]; hist row starts [t, count, p50, ...].
        assert!(text.contains("10,"), "{text}");
        assert_eq!(text, s.to_json().pretty());
    }

    #[test]
    fn chrome_counters_append_into_a_trace_document() {
        let (mut s, c, _) = sampler(10, 8);
        c.add(2);
        s.sample(10);
        let mut doc = Json::obj([("traceEvents", Json::Arr(vec![]))]);
        s.append_chrome_counters(&mut doc);
        let text = doc.pretty();
        assert!(text.contains("\"ph\": \"C\""), "{text}");
        assert!(text.contains("\"osiris_ts_total\""), "{text}");
        // An empty sampler leaves the document untouched.
        let (s2, _, _) = sampler(10, 8);
        let mut doc2 = Json::obj([("traceEvents", Json::Arr(vec![]))]);
        s2.append_chrome_counters(&mut doc2);
        assert!(!doc2.pretty().contains("\"C\""));
    }
}
