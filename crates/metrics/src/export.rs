//! JSON exposition of a metrics snapshot, built on the workspace's
//! hand-rolled [`Json`] tree (no serialization crates).
//!
//! The layout mirrors the registry: an ordered `families` array, each
//! family carrying its `series` with a label object and either a scalar
//! `value` or a `hist` object (summary fields plus the non-empty log2
//! buckets as `[floor, count]` pairs). Objects preserve insertion order,
//! so two runs with the same configuration produce byte-identical files.

use osiris_trace::hist::Log2Hist;
use osiris_trace::Json;

use crate::{MetricsSnapshot, SeriesValue};

/// Renders a snapshot as a JSON document.
pub fn render_json(snapshot: &MetricsSnapshot) -> Json {
    Json::obj([(
        "families",
        Json::arr(&snapshot.families, |f| {
            Json::obj([
                ("name", Json::Str(f.name.clone())),
                ("help", Json::Str(f.help.clone())),
                ("kind", Json::Str(f.kind.as_str().to_string())),
                (
                    "series",
                    Json::arr(&f.series, |s| {
                        let labels = Json::Obj(
                            s.labels
                                .iter()
                                .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                                .collect(),
                        );
                        match &s.value {
                            SeriesValue::Counter(n) | SeriesValue::Gauge(n) => {
                                Json::obj([("labels", labels), ("value", Json::UInt(*n))])
                            }
                            SeriesValue::Hist(h) => {
                                Json::obj([("labels", labels), ("hist", hist_json(h))])
                            }
                        }
                    }),
                ),
            ])
        }),
    )])
}

/// A histogram as JSON: summary fields plus non-empty `[floor, count]`
/// bucket pairs.
pub fn hist_json(h: &Log2Hist) -> Json {
    let s = h.summary();
    let buckets: Vec<(u64, u64)> = h
        .buckets()
        .iter()
        .enumerate()
        .filter(|(_, &n)| n != 0)
        .map(|(b, &n)| (Log2Hist::bucket_floor(b), n))
        .collect();
    Json::obj([
        ("count", Json::UInt(s.count)),
        ("sum", Json::UInt(h.sum())),
        ("min", Json::UInt(s.min)),
        ("max", Json::UInt(s.max)),
        ("mean", Json::UInt(s.mean)),
        ("p50", Json::UInt(s.p50)),
        ("p90", Json::UInt(s.p90)),
        ("p99", Json::UInt(s.p99)),
        ("p999", Json::UInt(s.p999)),
        (
            "buckets",
            Json::arr(&buckets, |&(floor, n)| {
                Json::Arr(vec![Json::UInt(floor), Json::UInt(n)])
            }),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use crate::MetricsHandle;

    #[test]
    fn json_round_trips_structure() {
        let m = MetricsHandle::default();
        m.counter("osiris_j_total", "j", &[("component", "pm")])
            .add(3);
        m.hist("osiris_j_hist", "jh", &[]).observe(5);
        let text = m.json().pretty();
        assert!(text.contains("\"name\": \"osiris_j_total\""));
        assert!(text.contains("\"component\": \"pm\""));
        assert!(text.contains("\"value\": 3"));
        assert!(text.contains("\"kind\": \"histogram\""));
        assert!(text.contains("\"count\": 1"));
        // 5 lands in bucket 3 (floor 4).
        assert!(text.contains("4,"));
    }

    #[test]
    fn empty_hist_has_empty_buckets() {
        let m = MetricsHandle::default();
        let _ = m.hist("osiris_empty_hist", "e", &[]);
        let text = m.json().pretty();
        assert!(text.contains("\"buckets\": []"));
    }
}
