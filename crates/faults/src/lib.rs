//! EDFI-style software fault injection for OSIRIS.
//!
//! Reproduces the experimental methodology of paper §VI-B:
//!
//! 1. a **profiling run** ([`Recorder`]) executes the workload once and
//!    records which instrumentation sites (basic-block analogs) are actually
//!    triggered — boot-time-only and never-reached sites are excluded, as in
//!    the paper;
//! 2. a **fault plan** ([`plan_faults`]) derives one fault per appropriate
//!    site: only fail-stop faults ([`FaultModel::FailStop`], the model OSIRIS
//!    is designed for) or the full realistic mix ([`FaultModel::FullEdfi`]:
//!    crashes, hangs, flipped branches, corrupted values — the latter two
//!    being *fail-silent*);
//! 3. a **campaign** injects each fault in a separate, fresh run
//!    ([`Injector`]) and classifies the outcome ([`Outcome`]): *pass*,
//!    *fail* (workload errors but the system stays up), controlled
//!    *shutdown*, or uncontrolled *crash*.
//!
//! Faults are **persistent**: an armed fault fires every time its site
//! executes, so recovering and retrying the same request hits it again —
//! exactly the class of faults OSIRIS' error virtualization (discard, don't
//! replay) is built to survive.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod forge;

pub use campaign::{
    critical_path, run_attribution, site_digest, site_digest128, Campaign, CriticalPath,
    InjectionRecord, RecoveryActionTag,
};
pub use forge::{
    forge_config_fail_silent, Boundary, CoverageMap, Forge, ForgeConfig, ForgePlan, ForgeReport,
    ForgeResult, ForgeVariant, FrontierReport, ScriptWorkload, StepProfile, StepProfiler,
};

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex};

use osiris_kernel::{FaultEffect, FaultHook, Probe, RunOutcome, ShutdownKind, SiteKind};
use osiris_rng::Rng;

/// A fully-qualified instrumentation site.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SiteId {
    /// Component name (`"pm"`, `"vfs"`, …).
    pub component: String,
    /// Site label within the component.
    pub site: String,
    /// Site kind (block / value / branch).
    pub kind: SiteKindTag,
}

/// Serializable mirror of [`SiteKind`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SiteKindTag {
    /// Basic-block marker.
    Block,
    /// Value-producing site.
    Value,
    /// Branch-condition site.
    Branch,
}

impl From<SiteKind> for SiteKindTag {
    fn from(k: SiteKind) -> Self {
        match k {
            SiteKind::Block => SiteKindTag::Block,
            SiteKind::Value => SiteKindTag::Value,
            SiteKind::Branch => SiteKindTag::Branch,
        }
    }
}

/// Execution counts per site, from a profiling run.
#[derive(Clone, Debug, Default)]
pub struct SiteProfile {
    counts: BTreeMap<SiteId, u64>,
}

impl SiteProfile {
    /// Sites that were triggered at least once, in deterministic order.
    pub fn triggered_sites(&self) -> Vec<SiteId> {
        self.counts.keys().cloned().collect()
    }

    /// Execution count of a site.
    pub fn count(&self, id: &SiteId) -> u64 {
        self.counts.get(id).copied().unwrap_or(0)
    }

    /// Number of distinct triggered sites.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether no sites were triggered.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Restrict the profile to the given components (e.g. the five core
    /// servers, excluding drivers).
    pub fn restrict_to(&self, components: &[&str]) -> SiteProfile {
        SiteProfile {
            counts: self
                .counts
                .iter()
                .filter(|(id, _)| components.contains(&id.component.as_str()))
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
        }
    }
}

/// Fault hook that records site executions (the profiling run).
///
/// The shared handle lets the campaign read the profile after the run, since
/// the hook itself is owned by the kernel.
#[derive(Clone, Default)]
pub struct Recorder {
    shared: Arc<Mutex<SiteProfile>>,
}

impl fmt::Debug for Recorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Recorder").finish()
    }
}

impl Recorder {
    /// Creates a recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of the recorded profile.
    pub fn profile(&self) -> SiteProfile {
        self.shared.lock().expect("recorder lock").clone()
    }
}

impl FaultHook for Recorder {
    fn on_site(&mut self, probe: &Probe) -> FaultEffect {
        let id = SiteId {
            component: probe.component.to_string(),
            site: probe.site.to_string(),
            kind: probe.kind.into(),
        };
        *self
            .shared
            .lock()
            .expect("recorder lock")
            .counts
            .entry(id)
            .or_insert(0) += 1;
        FaultEffect::None
    }
}

/// The concrete fault injected at a site.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Fail-stop crash (NULL-pointer-dereference analog).
    Crash,
    /// Component hang (infinite-loop analog), detected by heartbeats.
    Hang,
    /// Fail-silent: negated branch condition.
    BranchFlip,
    /// Fail-silent: value XORed with the mask.
    ValueCorrupt(u64),
    /// Fail-silent: the handler keeps running but is charged `factor`
    /// stall quanta — slow, not hung; the watchdog's heartbeat probes must
    /// tell the two apart.
    Stall(u32),
    /// Fail-silent: the handler completes but its reply vanishes in
    /// flight. Only the watchdog's deadline notices.
    ReplyDrop,
    /// Fail-silent: the reply's payload is corrupted after the sender
    /// sealed its integrity digest. The reply-integrity defense must
    /// reject it and treat the sender as crashed.
    ReplyCorrupt,
}

impl FaultKind {
    fn effect(self) -> FaultEffect {
        match self {
            FaultKind::Crash => FaultEffect::Panic,
            FaultKind::Hang => FaultEffect::Hang,
            FaultKind::BranchFlip => FaultEffect::Flip,
            FaultKind::ValueCorrupt(mask) => FaultEffect::Perturb(mask),
            FaultKind::Stall(factor) => FaultEffect::Stall(factor),
            FaultKind::ReplyDrop => FaultEffect::DropReply,
            FaultKind::ReplyCorrupt => FaultEffect::CorruptReply,
        }
    }

    /// Whether this fault violates the fail-stop assumption.
    pub fn is_fail_silent(self) -> bool {
        matches!(
            self,
            FaultKind::BranchFlip
                | FaultKind::ValueCorrupt(_)
                | FaultKind::Stall(_)
                | FaultKind::ReplyDrop
                | FaultKind::ReplyCorrupt
        )
    }
}

/// One planned injection: a single fault, injected in its own run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// Where.
    pub site: SiteId,
    /// What.
    pub kind: FaultKind,
    /// Transient faults fire exactly once; persistent faults fire on every
    /// execution of the site (the paper's model covers both, §II-E).
    pub transient: bool,
}

/// Which fault universe to draw from (paper §VI-B, Tables II vs III).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultModel {
    /// Only persistent fail-stop crashes — the model OSIRIS is designed
    /// for.
    FailStop,
    /// Fail-stop crashes that fire exactly once (e.g. a race hit under one
    /// particular schedule). The paper's fault model covers transient
    /// faults too (§II-E).
    TransientFailStop,
    /// The full realistic mix: crashes, hangs, flipped branches, corrupted
    /// values.
    FullEdfi,
    /// The fail-silent universe the watchdog subsystem defends against:
    /// every triggered site is visited with a hang, a stall, a dropped
    /// reply and a corrupted reply. No fault in this model produces a
    /// crash signal — detection is entirely on the virtual-time deadlines,
    /// heartbeat probes and reply-integrity checks.
    FailSilent,
    /// Transient fail-stop faults inside the *recovery path itself*: the
    /// kernel's restart / rollback / reconciliation phases and the RS's
    /// conduct sites. These violate the paper's single-fault model (§II-E);
    /// the hardened recovery path degrades along the fallback chain or
    /// re-drives the interrupted conduct from the kernel intent log instead
    /// of crashing the system. Plans from this model are *secondary* faults:
    /// pair each with a workload-triggering primary via [`DoubleInjector`].
    DuringRecovery,
    /// Persistent fail-stop faults in the RS conduct sites: every re-driven
    /// conduct crashes the RS again, exercising the intent-replay cap after
    /// which the kernel completes the recovery directly. Secondary faults,
    /// as with [`FaultModel::DuringRecovery`].
    DoubleFault,
}

/// Recovery-path sites a [`FaultModel::DuringRecovery`] plan targets. These
/// never appear in a (fault-free) profiling run — recoveries only execute
/// once a primary fault crashed something — so the plan list is synthesized
/// rather than profile-derived.
const DURING_RECOVERY_SITES: &[(&str, &str)] = &[
    ("kernel", "kernel.recovery.rollback"),
    ("kernel", "kernel.recovery.restart"),
    ("kernel", "kernel.recovery.reconcile"),
    ("rs", "rs.recover.notify"),
    ("rs", "rs.recover.account"),
    ("rs", "rs.recover.issued"),
];

/// RS conduct sites a [`FaultModel::DoubleFault`] plan targets with
/// persistent crashes.
const DOUBLE_FAULT_SITES: &[(&str, &str)] = &[
    ("rs", "rs.recover.notify"),
    ("rs", "rs.recover.account"),
    ("rs", "rs.recover.issued"),
];

/// Derives the fault list from a profile: one fault per triggered site
/// (fail-stop model) or a seeded realistic mix (full model, which also
/// re-visits value/branch sites with fail-silent faults).
pub fn plan_faults(profile: &SiteProfile, model: FaultModel, seed: u64) -> Vec<FaultPlan> {
    let mut rng = Rng::new(seed);
    let mut plans = Vec::new();
    let synth = |sites: &[(&str, &str)], transient: bool| -> Vec<FaultPlan> {
        sites
            .iter()
            .map(|(c, s)| FaultPlan {
                site: SiteId {
                    component: c.to_string(),
                    site: s.to_string(),
                    kind: SiteKindTag::Block,
                },
                kind: FaultKind::Crash,
                transient,
            })
            .collect()
    };
    match model {
        FaultModel::DuringRecovery => return synth(DURING_RECOVERY_SITES, true),
        FaultModel::DoubleFault => return synth(DOUBLE_FAULT_SITES, false),
        _ => {}
    }
    for site in profile.triggered_sites() {
        match model {
            FaultModel::FailStop => {
                plans.push(FaultPlan {
                    site,
                    kind: FaultKind::Crash,
                    transient: false,
                });
            }
            FaultModel::TransientFailStop => {
                plans.push(FaultPlan {
                    site,
                    kind: FaultKind::Crash,
                    transient: true,
                });
            }
            FaultModel::FullEdfi => {
                // Every site gets a primary fault drawn from the realistic
                // mix; value/branch sites additionally get their
                // kind-specific fail-silent fault.
                let primary = match rng.below(100) {
                    0..=54 => FaultKind::Crash,
                    55..=69 => FaultKind::Hang,
                    70..=84 => FaultKind::BranchFlip,
                    _ => FaultKind::ValueCorrupt(1 << rng.below(16)),
                };
                let primary = match (primary, site.kind) {
                    // Kind-incompatible draws degrade to a crash.
                    (FaultKind::BranchFlip, k) if k != SiteKindTag::Branch => FaultKind::Crash,
                    (FaultKind::ValueCorrupt(_), k) if k != SiteKindTag::Value => FaultKind::Crash,
                    (p, _) => p,
                };
                plans.push(FaultPlan {
                    site: site.clone(),
                    kind: primary,
                    transient: false,
                });
                match site.kind {
                    SiteKindTag::Branch => plans.push(FaultPlan {
                        site,
                        kind: FaultKind::BranchFlip,
                        transient: false,
                    }),
                    SiteKindTag::Value => plans.push(FaultPlan {
                        site,
                        kind: FaultKind::ValueCorrupt(1 << rng.below(16)),
                        transient: false,
                    }),
                    SiteKindTag::Block => {}
                }
            }
            FaultModel::FailSilent => {
                // The full fail-silent plan space: all four kinds at every
                // triggered site, persistent (a retried request hits the
                // same fault again — the hardest case for the retry
                // machinery). The stall factor is seeded but deterministic.
                let factor = 3 + rng.below(6) as u32;
                for kind in [
                    FaultKind::Hang,
                    FaultKind::Stall(factor),
                    FaultKind::ReplyDrop,
                    FaultKind::ReplyCorrupt,
                ] {
                    plans.push(FaultPlan {
                        site: site.clone(),
                        kind,
                        transient: false,
                    });
                }
            }
            FaultModel::DuringRecovery | FaultModel::DoubleFault => {
                unreachable!("synthesized models handled before the profile loop")
            }
        }
    }
    plans
}

/// Fault hook that arms one fault (persistent or transient).
#[derive(Clone, Debug)]
pub struct Injector {
    component: String,
    site: String,
    effect: FaultEffect,
    transient: bool,
    fired: bool,
}

impl Injector {
    /// Arms `plan`.
    pub fn new(plan: &FaultPlan) -> Self {
        Injector {
            component: plan.site.component.clone(),
            site: plan.site.site.clone(),
            effect: plan.kind.effect(),
            transient: plan.transient,
            fired: false,
        }
    }
}

impl FaultHook for Injector {
    fn on_site(&mut self, probe: &Probe) -> FaultEffect {
        if probe.component == self.component && probe.site == self.site {
            if self.transient && self.fired {
                return FaultEffect::None;
            }
            self.fired = true;
            self.effect
        } else {
            FaultEffect::None
        }
    }
}

/// Fault hook composing a workload-triggering *primary* fault with a
/// *secondary* fault armed inside the recovery path: the primary crashes a
/// component, and the secondary fires while that crash is being recovered
/// ([`FaultModel::DuringRecovery`] / [`FaultModel::DoubleFault`] runs).
#[derive(Clone, Debug)]
pub struct DoubleInjector {
    primary: Injector,
    secondary: Injector,
}

impl DoubleInjector {
    /// Arms `primary` (the recovery trigger) and `secondary` (the fault in
    /// the recovery path).
    pub fn new(primary: &FaultPlan, secondary: &FaultPlan) -> Self {
        DoubleInjector {
            primary: Injector::new(primary),
            secondary: Injector::new(secondary),
        }
    }
}

impl FaultHook for DoubleInjector {
    fn on_site(&mut self, probe: &Probe) -> FaultEffect {
        match self.primary.on_site(probe) {
            FaultEffect::None => self.secondary.on_site(probe),
            effect => effect,
        }
    }
}

/// Fault hook for the service-disruption experiment (paper §VI-E, Fig. 3):
/// injects a fail-stop fault into one component at a fixed virtual-time
/// interval, but **only while its recovery window is open**, so every crash
/// is consistently recoverable and the benchmark can run to completion.
#[derive(Clone, Debug)]
pub struct PeriodicCrash {
    component: String,
    interval: u64,
    next_at: u64,
    /// Crashes injected so far.
    pub injected: u64,
}

impl PeriodicCrash {
    /// Crashes `component` every `interval` cycles (first crash after one
    /// full interval).
    pub fn new(component: &str, interval: u64) -> Self {
        PeriodicCrash {
            component: component.to_string(),
            interval,
            next_at: interval,
            injected: 0,
        }
    }
}

impl FaultHook for PeriodicCrash {
    fn on_site(&mut self, probe: &Probe) -> FaultEffect {
        if probe.component == self.component
            && probe.window_open
            && probe.replyable
            && probe.now >= self.next_at
        {
            self.next_at = probe.now + self.interval;
            self.injected += 1;
            FaultEffect::Panic
        } else {
            FaultEffect::None
        }
    }
}

/// Classification of one injected run (Tables II/III columns, plus the
/// escalation-ladder classes).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// Workload completed and every test passed.
    Pass,
    /// Workload completed, system stable, but one or more tests failed.
    Fail,
    /// Workload completed with every test passing, but only because the
    /// escalation ladder quarantined a crash-looping component: the system
    /// is running in a degraded configuration.
    Degraded,
    /// A component was quarantined *and* the workload failed tests or left
    /// residual inconsistencies attributable to the benched component.
    Quarantined,
    /// The system performed a controlled shutdown.
    Shutdown,
    /// Uncontrolled crash, hang, or post-run inconsistency.
    Crash,
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Outcome::Pass => "pass",
            Outcome::Fail => "fail",
            Outcome::Degraded => "degraded",
            Outcome::Quarantined => "quarantined",
            Outcome::Shutdown => "shutdown",
            Outcome::Crash => "crash",
        };
        f.write_str(s)
    }
}

/// Classifies a run. `audit_violations` is the number of cross-component
/// consistency violations detected after the run (a stable-looking but
/// corrupted system counts as a crash); `quarantines` is the number of
/// components the escalation ladder benched during the run (pass 0 when the
/// run has no ladder). A completed run with quarantines is *degraded*
/// (everything still passed) or *quarantined* (tests failed, or the benched
/// component left dangling state the audit flags) — either way the system
/// survived in bounded time rather than crash-looping, which is the
/// property the ladder exists to provide.
pub fn classify_run(outcome: &RunOutcome, audit_violations: usize, quarantines: u64) -> Outcome {
    match outcome {
        RunOutcome::Completed { init_code, .. } => {
            if quarantines > 0 {
                if *init_code == 0 && audit_violations == 0 {
                    Outcome::Degraded
                } else {
                    Outcome::Quarantined
                }
            } else if audit_violations > 0 {
                Outcome::Crash
            } else if *init_code == 0 {
                Outcome::Pass
            } else {
                Outcome::Fail
            }
        }
        RunOutcome::Shutdown(ShutdownKind::Controlled(_)) => Outcome::Shutdown,
        RunOutcome::Shutdown(ShutdownKind::Crash(_)) => Outcome::Crash,
        RunOutcome::Hang(_) => Outcome::Crash,
    }
}

/// Aggregated campaign results.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Tally {
    /// Runs classified `Pass`.
    pub pass: usize,
    /// Runs classified `Fail`.
    pub fail: usize,
    /// Runs classified `Degraded`.
    pub degraded: usize,
    /// Runs classified `Quarantined`.
    pub quarantined: usize,
    /// Runs classified `Shutdown`.
    pub shutdown: usize,
    /// Runs classified `Crash`.
    pub crash: usize,
}

impl Tally {
    /// Adds one outcome.
    pub fn add(&mut self, o: Outcome) {
        match o {
            Outcome::Pass => self.pass += 1,
            Outcome::Fail => self.fail += 1,
            Outcome::Degraded => self.degraded += 1,
            Outcome::Quarantined => self.quarantined += 1,
            Outcome::Shutdown => self.shutdown += 1,
            Outcome::Crash => self.crash += 1,
        }
    }

    /// Total runs.
    pub fn total(&self) -> usize {
        self.pass + self.fail + self.degraded + self.quarantined + self.shutdown + self.crash
    }

    /// Percentage of runs with the given count.
    pub fn pct(&self, n: usize) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            100.0 * n as f64 / self.total() as f64
        }
    }

    /// Fraction of runs that kept the system alive (pass + fail, plus the
    /// degraded/quarantined runs that survived on the escalation ladder).
    pub fn survivability(&self) -> f64 {
        self.pct(self.pass + self.fail + self.degraded + self.quarantined)
    }
}

impl FromIterator<Outcome> for Tally {
    fn from_iter<I: IntoIterator<Item = Outcome>>(iter: I) -> Self {
        let mut t = Tally::default();
        for o in iter {
            t.add(o);
        }
        t
    }
}

/// Runs `f` over `jobs` on `threads` worker threads, preserving input order
/// in the output. Each job is independent (a fresh simulator instance), so
/// campaigns parallelize trivially.
///
/// Jobs are *started* in input order too (a forward cursor, not a LIFO
/// stack), so side effects that workers key by job index — e.g.
/// [`Campaign::record_at`] slots — interleave the same way regardless of
/// the thread count.
pub fn run_parallel<J, T, F>(jobs: Vec<J>, threads: usize, f: F) -> Vec<T>
where
    J: Send,
    T: Send,
    F: Fn(J) -> T + Sync,
{
    let threads = threads.max(1);
    let n = jobs.len();
    let mut results: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let queue = Mutex::new(jobs.into_iter().enumerate());
    let f = &f;
    let out = Mutex::new(&mut results);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let job = queue.lock().expect("queue lock").next();
                let Some((idx, job)) = job else { break };
                let r = f(job);
                out.lock().expect("out lock")[idx] = Some(r);
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every job completed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_injector_fires_once() {
        let plan = FaultPlan {
            site: SiteId {
                component: "pm".into(),
                site: "t".into(),
                kind: SiteKindTag::Block,
            },
            kind: FaultKind::Crash,
            transient: true,
        };
        let mut inj = Injector::new(&plan);
        let p = Probe {
            component: "pm",
            site: "t",
            kind: SiteKind::Block,
            now: 0,
            window_open: true,
            replyable: true,
        };
        assert_eq!(inj.on_site(&p), FaultEffect::Panic);
        assert_eq!(inj.on_site(&p), FaultEffect::None);
    }

    fn profile_with(sites: &[(&str, &str, SiteKindTag)]) -> SiteProfile {
        let mut p = SiteProfile::default();
        for (c, s, k) in sites {
            p.counts.insert(
                SiteId {
                    component: c.to_string(),
                    site: s.to_string(),
                    kind: *k,
                },
                1,
            );
        }
        p
    }

    #[test]
    fn fail_stop_plan_is_one_crash_per_site() {
        let p = profile_with(&[
            ("pm", "a", SiteKindTag::Block),
            ("vm", "b", SiteKindTag::Value),
        ]);
        let plans = plan_faults(&p, FaultModel::FailStop, 1);
        assert_eq!(plans.len(), 2);
        assert!(plans.iter().all(|f| f.kind == FaultKind::Crash));
    }

    #[test]
    fn full_edfi_plan_is_deterministic_and_larger() {
        let p = profile_with(&[
            ("pm", "a", SiteKindTag::Block),
            ("pm", "br", SiteKindTag::Branch),
            ("vm", "v", SiteKindTag::Value),
        ]);
        let a = plan_faults(&p, FaultModel::FullEdfi, 42);
        let b = plan_faults(&p, FaultModel::FullEdfi, 42);
        assert_eq!(a, b, "same seed, same plan");
        assert!(a.len() > 3, "fail-silent variants add plans");
        assert!(a.iter().any(|f| f.kind.is_fail_silent()));
    }

    fn probe(c: &'static str, s: &'static str, k: SiteKind) -> Probe {
        Probe {
            component: c,
            site: s,
            kind: k,
            now: 0,
            window_open: true,
            replyable: true,
        }
    }

    #[test]
    fn recorder_counts_sites() {
        let mut r = Recorder::new();
        r.on_site(&probe("pm", "x", SiteKind::Block));
        r.on_site(&probe("pm", "x", SiteKind::Block));
        r.on_site(&probe("vm", "y", SiteKind::Value));
        let p = r.profile();
        assert_eq!(p.len(), 2);
        let id = SiteId {
            component: "pm".into(),
            site: "x".into(),
            kind: SiteKindTag::Block,
        };
        assert_eq!(p.count(&id), 2);
    }

    #[test]
    fn restrict_filters_components() {
        let p = profile_with(&[
            ("pm", "a", SiteKindTag::Block),
            ("disk", "d", SiteKindTag::Block),
        ]);
        let q = p.restrict_to(&["pm", "vm", "vfs", "ds", "rs"]);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn injector_fires_only_at_its_site_every_time() {
        let plan = FaultPlan {
            site: SiteId {
                component: "pm".into(),
                site: "x".into(),
                kind: SiteKindTag::Block,
            },
            kind: FaultKind::Crash,
            transient: false,
        };
        let mut inj = Injector::new(&plan);
        assert_eq!(
            inj.on_site(&probe("pm", "x", SiteKind::Block)),
            FaultEffect::Panic
        );
        assert_eq!(
            inj.on_site(&probe("pm", "x", SiteKind::Block)),
            FaultEffect::Panic
        );
        assert_eq!(
            inj.on_site(&probe("pm", "y", SiteKind::Block)),
            FaultEffect::None
        );
        assert_eq!(
            inj.on_site(&probe("vm", "x", SiteKind::Block)),
            FaultEffect::None
        );
    }

    #[test]
    fn classification_matrix() {
        use osiris_kernel::RunOutcome as RO;
        let done = RO::Completed {
            init_code: 0,
            exit_codes: Default::default(),
        };
        assert_eq!(classify_run(&done, 0, 0), Outcome::Pass);
        assert_eq!(classify_run(&done, 2, 0), Outcome::Crash);
        let failed = RO::Completed {
            init_code: 3,
            exit_codes: Default::default(),
        };
        assert_eq!(classify_run(&failed, 0, 0), Outcome::Fail);
        assert_eq!(
            classify_run(&RO::Shutdown(ShutdownKind::Controlled("x".into())), 0, 0),
            Outcome::Shutdown
        );
        assert_eq!(
            classify_run(&RO::Shutdown(ShutdownKind::Crash("x".into())), 0, 0),
            Outcome::Crash
        );
        assert_eq!(classify_run(&RO::Hang("h".into()), 0, 0), Outcome::Crash);
    }

    #[test]
    fn escalation_classification() {
        use osiris_kernel::RunOutcome as RO;
        let done = RO::Completed {
            init_code: 0,
            exit_codes: Default::default(),
        };
        // No quarantines: the plain Tables II/III classification.
        assert_eq!(classify_run(&done, 0, 0), Outcome::Pass);
        // Quarantine + clean finish = degraded survival.
        assert_eq!(classify_run(&done, 0, 1), Outcome::Degraded);
        // Quarantine + residual inconsistency (e.g. fds the benched VFS
        // never cleaned) = quarantined, NOT an uncontrolled crash.
        assert_eq!(classify_run(&done, 2, 1), Outcome::Quarantined);
        let failed = RO::Completed {
            init_code: 3,
            exit_codes: Default::default(),
        };
        assert_eq!(classify_run(&failed, 0, 1), Outcome::Quarantined);
        // Terminal outcomes are unaffected by quarantine accounting.
        assert_eq!(
            classify_run(&RO::Shutdown(ShutdownKind::Controlled("x".into())), 0, 1),
            Outcome::Shutdown
        );
        assert_eq!(classify_run(&RO::Hang("h".into()), 0, 1), Outcome::Crash);
    }

    #[test]
    fn degraded_tally_counts_toward_survivability() {
        let t: Tally = [
            Outcome::Pass,
            Outcome::Degraded,
            Outcome::Quarantined,
            Outcome::Crash,
        ]
        .into_iter()
        .collect();
        assert_eq!(t.total(), 4);
        assert_eq!(t.degraded, 1);
        assert_eq!(t.quarantined, 1);
        assert_eq!(t.survivability(), 75.0);
    }

    #[test]
    fn tally_percentages_and_survivability() {
        let t: Tally = [Outcome::Pass, Outcome::Pass, Outcome::Fail, Outcome::Crash]
            .into_iter()
            .collect();
        assert_eq!(t.total(), 4);
        assert_eq!(t.pct(t.pass), 50.0);
        assert_eq!(t.survivability(), 75.0);
    }

    #[test]
    fn run_parallel_preserves_order() {
        let jobs: Vec<u32> = (0..50).collect();
        let out = run_parallel(jobs, 8, |j| j * 2);
        assert_eq!(out, (0..50).map(|j| j * 2).collect::<Vec<_>>());
    }
}
