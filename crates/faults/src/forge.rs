//! The campaign **forge**: snapshot-fork fault campaigns with
//! coverage-guided exploration of the recovery-failure frontier.
//!
//! Classic campaigns ([`crate::run_parallel`] over
//! `osiris_workloads::run_suite_with`) pay a full boot + workload prefix for
//! every injected run, even though every variant of one injection site
//! shares the exact same fault-free prefix. The forge removes that
//! redundancy with the OS fork substrate
//! ([`osiris_servers::Os::snapshot`] / [`osiris_servers::Os::fork`]):
//!
//! 1. **Prefix discovery** — a [`StepProfiler`]-instrumented run of the
//!    deterministic [`ScriptWorkload`] maps every instrumentation site to
//!    the workload step where it first executes (its *reachability point*).
//! 2. **Multiplexed snapshots** — one clean run per policy snapshots the OS
//!    at each reachability boundary into a shared
//!    [`osiris_checkpoint::ChunkStore`]; consecutive snapshots share
//!    unchanged chunks, so each additional prefix costs O(dirty).
//! 3. **Forked injections** — every fault variant of a site forks from the
//!    site's snapshot and replays only the suffix. Because an armed
//!    [`Injector`] is pass-through until its site first executes, a forked
//!    run is byte-identical to a from-boot run with the same fault — the
//!    differential tests in `tests/forge_fork.rs` pin this down.
//! 4. **Coverage-guided exploration** — a [`CoverageMap`] over
//!    (component, window-state, policy, fault-model, outcome) cells tracks
//!    what the sweep has actually tested; after the base waves the planner
//!    spends the remaining budget on the *frontier*: sites where
//!    neighboring variants (same site, different policy or different
//!    secondary-fault window) flip between recovering and
//!    degrading/shutting down.
//!
//! Workers reuse their OS instance across forks via
//! [`osiris_servers::Os::try_readopt`], so the steady-state cost of one
//! injection is an O(dirty) state adoption, not a boot. Results are
//! deterministic in *plan order* regardless of thread count: outcomes,
//! records and the campaign axiom chain are identical for 1 or 16 workers.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;
use std::sync::{Arc, Mutex};

use osiris_checkpoint::ChunkStore;
use osiris_core::PolicyKind;
use osiris_kernel::abi::{Errno, Fd, OpenFlags, Pid, SeekFrom, Signal, SysReply, Syscall};
use osiris_kernel::{FaultEffect, FaultHook, NoFaults, OsEngine, Probe, RunOutcome, SyscallId};
use osiris_rng::Rng;
use osiris_servers::{Os, OsConfig, OsSnapshot};
use osiris_trace::Json;

use crate::campaign::{
    kind_label, model_label, run_attribution, site_digest128, Campaign, InjectionRecord,
    RecoveryActionTag,
};
use crate::{
    classify_run, plan_faults, run_parallel, DoubleInjector, FaultKind, FaultModel, FaultPlan,
    Injector, Outcome, SiteId, SiteProfile,
};

/// The five core servers eligible for fail-stop injection (paper order).
pub const FORGE_SERVERS: [&str; 5] = ["pm", "vfs", "vm", "ds", "rs"];

/// Components whose first triggered site serves as the *primary* crash for
/// the secondary-fault models — each is a distinct secondary-fault
/// *window*: the recovery the secondary fault lands in belongs to a
/// different component, at a different point of the workload.
pub const PRIMARY_WINDOWS: [&str; 4] = ["vfs", "pm", "vm", "ds"];

// ---------------------------------------------------------------------
// ScriptWorkload: a deterministic engine-level workload
// ---------------------------------------------------------------------

/// Outcome of one [`ScriptWorkload`] drive.
#[derive(Clone, Debug)]
pub struct ScriptRun {
    /// Reply checks that failed (0 on a clean run).
    pub failures: u32,
    /// The synthesized run outcome, shaped like the host's so
    /// [`crate::classify_run`] applies unchanged.
    pub outcome: RunOutcome,
}

impl ScriptRun {
    /// Whether the run completed with every check passing.
    pub fn clean(&self) -> bool {
        matches!(self.outcome, RunOutcome::Completed { init_code: 0, .. })
    }
}

/// A deterministic, step-structured workload driven through [`OsEngine`]
/// directly as the init process — no host threads, so the OS can be
/// snapshotted at any step boundary (the engine is quiescent there: all
/// submitted calls replied, kill events drained).
///
/// Each step is self-contained (it opens and closes its own descriptors),
/// so running steps `k..N` on a fork equals the suffix of a from-boot run
/// — the property the snapshot-fork campaign rests on. Syscall ids are
/// minted per step (`(step+1)*10_000 + seq`), keeping the id stream of a
/// forked suffix identical to the same suffix of a full run.
#[derive(Clone, Copy, Debug)]
pub struct ScriptWorkload {
    /// Virtual cycles charged to user compute before each syscall.
    pub charge_per_call: u64,
    /// Bounded transparent retries of `ECRASH` replies (error
    /// virtualization: the request was discarded, retrying is the
    /// documented contract).
    pub ecrash_retries: u32,
    /// Timer fires tolerated without progress before declaring a hang.
    pub max_idle_fires: u32,
    /// Extra bulk-I/O rounds appended to each step of the bulk phase
    /// (steps `0..`[`ScriptWorkload::BULK_STEPS`]). Each round overwrites
    /// a fixed data-store key, rewrites a fixed root file and toggles the
    /// heap break, so state stays bounded while the clean prefix grows
    /// linearly — the cost a from-boot rerun pays and a fork skips.
    pub stress_rounds: u32,
}

impl Default for ScriptWorkload {
    fn default() -> Self {
        ScriptWorkload {
            charge_per_call: 5,
            ecrash_retries: 4,
            max_idle_fires: 10_000,
            stress_rounds: 0,
        }
    }
}

/// Drives the engine for one workload run (or a sub-range of steps).
struct Driver<'a, E: OsEngine> {
    os: &'a mut E,
    cfg: ScriptWorkload,
    seq: u64,
    sid_base: u64,
    failures: u32,
    stall: Option<String>,
    shutdown: bool,
    killed: bool,
}

impl<'a, E: OsEngine> Driver<'a, E> {
    fn terminal(&self) -> bool {
        self.stall.is_some() || self.shutdown || self.killed
    }

    /// Submits `call` and pumps to its reply, firing timers as needed.
    /// `None` means the run is over (shutdown, hang, or init killed).
    fn call(&mut self, call: Syscall) -> Option<SysReply> {
        if self.terminal() {
            return None;
        }
        for _ in 0..=self.cfg.ecrash_retries {
            self.os.charge_user(self.cfg.charge_per_call);
            let sid = SyscallId(self.sid_base + self.seq);
            self.seq += 1;
            self.os.submit(sid, Pid::INIT, call.clone());
            let reply = self.pump_for(sid)?;
            if reply != SysReply::Err(Errno::ECRASH) {
                return Some(reply);
            }
        }
        Some(SysReply::Err(Errno::ECRASH))
    }

    fn pump_for(&mut self, sid: SyscallId) -> Option<SysReply> {
        let mut idle: u32 = 0;
        loop {
            let replies = self.os.pump();
            for pid in self.os.take_kill_events() {
                if pid == Pid::INIT {
                    self.killed = true;
                }
            }
            let mut found = None;
            for (rsid, _pid, rep) in replies {
                if rsid == sid {
                    found = Some(rep);
                }
            }
            if let Some(r) = found {
                return Some(r);
            }
            if self.killed {
                return None;
            }
            if self.os.shutdown_state().is_some() {
                self.shutdown = true;
                return None;
            }
            if !self.os.fire_next_timer() {
                self.stall = Some(format!("no reply for sid {} and no pending timers", sid.0));
                return None;
            }
            idle += 1;
            if idle > self.cfg.max_idle_fires {
                self.stall = Some(format!(
                    "no reply for sid {} after {idle} timer fires",
                    sid.0
                ));
                return None;
            }
        }
    }

    fn check(&mut self, call: Syscall, ok: impl FnOnce(&SysReply) -> bool) {
        if let Some(r) = self.call(call) {
            if !ok(&r) {
                self.failures += 1;
            }
        }
    }

    fn check_ok(&mut self, call: Syscall) {
        self.check(call, |r| !matches!(r, SysReply::Err(_)));
    }

    fn check_data(&mut self, call: Syscall, want: &[u8]) {
        self.check(
            call,
            |r| matches!(r, SysReply::Data(d) if d.as_slice() == want),
        );
    }

    fn open(&mut self, path: &str, flags: OpenFlags) -> Option<Fd> {
        match self.call(Syscall::Open {
            path: path.into(),
            flags,
        }) {
            Some(SysReply::Desc(fd)) => Some(fd),
            Some(_) => {
                self.failures += 1;
                None
            }
            None => None,
        }
    }
}

impl ScriptWorkload {
    /// Number of steps in the script.
    pub const STEPS: usize = 8;

    /// Steps carrying the configurable bulk phase (`stress_rounds`); the
    /// final two steps stay light, so late-window forks replay a short
    /// suffix of a long run.
    pub const BULK_STEPS: usize = 6;

    /// Runs the full script.
    pub fn run<E: OsEngine>(&self, os: &mut E) -> ScriptRun {
        self.run_range(os, 0..Self::STEPS)
    }

    /// Runs steps `range` (each step is independent of prior steps'
    /// descriptors, so any contiguous sub-range is valid).
    pub fn run_range<E: OsEngine>(&self, os: &mut E, range: Range<usize>) -> ScriptRun {
        self.run_range_with(os, range, |_| {})
    }

    /// Like [`ScriptWorkload::run_range`], invoking `before_step` with the
    /// step index before each step executes (profiling instrumentation).
    pub fn run_range_with<E: OsEngine>(
        &self,
        os: &mut E,
        range: Range<usize>,
        mut before_step: impl FnMut(usize),
    ) -> ScriptRun {
        let mut d = Driver {
            os,
            cfg: *self,
            seq: 0,
            sid_base: 0,
            failures: 0,
            stall: None,
            shutdown: false,
            killed: false,
        };
        for step in range {
            if d.terminal() {
                break;
            }
            before_step(step);
            d.sid_base = (step as u64 + 1) * 10_000;
            d.seq = 0;
            Self::run_step(&mut d, step);
        }
        let outcome = if d.shutdown {
            let kind = d.os.shutdown_state().expect("shutdown state set");
            RunOutcome::Shutdown(kind)
        } else if let Some(msg) = d.stall.take() {
            RunOutcome::Hang(msg)
        } else {
            // A killed init counts as a failed (but completed) workload:
            // the system survived, the workload did not.
            let init_code = if d.killed {
                i32::from(d.failures as i32 == 0) + d.failures as i32
            } else {
                d.failures as i32
            };
            RunOutcome::Completed {
                init_code,
                exit_codes: BTreeMap::new(),
            }
        };
        ScriptRun {
            failures: d.failures,
            outcome,
        }
    }

    fn run_step<E: OsEngine>(d: &mut Driver<'_, E>, step: usize) {
        match step {
            0 => {
                // Process-manager basics.
                d.check(Syscall::GetPid, |r| *r == SysReply::Proc(Pid::INIT));
                d.check_ok(Syscall::GetPPid);
                d.check_ok(Syscall::SigMask {
                    sig: Signal::SigUsr1,
                    masked: true,
                });
                d.check_ok(Syscall::SigPending);
                d.check_ok(Syscall::Sleep { ticks: 50 });
            }
            1 => {
                // Virtual memory.
                d.check_ok(Syscall::Brk { pages: 4 });
                match d.call(Syscall::Mmap { pages: 8 }) {
                    Some(SysReply::Val(id)) => {
                        d.check_ok(Syscall::Munmap { id: id as u64 });
                    }
                    Some(_) => d.failures += 1,
                    None => {}
                }
                d.check_ok(Syscall::VmStat);
                d.check_ok(Syscall::Brk { pages: -2 });
            }
            2 => {
                // File create / write / read-back.
                d.check_ok(Syscall::Mkdir {
                    path: "/forge".into(),
                });
                if let Some(fd) = d.open("/forge/log", OpenFlags::RDWR_CREATE) {
                    d.check_ok(Syscall::Write {
                        fd,
                        bytes: b"forge-alpha".to_vec(),
                    });
                    d.check_ok(Syscall::Seek {
                        fd,
                        from: SeekFrom::Start(0),
                    });
                    d.check_data(Syscall::Read { fd, len: 11 }, b"forge-alpha");
                    d.check_ok(Syscall::Fsync { fd });
                    d.check_ok(Syscall::Close { fd });
                }
            }
            3 => {
                // Data store.
                d.check_ok(Syscall::DsPut {
                    key: "k/forge/a".into(),
                    value: b"alpha".to_vec(),
                });
                d.check_ok(Syscall::DsPut {
                    key: "k/forge/b".into(),
                    value: b"beta".to_vec(),
                });
                d.check_data(
                    Syscall::DsGet {
                        key: "k/forge/a".into(),
                    },
                    b"alpha",
                );
                d.check_ok(Syscall::DsList {
                    prefix: "k/forge/".into(),
                });
                d.check_ok(Syscall::DsDel {
                    key: "k/forge/b".into(),
                });
            }
            4 => {
                // Directory operations.
                if let Some(fd) = d.open("/forge/tmp", OpenFlags::CREATE) {
                    d.check_ok(Syscall::Write {
                        fd,
                        bytes: b"swap".to_vec(),
                    });
                    d.check_ok(Syscall::Close { fd });
                }
                d.check_ok(Syscall::Rename {
                    from: "/forge/tmp".into(),
                    to: "/forge/kept".into(),
                });
                d.check_ok(Syscall::Stat {
                    path: "/forge/kept".into(),
                });
                d.check_ok(Syscall::ReadDir {
                    path: "/forge".into(),
                });
                d.check_ok(Syscall::Unlink {
                    path: "/forge/kept".into(),
                });
            }
            5 => {
                // Pipes and descriptor duplication.
                match d.call(Syscall::Pipe) {
                    Some(SysReply::TwoDesc(r, w)) => {
                        d.check_ok(Syscall::Write {
                            fd: w,
                            bytes: b"ping".to_vec(),
                        });
                        d.check_data(Syscall::Read { fd: r, len: 4 }, b"ping");
                        if let Some(SysReply::Desc(d2)) = d.call(Syscall::Dup { fd: r }) {
                            d.check_ok(Syscall::Close { fd: d2 });
                        }
                        d.check_ok(Syscall::Close { fd: r });
                        d.check_ok(Syscall::Close { fd: w });
                    }
                    Some(_) => d.failures += 1,
                    None => {}
                }
            }
            6 => {
                // Full-surface encore: one light pass over every syscall
                // family, so *every* injection site has a late window
                // here — a Late-boundary fork replays only this short
                // suffix no matter which site it targets.
                d.check_ok(Syscall::DsPut {
                    key: "k/forge/c".into(),
                    value: b"gamma".to_vec(),
                });
                d.check_ok(Syscall::DsDel {
                    key: "k/forge/c".into(),
                });
                d.check_ok(Syscall::DsPut {
                    key: "k/forge/c".into(),
                    value: b"gamma".to_vec(),
                });
                if let Some(fd) = d.open("/forge/log", OpenFlags::APPEND) {
                    d.check_ok(Syscall::Write {
                        fd,
                        bytes: b"-beta".to_vec(),
                    });
                    d.check_ok(Syscall::Close { fd });
                }
                d.check_ok(Syscall::Mkdir {
                    path: "/encore".into(),
                });
                if let Some(fd) = d.open("/encore/f", OpenFlags::CREATE) {
                    d.check_ok(Syscall::Close { fd });
                }
                d.check_ok(Syscall::Rename {
                    from: "/encore/f".into(),
                    to: "/encore/g".into(),
                });
                d.check_ok(Syscall::Stat {
                    path: "/encore/g".into(),
                });
                d.check_ok(Syscall::Unlink {
                    path: "/encore/g".into(),
                });
                if let Some(SysReply::TwoDesc(r, w)) = d.call(Syscall::Pipe) {
                    d.check_ok(Syscall::Write {
                        fd: w,
                        bytes: b"hi".to_vec(),
                    });
                    if let Some(SysReply::Desc(d2)) = d.call(Syscall::Dup { fd: r }) {
                        d.check_ok(Syscall::Close { fd: d2 });
                    }
                    d.check_ok(Syscall::Close { fd: r });
                    d.check_ok(Syscall::Close { fd: w });
                }
                if let Some(SysReply::Val(id)) = d.call(Syscall::Mmap { pages: 2 }) {
                    d.check_ok(Syscall::Munmap { id: id as u64 });
                }
                d.check_ok(Syscall::VmStat);
                d.check_ok(Syscall::GetPPid);
                d.check_ok(Syscall::SigMask {
                    sig: Signal::SigUsr2,
                    masked: true,
                });
                d.check_ok(Syscall::SigPending);
                d.check_ok(Syscall::Brk { pages: 1 });
                d.check_ok(Syscall::Sleep { ticks: 25 });
            }
            7 => {
                // Final consistency sweep.
                d.check_data(
                    Syscall::DsGet {
                        key: "k/forge/c".into(),
                    },
                    b"gamma",
                );
                d.check_ok(Syscall::DsList { prefix: "".into() });
                d.check_ok(Syscall::ReadDir { path: "/".into() });
                d.check(Syscall::GetPid, |r| *r == SysReply::Proc(Pid::INIT));
            }
            _ => unreachable!("script has {} steps", Self::STEPS),
        }
        if step < Self::BULK_STEPS {
            for _round in 0..d.cfg.stress_rounds {
                if d.terminal() {
                    return;
                }
                d.check_ok(Syscall::DsPut {
                    key: format!("k/bulk/{}", step % 4),
                    value: vec![b'x'; 48],
                });
                if let Some(fd) = d.open("/bulk", OpenFlags::RDWR_CREATE) {
                    d.check_ok(Syscall::Seek {
                        fd,
                        from: SeekFrom::Start(0),
                    });
                    d.check_ok(Syscall::Write {
                        fd,
                        bytes: vec![b'y'; 48],
                    });
                    d.check_ok(Syscall::Close { fd });
                }
                d.check_ok(Syscall::Brk { pages: 1 });
                d.check_ok(Syscall::Brk { pages: -1 });
            }
        }
    }
}

// ---------------------------------------------------------------------
// StepProfiler: site → reachability step
// ---------------------------------------------------------------------

/// What the profiling run observed about one site.
#[derive(Clone, Copy, Debug)]
pub struct SiteObs {
    /// Executions across the whole run.
    pub count: u64,
    /// First workload step in which the site executed — the reachability
    /// boundary ([`Boundary::Reach`] forks here).
    pub first_step: usize,
    /// Last workload step in which the site executed — the late-window
    /// boundary ([`Boundary::Late`] forks here, skipping the whole clean
    /// prefix a from-boot rerun would replay).
    pub last_step: usize,
    /// Whether the site ever executed inside an open recovery window.
    pub window_open: bool,
}

/// Per-step site profile of one [`ScriptWorkload`] run.
#[derive(Clone, Debug, Default)]
pub struct StepProfile {
    sites: BTreeMap<SiteId, SiteObs>,
}

impl StepProfile {
    /// All observed sites with their observations, in deterministic order.
    pub fn sites(&self) -> impl Iterator<Item = (&SiteId, &SiteObs)> {
        self.sites.iter()
    }

    /// Number of distinct sites observed.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// Whether the profile is empty.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// The observation for `site`, if it executed.
    pub fn get(&self, site: &SiteId) -> Option<&SiteObs> {
        self.sites.get(site)
    }

    /// The earliest-reached site of `component` (ties broken by site id),
    /// used to pick the primary crash for secondary-fault windows.
    pub fn first_site_of(&self, component: &str) -> Option<(SiteId, SiteObs)> {
        self.sites
            .iter()
            .filter(|(id, _)| id.component == component)
            .min_by(|(ia, oa), (ib, ob)| (oa.first_step, *ia).cmp(&(ob.first_step, *ib)))
            .map(|(id, obs)| (id.clone(), *obs))
    }
}

/// Fault hook recording, per site, its execution count, the workload step
/// where it first executed, and whether it ever ran inside an open
/// recovery window. The step cursor is advanced by the script's
/// `before_step` callback.
#[derive(Clone, Default)]
pub struct StepProfiler {
    shared: Arc<Mutex<(usize, StepProfile)>>,
}

impl std::fmt::Debug for StepProfiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StepProfiler").finish()
    }
}

impl StepProfiler {
    /// Sets the current workload step.
    pub fn set_step(&self, step: usize) {
        self.shared.lock().expect("profiler lock").0 = step;
    }

    /// A clone of the accumulated profile.
    pub fn profile(&self) -> StepProfile {
        self.shared.lock().expect("profiler lock").1.clone()
    }
}

impl FaultHook for StepProfiler {
    fn on_site(&mut self, probe: &Probe) -> FaultEffect {
        let mut guard = self.shared.lock().expect("profiler lock");
        let (step, profile) = &mut *guard;
        let id = SiteId {
            component: probe.component.to_string(),
            site: probe.site.to_string(),
            kind: probe.kind.into(),
        };
        let step = *step;
        let obs = profile.sites.entry(id).or_insert(SiteObs {
            count: 0,
            first_step: step,
            last_step: step,
            window_open: false,
        });
        obs.count += 1;
        obs.last_step = obs.last_step.max(step);
        obs.window_open |= probe.window_open;
        FaultEffect::None
    }
}

// ---------------------------------------------------------------------
// Variants and planning
// ---------------------------------------------------------------------

/// One planned injection: a fault (plus optional primary trigger), a
/// policy, and the snapshot boundary its forked run starts from.
#[derive(Clone, Debug)]
pub struct ForgeVariant {
    /// Fault model this variant belongs to.
    pub model: FaultModel,
    /// Recovery policy of the run.
    pub policy: PolicyKind,
    /// Index of `policy` in the forge's policy list.
    pub policy_idx: usize,
    /// The armed fault (the *secondary* for recovery-path models).
    pub plan: FaultPlan,
    /// The workload-triggering primary crash (secondary-fault models).
    pub primary: Option<FaultPlan>,
    /// Workload step the variant's run forks at.
    pub boundary: usize,
    /// Whether the profiled site executes inside an open recovery window
    /// (synthesized recovery-path sites always do).
    pub window_open: bool,
    /// Label of the secondary-fault window ("-" for single-fault models;
    /// the primary's component, suffixed `+hang` for hang-primary
    /// refinements).
    pub primary_window: String,
}

impl ForgeVariant {
    /// The coverage-cell key of this variant.
    fn cell(&self) -> CellKey {
        (
            model_label(self.model),
            kind_label(self.plan.kind),
            site_digest128(&self.plan.site, self.plan.kind),
            self.policy.to_string(),
            self.primary_window.clone(),
        )
    }
}

/// (model, fault kind, armed-site digest, policy, secondary-fault window).
type CellKey = (&'static str, &'static str, u128, String, String);

/// The discovered profiles plus the budgeted base-wave variant list.
#[derive(Clone, Debug)]
pub struct ForgePlan {
    /// Per-policy step profiles from the discovery runs.
    pub profiles: Vec<StepProfile>,
    /// Base-wave variants, in deterministic plan order.
    pub variants: Vec<ForgeVariant>,
    /// Variants the budget dropped from the base wave — still declared in
    /// the coverage ledger (a too-small budget shows up as lost coverage,
    /// never as silent truncation).
    pub deferred: Vec<ForgeVariant>,
}

impl ForgePlan {
    /// Number of planned base-wave variants.
    pub fn len(&self) -> usize {
        self.variants.len()
    }

    /// Whether no variants were planned.
    pub fn is_empty(&self) -> bool {
        self.variants.is_empty()
    }
}

// ---------------------------------------------------------------------
// Coverage map and frontier
// ---------------------------------------------------------------------

/// Coverage ledger over (component, window-state, policy, fault-model,
/// outcome) cells, fed from [`InjectionRecord`]s.
///
/// Two ledgers in one: the *planned* side tracks which (model, site,
/// policy, window) variants the planner scheduled and which of them have
/// executed — this drives the sweep-completeness gates; the *observed*
/// side collects distinct outcome cells — this is what
/// `osiris_forge_cells_covered` exports.
#[derive(Clone, Debug, Default)]
pub struct CoverageMap {
    planned: BTreeMap<CellKey, bool>,
    observed: BTreeSet<(String, bool, String, &'static str, String)>,
}

impl CoverageMap {
    /// Declares a planned variant (idempotent).
    pub fn plan(&mut self, v: &ForgeVariant) {
        self.planned.entry(v.cell()).or_insert(false);
    }

    /// Whether the variant's cell is already planned.
    pub fn is_planned(&self, v: &ForgeVariant) -> bool {
        self.planned.contains_key(&v.cell())
    }

    /// Marks a variant executed and folds its record into the observed
    /// outcome cells.
    pub fn observe(&mut self, v: &ForgeVariant, rec: &InjectionRecord) {
        self.planned.insert(v.cell(), true);
        self.observed.insert((
            rec.site.component.clone(),
            v.window_open,
            rec.policy.clone(),
            model_label(v.model),
            rec.outcome.to_string(),
        ));
    }

    /// (planned, executed) cell counts for the given models.
    pub fn coverage(&self, models: &[FaultModel]) -> (usize, usize) {
        let labels: Vec<&str> = models.iter().map(|m| model_label(*m)).collect();
        let mut planned = 0;
        let mut executed = 0;
        for ((model, _, _, _, _), done) in &self.planned {
            if labels.contains(model) {
                planned += 1;
                executed += usize::from(*done);
            }
        }
        (planned, executed)
    }

    /// (planned, executed) cells of one model restricted to one fault-kind
    /// label (see [`kind_label`]).
    pub fn kind_coverage(&self, model: FaultModel, kind: &str) -> (usize, usize) {
        let label = model_label(model);
        let mut planned = 0;
        let mut executed = 0;
        for ((m, k, _, _, _), done) in &self.planned {
            if *m == label && *k == kind {
                planned += 1;
                executed += usize::from(*done);
            }
        }
        (planned, executed)
    }

    /// Distinct observed (component, window-state, policy, model, outcome)
    /// cells.
    pub fn cells_covered(&self) -> usize {
        self.observed.len()
    }
}

/// Collapses outcomes into frontier classes: survived (pass/fail),
/// degraded (ladder benched something), fatal (shutdown/crash).
fn outcome_class(o: Outcome) -> u8 {
    match o {
        Outcome::Pass | Outcome::Fail => 0,
        Outcome::Degraded | Outcome::Quarantined => 1,
        Outcome::Shutdown | Outcome::Crash => 2,
    }
}

/// The recovery-failure frontier of one executed wave: neighboring
/// variants (same armed site and model, adjacent along the policy axis or
/// the secondary-fault-window axis) whose outcomes land in different
/// classes.
#[derive(Clone, Debug, Default)]
pub struct FrontierReport {
    /// Class flips between neighboring variants.
    pub flips: u64,
    /// Armed sites on the frontier, as `component:site` labels.
    pub sites: Vec<String>,
}

/// Variants grouped by (model, site digest, fixed axis), holding the
/// (varying axis, outcome class) pairs scanned for flips.
type AxisGroups<F, V> = BTreeMap<(&'static str, u128, F), Vec<(V, u8)>>;

fn frontier(variants: &[ForgeVariant], outcomes: &[Outcome]) -> FrontierReport {
    assert_eq!(variants.len(), outcomes.len());
    // Neighbors along the policy axis (same site/model/window) and along
    // the window axis (same site/model/policy).
    let mut by_policy: AxisGroups<String, usize> = BTreeMap::new();
    let mut by_window: AxisGroups<usize, String> = BTreeMap::new();
    for (v, &o) in variants.iter().zip(outcomes) {
        let digest = site_digest128(&v.plan.site, v.plan.kind);
        let class = outcome_class(o);
        by_policy
            .entry((model_label(v.model), digest, v.primary_window.clone()))
            .or_default()
            .push((v.policy_idx, class));
        by_window
            .entry((model_label(v.model), digest, v.policy_idx))
            .or_default()
            .push((v.primary_window.clone(), class));
    }
    let mut flips = 0;
    let mut sites = BTreeSet::new();
    let mut digest_site: BTreeMap<u128, String> = BTreeMap::new();
    for v in variants {
        digest_site
            .entry(site_digest128(&v.plan.site, v.plan.kind))
            .or_insert_with(|| format!("{}:{}", v.plan.site.component, v.plan.site.site));
    }
    fn scan<A: Ord>(
        digest: u128,
        classes: &mut [(A, u8)],
        flips: &mut u64,
        sites: &mut BTreeSet<String>,
        digest_site: &BTreeMap<u128, String>,
    ) {
        classes.sort();
        for pair in classes.windows(2) {
            if pair[0].1 != pair[1].1 {
                *flips += 1;
                sites.insert(digest_site[&digest].clone());
            }
        }
    }
    for ((_, digest, _), mut classes) in by_policy {
        scan(digest, &mut classes, &mut flips, &mut sites, &digest_site);
    }
    for ((_, digest, _), mut classes) in by_window {
        scan(digest, &mut classes, &mut flips, &mut sites, &digest_site);
    }
    FrontierReport {
        flips,
        sites: sites.into_iter().collect(),
    }
}

// ---------------------------------------------------------------------
// The forge
// ---------------------------------------------------------------------

/// Campaign-config for forged runs: flight-record quietly and retain the
/// axiom (mirrors the bench crate's injection config), with a smaller
/// frame pool to keep restart image copies cheap.
pub fn forge_config(policy: PolicyKind) -> OsConfig {
    let mut cfg = OsConfig::with_policy(policy);
    cfg.vm_frames = 8192;
    cfg.trace = osiris_trace::TraceConfig {
        enabled: true,
        capacity: 2048,
        blackbox_tail: 0,
        ..Default::default()
    };
    cfg.axiom = osiris_axiom::AxiomConfig::on();
    cfg
}

/// [`forge_config`] with the virtual-time watchdog armed — required for
/// [`FaultModel::FailSilent`] sweeps, whose faults produce no crash signal
/// and are only caught by deadlines, probes and reply-integrity checks.
pub fn forge_config_fail_silent(policy: PolicyKind) -> OsConfig {
    let mut cfg = forge_config(policy);
    cfg.watchdog = osiris_kernel::WatchdogConfig::on();
    cfg
}

/// Where a variant's fork boundary sits relative to its site's profile.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Boundary {
    /// Fork at the site's *first* execution step: the fault fires at the
    /// earliest opportunity (classic reachability-point injection).
    Reach,
    /// Fork at the site's *last* execution step: the fault fires in the
    /// late window, after the whole bulk prefix — the regime where a
    /// from-boot rerun pays the full clean replay the fork skips.
    Late,
}

/// Forge configuration.
#[derive(Clone, Debug)]
pub struct ForgeConfig {
    /// The workload every run drives.
    pub script: ScriptWorkload,
    /// Fork-boundary placement for planned variants.
    pub inject_at: Boundary,
    /// Policies swept (column order of the campaign matrix).
    pub policies: Vec<PolicyKind>,
    /// Worker threads for the fan-out waves.
    pub threads: usize,
    /// Seed for the synthesized fault plans.
    pub seed: u64,
    /// Maximum injected runs across all waves. The FailStop matrix is
    /// never truncated (the 100%-coverage gate); the recovery-space wave
    /// and the frontier wave spend what remains.
    pub budget: usize,
    /// Whether to spend leftover budget refining the frontier.
    pub frontier_wave: bool,
    /// Whether to plan the [`FaultModel::FailSilent`] wave: the four
    /// fail-silent kinds (hang, stall, reply-drop, reply-corrupt) at each
    /// core server's earliest-reached site, across every policy. Requires
    /// an `os_config` with the watchdog enabled
    /// ([`forge_config_fail_silent`]) — asserted at planning time.
    pub fail_silent_wave: bool,
    /// OS configuration per policy (defaults to [`forge_config`]).
    pub os_config: fn(PolicyKind) -> OsConfig,
}

impl Default for ForgeConfig {
    fn default() -> Self {
        ForgeConfig {
            script: ScriptWorkload::default(),
            inject_at: Boundary::Reach,
            policies: PolicyKind::STANDARD.to_vec(),
            threads: std::thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(1),
            seed: 42,
            budget: 512,
            frontier_wave: true,
            fail_silent_wave: false,
            os_config: forge_config,
        }
    }
}

/// Operational statistics of one forge execution.
#[derive(Clone, Copy, Debug, Default)]
pub struct ForgeStats {
    /// Fresh boots adopted from a snapshot ([`Os::fork_from`]).
    pub forks: u64,
    /// Worker OS instances re-pointed at a snapshot without rebooting
    /// ([`Os::try_readopt`] — the steady-state path).
    pub readopts: u64,
    /// Total bytes copied back while adopting snapshots (the O(dirty)
    /// work).
    pub fork_dirty_bytes: u64,
    /// Snapshots taken across all prefix passes.
    pub snapshots: u64,
    /// Total manifest bytes across retained snapshots (chunks shared via
    /// the store are counted once per referencing manifest).
    pub snapshot_manifest_bytes: u64,
}

/// Everything a forge execution produced beyond the campaign itself.
#[derive(Clone, Debug)]
pub struct ForgeReport {
    /// Injected runs executed (base + refinement waves).
    pub injections: usize,
    /// Base-wave variants the budget dropped.
    pub dropped: usize,
    /// Frontier-refinement runs executed.
    pub refinements: usize,
    /// Fork/readopt/snapshot accounting.
    pub stats: ForgeStats,
    /// FailStop matrix coverage: (planned, executed) cells.
    pub fail_stop: (usize, usize),
    /// DoubleFault × DuringRecovery space coverage: (planned, executed).
    pub recovery_space: (usize, usize),
    /// FailSilent plan-space coverage: (planned, executed). Zero planned
    /// when the wave is off.
    pub fail_silent: (usize, usize),
    /// FailSilent coverage restricted to hang cells: (planned, executed).
    pub fail_silent_hang: (usize, usize),
    /// FailSilent coverage restricted to reply-drop cells.
    pub fail_silent_reply_drop: (usize, usize),
    /// Distinct observed (component, window, policy, model, outcome) cells.
    pub outcome_cells: usize,
    /// The frontier of the base wave.
    pub frontier: FrontierReport,
}

impl ForgeReport {
    /// FailStop matrix coverage in percent (100 when nothing was planned).
    pub fn fail_stop_pct(&self) -> f64 {
        pct(self.fail_stop)
    }

    /// DoubleFault × DuringRecovery coverage in percent.
    pub fn recovery_space_pct(&self) -> f64 {
        pct(self.recovery_space)
    }

    /// FailSilent plan-space coverage in percent.
    pub fn fail_silent_pct(&self) -> f64 {
        pct(self.fail_silent)
    }

    /// FailSilent hang-cell coverage in percent.
    pub fn fail_silent_hang_pct(&self) -> f64 {
        pct(self.fail_silent_hang)
    }

    /// FailSilent reply-drop-cell coverage in percent.
    pub fn fail_silent_reply_drop_pct(&self) -> f64 {
        pct(self.fail_silent_reply_drop)
    }

    /// The report as a JSON object (embedded in `campaign_report.json`).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("injections", Json::UInt(self.injections as u64)),
            ("dropped", Json::UInt(self.dropped as u64)),
            ("refinements", Json::UInt(self.refinements as u64)),
            ("forks", Json::UInt(self.stats.forks)),
            ("readopts", Json::UInt(self.stats.readopts)),
            ("fork_dirty_bytes", Json::UInt(self.stats.fork_dirty_bytes)),
            ("snapshots", Json::UInt(self.stats.snapshots)),
            (
                "snapshot_manifest_bytes",
                Json::UInt(self.stats.snapshot_manifest_bytes),
            ),
            ("fail_stop_cells", Json::UInt(self.fail_stop.0 as u64)),
            ("fail_stop_coverage_pct", Json::Num(self.fail_stop_pct())),
            (
                "recovery_space_cells",
                Json::UInt(self.recovery_space.0 as u64),
            ),
            (
                "recovery_space_coverage_pct",
                Json::Num(self.recovery_space_pct()),
            ),
            ("fail_silent_cells", Json::UInt(self.fail_silent.0 as u64)),
            (
                "fail_silent_coverage_pct",
                Json::Num(self.fail_silent_pct()),
            ),
            (
                "fail_silent_hang_cells",
                Json::UInt(self.fail_silent_hang.0 as u64),
            ),
            (
                "fail_silent_hang_coverage_pct",
                Json::Num(self.fail_silent_hang_pct()),
            ),
            (
                "fail_silent_reply_drop_cells",
                Json::UInt(self.fail_silent_reply_drop.0 as u64),
            ),
            (
                "fail_silent_reply_drop_coverage_pct",
                Json::Num(self.fail_silent_reply_drop_pct()),
            ),
            ("outcome_cells", Json::UInt(self.outcome_cells as u64)),
            ("frontier_flips", Json::UInt(self.frontier.flips)),
            (
                "frontier_sites",
                Json::Arr(
                    self.frontier
                        .sites
                        .iter()
                        .map(|s| Json::Str(s.clone()))
                        .collect(),
                ),
            ),
        ])
    }
}

fn pct((planned, executed): (usize, usize)) -> f64 {
    if planned == 0 {
        100.0
    } else {
        100.0 * executed as f64 / planned as f64
    }
}

/// A forge execution's full result: the campaign observer (matrix, axiom,
/// metrics, report) plus the forge report.
#[derive(Debug)]
pub struct ForgeResult {
    /// The campaign fed with every injected run, in plan order.
    pub campaign: Campaign,
    /// Coverage, frontier and fork accounting.
    pub report: ForgeReport,
}

impl ForgeResult {
    /// The combined report document.
    pub fn report_json(&self) -> Json {
        Json::obj([
            ("campaign", self.campaign.report_json()),
            ("forge", self.report.to_json()),
        ])
    }
}

struct RunArtifacts {
    record: InjectionRecord,
    dirty_bytes: u64,
    readopted: bool,
}

thread_local! {
    /// Per-worker OS instance, re-adopted across forks so the steady-state
    /// cost of one injection is an O(dirty) adoption, not a boot.
    static WORKER_OS: RefCell<Option<Os>> = const { RefCell::new(None) };
}

/// The campaign forge. See the module docs for the execution pipeline.
#[derive(Clone, Debug)]
pub struct Forge {
    config: ForgeConfig,
    script: ScriptWorkload,
}

impl Forge {
    /// A forge over `config`.
    pub fn new(config: ForgeConfig) -> Forge {
        let script = config.script;
        Forge { config, script }
    }

    /// The configuration.
    pub fn config(&self) -> &ForgeConfig {
        &self.config
    }

    /// The workload driven by every run.
    pub fn script(&self) -> &ScriptWorkload {
        &self.script
    }

    fn boundary_of(&self, obs: &SiteObs) -> usize {
        match self.config.inject_at {
            Boundary::Reach => obs.first_step,
            Boundary::Late => obs.last_step,
        }
    }

    /// Discovery + base planning: per-policy profiling runs, then the
    /// FailStop matrix followed by the full DoubleFault × DuringRecovery
    /// space (secondary × policy × primary window), truncated to the
    /// budget (FailStop is asserted to fit — the 100% gate is
    /// non-negotiable).
    pub fn plan(&self) -> ForgePlan {
        let profiles: Vec<StepProfile> = self
            .config
            .policies
            .iter()
            .map(|&policy| {
                let mut os = Os::new((self.config.os_config)(policy));
                let profiler = StepProfiler::default();
                os.set_fault_hook(Box::new(profiler.clone()));
                let run = self
                    .script
                    .run_range_with(&mut os, 0..ScriptWorkload::STEPS, |s| profiler.set_step(s));
                assert!(
                    run.clean(),
                    "fault-free profiling run must pass cleanly under {policy}: {:?}",
                    run.outcome
                );
                profiler.profile()
            })
            .collect();

        let mut variants = Vec::new();
        // Wave 1: the FailStop matrix — every profiled server site × every
        // policy, persistent crash.
        for (policy_idx, &policy) in self.config.policies.iter().enumerate() {
            for (site, obs) in profiles[policy_idx].sites() {
                if !FORGE_SERVERS.contains(&site.component.as_str()) {
                    continue;
                }
                variants.push(ForgeVariant {
                    model: FaultModel::FailStop,
                    policy,
                    policy_idx,
                    plan: FaultPlan {
                        site: site.clone(),
                        kind: FaultKind::Crash,
                        transient: false,
                    },
                    primary: None,
                    boundary: self.boundary_of(obs),
                    window_open: obs.window_open,
                    primary_window: "-".into(),
                });
            }
        }
        let fail_stop = variants.len();
        assert!(
            fail_stop <= self.config.budget,
            "budget {} cannot cover the {fail_stop}-cell FailStop matrix",
            self.config.budget
        );
        // Wave 2: the full DoubleFault × DuringRecovery space. Each
        // synthesized recovery-path fault is paired with a primary crash
        // in every primary window (component) and swept across policies.
        // Policy-major order keeps consecutive jobs on one policy, so
        // worker OS instances re-adopt instead of rebooting on a config
        // mismatch.
        for (policy_idx, &policy) in self.config.policies.iter().enumerate() {
            for model in [FaultModel::DuringRecovery, FaultModel::DoubleFault] {
                let secondaries = plan_faults(&SiteProfile::default(), model, self.config.seed);
                for sec in &secondaries {
                    for window in PRIMARY_WINDOWS {
                        let Some((psite, pobs)) = profiles[policy_idx].first_site_of(window) else {
                            continue;
                        };
                        variants.push(ForgeVariant {
                            model,
                            policy,
                            policy_idx,
                            plan: sec.clone(),
                            primary: Some(FaultPlan {
                                site: psite,
                                kind: FaultKind::Crash,
                                transient: true,
                            }),
                            boundary: self.boundary_of(&pobs),
                            // Recovery-path sites only execute during a
                            // recovery; the kernel's conduct always runs
                            // under an open intent.
                            window_open: true,
                            primary_window: window.to_string(),
                        });
                    }
                }
            }
        }
        // Wave 3 (optional): the fail-silent universe. The four kinds at
        // each core server's earliest-reached site, per policy. The stall
        // factor is drawn once per (policy, server) from the forge seed, so
        // the plan — and every derived artifact — is seed-deterministic.
        if self.config.fail_silent_wave {
            for (policy_idx, &policy) in self.config.policies.iter().enumerate() {
                assert!(
                    (self.config.os_config)(policy).watchdog.enabled,
                    "fail_silent_wave needs a watchdog-enabled os_config \
                     (see forge_config_fail_silent); without deadlines these \
                     faults are undetectable and every run wedges"
                );
                let mut rng = Rng::new(self.config.seed);
                for server in FORGE_SERVERS {
                    let Some((site, obs)) = profiles[policy_idx].first_site_of(server) else {
                        continue;
                    };
                    let factor = 3 + rng.below(6) as u32;
                    for kind in [
                        FaultKind::Hang,
                        FaultKind::Stall(factor),
                        FaultKind::ReplyDrop,
                        FaultKind::ReplyCorrupt,
                    ] {
                        variants.push(ForgeVariant {
                            model: FaultModel::FailSilent,
                            policy,
                            policy_idx,
                            plan: FaultPlan {
                                site: site.clone(),
                                kind,
                                transient: false,
                            },
                            primary: None,
                            boundary: self.boundary_of(&obs),
                            window_open: obs.window_open,
                            primary_window: "-".into(),
                        });
                    }
                }
            }
        }
        let deferred = variants.split_off(variants.len().min(self.config.budget));
        ForgePlan {
            profiles,
            variants,
            deferred,
        }
    }

    /// Plans and executes the full campaign: base waves, then (budget
    /// permitting) a frontier-refinement wave.
    pub fn run(&self) -> ForgeResult {
        let plan = self.plan();
        self.run_plan(&plan)
    }

    /// Executes a prepared plan.
    pub fn run_plan(&self, plan: &ForgePlan) -> ForgeResult {
        osiris_kernel::install_quiet_panic_hook();
        let mut stats = ForgeStats::default();
        let mut store = ChunkStore::new();
        let snapshots = self.snapshot_prefixes(&mut store, &plan.variants, &mut stats);

        let mut coverage = CoverageMap::default();
        for v in plan.variants.iter().chain(plan.deferred.iter()) {
            coverage.plan(v);
        }
        let base_arts = self.run_wave(&plan.variants, &snapshots, &store);
        let base_outcomes: Vec<Outcome> = base_arts.iter().map(|a| a.record.outcome).collect();
        let front = frontier(&plan.variants, &base_outcomes);

        // Wave 3: spend leftover budget refining the frontier — transient
        // variants of flipped fail-stop sites, hang-primary windows for
        // flipped recovery-path cells.
        let remaining = self.config.budget.saturating_sub(plan.variants.len());
        let refinements = if self.config.frontier_wave && remaining > 0 {
            let mut refine = Vec::new();
            let on_frontier = |v: &ForgeVariant| {
                front
                    .sites
                    .contains(&format!("{}:{}", v.plan.site.component, v.plan.site.site))
            };
            let mut seen = BTreeSet::new();
            for v in plan.variants.iter().filter(|v| on_frontier(v)) {
                let refined = match v.model {
                    FaultModel::FailStop => ForgeVariant {
                        model: FaultModel::TransientFailStop,
                        plan: FaultPlan {
                            transient: true,
                            ..v.plan.clone()
                        },
                        ..v.clone()
                    },
                    FaultModel::DuringRecovery | FaultModel::DoubleFault => {
                        let Some(primary) = &v.primary else { continue };
                        ForgeVariant {
                            primary: Some(FaultPlan {
                                kind: FaultKind::Hang,
                                ..primary.clone()
                            }),
                            primary_window: format!("{}+hang", v.primary_window),
                            ..v.clone()
                        }
                    }
                    _ => continue,
                };
                // Refinements are bonus exploration of already-covered
                // frontier cells: they are not pre-declared in the
                // coverage ledger, so a budget-truncated refinement wave
                // never drags the sweep-completeness gates below 100%.
                if !coverage.is_planned(&refined) && seen.insert(refined.cell()) {
                    refine.push(refined);
                }
            }
            refine.truncate(remaining);
            refine
        } else {
            Vec::new()
        };
        let refine_arts = self.run_wave(&refinements, &snapshots, &store);

        // Feed the campaign in plan order — base wave, then refinements —
        // so records, matrix and the derived axiom chain are deterministic
        // on every thread count.
        let total = plan.variants.len() + refinements.len();
        let campaign = Campaign::new("forge", FaultModel::FailStop, total).quiet();
        let mut per_policy: BTreeMap<String, (u64, u64)> = BTreeMap::new();
        for (v, art) in plan
            .variants
            .iter()
            .chain(refinements.iter())
            .zip(base_arts.iter().chain(refine_arts.iter()))
        {
            coverage.observe(v, &art.record);
            stats.fork_dirty_bytes += art.dirty_bytes;
            let slot = per_policy.entry(art.record.policy.clone()).or_default();
            if art.readopted {
                stats.readopts += 1;
                slot.1 += 1;
            } else {
                stats.forks += 1;
                slot.0 += 1;
            }
            campaign.record(art.record.clone());
        }

        // Export the osiris_forge_* families through the campaign's
        // registry, so one scrape carries campaign and forge series.
        let mh = campaign.metrics_handle();
        for (policy, (forks, readopts)) in &per_policy {
            mh.counter(
                "osiris_forge_forks_total",
                "Fresh fork-from-snapshot boots by policy",
                &[("policy", policy)],
            )
            .add(*forks);
            mh.counter(
                "osiris_forge_readopts_total",
                "Worker OS snapshot re-adoptions (boot-free forks) by policy",
                &[("policy", policy)],
            )
            .add(*readopts);
        }
        mh.counter(
            "osiris_forge_fork_dirty_bytes_total",
            "Bytes copied back adopting snapshots (the O(dirty) fork work)",
            &[],
        )
        .add(stats.fork_dirty_bytes);
        mh.counter(
            "osiris_forge_snapshots_total",
            "Prefix snapshots taken",
            &[],
        )
        .add(stats.snapshots);
        mh.gauge(
            "osiris_forge_cells_covered",
            "Distinct (component, window, policy, model, outcome) cells observed",
            &[],
        )
        .set(coverage.cells_covered() as u64);
        mh.counter(
            "osiris_forge_frontier_flips_total",
            "Outcome-class flips between neighboring variants",
            &[],
        )
        .add(front.flips);

        let report = ForgeReport {
            injections: total,
            dropped: plan.deferred.len(),
            refinements: refinements.len(),
            stats,
            fail_stop: coverage.coverage(&[FaultModel::FailStop]),
            recovery_space: coverage
                .coverage(&[FaultModel::DuringRecovery, FaultModel::DoubleFault]),
            fail_silent: coverage.coverage(&[FaultModel::FailSilent]),
            fail_silent_hang: coverage.kind_coverage(FaultModel::FailSilent, "hang"),
            fail_silent_reply_drop: coverage.kind_coverage(FaultModel::FailSilent, "reply-drop"),
            outcome_cells: coverage.cells_covered(),
            frontier: front,
        };
        ForgeResult { campaign, report }
    }

    /// Executes the plan's variants **from boot** — no snapshots, no
    /// forks: every run boots a fresh OS, replays the clean prefix up to
    /// the variant's boundary, arms the injector there and runs the
    /// suffix. This is the classic campaign cost model and it produces
    /// the same records the forged sweep produces (fork equivalence) —
    /// the baseline the `bench_campaign` speedup gate compares against.
    pub fn run_baseline(&self, variants: &[ForgeVariant]) -> Vec<InjectionRecord> {
        osiris_kernel::install_quiet_panic_hook();
        run_parallel(variants.to_vec(), self.config.threads, |v| {
            let mut os = Os::new((self.config.os_config)(v.policy));
            let prefix = self.script.run_range(&mut os, 0..v.boundary);
            assert!(prefix.clean(), "clean prefix replay: {:?}", prefix.outcome);
            self.execute_on(&mut os, &v, v.boundary)
        })
    }

    /// One clean prefix run per policy, snapshotting at every boundary a
    /// variant forks from. Later snapshots chain off earlier ones, so each
    /// additional boundary costs O(dirty-since-previous).
    fn snapshot_prefixes(
        &self,
        store: &mut ChunkStore,
        variants: &[ForgeVariant],
        stats: &mut ForgeStats,
    ) -> BTreeMap<(usize, usize), OsSnapshot> {
        let mut boundaries: BTreeMap<usize, BTreeSet<usize>> = BTreeMap::new();
        for v in variants {
            boundaries
                .entry(v.policy_idx)
                .or_default()
                .insert(v.boundary);
        }
        let mut snaps: BTreeMap<(usize, usize), OsSnapshot> = BTreeMap::new();
        for (policy_idx, bounds) in boundaries {
            let policy = self.config.policies[policy_idx];
            let mut os = Os::new((self.config.os_config)(policy));
            let mut at = 0;
            let mut prev: Option<(usize, usize)> = None;
            for b in bounds {
                let run = self.script.run_range(&mut os, at..b);
                assert!(
                    run.clean(),
                    "clean prefix run failed under {policy}: {:?}",
                    run.outcome
                );
                let snap = os.snapshot_into(store, prev.and_then(|k| snaps.get(&k)));
                stats.snapshots += 1;
                stats.snapshot_manifest_bytes += snap.manifest_bytes() as u64;
                snaps.insert((policy_idx, b), snap);
                prev = Some((policy_idx, b));
                at = b;
            }
        }
        snaps
    }

    /// Fans a wave of variants out over the worker pool. Result order is
    /// plan order (a [`run_parallel`] guarantee).
    fn run_wave(
        &self,
        variants: &[ForgeVariant],
        snapshots: &BTreeMap<(usize, usize), OsSnapshot>,
        store: &ChunkStore,
    ) -> Vec<RunArtifacts> {
        run_parallel(variants.to_vec(), self.config.threads, |v| {
            let snap = snapshots
                .get(&(v.policy_idx, v.boundary))
                .expect("snapshot exists for every planned boundary");
            let (mut os, restore, readopted) = WORKER_OS.with(|cell| {
                if let Some(mut os) = cell.borrow_mut().take() {
                    if let Some(rs) = os.try_readopt(snap, store) {
                        return (os, rs, true);
                    }
                }
                let (os, rs) = Os::fork_from(snap, store);
                (os, rs, false)
            });
            let record = self.execute_on(&mut os, &v, v.boundary);
            // Scrub the spent injector before caching the worker OS.
            os.set_fault_hook(Box::new(NoFaults));
            WORKER_OS.with(|cell| *cell.borrow_mut() = Some(os));
            RunArtifacts {
                record,
                dirty_bytes: restore.bytes_restored as u64,
                readopted,
            }
        })
    }

    /// Arms the variant's injector on `os`, drives the script from
    /// `from_step`, and classifies the run into an [`InjectionRecord`] —
    /// identical bookkeeping for forked and from-boot runs.
    fn execute_on(&self, os: &mut Os, v: &ForgeVariant, from_step: usize) -> InjectionRecord {
        let hook: Box<dyn FaultHook> = match &v.primary {
            Some(p) => Box::new(DoubleInjector::new(p, &v.plan)),
            None => Box::new(Injector::new(&v.plan)),
        };
        os.set_fault_hook(hook);
        let run = self.script.run_range(os, from_step..ScriptWorkload::STEPS);
        let violations = if run.outcome.completed() {
            os.audit().len()
        } else {
            0
        };
        let m = os.metrics();
        let class = classify_run(&run.outcome, violations, m.quarantines);
        let blackbox = (class == Outcome::Crash).then(|| os.blackbox()).flatten();
        let (critical_path, span_latency_clean, span_latency_recovery) =
            run_attribution(os.kernel().axiom().records(), &os.metrics_snapshot());
        InjectionRecord {
            site: v.plan.site.clone(),
            kind: v.plan.kind,
            policy: v.policy.to_string(),
            outcome: class,
            action: RecoveryActionTag::from_counts(
                m.recovered_rollback,
                m.recovered_fresh,
                m.recovered_quiescent,
                m.recovered_naive,
                m.controlled_shutdowns,
            ),
            run_cycles: os.kernel().now(),
            recoveries: m.recovered_rollback
                + m.recovered_fresh
                + m.recovered_quiescent
                + m.recovered_naive,
            recovery_cycles: m.recovery_cycles,
            critical_path,
            span_latency_clean,
            span_latency_recovery,
            blackbox,
        }
    }
}
