//! Live observability for fault-injection campaigns.
//!
//! A [`Campaign`] is a thread-safe observer the campaign runner feeds one
//! [`InjectionRecord`] per injected run. It
//!
//! * streams every outcome into a metrics registry
//!   (`osiris_campaign_outcomes_total{policy,component,model,outcome}` plus
//!   run-length and recovery-latency histograms), so campaign results ride
//!   the same Prometheus/JSON exporters as the kernel counters;
//! * keeps a component × policy outcome matrix and prints it live —
//!   Table II/III-style — with a progress line as runs complete;
//! * re-prints the flight-recorder tail of the first few runs that ended
//!   in an *uncontrolled crash* (the black-box dump of PR 2), which is
//!   exactly the evidence needed to debug a survivability regression;
//! * renders a final `campaign_report.json` document with the matrix and
//!   the full per-injection record list.
//!
//! Progress and dumps go to **stderr**; stdout stays reserved for the
//! deterministic table output the CI diff gates compare.

use std::collections::BTreeMap;
use std::sync::Mutex;

use osiris_axiom::{AxiomConfig, AxiomEvent, AxiomLog, AxiomRecord, OutcomeCode};
use osiris_metrics::MetricsHandle;
use osiris_trace::{HistSummary, Json};

use crate::{FaultKind, FaultModel, Outcome, SiteId, Tally};

/// Maps a campaign [`Outcome`] onto the axiom's compact outcome vocabulary
/// (`Quarantined` collapses into `Degraded` — both are "survived benched").
pub fn outcome_code(outcome: Outcome) -> OutcomeCode {
    match outcome {
        Outcome::Pass => OutcomeCode::Recovered,
        Outcome::Fail => OutcomeCode::Failed,
        Outcome::Degraded | Outcome::Quarantined => OutcomeCode::Degraded,
        Outcome::Shutdown => OutcomeCode::ControlledShutdown,
        Outcome::Crash => OutcomeCode::UncontrolledCrash,
    }
}

/// Digest identifying an injection *site* (component, site path, fault
/// kind) — deliberately excluding the policy, so the axioms of two
/// campaigns that differ only in policy align run-for-run and
/// `osiris_axiom::bisect` lands on the first run whose *outcome* diverged.
pub fn site_digest(site: &SiteId, kind: FaultKind) -> u64 {
    let d = osiris_axiom::fnv1a_str(&site.component);
    let d = osiris_axiom::fnv1a(d, site.site.as_bytes());
    osiris_axiom::fnv1a(d, kind_label(kind).as_bytes())
}

/// 128-bit injection-site digest: the 64-bit [`site_digest`] in the low
/// lane plus an independent FNV lane (different seed, reversed fold order)
/// in the high lane. The forge keys its coverage cells by this value; at
/// 128 bits a collision between two distinct (component, site, kind)
/// triples would need ~2^64 sites, so cells never alias.
pub fn site_digest128(site: &SiteId, kind: FaultKind) -> u128 {
    // Second lane: FNV offset basis perturbed by the 64-bit golden ratio,
    // folding the fields in the opposite order — the lanes share no state.
    const LANE2_SEED: u64 = 0xcbf2_9ce4_8422_2325 ^ 0x9e37_79b9_7f4a_7c15;
    let hi = osiris_axiom::fnv1a(LANE2_SEED, kind_label(kind).as_bytes());
    let hi = osiris_axiom::fnv1a(hi, site.site.as_bytes());
    let hi = osiris_axiom::fnv1a(hi, site.component.as_bytes());
    ((hi as u128) << 64) | site_digest(site, kind) as u128
}

/// Short label for a fault model, used in metrics labels and reports.
pub fn model_label(model: FaultModel) -> &'static str {
    match model {
        FaultModel::FailStop => "fail-stop",
        FaultModel::TransientFailStop => "transient-fail-stop",
        FaultModel::FullEdfi => "full-edfi",
        FaultModel::FailSilent => "fail-silent",
        FaultModel::DuringRecovery => "during-recovery",
        FaultModel::DoubleFault => "double-fault",
    }
}

/// Short label for a fault kind, used in metrics labels and reports.
pub fn kind_label(kind: FaultKind) -> &'static str {
    match kind {
        FaultKind::Crash => "crash",
        FaultKind::Hang => "hang",
        FaultKind::BranchFlip => "branch-flip",
        FaultKind::ValueCorrupt(_) => "value-corrupt",
        FaultKind::Stall(_) => "stall",
        FaultKind::ReplyDrop => "reply-drop",
        FaultKind::ReplyCorrupt => "reply-corrupt",
    }
}

/// The recovery action a run's kernel metrics say dominated it: what the
/// system actually *did* about the injected fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveryActionTag {
    /// Rollback + error virtualization.
    Rollback,
    /// Fresh (stateless) restart.
    Fresh,
    /// Restart keeping crash-time state (naive).
    Naive,
    /// Keep-state restart of a quiescent component the watchdog declared
    /// dead (committed transaction, lost or tampered reply).
    Quiescent,
    /// Controlled shutdown.
    Shutdown,
    /// No recovery machinery engaged (fault never fired, or fail-silent).
    None,
}

impl RecoveryActionTag {
    /// Derives the tag from a run's recovery counters, in the priority
    /// order rollback > fresh > quiescent > naive > shutdown.
    pub fn from_counts(
        rollback: u64,
        fresh: u64,
        quiescent: u64,
        naive: u64,
        shutdowns: u64,
    ) -> Self {
        if rollback > 0 {
            RecoveryActionTag::Rollback
        } else if fresh > 0 {
            RecoveryActionTag::Fresh
        } else if quiescent > 0 {
            RecoveryActionTag::Quiescent
        } else if naive > 0 {
            RecoveryActionTag::Naive
        } else if shutdowns > 0 {
            RecoveryActionTag::Shutdown
        } else {
            RecoveryActionTag::None
        }
    }

    /// Short label for metrics and reports.
    pub fn label(self) -> &'static str {
        match self {
            RecoveryActionTag::Rollback => "rollback",
            RecoveryActionTag::Fresh => "fresh",
            RecoveryActionTag::Naive => "naive",
            RecoveryActionTag::Quiescent => "quiescent",
            RecoveryActionTag::Shutdown => "shutdown",
            RecoveryActionTag::None => "none",
        }
    }
}

/// MTTR decomposition of a run's recoveries, joined from its axiom
/// control-plane records: how the recovery time splits into the *detect*
/// leg (crash/hang capture → RS decision, covering notification and policy
/// evaluation) and the *execute* leg (the charged rollback/restore/replay
/// work), plus the re-drive and fallback churn along the way.
///
/// Derived offline by [`critical_path`] — a pure fold over
/// [`AxiomRecord`]s, so any retained axiom (live kernel, serialized file,
/// replayed log) yields the same breakdown.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CriticalPath {
    /// Completed recoveries (`RecoveryDone` events).
    pub recoveries: u64,
    /// Σ cycles from crash/hang capture to the RS's `RecoveryDecision`.
    pub detect_cycles: u64,
    /// Σ cycles charged to recovery execution (`RecoveryDone.cycles`:
    /// rollback/restore, state replay, reconnection).
    pub execute_cycles: u64,
    /// Σ end-to-end cycles, capture → `RecoveryDone`.
    pub total_cycles: u64,
    /// Interrupted recovery intents re-driven through a restarted RS.
    pub intent_replays: u64,
    /// Recovery phases degraded along the fallback chain.
    pub fallbacks: u64,
}

/// Folds an axiom record stream into its recovery [`CriticalPath`].
///
/// Captures (`Crash` / `HangDetected`) open a pending recovery per
/// component; the matching `RecoveryDecision` closes the detect leg and
/// the matching `RecoveryDone` closes the whole path. Unmatched captures
/// (run ended mid-recovery, controlled shutdown) contribute nothing —
/// the decomposition only accounts for recoveries that completed.
pub fn critical_path(records: &[AxiomRecord]) -> CriticalPath {
    let mut cp = CriticalPath::default();
    // Pending per-component timestamps, indexed by component id.
    let mut captured: BTreeMap<u8, u64> = BTreeMap::new();
    let mut decided: BTreeMap<u8, u64> = BTreeMap::new();
    for r in records {
        match r.event {
            AxiomEvent::Crash { comp } | AxiomEvent::HangDetected { comp } => {
                // A second capture before the decision (e.g. a crash of an
                // already-hung component) keeps the earliest timestamp:
                // the path starts when the system first lost the service.
                captured.entry(comp).or_insert(r.now);
            }
            AxiomEvent::RecoveryDecision { comp, .. } => {
                if let Some(t0) = captured.get(&comp) {
                    cp.detect_cycles += r.now.saturating_sub(*t0);
                }
                decided.insert(comp, r.now);
            }
            AxiomEvent::RecoveryDone { comp, cycles } => {
                cp.recoveries += 1;
                cp.execute_cycles += cycles;
                if let Some(t0) = captured.remove(&comp) {
                    cp.total_cycles += r.now.saturating_sub(t0);
                }
                decided.remove(&comp);
            }
            AxiomEvent::IntentReplayed { .. } => cp.intent_replays += 1,
            AxiomEvent::RecoveryFallback { .. } => cp.fallbacks += 1,
            _ => {}
        }
    }
    cp
}

impl CriticalPath {
    /// The breakdown as an ordered JSON object (embedded per injection in
    /// `campaign_report.json`).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("recoveries", Json::UInt(self.recoveries)),
            ("detect_cycles", Json::UInt(self.detect_cycles)),
            ("execute_cycles", Json::UInt(self.execute_cycles)),
            ("total_cycles", Json::UInt(self.total_cycles)),
            ("intent_replays", Json::UInt(self.intent_replays)),
            ("fallbacks", Json::UInt(self.fallbacks)),
        ])
    }
}

/// Joins one finished run's observability artifacts into its attribution
/// fields: the recovery [`CriticalPath`] from the run's axiom records and
/// the end-to-end request-latency split (clean / crossed-a-recovery) from
/// its metrics snapshot. Missing artifacts degrade to zeros: an empty
/// axiom yields an all-zero path, an absent latency family empty digests.
pub fn run_attribution(
    axiom: &[AxiomRecord],
    snapshot: &osiris_metrics::MetricsSnapshot,
) -> (CriticalPath, HistSummary, HistSummary) {
    let latency = |overlap: &str| match snapshot
        .find("osiris_span_latency_cycles", &[("overlap", overlap)])
    {
        Some(osiris_metrics::SeriesValue::Hist(h)) => h.summary(),
        _ => HistSummary::default(),
    };
    (critical_path(axiom), latency("none"), latency("recovery"))
}

/// A latency digest as JSON: the quantile fields the campaign report
/// carries per injection for the request-latency split.
fn latency_json(h: &HistSummary) -> Json {
    Json::obj([
        ("count", Json::UInt(h.count)),
        ("p50", Json::UInt(h.p50)),
        ("p90", Json::UInt(h.p90)),
        ("p99", Json::UInt(h.p99)),
        ("p999", Json::UInt(h.p999)),
        ("max", Json::UInt(h.max)),
    ])
}

/// Everything the campaign keeps about one injected run.
#[derive(Clone, Debug)]
pub struct InjectionRecord {
    /// Where the fault was injected.
    pub site: SiteId,
    /// The fault injected.
    pub kind: FaultKind,
    /// Recovery policy the run executed under.
    pub policy: String,
    /// Classified outcome.
    pub outcome: Outcome,
    /// Dominant recovery action taken by the run.
    pub action: RecoveryActionTag,
    /// Virtual cycles the run took end to end.
    pub run_cycles: u64,
    /// Recoveries executed during the run.
    pub recoveries: u64,
    /// Virtual cycles spent in recovery phases.
    pub recovery_cycles: u64,
    /// MTTR decomposition of the run's recoveries, joined from its axiom
    /// (all-zero when the run retained no axiom or never recovered).
    pub critical_path: CriticalPath,
    /// End-to-end request-latency digest for spans that never overlapped a
    /// recovery (`osiris_span_latency_cycles{overlap="none"}`).
    pub span_latency_clean: HistSummary,
    /// Latency digest for spans that crossed a crash capture or recovery
    /// (`osiris_span_latency_cycles{overlap="recovery"}`).
    pub span_latency_recovery: HistSummary,
    /// Flight-recorder tail of the run, carried only for uncontrolled
    /// crashes (the black-box dump).
    pub blackbox: Option<String>,
}

struct State {
    done: usize,
    /// (policy, component) → outcome tally.
    matrix: BTreeMap<(String, String), Tally>,
    /// Records by *plan index*, not completion order: workers on any
    /// thread count land their record in the same slot, so the record
    /// list — and the axiom chain derived from it — is deterministic.
    slots: Vec<Option<InjectionRecord>>,
    /// Next slot for the sequential [`Campaign::record`] ingest path.
    next_seq: usize,
    blackbox_dumps: usize,
}

/// Folds the filled record slots, in slot order, into the campaign-level
/// axiom: one hash-chained `Injection` event per run, timestamped with the
/// run's virtual cycle count. Derived on demand rather than appended at
/// ingest time, so out-of-order completion under [`crate::run_parallel`]
/// cannot reorder the chain — two campaigns over the same plan can always
/// be bisected to the first diverging outcome.
fn derive_axiom(slots: &[Option<InjectionRecord>]) -> AxiomLog {
    let mut log = AxiomLog::new(AxiomConfig {
        enabled: true,
        capacity: slots.len().max(1),
    });
    for (run, rec) in slots.iter().enumerate() {
        let Some(rec) = rec else { continue };
        log.append(
            rec.run_cycles,
            AxiomEvent::Injection {
                run: run as u32,
                site_digest: site_digest(&rec.site, rec.kind),
                outcome: outcome_code(rec.outcome),
            },
        );
    }
    log
}

/// Thread-safe live observer for a fault-injection campaign.
pub struct Campaign {
    label: String,
    model: FaultModel,
    total: usize,
    progress_every: usize,
    max_blackbox_dumps: usize,
    live: bool,
    metrics: MetricsHandle,
    inner: Mutex<State>,
}

impl std::fmt::Debug for Campaign {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Campaign")
            .field("label", &self.label)
            .field("total", &self.total)
            .finish_non_exhaustive()
    }
}

impl Campaign {
    /// Creates an observer for a campaign of `total` planned runs. Progress
    /// prints roughly ten times over the campaign's lifetime.
    pub fn new(label: &str, model: FaultModel, total: usize) -> Campaign {
        Campaign {
            label: label.to_string(),
            model,
            total,
            progress_every: (total / 10).max(1),
            max_blackbox_dumps: 3,
            live: true,
            metrics: MetricsHandle::default(),
            inner: Mutex::new(State {
                done: 0,
                matrix: BTreeMap::new(),
                slots: Vec::new(),
                next_seq: 0,
                blackbox_dumps: 0,
            }),
        }
    }

    /// Suppresses the live progress matrix and black-box dumps (tests).
    pub fn quiet(mut self) -> Campaign {
        self.live = false;
        self
    }

    /// Streams campaign outcomes into `handle` instead of a private
    /// registry — e.g. the OS run's own registry, so one export carries
    /// both kernel and campaign series.
    pub fn with_metrics(mut self, handle: MetricsHandle) -> Campaign {
        self.metrics = handle;
        self
    }

    /// The registry campaign series are streamed into.
    pub fn metrics_handle(&self) -> &MetricsHandle {
        &self.metrics
    }

    /// Ingests one completed run into the next sequential slot: updates
    /// the matrix, streams the registry series, prints progress at
    /// checkpoints, and dumps the black box of the first few uncontrolled
    /// crashes.
    pub fn record(&self, rec: InjectionRecord) {
        let run = {
            let mut st = self.inner.lock().expect("campaign lock");
            let run = st.next_seq;
            st.next_seq += 1;
            run
        };
        self.record_at(run, rec);
    }

    /// Ingests the completed run with plan index `run` into its slot.
    /// Campaign runners hand each [`crate::run_parallel`] worker its job
    /// index and record through this, so the record list, the matrix and
    /// the derived axiom chain are identical on every thread count.
    pub fn record_at(&self, run: usize, rec: InjectionRecord) {
        let model = model_label(self.model);
        self.metrics
            .counter(
                "osiris_campaign_outcomes_total",
                "Fault-injection runs by policy, component, model and outcome",
                &[
                    ("policy", &rec.policy),
                    ("component", &rec.site.component),
                    ("model", model),
                    ("outcome", &rec.outcome.to_string()),
                ],
            )
            .inc();
        self.metrics
            .hist(
                "osiris_campaign_run_cycles",
                "Virtual cycles per injected run",
                &[("policy", &rec.policy), ("model", model)],
            )
            .observe(rec.run_cycles);
        if rec.recoveries > 0 {
            self.metrics
                .hist(
                    "osiris_campaign_recovery_cycles",
                    "Virtual cycles spent in recovery per run that recovered",
                    &[("policy", &rec.policy), ("model", model)],
                )
                .observe(rec.recovery_cycles);
        }

        let mut st = self.inner.lock().expect("campaign lock");
        if st.slots.len() <= run {
            st.slots.resize_with(run + 1, || None);
        }
        assert!(st.slots[run].is_none(), "run {run} recorded twice");
        st.next_seq = st.next_seq.max(run + 1);
        st.matrix
            .entry((rec.policy.clone(), rec.site.component.clone()))
            .or_default()
            .add(rec.outcome);
        st.done += 1;
        let crash_dump = if rec.outcome == Outcome::Crash
            && rec.blackbox.is_some()
            && st.blackbox_dumps < self.max_blackbox_dumps
        {
            st.blackbox_dumps += 1;
            rec.blackbox.clone()
        } else {
            None
        };
        let at_checkpoint = st.done.is_multiple_of(self.progress_every) || st.done == self.total;
        let progress = if self.live && at_checkpoint {
            Some((st.done, render_matrix_locked(&st.matrix)))
        } else {
            None
        };
        st.slots[run] = Some(rec);
        drop(st);

        if let Some(dump) = crash_dump {
            eprintln!(
                "[campaign {}] uncontrolled crash — flight-recorder tail:\n{}",
                self.label, dump
            );
        }
        if let Some((done, matrix)) = progress {
            eprintln!(
                "[campaign {}] {}/{} runs ({})\n{}",
                self.label, done, self.total, model, matrix
            );
        }
    }

    /// Runs completed so far.
    pub fn done(&self) -> usize {
        self.inner.lock().expect("campaign lock").done
    }

    /// The component × outcome matrix rendered as text, one block row per
    /// (policy, component) pair.
    pub fn render_matrix(&self) -> String {
        render_matrix_locked(&self.inner.lock().expect("campaign lock").matrix)
    }

    /// A clone of every record ingested so far, in plan order.
    pub fn records(&self) -> Vec<InjectionRecord> {
        self.inner
            .lock()
            .expect("campaign lock")
            .slots
            .iter()
            .flatten()
            .cloned()
            .collect()
    }

    /// The campaign axiom's records: one chained `Injection` event per
    /// ingested run, in plan order (derived from the record slots, so
    /// completion order never reorders the chain).
    pub fn axiom_records(&self) -> Vec<AxiomRecord> {
        derive_axiom(&self.inner.lock().expect("campaign lock").slots)
            .records()
            .to_vec()
    }

    /// The campaign axiom serialized to its crash-consistent format
    /// (feed two of these to `osiris_axiom::bisect` — or the
    /// `axiom_bisect` tool — to find the first diverging run).
    pub fn axiom_bytes(&self) -> Vec<u8> {
        derive_axiom(&self.inner.lock().expect("campaign lock").slots).to_bytes()
    }

    /// The final campaign report document (`campaign_report.json`).
    pub fn report_json(&self) -> Json {
        let st = self.inner.lock().expect("campaign lock");
        let tally_fields = |t: &Tally| {
            [
                ("pass", Json::UInt(t.pass as u64)),
                ("fail", Json::UInt(t.fail as u64)),
                ("degraded", Json::UInt(t.degraded as u64)),
                ("quarantined", Json::UInt(t.quarantined as u64)),
                ("shutdown", Json::UInt(t.shutdown as u64)),
                ("crash", Json::UInt(t.crash as u64)),
                ("survivability_pct", Json::Num(t.survivability())),
            ]
        };
        let matrix: Vec<_> = st
            .matrix
            .iter()
            .map(|((policy, component), t)| {
                let mut fields = vec![
                    ("policy", Json::Str(policy.clone())),
                    ("component", Json::Str(component.clone())),
                ];
                fields.extend(tally_fields(t));
                Json::Obj(
                    fields
                        .into_iter()
                        .map(|(k, v)| (k.to_string(), v))
                        .collect(),
                )
            })
            .collect();
        // The all-policy grand total: the same columns as the per-row
        // tallies (including degraded/quarantined), so the JSON report and
        // the rendered matrix footer agree.
        let mut totals = Tally::default();
        for t in st.matrix.values() {
            totals.pass += t.pass;
            totals.fail += t.fail;
            totals.degraded += t.degraded;
            totals.quarantined += t.quarantined;
            totals.shutdown += t.shutdown;
            totals.crash += t.crash;
        }
        let records: Vec<&InjectionRecord> = st.slots.iter().flatten().collect();
        Json::obj([
            ("campaign", Json::Str(self.label.clone())),
            ("model", Json::Str(model_label(self.model).to_string())),
            ("planned_runs", Json::UInt(self.total as u64)),
            ("completed_runs", Json::UInt(st.done as u64)),
            ("matrix", Json::Arr(matrix)),
            ("totals", Json::obj(tally_fields(&totals))),
            (
                "records",
                Json::arr(&records, |r| {
                    Json::obj([
                        ("component", Json::Str(r.site.component.clone())),
                        ("site", Json::Str(r.site.site.clone())),
                        ("fault", Json::Str(kind_label(r.kind).to_string())),
                        ("policy", Json::Str(r.policy.clone())),
                        ("outcome", Json::Str(r.outcome.to_string())),
                        ("action", Json::Str(r.action.label().to_string())),
                        ("run_cycles", Json::UInt(r.run_cycles)),
                        ("recoveries", Json::UInt(r.recoveries)),
                        ("recovery_cycles", Json::UInt(r.recovery_cycles)),
                        ("critical_path", r.critical_path.to_json()),
                        (
                            "span_latency",
                            Json::obj([
                                ("none", latency_json(&r.span_latency_clean)),
                                ("recovery", latency_json(&r.span_latency_recovery)),
                            ]),
                        ),
                    ])
                }),
            ),
        ])
    }
}

fn render_matrix_locked(matrix: &BTreeMap<(String, String), Tally>) -> String {
    let mut out = format!(
        "  {:<14} {:<10} {:>6} {:>6} {:>9} {:>11} {:>9} {:>6} {:>7}\n",
        "policy",
        "component",
        "pass",
        "fail",
        "degraded",
        "quarantined",
        "shutdown",
        "crash",
        "surv%"
    );
    let mut per_policy: BTreeMap<&str, Tally> = BTreeMap::new();
    for ((policy, component), t) in matrix {
        out.push_str(&format!(
            "  {:<14} {:<10} {:>6} {:>6} {:>9} {:>11} {:>9} {:>6} {:>6.1}%\n",
            policy,
            component,
            t.pass,
            t.fail,
            t.degraded,
            t.quarantined,
            t.shutdown,
            t.crash,
            t.survivability()
        ));
        let agg = per_policy.entry(policy).or_default();
        agg.pass += t.pass;
        agg.fail += t.fail;
        agg.degraded += t.degraded;
        agg.quarantined += t.quarantined;
        agg.shutdown += t.shutdown;
        agg.crash += t.crash;
    }
    let mut total = Tally::default();
    for (policy, t) in per_policy {
        out.push_str(&format!(
            "  {:<14} {:<10} {:>6} {:>6} {:>9} {:>11} {:>9} {:>6} {:>6.1}%\n",
            policy,
            "(all)",
            t.pass,
            t.fail,
            t.degraded,
            t.quarantined,
            t.shutdown,
            t.crash,
            t.survivability()
        ));
        total.pass += t.pass;
        total.fail += t.fail;
        total.degraded += t.degraded;
        total.quarantined += t.quarantined;
        total.shutdown += t.shutdown;
        total.crash += t.crash;
    }
    // All-policy grand total, with the full column set (including the
    // degraded/quarantined ladder outcomes), matching the `totals` object
    // in `campaign_report.json`.
    out.push_str(&format!(
        "  {:<14} {:<10} {:>6} {:>6} {:>9} {:>11} {:>9} {:>6} {:>6.1}%\n",
        "(total)",
        "",
        total.pass,
        total.fail,
        total.degraded,
        total.quarantined,
        total.shutdown,
        total.crash,
        total.survivability()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SiteKindTag;

    fn rec(policy: &str, component: &str, outcome: Outcome) -> InjectionRecord {
        InjectionRecord {
            site: SiteId {
                component: component.into(),
                site: "s".into(),
                kind: SiteKindTag::Block,
            },
            kind: FaultKind::Crash,
            policy: policy.into(),
            outcome,
            action: RecoveryActionTag::Rollback,
            run_cycles: 1000,
            recoveries: 1,
            recovery_cycles: 50,
            critical_path: CriticalPath {
                recoveries: 1,
                detect_cycles: 10,
                execute_cycles: 40,
                total_cycles: 50,
                intent_replays: 0,
                fallbacks: 0,
            },
            span_latency_clean: HistSummary::default(),
            span_latency_recovery: HistSummary::default(),
            blackbox: None,
        }
    }

    #[test]
    fn matrix_and_registry_accumulate() {
        let c = Campaign::new("t", FaultModel::FailStop, 3).quiet();
        c.record(rec("enhanced", "pm", Outcome::Pass));
        c.record(rec("enhanced", "pm", Outcome::Fail));
        c.record(rec("naive", "vfs", Outcome::Crash));
        assert_eq!(c.done(), 3);
        let m = c.render_matrix();
        assert!(m.contains("enhanced"), "{m}");
        assert!(m.contains("(all)"), "{m}");
        let snap = c.metrics_handle().snapshot();
        match snap.find(
            "osiris_campaign_outcomes_total",
            &[
                ("policy", "enhanced"),
                ("component", "pm"),
                ("model", "fail-stop"),
                ("outcome", "pass"),
            ],
        ) {
            Some(osiris_metrics::SeriesValue::Counter(1)) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn report_json_carries_matrix_and_records() {
        let c = Campaign::new("t", FaultModel::FullEdfi, 2).quiet();
        c.record(rec("enhanced", "pm", Outcome::Pass));
        c.record(rec("enhanced", "ds", Outcome::Shutdown));
        let text = c.report_json().pretty();
        assert!(text.contains("\"model\": \"full-edfi\""));
        assert!(text.contains("\"completed_runs\": 2"));
        assert!(text.contains("\"component\": \"ds\""));
        assert!(text.contains("\"action\": \"rollback\""));
        // Each record carries its MTTR decomposition and latency split.
        assert!(text.contains("\"critical_path\""), "{text}");
        assert!(text.contains("\"detect_cycles\": 10"), "{text}");
        assert!(text.contains("\"span_latency\""), "{text}");
        assert!(text.contains("\"p999\""), "{text}");
    }

    #[test]
    fn critical_path_folds_capture_decide_done() {
        use osiris_axiom::ActionCode;
        let mut log = AxiomLog::new(AxiomConfig {
            enabled: true,
            capacity: 16,
        });
        // One crash recovery: captured at 100, decided at 130, done at 200
        // with 60 charged cycles; one replay and one fallback on the way.
        log.append(100, AxiomEvent::Crash { comp: 2 });
        log.append(
            130,
            AxiomEvent::RecoveryDecision {
                comp: 2,
                action: ActionCode::RollbackErrorReply,
            },
        );
        log.append(150, AxiomEvent::IntentReplayed { comp: 2 });
        log.append(
            160,
            AxiomEvent::RecoveryFallback {
                comp: 2,
                from: ActionCode::RollbackErrorReply,
                to: ActionCode::FreshRestart,
            },
        );
        log.append(
            200,
            AxiomEvent::RecoveryDone {
                comp: 2,
                cycles: 60,
            },
        );
        // A hang on another component that never resolves: contributes
        // nothing to the completed-path sums.
        log.append(300, AxiomEvent::HangDetected { comp: 3 });
        let cp = critical_path(log.records());
        assert_eq!(cp.recoveries, 1);
        assert_eq!(cp.detect_cycles, 30);
        assert_eq!(cp.execute_cycles, 60);
        assert_eq!(cp.total_cycles, 100);
        assert_eq!(cp.intent_replays, 1);
        assert_eq!(cp.fallbacks, 1);
        assert_eq!(critical_path(&[]), CriticalPath::default());
    }

    #[test]
    fn campaign_axiom_chains_and_bisects_on_outcome() {
        let a = Campaign::new("a", FaultModel::FailStop, 3).quiet();
        let b = Campaign::new("b", FaultModel::FailStop, 3).quiet();
        for c in [&a, &b] {
            c.record(rec("enhanced", "pm", Outcome::Pass));
            c.record(rec("pessimistic", "vfs", Outcome::Pass));
        }
        // Same plan, same outcomes so far: identical chains despite the
        // differing policies (the site digest excludes the policy).
        assert_eq!(a.axiom_bytes(), b.axiom_bytes());
        a.record(rec("enhanced", "ds", Outcome::Pass));
        b.record(rec("pessimistic", "ds", Outcome::Shutdown));
        let la = osiris_axiom::AxiomLog::from_bytes(&a.axiom_bytes()).expect("chain a");
        let lb = osiris_axiom::AxiomLog::from_bytes(&b.axiom_bytes()).expect("chain b");
        let div = osiris_axiom::bisect(la.records(), lb.records()).expect("diverged");
        assert_eq!(div.index, 2);
        match (div.a.expect("a rec").event, div.b.expect("b rec").event) {
            (
                AxiomEvent::Injection {
                    run: 2,
                    outcome: OutcomeCode::Recovered,
                    ..
                },
                AxiomEvent::Injection {
                    run: 2,
                    outcome: OutcomeCode::ControlledShutdown,
                    ..
                },
            ) => {}
            other => panic!("unexpected divergence: {other:?}"),
        }
    }

    #[test]
    fn action_tag_priority() {
        use RecoveryActionTag as T;
        assert_eq!(T::from_counts(1, 1, 0, 0, 1), T::Rollback);
        assert_eq!(T::from_counts(0, 2, 0, 1, 0), T::Fresh);
        assert_eq!(T::from_counts(0, 0, 2, 1, 0), T::Quiescent);
        assert_eq!(T::from_counts(0, 0, 0, 3, 0), T::Naive);
        assert_eq!(T::from_counts(0, 0, 0, 0, 1), T::Shutdown);
        assert_eq!(T::from_counts(0, 0, 0, 0, 0), T::None);
    }
}
