//! Campaign-layer regressions for the forge PR: `run_parallel` result
//! ordering, slot-addressed recording, and the widened site digest.

use std::collections::BTreeSet;
use std::time::Duration;

use osiris_faults::campaign::{site_digest, site_digest128};
use osiris_faults::forge::{forge_config, ScriptWorkload, StepProfiler};
use osiris_faults::{
    plan_faults, run_parallel, Campaign, CriticalPath, FaultKind, FaultModel, InjectionRecord,
    Outcome, RecoveryActionTag, SiteId, SiteProfile,
};
use osiris_metrics::HistSummary;
use osiris_servers::Os;

/// `run_parallel` must return results in job order on every thread count,
/// even when late jobs finish first.
#[test]
fn run_parallel_results_follow_job_order() {
    let jobs: Vec<usize> = (0..48).collect();
    let expected: Vec<usize> = jobs.iter().map(|i| i * i).collect();
    for threads in [1, 4, 16] {
        let results = run_parallel(jobs.clone(), threads, |i| {
            // Earlier jobs sleep longer, so a completion-ordered (or
            // LIFO-intake) implementation would visibly scramble results.
            std::thread::sleep(Duration::from_micros(((48 - i) % 7) as u64 * 100));
            i * i
        });
        assert_eq!(results, expected, "scrambled results at {threads} threads");
    }
}

fn rec(run: usize, policy: &str, outcome: Outcome) -> InjectionRecord {
    InjectionRecord {
        site: SiteId {
            component: ["pm", "vfs", "ds"][run % 3].into(),
            site: format!("s{}", run % 5),
            kind: osiris_faults::SiteKindTag::Block,
        },
        kind: FaultKind::Crash,
        policy: policy.into(),
        outcome,
        action: RecoveryActionTag::Rollback,
        run_cycles: 1000 + run as u64,
        recoveries: 1,
        recovery_cycles: 50,
        critical_path: CriticalPath {
            recoveries: 1,
            detect_cycles: 10,
            execute_cycles: 40,
            total_cycles: 50,
            intent_replays: 0,
            fallbacks: 0,
        },
        span_latency_clean: HistSummary::default(),
        span_latency_recovery: HistSummary::default(),
        blackbox: None,
    }
}

/// Records fed through `record_at` from a thread pool must yield the same
/// records, axiom chain and report regardless of thread count.
#[test]
fn campaign_slots_are_thread_count_invariant() {
    let total = 60;
    let mut baseline: Option<(Vec<u8>, String)> = None;
    for threads in [1, 4, 16] {
        let campaign = Campaign::new("order", FaultModel::FailStop, total).quiet();
        let outcomes = [Outcome::Pass, Outcome::Fail, Outcome::Shutdown];
        run_parallel((0..total).collect::<Vec<_>>(), threads, |i| {
            std::thread::sleep(Duration::from_micros(((total - i) % 5) as u64 * 100));
            let policy = ["stateless", "enhanced"][i % 2];
            campaign.record_at(i, rec(i, policy, outcomes[i % 3]));
        });
        assert_eq!(campaign.done(), total);
        let fingerprint = (campaign.axiom_bytes(), campaign.report_json().pretty());
        match &baseline {
            None => baseline = Some(fingerprint),
            Some(want) => {
                assert_eq!(want.0, fingerprint.0, "axiom diverges at {threads} threads");
                assert_eq!(
                    want.1, fingerprint.1,
                    "report diverges at {threads} threads"
                );
            }
        }
    }
}

/// The campaign report's `totals` object and the rendered matrix footer
/// must agree with the sum over all matrix rows.
#[test]
fn report_totals_match_matrix_footer() {
    let campaign = Campaign::new("tot", FaultModel::FailStop, 4).quiet();
    campaign.record(rec(0, "stateless", Outcome::Pass));
    campaign.record(rec(1, "stateless", Outcome::Shutdown));
    campaign.record(rec(2, "enhanced", Outcome::Pass));
    campaign.record(rec(3, "enhanced", Outcome::Pass));
    let report = campaign.report_json().pretty();
    assert!(
        report.contains("\"totals\""),
        "report lacks totals: {report}"
    );
    let matrix = campaign.render_matrix();
    assert!(matrix.contains("(total)"), "matrix lacks footer: {matrix}");
    // 3 passes + 1 shutdown across all policies.
    let totals_idx = report.find("\"totals\"").expect("totals object");
    let totals = &report[totals_idx..];
    assert!(totals.contains("\"pass\": 3"), "bad totals: {totals}");
    assert!(totals.contains("\"shutdown\": 1"), "bad totals: {totals}");
}

/// The 128-bit site digest must be collision-free across every triggered
/// site of the forge profile under all fault kinds, and its low lane must
/// stay the original 64-bit digest (axiom-record compatibility).
#[test]
fn site_digest128_collision_free_over_profile() {
    let script = ScriptWorkload::default();
    let mut os = Os::new(forge_config(osiris_core::PolicyKind::Enhanced));
    let profiler = StepProfiler::default();
    os.set_fault_hook(Box::new(profiler.clone()));
    let run = script.run_range_with(&mut os, 0..ScriptWorkload::STEPS, |s| profiler.set_step(s));
    assert!(run.clean(), "profiling run not clean: {:?}", run.outcome);
    let profile = profiler.profile();
    assert!(
        profile.len() > 30,
        "suspiciously few sites: {}",
        profile.len()
    );

    let mut sites: BTreeSet<SiteId> = profile.sites().map(|(id, _)| id.clone()).collect();
    for model in [FaultModel::DuringRecovery, FaultModel::DoubleFault] {
        for plan in plan_faults(&SiteProfile::default(), model, 42) {
            sites.insert(plan.site);
        }
    }
    let kinds = [
        FaultKind::Crash,
        FaultKind::Hang,
        FaultKind::BranchFlip,
        FaultKind::ValueCorrupt(0xDEAD_BEEF),
    ];
    let mut seen = BTreeSet::new();
    for site in &sites {
        for kind in kinds {
            let wide = site_digest128(site, kind);
            assert_eq!(
                wide as u64,
                site_digest(site, kind),
                "low lane must remain the 64-bit digest for {site:?}"
            );
            assert!(
                seen.insert(wide),
                "digest collision at {site:?} kind {kind:?}"
            );
        }
    }
    assert_eq!(seen.len(), sites.len() * kinds.len());
}
