//! Fork-equivalence differentials: a run forked from a snapshot must be
//! **byte-identical** — metrics export, axiom chain, trace — to a from-boot
//! run reaching the same state, fault-free and with an injector armed.

use osiris_checkpoint::ChunkStore;
use osiris_core::PolicyKind;
use osiris_faults::forge::{forge_config, ScriptWorkload, StepProfiler};
use osiris_faults::{FaultKind, FaultPlan, Injector};
use osiris_kernel::NoFaults;
use osiris_servers::Os;

const STEPS: usize = ScriptWorkload::STEPS;

/// The exports the differential compares byte-for-byte.
fn exports(os: &mut Os) -> (String, Vec<u8>, String) {
    (os.metrics_prometheus(), os.axiom_bytes(), os.trace_text())
}

#[test]
fn fork_equivalence_fault_free() {
    let script = ScriptWorkload::default();
    for policy in [PolicyKind::Enhanced, PolicyKind::Naive] {
        let mut baseline = Os::new(forge_config(policy));
        let run = script.run(&mut baseline);
        assert!(run.clean(), "baseline run not clean: {:?}", run.outcome);
        let want = exports(&mut baseline);

        for split in [1, 3, 5, 7] {
            let mut store = ChunkStore::new();
            let mut parent = Os::new(forge_config(policy));
            let prefix = script.run_range(&mut parent, 0..split);
            assert!(prefix.clean(), "prefix not clean: {:?}", prefix.outcome);
            let snap = parent.snapshot_into(&mut store, None);
            let (mut forked, _stats) = Os::fork_from(&snap, &store);
            let suffix = script.run_range(&mut forked, split..STEPS);
            assert!(suffix.clean(), "suffix not clean: {:?}", suffix.outcome);
            let got = exports(&mut forked);
            assert_eq!(want.0, got.0, "metrics diverge at split {split} ({policy})");
            assert_eq!(want.1, got.1, "axiom diverges at split {split} ({policy})");
            assert_eq!(want.2, got.2, "trace diverges at split {split} ({policy})");
        }
    }
}

/// Finds the first profiled site of `component` and its first step.
fn first_site(component: &str) -> (osiris_faults::SiteId, usize) {
    let script = ScriptWorkload::default();
    let mut os = Os::new(forge_config(PolicyKind::Enhanced));
    let profiler = StepProfiler::default();
    os.set_fault_hook(Box::new(profiler.clone()));
    let run = script.run_range_with(&mut os, 0..STEPS, |s| profiler.set_step(s));
    assert!(run.clean(), "profiling run not clean: {:?}", run.outcome);
    let (site, obs) = profiler
        .profile()
        .first_site_of(component)
        .expect("component has profiled sites");
    (site, obs.first_step)
}

#[test]
fn fork_equivalence_with_injector_armed() {
    osiris_kernel::install_quiet_panic_hook();
    let script = ScriptWorkload::default();
    let (site, first_step) = first_site("vfs");
    assert!(first_step > 0, "vfs must first fire after step 0");

    for transient in [true, false] {
        let plan = FaultPlan {
            site: site.clone(),
            kind: FaultKind::Crash,
            transient,
        };
        // From-boot run: injector armed from cycle zero. The injector is
        // pass-through until its site executes, so the prefix is clean.
        let mut baseline = Os::new(forge_config(PolicyKind::Enhanced));
        baseline.set_fault_hook(Box::new(Injector::new(&plan)));
        let base_run = script.run(&mut baseline);
        let want = exports(&mut baseline);

        // Forked run: clean unarmed prefix to the site's reachability
        // boundary, snapshot, fork, arm, replay the suffix.
        for split in [first_step, 1] {
            let mut store = ChunkStore::new();
            let mut parent = Os::new(forge_config(PolicyKind::Enhanced));
            let prefix = script.run_range(&mut parent, 0..split);
            assert!(prefix.clean(), "prefix not clean: {:?}", prefix.outcome);
            let snap = parent.snapshot_into(&mut store, None);
            let (mut forked, _stats) = Os::fork_from(&snap, &store);
            forked.set_fault_hook(Box::new(Injector::new(&plan)));
            let fork_run = script.run_range(&mut forked, split..STEPS);
            assert_eq!(
                format!("{:?}", base_run.outcome),
                format!("{:?}", fork_run.outcome),
                "outcomes diverge (transient={transient}, split={split})"
            );
            let got = exports(&mut forked);
            assert_eq!(
                want.0, got.0,
                "metrics diverge (transient={transient}, split={split})"
            );
            assert_eq!(
                want.1, got.1,
                "axiom diverges (transient={transient}, split={split})"
            );
            assert_eq!(
                want.2, got.2,
                "trace diverges (transient={transient}, split={split})"
            );
        }
    }
}

#[test]
fn readopt_matches_fresh_fork() {
    osiris_kernel::install_quiet_panic_hook();
    let script = ScriptWorkload::default();
    let mut store = ChunkStore::new();
    let mut parent = Os::new(forge_config(PolicyKind::Enhanced));
    let prefix = script.run_range(&mut parent, 0..3);
    assert!(prefix.clean());
    let snap = parent.snapshot_into(&mut store, None);

    // Path A: fresh fork, run the suffix.
    let (mut fresh, _stats) = Os::fork_from(&snap, &store);
    let run_a = script.run_range(&mut fresh, 3..STEPS);
    assert!(run_a.clean(), "fresh-fork suffix: {:?}", run_a.outcome);
    let want = exports(&mut fresh);

    // Path B: a worker OS that already ran something else (including an
    // injected crash) re-adopts the same snapshot in place.
    let mut worker = Os::new(forge_config(PolicyKind::Enhanced));
    let (site, _) = first_site("ds");
    worker.set_fault_hook(Box::new(Injector::new(&FaultPlan {
        site,
        kind: FaultKind::Crash,
        transient: true,
    })));
    let _ = script.run_range(&mut worker, 0..5);
    worker.set_fault_hook(Box::new(NoFaults));
    let stats = worker
        .try_readopt(&snap, &store)
        .expect("same-config worker re-adopts");
    assert!(stats.bytes_restored > 0, "adoption restores dirty state");
    let run_b = script.run_range(&mut worker, 3..STEPS);
    assert!(run_b.clean(), "readopt suffix: {:?}", run_b.outcome);
    let got = exports(&mut worker);
    assert_eq!(want.0, got.0, "metrics diverge after readopt");
    assert_eq!(want.1, got.1, "axiom diverges after readopt");
    assert_eq!(want.2, got.2, "trace diverges after readopt");
}

#[test]
fn chained_snapshots_share_chunks() {
    let script = ScriptWorkload::default();
    let mut store = ChunkStore::new();
    let mut os = Os::new(forge_config(PolicyKind::Enhanced));
    let mut at = 0;
    let mut prev = None;
    let mut dirty = Vec::new();
    for b in [2, 4, 6] {
        let run = script.run_range(&mut os, at..b);
        assert!(run.clean());
        let snap = os.snapshot_into(&mut store, prev.as_ref());
        dirty.push(store.resident_bytes());
        prev = Some(snap);
        at = b;
    }
    // Every later snapshot reuses unchanged chunks from its predecessor:
    // incremental insertions must stay well below a full image's worth.
    let (first, rest) = dirty.split_first().expect("three snapshots");
    for (i, ins) in rest.iter().enumerate() {
        let delta = ins - dirty[i];
        assert!(
            delta < *first,
            "snapshot {} inserted {} bytes, not O(dirty) (full image ~{})",
            i + 1,
            delta,
            first
        );
    }
}
