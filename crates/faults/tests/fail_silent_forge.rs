//! End-to-end fail-silent campaign: the four silent kinds (hang, stall,
//! reply-drop, reply-corrupt) across the core servers, detected purely by
//! the virtual-time watchdog — no crash signal ever reaches the kernel.
//! The headline guarantee: **zero wedged runs**. Every injected run must
//! terminate with a classified outcome; a `Crash` classification here
//! means the driver stalled out (the watchdog missed a hang) or state
//! went inconsistent (a corrupt reply was accepted).

use osiris_core::PolicyKind;
use osiris_faults::forge::{forge_config_fail_silent, Forge, ForgeConfig, ForgeResult};
use osiris_faults::{FaultKind, FaultModel, Outcome};

fn sweep(threads: usize) -> (ForgeResult, Vec<(usize, FaultModel, FaultKind)>) {
    let forge = Forge::new(ForgeConfig {
        policies: vec![PolicyKind::Enhanced, PolicyKind::Pessimistic],
        threads,
        budget: 4096,
        frontier_wave: false,
        fail_silent_wave: true,
        os_config: forge_config_fail_silent,
        ..ForgeConfig::default()
    });
    let plan = forge.plan();
    assert!(plan.deferred.is_empty(), "budget must cover every wave");
    let tagged = plan
        .variants
        .iter()
        .enumerate()
        .map(|(i, v)| (i, v.model, v.plan.kind))
        .collect();
    (forge.run_plan(&plan), tagged)
}

#[test]
fn fail_silent_campaign_never_wedges() {
    let (res, tagged) = sweep(4);

    // The planned fail-silent space is fully executed.
    assert!(res.report.fail_silent.0 > 0, "wave planned nothing");
    assert_eq!(
        res.report.fail_silent.0, res.report.fail_silent.1,
        "incomplete fail-silent coverage"
    );
    assert!((res.report.fail_silent_pct() - 100.0).abs() < 1e-9);

    // Every fail-silent record terminated in a classified, non-wedged
    // outcome, and each of the four kinds actually ran.
    let records = res.campaign.records();
    assert_eq!(records.len(), tagged.len());
    let mut kinds_seen = std::collections::BTreeSet::new();
    let mut servers_seen = std::collections::BTreeSet::new();
    let mut recoveries = 0u64;
    for (i, model, kind) in &tagged {
        if *model != FaultModel::FailSilent {
            continue;
        }
        let r = &records[*i];
        assert_ne!(
            r.outcome,
            Outcome::Crash,
            "wedged/inconsistent run: {} {:?} on {:?} ({})",
            r.site.component,
            kind,
            r.policy,
            r.site.site,
        );
        kinds_seen.insert(match kind {
            FaultKind::Hang => "hang",
            FaultKind::Stall(_) => "stall",
            FaultKind::ReplyDrop => "reply-drop",
            FaultKind::ReplyCorrupt => "reply-corrupt",
            other => panic!("non-fail-silent kind in wave: {other:?}"),
        });
        servers_seen.insert(r.site.component.clone());
        recoveries += r.recoveries;
    }
    assert_eq!(kinds_seen.len(), 4, "kinds covered: {kinds_seen:?}");
    assert!(servers_seen.len() >= 4, "servers covered: {servers_seen:?}");
    // Silent faults are invisible without the watchdog; recoveries prove
    // the deadline → probe → verdict pipeline actually fired.
    assert!(recoveries > 0, "watchdog never drove a recovery");
}

/// Plan-index determinism: records, axiom chain and report must be
/// byte-identical across worker thread counts.
#[test]
fn fail_silent_campaign_is_thread_count_invariant() {
    let (a, _) = sweep(1);
    let (b, _) = sweep(4);
    assert_eq!(a.campaign.axiom_bytes(), b.campaign.axiom_bytes());
    assert_eq!(
        a.campaign.report_json().pretty(),
        b.campaign.report_json().pretty()
    );
    assert_eq!(a.report.fail_silent, b.report.fail_silent);
    assert_eq!(a.report.outcome_cells, b.report.outcome_cells);
}
