//! End-to-end forge sweeps: deterministic results on every thread count,
//! full coverage of the planned spaces, and a live frontier.

use osiris_core::PolicyKind;
use osiris_faults::{Forge, ForgeConfig, ForgeResult};

fn sweep(threads: usize) -> ForgeResult {
    let forge = Forge::new(ForgeConfig {
        policies: vec![PolicyKind::Stateless, PolicyKind::Enhanced],
        threads,
        budget: 256,
        ..ForgeConfig::default()
    });
    forge.run()
}

#[test]
fn forge_sweep_is_thread_count_invariant() {
    let a = sweep(1);
    let b = sweep(4);

    // Records, matrix, axiom chain and coverage are plan-ordered and must
    // not depend on worker scheduling. (Fork/readopt counters are
    // operational telemetry and legitimately vary with the pool.)
    assert_eq!(a.campaign.axiom_bytes(), b.campaign.axiom_bytes());
    assert_eq!(
        a.campaign.report_json().pretty(),
        b.campaign.report_json().pretty()
    );
    assert_eq!(a.report.frontier.flips, b.report.frontier.flips);
    assert_eq!(a.report.frontier.sites, b.report.frontier.sites);
    assert_eq!(a.report.outcome_cells, b.report.outcome_cells);
    assert_eq!(a.report.injections, b.report.injections);

    // The planned spaces are fully swept within this budget.
    assert_eq!(a.report.fail_stop.0, a.report.fail_stop.1);
    assert_eq!(a.report.recovery_space.0, a.report.recovery_space.1);
    assert!(a.report.fail_stop.0 > 0);
    assert!(a.report.recovery_space.0 > 0);

    // The policy spread guarantees outcome-class flips: stateless loses
    // state the enhanced policy recovers.
    assert!(a.report.frontier.flips > 0, "no frontier found");
    assert!(a.report.stats.readopts > 0, "workers never re-adopted");
    assert!(a.report.stats.fork_dirty_bytes > 0);
}

#[test]
fn forge_budget_truncation_is_visible() {
    let forge = Forge::new(ForgeConfig {
        policies: vec![PolicyKind::Stateless, PolicyKind::Enhanced],
        threads: 4,
        budget: 150,
        frontier_wave: false,
        ..ForgeConfig::default()
    });
    let plan = forge.plan();
    assert!(!plan.deferred.is_empty(), "budget 150 should truncate");
    let res = forge.run_plan(&plan);
    // Dropped variants stay in the coverage denominator: the report shows
    // the lost coverage instead of silently shrinking the space.
    assert_eq!(res.report.dropped, plan.deferred.len());
    assert!(
        res.report.recovery_space.1 < res.report.recovery_space.0,
        "truncated sweep must report incomplete coverage: {:?}",
        res.report.recovery_space
    );
    assert_eq!(res.report.injections, 150);
}
