//! The OSIRIS core operating system servers.
//!
//! This crate implements the five core system servers of the OSIRIS
//! prototype (paper §V) plus the disk driver, and assembles them on the
//! `osiris-kernel` substrate:
//!
//! * [`ProcessManager`] (PM) — processes, signals, `fork`/`exec`/`wait`.
//! * [`VmManager`] (VM) — address spaces over a pre-allocated frame pool.
//! * [`VfsServer`] (VFS) — files, directories and pipes, with a write-back
//!   block cache and *cooperative multithreading* so slow disk operations
//!   don't block the system (paper §IV-E).
//! * [`DataStore`] (DS) — a key-value store service.
//! * [`RecoveryServer`] (RS) — crash notification handling, heartbeats, and
//!   the restart/rollback/reconciliation sequence.
//! * [`DiskDriver`] — a block device with a latency model.
//!
//! [`Os`] wires everything together and implements
//! [`osiris_kernel::OsEngine`], so workload programs written against
//! [`osiris_kernel::Sys`] run on it unmodified.
//!
//! # Example
//!
//! ```
//! use osiris_kernel::{Host, ProgramRegistry};
//! use osiris_servers::{Os, OsConfig};
//!
//! let mut registry = ProgramRegistry::new();
//! registry.register("hello", |sys| {
//!     let pid = sys.getpid().expect("pm answers");
//!     assert_eq!(pid.0, 1);
//!     0
//! });
//! let os = Os::new(OsConfig::default());
//! let mut host = Host::new(os, registry);
//! let outcome = host.run("hello", &[]);
//! assert!(outcome.completed());
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod disk;
mod ds;
mod os;
mod pm;
mod proto;
mod rs;
mod topology;
mod vfs;
mod vm;

pub use disk::{DiskDriver, BLOCK_SIZE};
pub use ds::{DataStore, MAX_KEYS};
pub use os::{Os, OsConfig, OsSnapshot};
pub use pm::ProcessManager;
pub use proto::{reply_result, OsMsg};
pub use rs::RecoveryServer;
pub use topology::Topology;
pub use vfs::{VfsServer, MAX_FDS, MAX_IO, ROOT_INO};
pub use vm::{VmManager, IMG_PAGES};
