//! The fixed component topology of the OSIRIS OS.

use osiris_kernel::Endpoint;

/// Endpoints of the six components, in registration order.
///
/// RS is registered first so the kernel routes crash notifications to it;
/// the disk driver comes last (it is a driver, not a core server, and is
/// excluded from the Table I / survivability server set).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Topology {
    /// Recovery Server.
    pub rs: Endpoint,
    /// Process Manager.
    pub pm: Endpoint,
    /// Virtual Memory manager.
    pub vm: Endpoint,
    /// Virtual File system Server.
    pub vfs: Endpoint,
    /// Data Store.
    pub ds: Endpoint,
    /// Disk driver.
    pub disk: Endpoint,
}

impl Topology {
    /// The canonical layout used by [`crate::Os`].
    pub const CANONICAL: Topology = Topology {
        rs: Endpoint::Component(0),
        pm: Endpoint::Component(1),
        vm: Endpoint::Component(2),
        vfs: Endpoint::Component(3),
        ds: Endpoint::Component(4),
        disk: Endpoint::Component(5),
    };

    /// The endpoint indices of the five core servers (everything but the
    /// disk driver), used by heartbeats and the evaluation tables.
    pub fn core_servers(&self) -> [Endpoint; 5] {
        [self.rs, self.pm, self.vm, self.vfs, self.ds]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_layout_is_stable() {
        let t = Topology::CANONICAL;
        assert_eq!(t.rs, Endpoint::Component(0));
        assert_eq!(t.disk, Endpoint::Component(5));
        assert_eq!(t.core_servers().len(), 5);
    }
}
