//! PM — the Process Manager.
//!
//! Manages processes and signals (paper §V): process creation (`spawn` =
//! fork+exec, plain `fork`, `exec`), termination and reaping (`exit`,
//! `waitpid`), signal delivery (`kill`, masks, pending sets) and sleeping.
//! Cross-cutting calls interact with VM (address spaces) and VFS (binary
//! loading, descriptor cleanup) — the tightly-coupled, stateful behaviour
//! that makes core-server recovery hard and that OSIRIS targets.
//!
//! Interaction ordering is chosen to maximize the *enhanced* recovery
//! window: the read-only `VfsExecLoad` query runs first (keeps the window
//! open), the state-modifying `VmFork`/`VmExecReset` last.

use osiris_checkpoint::{Heap, PCell, PMap};
use osiris_kernel::abi::{Errno, Pid, Signal, SysReply, Syscall};
use osiris_kernel::{Ctx, Endpoint, Message, MsgId, Protocol, ReturnPath, Server};

use crate::proto::OsMsg;
use crate::topology::Topology;

const INIT_PID: u32 = 1;

#[derive(Clone, Debug, PartialEq, Eq)]
enum ProcState {
    Alive,
    Zombie(i32),
}

#[derive(Clone, Debug)]
struct Proc {
    ppid: u32,
    state: ProcState,
    prog: String,
    masked: Vec<Signal>,
    pending_sigs: Vec<Signal>,
}

#[derive(Clone, Debug)]
struct Waiter {
    /// `Some(pid)` for `waitpid`, `None` for `wait_any`.
    target: Option<u32>,
    rp: ReturnPath,
}

#[derive(Clone, Debug)]
struct SleepEntry {
    pid: u32,
    rp: ReturnPath,
}

/// Multi-step syscall continuations, keyed by the id of the outstanding
/// request to VM or VFS. Stored in the checkpointed heap so rollback erases
/// half-started transactions.
#[derive(Clone, Debug)]
enum PmCont {
    SpawnLoad {
        parent: u32,
        child: u32,
        prog: String,
        rp: ReturnPath,
    },
    SpawnVm {
        parent: u32,
        child: u32,
        prog: String,
        rp: ReturnPath,
    },
    SpawnVfs {
        parent: u32,
        child: u32,
        prog: String,
        rp: ReturnPath,
    },
    ForkVm {
        parent: u32,
        child: u32,
        rp: ReturnPath,
    },
    ForkVfs {
        parent: u32,
        child: u32,
        rp: ReturnPath,
    },
    ExecLoad {
        pid: u32,
        prog: String,
        rp: ReturnPath,
    },
    ExecVm {
        pid: u32,
        prog: String,
        rp: ReturnPath,
    },
}

#[derive(Clone, Copy, Debug)]
struct Handles {
    /// Served-event statistics, updated after replying (deferred
    /// bookkeeping outside the recovery window, like real servers'
    /// post-reply accounting).
    ops: PCell<u64>,
    stats: PMap<&'static str, u64>,
    last_event: PCell<u64>,
    procs: PMap<u32, Proc>,
    next_pid: PCell<u32>,
    waiters: PMap<u32, Waiter>,
    sleeps: PMap<u64, SleepEntry>,
    next_token: PCell<u64>,
    pending: PMap<u64, PmCont>,
}

/// The Process Manager server.
#[derive(Clone, Debug)]
pub struct ProcessManager {
    topo: Topology,
    h: Option<Handles>,
}

impl ProcessManager {
    /// Creates a PM wired to the given topology.
    pub fn new(topo: Topology) -> Self {
        ProcessManager { topo, h: None }
    }

    fn h(&self) -> Handles {
        self.h.expect("PM used before init")
    }
}

impl Server<OsMsg> for ProcessManager {
    fn name(&self) -> &'static str {
        "pm"
    }

    fn init(&mut self, ctx: &mut Ctx<'_, OsMsg>) {
        let heap = ctx.heap();
        let h = Handles {
            ops: heap.alloc_cell("pm.ops", 0),
            stats: heap.alloc_map("pm.stats"),
            last_event: heap.alloc_cell("pm.last_event", 0),
            procs: heap.alloc_map("pm.procs"),
            next_pid: heap.alloc_cell("pm.next_pid", 2),
            waiters: heap.alloc_map("pm.waiters"),
            sleeps: heap.alloc_map("pm.sleeps"),
            next_token: heap.alloc_cell("pm.next_token", 1),
            pending: heap.alloc_map("pm.pending"),
        };
        // The init process exists from boot.
        h.procs.insert(
            heap,
            INIT_PID,
            Proc {
                ppid: 0,
                state: ProcState::Alive,
                prog: "init".into(),
                masked: Vec::new(),
                pending_sigs: Vec::new(),
            },
        );
        self.h = Some(h);
    }

    fn handle(&mut self, msg: &Message<OsMsg>, ctx: &mut Ctx<'_, OsMsg>) {
        match &msg.payload {
            OsMsg::User { pid, call } => self.user_call(*pid, call, msg.return_path(), ctx),
            OsMsg::Ping => {
                ctx.site("pm.ping");
                ctx.reply(msg.return_path(), OsMsg::Pong);
                return;
            }
            OsMsg::SleepTick { token } => self.sleep_done(*token, ctx),
            OsMsg::ROk | OsMsg::RVal(_) | OsMsg::RData(_) | OsMsg::RErr(_) | OsMsg::RCrash => {
                if let Some(request_id) = msg.reply_to {
                    self.continuation(request_id, &msg.payload, ctx);
                }
            }
            _ => {}
        }
        // Deferred bookkeeping after the reply went out: the window has
        // closed, so this executes outside the recoverable region. The
        // unconditional store instrumentation of the paper's unoptimized
        // build logs every one of these writes; the window-gated build
        // skips them all.
        ctx.site("pm.post.account");
        let h = self.h();
        let label = msg.payload.label();
        let now = ctx.now();
        h.ops.update(ctx.heap(), |n| *n += 1);
        if h.stats.update(ctx.heap(), &label, |n| *n += 1).is_none() {
            h.stats.insert(ctx.heap(), label, 1);
        }
        h.last_event.set(ctx.heap(), now);
        h.next_token.update(ctx.heap(), |t| *t = t.wrapping_add(0));
        ctx.site("pm.post.done");
        ctx.charge(25);
    }

    fn audit_facts(&self, heap: &Heap) -> Vec<(String, u64)> {
        let h = self.h();
        let mut facts = Vec::new();
        h.procs.for_each(heap, |pid, p| {
            if p.state == ProcState::Alive {
                facts.push(("pm.alive".to_string(), u64::from(*pid)));
            }
            facts.push(("pm.proc".to_string(), u64::from(*pid)));
        });
        h.waiters.for_each(heap, |pid, _| {
            if !h.procs.contains_key(heap, pid) {
                facts.push(("pm.torn_waiter".to_string(), u64::from(*pid)));
            }
        });
        h.sleeps.for_each(heap, |_, s| {
            if !h.procs.contains_key(heap, &s.pid) {
                facts.push(("pm.torn_sleeper".to_string(), u64::from(s.pid)));
            }
        });
        facts
    }

    fn clone_box(&self) -> Box<dyn Server<OsMsg>> {
        Box::new(self.clone())
    }
}

impl ProcessManager {
    fn user_call(&self, pid: Pid, call: &Syscall, rp: ReturnPath, ctx: &mut Ctx<'_, OsMsg>) {
        match call {
            Syscall::Spawn { prog, args: _ } => self.spawn(pid, prog, rp, ctx),
            Syscall::Fork => self.fork(pid, rp, ctx),
            Syscall::Exec { prog, args: _ } => self.exec(pid, prog, rp, ctx),
            Syscall::Exit { code } => self.exit(pid, *code, ctx),
            Syscall::WaitPid { pid: target } => self.wait(pid, Some(target.0), rp, ctx),
            Syscall::WaitAny => self.wait(pid, None, rp, ctx),
            Syscall::Kill { pid: target, sig } => self.kill(pid, *target, *sig, rp, ctx),
            Syscall::GetPid => {
                ctx.site("pm.getpid");
                ctx.reply(rp, OsMsg::UserReply(SysReply::Proc(pid)));
            }
            Syscall::GetPPid => {
                ctx.site("pm.getppid.entry");
                let h = self.h();
                match h.procs.get(ctx.heap_ref(), &pid.0) {
                    Some(p) => {
                        let ppid = ctx.site_val("pm.getppid.read", u64::from(p.ppid)) as u32;
                        ctx.reply(rp, OsMsg::UserReply(SysReply::Proc(Pid(ppid))));
                    }
                    None => ctx.reply(rp, OsMsg::UserReply(SysReply::Err(Errno::ESRCH))),
                }
            }
            Syscall::SigMask { sig, masked } => self.sigmask(pid, *sig, *masked, rp, ctx),
            Syscall::SigPending => self.sigpending(pid, rp, ctx),
            Syscall::Sleep { ticks } => self.sleep(pid, *ticks, rp, ctx),
            other => {
                ctx.site("pm.badcall");
                let _ = other;
                ctx.reply(rp, OsMsg::UserReply(SysReply::Err(Errno::ENOSYS)));
            }
        }
    }

    fn alloc_pid(&self, ctx: &mut Ctx<'_, OsMsg>) -> u32 {
        let h = self.h();
        let pid = h.next_pid.get(ctx.heap_ref());
        h.next_pid.set(ctx.heap(), pid + 1);
        ctx.site_val("pm.alloc_pid", u64::from(pid)) as u32
    }

    /// `spawn` = fork+exec in one call. Phase 1 (this event): validate,
    /// allocate the child pid, ask VFS to load the binary (read-only — the
    /// enhanced window stays open). Phase 2: fork the address space in VM
    /// (state-modifying). Phase 3: commit the process-table entry and reply.
    fn spawn(&self, parent: Pid, prog: &str, rp: ReturnPath, ctx: &mut Ctx<'_, OsMsg>) {
        ctx.site("pm.spawn.entry");
        let h = self.h();
        if !h.procs.contains_key(ctx.heap_ref(), &parent.0) {
            ctx.reply(rp, OsMsg::UserReply(SysReply::Err(Errno::ESRCH)));
            return;
        }
        ctx.site("pm.spawn.validate");
        // Advisory memory-pressure probe: a read-only query whose reply PM
        // does not wait for (no continuation is registered, so the answer -
        // or an E_CRASH from a recovered VM - is simply ignored). Keeps the
        // enhanced window open; crashes during it are invisible to users.
        ctx.send_request(self.topo.vm, OsMsg::VmUsage { pid: parent });
        ctx.site("pm.spawn.probed");
        let child = self.alloc_pid(ctx);
        let id = ctx.send_request(
            self.topo.vfs,
            OsMsg::VfsExecLoad {
                pid: Pid(child),
                prog: prog.to_string(),
            },
        );
        h.pending.insert(
            ctx.heap(),
            id.0,
            PmCont::SpawnLoad {
                parent: parent.0,
                child,
                prog: prog.to_string(),
                rp,
            },
        );
        ctx.site("pm.spawn.load_sent");
    }

    fn fork(&self, parent: Pid, rp: ReturnPath, ctx: &mut Ctx<'_, OsMsg>) {
        ctx.site("pm.fork.entry");
        let h = self.h();
        let Some(pproc) = h.procs.get(ctx.heap_ref(), &parent.0) else {
            ctx.reply(rp, OsMsg::UserReply(SysReply::Err(Errno::ESRCH)));
            return;
        };
        ctx.site("pm.fork.validate");
        let child = self.alloc_pid(ctx);
        let id = ctx.send_request(
            self.topo.vm,
            OsMsg::VmFork {
                parent,
                child: Pid(child),
            },
        );
        h.pending.insert(
            ctx.heap(),
            id.0,
            PmCont::ForkVm {
                parent: parent.0,
                child,
                rp,
            },
        );
        let _ = pproc;
        ctx.site("pm.fork.vm_sent");
    }

    fn exec(&self, pid: Pid, prog: &str, rp: ReturnPath, ctx: &mut Ctx<'_, OsMsg>) {
        ctx.site("pm.exec.entry");
        let h = self.h();
        if !h.procs.contains_key(ctx.heap_ref(), &pid.0) {
            ctx.reply(rp, OsMsg::UserReply(SysReply::Err(Errno::ESRCH)));
            return;
        }
        ctx.site("pm.exec.validate");
        let id = ctx.send_request(
            self.topo.vfs,
            OsMsg::VfsExecLoad {
                pid,
                prog: prog.to_string(),
            },
        );
        h.pending.insert(
            ctx.heap(),
            id.0,
            PmCont::ExecLoad {
                pid: pid.0,
                prog: prog.to_string(),
                rp,
            },
        );
        ctx.site("pm.exec.load_sent");
    }

    /// Continuations: the reply to an earlier VM/VFS request arrived.
    fn continuation(&self, request_id: MsgId, result: &OsMsg, ctx: &mut Ctx<'_, OsMsg>) {
        let h = self.h();
        let Some(cont) = h.pending.remove(ctx.heap(), &request_id.0) else {
            // A reply for a transaction that was rolled back: ignore.
            return;
        };
        ctx.site("pm.cont.entry");
        let err = match result {
            OsMsg::RErr(e) => Some(*e),
            OsMsg::RCrash => Some(Errno::ECRASH),
            _ => None,
        };
        match cont {
            PmCont::SpawnLoad {
                parent,
                child,
                prog,
                rp,
            } => {
                if let Some(e) = err {
                    ctx.reply(rp, OsMsg::UserReply(SysReply::Err(e)));
                    return;
                }
                ctx.site("pm.spawn.loaded");
                let id = ctx.send_request(
                    self.topo.vm,
                    OsMsg::VmFork {
                        parent: Pid(parent),
                        child: Pid(child),
                    },
                );
                h.pending.insert(
                    ctx.heap(),
                    id.0,
                    PmCont::SpawnVm {
                        parent,
                        child,
                        prog,
                        rp,
                    },
                );
            }
            PmCont::SpawnVm {
                parent,
                child,
                prog,
                rp,
            } => {
                if let Some(e) = err {
                    ctx.reply(rp, OsMsg::UserReply(SysReply::Err(e)));
                    return;
                }
                ctx.site("pm.spawn.vm_done");
                let id = ctx.send_request(
                    self.topo.vfs,
                    OsMsg::VfsForkDup {
                        parent: Pid(parent),
                        child: Pid(child),
                    },
                );
                h.pending.insert(
                    ctx.heap(),
                    id.0,
                    PmCont::SpawnVfs {
                        parent,
                        child,
                        prog,
                        rp,
                    },
                );
            }
            PmCont::SpawnVfs {
                parent,
                child,
                prog,
                rp,
            } => {
                if let Some(e) = err {
                    // Undo the VM half of the fork before failing the call.
                    ctx.notify(self.topo.vm, OsMsg::VmFree { pid: Pid(child) });
                    ctx.reply(rp, OsMsg::UserReply(SysReply::Err(e)));
                    return;
                }
                ctx.site("pm.spawn.commit");
                h.procs.insert(
                    ctx.heap(),
                    child,
                    Proc {
                        ppid: parent,
                        state: ProcState::Alive,
                        prog,
                        masked: Vec::new(),
                        pending_sigs: Vec::new(),
                    },
                );
                ctx.reply(rp, OsMsg::UserReply(SysReply::Proc(Pid(child))));
            }
            PmCont::ForkVm { parent, child, rp } => {
                if let Some(e) = err {
                    ctx.reply(rp, OsMsg::UserReply(SysReply::Err(e)));
                    return;
                }
                ctx.site("pm.fork.vm_done");
                let id = ctx.send_request(
                    self.topo.vfs,
                    OsMsg::VfsForkDup {
                        parent: Pid(parent),
                        child: Pid(child),
                    },
                );
                h.pending
                    .insert(ctx.heap(), id.0, PmCont::ForkVfs { parent, child, rp });
            }
            PmCont::ForkVfs { parent, child, rp } => {
                if let Some(e) = err {
                    ctx.notify(self.topo.vm, OsMsg::VmFree { pid: Pid(child) });
                    ctx.reply(rp, OsMsg::UserReply(SysReply::Err(e)));
                    return;
                }
                ctx.site("pm.fork.commit");
                let prog = h
                    .procs
                    .get(ctx.heap_ref(), &parent)
                    .map(|p| p.prog)
                    .unwrap_or_else(|| "?".into());
                h.procs.insert(
                    ctx.heap(),
                    child,
                    Proc {
                        ppid: parent,
                        state: ProcState::Alive,
                        prog,
                        masked: Vec::new(),
                        pending_sigs: Vec::new(),
                    },
                );
                ctx.reply(rp, OsMsg::UserReply(SysReply::Proc(Pid(child))));
            }
            PmCont::ExecLoad { pid, prog, rp } => {
                if let Some(e) = err {
                    ctx.reply(rp, OsMsg::UserReply(SysReply::Err(e)));
                    return;
                }
                ctx.site("pm.exec.loaded");
                let id = ctx.send_request(self.topo.vm, OsMsg::VmExecReset { pid: Pid(pid) });
                h.pending
                    .insert(ctx.heap(), id.0, PmCont::ExecVm { pid, prog, rp });
            }
            PmCont::ExecVm { pid, prog, rp } => {
                if let Some(e) = err {
                    ctx.reply(rp, OsMsg::UserReply(SysReply::Err(e)));
                    return;
                }
                ctx.site("pm.exec.commit");
                h.procs.update(ctx.heap(), &pid, |p| p.prog = prog);
                ctx.reply(rp, OsMsg::UserReply(SysReply::Ok));
            }
        }
    }

    fn exit(&self, pid: Pid, code: i32, ctx: &mut Ctx<'_, OsMsg>) {
        ctx.site("pm.exit.entry");
        let h = self.h();
        if !h.procs.contains_key(ctx.heap_ref(), &pid.0) {
            return;
        }
        self.terminate(pid.0, code, true, ctx);
    }

    /// Shared termination path for `exit` (`self_exit = true`, where the
    /// departing process *is* the requester, so resource releases are
    /// requester-scoped SEEPs) and fatal signals (`self_exit = false`).
    fn terminate(&self, pid: u32, code: i32, self_exit: bool, ctx: &mut Ctx<'_, OsMsg>) {
        let h = self.h();
        ctx.site("pm.term.entry");
        let Some(proc) = h.procs.get(ctx.heap_ref(), &pid) else {
            return;
        };

        // Reparent or reap this process's children.
        let children: Vec<(u32, ProcState)> = {
            let mut v = Vec::new();
            h.procs.for_each(ctx.heap_ref(), |cpid, p| {
                if p.ppid == pid {
                    v.push((*cpid, p.state.clone()));
                }
            });
            v
        };
        for (cpid, state) in children {
            match state {
                ProcState::Zombie(_) => {
                    h.procs.remove(ctx.heap(), &cpid);
                }
                ProcState::Alive => {
                    h.procs.update(ctx.heap(), &cpid, |p| p.ppid = INIT_PID);
                }
            }
        }
        ctx.site("pm.term.children");

        // Release resources held elsewhere: address space and descriptors.
        // On the requester's own exit these are requester-scoped SEEPs:
        // under the kill-requester policy the window stays open across
        // them, because killing the requester re-runs this very cleanup.
        if self_exit {
            ctx.notify(self.topo.vm, OsMsg::VmFreeSelf { pid: Pid(pid) });
            ctx.notify(self.topo.vfs, OsMsg::VfsCleanupSelf { pid: Pid(pid) });
        } else {
            ctx.notify(self.topo.vm, OsMsg::VmFree { pid: Pid(pid) });
            ctx.notify(self.topo.vfs, OsMsg::VfsCleanup { pid: Pid(pid) });
        }
        ctx.site("pm.term.released");

        // Wake a waiting parent, or become a zombie.
        let ppid = proc.ppid;
        let waiter = h
            .waiters
            .get(ctx.heap_ref(), &ppid)
            .filter(|w| w.target.is_none() || w.target == Some(pid));
        if let Some(w) = waiter {
            h.waiters.remove(ctx.heap(), &ppid);
            h.procs.remove(ctx.heap(), &pid);
            ctx.reply(w.rp, OsMsg::UserReply(SysReply::Exited(Pid(pid), code)));
            ctx.site("pm.term.woke_parent");
        } else if h.procs.contains_key(ctx.heap_ref(), &ppid) {
            h.procs
                .update(ctx.heap(), &pid, |p| p.state = ProcState::Zombie(code));
            ctx.site("pm.term.zombie");
        } else {
            // Parent already gone: auto-reap.
            h.procs.remove(ctx.heap(), &pid);
            ctx.site("pm.term.autoreap");
        }
    }

    fn wait(&self, caller: Pid, target: Option<u32>, rp: ReturnPath, ctx: &mut Ctx<'_, OsMsg>) {
        ctx.site("pm.wait.entry");
        let h = self.h();
        // Find a matching zombie child, or verify a child exists to wait on.
        let mut zombie: Option<(u32, i32)> = None;
        let mut has_child = false;
        h.procs.for_each(ctx.heap_ref(), |cpid, p| {
            if p.ppid == caller.0 && target.is_none_or(|t| t == *cpid) {
                has_child = true;
                if let ProcState::Zombie(code) = p.state {
                    if zombie.is_none() {
                        zombie = Some((*cpid, code));
                    }
                }
            }
        });
        if let Some((cpid, code)) = zombie {
            ctx.site("pm.wait.reap");
            h.procs.remove(ctx.heap(), &cpid);
            ctx.reply(rp, OsMsg::UserReply(SysReply::Exited(Pid(cpid), code)));
        } else if ctx.site_branch("pm.wait.has_child", has_child) {
            h.waiters
                .insert(ctx.heap(), caller.0, Waiter { target, rp });
            ctx.site("pm.wait.block");
        } else {
            ctx.reply(rp, OsMsg::UserReply(SysReply::Err(Errno::ECHILD)));
        }
    }

    fn kill(
        &self,
        _caller: Pid,
        target: Pid,
        sig: Signal,
        rp: ReturnPath,
        ctx: &mut Ctx<'_, OsMsg>,
    ) {
        ctx.site("pm.kill.entry");
        let h = self.h();
        let Some(tproc) = h.procs.get(ctx.heap_ref(), &target.0) else {
            ctx.reply(rp, OsMsg::UserReply(SysReply::Err(Errno::ESRCH)));
            return;
        };
        if tproc.state != ProcState::Alive {
            ctx.reply(rp, OsMsg::UserReply(SysReply::Err(Errno::ESRCH)));
            return;
        }
        ctx.site("pm.kill.validate");
        let fatal = match sig {
            Signal::SigKill => true,
            Signal::SigTerm => !tproc.masked.contains(&Signal::SigTerm),
            Signal::SigUsr1 | Signal::SigUsr2 => false,
        };
        if ctx.site_branch("pm.kill.fatal", fatal) {
            // Cancel the victim's blocked PM operations.
            if let Some(w) = h.waiters.remove(ctx.heap(), &target.0) {
                ctx.reply(w.rp, OsMsg::UserReply(SysReply::Err(Errno::EKILLED)));
            }
            let sleep_token = h.sleeps.find_key(ctx.heap_ref(), |_, s| s.pid == target.0);
            if let Some(tok) = sleep_token {
                if let Some(s) = h.sleeps.remove(ctx.heap(), &tok) {
                    ctx.reply(s.rp, OsMsg::UserReply(SysReply::Err(Errno::EKILLED)));
                }
            }
            // Tell the host the process is dead (kill event), then reap.
            ctx.notify(
                Endpoint::Process(target),
                OsMsg::UserReply(SysReply::Err(Errno::EKILLED)),
            );
            self.terminate(target.0, -9, false, ctx);
            ctx.site("pm.kill.terminated");
        } else {
            h.procs.update(ctx.heap(), &target.0, |p| {
                if !p.pending_sigs.contains(&sig) {
                    p.pending_sigs.push(sig);
                }
            });
            ctx.site("pm.kill.recorded");
        }
        ctx.reply(rp, OsMsg::UserReply(SysReply::Ok));
    }

    fn sigmask(
        &self,
        pid: Pid,
        sig: Signal,
        masked: bool,
        rp: ReturnPath,
        ctx: &mut Ctx<'_, OsMsg>,
    ) {
        ctx.site("pm.sigmask.entry");
        if sig == Signal::SigKill {
            ctx.reply(rp, OsMsg::UserReply(SysReply::Err(Errno::EINVAL)));
            return;
        }
        let h = self.h();
        let updated = h
            .procs
            .update(ctx.heap(), &pid.0, |p| {
                if masked {
                    if !p.masked.contains(&sig) {
                        p.masked.push(sig);
                    }
                } else {
                    p.masked.retain(|s| *s != sig);
                }
            })
            .is_some();
        if updated {
            ctx.reply(rp, OsMsg::UserReply(SysReply::Ok));
        } else {
            ctx.reply(rp, OsMsg::UserReply(SysReply::Err(Errno::ESRCH)));
        }
    }

    fn sigpending(&self, pid: Pid, rp: ReturnPath, ctx: &mut Ctx<'_, OsMsg>) {
        ctx.site("pm.sigpending.entry");
        let h = self.h();
        match h
            .procs
            .update(ctx.heap(), &pid.0, |p| std::mem::take(&mut p.pending_sigs))
        {
            Some(sigs) => ctx.reply(rp, OsMsg::UserReply(SysReply::Signals(sigs))),
            None => ctx.reply(rp, OsMsg::UserReply(SysReply::Err(Errno::ESRCH))),
        }
    }

    fn sleep(&self, pid: Pid, ticks: u64, rp: ReturnPath, ctx: &mut Ctx<'_, OsMsg>) {
        ctx.site("pm.sleep.entry");
        let h = self.h();
        if !h.procs.contains_key(ctx.heap_ref(), &pid.0) {
            ctx.reply(rp, OsMsg::UserReply(SysReply::Err(Errno::ESRCH)));
            return;
        }
        let token = h.next_token.get(ctx.heap_ref());
        h.next_token.set(ctx.heap(), token + 1);
        h.sleeps
            .insert(ctx.heap(), token, SleepEntry { pid: pid.0, rp });
        ctx.set_timer(ticks.max(1), OsMsg::SleepTick { token });
        ctx.site("pm.sleep.armed");
    }

    fn sleep_done(&self, token: u64, ctx: &mut Ctx<'_, OsMsg>) {
        let h = self.h();
        // Stale tokens (rolled-back or killed sleepers) are ignored.
        if let Some(s) = h.sleeps.remove(ctx.heap(), &token) {
            ctx.site("pm.sleep.wake");
            ctx.reply(s.rp, OsMsg::UserReply(SysReply::Ok));
        }
    }
}
