//! The inter-component protocol of the OSIRIS OS, with SEEP metadata
//! engraved on every payload variant.
//!
//! Classification rationale (paper §III-B, §IV-B):
//!
//! * **Requests that change the receiver's state** (fork an address space,
//!   write a disk block, clean up a process) are `StateModifying`: once such
//!   a message leaves a component, rolling the sender back would orphan the
//!   remote change, so the sender's recovery window must close.
//! * **Read-only queries** (`VmUsage`, `VfsExecLoad`, `Ping`) are
//!   `NonStateModifying`. `VfsExecLoad` deserves a note: loading a binary
//!   fills the VFS block cache, but cache contents are *soft state* with no
//!   semantic visibility — exactly the kind of interaction the paper's
//!   enhanced policy marks as dependency-free to widen recovery windows.
//! * **Replies** are conservatively `StateModifying`: delivering a reply
//!   resumes a continuation in the requester, creating a dependency on the
//!   replier having really performed the work. Since servers reply at the
//!   end of a handler, this costs almost no recovery coverage.
//! * `Announce` is a fire-and-forget trace notification from DS to RS whose
//!   handler is contractually state-free, so it is `NonStateModifying` —
//!   this is the SEEP that gives DS its large pessimistic/enhanced coverage
//!   gap (Table I).

use osiris_core::{SeepClass, SeepMeta};
use osiris_kernel::abi::{Errno, Pid, SysReply, Syscall};
use osiris_kernel::Protocol;

/// Every message exchanged in the OSIRIS OS.
#[derive(Clone, Debug)]
pub enum OsMsg {
    // --- user ↔ server ---
    /// A user syscall routed to its owning server.
    User {
        /// The calling process.
        pid: Pid,
        /// The call.
        call: Syscall,
    },
    /// The final reply of a syscall, routed back to the process.
    UserReply(SysReply),

    // --- PM → VM ---
    /// Duplicate `parent`'s address space for `child` (fork).
    VmFork {
        /// The forking process.
        parent: Pid,
        /// The new child.
        child: Pid,
    },
    /// Replace `pid`'s address space with a fresh image (exec).
    VmExecReset {
        /// The exec'ing process.
        pid: Pid,
    },
    /// Release `pid`'s address space (exit). Fire-and-forget.
    VmFree {
        /// The exiting process.
        pid: Pid,
    },
    /// Like `VmFree`, but sent on the *requester's own* exit path: the
    /// state change is scoped to the requesting process, so the
    /// kill-requester reconciliation (paper §VII) can clean it.
    VmFreeSelf {
        /// The exiting process (== the requester).
        pid: Pid,
    },
    /// Read-only query of `pid`'s resident pages.
    VmUsage {
        /// The queried process.
        pid: Pid,
    },

    // --- PM → VFS ---
    /// Load the binary image of `prog` (read-only; warms the block cache).
    VfsExecLoad {
        /// Process performing the exec.
        pid: Pid,
        /// Program name.
        prog: String,
    },
    /// Close `pid`'s descriptors and cancel its blocked VFS operations.
    /// Fire-and-forget.
    VfsCleanup {
        /// The exiting or killed process.
        pid: Pid,
    },
    /// Like `VfsCleanup`, but on the requester's own exit path
    /// (requester-scoped; see `VmFreeSelf`).
    VfsCleanupSelf {
        /// The exiting process (== the requester).
        pid: Pid,
    },
    /// Duplicate `parent`'s descriptor table for `child` (fork inherits
    /// open files and pipe ends).
    VfsForkDup {
        /// The forking process.
        parent: Pid,
        /// The new child.
        child: Pid,
    },

    // --- VFS → disk driver ---
    /// Read block `block`.
    DiskRead {
        /// Block number.
        block: u64,
    },
    /// Write block `block`.
    DiskWrite {
        /// Block number.
        block: u64,
        /// Block contents.
        data: Vec<u8>,
    },

    // --- generic inter-server replies ---
    /// Success, no payload.
    ROk,
    /// Success with an integer.
    RVal(u64),
    /// Success with bytes (disk read).
    RData(Vec<u8>),
    /// Failure.
    RErr(Errno),
    /// The replier crashed and was recovered; the request was discarded
    /// (error virtualization).
    RCrash,

    // --- DS → RS ---
    /// Trace notification that `key` was published. The RS handler is
    /// contractually state-free.
    Announce {
        /// Published key.
        key: String,
    },

    // --- RS → DS ---
    /// RS persists its service status into the data store after each
    /// heartbeat round (as MINIX's RS publishes to DS). State-modifying:
    /// it updates DS's store.
    StatusPublish {
        /// Heartbeat round number.
        round: u64,
    },
    /// RS records a quarantine decision in the data store so the rest of
    /// the system can observe which services are benched. State-modifying.
    QuarantinePublish {
        /// Endpoint index of the quarantined component.
        target: u8,
    },
    /// RS mirrors its in-flight recovery intent into the data store for
    /// observability (the authoritative intent log lives in the kernel,
    /// where it survives an RS crash mid-conduct). State-modifying.
    IntentPublish {
        /// Endpoint index of the component being recovered.
        target: u8,
    },

    // --- heartbeats ---
    /// Liveness probe from RS.
    Ping,
    /// Liveness answer.
    Pong,

    // --- kernel / timer notifications ---
    /// A component crashed; sent by the kernel to RS.
    CrashNotify {
        /// Endpoint index of the crashed component.
        target: u8,
    },
    /// Kill-requester reconciliation order from the kernel to RS
    /// (paper §VII): terminate `pid` through the normal kill path.
    KillRequester {
        /// The process to terminate.
        pid: Pid,
    },
    /// RS heartbeat-round timer.
    HeartbeatTick,
    /// RS restart-backoff timer: recover `target` now that its escalation
    /// backoff has elapsed.
    RecoveryTick {
        /// Endpoint index of the component awaiting its deferred restart.
        target: u8,
    },
    /// Disk-latency completion timer.
    DiskTick {
        /// Pending-operation token.
        token: u64,
    },
    /// PM sleep-completion timer.
    SleepTick {
        /// Sleep token.
        token: u64,
    },
}

impl Protocol for OsMsg {
    fn seep(&self) -> SeepMeta {
        use OsMsg::*;
        match self {
            // Exit is one-way: the caller is gone, so no error reply can
            // ever be delivered — a crash while processing it is not
            // error-virtualizable (the window decision logic sees
            // `reply_possible = false`).
            User {
                call: osiris_kernel::abi::Syscall::Exit { .. },
                ..
            } => SeepMeta {
                class: SeepClass::StateModifying,
                kind: osiris_core::MessageKind::Request,
                reply_possible: false,
                bounded: true,
            },
            // Intrinsically blocking syscalls: their service time depends on
            // external progress (a child exiting, a timer firing, pipe data
            // arriving), not on the handler's own cost, so no deadline is
            // derivable — the watchdog must never arm one. A `WaitPid` that
            // takes forever is not a hang.
            User {
                call:
                    osiris_kernel::abi::Syscall::WaitPid { .. }
                    | osiris_kernel::abi::Syscall::WaitAny
                    | osiris_kernel::abi::Syscall::Sleep { .. }
                    | osiris_kernel::abi::Syscall::Read { .. },
                ..
            } => SeepMeta::request(SeepClass::StateModifying).unbounded(),
            // Read-only user syscalls: the handler inspects server state
            // without changing it, so the request is idempotent — the
            // watchdog may re-drive it transparently after a lost reply.
            // (`Read` is excluded: it advances the file offset and can
            // block on a pipe; `SigPending` fetches *and clears*.)
            User {
                call:
                    osiris_kernel::abi::Syscall::GetPid
                    | osiris_kernel::abi::Syscall::GetPPid
                    | osiris_kernel::abi::Syscall::VmStat
                    | osiris_kernel::abi::Syscall::Stat { .. }
                    | osiris_kernel::abi::Syscall::ReadDir { .. }
                    | osiris_kernel::abi::Syscall::DsGet { .. }
                    | osiris_kernel::abi::Syscall::DsList { .. },
                ..
            } => SeepMeta::request(SeepClass::NonStateModifying),
            // User syscalls: requests that (generally) modify the server.
            User { .. } => SeepMeta::request(SeepClass::StateModifying),
            // Replies resume a continuation in the receiver: conservative.
            UserReply(_) | ROk | RVal(_) | RData(_) | RErr(_) | RCrash | Pong => {
                SeepMeta::reply(SeepClass::StateModifying)
            }
            // State-modifying server-to-server requests.
            VmFork { .. } | VmExecReset { .. } | VfsForkDup { .. } => {
                SeepMeta::request(SeepClass::StateModifying)
            }
            DiskRead { .. } | DiskWrite { .. } => SeepMeta::request(SeepClass::StateModifying),
            // Read-only queries: keep the sender's window open (enhanced).
            VmUsage { .. } => SeepMeta::request(SeepClass::NonStateModifying),
            VfsExecLoad { .. } => SeepMeta::request(SeepClass::NonStateModifying),
            Ping => SeepMeta::request(SeepClass::NonStateModifying),
            // Fire-and-forget state changes.
            VmFree { .. }
            | VfsCleanup { .. }
            | StatusPublish { .. }
            | QuarantinePublish { .. }
            | IntentPublish { .. } => SeepMeta::notification(SeepClass::StateModifying),
            // Exit-path variants: the receiver's change is scoped to the
            // requesting (exiting) process, so killing the requester cleans
            // it — policies supporting §VII's reconciliation keep the
            // window open.
            VmFreeSelf { .. } | VfsCleanupSelf { .. } => {
                SeepMeta::notification(SeepClass::RequesterScoped)
            }
            // Trace-only notification: the receiver's handler is state-free.
            Announce { .. } => SeepMeta::notification(SeepClass::NonStateModifying),
            // Kernel/timer notifications (no sender window to consider).
            CrashNotify { .. }
            | KillRequester { .. }
            | HeartbeatTick
            | RecoveryTick { .. }
            | DiskTick { .. }
            | SleepTick { .. } => SeepMeta::notification(SeepClass::NonStateModifying),
        }
    }

    fn crash_reply() -> Self {
        OsMsg::RCrash
    }

    fn crash_notify(target: u8) -> Self {
        OsMsg::CrashNotify { target }
    }

    fn kill_requester(pid: Pid) -> Self {
        OsMsg::KillRequester { pid }
    }

    fn as_user_reply(&self) -> Option<SysReply> {
        match self {
            OsMsg::UserReply(r) => Some(r.clone()),
            _ => None,
        }
    }

    fn label(&self) -> &'static str {
        use OsMsg::*;
        match self {
            User { .. } => "user",
            UserReply(_) => "user_reply",
            VmFork { .. } => "vm_fork",
            VmExecReset { .. } => "vm_exec_reset",
            VmFree { .. } => "vm_free",
            VmFreeSelf { .. } => "vm_free_self",
            VmUsage { .. } => "vm_usage",
            VfsExecLoad { .. } => "vfs_exec_load",
            VfsCleanup { .. } => "vfs_cleanup",
            VfsCleanupSelf { .. } => "vfs_cleanup_self",
            VfsForkDup { .. } => "vfs_fork_dup",
            DiskRead { .. } => "disk_read",
            DiskWrite { .. } => "disk_write",
            ROk => "r_ok",
            RVal(_) => "r_val",
            RData(_) => "r_data",
            RErr(_) => "r_err",
            RCrash => "r_crash",
            Announce { .. } => "announce",
            StatusPublish { .. } => "status_publish",
            QuarantinePublish { .. } => "quarantine_publish",
            IntentPublish { .. } => "intent_publish",
            Ping => "ping",
            Pong => "pong",
            CrashNotify { .. } => "crash_notify",
            KillRequester { .. } => "kill_requester",
            HeartbeatTick => "heartbeat_tick",
            RecoveryTick { .. } => "recovery_tick",
            DiskTick { .. } => "disk_tick",
            SleepTick { .. } => "sleep_tick",
        }
    }

    /// Reply-integrity digest: an FNV-1a fold over the variant label and the
    /// payload bytes that matter to the requester's continuation. Covers the
    /// reply variants (the only payloads the integrity check inspects) and
    /// stays allocation-free — scalars fold as little-endian bytes, byte
    /// payloads fold as-is.
    fn digest(&self) -> u64 {
        use osiris_axiom::{fnv1a, fnv1a_str};
        use OsMsg::*;
        let seed = fnv1a_str(self.label());
        match self {
            RVal(v) => fnv1a(seed, &v.to_le_bytes()),
            RData(bytes) => fnv1a(seed, bytes),
            RErr(e) => fnv1a(seed, &[*e as u8]),
            UserReply(r) => {
                let tag = |h, t: u8| fnv1a(h, &[t]);
                match r {
                    SysReply::Ok => tag(seed, 0),
                    SysReply::Val(v) => fnv1a(tag(seed, 1), &v.to_le_bytes()),
                    SysReply::Proc(p) => fnv1a(tag(seed, 2), &p.0.to_le_bytes()),
                    SysReply::Desc(fd) => fnv1a(tag(seed, 3), &fd.0.to_le_bytes()),
                    SysReply::TwoDesc(a, b) => {
                        let h = fnv1a(tag(seed, 4), &a.0.to_le_bytes());
                        fnv1a(h, &b.0.to_le_bytes())
                    }
                    SysReply::Data(bytes) => fnv1a(tag(seed, 5), bytes),
                    SysReply::Names(names) => names
                        .iter()
                        .fold(tag(seed, 6), |h, n| fnv1a(fnv1a_str(n), &h.to_le_bytes())),
                    SysReply::StatInfo(s) => {
                        let h = fnv1a(tag(seed, 7), &s.size.to_le_bytes());
                        let h = fnv1a(h, &[s.is_dir as u8]);
                        fnv1a(h, &s.nlink.to_le_bytes())
                    }
                    SysReply::Exited(p, code) => {
                        let h = fnv1a(tag(seed, 8), &p.0.to_le_bytes());
                        fnv1a(h, &code.to_le_bytes())
                    }
                    SysReply::Signals(sigs) => {
                        sigs.iter().fold(tag(seed, 9), |h, s| fnv1a(h, &[*s as u8]))
                    }
                    SysReply::Err(e) => fnv1a(tag(seed, 10), &[*e as u8]),
                }
            }
            // Non-reply payloads (and the bodyless replies ROk/RCrash/Pong)
            // are covered by the label seed alone.
            _ => seed,
        }
    }
}

/// Converts a reply payload into a `Result` for continuation code.
pub fn reply_result(msg: &OsMsg) -> Result<&OsMsg, Errno> {
    match msg {
        OsMsg::RErr(e) => Err(*e),
        OsMsg::RCrash => Err(Errno::ECRASH),
        other => Ok(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osiris_core::MessageKind;

    #[test]
    fn read_only_queries_are_non_state_modifying() {
        assert_eq!(
            OsMsg::VmUsage { pid: Pid(1) }.seep().class,
            SeepClass::NonStateModifying
        );
        assert_eq!(
            OsMsg::VfsExecLoad {
                pid: Pid(1),
                prog: "sh".into()
            }
            .seep()
            .class,
            SeepClass::NonStateModifying
        );
        assert_eq!(OsMsg::Ping.seep().class, SeepClass::NonStateModifying);
        assert_eq!(
            OsMsg::Announce { key: "k".into() }.seep().class,
            SeepClass::NonStateModifying
        );
    }

    #[test]
    fn read_only_user_syscalls_are_idempotent() {
        use osiris_kernel::abi::Syscall;
        // Idempotent queries: the watchdog may re-drive these after a
        // lost reply without risking duplicated effects.
        for call in [
            Syscall::GetPid,
            Syscall::VmStat,
            Syscall::Stat { path: "/".into() },
            Syscall::DsGet { key: "k".into() },
            Syscall::DsList { prefix: "".into() },
        ] {
            let seep = OsMsg::User { pid: Pid(1), call }.seep();
            assert_eq!(seep.class, SeepClass::NonStateModifying);
            assert!(seep.bounded);
        }
        // Effectful or fetch-and-clear calls stay state-modifying.
        for call in [
            Syscall::DsPut {
                key: "k".into(),
                value: vec![1],
            },
            Syscall::SigPending,
            Syscall::Seek {
                fd: osiris_kernel::abi::Fd(0),
                from: osiris_kernel::abi::SeekFrom::Start(0),
            },
        ] {
            let seep = OsMsg::User { pid: Pid(1), call }.seep();
            assert_eq!(seep.class, SeepClass::StateModifying);
        }
    }

    #[test]
    fn mutating_requests_are_state_modifying() {
        for m in [
            OsMsg::VmFork {
                parent: Pid(1),
                child: Pid(2),
            },
            OsMsg::VmExecReset { pid: Pid(1) },
            OsMsg::DiskRead { block: 0 },
            OsMsg::DiskWrite {
                block: 0,
                data: vec![],
            },
        ] {
            assert_eq!(m.seep().class, SeepClass::StateModifying, "{}", m.label());
            assert_eq!(m.seep().kind, MessageKind::Request);
        }
    }

    #[test]
    fn replies_are_conservative() {
        for m in [
            OsMsg::ROk,
            OsMsg::RVal(0),
            OsMsg::RErr(Errno::EIO),
            OsMsg::RCrash,
            OsMsg::Pong,
        ] {
            assert_eq!(m.seep().kind, MessageKind::Reply, "{}", m.label());
            assert_eq!(m.seep().class, SeepClass::StateModifying, "{}", m.label());
        }
    }

    #[test]
    fn crash_constructors() {
        assert!(matches!(OsMsg::crash_reply(), OsMsg::RCrash));
        assert!(matches!(
            OsMsg::crash_notify(3),
            OsMsg::CrashNotify { target: 3 }
        ));
        assert!(matches!(
            OsMsg::kill_requester(Pid(9)),
            OsMsg::KillRequester { pid: Pid(9) }
        ));
    }

    #[test]
    fn exit_requests_cannot_be_error_replied() {
        let seep = OsMsg::User {
            pid: Pid(2),
            call: osiris_kernel::abi::Syscall::Exit { code: 0 },
        }
        .seep();
        assert_eq!(seep.kind, MessageKind::Request);
        assert!(!seep.reply_possible, "exit is one-way");
    }

    #[test]
    fn exit_path_releases_are_requester_scoped() {
        for m in [
            OsMsg::VmFreeSelf { pid: Pid(1) },
            OsMsg::VfsCleanupSelf { pid: Pid(1) },
        ] {
            assert_eq!(m.seep().class, SeepClass::RequesterScoped, "{}", m.label());
            // Scoped messages still count as state-modifying for plain
            // policies (conservative default).
            assert!(m.seep().class.is_state_modifying());
        }
        // The kill-path variants stay plain state-modifying.
        for m in [
            OsMsg::VmFree { pid: Pid(1) },
            OsMsg::VfsCleanup { pid: Pid(1) },
        ] {
            assert_eq!(m.seep().class, SeepClass::StateModifying, "{}", m.label());
        }
    }

    #[test]
    fn escalation_messages_classified() {
        let tick = OsMsg::RecoveryTick { target: 3 }.seep();
        assert_eq!(tick.kind, MessageKind::Notification);
        assert_eq!(tick.class, SeepClass::NonStateModifying);
        let publish = OsMsg::QuarantinePublish { target: 3 }.seep();
        assert_eq!(publish.kind, MessageKind::Notification);
        assert_eq!(publish.class, SeepClass::StateModifying);
    }

    #[test]
    fn reply_result_maps_errors() {
        assert_eq!(
            reply_result(&OsMsg::RErr(Errno::EIO)).unwrap_err(),
            Errno::EIO
        );
        assert_eq!(reply_result(&OsMsg::RCrash).unwrap_err(), Errno::ECRASH);
        assert!(reply_result(&OsMsg::ROk).is_ok());
    }

    #[test]
    fn blocking_syscalls_are_unbounded() {
        use osiris_kernel::abi::Syscall;
        for call in [
            Syscall::WaitPid { pid: Pid(1) },
            Syscall::WaitAny,
            Syscall::Sleep { ticks: 5 },
            Syscall::Read {
                fd: osiris_kernel::abi::Fd(0),
                len: 16,
            },
        ] {
            let seep = OsMsg::User { pid: Pid(1), call }.seep();
            assert!(!seep.bounded, "blocking calls must not arm a deadline");
            assert!(seep.reply_possible);
        }
        // Ordinary requests stay bounded.
        assert!(OsMsg::VmUsage { pid: Pid(1) }.seep().bounded);
        assert!(OsMsg::DiskRead { block: 0 }.seep().bounded);
    }

    #[test]
    fn digests_distinguish_reply_payloads() {
        // Different payloads of the same variant differ…
        assert_ne!(OsMsg::RVal(1).digest(), OsMsg::RVal(2).digest());
        assert_ne!(
            OsMsg::RData(vec![1, 2]).digest(),
            OsMsg::RData(vec![1, 3]).digest()
        );
        assert_ne!(
            OsMsg::UserReply(SysReply::Val(7)).digest(),
            OsMsg::UserReply(SysReply::Val(8)).digest()
        );
        assert_ne!(
            OsMsg::UserReply(SysReply::Err(Errno::EIO)).digest(),
            OsMsg::UserReply(SysReply::Err(Errno::ENOENT)).digest()
        );
        // …different variants differ…
        assert_ne!(OsMsg::ROk.digest(), OsMsg::RCrash.digest());
        assert_ne!(
            OsMsg::RVal(0).digest(),
            OsMsg::UserReply(SysReply::Val(0)).digest()
        );
        // …and equal payloads agree (the property the integrity check uses).
        assert_eq!(
            OsMsg::RData(vec![9; 32]).digest(),
            OsMsg::RData(vec![9; 32]).digest()
        );
    }

    #[test]
    fn user_reply_projection() {
        assert_eq!(
            OsMsg::UserReply(SysReply::Ok).as_user_reply(),
            Some(SysReply::Ok)
        );
        assert_eq!(OsMsg::Ping.as_user_reply(), None);
    }
}
