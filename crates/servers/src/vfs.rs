//! VFS — the Virtual Filesystem Server.
//!
//! Provides files, directories and pipes over an in-memory filesystem whose
//! data blocks live on the simulated disk, with a write-back block cache in
//! between. VFS is **multithreaded** using the cooperative thread library
//! (paper §IV-E, §V): an operation that misses the cache parks its
//! cooperative thread while the disk request is in flight, letting other
//! requests proceed. A thread yield forcibly closes the recovery window;
//! cache-hit paths complete without yielding and remain fully recoverable.
//!
//! Operations are written in a *retry* style: a continuation re-executes its
//! ensure-cached walk on every resume and only commits (mutates offsets,
//! sizes, cache contents) once everything it needs is resident. A crash
//! anywhere before commit therefore rolls back to a state where the request
//! simply never happened.

use std::collections::BTreeMap;

use osiris_checkpoint::{Heap, PCell, PMap, PVec};
use osiris_cothread::{CoPool, ThreadId};
use osiris_kernel::abi::{Errno, Fd, FileStat, OpenFlags, Pid, SeekFrom, SysReply, Syscall};
use osiris_kernel::{Ctx, Message, Protocol, ReturnPath, Server};

use crate::disk::BLOCK_SIZE;
use crate::proto::OsMsg;
use crate::topology::Topology;

/// Maximum descriptors per process.
pub const MAX_FDS: u32 = 64;
/// Maximum bytes per read/write call (keeps one operation's block set well
/// under the cache capacity).
pub const MAX_IO: u32 = 16 * BLOCK_SIZE as u32;
/// Root directory inode number.
pub const ROOT_INO: u64 = 1;
/// Disk-block range where program binaries live (exec pseudo-blocks).
const EXEC_BASE: u64 = 1_000_000;
/// First disk block available for file data.
const DATA_BASE: u64 = 2_000_000;

fn fnv(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum InodeKind {
    File { size: u64 },
    Dir { entries: BTreeMap<String, u64> },
}

#[derive(Clone, Debug)]
struct Inode {
    kind: InodeKind,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum OpenTarget {
    File { ino: u64 },
    PipeR { id: u32 },
    PipeW { id: u32 },
}

#[derive(Clone, Debug)]
struct OpenFile {
    target: OpenTarget,
    offset: u64,
    flags: OpenFlags,
    refs: u32,
}

#[derive(Clone, Debug)]
struct BlockedRead {
    pid: u32,
    rp: ReturnPath,
    len: u32,
}

#[derive(Clone, Debug)]
struct Pipe {
    buf: Vec<u8>,
    readers: u32,
    writers: u32,
    waiting: Vec<BlockedRead>,
}

#[derive(Clone, Debug)]
struct CacheBlock {
    data: Vec<u8>,
    dirty: bool,
    stamp: u64,
}

/// Cooperative-thread continuations (stored in the heap; see module docs).
#[derive(Clone, Debug)]
enum VfsCont {
    Read {
        slot: u32,
        rp: ReturnPath,
        len: u32,
    },
    Write {
        slot: u32,
        rp: ReturnPath,
        data: Vec<u8>,
    },
    ExecLoad {
        rp: ReturnPath,
        block: u64,
    },
    Fsync {
        rp: ReturnPath,
        ino: u64,
        remaining: u32,
    },
}

/// Result of driving a continuation one step.
enum Step {
    Done,
    Need { block: u64, cont: VfsCont },
}

#[derive(Clone, Copy, Debug)]
struct Handles {
    /// Served-event statistics, updated after replying (deferred
    /// bookkeeping outside the recovery window).
    ops: PCell<u64>,
    stats: PMap<&'static str, u64>,
    last_event: PCell<u64>,
    inodes: PMap<u64, Inode>,
    next_ino: PCell<u64>,
    /// (inode, block index within file) → disk block.
    file_blocks: PMap<(u64, u64), u64>,
    next_block: PCell<u64>,
    free_blocks: PVec<u64>,
    cache: PMap<u64, CacheBlock>,
    cache_stamp: PCell<u64>,
    oft: PMap<u32, OpenFile>,
    next_slot: PCell<u32>,
    /// (pid, fd) → open-file slot.
    fds: PMap<(u32, u32), u32>,
    pipes: PMap<u32, Pipe>,
    next_pipe: PCell<u32>,
    pool: CoPool<VfsCont>,
    /// Outstanding disk request id → (thread, block or 0 for fsync acks).
    disk_waits: PMap<u64, (u32, u64)>,
    backlog: PVec<VfsCont>,
}

/// The Virtual Filesystem Server.
#[derive(Clone, Debug)]
pub struct VfsServer {
    topo: Topology,
    cache_cap: usize,
    threads: u32,
    h: Option<Handles>,
}

impl VfsServer {
    /// Creates a VFS with the given block-cache capacity and cooperative
    /// thread count.
    pub fn new(topo: Topology, cache_cap: usize, threads: u32) -> Self {
        VfsServer {
            topo,
            cache_cap,
            threads,
            h: None,
        }
    }

    fn h(&self) -> Handles {
        self.h.expect("VFS used before init")
    }

    // ------------------------------------------------------------------
    // Block / cache helpers
    // ------------------------------------------------------------------

    fn alloc_block(&self, ctx: &mut Ctx<'_, OsMsg>) -> u64 {
        let h = self.h();
        if let Some(b) = h.free_blocks.pop(ctx.heap()) {
            return b;
        }
        let b = h.next_block.get(ctx.heap_ref());
        h.next_block.set(ctx.heap(), b + 1);
        b
    }

    /// Inserts `data` for `block` into the cache (evicting if over
    /// capacity) with the given dirty flag.
    fn cache_insert(&self, block: u64, data: Vec<u8>, dirty: bool, ctx: &mut Ctx<'_, OsMsg>) {
        let h = self.h();
        if !h.cache.contains_key(ctx.heap_ref(), &block)
            && h.cache.len(ctx.heap_ref()) >= self.cache_cap
        {
            self.evict_one(ctx);
        }
        let stamp = h.cache_stamp.get(ctx.heap_ref());
        h.cache_stamp.set(ctx.heap(), stamp + 1);
        h.cache
            .insert(ctx.heap(), block, CacheBlock { data, dirty, stamp });
    }

    /// Evicts the oldest block (FIFO by insertion stamp). A dirty victim is
    /// written back to disk first (fire and forget). Stamp order guarantees
    /// a freshly fetched block is never the victim, so multi-block
    /// operations cannot livelock against their own evictions.
    fn evict_one(&self, ctx: &mut Ctx<'_, OsMsg>) {
        let h = self.h();
        let mut oldest: Option<(u64, u64)> = None; // (stamp, block)
        h.cache.for_each(ctx.heap_ref(), |b, c| {
            let older = match oldest {
                Some((s, _)) => c.stamp < s,
                None => true,
            };
            if older {
                oldest = Some((c.stamp, *b));
            }
        });
        ctx.site("vfs.cache.evict");
        if let Some((_, b)) = oldest {
            let victim = h.cache.remove(ctx.heap(), &b).expect("victim just seen");
            if victim.dirty {
                // The write travels with the message; no thread waits for it.
                ctx.send_request(
                    self.topo.disk,
                    OsMsg::DiskWrite {
                        block: b,
                        data: victim.data,
                    },
                );
            }
        }
    }

    fn cached(&self, block: u64, heap: &Heap) -> Option<Vec<u8>> {
        self.h().cache.get(heap, &block).map(|c| c.data)
    }

    // ------------------------------------------------------------------
    // Path resolution
    // ------------------------------------------------------------------

    /// Resolves `path` to `(parent_ino, leaf_name, Option<leaf_ino>)`.
    fn resolve(&self, path: &str, heap: &Heap) -> Result<(u64, String, Option<u64>), Errno> {
        let h = self.h();
        if !path.starts_with('/') || path.len() > 512 {
            return Err(Errno::EINVAL);
        }
        let parts: Vec<&str> = path.split('/').filter(|p| !p.is_empty()).collect();
        if parts.is_empty() {
            // The root itself: parent is root, no leaf.
            return Ok((ROOT_INO, String::new(), Some(ROOT_INO)));
        }
        let mut dir = ROOT_INO;
        for part in &parts[..parts.len() - 1] {
            let node = h.inodes.get(heap, &dir).ok_or(Errno::ENOENT)?;
            match node.kind {
                InodeKind::Dir { ref entries } => {
                    dir = *entries.get(*part).ok_or(Errno::ENOENT)?;
                }
                InodeKind::File { .. } => return Err(Errno::ENOTDIR),
            }
        }
        let leaf = parts[parts.len() - 1].to_string();
        let node = h.inodes.get(heap, &dir).ok_or(Errno::ENOENT)?;
        match node.kind {
            InodeKind::Dir { ref entries } => {
                let ino = entries.get(&leaf).copied();
                Ok((dir, leaf, ino))
            }
            InodeKind::File { .. } => Err(Errno::ENOTDIR),
        }
    }

    fn file_size(&self, ino: u64, heap: &Heap) -> Option<u64> {
        match self.h().inodes.get(heap, &ino)?.kind {
            InodeKind::File { size } => Some(size),
            InodeKind::Dir { .. } => None,
        }
    }

    /// Frees all data blocks of `ino` (cache entries included).
    fn free_file_blocks(&self, ino: u64, ctx: &mut Ctx<'_, OsMsg>) {
        let h = self.h();
        let keys: Vec<(u64, u64)> = h.file_blocks.with_map(ctx.heap_ref(), |m| {
            m.range((ino, 0)..(ino + 1, 0)).map(|(k, _)| *k).collect()
        });
        for k in keys {
            if let Some(block) = h.file_blocks.remove(ctx.heap(), &k) {
                h.cache.remove(ctx.heap(), &block);
                h.free_blocks.push(ctx.heap(), block);
            }
        }
    }

    // ------------------------------------------------------------------
    // Descriptor helpers
    // ------------------------------------------------------------------

    fn alloc_fd(&self, pid: u32, ctx: &mut Ctx<'_, OsMsg>) -> Option<u32> {
        let h = self.h();
        (0..MAX_FDS).find(|fd| !h.fds.contains_key(ctx.heap_ref(), &(pid, *fd)))
    }

    fn slot_of(&self, pid: u32, fd: Fd, heap: &Heap) -> Option<(u32, OpenFile)> {
        let h = self.h();
        let slot = h.fds.get(heap, &(pid, fd.0))?;
        let of = h.oft.get(heap, &slot)?;
        Some((slot, of))
    }

    fn install_fd(
        &self,
        pid: u32,
        target: OpenTarget,
        flags: OpenFlags,
        ctx: &mut Ctx<'_, OsMsg>,
    ) -> Option<u32> {
        let h = self.h();
        let fd = self.alloc_fd(pid, ctx)?;
        let slot = h.next_slot.get(ctx.heap_ref());
        h.next_slot.set(ctx.heap(), slot + 1);
        h.oft.insert(
            ctx.heap(),
            slot,
            OpenFile {
                target,
                offset: 0,
                flags,
                refs: 1,
            },
        );
        h.fds.insert(ctx.heap(), (pid, fd), slot);
        Some(fd)
    }

    // ------------------------------------------------------------------
    // Continuation engine
    // ------------------------------------------------------------------

    /// Drives `cont` one step: completes it (replying) or reports the disk
    /// block it needs next.
    fn step(&self, cont: VfsCont, ctx: &mut Ctx<'_, OsMsg>) -> Step {
        match cont {
            VfsCont::Read { slot, rp, len } => self.step_read(slot, rp, len, ctx),
            VfsCont::Write { slot, rp, data } => self.step_write(slot, rp, data, ctx),
            VfsCont::ExecLoad { rp, block } => {
                ctx.site("vfs.exec.step");
                if self.h().cache.contains_key(ctx.heap_ref(), &block) {
                    ctx.reply(rp, OsMsg::ROk);
                    Step::Done
                } else {
                    Step::Need {
                        block,
                        cont: VfsCont::ExecLoad { rp, block },
                    }
                }
            }
            VfsCont::Fsync { .. } => unreachable!("fsync is driven by its own path"),
        }
    }

    fn step_read(&self, slot: u32, rp: ReturnPath, len: u32, ctx: &mut Ctx<'_, OsMsg>) -> Step {
        let h = self.h();
        ctx.site("vfs.read.step");
        let Some(of) = h.oft.get(ctx.heap_ref(), &slot) else {
            ctx.reply(rp, OsMsg::UserReply(SysReply::Err(Errno::EBADF)));
            return Step::Done;
        };
        let OpenTarget::File { ino } = of.target else {
            ctx.reply(rp, OsMsg::UserReply(SysReply::Err(Errno::EBADF)));
            return Step::Done;
        };
        let Some(size) = self.file_size(ino, ctx.heap_ref()) else {
            ctx.reply(rp, OsMsg::UserReply(SysReply::Err(Errno::EIO)));
            return Step::Done;
        };
        let off = of.offset;
        if off >= size || len == 0 {
            ctx.reply(rp, OsMsg::UserReply(SysReply::Data(Vec::new())));
            return Step::Done;
        }
        // Value probe: a fail-silent fault here perturbs the effective
        // read length (an off-by-N bug), silently returning wrong data.
        let n = ctx
            .site_val("vfs.read.len", u64::from(len).min(size - off))
            .min(size - off)
            .max(1);
        let b0 = off / BLOCK_SIZE as u64;
        let b1 = (off + n - 1) / BLOCK_SIZE as u64;
        // Ensure phase: every mapped block must be cached.
        for idx in b0..=b1 {
            if let Some(block) = h.file_blocks.get(ctx.heap_ref(), &(ino, idx)) {
                if !h.cache.contains_key(ctx.heap_ref(), &block) {
                    return Step::Need {
                        block,
                        cont: VfsCont::Read { slot, rp, len },
                    };
                }
            }
        }
        ctx.site("vfs.read.assemble");
        // Commit phase: assemble and advance the offset.
        let mut data = Vec::with_capacity(n as usize);
        for idx in b0..=b1 {
            let chunk_start = (idx * BLOCK_SIZE as u64).max(off);
            let chunk_end = ((idx + 1) * BLOCK_SIZE as u64).min(off + n);
            let s = (chunk_start % BLOCK_SIZE as u64) as usize;
            let e = s + (chunk_end - chunk_start) as usize;
            match h.file_blocks.get(ctx.heap_ref(), &(ino, idx)) {
                Some(block) => {
                    let bytes = self.cached(block, ctx.heap_ref()).expect("ensured above");
                    data.extend_from_slice(&bytes[s..e]);
                }
                None => data.extend(std::iter::repeat_n(0u8, e - s)),
            }
        }
        h.oft.update(ctx.heap(), &slot, |f| f.offset = off + n);
        ctx.charge(n / 8);
        ctx.reply(rp, OsMsg::UserReply(SysReply::Data(data)));
        Step::Done
    }

    fn step_write(
        &self,
        slot: u32,
        rp: ReturnPath,
        data: Vec<u8>,
        ctx: &mut Ctx<'_, OsMsg>,
    ) -> Step {
        let h = self.h();
        ctx.site("vfs.write.step");
        let Some(of) = h.oft.get(ctx.heap_ref(), &slot) else {
            ctx.reply(rp, OsMsg::UserReply(SysReply::Err(Errno::EBADF)));
            return Step::Done;
        };
        let OpenTarget::File { ino } = of.target else {
            ctx.reply(rp, OsMsg::UserReply(SysReply::Err(Errno::EBADF)));
            return Step::Done;
        };
        if !of.flags.write {
            ctx.reply(rp, OsMsg::UserReply(SysReply::Err(Errno::EBADF)));
            return Step::Done;
        }
        let Some(size) = self.file_size(ino, ctx.heap_ref()) else {
            ctx.reply(rp, OsMsg::UserReply(SysReply::Err(Errno::EIO)));
            return Step::Done;
        };
        let off = if of.flags.append { size } else { of.offset };
        let n = data.len() as u64;
        if n == 0 {
            ctx.reply(rp, OsMsg::UserReply(SysReply::Val(0)));
            return Step::Done;
        }
        let end = off + n;
        let b0 = off / BLOCK_SIZE as u64;
        let b1 = (end - 1) / BLOCK_SIZE as u64;
        // Ensure phase: partially-overwritten mapped blocks must be cached
        // (read-modify-write needs their current contents).
        for idx in b0..=b1 {
            let block_start = idx * BLOCK_SIZE as u64;
            let block_end = block_start + BLOCK_SIZE as u64;
            let fully_covered = off <= block_start && end >= block_end;
            if fully_covered {
                continue;
            }
            if let Some(block) = h.file_blocks.get(ctx.heap_ref(), &(ino, idx)) {
                if !h.cache.contains_key(ctx.heap_ref(), &block) {
                    return Step::Need {
                        block,
                        cont: VfsCont::Write { slot, rp, data },
                    };
                }
            }
        }
        ctx.site("vfs.write.commit");
        // Commit phase.
        for idx in b0..=b1 {
            // A fault mid-commit tears the file: earlier blocks committed,
            // later ones and the size not yet updated. Only rollback-based
            // recovery undoes this.
            if idx > b0 && idx == b1 {
                ctx.site("vfs.write.block");
            }
            let block = match h.file_blocks.get(ctx.heap_ref(), &(ino, idx)) {
                Some(b) => b,
                None => {
                    let b = self.alloc_block(ctx);
                    h.file_blocks.insert(ctx.heap(), (ino, idx), b);
                    b
                }
            };
            let mut bytes = self
                .cached(block, ctx.heap_ref())
                .unwrap_or_else(|| vec![0u8; BLOCK_SIZE]);
            bytes.resize(BLOCK_SIZE, 0);
            let block_start = idx * BLOCK_SIZE as u64;
            let s = off.max(block_start);
            let e = end.min(block_start + BLOCK_SIZE as u64);
            let src_s = (s - off) as usize;
            let src_e = (e - off) as usize;
            let dst_s = (s - block_start) as usize;
            let dst_e = (e - block_start) as usize;
            bytes[dst_s..dst_e].copy_from_slice(&data[src_s..src_e]);
            self.cache_insert(block, bytes, true, ctx);
        }
        if end > size {
            h.inodes.update(ctx.heap(), &ino, |node| {
                if let InodeKind::File { size } = &mut node.kind {
                    *size = end;
                }
            });
        }
        h.oft.update(ctx.heap(), &slot, |f| f.offset = end);
        ctx.charge(n / 8);
        ctx.reply(rp, OsMsg::UserReply(SysReply::Val(n as i64)));
        Step::Done
    }

    /// Runs a fresh continuation: completes inline on cache hits, otherwise
    /// parks it on a cooperative thread (or the backlog if all threads are
    /// busy).
    fn run_or_park(&self, cont: VfsCont, ctx: &mut Ctx<'_, OsMsg>) {
        if let VfsCont::Fsync { rp, ino, .. } = cont {
            // Backlogged fsyncs restart from scratch (the dirty set may have
            // changed while queued).
            self.fsync_start(ino, rp, ctx);
            return;
        }
        match self.step(cont, ctx) {
            Step::Done => {}
            Step::Need { block, cont } => self.park(block, cont, ctx),
        }
    }

    fn park(&self, block: u64, cont: VfsCont, ctx: &mut Ctx<'_, OsMsg>) {
        let h = self.h();
        match h.pool.activate(ctx.heap()) {
            Some(tid) => {
                ctx.site("vfs.thread.park");
                let id = ctx.send_request(self.topo.disk, OsMsg::DiskRead { block });
                h.disk_waits.insert(ctx.heap(), id.0, (tid.0, block));
                h.pool.yield_blocked(ctx.heap(), tid, cont);
                // Paper §IV-E: yielding forcibly closes the recovery window.
                ctx.yield_window();
            }
            None => {
                ctx.site("vfs.thread.backlog");
                h.backlog.push(ctx.heap(), cont);
            }
        }
    }

    /// A disk reply arrived for the request `request_id`.
    fn disk_reply(&self, request_id: u64, payload: &OsMsg, ctx: &mut Ctx<'_, OsMsg>) {
        let h = self.h();
        let Some((tid, block)) = h.disk_waits.remove(ctx.heap(), &request_id) else {
            // An eviction write-back ack, or a rolled-back transaction.
            return;
        };
        ctx.site("vfs.disk.reply");
        let failure = match payload {
            OsMsg::RData(data) => {
                if block != 0 {
                    self.cache_insert(block, data.clone(), false, ctx);
                }
                None
            }
            OsMsg::ROk => None,
            OsMsg::RErr(_) => Some(Errno::EIO),
            OsMsg::RCrash => Some(Errno::EIO),
            _ => None,
        };
        let Some(cont) = h.pool.resume(ctx.heap(), ThreadId(tid)) else {
            // Thread was cleaned up by recovery; drop the data (it is safely
            // cached) and move on.
            return;
        };
        if let Some(e) = failure {
            let rp = match &cont {
                VfsCont::Read { rp, .. }
                | VfsCont::Write { rp, .. }
                | VfsCont::Fsync { rp, .. } => *rp,
                VfsCont::ExecLoad { rp, .. } => {
                    let rp = *rp;
                    self.finish_thread(ThreadId(tid), ctx);
                    ctx.reply(rp, OsMsg::RErr(e));
                    return;
                }
            };
            self.finish_thread(ThreadId(tid), ctx);
            ctx.reply(rp, OsMsg::UserReply(SysReply::Err(e)));
            return;
        }
        match cont {
            VfsCont::Fsync { rp, ino, remaining } => {
                let remaining = remaining.saturating_sub(1);
                if remaining == 0 {
                    self.finish_thread(ThreadId(tid), ctx);
                    ctx.reply(rp, OsMsg::UserReply(SysReply::Ok));
                } else {
                    self.h().pool.yield_blocked(
                        ctx.heap(),
                        ThreadId(tid),
                        VfsCont::Fsync { rp, ino, remaining },
                    );
                    ctx.yield_window();
                }
            }
            other => match self.step(other, ctx) {
                Step::Done => self.finish_thread(ThreadId(tid), ctx),
                Step::Need { block, cont } => {
                    let id = ctx.send_request(self.topo.disk, OsMsg::DiskRead { block });
                    self.h().disk_waits.insert(ctx.heap(), id.0, (tid, block));
                    self.h().pool.yield_blocked(ctx.heap(), ThreadId(tid), cont);
                    ctx.yield_window();
                }
            },
        }
    }

    fn finish_thread(&self, tid: ThreadId, ctx: &mut Ctx<'_, OsMsg>) {
        let h = self.h();
        h.pool.finish(ctx.heap(), tid);
        // A thread freed up: give the oldest backlogged operation a chance.
        if !h.backlog.is_empty(ctx.heap_ref()) {
            let cont = h.backlog.get(ctx.heap_ref(), 0).expect("nonempty");
            // Remove index 0 by rebuilding the tail (backlogs are short).
            let rest: Vec<VfsCont> = {
                let all = h.backlog.snapshot(ctx.heap_ref());
                all[1..].to_vec()
            };
            h.backlog.clear(ctx.heap());
            for c in rest {
                h.backlog.push(ctx.heap(), c);
            }
            self.run_or_park(cont, ctx);
        }
    }

    // ------------------------------------------------------------------
    // Inline operations
    // ------------------------------------------------------------------

    fn open(
        &self,
        pid: Pid,
        path: &str,
        flags: OpenFlags,
        rp: ReturnPath,
        ctx: &mut Ctx<'_, OsMsg>,
    ) {
        let h = self.h();
        ctx.site("vfs.open.entry");
        let (parent, leaf, ino) = match self.resolve(path, ctx.heap_ref()) {
            Ok(r) => r,
            Err(e) => {
                ctx.reply(rp, OsMsg::UserReply(SysReply::Err(e)));
                return;
            }
        };
        let ino = match ino {
            Some(i) => {
                let node = h
                    .inodes
                    .get(ctx.heap_ref(), &i)
                    .expect("resolved inode exists");
                if matches!(node.kind, InodeKind::Dir { .. }) {
                    ctx.reply(rp, OsMsg::UserReply(SysReply::Err(Errno::EISDIR)));
                    return;
                }
                if flags.truncate {
                    ctx.site("vfs.open.truncate");
                    self.free_file_blocks(i, ctx);
                    h.inodes
                        .update(ctx.heap(), &i, |n| n.kind = InodeKind::File { size: 0 });
                }
                i
            }
            None => {
                if !ctx.site_branch("vfs.open.create", flags.create) {
                    ctx.reply(rp, OsMsg::UserReply(SysReply::Err(Errno::ENOENT)));
                    return;
                }
                let i = h.next_ino.get(ctx.heap_ref());
                h.next_ino.set(ctx.heap(), i + 1);
                h.inodes.insert(
                    ctx.heap(),
                    i,
                    Inode {
                        kind: InodeKind::File { size: 0 },
                    },
                );
                h.inodes.update(ctx.heap(), &parent, |n| {
                    if let InodeKind::Dir { entries } = &mut n.kind {
                        entries.insert(leaf.clone(), i);
                    }
                });
                ctx.site("vfs.open.created");
                i
            }
        };
        match self.install_fd(pid.0, OpenTarget::File { ino }, flags, ctx) {
            Some(fd) => {
                ctx.site("vfs.open.done");
                ctx.reply(rp, OsMsg::UserReply(SysReply::Desc(Fd(fd))));
            }
            None => ctx.reply(rp, OsMsg::UserReply(SysReply::Err(Errno::EMFILE))),
        }
    }

    /// Close semantics shared by `close`, `cleanup` and pipe teardown.
    ///
    /// Pipe reader/writer counts track *descriptors* (`dup` and fork
    /// inheritance increment them), so every close decrements them — not
    /// just the one that drops the last slot reference.
    fn close_slot(&self, slot: u32, ctx: &mut Ctx<'_, OsMsg>) {
        let h = self.h();
        let Some(of) = h.oft.get(ctx.heap_ref(), &slot) else {
            return;
        };
        match of.target {
            OpenTarget::File { .. } => {}
            OpenTarget::PipeR { id } => {
                h.pipes.update(ctx.heap(), &id, |p| p.readers -= 1);
            }
            OpenTarget::PipeW { id } => {
                let wake = h
                    .pipes
                    .update(ctx.heap(), &id, |p| {
                        p.writers -= 1;
                        if p.writers == 0 {
                            std::mem::take(&mut p.waiting)
                        } else {
                            Vec::new()
                        }
                    })
                    .unwrap_or_default();
                for w in wake {
                    // End of file for every blocked reader.
                    ctx.reply(w.rp, OsMsg::UserReply(SysReply::Data(Vec::new())));
                }
            }
        }
        if let OpenTarget::PipeR { id } | OpenTarget::PipeW { id } = of.target {
            let gone = h
                .pipes
                .with(ctx.heap_ref(), &id, |p| p.readers == 0 && p.writers == 0)
                .unwrap_or(false);
            if gone {
                h.pipes.remove(ctx.heap(), &id);
            }
        }
        if of.refs > 1 {
            h.oft.update(ctx.heap(), &slot, |f| f.refs -= 1);
        } else {
            h.oft.remove(ctx.heap(), &slot);
        }
    }

    fn close(&self, pid: Pid, fd: Fd, rp: ReturnPath, ctx: &mut Ctx<'_, OsMsg>) {
        let h = self.h();
        ctx.site("vfs.close.entry");
        let Some(slot) = h.fds.remove(ctx.heap(), &(pid.0, fd.0)) else {
            ctx.reply(rp, OsMsg::UserReply(SysReply::Err(Errno::EBADF)));
            return;
        };
        self.close_slot(slot, ctx);
        ctx.reply(rp, OsMsg::UserReply(SysReply::Ok));
    }

    fn dup(&self, pid: Pid, fd: Fd, rp: ReturnPath, ctx: &mut Ctx<'_, OsMsg>) {
        let h = self.h();
        ctx.site("vfs.dup.entry");
        let Some((slot, of)) = self.slot_of(pid.0, fd, ctx.heap_ref()) else {
            ctx.reply(rp, OsMsg::UserReply(SysReply::Err(Errno::EBADF)));
            return;
        };
        let Some(newfd) = self.alloc_fd(pid.0, ctx) else {
            ctx.reply(rp, OsMsg::UserReply(SysReply::Err(Errno::EMFILE)));
            return;
        };
        h.oft.update(ctx.heap(), &slot, |f| f.refs += 1);
        match of.target {
            OpenTarget::PipeR { id } => {
                h.pipes.update(ctx.heap(), &id, |p| p.readers += 1);
            }
            OpenTarget::PipeW { id } => {
                h.pipes.update(ctx.heap(), &id, |p| p.writers += 1);
            }
            OpenTarget::File { .. } => {}
        }
        h.fds.insert(ctx.heap(), (pid.0, newfd), slot);
        ctx.reply(rp, OsMsg::UserReply(SysReply::Desc(Fd(newfd))));
    }

    fn mkpipe(&self, pid: Pid, rp: ReturnPath, ctx: &mut Ctx<'_, OsMsg>) {
        let h = self.h();
        ctx.site("vfs.pipe.entry");
        let id = h.next_pipe.get(ctx.heap_ref());
        h.next_pipe.set(ctx.heap(), id + 1);
        h.pipes.insert(
            ctx.heap(),
            id,
            Pipe {
                buf: Vec::new(),
                readers: 1,
                writers: 1,
                waiting: Vec::new(),
            },
        );
        let Some(rfd) = self.install_fd(pid.0, OpenTarget::PipeR { id }, OpenFlags::RDONLY, ctx)
        else {
            h.pipes.remove(ctx.heap(), &id);
            ctx.reply(rp, OsMsg::UserReply(SysReply::Err(Errno::EMFILE)));
            return;
        };
        let wflags = OpenFlags {
            read: false,
            write: true,
            create: false,
            truncate: false,
            append: false,
        };
        let Some(wfd) = self.install_fd(pid.0, OpenTarget::PipeW { id }, wflags, ctx) else {
            // Roll the read end back by hand.
            if let Some(slot) = h.fds.remove(ctx.heap(), &(pid.0, rfd)) {
                h.oft.remove(ctx.heap(), &slot);
            }
            h.pipes.remove(ctx.heap(), &id);
            ctx.reply(rp, OsMsg::UserReply(SysReply::Err(Errno::EMFILE)));
            return;
        };
        ctx.site("vfs.pipe.done");
        ctx.reply(rp, OsMsg::UserReply(SysReply::TwoDesc(Fd(rfd), Fd(wfd))));
    }

    fn pipe_read(&self, pid: Pid, id: u32, len: u32, rp: ReturnPath, ctx: &mut Ctx<'_, OsMsg>) {
        let h = self.h();
        ctx.site("vfs.pipe.read");
        let Some(pipe) = h.pipes.get(ctx.heap_ref(), &id) else {
            ctx.reply(rp, OsMsg::UserReply(SysReply::Err(Errno::EPIPE)));
            return;
        };
        if !pipe.buf.is_empty() {
            let k = (len as usize).min(pipe.buf.len());
            let data = h
                .pipes
                .update(ctx.heap(), &id, |p| p.buf.drain(..k).collect::<Vec<u8>>())
                .unwrap_or_default();
            ctx.reply(rp, OsMsg::UserReply(SysReply::Data(data)));
        } else if ctx.site_branch("vfs.pipe.read_eof", pipe.writers == 0) {
            ctx.reply(rp, OsMsg::UserReply(SysReply::Data(Vec::new())));
        } else {
            h.pipes.update(ctx.heap(), &id, |p| {
                p.waiting.push(BlockedRead {
                    pid: pid.0,
                    rp,
                    len,
                });
            });
            ctx.site("vfs.pipe.read_block");
        }
    }

    fn pipe_write(&self, id: u32, bytes: &[u8], rp: ReturnPath, ctx: &mut Ctx<'_, OsMsg>) {
        let h = self.h();
        ctx.site("vfs.pipe.write");
        let Some(pipe) = h.pipes.get(ctx.heap_ref(), &id) else {
            ctx.reply(rp, OsMsg::UserReply(SysReply::Err(Errno::EPIPE)));
            return;
        };
        if pipe.readers == 0 {
            ctx.reply(rp, OsMsg::UserReply(SysReply::Err(Errno::EPIPE)));
            return;
        }
        // Append, then satisfy blocked readers in arrival order.
        let served: Vec<(ReturnPath, Vec<u8>)> = h
            .pipes
            .update(ctx.heap(), &id, |p| {
                p.buf.extend_from_slice(bytes);
                let mut served = Vec::new();
                while !p.waiting.is_empty() && !p.buf.is_empty() {
                    let w = p.waiting.remove(0);
                    let k = (w.len as usize).min(p.buf.len());
                    let data: Vec<u8> = p.buf.drain(..k).collect();
                    served.push((w.rp, data));
                }
                served
            })
            .unwrap_or_default();
        ctx.charge(bytes.len() as u64 / 8);
        for (wrp, data) in served {
            ctx.reply(wrp, OsMsg::UserReply(SysReply::Data(data)));
        }
        ctx.site("vfs.pipe.write_done");
        ctx.reply(rp, OsMsg::UserReply(SysReply::Val(bytes.len() as i64)));
    }

    fn seek(&self, pid: Pid, fd: Fd, from: SeekFrom, rp: ReturnPath, ctx: &mut Ctx<'_, OsMsg>) {
        let h = self.h();
        ctx.site("vfs.seek.entry");
        let Some((slot, of)) = self.slot_of(pid.0, fd, ctx.heap_ref()) else {
            ctx.reply(rp, OsMsg::UserReply(SysReply::Err(Errno::EBADF)));
            return;
        };
        let OpenTarget::File { ino } = of.target else {
            ctx.reply(rp, OsMsg::UserReply(SysReply::Err(Errno::EPIPE)));
            return;
        };
        let size = self.file_size(ino, ctx.heap_ref()).unwrap_or(0);
        let new: i64 = match from {
            SeekFrom::Start(o) => o as i64,
            SeekFrom::Current(d) => of.offset as i64 + d,
            SeekFrom::End(d) => size as i64 + d,
        };
        if new < 0 {
            ctx.reply(rp, OsMsg::UserReply(SysReply::Err(Errno::EINVAL)));
            return;
        }
        h.oft.update(ctx.heap(), &slot, |f| f.offset = new as u64);
        ctx.reply(rp, OsMsg::UserReply(SysReply::Val(new)));
    }

    fn stat(&self, path: &str, rp: ReturnPath, ctx: &mut Ctx<'_, OsMsg>) {
        let h = self.h();
        ctx.site("vfs.stat.entry");
        match self.resolve(path, ctx.heap_ref()) {
            Ok((_, _, Some(ino))) => {
                let node = h.inodes.get(ctx.heap_ref(), &ino).expect("resolved");
                let st = match node.kind {
                    InodeKind::File { size } => FileStat {
                        size,
                        is_dir: false,
                        nlink: 1,
                    },
                    InodeKind::Dir { ref entries } => FileStat {
                        size: 0,
                        is_dir: true,
                        nlink: entries.len() as u32 + 2,
                    },
                };
                ctx.reply(rp, OsMsg::UserReply(SysReply::StatInfo(st)));
            }
            Ok((_, _, None)) => ctx.reply(rp, OsMsg::UserReply(SysReply::Err(Errno::ENOENT))),
            Err(e) => ctx.reply(rp, OsMsg::UserReply(SysReply::Err(e))),
        }
    }

    fn mkdir(&self, path: &str, rp: ReturnPath, ctx: &mut Ctx<'_, OsMsg>) {
        let h = self.h();
        ctx.site("vfs.mkdir.entry");
        match self.resolve(path, ctx.heap_ref()) {
            Ok((_, _, Some(_))) => ctx.reply(rp, OsMsg::UserReply(SysReply::Err(Errno::EEXIST))),
            Ok((parent, leaf, None)) => {
                let i = h.next_ino.get(ctx.heap_ref());
                h.next_ino.set(ctx.heap(), i + 1);
                h.inodes.insert(
                    ctx.heap(),
                    i,
                    Inode {
                        kind: InodeKind::Dir {
                            entries: BTreeMap::new(),
                        },
                    },
                );
                h.inodes.update(ctx.heap(), &parent, |n| {
                    if let InodeKind::Dir { entries } = &mut n.kind {
                        entries.insert(leaf.clone(), i);
                    }
                });
                ctx.site("vfs.mkdir.done");
                ctx.reply(rp, OsMsg::UserReply(SysReply::Ok));
            }
            Err(e) => ctx.reply(rp, OsMsg::UserReply(SysReply::Err(e))),
        }
    }

    fn readdir(&self, path: &str, rp: ReturnPath, ctx: &mut Ctx<'_, OsMsg>) {
        let h = self.h();
        ctx.site("vfs.readdir.entry");
        match self.resolve(path, ctx.heap_ref()) {
            Ok((_, _, Some(ino))) => {
                let node = h.inodes.get(ctx.heap_ref(), &ino).expect("resolved");
                match node.kind {
                    InodeKind::Dir { ref entries } => {
                        let names: Vec<String> = entries.keys().cloned().collect();
                        ctx.reply(rp, OsMsg::UserReply(SysReply::Names(names)));
                    }
                    InodeKind::File { .. } => {
                        ctx.reply(rp, OsMsg::UserReply(SysReply::Err(Errno::ENOTDIR)))
                    }
                }
            }
            Ok((_, _, None)) => ctx.reply(rp, OsMsg::UserReply(SysReply::Err(Errno::ENOENT))),
            Err(e) => ctx.reply(rp, OsMsg::UserReply(SysReply::Err(e))),
        }
    }

    fn unlink(&self, path: &str, rp: ReturnPath, ctx: &mut Ctx<'_, OsMsg>) {
        let h = self.h();
        ctx.site("vfs.unlink.entry");
        match self.resolve(path, ctx.heap_ref()) {
            Ok((parent, leaf, Some(ino))) => {
                let node = h.inodes.get(ctx.heap_ref(), &ino).expect("resolved");
                if matches!(node.kind, InodeKind::Dir { .. }) {
                    ctx.reply(rp, OsMsg::UserReply(SysReply::Err(Errno::EISDIR)));
                    return;
                }
                // Refuse to unlink files that are still open (keeps the
                // open-file table free of dangling inodes).
                let busy = h
                    .oft
                    .find_key(ctx.heap_ref(), |_, f| f.target == OpenTarget::File { ino })
                    .is_some();
                if ctx.site_branch("vfs.unlink.busy", busy) {
                    ctx.reply(rp, OsMsg::UserReply(SysReply::Err(Errno::EBUSY)));
                    return;
                }
                self.free_file_blocks(ino, ctx);
                h.inodes.remove(ctx.heap(), &ino);
                h.inodes.update(ctx.heap(), &parent, |n| {
                    if let InodeKind::Dir { entries } = &mut n.kind {
                        entries.remove(&leaf);
                    }
                });
                ctx.site("vfs.unlink.done");
                ctx.reply(rp, OsMsg::UserReply(SysReply::Ok));
            }
            Ok((_, _, None)) => ctx.reply(rp, OsMsg::UserReply(SysReply::Err(Errno::ENOENT))),
            Err(e) => ctx.reply(rp, OsMsg::UserReply(SysReply::Err(e))),
        }
    }

    fn rename(&self, from: &str, to: &str, rp: ReturnPath, ctx: &mut Ctx<'_, OsMsg>) {
        let h = self.h();
        ctx.site("vfs.rename.entry");
        let src = match self.resolve(from, ctx.heap_ref()) {
            Ok((p, l, Some(i))) => (p, l, i),
            Ok(_) => {
                ctx.reply(rp, OsMsg::UserReply(SysReply::Err(Errno::ENOENT)));
                return;
            }
            Err(e) => {
                ctx.reply(rp, OsMsg::UserReply(SysReply::Err(e)));
                return;
            }
        };
        let dst = match self.resolve(to, ctx.heap_ref()) {
            Ok((p, l, None)) => (p, l),
            Ok((_, _, Some(_))) => {
                ctx.reply(rp, OsMsg::UserReply(SysReply::Err(Errno::EEXIST)));
                return;
            }
            Err(e) => {
                ctx.reply(rp, OsMsg::UserReply(SysReply::Err(e)));
                return;
            }
        };
        h.inodes.update(ctx.heap(), &src.0, |n| {
            if let InodeKind::Dir { entries } = &mut n.kind {
                entries.remove(&src.1);
            }
        });
        h.inodes.update(ctx.heap(), &dst.0, |n| {
            if let InodeKind::Dir { entries } = &mut n.kind {
                entries.insert(dst.1.clone(), src.2);
            }
        });
        ctx.site("vfs.rename.done");
        ctx.reply(rp, OsMsg::UserReply(SysReply::Ok));
    }

    fn fsync(&self, pid: Pid, fd: Fd, rp: ReturnPath, ctx: &mut Ctx<'_, OsMsg>) {
        ctx.site("vfs.fsync.entry");
        let Some((_, of)) = self.slot_of(pid.0, fd, ctx.heap_ref()) else {
            ctx.reply(rp, OsMsg::UserReply(SysReply::Err(Errno::EBADF)));
            return;
        };
        let OpenTarget::File { ino } = of.target else {
            ctx.reply(rp, OsMsg::UserReply(SysReply::Err(Errno::EBADF)));
            return;
        };
        self.fsync_start(ino, rp, ctx);
    }

    fn fsync_start(&self, ino: u64, rp: ReturnPath, ctx: &mut Ctx<'_, OsMsg>) {
        let h = self.h();
        // Collect this file's dirty cached blocks.
        let blocks: Vec<u64> = h.file_blocks.with_map(ctx.heap_ref(), |m| {
            m.range((ino, 0)..(ino + 1, 0)).map(|(_, b)| *b).collect()
        });
        let dirty: Vec<u64> = blocks
            .into_iter()
            .filter(|b| {
                h.cache
                    .with(ctx.heap_ref(), b, |c| c.dirty)
                    .unwrap_or(false)
            })
            .collect();
        if dirty.is_empty() {
            ctx.reply(rp, OsMsg::UserReply(SysReply::Ok));
            return;
        }
        let Some(tid) = h.pool.activate(ctx.heap()) else {
            ctx.site("vfs.fsync.backlog");
            h.backlog.push(
                ctx.heap(),
                VfsCont::Fsync {
                    rp,
                    ino,
                    remaining: u32::MAX,
                },
            );
            return;
        };
        ctx.site("vfs.fsync.flush");
        let n = dirty.len() as u32;
        for b in dirty {
            let data = h.cache.update(ctx.heap(), &b, |c| {
                c.dirty = false;
                c.data.clone()
            });
            if let Some(data) = data {
                let id = ctx.send_request(self.topo.disk, OsMsg::DiskWrite { block: b, data });
                h.disk_waits.insert(ctx.heap(), id.0, (tid.0, 0));
            }
        }
        h.pool.yield_blocked(
            ctx.heap(),
            tid,
            VfsCont::Fsync {
                rp,
                ino,
                remaining: n,
            },
        );
        ctx.yield_window();
    }

    fn exec_load(&self, prog: &str, rp: ReturnPath, ctx: &mut Ctx<'_, OsMsg>) {
        ctx.site("vfs.exec.entry");
        let block = EXEC_BASE + (fnv(prog) % 256);
        self.run_or_park(VfsCont::ExecLoad { rp, block }, ctx);
    }

    /// Duplicates `parent`'s descriptor table for `child` (fork).
    fn fork_dup(&self, parent: Pid, child: Pid, rp: ReturnPath, ctx: &mut Ctx<'_, OsMsg>) {
        let h = self.h();
        ctx.site("vfs.forkdup.entry");
        let entries: Vec<(u32, u32)> = h.fds.with_map(ctx.heap_ref(), |m| {
            m.range((parent.0, 0)..(parent.0 + 1, 0))
                .map(|(k, v)| (k.1, *v))
                .collect()
        });
        for (dup_count, (fd, slot)) in entries.into_iter().enumerate() {
            if dup_count == 1 {
                // Mid-duplication fault: the child holds only part of the
                // descriptor table, with drifted pipe counts, unless the
                // whole transaction is rolled back.
                ctx.site("vfs.forkdup.fd");
            }
            h.fds.insert(ctx.heap(), (child.0, fd), slot);
            let target = h.oft.update(ctx.heap(), &slot, |f| {
                f.refs += 1;
                f.target
            });
            match target {
                Some(OpenTarget::PipeR { id }) => {
                    h.pipes.update(ctx.heap(), &id, |p| p.readers += 1);
                }
                Some(OpenTarget::PipeW { id }) => {
                    h.pipes.update(ctx.heap(), &id, |p| p.writers += 1);
                }
                _ => {}
            }
        }
        ctx.site("vfs.forkdup.done");
        ctx.reply(rp, OsMsg::ROk);
    }

    fn cleanup(&self, pid: Pid, ctx: &mut Ctx<'_, OsMsg>) {
        let h = self.h();
        ctx.site("vfs.cleanup.entry");
        // Close every descriptor of the departed process.
        let keys: Vec<(u32, u32)> = h.fds.with_map(ctx.heap_ref(), |m| {
            m.range((pid.0, 0)..(pid.0 + 1, 0))
                .map(|(k, _)| *k)
                .collect()
        });
        for k in keys {
            if let Some(slot) = h.fds.remove(ctx.heap(), &k) {
                self.close_slot(slot, ctx);
            }
        }
        // Cancel its blocked pipe reads.
        let pipe_ids = h.pipes.keys(ctx.heap_ref());
        for id in pipe_ids {
            let cancelled = h
                .pipes
                .update(ctx.heap(), &id, |p| {
                    let (mine, rest): (Vec<BlockedRead>, Vec<BlockedRead>) =
                        std::mem::take(&mut p.waiting)
                            .into_iter()
                            .partition(|w| w.pid == pid.0);
                    p.waiting = rest;
                    mine
                })
                .unwrap_or_default();
            for w in cancelled {
                ctx.reply(w.rp, OsMsg::UserReply(SysReply::Err(Errno::EKILLED)));
            }
        }
        ctx.site("vfs.cleanup.done");
    }

    fn user_call(&self, pid: Pid, call: &Syscall, rp: ReturnPath, ctx: &mut Ctx<'_, OsMsg>) {
        match call {
            Syscall::Open { path, flags } => self.open(pid, path, *flags, rp, ctx),
            Syscall::Close { fd } => self.close(pid, *fd, rp, ctx),
            Syscall::Dup { fd } => self.dup(pid, *fd, rp, ctx),
            Syscall::Pipe => self.mkpipe(pid, rp, ctx),
            Syscall::Seek { fd, from } => self.seek(pid, *fd, *from, rp, ctx),
            Syscall::Stat { path } => self.stat(path, rp, ctx),
            Syscall::Mkdir { path } => self.mkdir(path, rp, ctx),
            Syscall::ReadDir { path } => self.readdir(path, rp, ctx),
            Syscall::Unlink { path } => self.unlink(path, rp, ctx),
            Syscall::Rename { from, to } => self.rename(from, to, rp, ctx),
            Syscall::Fsync { fd } => self.fsync(pid, *fd, rp, ctx),
            Syscall::Read { fd, len } => {
                ctx.site("vfs.read.entry");
                if *len > MAX_IO {
                    ctx.reply(rp, OsMsg::UserReply(SysReply::Err(Errno::EINVAL)));
                    return;
                }
                match self.slot_of(pid.0, *fd, ctx.heap_ref()) {
                    Some((slot, of)) => match of.target {
                        OpenTarget::PipeR { id } => self.pipe_read(pid, id, *len, rp, ctx),
                        OpenTarget::PipeW { .. } => {
                            ctx.reply(rp, OsMsg::UserReply(SysReply::Err(Errno::EBADF)))
                        }
                        OpenTarget::File { .. } => self.run_or_park(
                            VfsCont::Read {
                                slot,
                                rp,
                                len: *len,
                            },
                            ctx,
                        ),
                    },
                    None => ctx.reply(rp, OsMsg::UserReply(SysReply::Err(Errno::EBADF))),
                }
            }
            Syscall::Write { fd, bytes } => {
                ctx.site("vfs.write.entry");
                if bytes.len() as u32 > MAX_IO {
                    ctx.reply(rp, OsMsg::UserReply(SysReply::Err(Errno::EINVAL)));
                    return;
                }
                match self.slot_of(pid.0, *fd, ctx.heap_ref()) {
                    Some((slot, of)) => match of.target {
                        OpenTarget::PipeW { id } => self.pipe_write(id, bytes, rp, ctx),
                        OpenTarget::PipeR { .. } => {
                            ctx.reply(rp, OsMsg::UserReply(SysReply::Err(Errno::EBADF)))
                        }
                        OpenTarget::File { .. } => self.run_or_park(
                            VfsCont::Write {
                                slot,
                                rp,
                                data: bytes.clone(),
                            },
                            ctx,
                        ),
                    },
                    None => ctx.reply(rp, OsMsg::UserReply(SysReply::Err(Errno::EBADF))),
                }
            }
            _ => ctx.reply(rp, OsMsg::UserReply(SysReply::Err(Errno::ENOSYS))),
        }
    }
}

impl Server<OsMsg> for VfsServer {
    fn name(&self) -> &'static str {
        "vfs"
    }

    fn init(&mut self, ctx: &mut Ctx<'_, OsMsg>) {
        let threads = self.threads;
        let heap = ctx.heap();
        let mut root_entries = BTreeMap::new();
        let inodes = heap.alloc_map::<u64, Inode>("vfs.inodes");
        // Pre-create /tmp and /bin.
        inodes.insert(
            heap,
            2,
            Inode {
                kind: InodeKind::Dir {
                    entries: BTreeMap::new(),
                },
            },
        );
        inodes.insert(
            heap,
            3,
            Inode {
                kind: InodeKind::Dir {
                    entries: BTreeMap::new(),
                },
            },
        );
        root_entries.insert("tmp".to_string(), 2);
        root_entries.insert("bin".to_string(), 3);
        inodes.insert(
            heap,
            ROOT_INO,
            Inode {
                kind: InodeKind::Dir {
                    entries: root_entries,
                },
            },
        );
        let h = Handles {
            ops: heap.alloc_cell("vfs.ops", 0),
            stats: heap.alloc_map("vfs.stats"),
            last_event: heap.alloc_cell("vfs.last_event", 0),
            inodes,
            next_ino: heap.alloc_cell("vfs.next_ino", 4),
            file_blocks: heap.alloc_map("vfs.file_blocks"),
            next_block: heap.alloc_cell("vfs.next_block", DATA_BASE),
            free_blocks: heap.alloc_vec("vfs.free_blocks"),
            cache: heap.alloc_map("vfs.cache"),
            cache_stamp: heap.alloc_cell("vfs.cache_stamp", 0),
            oft: heap.alloc_map("vfs.oft"),
            next_slot: heap.alloc_cell("vfs.next_slot", 0),
            fds: heap.alloc_map("vfs.fds"),
            pipes: heap.alloc_map("vfs.pipes"),
            next_pipe: heap.alloc_cell("vfs.next_pipe", 0),
            pool: CoPool::new(heap, threads),
            disk_waits: heap.alloc_map("vfs.disk_waits"),
            backlog: heap.alloc_vec("vfs.backlog"),
        };
        self.h = Some(h);
    }

    fn handle(&mut self, msg: &Message<OsMsg>, ctx: &mut Ctx<'_, OsMsg>) {
        match &msg.payload {
            OsMsg::User { pid, call } => self.user_call(*pid, call, msg.return_path(), ctx),
            OsMsg::VfsExecLoad { pid: _, prog } => self.exec_load(prog, msg.return_path(), ctx),
            OsMsg::VfsCleanup { pid } | OsMsg::VfsCleanupSelf { pid } => self.cleanup(*pid, ctx),
            OsMsg::VfsForkDup { parent, child } => {
                self.fork_dup(*parent, *child, msg.return_path(), ctx)
            }
            OsMsg::RData(_) | OsMsg::ROk | OsMsg::RErr(_) | OsMsg::RCrash => {
                if let Some(request_id) = msg.reply_to {
                    self.disk_reply(request_id.0, &msg.payload, ctx);
                }
            }
            OsMsg::Ping => {
                ctx.site("vfs.ping");
                ctx.reply(msg.return_path(), OsMsg::Pong);
                return;
            }
            _ => {}
        }
        // Deferred bookkeeping after the reply went out (outside the
        // recovery window). Under the paper's unoptimized build every one
        // of these writes is undo-logged; the window-gated build skips the
        // logging entirely.
        ctx.site("vfs.post.account");
        let h = self.h();
        let label = msg.payload.label();
        let now = ctx.now();
        h.ops.update(ctx.heap(), |n| *n += 1);
        if h.stats.update(ctx.heap(), &label, |n| *n += 1).is_none() {
            h.stats.insert(ctx.heap(), label, 1);
        }
        h.last_event.set(ctx.heap(), now);
        h.cache_stamp.update(ctx.heap(), |s| *s = s.wrapping_add(0));
        ctx.site("vfs.post.done");
        ctx.charge(25);
    }

    fn on_restore(&mut self, heap: &mut Heap) {
        // Paper §IV-E: after a rollback or restart the thread library may
        // still believe the crashed thread is running; repair it.
        self.h().pool.fix_after_restore(heap);
    }

    fn audit_facts(&self, heap: &Heap) -> Vec<(String, u64)> {
        let h = self.h();
        let mut facts = Vec::new();
        let mut slot_refs: std::collections::BTreeMap<u32, u32> = Default::default();
        h.fds.for_each(heap, |(pid, _), slot| {
            facts.push(("vfs.fd_pid".to_string(), u64::from(*pid)));
            *slot_refs.entry(*slot).or_insert(0) += 1;
        });
        // Slot reference counts must match the descriptor table exactly.
        let mut pipe_readers: std::collections::BTreeMap<u32, u32> = Default::default();
        let mut pipe_writers: std::collections::BTreeMap<u32, u32> = Default::default();
        h.oft.for_each(heap, |slot, of| {
            if slot_refs.get(slot).copied().unwrap_or(0) != of.refs {
                facts.push(("vfs.torn_refs".to_string(), u64::from(*slot)));
            }
            match of.target {
                OpenTarget::PipeR { id } => {
                    *pipe_readers.entry(id).or_insert(0) += of.refs;
                }
                OpenTarget::PipeW { id } => {
                    *pipe_writers.entry(id).or_insert(0) += of.refs;
                }
                OpenTarget::File { .. } => {}
            }
        });
        // Pipe endpoint counts must match the open-file table.
        h.pipes.for_each(heap, |id, p| {
            if pipe_readers.get(id).copied().unwrap_or(0) != p.readers
                || pipe_writers.get(id).copied().unwrap_or(0) != p.writers
            {
                facts.push(("vfs.torn_pipe".to_string(), u64::from(*id)));
            }
        });
        // Every data block must belong to an existing file inode.
        h.file_blocks.for_each(heap, |(ino, _), _| {
            if !h.inodes.contains_key(heap, ino) {
                facts.push(("vfs.orphan_blocks".to_string(), *ino));
            }
        });
        facts.push(("vfs.open_slots".to_string(), h.oft.len(heap) as u64));
        facts.push(("vfs.pipes".to_string(), h.pipes.len(heap) as u64));
        facts.push(("vfs.inodes".to_string(), h.inodes.len(heap) as u64));
        facts
    }

    fn clone_box(&self) -> Box<dyn Server<OsMsg>> {
        Box::new(self.clone())
    }
}
