//! The disk driver: a block device with a latency model.
//!
//! VFS sends `DiskRead`/`DiskWrite` requests; the driver queues them, waits
//! one disk latency (a kernel timer), then answers. Writes are committed at
//! completion time, reads return the committed contents (zeros for blocks
//! never written). Because timers fire in submission order, a write to a
//! block always commits before a later-submitted read of the same block.

use osiris_checkpoint::{Heap, PCell, PMap};
use osiris_kernel::{Ctx, Message, ReturnPath, Server};

use crate::proto::OsMsg;

/// Fixed block size of the simulated device, in bytes.
pub const BLOCK_SIZE: usize = 1024;

#[derive(Clone, Debug)]
enum DiskOp {
    Read { block: u64 },
    Write { block: u64, data: Vec<u8> },
}

#[derive(Clone, Debug)]
struct Pending {
    rp: ReturnPath,
    op: DiskOp,
}

#[derive(Clone, Copy, Debug)]
struct Handles {
    blocks: PMap<u64, Vec<u8>>,
    pending: PMap<u64, Pending>,
    next_token: PCell<u64>,
    ops: PCell<u64>,
}

/// The disk driver component.
#[derive(Clone, Debug)]
pub struct DiskDriver {
    latency: u64,
    h: Option<Handles>,
}

impl DiskDriver {
    /// Creates a driver with the given access latency in cycles.
    pub fn new(latency: u64) -> Self {
        DiskDriver { latency, h: None }
    }

    fn h(&self) -> Handles {
        self.h.expect("disk used before init")
    }
}

impl Server<OsMsg> for DiskDriver {
    fn name(&self) -> &'static str {
        "disk"
    }

    fn init(&mut self, ctx: &mut Ctx<'_, OsMsg>) {
        let heap = ctx.heap();
        self.h = Some(Handles {
            blocks: heap.alloc_map("disk.blocks"),
            pending: heap.alloc_map("disk.pending"),
            next_token: heap.alloc_cell("disk.next_token", 1),
            ops: heap.alloc_cell("disk.ops", 0),
        });
    }

    fn handle(&mut self, msg: &Message<OsMsg>, ctx: &mut Ctx<'_, OsMsg>) {
        let h = self.h();
        match &msg.payload {
            OsMsg::DiskRead { block } => {
                ctx.site("disk.read.queue");
                let token = h.next_token.get(ctx.heap_ref());
                h.next_token.set(ctx.heap(), token + 1);
                h.pending.insert(
                    ctx.heap(),
                    token,
                    Pending {
                        rp: msg.return_path(),
                        op: DiskOp::Read { block: *block },
                    },
                );
                ctx.set_timer(self.latency, OsMsg::DiskTick { token });
            }
            OsMsg::DiskWrite { block, data } => {
                ctx.site("disk.write.queue");
                let token = h.next_token.get(ctx.heap_ref());
                h.next_token.set(ctx.heap(), token + 1);
                h.pending.insert(
                    ctx.heap(),
                    token,
                    Pending {
                        rp: msg.return_path(),
                        op: DiskOp::Write {
                            block: *block,
                            data: data.clone(),
                        },
                    },
                );
                ctx.set_timer(self.latency, OsMsg::DiskTick { token });
            }
            OsMsg::DiskTick { token } => {
                // Stale tokens (rolled-back queue entries) are ignored.
                let Some(p) = h.pending.remove(ctx.heap(), token) else {
                    return;
                };
                ctx.site("disk.complete");
                h.ops.update(ctx.heap(), |n| *n += 1);
                match p.op {
                    DiskOp::Read { block } => {
                        let data = h
                            .blocks
                            .get(ctx.heap_ref(), &block)
                            .unwrap_or_else(|| vec![0u8; BLOCK_SIZE]);
                        ctx.reply(p.rp, OsMsg::RData(data));
                    }
                    DiskOp::Write { block, data } => {
                        h.blocks.insert(ctx.heap(), block, data);
                        ctx.reply(p.rp, OsMsg::ROk);
                    }
                }
            }
            OsMsg::Ping => ctx.reply(msg.return_path(), OsMsg::Pong),
            _ => {}
        }
    }

    fn audit_facts(&self, heap: &Heap) -> Vec<(String, u64)> {
        vec![
            ("disk.blocks".to_string(), self.h().blocks.len(heap) as u64),
            ("disk.ops".to_string(), self.h().ops.get(heap)),
        ]
    }

    fn clone_box(&self) -> Box<dyn Server<OsMsg>> {
        Box::new(self.clone())
    }
}
