//! VM — the Virtual Memory manager.
//!
//! Tracks per-process address spaces (data segment + anonymous mappings)
//! over a large pre-allocated frame table. The frame table and free list are
//! pre-allocated precisely so that the Recovery Server's spare VM clone
//! never needs to allocate memory *during* recovery — the reason VM
//! dominates the memory overhead of Table VI in the paper.

use std::collections::BTreeMap;

use osiris_checkpoint::{Heap, PCell, PMap, PVec};
use osiris_kernel::abi::{Errno, Pid, SysReply, Syscall};
use osiris_kernel::{Ctx, Message, ReturnPath, Server};

use crate::proto::OsMsg;
use crate::topology::Topology;

/// Pages given to a fresh (exec'd) process image.
pub const IMG_PAGES: u64 = 8;

#[derive(Clone, Debug)]
struct Space {
    data_pages: u64,
    /// Anonymous mappings: id → page count.
    mappings: BTreeMap<u64, u64>,
    /// Frame indices owned by this space, in allocation order.
    frames: Vec<u32>,
}

impl Space {
    fn resident(&self) -> u64 {
        self.data_pages + self.mappings.values().sum::<u64>()
    }
}

#[derive(Clone, Copy, Debug)]
struct Handles {
    /// Operation counters, updated *after* replying (deferred bookkeeping,
    /// outside the recovery window like real servers' post-reply work).
    ops: PCell<u64>,
    spaces: PMap<u32, Space>,
    /// Frame table: frame index → owning pid (0 = free). Pre-allocated.
    frames: PVec<u32>,
    /// Stack of free frame indices. Pre-allocated.
    free_list: PVec<u32>,
    free_frames: PCell<u64>,
    next_mapping: PCell<u64>,
}

/// The Virtual Memory manager server.
#[derive(Clone, Debug)]
pub struct VmManager {
    topo: Topology,
    total_frames: u64,
    h: Option<Handles>,
}

impl VmManager {
    /// Creates a VM manager with a frame pool of `total_frames` pages.
    pub fn new(topo: Topology, total_frames: u64) -> Self {
        VmManager {
            topo,
            total_frames,
            h: None,
        }
    }

    fn h(&self) -> Handles {
        self.h.expect("VM used before init")
    }

    /// Allocates `n` frames for `pid`, marking each in the frame table.
    /// Returns the allocated indices, or `None` on exhaustion (leaving no
    /// partial allocation behind).
    fn alloc_frames(&self, pid: u32, n: u64, ctx: &mut Ctx<'_, OsMsg>) -> Option<Vec<u32>> {
        let h = self.h();
        if h.free_frames.get(ctx.heap_ref()) < n {
            return None;
        }
        let mut taken = Vec::with_capacity(n as usize);
        for i in 0..n {
            // A mid-transaction fault here leaves marked frames with a
            // stale free count: the enhanced/pessimistic policies roll it
            // back cleanly, while the naive baseline keeps the torn state
            // (caught by the frame-accounting audit).
            if i == 1 {
                ctx.site("vm.alloc.frame");
            }
            let idx = h
                .free_list
                .pop(ctx.heap())
                .expect("free_frames said enough");
            h.frames.set(ctx.heap(), idx as usize, pid);
            taken.push(idx);
        }
        ctx.site("vm.alloc.balance");
        h.free_frames.update(ctx.heap(), |f| *f -= n);
        Some(taken)
    }

    /// Returns `indices` to the free pool.
    fn release_frames(&self, indices: &[u32], ctx: &mut Ctx<'_, OsMsg>) {
        let h = self.h();
        for &idx in indices {
            h.frames.set(ctx.heap(), idx as usize, 0);
            h.free_list.push(ctx.heap(), idx);
        }
        h.free_frames
            .update(ctx.heap(), |f| *f += indices.len() as u64);
    }

    /// Deferred bookkeeping performed after the reply has been sent: by
    /// then the recovery window has closed, so this work runs (and is
    /// measured) outside the recoverable region — like the post-reply
    /// accounting of real servers.
    fn account(&self, ctx: &mut Ctx<'_, OsMsg>) {
        ctx.site("vm.post.account");
        let h = self.h();
        let now = ctx.now();
        h.ops.update(ctx.heap(), |n| *n += 1);
        h.next_mapping
            .update(ctx.heap(), |m| *m = m.wrapping_add(0));
        h.free_frames.update(ctx.heap(), |f| *f = f.wrapping_add(0));
        h.ops.update(ctx.heap(), |n| *n = n.wrapping_add(0));
        let _ = now;
        ctx.site("vm.post.done");
        ctx.charge(20);
    }

    fn user_call(&self, pid: Pid, call: &Syscall, rp: ReturnPath, ctx: &mut Ctx<'_, OsMsg>) {
        let h = self.h();
        match call {
            Syscall::Brk { pages } => {
                ctx.site("vm.brk.entry");
                let Some(space) = h.spaces.get(ctx.heap_ref(), &pid.0) else {
                    ctx.reply(rp, OsMsg::UserReply(SysReply::Err(Errno::ESRCH)));
                    return;
                };
                // Value probe: a perturbed target size is the classic
                // fail-silent accounting bug (caught later by the audit).
                let new =
                    ctx.site_val("vm.brk.target", (space.data_pages as i64 + pages) as u64) as i64;
                if new < 0 {
                    ctx.reply(rp, OsMsg::UserReply(SysReply::Err(Errno::EINVAL)));
                    return;
                }
                ctx.site("vm.brk.validate");
                if *pages > 0 {
                    let Some(taken) = self.alloc_frames(pid.0, *pages as u64, ctx) else {
                        ctx.reply(rp, OsMsg::UserReply(SysReply::Err(Errno::ENOMEM)));
                        return;
                    };
                    h.spaces.update(ctx.heap(), &pid.0, |s| {
                        s.data_pages = new as u64;
                        s.frames.extend(taken);
                    });
                } else if *pages < 0 {
                    let give_back = (-pages) as usize;
                    let released = h
                        .spaces
                        .update(ctx.heap(), &pid.0, |s| {
                            s.data_pages = new as u64;
                            let keep = s.frames.len().saturating_sub(give_back);
                            s.frames.split_off(keep)
                        })
                        .unwrap_or_default();
                    self.release_frames(&released, ctx);
                }
                ctx.site("vm.brk.commit");
                ctx.reply(rp, OsMsg::UserReply(SysReply::Val(new)));
            }
            Syscall::Mmap { pages } => {
                ctx.site("vm.mmap.entry");
                if !h.spaces.contains_key(ctx.heap_ref(), &pid.0) {
                    ctx.reply(rp, OsMsg::UserReply(SysReply::Err(Errno::ESRCH)));
                    return;
                }
                if *pages == 0 {
                    ctx.reply(rp, OsMsg::UserReply(SysReply::Err(Errno::EINVAL)));
                    return;
                }
                let Some(taken) = self.alloc_frames(pid.0, *pages, ctx) else {
                    ctx.reply(rp, OsMsg::UserReply(SysReply::Err(Errno::ENOMEM)));
                    return;
                };
                let id = h.next_mapping.get(ctx.heap_ref());
                h.next_mapping.set(ctx.heap(), id + 1);
                h.spaces.update(ctx.heap(), &pid.0, |s| {
                    s.mappings.insert(id, *pages);
                    s.frames.extend(taken);
                });
                ctx.site("vm.mmap.commit");
                ctx.reply(rp, OsMsg::UserReply(SysReply::Val(id as i64)));
            }
            Syscall::Munmap { id } => {
                ctx.site("vm.munmap.entry");
                let Some(space) = h.spaces.get(ctx.heap_ref(), &pid.0) else {
                    ctx.reply(rp, OsMsg::UserReply(SysReply::Err(Errno::ESRCH)));
                    return;
                };
                let Some(pages) = space.mappings.get(id).copied() else {
                    ctx.reply(rp, OsMsg::UserReply(SysReply::Err(Errno::EINVAL)));
                    return;
                };
                let released = h
                    .spaces
                    .update(ctx.heap(), &pid.0, |s| {
                        s.mappings.remove(id);
                        let keep = s.frames.len().saturating_sub(pages as usize);
                        s.frames.split_off(keep)
                    })
                    .unwrap_or_default();
                self.release_frames(&released, ctx);
                ctx.site("vm.munmap.commit");
                ctx.reply(rp, OsMsg::UserReply(SysReply::Ok));
            }
            Syscall::VmStat => {
                // Purely read-only: fully recoverable end to end.
                ctx.site("vm.stat");
                match h.spaces.get(ctx.heap_ref(), &pid.0) {
                    Some(s) => ctx.reply(rp, OsMsg::UserReply(SysReply::Val(s.resident() as i64))),
                    None => ctx.reply(rp, OsMsg::UserReply(SysReply::Err(Errno::ESRCH))),
                }
            }
            _ => ctx.reply(rp, OsMsg::UserReply(SysReply::Err(Errno::ENOSYS))),
        }
        self.account(ctx);
    }
}

impl Server<OsMsg> for VmManager {
    fn name(&self) -> &'static str {
        "vm"
    }

    fn init(&mut self, ctx: &mut Ctx<'_, OsMsg>) {
        let total = self.total_frames;
        let heap = ctx.heap();
        let frames = heap.alloc_vec_filled("vm.frames", 0u32, total as usize);
        let free_list = heap.alloc_vec::<u32>("vm.free_list");
        // Highest index on top so allocation order starts at frame 0.
        for idx in (0..total as u32).rev() {
            free_list.push(heap, idx);
        }
        let h = Handles {
            ops: heap.alloc_cell("vm.ops", 0),
            spaces: heap.alloc_map("vm.spaces"),
            frames,
            free_list,
            free_frames: heap.alloc_cell("vm.free_frames", total),
            next_mapping: heap.alloc_cell("vm.next_mapping", 1),
        };
        self.h = Some(h);
        // Address space for init (pid 1), which exists from boot.
        let taken = self
            .alloc_frames(1, IMG_PAGES, ctx)
            .expect("boot frames available");
        self.h().spaces.insert(
            ctx.heap(),
            1,
            Space {
                data_pages: IMG_PAGES,
                mappings: BTreeMap::new(),
                frames: taken,
            },
        );
    }

    fn handle(&mut self, msg: &Message<OsMsg>, ctx: &mut Ctx<'_, OsMsg>) {
        let h = self.h();
        match &msg.payload {
            OsMsg::User { pid, call } => self.user_call(*pid, call, msg.return_path(), ctx),
            OsMsg::Ping => {
                ctx.site("vm.ping");
                ctx.reply(msg.return_path(), OsMsg::Pong)
            }
            OsMsg::VmFork { parent, child } => {
                ctx.site("vm.fork.entry");
                let Some(pspace) = h.spaces.get(ctx.heap_ref(), &parent.0) else {
                    ctx.reply(msg.return_path(), OsMsg::RErr(Errno::ESRCH));
                    return;
                };
                let need = pspace.resident();
                let Some(taken) = self.alloc_frames(child.0, need, ctx) else {
                    ctx.reply(msg.return_path(), OsMsg::RErr(Errno::ENOMEM));
                    return;
                };
                h.spaces.insert(
                    ctx.heap(),
                    child.0,
                    Space {
                        data_pages: pspace.data_pages,
                        mappings: pspace.mappings.clone(),
                        frames: taken,
                    },
                );
                ctx.site("vm.fork.commit");
                ctx.reply(msg.return_path(), OsMsg::ROk);
            }
            OsMsg::VmExecReset { pid } => {
                ctx.site("vm.exec_reset.entry");
                let Some(old) = h.spaces.get(ctx.heap_ref(), &pid.0) else {
                    ctx.reply(msg.return_path(), OsMsg::RErr(Errno::ESRCH));
                    return;
                };
                self.release_frames(&old.frames, ctx);
                let Some(taken) = self.alloc_frames(pid.0, IMG_PAGES, ctx) else {
                    ctx.reply(msg.return_path(), OsMsg::RErr(Errno::ENOMEM));
                    return;
                };
                h.spaces.insert(
                    ctx.heap(),
                    pid.0,
                    Space {
                        data_pages: IMG_PAGES,
                        mappings: BTreeMap::new(),
                        frames: taken,
                    },
                );
                ctx.site("vm.exec_reset.commit");
                ctx.reply(msg.return_path(), OsMsg::ROk);
            }
            OsMsg::VmFree { pid } | OsMsg::VmFreeSelf { pid } => {
                ctx.site("vm.free.entry");
                if let Some(space) = h.spaces.remove(ctx.heap(), &pid.0) {
                    self.release_frames(&space.frames, ctx);
                }
            }
            OsMsg::VmUsage { pid } => {
                // Read-only query: contractually writes nothing.
                ctx.site("vm.usage");
                let usage = h.spaces.get(ctx.heap_ref(), &pid.0);
                ctx.site("vm.usage.lookup");
                match usage {
                    Some(s) => ctx.reply(msg.return_path(), OsMsg::RVal(s.resident())),
                    None => ctx.reply(msg.return_path(), OsMsg::RErr(Errno::ESRCH)),
                }
            }
            _ => {}
        }
        // User calls account inside `user_call`; VmUsage is contractually
        // read-only; pings are trivial.
        if matches!(
            &msg.payload,
            OsMsg::VmFork { .. }
                | OsMsg::VmExecReset { .. }
                | OsMsg::VmFree { .. }
                | OsMsg::VmFreeSelf { .. }
        ) {
            self.account(ctx);
        }
        let _ = &self.topo;
    }

    fn audit_facts(&self, heap: &Heap) -> Vec<(String, u64)> {
        let mut facts = Vec::new();
        let h = self.h();
        let mut owned = 0u64;
        h.spaces.for_each(heap, |pid, s| {
            facts.push(("vm.space".to_string(), u64::from(*pid)));
            owned += s.frames.len() as u64;
            if s.frames.len() as u64 != s.resident() {
                // Torn allocation: pages accounted but frames not (or vice
                // versa) — the signature of a half-applied update surviving
                // naive recovery.
                facts.push(("vm.torn".to_string(), u64::from(*pid)));
            }
        });
        facts.push(("vm.frames_owned".to_string(), owned));
        facts.push(("vm.frames_free".to_string(), h.free_frames.get(heap)));
        facts.push(("vm.free_list_len".to_string(), h.free_list.len(heap) as u64));
        facts.push(("vm.frames_total".to_string(), self.total_frames));
        facts
    }

    fn clone_box(&self) -> Box<dyn Server<OsMsg>> {
        Box::new(self.clone())
    }
}
