//! The assembled OSIRIS operating system: six components on the
//! microkernel, speaking [`OsMsg`], exposed to workloads as an
//! [`OsEngine`].

use std::collections::BTreeSet;

use osiris_checkpoint::{ChunkStore, RestoreStats};
use osiris_core::{EscalationPolicy, PolicyKind, RecoveryPolicy};
use osiris_kernel::abi::{Pid, SysReply, Syscall};
use osiris_kernel::{
    ComponentReport, CostModel, Endpoint, FaultHook, Instrumentation, Kernel, KernelConfig,
    KernelMetrics, KernelSnapshot, OsEngine, ShutdownKind, SyscallId,
};

use crate::disk::DiskDriver;
use crate::ds::DataStore;
use crate::pm::ProcessManager;
use crate::proto::OsMsg;
use crate::rs::RecoveryServer;
use crate::topology::Topology;
use crate::vfs::VfsServer;
use crate::vm::VmManager;

/// Configuration of the assembled OS.
pub struct OsConfig {
    /// Recovery policy (one of the four standard policies).
    pub policy: PolicyKind,
    /// A custom policy overriding `policy` if set (paper §VII:
    /// "composable recovery policies").
    pub custom_policy: Option<Box<dyn RecoveryPolicy>>,
    /// Checkpointing instrumentation mode.
    pub instrumentation: Instrumentation,
    /// Cycle-cost model.
    pub cost: CostModel,
    /// Size of the VM frame pool.
    pub vm_frames: u64,
    /// VFS block-cache capacity, in blocks.
    pub vfs_cache_blocks: usize,
    /// VFS cooperative thread count.
    pub vfs_threads: u32,
    /// Recovery escalation policy driven by RS: sliding-window restart
    /// budget, exponential restart backoff, quarantine, controlled
    /// shutdown. `EscalationPolicy::unbounded()` restores the legacy
    /// restart-forever behaviour.
    pub escalation: EscalationPolicy,
    /// Shutdown grace budget (paper §VII): number of message deliveries the
    /// kernel keeps serving after a controlled shutdown is decided, so
    /// applications can persist state. Only *save-class* syscalls (data
    /// store writes, file writes/sync/close) are admitted during grace;
    /// everything else fails with `ESHUTDOWN`.
    pub shutdown_grace: u32,
    /// Flight-recorder configuration (see `osiris_trace::TraceConfig`).
    /// Disabled by default; `TraceConfig::on()` records everything.
    pub trace: osiris_trace::TraceConfig,
    /// Metrics-registry configuration (see `osiris_metrics::MetricsConfig`).
    /// Enabled by default — [`Os::metrics`] and [`Os::reports`] are views
    /// over the registry, so disabling it zeroes them too.
    pub metrics: osiris_metrics::MetricsConfig,
    /// Axiom (authoritative control-plane log) configuration
    /// (see `osiris_axiom::AxiomConfig`). Disabled by default —
    /// `AxiomConfig::on()` records every control-plane transition in a
    /// hash-chained, replayable event log.
    pub axiom: osiris_axiom::AxiomConfig,
    /// Virtual-time telemetry sampler configuration (see
    /// `osiris_metrics::TimeseriesConfig`). Disabled by default —
    /// `TimeseriesConfig::on()` snapshots the span-latency and
    /// crash/recovery series every Δ virtual cycles for the
    /// `timeseries.json` export and the Chrome counter lanes.
    pub timeseries: osiris_metrics::TimeseriesConfig,
    /// Virtual-time watchdog configuration (see
    /// `osiris_kernel::WatchdogConfig`). Disabled by default —
    /// `WatchdogConfig::on()` arms per-request deadlines, heartbeat-probes
    /// expired ones to tell hung from slow, re-drives idempotent failures
    /// with deterministic backoff, and rejects integrity-mismatched replies.
    pub watchdog: osiris_kernel::WatchdogConfig,
}

impl Default for OsConfig {
    fn default() -> Self {
        OsConfig {
            policy: PolicyKind::Enhanced,
            custom_policy: None,
            instrumentation: Instrumentation::WindowGated,
            cost: CostModel::default(),
            vm_frames: 65_536,
            vfs_cache_blocks: 64,
            vfs_threads: 4,
            escalation: EscalationPolicy::default(),
            shutdown_grace: 0,
            trace: osiris_trace::TraceConfig::default(),
            metrics: osiris_metrics::MetricsConfig::default(),
            axiom: osiris_axiom::AxiomConfig::default(),
            timeseries: osiris_metrics::TimeseriesConfig::default(),
            watchdog: osiris_kernel::WatchdogConfig::default(),
        }
    }
}

impl std::fmt::Debug for OsConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OsConfig")
            .field("policy", &self.policy)
            .field("instrumentation", &self.instrumentation)
            .field("vm_frames", &self.vm_frames)
            .finish()
    }
}

impl Clone for OsConfig {
    fn clone(&self) -> Self {
        OsConfig {
            policy: self.policy,
            custom_policy: self.custom_policy.as_ref().map(|p| p.clone_box()),
            instrumentation: self.instrumentation,
            cost: self.cost,
            vm_frames: self.vm_frames,
            vfs_cache_blocks: self.vfs_cache_blocks,
            vfs_threads: self.vfs_threads,
            escalation: self.escalation,
            shutdown_grace: self.shutdown_grace,
            trace: self.trace.clone(),
            metrics: self.metrics,
            axiom: self.axiom,
            timeseries: self.timeseries,
            watchdog: self.watchdog,
        }
    }
}

impl OsConfig {
    /// Convenience: default configuration with the given policy.
    pub fn with_policy(policy: PolicyKind) -> Self {
        OsConfig {
            policy,
            ..Default::default()
        }
    }
}

/// The assembled OSIRIS OS.
pub struct Os {
    kernel: Kernel<OsMsg>,
    topo: Topology,
    pending_refusals: Vec<(SyscallId, Pid, SysReply)>,
    /// The boot configuration, retained so [`Os::fork`] can reboot an
    /// identical twin before adopting a snapshot.
    cfg: OsConfig,
}

impl std::fmt::Debug for Os {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Os").field("kernel", &self.kernel).finish()
    }
}

impl Os {
    /// Boots the OS: registers RS, PM, VM, VFS, DS and the disk driver in
    /// the canonical topology and runs their initialization.
    pub fn new(cfg: OsConfig) -> Self {
        let policy = match &cfg.custom_policy {
            Some(p) => p.clone_box(),
            None => cfg.policy.instantiate(),
        };
        let kcfg = KernelConfig {
            policy,
            instrumentation: cfg.instrumentation,
            cost: cfg.cost,
            shutdown_grace: cfg.shutdown_grace,
            trace: cfg.trace.clone(),
            metrics: cfg.metrics,
            axiom: cfg.axiom,
            timeseries: cfg.timeseries,
            watchdog: cfg.watchdog,
        };
        let heartbeat = kcfg.cost.heartbeat_interval;
        let disk_latency = kcfg.cost.disk_latency;
        let mut kernel = Kernel::new(kcfg);
        let topo = Topology::CANONICAL;
        let rs = kernel.register(
            Box::new(RecoveryServer::new(topo, heartbeat, cfg.escalation)),
            true,
        );
        let pm = kernel.register(Box::new(ProcessManager::new(topo)), false);
        let vm = kernel.register(Box::new(VmManager::new(topo, cfg.vm_frames)), false);
        let vfs = kernel.register(
            Box::new(VfsServer::new(topo, cfg.vfs_cache_blocks, cfg.vfs_threads)),
            false,
        );
        let ds = kernel.register(Box::new(DataStore::new(topo)), false);
        let disk = kernel.register(Box::new(DiskDriver::new(disk_latency)), false);
        debug_assert_eq!(
            (rs, pm, vm, vfs, ds, disk),
            (topo.rs, topo.pm, topo.vm, topo.vfs, topo.ds, topo.disk),
            "registration order must match the canonical topology"
        );
        kernel.init_components();
        Os {
            kernel,
            topo,
            pending_refusals: Vec::new(),
            cfg,
        }
    }

    /// Boots with defaults under the given policy.
    pub fn boot(policy: PolicyKind) -> Self {
        Os::new(OsConfig::with_policy(policy))
    }

    /// Reboots a machine from a recorded axiom: verifies the chain,
    /// reduces it to the control state it encodes, boots a fresh OS under
    /// `cfg`, and adopts the recorded log + state as the authoritative
    /// history (simulated reboot persistence — the axiom survives, the
    /// volatile in-flight context does not).
    ///
    /// The adopted chain continues from the recorded head: events emitted
    /// after replay extend the same hash chain.
    pub fn replay(cfg: OsConfig, axiom_bytes: &[u8]) -> Result<Self, osiris_axiom::AxiomError> {
        let log = osiris_axiom::AxiomLog::from_bytes(axiom_bytes)?;
        let state = osiris_axiom::reduce(log.records());
        let mut os = Os::new(cfg);
        os.kernel.adopt_axiom(log, state);
        Ok(os)
    }

    /// The authoritative control-plane log (empty unless
    /// [`OsConfig::axiom`] enabled retention).
    pub fn axiom(&self) -> &osiris_axiom::AxiomLog {
        self.kernel.axiom()
    }

    /// The axiom serialized to its crash-consistent on-disk format.
    pub fn axiom_bytes(&self) -> Vec<u8> {
        self.kernel.axiom_bytes()
    }

    /// Writes the serialized axiom to `path`, creating parent directories
    /// as needed.
    pub fn write_axiom(&self, path: &str) -> std::io::Result<std::path::PathBuf> {
        let path = std::path::PathBuf::from(path);
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(&path, self.kernel.axiom_bytes())?;
        Ok(path)
    }

    /// Verifies the axiom's hash chain end to end (also bumps the
    /// chain-verification counters).
    pub fn verify_axiom(&self) -> Result<(), osiris_axiom::AxiomError> {
        self.kernel.verify_axiom()
    }

    /// The control state maintained by the kernel's live fold over the
    /// axiom event stream. `osiris_axiom::reduce(os.axiom().records())`
    /// reconstructs exactly this value when retention is enabled.
    pub fn control_state(&self) -> &osiris_axiom::ControlState {
        self.kernel.control_state()
    }

    /// Installs a fault-injection hook.
    pub fn set_fault_hook(&mut self, hook: Box<dyn FaultHook>) {
        self.kernel.set_fault_hook(hook);
    }

    /// The component topology.
    pub fn topology(&self) -> Topology {
        self.topo
    }

    /// Which server owns each syscall.
    pub fn route(&self, call: &Syscall) -> Endpoint {
        match call {
            Syscall::Spawn { .. }
            | Syscall::Fork
            | Syscall::Exec { .. }
            | Syscall::Exit { .. }
            | Syscall::WaitPid { .. }
            | Syscall::WaitAny
            | Syscall::Kill { .. }
            | Syscall::GetPid
            | Syscall::GetPPid
            | Syscall::SigMask { .. }
            | Syscall::SigPending
            | Syscall::Sleep { .. } => self.topo.pm,
            Syscall::Brk { .. }
            | Syscall::Mmap { .. }
            | Syscall::Munmap { .. }
            | Syscall::VmStat => self.topo.vm,
            Syscall::Open { .. }
            | Syscall::Close { .. }
            | Syscall::Read { .. }
            | Syscall::Write { .. }
            | Syscall::Seek { .. }
            | Syscall::Unlink { .. }
            | Syscall::Mkdir { .. }
            | Syscall::ReadDir { .. }
            | Syscall::Stat { .. }
            | Syscall::Rename { .. }
            | Syscall::Pipe
            | Syscall::Dup { .. }
            | Syscall::Fsync { .. } => self.topo.vfs,
            Syscall::DsPut { .. }
            | Syscall::DsGet { .. }
            | Syscall::DsDel { .. }
            | Syscall::DsList { .. } => self.topo.ds,
        }
    }

    /// Per-component reports (window coverage, memory, crash counts).
    pub fn reports(&self) -> Vec<ComponentReport> {
        self.kernel.component_reports()
    }

    /// Kernel-wide metrics (a view assembled from the registry).
    pub fn metrics(&self) -> KernelMetrics {
        self.kernel.metrics()
    }

    /// The metrics registry backing every counter the kernel maintains.
    pub fn metrics_handle(&self) -> &osiris_metrics::MetricsHandle {
        self.kernel.metrics_handle()
    }

    /// A consistent snapshot of the registry, with the mirrored heap and
    /// window series refreshed first.
    pub fn metrics_snapshot(&self) -> osiris_metrics::MetricsSnapshot {
        self.kernel.sync_registry();
        self.kernel.metrics_handle().snapshot()
    }

    /// The registry rendered in Prometheus text exposition format.
    pub fn metrics_prometheus(&self) -> String {
        osiris_metrics::prom::render_prometheus(&self.metrics_snapshot())
    }

    /// The registry rendered as a JSON document.
    pub fn metrics_json(&self) -> osiris_trace::Json {
        osiris_metrics::export::render_json(&self.metrics_snapshot())
    }

    /// Writes both exposition formats to `<base>.prom` and `<base>.json`,
    /// creating parent directories as needed. Returns the paths written.
    pub fn write_metrics(
        &self,
        base: &str,
    ) -> std::io::Result<(std::path::PathBuf, std::path::PathBuf)> {
        osiris_metrics::write_exports(&self.metrics_snapshot(), base)
    }

    /// Direct kernel access for tests and experiment harnesses.
    pub fn kernel(&self) -> &Kernel<OsMsg> {
        &self.kernel
    }

    /// Mutable kernel access.
    pub fn kernel_mut(&mut self) -> &mut Kernel<OsMsg> {
        &mut self.kernel
    }

    /// The flight recorder attached to the kernel.
    pub fn trace_handle(&self) -> &osiris_trace::TraceHandle {
        self.kernel.tracer()
    }

    /// The recorded event stream rendered as deterministic text.
    pub fn trace_text(&self) -> String {
        self.kernel.trace_text()
    }

    /// The recorded event stream as a Chrome `trace_event` JSON document
    /// (load the serialized form in `chrome://tracing` or Perfetto).
    pub fn chrome_trace(&self) -> osiris_trace::Json {
        self.kernel.chrome_trace()
    }

    /// The post-mortem black box (last events per component), if tracing is
    /// enabled.
    pub fn blackbox(&self) -> Option<String> {
        self.kernel.blackbox()
    }

    /// The virtual-time telemetry sampler (empty unless
    /// [`OsConfig::timeseries`] enabled sampling).
    pub fn timeseries(&self) -> &osiris_metrics::TimeseriesSampler {
        self.kernel.timeseries()
    }

    /// The recorded telemetry time series as a JSON document, after a final
    /// flush sample at the current virtual time.
    pub fn timeseries_json(&mut self) -> osiris_trace::Json {
        self.kernel.flush_timeseries();
        self.kernel.timeseries().to_json()
    }

    /// Writes [`Os::timeseries_json`] to `path`, creating parent
    /// directories as needed.
    pub fn write_timeseries(&mut self, path: &str) -> std::io::Result<std::path::PathBuf> {
        let doc = self.timeseries_json();
        let path = std::path::PathBuf::from(path);
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(&path, doc.pretty())?;
        Ok(path)
    }

    /// Cross-component consistency audit. Call at quiescence (no in-flight
    /// syscalls). Returns human-readable violations; empty means the global
    /// state is consistent.
    ///
    /// This is the experimental check behind the paper's core claim: under
    /// the pessimistic/enhanced policies recovery never leaves
    /// cross-component state inconsistent, while the stateless/naive
    /// baselines readily do.
    pub fn audit(&self) -> Vec<String> {
        let facts = self.kernel.audit_facts();
        let set = |comp: &str, key: &str| -> BTreeSet<u64> {
            facts
                .iter()
                .filter(|(c, k, _)| *c == comp && k == key)
                .map(|(_, _, v)| *v)
                .collect()
        };
        let mut violations = Vec::new();

        let pm_alive = set("pm", "pm.alive");
        let vm_spaces = set("vm", "vm.space");
        for pid in pm_alive.difference(&vm_spaces) {
            violations.push(format!(
                "pid {} alive in PM but has no VM address space",
                pid
            ));
        }
        let pm_all = set("pm", "pm.proc");
        for pid in vm_spaces.difference(&pm_all) {
            violations.push(format!("VM address space for pid {} unknown to PM", pid));
        }

        let fd_pids = set("vfs", "vfs.fd_pid");
        for pid in fd_pids.difference(&pm_alive) {
            violations.push(format!("VFS descriptors held by non-live pid {}", pid));
        }

        let one = |comp: &str, key: &str| -> Option<u64> {
            facts
                .iter()
                .find(|(c, k, _)| *c == comp && k == key)
                .map(|(_, _, v)| *v)
        };
        for (comp, key, val) in &facts {
            if key.contains("torn") || key.contains("orphan") {
                violations.push(format!("{}: {} (value {})", comp, key, val));
            }
        }

        if let (Some(owned), Some(free), Some(total)) = (
            one("vm", "vm.frames_owned"),
            one("vm", "vm.frames_free"),
            one("vm", "vm.frames_total"),
        ) {
            if owned + free != total {
                violations.push(format!(
                    "VM frame accounting broken: {} owned + {} free != {} total",
                    owned, free, total
                ));
            }
        }
        if let (Some(list), Some(free)) =
            (one("vm", "vm.free_list_len"), one("vm", "vm.frames_free"))
        {
            if list != free {
                violations.push(format!(
                    "VM free list ({}) disagrees with free counter ({})",
                    list, free
                ));
            }
        }
        if !violations.is_empty() {
            // A consistency violation is exactly what the black box exists
            // for: dump the recent event history alongside the findings.
            if let Some(dump) = self.blackbox() {
                eprintln!(
                    "[os t={}] audit found {} violation(s):\n{}",
                    self.kernel.now(),
                    violations.len(),
                    dump
                );
            }
        }
        violations
    }

    /// The configuration this OS was booted with.
    pub fn config(&self) -> &OsConfig {
        &self.cfg
    }

    /// Captures the whole OS into a self-contained [`OsSnapshot`] backed by
    /// its own private chunk store. For O(dirty) sequential captures that
    /// deduplicate across snapshots, use [`Os::snapshot_into`] with a
    /// shared store instead.
    ///
    /// # Panics
    ///
    /// Panics unless the OS is quiescent and fault-free (no recovery or
    /// shutdown in flight, no pending replies, every component alive with a
    /// closed recovery window).
    pub fn snapshot(&self) -> OsSnapshot {
        let mut store = ChunkStore::new();
        let kernel = self.snapshot_kernel(&mut store, None);
        OsSnapshot {
            cfg: self.cfg.clone(),
            kernel,
            store: Some(store),
        }
    }

    /// Captures the OS into `store` (shared with other snapshots; chunks
    /// dedupe across them). Passing the previous snapshot of the *same* OS
    /// as `prev` makes the capture O(dirty): objects unchanged since `prev`
    /// reshare its chunks without rehashing.
    pub fn snapshot_into(&self, store: &mut ChunkStore, prev: Option<&OsSnapshot>) -> OsSnapshot {
        let kernel = self.snapshot_kernel(store, prev);
        OsSnapshot {
            cfg: self.cfg.clone(),
            kernel,
            store: None,
        }
    }

    fn snapshot_kernel(
        &self,
        store: &mut ChunkStore,
        prev: Option<&OsSnapshot>,
    ) -> KernelSnapshot<OsMsg> {
        assert!(
            self.pending_refusals.is_empty(),
            "snapshot with undelivered shutdown refusals"
        );
        self.kernel.sync_registry();
        self.kernel.snapshot_into(store, prev.map(|p| &p.kernel))
    }

    /// Forks a new OS from a self-contained snapshot (see [`Os::snapshot`]).
    /// The fork is byte-equivalent to the donor at capture time: running
    /// the same steps produces identical metrics, axiom, trace and
    /// telemetry exports.
    pub fn fork(snap: &OsSnapshot) -> Os {
        let store = snap.store.as_ref().expect(
            "Os::fork needs a self-contained snapshot; use Os::fork_from with the shared store",
        );
        Self::fork_from(snap, store).0
    }

    /// Forks a new OS from a snapshot whose chunks live in `store`. Boots a
    /// fresh twin from the snapshot's retained configuration — the boot is
    /// deterministic, so the twin's pristine images and clone-pool store
    /// re-derive the donor's exactly (asserted) — then adopts the snapshot:
    /// only objects the donor dirtied after boot are copied (O(dirty)).
    /// Returns the forked OS and the restore cost.
    pub fn fork_from(snap: &OsSnapshot, store: &ChunkStore) -> (Os, RestoreStats) {
        let mut os = Os::new(snap.cfg.clone());
        // The fault-free-prefix invariant: a same-config boot reproduces
        // the donor's boot-time clone-pool store bit for bit. If this
        // fires, boot is not deterministic and forked runs cannot be
        // trusted to reproduce from-boot runs.
        assert_eq!(
            os.kernel.cas_fingerprint(),
            snap.kernel.cas_fingerprint(),
            "forked boot diverged from the snapshot donor's boot"
        );
        let stats = os.kernel.adopt_snapshot(&snap.kernel, store);
        (os, stats)
    }

    /// Re-targets this OS at `snap` without rebooting, if its current state
    /// permits adoption (same topology and configuration lineage, every
    /// component alive with a closed window and donor-equal pristine
    /// images). Returns the restore cost, or `None` when a fresh
    /// [`Os::fork_from`] is required. This is the campaign forge's hot
    /// path: one booted worker OS serves many fault variants.
    pub fn try_readopt(&mut self, snap: &OsSnapshot, store: &ChunkStore) -> Option<RestoreStats> {
        if !config_compatible(&self.cfg, &snap.cfg) || !self.kernel.can_adopt(&snap.kernel) {
            return None;
        }
        self.pending_refusals.clear();
        Some(self.kernel.adopt_snapshot(&snap.kernel, store))
    }
}

/// Whether two configurations boot byte-identical systems, for the purpose
/// of deciding snapshot adoption. Conservative: custom policies compare by
/// name only, so two distinct custom policies sharing a name must not be
/// mixed within one forge.
fn config_compatible(a: &OsConfig, b: &OsConfig) -> bool {
    let policy_name = |c: &OsConfig| c.custom_policy.as_ref().map(|p| p.name().to_string());
    a.policy == b.policy
        && policy_name(a) == policy_name(b)
        && a.instrumentation == b.instrumentation
        && a.cost == b.cost
        && a.vm_frames == b.vm_frames
        && a.vfs_cache_blocks == b.vfs_cache_blocks
        && a.vfs_threads == b.vfs_threads
        && a.escalation == b.escalation
        && a.shutdown_grace == b.shutdown_grace
        && a.trace.enabled == b.trace.enabled
        && a.trace.capacity == b.trace.capacity
        && a.metrics == b.metrics
        && a.axiom == b.axiom
        && a.timeseries == b.timeseries
        && a.watchdog == b.watchdog
}

/// A captured OS: the kernel snapshot plus the boot configuration needed to
/// fork twins. Self-contained when made by [`Os::snapshot`] (owns its chunk
/// store); store-relative when made by [`Os::snapshot_into`] (the caller's
/// shared store holds the chunks, and [`OsSnapshot::release`] must be
/// called before discarding the snapshot to return its references).
pub struct OsSnapshot {
    cfg: OsConfig,
    kernel: KernelSnapshot<OsMsg>,
    store: Option<ChunkStore>,
}

impl OsSnapshot {
    /// Virtual time at capture.
    pub fn now(&self) -> u64 {
        self.kernel.now()
    }

    /// The configuration the donor was booted with.
    pub fn config(&self) -> &OsConfig {
        &self.cfg
    }

    /// Logical capture size: manifest bytes across all component heaps
    /// (shared chunks counted once per referencing manifest).
    pub fn manifest_bytes(&self) -> usize {
        self.kernel.manifest_bytes()
    }

    /// Releases a store-relative snapshot's chunk references back to
    /// `store`. Dropping such a snapshot without releasing leaks resident
    /// chunks in the shared store. Self-contained snapshots just drop.
    pub fn release(self, store: &mut ChunkStore) {
        assert!(
            self.store.is_none(),
            "release() is for store-relative snapshots; self-contained ones just drop"
        );
        self.kernel.release(store);
    }
}

/// Syscalls admitted during a shutdown grace window: just enough to let an
/// application persist its state (paper §VII).
fn is_save_syscall(call: &Syscall) -> bool {
    matches!(
        call,
        Syscall::DsPut { .. }
            | Syscall::Write { .. }
            | Syscall::Fsync { .. }
            | Syscall::Close { .. }
            | Syscall::Exit { .. }
    )
}

impl OsEngine for Os {
    fn submit(&mut self, sid: SyscallId, pid: Pid, call: Syscall) {
        if self.kernel.shutdown_pending() && !is_save_syscall(&call) {
            // Non-save calls are refused during the grace window so the
            // remaining budget is spent on state saving.
            self.pending_refusals.push((
                sid,
                pid,
                SysReply::Err(osiris_kernel::abi::Errno::ESHUTDOWN),
            ));
            return;
        }
        let dst = self.route(&call);
        self.kernel
            .send_user_request(dst, OsMsg::User { pid, call }, sid, pid);
    }

    fn pump(&mut self) -> Vec<(SyscallId, Pid, SysReply)> {
        self.kernel.pump();
        let mut replies = std::mem::take(&mut self.pending_refusals);
        replies.extend(self.kernel.take_user_replies());
        replies
    }

    fn take_kill_events(&mut self) -> Vec<Pid> {
        self.kernel.take_kill_events()
    }

    fn fire_next_timer(&mut self) -> bool {
        if !self.kernel.fire_next_timer() {
            return false;
        }
        self.kernel.pump();
        true
    }

    fn shutdown_state(&self) -> Option<ShutdownKind> {
        self.kernel.shutdown_state().cloned()
    }

    fn now(&self) -> u64 {
        self.kernel.now()
    }

    fn charge_user(&mut self, units: u64) {
        let c = self.kernel.cost().user_compute;
        self.kernel.charge(units * c);
    }
}
