//! DS — the Data Store.
//!
//! A persistent key-value store service, as in MINIX 3: other components and
//! user programs publish and retrieve configuration and state under string
//! keys. DS is deliberately simple and rarely issues state-modifying calls
//! to the rest of the system — which is why it has the *highest* enhanced
//! recovery coverage and the *lowest* pessimistic coverage in Table I: its
//! very first outgoing SEEP (the trace `Announce` to RS) is
//! non-state-modifying, so the pessimistic policy closes the window almost
//! immediately while the enhanced policy keeps it open to the end.

use osiris_checkpoint::{Heap, PCell, PMap};
use osiris_kernel::abi::{Errno, Pid, SysReply, Syscall};
use osiris_kernel::{Ctx, Message, ReturnPath, Server};

use crate::proto::OsMsg;
use crate::topology::Topology;

/// Maximum number of keys the store accepts (quota).
pub const MAX_KEYS: usize = 4096;

#[derive(Clone, Copy, Debug)]
struct Handles {
    store: PMap<String, Vec<u8>>,
    puts: PCell<u64>,
}

/// The Data Store server.
#[derive(Clone, Debug)]
pub struct DataStore {
    topo: Topology,
    h: Option<Handles>,
}

impl DataStore {
    /// Creates a DS wired to the given topology.
    pub fn new(topo: Topology) -> Self {
        DataStore { topo, h: None }
    }

    fn h(&self) -> Handles {
        self.h.expect("DS used before init")
    }

    fn user_call(&self, _pid: Pid, call: &Syscall, rp: ReturnPath, ctx: &mut Ctx<'_, OsMsg>) {
        let h = self.h();
        match call {
            Syscall::DsPut { key, value } => {
                ctx.site("ds.put.entry");
                // Trace the publication to RS *first*. This notification is
                // non-state-modifying: under the pessimistic policy it closes
                // the recovery window right here; under the enhanced policy
                // the window survives to the end of the handler.
                ctx.notify(self.topo.rs, OsMsg::Announce { key: key.clone() });
                ctx.site("ds.put.announced");
                let fresh =
                    ctx.site_branch("ds.put.fresh", !h.store.contains_key(ctx.heap_ref(), key));
                if fresh && h.store.len(ctx.heap_ref()) >= MAX_KEYS {
                    ctx.reply(rp, OsMsg::UserReply(SysReply::Err(Errno::ENOSPC)));
                    return;
                }
                ctx.site("ds.put.quota");
                h.store.insert(ctx.heap(), key.clone(), value.clone());
                h.puts.update(ctx.heap(), |n| *n += 1);
                ctx.site("ds.put.commit");
                ctx.reply(rp, OsMsg::UserReply(SysReply::Ok));
            }
            Syscall::DsGet { key } => {
                ctx.site("ds.get.entry");
                match h.store.get(ctx.heap_ref(), key) {
                    Some(v) => ctx.reply(rp, OsMsg::UserReply(SysReply::Data(v))),
                    None => ctx.reply(rp, OsMsg::UserReply(SysReply::Err(Errno::ENOKEY))),
                }
            }
            Syscall::DsDel { key } => {
                ctx.site("ds.del.entry");
                match h.store.remove(ctx.heap(), key) {
                    Some(_) => ctx.reply(rp, OsMsg::UserReply(SysReply::Ok)),
                    None => ctx.reply(rp, OsMsg::UserReply(SysReply::Err(Errno::ENOKEY))),
                }
            }
            Syscall::DsList { prefix } => {
                ctx.site("ds.list.entry");
                let mut names = Vec::new();
                h.store.for_each(ctx.heap_ref(), |k, _| {
                    if k.starts_with(prefix.as_str()) {
                        names.push(k.clone());
                    }
                });
                ctx.site("ds.list.scan");
                ctx.reply(rp, OsMsg::UserReply(SysReply::Names(names)));
            }
            _ => ctx.reply(rp, OsMsg::UserReply(SysReply::Err(Errno::ENOSYS))),
        }
    }
}

impl Server<OsMsg> for DataStore {
    fn name(&self) -> &'static str {
        "ds"
    }

    fn init(&mut self, ctx: &mut Ctx<'_, OsMsg>) {
        let heap = ctx.heap();
        self.h = Some(Handles {
            store: heap.alloc_map("ds.store"),
            puts: heap.alloc_cell("ds.puts", 0),
        });
    }

    fn handle(&mut self, msg: &Message<OsMsg>, ctx: &mut Ctx<'_, OsMsg>) {
        match &msg.payload {
            OsMsg::User { pid, call } => self.user_call(*pid, call, msg.return_path(), ctx),
            OsMsg::StatusPublish { round } => {
                // RS persists its heartbeat status here.
                ctx.site("ds.status.entry");
                let h = self.h();
                h.store.insert(
                    ctx.heap(),
                    "rs/status".to_string(),
                    round.to_le_bytes().to_vec(),
                );
                ctx.site("ds.status.stored");
            }
            OsMsg::QuarantinePublish { target } => {
                // RS records escalation verdicts here so surviving services
                // (and post-mortem tooling) can discover benched components.
                ctx.site("ds.quarantine.entry");
                let h = self.h();
                h.store
                    .insert(ctx.heap(), format!("rs/quarantined/{target}"), vec![1]);
                ctx.site("ds.quarantine.stored");
            }
            OsMsg::IntentPublish { target } => {
                // Observability mirror of the kernel's authoritative
                // recovery intent log: which recovery the RS is conducting.
                ctx.site("ds.intent.entry");
                let h = self.h();
                h.store
                    .insert(ctx.heap(), format!("rs/intent/{target}"), vec![1]);
                ctx.site("ds.intent.stored");
            }
            OsMsg::Ping => {
                ctx.site("ds.ping");
                ctx.reply(msg.return_path(), OsMsg::Pong)
            }
            _ => {}
        }
    }

    fn audit_facts(&self, heap: &Heap) -> Vec<(String, u64)> {
        vec![("ds.keys".to_string(), self.h().store.len(heap) as u64)]
    }

    fn clone_box(&self) -> Box<dyn Server<OsMsg>> {
        Box::new(self.clone())
    }
}
