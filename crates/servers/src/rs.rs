//! RS — the Recovery Server.
//!
//! The key OSIRIS component (paper §III-C, §IV-C): it is notified by the
//! kernel when a server crashes, initiates the restart / rollback /
//! reconciliation sequence, and periodically sends heartbeat messages to
//! detect hung servers, killing (and then recovering) those that stop
//! answering. RS is itself recoverable: if it crashes while idle, the kernel
//! recovers it directly; a fault *during* a recovery it is conducting
//! violates the single-fault model and brings the system down — the residual
//! "crash" rows of Tables II/III.

use osiris_checkpoint::{Heap, PCell, PMap};
use osiris_kernel::{Ctx, Endpoint, Message, Server};

use crate::proto::OsMsg;
use crate::topology::Topology;

#[derive(Clone, Debug)]
struct Service {
    endpoint: u8,
    restarts: u64,
}

#[derive(Clone, Copy, Debug)]
struct Handles {
    services: PMap<u32, Service>,
    /// Endpoint → heartbeat round in which a ping is still unanswered.
    outstanding: PMap<u32, u64>,
    /// Ping message id → target endpoint.
    ping_waits: PMap<u64, u32>,
    round: PCell<u64>,
}

/// The Recovery Server.
#[derive(Clone, Debug)]
pub struct RecoveryServer {
    topo: Topology,
    heartbeat_interval: u64,
    h: Option<Handles>,
}

impl RecoveryServer {
    /// Creates an RS that heartbeats all core servers every
    /// `heartbeat_interval` cycles.
    pub fn new(topo: Topology, heartbeat_interval: u64) -> Self {
        RecoveryServer {
            topo,
            heartbeat_interval,
            h: None,
        }
    }

    fn h(&self) -> Handles {
        self.h.expect("RS used before init")
    }

    /// Components RS watches: every core server except itself, plus the
    /// disk driver.
    fn watched(&self) -> Vec<u8> {
        [
            self.topo.pm,
            self.topo.vm,
            self.topo.vfs,
            self.topo.ds,
            self.topo.disk,
        ]
        .iter()
        .filter_map(|ep| match ep {
            Endpoint::Component(c) => Some(*c),
            _ => None,
        })
        .collect()
    }

    fn heartbeat_round(&self, ctx: &mut Ctx<'_, OsMsg>) {
        ctx.site("rs.hb.entry");
        let h = self.h();
        let round = h.round.get(ctx.heap_ref());

        // Servers that never answered last round's ping are hung: have the
        // kernel kill and recover them (paper §II-E heartbeat detection).
        let silent: Vec<u32> = h.outstanding.keys(ctx.heap_ref());
        for ep in silent {
            ctx.site("rs.hb.silent");
            h.outstanding.remove(ctx.heap(), &ep);
            ctx.kill_hung(ep as u8);
        }
        ctx.site("rs.hb.checked");

        // New round of pings. `Ping` is non-state-modifying, so under the
        // enhanced policy the heartbeat handler itself stays recoverable.
        for ep in self.watched() {
            let id = ctx.send_request(Endpoint::Component(ep), OsMsg::Ping);
            h.ping_waits.insert(ctx.heap(), id.0, u32::from(ep));
            h.outstanding.insert(ctx.heap(), u32::from(ep), round);
        }
        // Persist the service status into DS (state-modifying: this closes
        // the recovery window under *both* policies — the remainder of the
        // round is unrecoverable bookkeeping, which is why RS has roughly
        // the same, middling coverage under both policies in Table I).
        ctx.notify(self.topo.ds, OsMsg::StatusPublish { round });
        ctx.site("rs.hb.published");
        h.round.set(ctx.heap(), round + 1);
        ctx.set_timer(self.heartbeat_interval, OsMsg::HeartbeatTick);
        ctx.site("rs.hb.armed");
        // Post-round bookkeeping: compact restart statistics.
        let mut total_restarts = 0;
        h.services
            .for_each(ctx.heap_ref(), |_, svc| total_restarts += svc.restarts);
        ctx.site("rs.hb.compact");
        let _ = total_restarts;
        ctx.charge(40);
        ctx.site("rs.hb.done");
    }
}

impl Server<OsMsg> for RecoveryServer {
    fn name(&self) -> &'static str {
        "rs"
    }

    fn init(&mut self, ctx: &mut Ctx<'_, OsMsg>) {
        let heap = ctx.heap();
        let h = Handles {
            services: heap.alloc_map("rs.services"),
            outstanding: heap.alloc_map("rs.outstanding"),
            ping_waits: heap.alloc_map("rs.ping_waits"),
            round: heap.alloc_cell("rs.round", 0),
        };
        for ep in [
            self.topo.pm,
            self.topo.vm,
            self.topo.vfs,
            self.topo.ds,
            self.topo.disk,
        ] {
            if let Endpoint::Component(c) = ep {
                h.services.insert(
                    heap,
                    u32::from(c),
                    Service {
                        endpoint: c,
                        restarts: 0,
                    },
                );
            }
        }
        self.h = Some(h);
        ctx.set_timer(self.heartbeat_interval, OsMsg::HeartbeatTick);
    }

    fn handle(&mut self, msg: &Message<OsMsg>, ctx: &mut Ctx<'_, OsMsg>) {
        let h = self.h();
        match &msg.payload {
            OsMsg::CrashNotify { target } => {
                // Recovery code path: restart, rollback and reconciliation
                // are executed by the kernel under RS direction.
                ctx.site("rs.recover.notify");
                ctx.heap_ref()
                    .trace_emit(osiris_trace::TraceEvent::RsCrashNotified { target: *target });
                h.services
                    .update(ctx.heap(), &u32::from(*target), |s| s.restarts += 1);
                ctx.site("rs.recover.account");
                ctx.recover(*target);
                ctx.site("rs.recover.issued");
            }
            OsMsg::KillRequester { pid } => {
                // Kill-requester reconciliation (paper §VII): terminate the
                // requesting process through the normal kill path so every
                // compartment cleans its requester-scoped state.
                ctx.site("rs.killreq.entry");
                ctx.send_request(
                    self.topo.pm,
                    OsMsg::User {
                        pid: *pid,
                        call: osiris_kernel::abi::Syscall::Kill {
                            pid: *pid,
                            sig: osiris_kernel::abi::Signal::SigKill,
                        },
                    },
                );
                ctx.site("rs.killreq.sent");
            }
            OsMsg::HeartbeatTick => self.heartbeat_round(ctx),
            OsMsg::Pong | OsMsg::RCrash => {
                ctx.site("rs.pong");
                if let Some(request_id) = msg.reply_to {
                    if let Some(ep) = h.ping_waits.remove(ctx.heap(), &request_id.0) {
                        h.outstanding.remove(ctx.heap(), &ep);
                    }
                }
            }
            OsMsg::Announce { .. } => {
                // Contractually state-free (the non-state-modifying SEEP
                // classification of `Announce` depends on it): trace only.
                ctx.site("rs.announce");
            }
            OsMsg::Ping => {
                ctx.site("rs.ping");
                ctx.reply(msg.return_path(), OsMsg::Pong)
            }
            _ => {}
        }
    }

    fn audit_facts(&self, heap: &Heap) -> Vec<(String, u64)> {
        let mut facts = Vec::new();
        self.h().services.for_each(heap, |_, s| {
            facts.push(("rs.restarts".to_string(), s.restarts));
            facts.push(("rs.service".to_string(), u64::from(s.endpoint)));
        });
        facts
    }

    fn clone_box(&self) -> Box<dyn Server<OsMsg>> {
        Box::new(self.clone())
    }
}
