//! RS — the Recovery Server.
//!
//! The key OSIRIS component (paper §III-C, §IV-C): it is notified by the
//! kernel when a server crashes, initiates the restart / rollback /
//! reconciliation sequence, and periodically sends heartbeat messages to
//! detect hung servers, killing (and then recovering) those that stop
//! answering. RS is itself recoverable: if it crashes while idle, the kernel
//! recovers it directly. A fault *during* a recovery it is conducting used
//! to violate the single-fault model and bring the system down (the residual
//! "crash" rows of Tables II/III); now the kernel persists a recovery
//! *intent* for every conduct ([`Ctx::record_intent`]), fresh-restarts the
//! crashed RS, and re-drives the interrupted recovery from the intent log —
//! so the victim still recovers and only the RS's soft heartbeat state is
//! lost.
//!
//! The intent log is not a separate store: each `record_intent` call is
//! sealed into the axiom (the hash-chained control-plane log) as an
//! `IntentRecorded` event, and the kernel re-drives from the *reduction* of
//! that log — the live `ControlState`'s intent slots. An intent therefore
//! survives exactly as long as the axiom proves it unresolved, and a
//! recorded run's re-drives can be replayed and bisected like every other
//! control-plane transition.

use osiris_checkpoint::{Heap, PCell, PMap};
use osiris_core::{EscalationPolicy, EscalationStep};
use osiris_kernel::{Ctx, Endpoint, IntentPhase, Message, Server};

use crate::proto::OsMsg;
use crate::topology::Topology;

#[derive(Clone, Debug)]
struct Service {
    endpoint: u8,
    restarts: u64,
    /// Virtual-clock timestamps of recent restarts, pruned to the
    /// escalation policy's sliding window on every observation.
    restart_history: Vec<u64>,
    /// Benched by the escalation ladder: no more restarts, no heartbeats.
    quarantined: bool,
}

#[derive(Clone, Copy, Debug)]
struct Handles {
    services: PMap<u32, Service>,
    /// Endpoint → heartbeat round in which a ping is still unanswered.
    outstanding: PMap<u32, u64>,
    /// Ping message id → target endpoint.
    ping_waits: PMap<u64, u32>,
    round: PCell<u64>,
}

/// The Recovery Server.
#[derive(Clone, Debug)]
pub struct RecoveryServer {
    topo: Topology,
    heartbeat_interval: u64,
    escalation: EscalationPolicy,
    h: Option<Handles>,
}

impl RecoveryServer {
    /// Creates an RS that heartbeats all core servers every
    /// `heartbeat_interval` cycles and escalates crash-looping services
    /// per `escalation`.
    pub fn new(topo: Topology, heartbeat_interval: u64, escalation: EscalationPolicy) -> Self {
        RecoveryServer {
            topo,
            heartbeat_interval,
            escalation,
            h: None,
        }
    }

    fn h(&self) -> Handles {
        self.h.expect("RS used before init")
    }

    /// Components RS watches: every core server except itself, plus the
    /// disk driver.
    fn watched(&self) -> Vec<u8> {
        [
            self.topo.pm,
            self.topo.vm,
            self.topo.vfs,
            self.topo.ds,
            self.topo.disk,
        ]
        .iter()
        .filter_map(|ep| match ep {
            Endpoint::Component(c) => Some(*c),
            _ => None,
        })
        .collect()
    }

    fn heartbeat_round(&self, ctx: &mut Ctx<'_, OsMsg>) {
        ctx.site("rs.hb.entry");
        let h = self.h();
        let round = h.round.get(ctx.heap_ref());

        // Servers that never answered last round's ping are hung: have the
        // kernel kill and recover them (paper §II-E heartbeat detection).
        let silent: Vec<u32> = h.outstanding.keys(ctx.heap_ref());
        for ep in silent {
            ctx.site("rs.hb.silent");
            h.outstanding.remove(ctx.heap(), &ep);
            // The ping that went unanswered still has a wait entry keyed by
            // message id; drop it too, or hung servers leak one entry per
            // round for the rest of the run.
            while let Some(stale) = h.ping_waits.find_key(ctx.heap_ref(), |_, v| *v == ep) {
                h.ping_waits.remove(ctx.heap(), &stale);
            }
            ctx.kill_hung(ep as u8);
        }
        ctx.site("rs.hb.checked");

        // New round of pings. `Ping` is non-state-modifying, so under the
        // enhanced policy the heartbeat handler itself stays recoverable.
        // Quarantined services are benched: pinging them would only bounce.
        let mut benched: Vec<u8> = Vec::new();
        h.services.for_each(ctx.heap_ref(), |_, s| {
            if s.quarantined {
                benched.push(s.endpoint);
            }
        });
        for ep in self.watched() {
            if benched.contains(&ep) {
                continue;
            }
            let id = ctx.send_request(Endpoint::Component(ep), OsMsg::Ping);
            h.ping_waits.insert(ctx.heap(), id.0, u32::from(ep));
            h.outstanding.insert(ctx.heap(), u32::from(ep), round);
        }
        // Persist the service status into DS (state-modifying: this closes
        // the recovery window under *both* policies — the remainder of the
        // round is unrecoverable bookkeeping, which is why RS has roughly
        // the same, middling coverage under both policies in Table I).
        ctx.notify(self.topo.ds, OsMsg::StatusPublish { round });
        ctx.site("rs.hb.published");
        h.round.set(ctx.heap(), round + 1);
        ctx.set_timer(self.heartbeat_interval, OsMsg::HeartbeatTick);
        ctx.site("rs.hb.armed");
        // Post-round bookkeeping: compact restart statistics.
        let mut total_restarts = 0;
        h.services
            .for_each(ctx.heap_ref(), |_, svc| total_restarts += svc.restarts);
        ctx.site("rs.hb.compact");
        let _ = total_restarts;
        ctx.charge(40);
        ctx.site("rs.hb.done");
    }
}

impl Server<OsMsg> for RecoveryServer {
    fn name(&self) -> &'static str {
        "rs"
    }

    fn init(&mut self, ctx: &mut Ctx<'_, OsMsg>) {
        let heap = ctx.heap();
        let h = Handles {
            services: heap.alloc_map("rs.services"),
            outstanding: heap.alloc_map("rs.outstanding"),
            ping_waits: heap.alloc_map("rs.ping_waits"),
            round: heap.alloc_cell("rs.round", 0),
        };
        for ep in [
            self.topo.pm,
            self.topo.vm,
            self.topo.vfs,
            self.topo.ds,
            self.topo.disk,
        ] {
            if let Endpoint::Component(c) = ep {
                h.services.insert(
                    heap,
                    u32::from(c),
                    Service {
                        endpoint: c,
                        restarts: 0,
                        restart_history: Vec::new(),
                        quarantined: false,
                    },
                );
            }
        }
        self.h = Some(h);
        ctx.set_timer(self.heartbeat_interval, OsMsg::HeartbeatTick);
    }

    fn handle(&mut self, msg: &Message<OsMsg>, ctx: &mut Ctx<'_, OsMsg>) {
        let h = self.h();
        match &msg.payload {
            OsMsg::CrashNotify { target } => {
                // Recovery code path: restart, rollback and reconciliation
                // are executed by the kernel under RS direction — but only
                // after the escalation ladder has had its say. A service
                // that keeps crashing inside the policy's sliding window is
                // first restarted with exponential backoff, then quarantined
                // (benched, its requests bounced with a crash reply), and
                // once the quarantine cap is hit the system shuts down in a
                // controlled fashion rather than thrash forever.
                ctx.site("rs.recover.notify");
                ctx.heap_ref()
                    .trace_emit(osiris_trace::TraceEvent::RsCrashNotified { target: *target });
                let now = ctx.now();
                let policy = self.escalation;
                let mut benched = 0u32;
                h.services.for_each(ctx.heap_ref(), |_, s| {
                    if s.quarantined {
                        benched += 1;
                    }
                });
                let mut pressure = 1u32;
                h.services.update(ctx.heap(), &u32::from(*target), |s| {
                    s.restarts += 1;
                    pressure = policy.budget.observe(&mut s.restart_history, now);
                });
                ctx.site("rs.recover.account");
                let step = policy.decide(pressure, benched);
                let (backoff, exhausted) = match step {
                    EscalationStep::Restart { backoff } => (backoff, false),
                    _ => (0, true),
                };
                ctx.note_escalation(*target, pressure, backoff, exhausted);
                match step {
                    EscalationStep::Restart { backoff: 0 } => {
                        // Refine the kernel's persisted intent before the
                        // conduct: if RS crashes past this point the kernel
                        // re-drives the recovery from the intent log. The DS
                        // mirror is observability only.
                        ctx.record_intent(*target, IntentPhase::Issued);
                        ctx.notify(self.topo.ds, OsMsg::IntentPublish { target: *target });
                        ctx.recover(*target);
                        // Replenish the spare-copy pool off the hot path:
                        // after the restore the heap matches the manifest,
                        // so the refresh reshares every chunk (no copying).
                        ctx.refresh_image(*target);
                        ctx.site("rs.recover.issued");
                    }
                    EscalationStep::Restart { backoff } => {
                        // Defer the restart: the kernel keeps the system in
                        // recovery (only RS runs) until the timer fires and
                        // the RecoveryTick below issues the actual recovery.
                        ctx.record_intent(*target, IntentPhase::Deferred);
                        ctx.notify(self.topo.ds, OsMsg::IntentPublish { target: *target });
                        ctx.set_timer(backoff, OsMsg::RecoveryTick { target: *target });
                        ctx.site("rs.recover.deferred");
                    }
                    EscalationStep::Quarantine => {
                        h.services
                            .update(ctx.heap(), &u32::from(*target), |s| s.quarantined = true);
                        ctx.notify(self.topo.ds, OsMsg::QuarantinePublish { target: *target });
                        ctx.quarantine(*target);
                        ctx.site("rs.recover.quarantined");
                    }
                    EscalationStep::Shutdown => {
                        ctx.controlled_shutdown(
                            "escalation: restart budget and quarantine cap exhausted",
                        );
                        ctx.site("rs.recover.shutdown");
                    }
                }
            }
            OsMsg::RecoveryTick { target } => {
                // Backoff expired: issue the deferred recovery. A stale tick
                // (service already recovered or quarantined meanwhile) is
                // absorbed by the kernel's crash_info guard.
                ctx.site("rs.recover.tick");
                ctx.record_intent(*target, IntentPhase::Issued);
                ctx.recover(*target);
                ctx.refresh_image(*target);
            }
            OsMsg::KillRequester { pid } => {
                // Kill-requester reconciliation (paper §VII): terminate the
                // requesting process through the normal kill path so every
                // compartment cleans its requester-scoped state.
                ctx.site("rs.killreq.entry");
                ctx.send_request(
                    self.topo.pm,
                    OsMsg::User {
                        pid: *pid,
                        call: osiris_kernel::abi::Syscall::Kill {
                            pid: *pid,
                            sig: osiris_kernel::abi::Signal::SigKill,
                        },
                    },
                );
                ctx.site("rs.killreq.sent");
            }
            OsMsg::HeartbeatTick => self.heartbeat_round(ctx),
            OsMsg::Pong | OsMsg::RCrash => {
                ctx.site("rs.pong");
                if let Some(request_id) = msg.reply_to {
                    if let Some(ep) = h.ping_waits.remove(ctx.heap(), &request_id.0) {
                        h.outstanding.remove(ctx.heap(), &ep);
                    }
                }
            }
            OsMsg::Announce { .. } => {
                // Contractually state-free (the non-state-modifying SEEP
                // classification of `Announce` depends on it): trace only.
                ctx.site("rs.announce");
            }
            OsMsg::Ping => {
                ctx.site("rs.ping");
                ctx.reply(msg.return_path(), OsMsg::Pong)
            }
            _ => {}
        }
    }

    fn audit_facts(&self, heap: &Heap) -> Vec<(String, u64)> {
        let mut facts = Vec::new();
        self.h().services.for_each(heap, |_, s| {
            facts.push(("rs.restarts".to_string(), s.restarts));
            facts.push(("rs.service".to_string(), u64::from(s.endpoint)));
            if s.quarantined {
                facts.push(("rs.quarantined".to_string(), u64::from(s.endpoint)));
            }
        });
        facts
    }

    fn clone_box(&self) -> Box<dyn Server<OsMsg>> {
        Box::new(self.clone())
    }
}
