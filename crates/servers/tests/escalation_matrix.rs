//! The recovery escalation ladder end to end: a persistent fail-stop fault
//! on VFS's hottest request site turns every read into a crash. The ladder
//! must restart VFS at most `max_restarts` times inside the window (with
//! backoff), then bench it, and the workload must still complete — degraded
//! to fast `E_CRASH` replies for the quarantined service — in bounded
//! virtual time under both conservative recovery policies.

use osiris_core::{EscalationPolicy, PolicyKind, RestartBudget};
use osiris_faults::{classify_run, FaultKind, FaultPlan, Injector, Outcome, SiteId, SiteKindTag};
use osiris_kernel::abi::{Errno, OpenFlags};
use osiris_kernel::{Host, ProgramRegistry, RunOutcome};
use osiris_servers::{Os, OsConfig};
use osiris_trace::TraceConfig;

const MAX_RESTARTS: u32 = 3;
const READS: u32 = 10;

/// A deliberately tight ladder so the test exhausts it in a handful of
/// crashes: three restarts in the window, short backoffs, quarantine next.
fn tight_ladder() -> EscalationPolicy {
    EscalationPolicy {
        budget: RestartBudget {
            window: 50_000_000,
            max_restarts: MAX_RESTARTS,
        },
        backoff_base: 5_000,
        backoff_max: 40_000,
        max_quarantined: 2,
    }
}

/// Persistent fail-stop on the read dispatch site: fires on every
/// execution, the fault model the ladder exists for.
fn hot_read_fault() -> Injector {
    Injector::new(&FaultPlan {
        site: SiteId {
            component: "vfs".to_string(),
            site: "vfs.read.entry".to_string(),
            kind: SiteKindTag::Block,
        },
        kind: FaultKind::Crash,
        transient: false,
    })
}

/// Sets up a file, releases every descriptor, then hammers the crashing
/// read path tolerating `E_CRASH` — the well-written-client contract from
/// the paper's error-virtualization argument. Exits 0 only if *all* reads
/// failed with `E_CRASH` (crash replies while restarting, bounced replies
/// once quarantined).
fn registry() -> ProgramRegistry {
    let mut registry = ProgramRegistry::new();
    registry.register("main", |sys| {
        let fd = match sys.open("/tmp/hot", OpenFlags::RDWR_CREATE) {
            Ok(fd) => fd,
            Err(_) => return 10,
        };
        if sys.write(fd, &[7u8; 512]).is_err() {
            return 11;
        }
        // Drop all VFS state before the crash loop: the quarantined server
        // never sees the exit-time cleanup notification, so anything still
        // held here would (correctly) trip the consistency audit.
        if sys.close(fd).is_err() || sys.unlink("/tmp/hot").is_err() {
            return 12;
        }
        let mut bounced = 0;
        for _ in 0..READS {
            // The site fires before fd validation, so the stale fd still
            // exercises the hot path.
            match sys.read(fd, 64) {
                Err(Errno::ECRASH) => bounced += 1,
                Ok(_) => return 13,
                Err(_) => return 14,
            }
        }
        if bounced == READS {
            0
        } else {
            15
        }
    });
    registry
}

fn run_hot_loop(policy: PolicyKind) -> (RunOutcome, Os) {
    osiris_kernel::install_quiet_panic_hook();
    let mut cfg = OsConfig::with_policy(policy);
    cfg.escalation = tight_ladder();
    cfg.trace = TraceConfig::on();
    let mut os = Os::new(cfg);
    os.set_fault_hook(Box::new(hot_read_fault()));
    let mut host = Host::new(os, registry());
    let outcome = host.run("main", &[]);
    (outcome, host.into_engine())
}

/// The full ladder contract for one policy.
fn assert_bounded_and_degraded(policy: PolicyKind) {
    let (outcome, os) = run_hot_loop(policy);
    assert!(
        matches!(outcome, RunOutcome::Completed { init_code: 0, .. }),
        "{policy:?}: crash loop must not take the system down: {outcome:?}"
    );

    // Restarts are bounded by the budget; the crash that broke the budget
    // is quarantined, not recovered.
    let vfs = os.reports().into_iter().find(|r| r.name == "vfs").unwrap();
    assert_eq!(
        vfs.recoveries,
        u64::from(MAX_RESTARTS),
        "{policy:?}: exactly the budgeted restarts"
    );
    assert_eq!(
        vfs.crashes,
        u64::from(MAX_RESTARTS) + 1,
        "{policy:?}: budget-breaking crash is benched, not restarted"
    );

    let m = os.metrics();
    assert_eq!(m.quarantines, 1, "{policy:?}");
    // VFS is component 3 in the canonical topology.
    assert_eq!(os.kernel().quarantined(), vec![3], "{policy:?}");

    // The quarantined server held no state for the dead process, so the
    // cross-component audit stays clean and the run classifies as degraded.
    let violations = os.audit();
    assert!(violations.is_empty(), "{policy:?}: audit: {violations:?}");
    assert_eq!(
        classify_run(&outcome, violations.len(), m.quarantines),
        Outcome::Degraded,
        "{policy:?}"
    );

    // Every ladder rung left a flight-recorder event.
    let text = os.trace_text();
    for needle in ["BackoffArmed", "BudgetExhausted", "Quarantined"] {
        assert!(
            text.contains(needle),
            "{policy:?}: trace must contain {needle}"
        );
    }

    // ...and a metrics series; the bounced reads show up as refusals.
    let prom = os.metrics_prometheus();
    assert!(prom.contains("osiris_quarantine_total{component=\"vfs\",endpoint=\"3\"} 1"));
    assert!(prom
        .contains("osiris_escalation_budget_exhausted_total{component=\"vfs\",endpoint=\"3\"} 1"));
    assert!(
        prom.contains("osiris_escalation_backoff_arms_total{component=\"vfs\",endpoint=\"3\"} 2")
    );
    let refusals = prom
        .lines()
        .find(|l| l.starts_with("osiris_quarantine_refusals_total{component=\"vfs\""))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(0);
    assert!(
        refusals >= u64::from(READS) - u64::from(MAX_RESTARTS) - 1,
        "{policy:?}: post-quarantine reads must be bounced ({refusals} refusals)"
    );
}

#[test]
fn persistent_vfs_crash_loop_quarantines_under_enhanced() {
    assert_bounded_and_degraded(PolicyKind::Enhanced);
}

#[test]
fn persistent_vfs_crash_loop_quarantines_under_pessimistic() {
    assert_bounded_and_degraded(PolicyKind::Pessimistic);
}

/// Acceptance: the whole escalation path — crashes, backoff timers,
/// quarantine, bounced mail — is driven off the virtual clock, so two
/// identical runs export byte-identical traces and metrics.
#[test]
fn escalated_runs_are_byte_identical() {
    let (_, a) = run_hot_loop(PolicyKind::Enhanced);
    let (_, b) = run_hot_loop(PolicyKind::Enhanced);
    assert_eq!(a.trace_text(), b.trace_text());
    assert_eq!(a.chrome_trace().pretty(), b.chrome_trace().pretty());
    assert_eq!(a.metrics_prometheus(), b.metrics_prometheus());
    assert_eq!(a.metrics_json().pretty(), b.metrics_json().pretty());
}
