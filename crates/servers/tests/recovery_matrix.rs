//! The recovery matrix: crash every server at representative sites, inside
//! and outside recovery windows, under each policy — asserting the exact
//! recovery semantics the paper defines for every cell.

use std::sync::atomic::{AtomicBool, Ordering};

use osiris_core::PolicyKind;
use osiris_kernel::abi::{Errno, OpenFlags};
use osiris_kernel::{
    FaultEffect, FaultHook, Host, Probe, ProgramRegistry, RunOutcome, ShutdownKind,
};
use osiris_servers::{Os, OsConfig};

struct CrashOnce {
    site: &'static str,
    fired: AtomicBool,
}

impl CrashOnce {
    fn new(site: &'static str) -> Self {
        CrashOnce {
            site,
            fired: AtomicBool::new(false),
        }
    }
}

impl FaultHook for CrashOnce {
    fn on_site(&mut self, probe: &Probe) -> FaultEffect {
        if probe.site == self.site && !self.fired.swap(true, Ordering::Relaxed) {
            FaultEffect::Panic
        } else {
            FaultEffect::None
        }
    }
}

/// Expected outcome of one matrix cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Expect {
    /// Rollback + E_CRASH; workload observes the error and continues.
    Recovered,
    /// Controlled shutdown (window closed or no reply possible).
    Shutdown,
}

fn run_cell(policy: PolicyKind, site: &'static str, prog: &'static str) -> (RunOutcome, Os) {
    osiris_kernel::install_quiet_panic_hook();
    let mut registry = ProgramRegistry::new();
    registry.register("leaf", |_sys| 0);
    // Each driver issues the syscall that reaches `site`, tolerates ECRASH,
    // then re-issues it to prove the server recovered.
    registry.register("drive_fork", |sys| {
        for _ in 0..2 {
            if let Ok(child) = sys.fork_run(|_c| 0) {
                if sys.waitpid(child).is_err() {
                    return 1;
                }
            }
        }
        0
    });
    registry.register("drive_spawn", |sys| {
        for _ in 0..2 {
            if let Ok(child) = sys.spawn("leaf", &[]) {
                if sys.waitpid(child).is_err() {
                    return 1;
                }
            }
        }
        0
    });
    registry.register("drive_open", |sys| {
        for i in 0..2 {
            let path = format!("/tmp/mx{i}");
            if let Ok(fd) = sys.open(&path, OpenFlags::CREATE) {
                if sys.close(fd).is_err() {
                    return 1;
                }
            }
        }
        0
    });
    registry.register("drive_brk", |sys| {
        for _ in 0..2 {
            let _ = sys.brk(4);
        }
        0
    });
    registry.register("drive_ds", |sys| {
        for i in 0..2 {
            let _ = sys.ds_put(&format!("k{i}"), b"v");
        }
        0
    });

    let mut os = Os::new(OsConfig {
        policy,
        vm_frames: 1024,
        ..Default::default()
    });
    os.set_fault_hook(Box::new(CrashOnce::new(site)));
    let mut host = Host::new(os, registry);
    let outcome = host.run(prog, &[]);
    (outcome, host.into_engine())
}

fn assert_cell(policy: PolicyKind, site: &'static str, prog: &'static str, expect: Expect) {
    let (outcome, os) = run_cell(policy, site, prog);
    match expect {
        Expect::Recovered => {
            assert!(
                matches!(outcome, RunOutcome::Completed { init_code: 0, .. }),
                "[{policy} @ {site}] expected recovery, got {outcome:?}"
            );
            assert!(
                os.metrics().recovered_rollback >= 1,
                "[{policy} @ {site}] no rollback recovery recorded"
            );
            assert!(
                os.audit().is_empty(),
                "[{policy} @ {site}] audit violations: {:?}",
                os.audit()
            );
        }
        Expect::Shutdown => {
            assert!(
                matches!(outcome, RunOutcome::Shutdown(ShutdownKind::Controlled(_))),
                "[{policy} @ {site}] expected controlled shutdown, got {outcome:?}"
            );
        }
    }
}

// ---------------- PM ----------------

#[test]
fn pm_fork_entry_recovers_under_both_osiris_policies() {
    // fork's first sites run before any send: recoverable under both.
    for policy in [PolicyKind::Pessimistic, PolicyKind::Enhanced] {
        assert_cell(policy, "pm.fork.entry", "drive_fork", Expect::Recovered);
        assert_cell(policy, "pm.fork.validate", "drive_fork", Expect::Recovered);
    }
}

#[test]
fn pm_fork_after_vm_send_shuts_down_under_both() {
    for policy in [PolicyKind::Pessimistic, PolicyKind::Enhanced] {
        assert_cell(policy, "pm.fork.vm_sent", "drive_fork", Expect::Shutdown);
    }
}

#[test]
fn pm_spawn_phase1_distinguishes_the_policies() {
    // After the read-only VfsExecLoad send: enhanced still recovers,
    // pessimistic has already closed its window.
    assert_cell(
        PolicyKind::Enhanced,
        "pm.spawn.load_sent",
        "drive_spawn",
        Expect::Recovered,
    );
    assert_cell(
        PolicyKind::Pessimistic,
        "pm.spawn.load_sent",
        "drive_spawn",
        Expect::Shutdown,
    );
}

#[test]
fn pm_spawn_continuation_phases_shut_down() {
    // Crashes while processing the async replies (phases 2/3) cannot be
    // error-virtualized: the last received message is not a request.
    for site in ["pm.spawn.loaded", "pm.spawn.commit", "pm.cont.entry"] {
        assert_cell(PolicyKind::Enhanced, site, "drive_spawn", Expect::Shutdown);
    }
}

#[test]
fn pm_post_reply_bookkeeping_shuts_down() {
    assert_cell(
        PolicyKind::Enhanced,
        "pm.post.account",
        "drive_fork",
        Expect::Shutdown,
    );
}

// ---------------- VM ----------------

#[test]
fn vm_user_call_sites_recover() {
    for policy in [PolicyKind::Pessimistic, PolicyKind::Enhanced] {
        assert_cell(policy, "vm.brk.entry", "drive_brk", Expect::Recovered);
        assert_cell(policy, "vm.brk.validate", "drive_brk", Expect::Recovered);
    }
}

#[test]
fn vm_mid_allocation_crash_rolls_back_cleanly() {
    // The torn-transaction site: rollback must leave frame accounting
    // balanced (the audit inside assert_cell checks it).
    assert_cell(
        PolicyKind::Enhanced,
        "vm.alloc.frame",
        "drive_brk",
        Expect::Recovered,
    );
}

// ---------------- VFS ----------------

#[test]
fn vfs_open_sites_recover() {
    for policy in [PolicyKind::Pessimistic, PolicyKind::Enhanced] {
        assert_cell(policy, "vfs.open.entry", "drive_open", Expect::Recovered);
    }
}

// ---------------- DS ----------------

#[test]
fn ds_put_after_announce_distinguishes_the_policies() {
    assert_cell(
        PolicyKind::Enhanced,
        "ds.put.commit",
        "drive_ds",
        Expect::Recovered,
    );
    assert_cell(
        PolicyKind::Pessimistic,
        "ds.put.commit",
        "drive_ds",
        Expect::Shutdown,
    );
}

#[test]
fn ds_entry_recovers_under_both() {
    // Before the announce send even pessimistic still has its window open.
    for policy in [PolicyKind::Pessimistic, PolicyKind::Enhanced] {
        assert_cell(policy, "ds.put.entry", "drive_ds", Expect::Recovered);
    }
}

// ---------------- rollback exactness ----------------

#[test]
fn recovery_restores_state_exactly() {
    // Put a key, then crash DS mid-put of a second key: after recovery the
    // first key must be intact and the second absent.
    osiris_kernel::install_quiet_panic_hook();
    let mut registry = ProgramRegistry::new();
    registry.register("main", |sys| {
        sys.ds_put("stable", b"before").unwrap();
        match sys.ds_put("victim", b"lost") {
            Err(Errno::ECRASH) => {}
            other => panic!("expected ECRASH, got {other:?}"),
        }
        assert_eq!(
            sys.ds_get("stable").unwrap(),
            b"before",
            "pre-crash state survives"
        );
        assert_eq!(
            sys.ds_get("victim").unwrap_err(),
            Errno::ENOKEY,
            "crashed put rolled back"
        );
        sys.ds_put("victim", b"second try").unwrap();
        0
    });
    let mut os = Os::new(OsConfig {
        vm_frames: 1024,
        ..Default::default()
    });
    struct SecondPut {
        puts_seen: u32,
    }
    impl FaultHook for SecondPut {
        fn on_site(&mut self, probe: &Probe) -> FaultEffect {
            if probe.site == "ds.put.commit" {
                self.puts_seen += 1;
                if self.puts_seen == 2 {
                    return FaultEffect::Panic;
                }
            }
            FaultEffect::None
        }
    }
    os.set_fault_hook(Box::new(SecondPut { puts_seen: 0 }));
    let mut host = Host::new(os, registry);
    let outcome = host.run("main", &[]);
    assert!(
        matches!(outcome, RunOutcome::Completed { init_code: 0, .. }),
        "{outcome:?}"
    );
}

// ---------------- baselines for contrast ----------------

#[test]
fn naive_never_shuts_down_but_leaves_torn_state() {
    let (outcome, os) = run_cell(PolicyKind::Naive, "vm.alloc.frame", "drive_brk");
    assert!(outcome.completed(), "naive always limps on: {outcome:?}");
    assert!(
        !os.audit().is_empty(),
        "the half-applied frame allocation must be visible to the audit"
    );
}

#[test]
fn stateless_loses_earlier_state() {
    osiris_kernel::install_quiet_panic_hook();
    let mut registry = ProgramRegistry::new();
    registry.register("main", |sys| {
        sys.ds_put("persisted", b"v").unwrap();
        let _ = sys.ds_put("trigger", b"x"); // crashes; DS restarts fresh
        i32::from(sys.ds_get("persisted").is_ok()) // 1 => state survived (bad)
    });
    let mut os = Os::new(OsConfig {
        policy: PolicyKind::Stateless,
        vm_frames: 1024,
        ..Default::default()
    });
    struct SecondPut(u32);
    impl FaultHook for SecondPut {
        fn on_site(&mut self, probe: &Probe) -> FaultEffect {
            if probe.site == "ds.put.commit" {
                self.0 += 1;
                if self.0 == 2 {
                    return FaultEffect::Panic;
                }
            }
            FaultEffect::None
        }
    }
    os.set_fault_hook(Box::new(SecondPut(0)));
    let mut host = Host::new(os, registry);
    let outcome = host.run("main", &[]);
    match outcome {
        RunOutcome::Completed { init_code, .. } => {
            assert_eq!(
                init_code, 0,
                "stateless restart must have wiped the earlier key"
            )
        }
        other => panic!("{other:?}"),
    }
}
