//! Model-based property test for the VFS: random file-system operation
//! sequences executed against the real OS must agree with a trivial
//! in-memory reference model — including across block-cache evictions and
//! disk round trips (the cache is deliberately tiny here to force them).

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use osiris_kernel::abi::{Errno, Fd, OpenFlags, SeekFrom};
use osiris_kernel::{Host, ProgramRegistry, Sys};
use osiris_rng::Rng;
use osiris_servers::{Os, OsConfig};

const CASES: u64 = 40;

#[derive(Clone, Debug)]
enum FsOp {
    Open(u8),
    Close(u8),
    Write(u8, Vec<u8>),
    Read(u8, u16),
    SeekStart(u8, u16),
    Truncate(u8),
    Unlink(u8),
    StatSize(u8),
}

fn gen_op(r: &mut Rng) -> FsOp {
    match r.below(8) {
        0 => FsOp::Open(r.byte()),
        1 => FsOp::Close(r.byte()),
        2 => {
            let len = 1 + r.below_usize(2047);
            FsOp::Write(r.byte(), r.bytes(len))
        }
        3 => FsOp::Read(r.byte(), (r.next_u64() % 4096) as u16),
        4 => FsOp::SeekStart(r.byte(), (r.next_u64() % 8192) as u16),
        5 => FsOp::Truncate(r.byte()),
        6 => FsOp::Unlink(r.byte()),
        _ => FsOp::StatSize(r.byte()),
    }
}

fn pathname(p: u8) -> String {
    format!("/tmp/m{}", p % 4)
}

/// The reference model: files are byte vectors; descriptors are offsets.
#[derive(Default)]
struct Model {
    files: BTreeMap<String, Vec<u8>>,
    // fd slot -> (path, offset); mirrors the script's open-descriptor list.
    open: Vec<Option<(String, usize)>>,
}

impl Model {
    fn count_open(&self, path: &str) -> usize {
        self.open
            .iter()
            .flatten()
            .filter(|(p, _)| p == path)
            .count()
    }
}

/// Applies one op to the model, returning the expected trace line.
fn model_step(m: &mut Model, op: &FsOp) -> String {
    match op {
        FsOp::Open(p) => {
            let path = pathname(*p);
            // RDWR_CREATE semantics: create if missing, keep contents.
            m.files.entry(path.clone()).or_default();
            m.open.push(Some((path, 0)));
            format!("open {}", m.open.len() - 1)
        }
        FsOp::Close(i) => {
            let n = m.open.len().max(1);
            match m.open.get_mut(*i as usize % n) {
                Some(slot @ Some(_)) => {
                    *slot = None;
                    "close ok".into()
                }
                _ => "close none".into(),
            }
        }
        FsOp::Write(i, data) => {
            let n = m.open.len().max(1);
            match m.open.get_mut(*i as usize % n) {
                Some(Some((path, off))) => {
                    let file = m.files.get_mut(path).expect("open file exists");
                    let end = *off + data.len();
                    if file.len() < end {
                        file.resize(end, 0);
                    }
                    file[*off..end].copy_from_slice(data);
                    *off = end;
                    format!("write {}", data.len())
                }
                _ => "write none".into(),
            }
        }
        FsOp::Read(i, len) => {
            let n = m.open.len().max(1);
            match m.open.get_mut(*i as usize % n) {
                Some(Some((path, off))) => {
                    let file = &m.files[path];
                    let start = (*off).min(file.len());
                    let end = (*off + *len as usize).min(file.len());
                    let chunk = &file[start..end];
                    let fp = chunk.iter().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                        (h ^ u64::from(*b)).wrapping_mul(0x0000_0100_0000_01b3)
                    });
                    *off += chunk.len();
                    format!("read {} {:x}", chunk.len(), fp)
                }
                _ => "read none".into(),
            }
        }
        FsOp::SeekStart(i, o) => {
            let n = m.open.len().max(1);
            match m.open.get_mut(*i as usize % n) {
                Some(Some((_, off))) => {
                    *off = *o as usize;
                    format!("seek {}", o)
                }
                _ => "seek none".into(),
            }
        }
        FsOp::Truncate(p) => {
            // Modeled as open-with-truncate + close.
            let path = pathname(*p);
            if m.count_open(&path) > 0 {
                // The real VFS truncates regardless of other open handles;
                // offsets of other descriptors are preserved.
            }
            m.files.insert(path, Vec::new());
            "trunc ok".into()
        }
        FsOp::Unlink(p) => {
            let path = pathname(*p);
            if !m.files.contains_key(&path) {
                "unlink enoent".into()
            } else if m.count_open(&path) > 0 {
                "unlink busy".into()
            } else {
                m.files.remove(&path);
                "unlink ok".into()
            }
        }
        FsOp::StatSize(p) => {
            let path = pathname(*p);
            match m.files.get(&path) {
                Some(f) => format!("stat {}", f.len()),
                None => "stat enoent".into(),
            }
        }
    }
}

/// Applies one op to the real OS, returning the observed trace line.
fn real_step(sys: &mut Sys, fds: &mut Vec<Option<Fd>>, op: &FsOp) -> String {
    match op {
        FsOp::Open(p) => {
            let fd = sys
                .open(&pathname(*p), OpenFlags::RDWR_CREATE)
                .expect("open");
            fds.push(Some(fd));
            format!("open {}", fds.len() - 1)
        }
        FsOp::Close(i) => {
            let n = fds.len().max(1);
            match fds.get_mut(*i as usize % n) {
                Some(slot @ Some(_)) => {
                    let fd = slot.take().expect("checked");
                    sys.close(fd).expect("close");
                    "close ok".into()
                }
                _ => "close none".into(),
            }
        }
        FsOp::Write(i, data) => {
            let n = fds.len().max(1);
            match fds.get(*i as usize % n) {
                Some(Some(fd)) => {
                    let written = sys.write(*fd, data).expect("write");
                    format!("write {}", written)
                }
                _ => "write none".into(),
            }
        }
        FsOp::Read(i, len) => {
            let n = fds.len().max(1);
            match fds.get(*i as usize % n) {
                Some(Some(fd)) => {
                    let d = sys.read(*fd, u32::from(*len)).expect("read");
                    let fp = d.iter().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                        (h ^ u64::from(*b)).wrapping_mul(0x0000_0100_0000_01b3)
                    });
                    format!("read {} {:x}", d.len(), fp)
                }
                _ => "read none".into(),
            }
        }
        FsOp::SeekStart(i, o) => {
            let n = fds.len().max(1);
            match fds.get(*i as usize % n) {
                Some(Some(fd)) => {
                    sys.seek(*fd, SeekFrom::Start(u64::from(*o))).expect("seek");
                    format!("seek {}", o)
                }
                _ => "seek none".into(),
            }
        }
        FsOp::Truncate(p) => {
            let fd = sys
                .open(&pathname(*p), OpenFlags::CREATE)
                .expect("trunc-open");
            sys.close(fd).expect("trunc-close");
            "trunc ok".into()
        }
        FsOp::Unlink(p) => match sys.unlink(&pathname(*p)) {
            Ok(()) => "unlink ok".into(),
            Err(Errno::ENOENT) => "unlink enoent".into(),
            Err(Errno::EBUSY) => "unlink busy".into(),
            Err(e) => format!("unlink !{e}"),
        },
        FsOp::StatSize(p) => match sys.stat(&pathname(*p)) {
            Ok(st) => format!("stat {}", st.size),
            Err(Errno::ENOENT) => "stat enoent".into(),
            Err(e) => format!("stat !{e}"),
        },
    }
}

#[test]
fn vfs_matches_reference_model() {
    osiris_kernel::install_quiet_panic_hook();
    for case in 0..CASES {
        let mut r = Rng::new(0xF5F5_0001 ^ case);
        let n = 1 + r.below_usize(49);
        let ops: Vec<FsOp> = (0..n).map(|_| gen_op(&mut r)).collect();

        // Expected trace, from the model.
        let mut model = Model::default();
        let expected: Vec<String> = ops.iter().map(|op| model_step(&mut model, op)).collect();

        // Observed trace, from the real OS with a tiny 8-block cache so
        // evictions and disk traffic are constant.
        let observed = Arc::new(Mutex::new(Vec::new()));
        let shared = Arc::clone(&observed);
        let script = ops.clone();
        let mut registry = ProgramRegistry::new();
        registry.register("fsprop", move |sys| {
            let mut fds = Vec::new();
            for op in &script {
                let line = real_step(sys, &mut fds, op);
                shared.lock().unwrap().push(line);
            }
            0
        });
        let os = Os::new(OsConfig {
            vm_frames: 512,
            vfs_cache_blocks: 8,
            ..Default::default()
        });
        let mut host = Host::new(os, registry);
        let outcome = host.run("fsprop", &[]);
        assert!(outcome.completed(), "case seed {case}: {outcome:?}");
        let got = observed.lock().unwrap().clone();
        assert_eq!(got, expected, "case seed {case}");
    }
}
