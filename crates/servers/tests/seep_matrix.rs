//! The complete SEEP classification matrix: every protocol variant's
//! engraving, pinned as a table. The classifications drive every recovery
//! decision in the system, so changing one is a semantic change that must
//! be made consciously — this test makes it loud.

use osiris_core::{MessageKind, SeepClass};
use osiris_kernel::abi::{Errno, OpenFlags, Pid, Signal, SysReply, Syscall};
use osiris_kernel::Protocol;
use osiris_servers::OsMsg;

fn user(call: Syscall) -> OsMsg {
    OsMsg::User { pid: Pid(1), call }
}

#[test]
fn full_classification_matrix() {
    use MessageKind::*;
    use SeepClass::*;
    // (message, kind, class, reply_possible)
    let matrix: Vec<(OsMsg, MessageKind, SeepClass, bool)> = vec![
        // User syscalls: replyable state-modifying requests — except exit
        // (no reply possible) and the read-only set (GetPid, Stat, DsGet,
        // …), which is NonStateModifying so the watchdog may transparently
        // re-drive a lost reply.
        (user(Syscall::GetPid), Request, NonStateModifying, true),
        (
            user(Syscall::Stat { path: "/x".into() }),
            Request,
            NonStateModifying,
            true,
        ),
        (
            user(Syscall::DsGet { key: "k".into() }),
            Request,
            NonStateModifying,
            true,
        ),
        (
            user(Syscall::Open {
                path: "/x".into(),
                flags: OpenFlags::RDONLY,
            }),
            Request,
            StateModifying,
            true,
        ),
        (
            user(Syscall::Kill {
                pid: Pid(2),
                sig: Signal::SigKill,
            }),
            Request,
            StateModifying,
            true,
        ),
        (
            user(Syscall::Exit { code: 0 }),
            Request,
            StateModifying,
            false,
        ),
        // PM → VM.
        (
            OsMsg::VmFork {
                parent: Pid(1),
                child: Pid(2),
            },
            Request,
            StateModifying,
            true,
        ),
        (
            OsMsg::VmExecReset { pid: Pid(1) },
            Request,
            StateModifying,
            true,
        ),
        (
            OsMsg::VmFree { pid: Pid(1) },
            Notification,
            StateModifying,
            false,
        ),
        (
            OsMsg::VmFreeSelf { pid: Pid(1) },
            Notification,
            RequesterScoped,
            false,
        ),
        (
            OsMsg::VmUsage { pid: Pid(1) },
            Request,
            NonStateModifying,
            true,
        ),
        // PM → VFS.
        (
            OsMsg::VfsExecLoad {
                pid: Pid(1),
                prog: "sh".into(),
            },
            Request,
            NonStateModifying,
            true,
        ),
        (
            OsMsg::VfsCleanup { pid: Pid(1) },
            Notification,
            StateModifying,
            false,
        ),
        (
            OsMsg::VfsCleanupSelf { pid: Pid(1) },
            Notification,
            RequesterScoped,
            false,
        ),
        (
            OsMsg::VfsForkDup {
                parent: Pid(1),
                child: Pid(2),
            },
            Request,
            StateModifying,
            true,
        ),
        // VFS → disk.
        (OsMsg::DiskRead { block: 0 }, Request, StateModifying, true),
        (
            OsMsg::DiskWrite {
                block: 0,
                data: vec![],
            },
            Request,
            StateModifying,
            true,
        ),
        // Replies: conservative.
        (OsMsg::ROk, Reply, StateModifying, false),
        (OsMsg::RVal(1), Reply, StateModifying, false),
        (OsMsg::RData(vec![]), Reply, StateModifying, false),
        (OsMsg::RErr(Errno::EIO), Reply, StateModifying, false),
        (OsMsg::RCrash, Reply, StateModifying, false),
        (OsMsg::Pong, Reply, StateModifying, false),
        (OsMsg::UserReply(SysReply::Ok), Reply, StateModifying, false),
        // DS → RS trace: the one non-state-modifying notification.
        (
            OsMsg::Announce { key: "k".into() },
            Notification,
            NonStateModifying,
            false,
        ),
        // RS → DS status persistence: state-modifying.
        (
            OsMsg::StatusPublish { round: 1 },
            Notification,
            StateModifying,
            false,
        ),
        // Heartbeats.
        (OsMsg::Ping, Request, NonStateModifying, true),
        // Kernel and timer notifications.
        (
            OsMsg::CrashNotify { target: 1 },
            Notification,
            NonStateModifying,
            false,
        ),
        (
            OsMsg::KillRequester { pid: Pid(1) },
            Notification,
            NonStateModifying,
            false,
        ),
        (OsMsg::HeartbeatTick, Notification, NonStateModifying, false),
        (
            OsMsg::DiskTick { token: 1 },
            Notification,
            NonStateModifying,
            false,
        ),
        (
            OsMsg::SleepTick { token: 1 },
            Notification,
            NonStateModifying,
            false,
        ),
    ];
    for (msg, kind, class, reply_possible) in matrix {
        let seep = msg.seep();
        assert_eq!(seep.kind, kind, "{}: kind", msg.label());
        assert_eq!(seep.class, class, "{}: class", msg.label());
        assert_eq!(
            seep.reply_possible,
            reply_possible,
            "{}: reply",
            msg.label()
        );
    }
}

#[test]
fn only_announce_and_reads_keep_enhanced_windows_open() {
    use osiris_core::{Enhanced, RecoveryPolicy};
    // Inventory every variant that the enhanced policy lets stay inside a
    // window — the list must be exactly the read-only/trace set.
    let open_keepers = [
        OsMsg::VmUsage { pid: Pid(1) }.seep(),
        OsMsg::VfsExecLoad {
            pid: Pid(1),
            prog: "x".into(),
        }
        .seep(),
        OsMsg::Ping.seep(),
        OsMsg::Announce { key: "k".into() }.seep(),
    ];
    for seep in open_keepers {
        assert!(Enhanced.send_keeps_window_open(&seep), "{seep:?}");
    }
    let closers = [
        OsMsg::VmFork {
            parent: Pid(1),
            child: Pid(2),
        }
        .seep(),
        OsMsg::DiskWrite {
            block: 0,
            data: vec![],
        }
        .seep(),
        OsMsg::VmFreeSelf { pid: Pid(1) }.seep(), // scoped: closes under plain enhanced
        OsMsg::ROk.seep(),
        OsMsg::StatusPublish { round: 0 }.seep(),
    ];
    for seep in closers {
        assert!(!Enhanced.send_keeps_window_open(&seep), "{seep:?}");
    }
}
