//! End-to-end integration tests: real workload programs running against the
//! assembled OSIRIS OS, including crash-recovery scenarios.

use std::sync::atomic::{AtomicBool, Ordering};

use osiris_core::PolicyKind;
use osiris_kernel::abi::{Errno, OpenFlags, SeekFrom, Signal};
use osiris_kernel::{
    FaultEffect, FaultHook, Host, OsEngine, Probe, ProgramRegistry, RunOutcome, ShutdownKind,
};
use osiris_servers::{Os, OsConfig};

fn run_one<F>(prog: F) -> (RunOutcome, Os)
where
    F: Fn(&mut osiris_kernel::Sys) -> i32 + Send + Sync + 'static,
{
    run_with_policy(PolicyKind::Enhanced, prog)
}

fn run_with_policy<F>(policy: PolicyKind, prog: F) -> (RunOutcome, Os)
where
    F: Fn(&mut osiris_kernel::Sys) -> i32 + Send + Sync + 'static,
{
    osiris_kernel::install_quiet_panic_hook();
    let mut registry = ProgramRegistry::new();
    registry.register("main", prog);
    registry.register("child_ok", |_sys| 7);
    registry.register("child_echo", |sys| sys.args().len() as i32);
    let os = Os::new(OsConfig::with_policy(policy));
    let mut host = Host::new(os, registry);
    let outcome = host.run("main", &[]);
    (outcome, host.into_engine())
}

fn expect_clean(outcome: &RunOutcome, os: &Os) {
    assert_eq!(
        outcome,
        &RunOutcome::Completed {
            init_code: 0,
            exit_codes: match outcome {
                RunOutcome::Completed { exit_codes, .. } => exit_codes.clone(),
                _ => Default::default(),
            }
        },
        "run must complete with init exit 0"
    );
    let violations = os.audit();
    assert!(violations.is_empty(), "audit violations: {:?}", violations);
}

#[test]
fn getpid_and_getppid() {
    let (outcome, os) = run_one(|sys| {
        assert_eq!(sys.getpid().unwrap().0, 1);
        assert_eq!(sys.getppid().unwrap().0, 0);
        0
    });
    expect_clean(&outcome, &os);
}

#[test]
fn spawn_and_waitpid() {
    let (outcome, os) = run_one(|sys| {
        let child = sys.spawn("child_ok", &[]).unwrap();
        assert!(child.0 > 1);
        let code = sys.waitpid(child).unwrap();
        assert_eq!(code, 7);
        0
    });
    expect_clean(&outcome, &os);
}

#[test]
fn spawn_many_children_wait_any() {
    let (outcome, os) = run_one(|sys| {
        let mut pids = Vec::new();
        for _ in 0..5 {
            pids.push(sys.spawn("child_ok", &[]).unwrap());
        }
        for _ in 0..5 {
            let (pid, code) = sys.wait_any().unwrap();
            assert!(pids.contains(&pid));
            assert_eq!(code, 7);
        }
        assert_eq!(sys.wait_any().unwrap_err(), Errno::ECHILD);
        0
    });
    expect_clean(&outcome, &os);
}

#[test]
fn fork_run_closure() {
    let (outcome, os) = run_one(|sys| {
        let child = sys
            .fork_run(|csys| {
                let me = csys.getpid().unwrap();
                (me.0 % 100) as i32
            })
            .unwrap();
        let code = sys.waitpid(child).unwrap();
        assert_eq!(code, (child.0 % 100) as i32);
        0
    });
    expect_clean(&outcome, &os);
}

#[test]
fn exec_replaces_image() {
    let (outcome, os) = run_one(|sys| {
        let child = sys
            .fork_run(|csys| match csys.exec("child_echo", &["a", "b", "c"]) {
                Err(e) => panic!("exec failed: {e}"),
                Ok(never) => match never {},
            })
            .unwrap();
        assert_eq!(sys.waitpid(child).unwrap(), 3);
        0
    });
    expect_clean(&outcome, &os);
}

#[test]
fn file_write_read_roundtrip() {
    let (outcome, os) = run_one(|sys| {
        let fd = sys.open("/tmp/a.txt", OpenFlags::CREATE).unwrap();
        assert_eq!(sys.write(fd, b"hello world").unwrap(), 11);
        sys.close(fd).unwrap();
        let fd = sys.open("/tmp/a.txt", OpenFlags::RDONLY).unwrap();
        assert_eq!(sys.read(fd, 64).unwrap(), b"hello world");
        assert_eq!(sys.read(fd, 64).unwrap(), b"", "second read hits EOF");
        sys.close(fd).unwrap();
        sys.unlink("/tmp/a.txt").unwrap();
        assert_eq!(
            sys.open("/tmp/a.txt", OpenFlags::RDONLY).unwrap_err(),
            Errno::ENOENT
        );
        0
    });
    expect_clean(&outcome, &os);
}

#[test]
fn large_file_thrashes_cache_and_survives() {
    // 256 KiB file >> 64-block (64 KiB) cache: forces evictions, disk
    // write-backs and cache-miss reads through the cooperative threads.
    let (outcome, os) = run_one(|sys| {
        let fd = sys.open("/tmp/big.bin", OpenFlags::CREATE).unwrap();
        let chunk = vec![0xabu8; 8192];
        for _ in 0..32 {
            assert_eq!(sys.write(fd, &chunk).unwrap(), 8192);
        }
        sys.seek(fd, SeekFrom::Start(0)).unwrap();
        let mut total = 0u64;
        loop {
            let data = sys.read(fd, 8192).unwrap();
            if data.is_empty() {
                break;
            }
            assert!(data.iter().all(|b| *b == 0xab));
            total += data.len() as u64;
        }
        assert_eq!(total, 32 * 8192);
        sys.close(fd).unwrap();
        0
    });
    expect_clean(&outcome, &os);
    // The cache is smaller than the file, so the disk must have been hit.
    let disk_report = os
        .reports()
        .into_iter()
        .find(|r| r.name == "disk")
        .expect("disk component exists");
    assert!(disk_report.messages > 0, "disk driver never exercised");
}

#[test]
fn seek_and_sparse_reads() {
    let (outcome, os) = run_one(|sys| {
        let fd = sys.open("/tmp/s.bin", OpenFlags::RDWR_CREATE).unwrap();
        sys.seek(fd, SeekFrom::Start(5000)).unwrap();
        sys.write(fd, b"tail").unwrap();
        sys.seek(fd, SeekFrom::Start(0)).unwrap();
        let head = sys.read(fd, 16).unwrap();
        assert_eq!(head, vec![0u8; 16], "sparse region reads as zeros");
        assert_eq!(sys.seek(fd, SeekFrom::End(-4)).unwrap(), 5000);
        assert_eq!(sys.read(fd, 4).unwrap(), b"tail");
        assert_eq!(sys.seek(fd, SeekFrom::Current(-2)).unwrap(), 5002);
        sys.close(fd).unwrap();
        0
    });
    expect_clean(&outcome, &os);
}

#[test]
fn directories_stat_rename() {
    let (outcome, os) = run_one(|sys| {
        sys.mkdir("/tmp/d").unwrap();
        assert_eq!(sys.mkdir("/tmp/d").unwrap_err(), Errno::EEXIST);
        let fd = sys.open("/tmp/d/f", OpenFlags::CREATE).unwrap();
        sys.write(fd, b"xyz").unwrap();
        sys.close(fd).unwrap();
        let st = sys.stat("/tmp/d/f").unwrap();
        assert_eq!(st.size, 3);
        assert!(!st.is_dir);
        assert!(sys.stat("/tmp/d").unwrap().is_dir);
        let entries = sys.readdir("/tmp/d").unwrap();
        assert_eq!(entries, vec!["f"]);
        sys.rename("/tmp/d/f", "/tmp/d/g").unwrap();
        assert_eq!(sys.stat("/tmp/d/f").unwrap_err(), Errno::ENOENT);
        assert_eq!(sys.stat("/tmp/d/g").unwrap().size, 3);
        assert!(sys.readdir("/tmp").unwrap().contains(&"d".to_string()));
        0
    });
    expect_clean(&outcome, &os);
}

#[test]
fn unlink_open_file_is_busy() {
    let (outcome, os) = run_one(|sys| {
        let fd = sys.open("/tmp/busy", OpenFlags::CREATE).unwrap();
        assert_eq!(sys.unlink("/tmp/busy").unwrap_err(), Errno::EBUSY);
        sys.close(fd).unwrap();
        sys.unlink("/tmp/busy").unwrap();
        0
    });
    expect_clean(&outcome, &os);
}

#[test]
fn fsync_flushes_dirty_blocks() {
    let (outcome, os) = run_one(|sys| {
        let fd = sys.open("/tmp/sync", OpenFlags::CREATE).unwrap();
        sys.write(fd, &[1u8; 4096]).unwrap();
        sys.fsync(fd).unwrap();
        sys.close(fd).unwrap();
        0
    });
    expect_clean(&outcome, &os);
    let disk = os.reports().into_iter().find(|r| r.name == "disk").unwrap();
    assert!(
        disk.messages >= 4,
        "fsync must push dirty blocks to the driver"
    );
}

#[test]
fn pipe_between_parent_and_child() {
    let (outcome, os) = run_one(|sys| {
        let (r, w) = sys.pipe().unwrap();
        let child = sys
            .fork_run(move |csys| {
                csys.write(w, b"ping").unwrap();
                csys.close(w).unwrap();
                csys.close(r).unwrap();
                0
            })
            .unwrap();
        let data = sys.read(r, 16).unwrap();
        assert_eq!(data, b"ping");
        sys.close(w).unwrap();
        assert_eq!(sys.read(r, 16).unwrap(), b"", "EOF after all writers close");
        sys.close(r).unwrap();
        sys.waitpid(child).unwrap();
        0
    });
    expect_clean(&outcome, &os);
}

#[test]
fn pipe_blocking_read_wakes_on_write() {
    let (outcome, os) = run_one(|sys| {
        let (r, w) = sys.pipe().unwrap();
        // Child reads first (blocks), parent writes after.
        let child = sys
            .fork_run(move |csys| {
                let data = csys.read(r, 8).unwrap();
                if data == b"wake" {
                    0
                } else {
                    1
                }
            })
            .unwrap();
        sys.write(w, b"wake").unwrap();
        assert_eq!(sys.waitpid(child).unwrap(), 0);
        sys.close(r).unwrap();
        sys.close(w).unwrap();
        0
    });
    expect_clean(&outcome, &os);
}

#[test]
fn write_to_pipe_without_readers_is_epipe() {
    let (outcome, os) = run_one(|sys| {
        let (r, w) = sys.pipe().unwrap();
        sys.close(r).unwrap();
        assert_eq!(sys.write(w, b"x").unwrap_err(), Errno::EPIPE);
        sys.close(w).unwrap();
        0
    });
    expect_clean(&outcome, &os);
}

#[test]
fn dup_shares_offset() {
    let (outcome, os) = run_one(|sys| {
        let fd = sys.open("/tmp/dup", OpenFlags::RDWR_CREATE).unwrap();
        sys.write(fd, b"abcdef").unwrap();
        let fd2 = sys.dup(fd).unwrap();
        sys.seek(fd, SeekFrom::Start(2)).unwrap();
        assert_eq!(
            sys.read(fd2, 2).unwrap(),
            b"cd",
            "dup shares the file offset"
        );
        sys.close(fd).unwrap();
        assert_eq!(sys.read(fd2, 2).unwrap(), b"ef", "slot survives one close");
        sys.close(fd2).unwrap();
        0
    });
    expect_clean(&outcome, &os);
}

#[test]
fn data_store_roundtrip() {
    let (outcome, os) = run_one(|sys| {
        sys.ds_put("svc/a", b"1").unwrap();
        sys.ds_put("svc/b", b"2").unwrap();
        sys.ds_put("other", b"3").unwrap();
        assert_eq!(sys.ds_get("svc/a").unwrap(), b"1");
        assert_eq!(sys.ds_get("missing").unwrap_err(), Errno::ENOKEY);
        assert_eq!(sys.ds_list("svc/").unwrap().len(), 2);
        sys.ds_del("svc/a").unwrap();
        assert_eq!(sys.ds_del("svc/a").unwrap_err(), Errno::ENOKEY);
        0
    });
    expect_clean(&outcome, &os);
}

#[test]
fn memory_calls() {
    let (outcome, os) = run_one(|sys| {
        let base = sys.vmstat().unwrap();
        sys.brk(4).unwrap();
        assert_eq!(sys.vmstat().unwrap(), base + 4);
        let id = sys.mmap(16).unwrap();
        assert_eq!(sys.vmstat().unwrap(), base + 20);
        sys.munmap(id).unwrap();
        sys.brk(-4).unwrap();
        assert_eq!(sys.vmstat().unwrap(), base);
        assert_eq!(sys.munmap(id).unwrap_err(), Errno::EINVAL);
        0
    });
    expect_clean(&outcome, &os);
}

#[test]
fn signals_mask_and_pending() {
    let (outcome, os) = run_one(|sys| {
        let me = sys.getpid().unwrap();
        sys.sigmask(Signal::SigTerm, true).unwrap();
        sys.kill(me, Signal::SigTerm).unwrap();
        sys.kill(me, Signal::SigUsr1).unwrap();
        let pending = sys.sigpending().unwrap();
        assert!(pending.contains(&Signal::SigTerm));
        assert!(pending.contains(&Signal::SigUsr1));
        assert!(
            sys.sigpending().unwrap().is_empty(),
            "pending set was cleared"
        );
        assert_eq!(
            sys.sigmask(Signal::SigKill, true).unwrap_err(),
            Errno::EINVAL
        );
        0
    });
    expect_clean(&outcome, &os);
}

#[test]
fn kill_terminates_child() {
    let (outcome, os) = run_one(|sys| {
        let child = sys
            .fork_run(|csys| {
                csys.sleep(1_000_000).unwrap();
                0
            })
            .unwrap();
        sys.kill(child, Signal::SigKill).unwrap();
        assert_eq!(sys.waitpid(child).unwrap(), -9);
        0
    });
    expect_clean(&outcome, &os);
}

#[test]
fn sleep_advances_virtual_time() {
    let (outcome, os) = run_one(|sys| {
        sys.sleep(50_000).unwrap();
        0
    });
    expect_clean(&outcome, &os);
    assert!(os.now() >= 50_000);
}

#[test]
fn waitpid_non_child_is_echild() {
    let (outcome, os) = run_one(|sys| {
        assert_eq!(
            sys.waitpid(osiris_kernel::abi::Pid(999)).unwrap_err(),
            Errno::ECHILD
        );
        0
    });
    expect_clean(&outcome, &os);
}

// --------------------------------------------------------------------
// Crash recovery scenarios
// --------------------------------------------------------------------

/// Injects a single fail-stop fault the first time `site` executes.
struct CrashOnce {
    site: &'static str,
    fired: AtomicBool,
}

impl CrashOnce {
    fn new(site: &'static str) -> Self {
        CrashOnce {
            site,
            fired: AtomicBool::new(false),
        }
    }
}

impl FaultHook for CrashOnce {
    fn on_site(&mut self, probe: &Probe) -> FaultEffect {
        if probe.site == self.site && !self.fired.swap(true, Ordering::Relaxed) {
            FaultEffect::Panic
        } else {
            FaultEffect::None
        }
    }
}

fn run_with_crash(
    policy: PolicyKind,
    site: &'static str,
    prog: fn(&mut osiris_kernel::Sys) -> i32,
) -> (RunOutcome, Os) {
    osiris_kernel::install_quiet_panic_hook();
    let mut registry = ProgramRegistry::new();
    registry.register("main", prog);
    registry.register("child_ok", |_sys| 7);
    let mut os = Os::new(OsConfig::with_policy(policy));
    os.set_fault_hook(Box::new(CrashOnce::new(site)));
    let mut host = Host::new(os, registry);
    let outcome = host.run("main", &[]);
    (outcome, host.into_engine())
}

#[test]
fn crash_inside_window_recovers_with_ecrash() {
    // `pm.fork.validate` runs before any outgoing send: the recovery window
    // is open, so OSIRIS rolls PM back and error-virtualizes.
    let (outcome, os) = run_with_crash(PolicyKind::Enhanced, "pm.fork.validate", |sys| {
        match sys.fork_run(|_c| 0) {
            Err(Errno::ECRASH) => {
                // The system survived; PM must still work.
                let child = sys.fork_run(|_c| 3).expect("PM recovered");
                assert_eq!(sys.waitpid(child).unwrap(), 3);
                0
            }
            other => panic!("expected ECRASH, got {:?}", other),
        }
    });
    assert!(outcome.completed(), "outcome: {:?}", outcome);
    expect_clean(&outcome, &os);
    assert_eq!(os.metrics().recovered_rollback, 1);
    let pm = os.reports().into_iter().find(|r| r.name == "pm").unwrap();
    assert_eq!(pm.crashes, 1);
    assert_eq!(pm.recoveries, 1);
}

#[test]
fn crash_after_state_modifying_send_shuts_down() {
    // `pm.fork.vm_sent` runs after the VmFork request (state-modifying):
    // the window is closed, so OSIRIS performs a controlled shutdown rather
    // than risk inconsistent recovery.
    let (outcome, _os) = run_with_crash(PolicyKind::Enhanced, "pm.fork.vm_sent", |sys| {
        let _ = sys.fork_run(|_c| 0);
        0
    });
    match outcome {
        RunOutcome::Shutdown(ShutdownKind::Controlled(reason)) => {
            assert!(reason.contains("pm"), "reason: {}", reason);
        }
        other => panic!("expected controlled shutdown, got {:?}", other),
    }
}

#[test]
fn pessimistic_policy_shuts_down_where_enhanced_recovers() {
    // `pm.spawn.load_sent` runs after the read-only VfsExecLoad request:
    // enhanced keeps the window open (recovers), pessimistic closed it at
    // the send (controlled shutdown).
    let prog: fn(&mut osiris_kernel::Sys) -> i32 = |sys| match sys.spawn("child_ok", &[]) {
        Err(Errno::ECRASH) => 0,
        Ok(child) => {
            let _ = sys.waitpid(child);
            0
        }
        Err(e) => panic!("unexpected error {e}"),
    };
    let (enhanced, os) = run_with_crash(PolicyKind::Enhanced, "pm.spawn.load_sent", prog);
    assert!(enhanced.completed(), "enhanced: {:?}", enhanced);
    assert_eq!(os.metrics().recovered_rollback, 1);

    let (pessimistic, _) = run_with_crash(PolicyKind::Pessimistic, "pm.spawn.load_sent", prog);
    assert!(
        matches!(
            pessimistic,
            RunOutcome::Shutdown(ShutdownKind::Controlled(_))
        ),
        "pessimistic: {:?}",
        pessimistic
    );
}

#[test]
fn ds_crash_after_announce_recovers_under_enhanced() {
    // The DS `Announce` trace notification is DS's first outgoing SEEP.
    let prog: fn(&mut osiris_kernel::Sys) -> i32 = |sys| {
        match sys.ds_put("k", b"v") {
            Err(Errno::ECRASH) => {
                // Error virtualization discarded the request entirely.
                assert_eq!(sys.ds_get("k").unwrap_err(), Errno::ENOKEY);
                sys.ds_put("k2", b"v2").expect("DS recovered");
                0
            }
            other => panic!("expected ECRASH, got {:?}", other),
        }
    };
    let (outcome, os) = run_with_crash(PolicyKind::Enhanced, "ds.put.quota", prog);
    assert!(outcome.completed(), "outcome: {:?}", outcome);
    expect_clean(&outcome, &os);

    let (pess, _) = run_with_crash(PolicyKind::Pessimistic, "ds.put.quota", prog);
    assert!(
        matches!(pess, RunOutcome::Shutdown(ShutdownKind::Controlled(_))),
        "pessimistic: {:?}",
        pess
    );
}

#[test]
fn stateless_restart_loses_process_table() {
    // Under the stateless baseline PM restarts with only init in its
    // table — the waiting parent's child vanishes, so the run cannot
    // complete cleanly (hang or error), demonstrating why stateless
    // recovery fails for stateful core services.
    let (outcome, _os) = run_with_crash(PolicyKind::Stateless, "pm.wait.entry", |sys| {
        let child = match sys.fork_run(|c| {
            c.sleep(10).unwrap();
            5
        }) {
            Ok(c) => c,
            Err(_) => return 1,
        };
        match sys.waitpid(child) {
            Ok(5) => 0,
            _ => 1,
        }
    });
    match outcome {
        RunOutcome::Completed { init_code, .. } => {
            assert_ne!(init_code, 0, "stateless recovery must not look successful")
        }
        RunOutcome::Hang(_) | RunOutcome::Shutdown(_) => {}
    }
}

#[test]
fn vm_crash_in_window_recovers() {
    let (outcome, os) = run_with_crash(PolicyKind::Enhanced, "vm.mmap.entry", |sys| {
        match sys.mmap(4) {
            Err(Errno::ECRASH) => {
                let id = sys.mmap(4).expect("VM recovered");
                sys.munmap(id).unwrap();
                0
            }
            other => panic!("expected ECRASH, got {:?}", other),
        }
    });
    assert!(outcome.completed(), "outcome: {:?}", outcome);
    expect_clean(&outcome, &os);
}

#[test]
fn vfs_crash_in_window_recovers() {
    let (outcome, os) = run_with_crash(PolicyKind::Enhanced, "vfs.open.entry", |sys| {
        match sys.open("/tmp/x", OpenFlags::CREATE) {
            Err(Errno::ECRASH) => {
                let fd = sys
                    .open("/tmp/x", OpenFlags::CREATE)
                    .expect("VFS recovered");
                sys.write(fd, b"ok").unwrap();
                sys.close(fd).unwrap();
                0
            }
            other => panic!("expected ECRASH, got {:?}", other),
        }
    });
    assert!(outcome.completed(), "outcome: {:?}", outcome);
    expect_clean(&outcome, &os);
}

#[test]
fn hung_server_is_detected_by_heartbeat_and_recovered() {
    osiris_kernel::install_quiet_panic_hook();
    struct HangOnce {
        fired: AtomicBool,
    }
    impl FaultHook for HangOnce {
        fn on_site(&mut self, probe: &Probe) -> FaultEffect {
            if probe.site == "ds.put.quota" && !self.fired.swap(true, Ordering::Relaxed) {
                FaultEffect::Hang
            } else {
                FaultEffect::None
            }
        }
    }
    let mut registry = ProgramRegistry::new();
    registry.register("main", |sys| {
        match sys.ds_put("k", b"v") {
            // The hung DS is killed by the heartbeat and recovered; the
            // in-flight request is error-virtualized.
            Err(Errno::ECRASH) => {
                sys.ds_put("k2", b"v2").expect("DS recovered after hang");
                0
            }
            other => panic!("expected ECRASH after hang, got {:?}", other),
        }
    });
    let mut os = Os::new(OsConfig::with_policy(PolicyKind::Enhanced));
    os.set_fault_hook(Box::new(HangOnce {
        fired: AtomicBool::new(false),
    }));
    let mut host = Host::new(os, registry);
    let outcome = host.run("main", &[]);
    assert!(outcome.completed(), "outcome: {:?}", outcome);
    let os = host.into_engine();
    assert_eq!(os.metrics().hangs, 1);
    assert!(os.metrics().recovered_rollback >= 1);
}
