//! VFS cooperative-thread saturation: more concurrent disk-waiting
//! operations than threads pushes work onto the backlog, which must drain
//! as threads free up — and the whole pile must survive a VFS crash.

use osiris_core::PolicyKind;
use osiris_kernel::abi::{OpenFlags, SeekFrom};
use osiris_kernel::{Host, ProgramRegistry, RunOutcome};
use osiris_servers::{Os, OsConfig};

/// Each child writes a multi-block file, evicts it from the cache by
/// writing a second file, then reads the first back — guaranteeing a cold
/// read that parks a cooperative thread on the disk.
fn cold_reader(tag: u32) -> impl Fn(&mut osiris_kernel::Sys) -> i32 + Send + Sync + 'static {
    move |sys| {
        let a = format!("/tmp/bl_a{tag}");
        let b = format!("/tmp/bl_b{tag}");
        let fd = match sys.open(&a, OpenFlags::RDWR_CREATE) {
            Ok(fd) => fd,
            Err(_) => return 1,
        };
        if sys.write(fd, &[tag as u8; 4096]).is_err() {
            return 1;
        }
        // Thrash the tiny cache so `a`'s blocks are evicted.
        let fd2 = match sys.open(&b, OpenFlags::RDWR_CREATE) {
            Ok(fd) => fd,
            Err(_) => return 1,
        };
        if sys.write(fd2, &[0xee; 8192]).is_err() {
            return 1;
        }
        if sys.seek(fd, SeekFrom::Start(0)).is_err() {
            return 1;
        }
        let mut total = 0;
        loop {
            match sys.read(fd, 2048) {
                Ok(d) if d.is_empty() => break,
                Ok(d) => {
                    if !d.iter().all(|x| *x == tag as u8) {
                        return 2;
                    }
                    total += d.len();
                }
                Err(_) => return 3,
            }
        }
        let _ = sys.close(fd);
        let _ = sys.close(fd2);
        i32::from(total != 4096)
    }
}

#[test]
fn backlog_drains_when_threads_saturate() {
    osiris_kernel::install_quiet_panic_hook();
    let mut registry = ProgramRegistry::new();
    for tag in 0..6u32 {
        registry.register(&format!("reader{tag}"), cold_reader(tag));
    }
    registry.register("main", |sys| {
        let mut children = Vec::new();
        for tag in 0..6 {
            match sys.spawn(&format!("reader{tag}"), &[]) {
                Ok(pid) => children.push(pid),
                Err(_) => return 1,
            }
        }
        for pid in children {
            match sys.waitpid(pid) {
                Ok(0) => {}
                other => panic!("reader failed: {other:?}"),
            }
        }
        0
    });
    // 2 threads, 8-block cache: six concurrent cold readers exceed both.
    let os = Os::new(OsConfig {
        policy: PolicyKind::Enhanced,
        vm_frames: 1024,
        vfs_cache_blocks: 8,
        vfs_threads: 2,
        ..Default::default()
    });
    let mut host = Host::new(os, registry);
    let outcome = host.run("main", &[]);
    let os = host.into_engine();
    assert!(
        matches!(outcome, RunOutcome::Completed { init_code: 0, .. }),
        "{outcome:?}"
    );
    assert!(os.audit().is_empty(), "{:?}", os.audit());
    let disk = os.reports().into_iter().find(|r| r.name == "disk").unwrap();
    assert!(
        disk.messages > 12,
        "the readers must have gone through the disk"
    );
}

#[test]
fn saturated_vfs_still_serves_inline_operations() {
    // While every cothread is parked on the disk, cache-hit operations
    // (pipes, stats, opens) must keep flowing — the very reason VFS is
    // multithreaded (paper §V).
    osiris_kernel::install_quiet_panic_hook();
    let mut registry = ProgramRegistry::new();
    registry.register("reader", cold_reader(1));
    registry.register("main", |sys| {
        let r = match sys.spawn("reader", &[]) {
            Ok(pid) => pid,
            Err(_) => return 1,
        };
        // Inline VFS traffic while the reader is disk-bound.
        for i in 0..10 {
            let path = format!("/tmp/inline{i}");
            let fd = sys.open(&path, OpenFlags::CREATE).unwrap();
            sys.close(fd).unwrap();
            assert!(sys.stat(&path).is_ok());
            sys.unlink(&path).unwrap();
        }
        let (pr, pw) = sys.pipe().unwrap();
        sys.write(pw, b"still alive").unwrap();
        assert_eq!(sys.read(pr, 16).unwrap(), b"still alive");
        sys.close(pr).unwrap();
        sys.close(pw).unwrap();
        match sys.waitpid(r) {
            Ok(0) => 0,
            _ => 1,
        }
    });
    let os = Os::new(OsConfig {
        vm_frames: 1024,
        vfs_cache_blocks: 8,
        vfs_threads: 1, // a single thread: any cold read saturates the pool
        ..Default::default()
    });
    let mut host = Host::new(os, registry);
    let outcome = host.run("main", &[]);
    assert!(
        matches!(outcome, RunOutcome::Completed { init_code: 0, .. }),
        "{outcome:?}"
    );
}
