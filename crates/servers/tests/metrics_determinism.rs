//! Same-configuration metrics determinism: registry families are kept in
//! registration order and the kernel drives them off the virtual clock, so
//! two identical runs must produce **byte-identical** Prometheus and JSON
//! exports — the property the `ci.sh` metrics-diff gate relies on.

use osiris_core::PolicyKind;
use osiris_faults::PeriodicCrash;
use osiris_metrics::validate_prometheus;
use osiris_servers::OsConfig;
use osiris_workloads::run_suite_with;

/// One full suite run; returns the Prometheus text and pretty-JSON
/// renderings of the metrics registry.
fn run_metered(policy: PolicyKind, faulted: bool) -> (String, String) {
    let hook = if faulted {
        Some(Box::new(PeriodicCrash::new("pm", 200_000)) as Box<dyn osiris_kernel::FaultHook>)
    } else {
        None
    };
    let mut cfg = OsConfig::with_policy(policy);
    // The faulted variant sustains periodic crashes for the whole suite;
    // keep the legacy restart-forever behaviour so every crash recovers.
    cfg.escalation = osiris_core::EscalationPolicy::unbounded();
    let (_, os) = run_suite_with(cfg, hook);
    (os.metrics_prometheus(), os.metrics_json().pretty())
}

#[test]
fn fault_free_runs_are_byte_identical() {
    let (prom_a, json_a) = run_metered(PolicyKind::Enhanced, false);
    let (prom_b, json_b) = run_metered(PolicyKind::Enhanced, false);
    assert!(
        prom_a.contains("osiris_kernel_syscalls_total"),
        "suite must populate kernel counters"
    );
    assert_eq!(prom_a, prom_b, "Prometheus export must be deterministic");
    assert_eq!(json_a, json_b, "JSON export must be deterministic");
}

#[test]
fn faulted_runs_are_byte_identical_and_record_recovery() {
    let (prom_a, json_a) = run_metered(PolicyKind::Enhanced, true);
    let (prom_b, json_b) = run_metered(PolicyKind::Enhanced, true);
    assert_eq!(prom_a, prom_b);
    assert_eq!(json_a, json_b);
    // The injected crashes must be visible in the registry: per-component
    // crash counters, the per-action recovery family and latency samples.
    for needle in [
        "osiris_comp_crashes_total",
        "osiris_kernel_recoveries_total{action=\"rollback\"}",
        "osiris_comp_recovery_latency_cycles_count",
    ] {
        assert!(
            prom_a.contains(needle),
            "faulted exposition must contain {needle}"
        );
    }
}

#[test]
fn exports_are_well_formed_prometheus() {
    let (prom, _) = run_metered(PolicyKind::Enhanced, true);
    validate_prometheus(&prom).expect("suite exposition must pass the validator");
}

#[test]
fn disabled_registry_reads_zero() {
    let mut cfg = OsConfig::with_policy(PolicyKind::Enhanced);
    cfg.metrics = osiris_metrics::MetricsConfig::off();
    let (_, os) = run_suite_with(cfg, None);
    let m = os.metrics();
    assert_eq!(m.syscalls, 0, "disabled registry views read zero");
    assert_eq!(m.ipc_delivered, 0);
    assert!(os
        .metrics_snapshot()
        .families
        .iter()
        .all(|f| f.series.iter().all(|s| match &s.value {
            osiris_metrics::SeriesValue::Counter(n) | osiris_metrics::SeriesValue::Gauge(n) =>
                *n == 0,
            osiris_metrics::SeriesValue::Hist(h) => h.is_empty(),
        })));
}
