//! Tests for the paper's §VII extensibility demonstration: requester-scoped
//! SEEPs reconciled by killing the requester.
//!
//! The exit path is the canonical case: while PM processes `exit`, the
//! `VmFreeSelf`/`VfsCleanupSelf` notifications change only state scoped to
//! the exiting (requesting) process. Under the plain enhanced policy those
//! sends close the recovery window, so a crash right after them forces a
//! controlled shutdown. Under `EnhancedKill` the window stays open: the
//! crash is reconciled by rolling PM back and killing the requester, whose
//! kill path re-runs the cleanup — globally consistent, no shutdown.

use std::sync::atomic::{AtomicBool, Ordering};

use osiris_core::PolicyKind;
use osiris_kernel::{
    FaultEffect, FaultHook, Host, Probe, ProgramRegistry, RunOutcome, ShutdownKind,
};
use osiris_servers::{Os, OsConfig};

struct CrashOnce {
    site: &'static str,
    fired: AtomicBool,
}

impl FaultHook for CrashOnce {
    fn on_site(&mut self, probe: &Probe) -> FaultEffect {
        if probe.site == self.site && !self.fired.swap(true, Ordering::Relaxed) {
            FaultEffect::Panic
        } else {
            FaultEffect::None
        }
    }
}

fn run_exit_crash(policy: PolicyKind) -> (RunOutcome, Os) {
    osiris_kernel::install_quiet_panic_hook();
    let mut registry = ProgramRegistry::new();
    registry.register("main", |sys| {
        // The child exits; PM crashes mid-exit (after the scoped resource
        // releases). Under EnhancedKill the system recovers and the parent
        // can still reap the child.
        let child = sys.fork_run(|_c| 5).expect("fork works");
        match sys.waitpid(child) {
            Ok(_) => 0,
            Err(_) => 1,
        }
    });
    let mut os = Os::new(OsConfig::with_policy(policy));
    os.set_fault_hook(Box::new(CrashOnce {
        site: "pm.term.released",
        fired: AtomicBool::new(false),
    }));
    let mut host = Host::new(os, registry);
    let outcome = host.run("main", &[]);
    (outcome, host.into_engine())
}

#[test]
fn enhanced_shuts_down_on_exit_path_crash() {
    let (outcome, _) = run_exit_crash(PolicyKind::Enhanced);
    assert!(
        matches!(outcome, RunOutcome::Shutdown(ShutdownKind::Controlled(_))),
        "plain enhanced must refuse recovery after the scoped sends: {outcome:?}"
    );
}

#[test]
fn enhanced_kill_recovers_by_killing_the_requester() {
    let (outcome, os) = run_exit_crash(PolicyKind::EnhancedKill);
    match &outcome {
        RunOutcome::Completed { init_code, .. } => {
            // The child was killed (rather than exiting cleanly), so the
            // parent reaps -9 — but the system survived and stayed
            // consistent.
            assert_eq!(*init_code, 0, "parent must still reap the child");
        }
        other => panic!("enhanced-kill should survive: {other:?}"),
    }
    assert_eq!(os.metrics().recovered_rollback, 1, "one rollback recovery");
    assert!(os.audit().is_empty(), "audit: {:?}", os.audit());
}

#[test]
fn enhanced_kill_behaves_like_enhanced_elsewhere() {
    // A crash before any send still recovers by error virtualization.
    osiris_kernel::install_quiet_panic_hook();
    let mut registry = ProgramRegistry::new();
    registry.register("main", |sys| match sys.fork_run(|_c| 0) {
        Err(osiris_kernel::abi::Errno::ECRASH) => 0,
        other => {
            let _ = other;
            1
        }
    });
    let mut os = Os::new(OsConfig::with_policy(PolicyKind::EnhancedKill));
    os.set_fault_hook(Box::new(CrashOnce {
        site: "pm.fork.validate",
        fired: AtomicBool::new(false),
    }));
    let mut host = Host::new(os, registry);
    let outcome = host.run("main", &[]);
    assert!(
        matches!(outcome, RunOutcome::Completed { init_code: 0, .. }),
        "{outcome:?}"
    );
}

#[test]
fn suite_green_under_enhanced_kill_without_faults() {
    osiris_kernel::install_quiet_panic_hook();
    let (registry, _) = osiris_workloads::build_testsuite();
    let os = Os::new(OsConfig::with_policy(PolicyKind::EnhancedKill));
    let mut host = Host::new(os, registry);
    let outcome = host.run("suite", &[]);
    match outcome {
        RunOutcome::Completed { init_code, .. } => assert_eq!(init_code, 0),
        other => panic!("suite failed under enhanced-kill: {other:?}"),
    }
    assert!(host.engine().audit().is_empty());
}
