//! The axiom's whole-system guarantees, end to end on the OSIRIS suite:
//! byte-identical recording across identical runs, a reduction that matches
//! the kernel's live bookkeeping, machine reconstruction from the recorded
//! bytes alone, and divergence bisection between runs that differ.

use osiris_axiom::{bisect, reduce, AxiomConfig, AxiomEvent, AxiomLog};
use osiris_core::PolicyKind;
use osiris_faults::PeriodicCrash;
use osiris_servers::{Os, OsConfig};
use osiris_workloads::run_suite_with;

fn recorded_cfg(policy: PolicyKind) -> OsConfig {
    let mut cfg = OsConfig::with_policy(policy);
    cfg.axiom = AxiomConfig::on();
    // Sustained periodic crashes need the legacy restart-forever behaviour
    // so every crash recovers (same setup as the trace determinism tests).
    cfg.escalation = osiris_core::EscalationPolicy::unbounded();
    cfg
}

fn run_recorded(policy: PolicyKind, faulted: bool) -> Os {
    let hook = if faulted {
        Some(Box::new(PeriodicCrash::new("pm", 200_000)) as Box<dyn osiris_kernel::FaultHook>)
    } else {
        None
    };
    let (_, os) = run_suite_with(recorded_cfg(policy), hook);
    os
}

#[test]
fn identical_runs_record_byte_identical_axioms() {
    let a = run_recorded(PolicyKind::Enhanced, true);
    let b = run_recorded(PolicyKind::Enhanced, true);
    assert!(
        !a.axiom().is_empty(),
        "suite must seal control-plane events"
    );
    a.verify_axiom().expect("chain intact");
    assert_eq!(
        a.axiom_bytes(),
        b.axiom_bytes(),
        "same config + workload must record the same history, byte for byte"
    );
    assert!(
        bisect(a.axiom().records(), b.axiom().records()).is_none(),
        "identical histories must not bisect"
    );
    // The injected crashes and their recoveries are part of the record.
    let names: Vec<&str> = a.axiom().records().iter().map(|r| r.event.name()).collect();
    for needle in ["crash", "recovery_decision", "recovery_done"] {
        assert!(names.contains(&needle), "axiom must contain {needle}");
    }
}

#[test]
fn reduction_matches_the_live_kernel() {
    let os = run_recorded(PolicyKind::Enhanced, true);
    let reduced = reduce(os.axiom().records());
    assert_eq!(
        &reduced,
        os.control_state(),
        "pure reduction must equal the incrementally folded control state"
    );
    for (i, status) in os.kernel().status_codes().iter().enumerate() {
        assert_eq!(reduced.status(i as u8), *status);
    }
}

#[test]
fn replay_reconstructs_a_machine_from_bytes() {
    let live = run_recorded(PolicyKind::Enhanced, true);
    let bytes = live.axiom_bytes();

    let rebooted =
        Os::replay(recorded_cfg(PolicyKind::Enhanced), &bytes).expect("replay from bytes");
    assert_eq!(rebooted.control_state(), live.control_state());
    assert_eq!(rebooted.axiom().head_digest(), live.axiom().head_digest());
    assert_eq!(
        rebooted.kernel().status_codes(),
        live.kernel().status_codes(),
        "freshly booted components must take on the statuses the axiom proves"
    );

    // A corrupted image must be rejected, not adopted.
    let mut flipped = bytes.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x01;
    assert!(
        Os::replay(recorded_cfg(PolicyKind::Enhanced), &flipped).is_err(),
        "a bit flip anywhere must break the chain"
    );
}

#[test]
fn bisect_pinpoints_where_runs_diverge() {
    // Same policy, different fault schedule: the histories share the boot
    // prefix and split at the first crash-driven transition.
    let faulted = run_recorded(PolicyKind::Enhanced, true);
    let clean = run_recorded(PolicyKind::Enhanced, false);
    let d = bisect(faulted.axiom().records(), clean.axiom().records())
        .expect("a faulted run must diverge from a clean one");
    assert!(
        d.index > 0,
        "both runs boot identically, so the divergence is past genesis"
    );

    // Different policies are different configurations: genesis seals the
    // policy into the config digest, so bisect reports divergence at seq 0
    // rather than letting incomparable histories look aligned.
    let enhanced = run_recorded(PolicyKind::Enhanced, true);
    let pessimistic = run_recorded(PolicyKind::Pessimistic, true);
    let d = bisect(enhanced.axiom().records(), pessimistic.axiom().records())
        .expect("cross-policy runs must diverge");
    assert_eq!(d.index, 0);
    assert!(matches!(
        d.a.expect("enhanced genesis").event,
        AxiomEvent::Genesis { .. }
    ));
}

#[test]
fn torn_tail_is_detected_before_reduction() {
    let os = run_recorded(PolicyKind::Enhanced, true);
    let bytes = os.axiom_bytes();
    // Simulate a crash mid-append: the trailing record is half-written.
    let torn = &bytes[..bytes.len() - 20];
    assert!(
        AxiomLog::from_bytes(torn).is_err(),
        "a torn tail must fail decode/verify, never reduce"
    );
}
