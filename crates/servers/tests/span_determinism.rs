//! Same-configuration span and timeseries determinism: span ids are minted
//! from a kernel-local counter, the recovery epoch advances only on
//! control-plane transitions, and the virtual-time sampler lands on a
//! fixed Δ-grid — so two identical runs must produce **byte-identical**
//! span traces, Chrome documents (span lanes + counter lanes included) and
//! `timeseries.json` exports. This is the property the critical-path
//! attribution pipeline and the `ci.sh` diff gates rely on.

use osiris_core::PolicyKind;
use osiris_faults::PeriodicCrash;
use osiris_kernel::{Host, ProgramRegistry};
use osiris_servers::{Os, OsConfig};
use osiris_trace::{TraceConfig, TraceEvent};
use osiris_workloads::run_suite_with;

fn traced_cfg(policy: PolicyKind) -> OsConfig {
    let mut cfg = OsConfig::with_policy(policy);
    cfg.trace = TraceConfig::on();
    cfg.timeseries = osiris_metrics::TimeseriesConfig::on();
    // The faulted variant sustains periodic crashes for the whole suite;
    // keep the legacy restart-forever behaviour so every crash recovers
    // and spans keep flowing across recoveries.
    cfg.escalation = osiris_core::EscalationPolicy::unbounded();
    cfg
}

/// One full suite run with tracing, metrics and the virtual-time sampler
/// on; returns the text trace, the pretty Chrome document and the pretty
/// timeseries export.
fn run_traced(policy: PolicyKind, faulted: bool) -> (String, String, String) {
    let hook = if faulted {
        Some(Box::new(PeriodicCrash::new("pm", 200_000)) as Box<dyn osiris_kernel::FaultHook>)
    } else {
        None
    };
    let (_, mut os) = run_suite_with(traced_cfg(policy), hook);
    let text = os.trace_text();
    let chrome = os.chrome_trace().pretty();
    let timeseries = os.timeseries_json().pretty();
    (text, chrome, timeseries)
}

#[test]
fn fault_free_span_exports_are_byte_identical() {
    let (text_a, chrome_a, ts_a) = run_traced(PolicyKind::Enhanced, false);
    let (text_b, chrome_b, ts_b) = run_traced(PolicyKind::Enhanced, false);
    assert_eq!(text_a, text_b, "text trace must be deterministic");
    assert_eq!(chrome_a, chrome_b, "Chrome document must be deterministic");
    assert_eq!(ts_a, ts_b, "timeseries export must be deterministic");
    // The suite must actually exercise the span machinery end to end.
    assert!(chrome_a.contains("\"ph\": \"b\""), "span open lane present");
    assert!(
        chrome_a.contains("\"ph\": \"e\""),
        "span close lane present"
    );
    assert!(
        ts_a.contains("osiris_span_latency_cycles"),
        "sampler tracks the span latency families"
    );
}

#[test]
fn faulted_span_exports_are_byte_identical_and_cross_recoveries() {
    let (text_a, chrome_a, ts_a) = run_traced(PolicyKind::Enhanced, true);
    let (text_b, chrome_b, ts_b) = run_traced(PolicyKind::Enhanced, true);
    assert_eq!(text_a, text_b);
    assert_eq!(chrome_a, chrome_b);
    assert_eq!(ts_a, ts_b);
    // Under sustained periodic crashes at least one request span must have
    // overlapped a recovery and carried the crossed flag to its close.
    assert!(
        chrome_a.contains("\"crossed_recovery\": true"),
        "faulted run must close at least one recovery-crossing span"
    );
}

#[test]
fn span_ids_mint_from_one_after_boot() {
    // A short direct run whose trace cannot wrap: the first span the
    // workload opens must be id 1 — the mint counter resets at the boot
    // barrier, so boot-time component initialization never consumes ids.
    let mut registry = ProgramRegistry::new();
    registry.register("main", |sys| {
        assert_eq!(sys.getpid().unwrap().0, 1);
        0
    });
    let os = Os::new(traced_cfg(PolicyKind::Enhanced));
    let mut host = Host::new(os, registry);
    let outcome = host.run("main", &[]);
    assert!(outcome.completed(), "short run must complete: {outcome:?}");
    let os = host.into_engine();
    let opens: Vec<u64> = os
        .trace_handle()
        .snapshot()
        .iter()
        .filter_map(|r| match r.event {
            TraceEvent::SpanOpen { span, .. } => Some(span),
            _ => None,
        })
        .collect();
    assert!(!opens.is_empty(), "run must open at least one span");
    assert_eq!(opens[0], 1, "span ids are minted from 1 after boot");
    // Every closed span must have been opened in this run (no stale ids
    // from boot or a previous epoch).
    for r in os.trace_handle().snapshot() {
        if let TraceEvent::SpanClose { span, .. } = r.event {
            assert!(opens.contains(&span), "close without open: span {span}");
        }
    }
}
