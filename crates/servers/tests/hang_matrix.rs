//! Hang-fault handling: hung components are detected by the Recovery
//! Server's heartbeats (paper §II-E, §IV-C), killed, and then recovered
//! through exactly the same decision logic as crashes.

use osiris_core::PolicyKind;
use osiris_faults::{plan_faults, FaultKind, FaultModel, FaultPlan, Injector, Recorder};
use osiris_kernel::{RunOutcome, ShutdownKind};
use osiris_servers::OsConfig;
use osiris_workloads::run_suite_with;

fn cfg(policy: PolicyKind) -> OsConfig {
    OsConfig {
        policy,
        vm_frames: 2048,
        ..Default::default()
    }
}

#[test]
fn hang_in_ds_is_detected_and_recovered() {
    osiris_kernel::install_quiet_panic_hook();
    let plan = FaultPlan {
        site: osiris_faults::SiteId {
            component: "ds".into(),
            site: "ds.put.commit".into(),
            kind: osiris_faults::SiteKindTag::Block,
        },
        kind: FaultKind::Hang,
        transient: true,
    };
    let (outcome, os) = run_suite_with(
        cfg(PolicyKind::Enhanced),
        Some(Box::new(Injector::new(&plan))),
    );
    // The hung DS is killed by the heartbeat round and recovered; the
    // in-flight put is error-virtualized, so its test fails but the run
    // completes.
    match outcome {
        RunOutcome::Completed { init_code, .. } => assert!(init_code >= 1),
        other => panic!("hang must be survived: {other:?}"),
    }
    assert_eq!(os.metrics().hangs, 1);
    assert!(os.metrics().recovered_rollback >= 1);
    assert!(os.audit().is_empty(), "audit: {:?}", os.audit());
}

#[test]
fn transient_hangs_never_produce_uncontrolled_crashes_under_enhanced() {
    // Sweep: a transient hang at every PM/DS site triggered by the suite.
    // Under the enhanced policy the outcome may be pass, fail, hang
    // (workload-level deadlock) or controlled shutdown — but never an
    // uncontrolled kernel crash, and completed runs stay consistent.
    osiris_kernel::install_quiet_panic_hook();
    let recorder = Recorder::new();
    let handle = recorder.clone();
    let (_, _) = run_suite_with(cfg(PolicyKind::Enhanced), Some(Box::new(recorder)));
    let profile = handle.profile().restrict_to(&["ds"]);
    let plans: Vec<FaultPlan> = plan_faults(&profile, FaultModel::FailStop, 1)
        .into_iter()
        .map(|p| FaultPlan {
            kind: FaultKind::Hang,
            transient: true,
            ..p
        })
        .collect();
    assert!(plans.len() >= 5, "too few DS sites: {}", plans.len());
    for plan in plans {
        let (outcome, os) = run_suite_with(
            cfg(PolicyKind::Enhanced),
            Some(Box::new(Injector::new(&plan))),
        );
        if let RunOutcome::Shutdown(kind) = &outcome {
            assert!(
                matches!(kind, ShutdownKind::Controlled(_)),
                "uncontrolled crash from hang at {:?}: {:?}",
                plan,
                kind
            );
        }
        if outcome.completed() {
            assert!(
                os.audit().is_empty(),
                "audit after {:?}: {:?}",
                plan,
                os.audit()
            );
        }
        assert!(
            os.metrics().hangs >= 1,
            "the hang never fired for {:?}",
            plan
        );
    }
}
