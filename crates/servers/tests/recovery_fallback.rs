//! The hardened recovery path end to end: faults injected *into* the
//! recovery machinery itself no longer take the system down. A fault during
//! the rollback phase degrades that one recovery to a fresh restart; an RS
//! crash mid-conduct is re-driven from the kernel's intent log. Both runs
//! must complete, keep the consistency audit clean, and stay byte-identical
//! across repeats.

use osiris_core::PolicyKind;
use osiris_faults::{
    classify_run, DoubleInjector, FaultKind, FaultPlan, Outcome, SiteId, SiteKindTag,
};
use osiris_kernel::abi::{Errno, OpenFlags};
use osiris_kernel::{Host, ProgramRegistry, RunOutcome};
use osiris_servers::{Os, OsConfig};
use osiris_trace::TraceConfig;

fn plan(component: &str, site: &str, transient: bool) -> FaultPlan {
    FaultPlan {
        site: SiteId {
            component: component.to_string(),
            site: site.to_string(),
            kind: SiteKindTag::Block,
        },
        kind: FaultKind::Crash,
        transient,
    }
}

/// Primary: one transient crash on VFS's hot read path, triggering a
/// recovery. The secondary then fires inside that recovery.
fn primary() -> FaultPlan {
    plan("vfs", "vfs.read.entry", true)
}

/// Exercises the crashing read with *no* VFS state held (so a degraded
/// fresh restart loses nothing the audit could flag), expects the single
/// error-virtualized `E_CRASH` reply, then proves the recovered server
/// still serves a full open/write/close/unlink cycle.
fn registry() -> ProgramRegistry {
    let mut registry = ProgramRegistry::new();
    registry.register("main", |sys| {
        let fd = match sys.open("/tmp/hot", OpenFlags::RDWR_CREATE) {
            Ok(fd) => fd,
            Err(_) => return 10,
        };
        if sys.write(fd, &[7u8; 128]).is_err() {
            return 11;
        }
        // Release every descriptor before the crashing request: whether the
        // recovery rolls back or degrades to a fresh restart, the program
        // holds nothing the restarted server could have forgotten.
        if sys.close(fd).is_err() || sys.unlink("/tmp/hot").is_err() {
            return 12;
        }
        // The injected site fires before fd validation, so the stale fd
        // still exercises the hot read path. The interrupted request must
        // come back as the virtualized crash error, nothing else.
        match sys.read(fd, 32) {
            Err(Errno::ECRASH) => {}
            other => {
                let _ = other;
                return 13;
            }
        }
        // Recovered service answers with proper error virtualization again
        // (stale fd is now just a bad descriptor)...
        match sys.read(fd, 32) {
            Err(Errno::EBADF) => {}
            _ => return 14,
        }
        // ...and serves fresh work end to end.
        let fd2 = match sys.open("/tmp/after", OpenFlags::RDWR_CREATE) {
            Ok(fd) => fd,
            Err(_) => return 15,
        };
        if sys.write(fd2, &[9u8; 64]).is_err() {
            return 16;
        }
        if sys.close(fd2).is_err() || sys.unlink("/tmp/after").is_err() {
            return 17;
        }
        0
    });
    registry
}

fn run_with_secondary(secondary: FaultPlan) -> (RunOutcome, Os) {
    osiris_kernel::install_quiet_panic_hook();
    let mut cfg = OsConfig::with_policy(PolicyKind::Enhanced);
    cfg.trace = TraceConfig::on();
    let mut os = Os::new(cfg);
    os.set_fault_hook(Box::new(DoubleInjector::new(&primary(), &secondary)));
    let mut host = Host::new(os, registry());
    let outcome = host.run("main", &[]);
    (outcome, host.into_engine())
}

/// A fault in the kernel's rollback phase degrades that recovery to a
/// fresh restart: the run completes, no rollback is counted, the fallback
/// is visible in metrics and trace, and the audit stays clean.
#[test]
fn rollback_phase_fault_degrades_to_fresh_restart() {
    let (outcome, os) = run_with_secondary(plan("kernel", "kernel.recovery.rollback", true));
    assert!(
        matches!(outcome, RunOutcome::Completed { init_code: 0, .. }),
        "fault during rollback must not take the system down: {outcome:?}"
    );

    let m = os.metrics();
    assert_eq!(
        m.recovered_rollback, 0,
        "the faulted rollback must not count"
    );
    assert!(m.recovered_fresh >= 1, "degraded recovery restarts fresh");
    assert_eq!(m.controlled_shutdowns, 0);

    let violations = os.audit();
    assert!(violations.is_empty(), "audit: {violations:?}");
    assert_eq!(
        classify_run(&outcome, violations.len(), m.quarantines),
        Outcome::Pass
    );

    let prom = os.metrics_prometheus();
    assert!(
        prom.contains("osiris_recovery_fallback_total{from=\"rollback\",to=\"fresh\"} 1"),
        "fallback series missing:\n{prom}"
    );
    // The journal was verified (clean) before the phase fault hit.
    assert!(
        prom.contains("osiris_journal_integrity_checks_total{kind=\"journal\",result=\"ok\"} 1")
    );

    let text = os.trace_text();
    assert!(
        text.contains("RecoveryFallback"),
        "trace must record the degradation"
    );
}

/// An RS crash mid-conduct (while delivering the crash notification) is
/// recovered by the kernel directly, and the interrupted recovery is
/// re-driven from the intent log — the original victim still recovers.
#[test]
fn rs_crash_mid_conduct_is_redriven_from_intent_log() {
    let (outcome, os) = run_with_secondary(plan("rs", "rs.recover.notify", true));
    assert!(
        matches!(outcome, RunOutcome::Completed { init_code: 0, .. }),
        "RS crash mid-conduct must not take the system down: {outcome:?}"
    );

    // Both the RS (fresh, its crash was inside recovery code) and the
    // victim recovered.
    let vfs = os.reports().into_iter().find(|r| r.name == "vfs").unwrap();
    assert_eq!(vfs.recoveries, 1, "victim must recover exactly once");
    let m = os.metrics();
    assert!(m.recovered_fresh >= 1, "RS itself restarts fresh");
    assert_eq!(m.controlled_shutdowns, 0);

    let violations = os.audit();
    assert!(violations.is_empty(), "audit: {violations:?}");

    let prom = os.metrics_prometheus();
    assert!(
        prom.contains("osiris_recovery_fallback_intent_replays_total 1"),
        "intent replay series missing:\n{prom}"
    );
    assert!(
        prom.contains("osiris_recovery_fallback_total{from=\"crash\",to=\"fresh\"} 1"),
        "in-recovery crash must be overridden to a fresh restart:\n{prom}"
    );

    let text = os.trace_text();
    assert!(text.contains("IntentReplayed"), "trace: {text}");
}

/// Acceptance: recovery-path faults are driven off the same virtual clock
/// as everything else — two identical double-fault runs export
/// byte-identical traces and metrics.
#[test]
fn double_fault_runs_are_byte_identical() {
    let (_, a) = run_with_secondary(plan("kernel", "kernel.recovery.rollback", true));
    let (_, b) = run_with_secondary(plan("kernel", "kernel.recovery.rollback", true));
    assert_eq!(a.trace_text(), b.trace_text());
    assert_eq!(a.chrome_trace().pretty(), b.chrome_trace().pretty());
    assert_eq!(a.metrics_prometheus(), b.metrics_prometheus());
    assert_eq!(a.metrics_json().pretty(), b.metrics_json().pretty());
}
