//! Same-configuration trace determinism: the flight recorder timestamps
//! events with the virtual clock only, so two identical runs must produce
//! **byte-identical** trace exports — the property the `ci.sh` gate and
//! post-mortem workflows (diff a failing run against a good one) rely on.

use osiris_core::PolicyKind;
use osiris_faults::PeriodicCrash;
use osiris_servers::OsConfig;
use osiris_trace::TraceConfig;
use osiris_workloads::run_suite_with;

fn traced_cfg(policy: PolicyKind) -> OsConfig {
    let mut cfg = OsConfig::with_policy(policy);
    cfg.trace = TraceConfig::on();
    // The faulted variant sustains periodic crashes for the whole suite;
    // keep the legacy restart-forever behaviour so every crash recovers.
    cfg.escalation = osiris_core::EscalationPolicy::unbounded();
    cfg
}

/// One full suite run with tracing on; returns the text and Chrome-JSON
/// renderings of the recorded trace.
fn run_traced(policy: PolicyKind, faulted: bool) -> (String, String) {
    let hook = if faulted {
        Some(Box::new(PeriodicCrash::new("pm", 200_000)) as Box<dyn osiris_kernel::FaultHook>)
    } else {
        None
    };
    let (_, os) = run_suite_with(traced_cfg(policy), hook);
    (os.trace_text(), os.chrome_trace().pretty())
}

#[test]
fn fault_free_runs_are_byte_identical() {
    let (text_a, chrome_a) = run_traced(PolicyKind::Enhanced, false);
    let (text_b, chrome_b) = run_traced(PolicyKind::Enhanced, false);
    assert!(!text_a.is_empty(), "suite must record events");
    assert_eq!(text_a, text_b, "text export must be deterministic");
    assert_eq!(chrome_a, chrome_b, "Chrome export must be deterministic");
}

#[test]
fn faulted_runs_are_byte_identical_and_record_recovery() {
    let (text_a, chrome_a) = run_traced(PolicyKind::Enhanced, true);
    let (text_b, chrome_b) = run_traced(PolicyKind::Enhanced, true);
    assert_eq!(text_a, text_b);
    assert_eq!(chrome_a, chrome_b);
    // The injected crashes must be visible in the trace: crash capture,
    // the RS notification, the decision and the completed recovery.
    for needle in [
        "Crash",
        "RsCrashNotified",
        "RecoveryDecision",
        "RecoveryDone",
    ] {
        assert!(
            text_a.contains(needle),
            "faulted trace must contain {needle}"
        );
    }
}

#[test]
fn disabled_tracer_records_nothing() {
    let (_, os) = run_suite_with(OsConfig::with_policy(PolicyKind::Enhanced), None);
    assert!(os.trace_text().is_empty());
    assert!(os.trace_handle().with(|t| t.is_empty()));
}
