//! Driver recovery: MINIX 3's classic capability, subsumed by the OSIRIS
//! machinery — the disk driver is a component like any other, so crashes in
//! it are recovered through the same window/rollback/error-virtualization
//! path, and VFS degrades the failure to `EIO` for the caller.

use std::sync::atomic::{AtomicBool, Ordering};

use osiris_core::PolicyKind;
use osiris_kernel::abi::{Errno, OpenFlags, SeekFrom};
use osiris_kernel::{FaultEffect, FaultHook, Host, Probe, ProgramRegistry, RunOutcome};
use osiris_servers::{Os, OsConfig};

struct CrashOnce {
    site: &'static str,
    fired: AtomicBool,
}

impl FaultHook for CrashOnce {
    fn on_site(&mut self, probe: &Probe) -> FaultEffect {
        if probe.site == self.site && !self.fired.swap(true, Ordering::Relaxed) {
            FaultEffect::Panic
        } else {
            FaultEffect::None
        }
    }
}

/// Writes past the cache capacity, then reads everything back — forcing
/// disk reads that the injected driver crash will interrupt.
fn thrash(sys: &mut osiris_kernel::Sys) -> Result<usize, Errno> {
    let fd = sys.open("/tmp/drv", OpenFlags::RDWR_CREATE)?;
    for _ in 0..96 {
        sys.write(fd, &[3u8; 1024])?;
    }
    sys.seek(fd, SeekFrom::Start(0))?;
    let mut total = 0;
    let mut errors = 0;
    loop {
        match sys.read(fd, 4096) {
            Ok(d) if d.is_empty() => break,
            Ok(d) => total += d.len(),
            Err(Errno::EIO) => {
                // A recovered driver crash surfaces as EIO; skip forward.
                errors += 1;
                sys.seek(fd, SeekFrom::Current(4096))?;
                if errors > 8 {
                    return Err(Errno::EIO);
                }
            }
            Err(e) => return Err(e),
        }
    }
    sys.close(fd)?;
    sys.unlink("/tmp/drv")?;
    Ok(total)
}

#[test]
fn disk_crash_mid_read_is_recovered_and_degrades_to_eio() {
    osiris_kernel::install_quiet_panic_hook();
    let mut registry = ProgramRegistry::new();
    registry.register("main", |sys| match thrash(sys) {
        Ok(_) => 0,
        Err(_) => 1,
    });
    let mut os = Os::new(OsConfig {
        vm_frames: 1024,
        ..Default::default()
    });
    os.set_fault_hook(Box::new(CrashOnce {
        site: "disk.read.queue",
        fired: AtomicBool::new(false),
    }));
    let mut host = Host::new(os, registry);
    let outcome = host.run("main", &[]);
    let os = host.into_engine();
    assert!(
        matches!(outcome, RunOutcome::Completed { init_code: 0, .. }),
        "driver crash must not take the system down: {outcome:?}"
    );
    let disk = os.reports().into_iter().find(|r| r.name == "disk").unwrap();
    assert_eq!(disk.crashes, 1);
    assert_eq!(disk.recoveries, 1, "the driver was recovered in place");
    assert!(os.audit().is_empty(), "audit: {:?}", os.audit());
}

#[test]
fn disk_crash_during_completion_tick_shuts_down() {
    // The completion path runs off a timer notification: not replyable, so
    // the conservative policies refuse recovery.
    osiris_kernel::install_quiet_panic_hook();
    let mut registry = ProgramRegistry::new();
    registry.register("main", |sys| match thrash(sys) {
        Ok(_) => 0,
        Err(_) => 1,
    });
    let mut os = Os::new(OsConfig {
        vm_frames: 1024,
        ..Default::default()
    });
    os.set_fault_hook(Box::new(CrashOnce {
        site: "disk.complete",
        fired: AtomicBool::new(false),
    }));
    let mut host = Host::new(os, registry);
    let outcome = host.run("main", &[]);
    assert!(
        matches!(
            outcome,
            RunOutcome::Shutdown(osiris_kernel::ShutdownKind::Controlled(_))
        ),
        "{outcome:?}"
    );
}

#[test]
fn stateless_driver_restart_is_enough_for_clean_blocks() {
    // The MINIX 3 argument: drivers are mostly stateless, so even the
    // stateless policy survives a driver crash — reads of blocks that were
    // never committed come back as zeros, but the system keeps running.
    osiris_kernel::install_quiet_panic_hook();
    let mut registry = ProgramRegistry::new();
    registry.register("main", |sys| {
        // Exercise the driver lightly (cache-resident data only).
        let fd = match sys.open("/tmp/x", OpenFlags::CREATE) {
            Ok(fd) => fd,
            Err(_) => return 1,
        };
        let _ = sys.write(fd, b"cached");
        let _ = sys.close(fd);
        0
    });
    let mut os = Os::new(OsConfig {
        policy: PolicyKind::Stateless,
        vm_frames: 1024,
        ..Default::default()
    });
    os.set_fault_hook(Box::new(CrashOnce {
        site: "disk.write.queue",
        fired: AtomicBool::new(false),
    }));
    let mut host = Host::new(os, registry);
    // Nothing in this workload reaches the disk (all cache-resident), so
    // the fault never fires and the run is clean; the point is that a
    // stateless-driver configuration boots and runs like MINIX 3.
    let outcome = host.run("main", &[]);
    assert!(
        matches!(outcome, RunOutcome::Completed { init_code: 0, .. }),
        "{outcome:?}"
    );
}
