//! The shutdown-grace extension (paper §VII, "Controlled shutdown"): when
//! consistency cannot be guaranteed and the system must stop, applications
//! get a bounded window to save their state — like Otherworld's
//! crash-survival for applications, scoped to save-class syscalls.

use std::sync::atomic::{AtomicBool, Ordering};

use osiris_core::PolicyKind;
use osiris_kernel::abi::Errno;
use osiris_kernel::{
    FaultEffect, FaultHook, Host, Probe, ProgramRegistry, RunOutcome, ShutdownKind,
};
use osiris_servers::{Os, OsConfig};

struct CrashOnce {
    site: &'static str,
    fired: AtomicBool,
}

impl FaultHook for CrashOnce {
    fn on_site(&mut self, probe: &Probe) -> FaultEffect {
        if probe.site == self.site && !self.fired.swap(true, Ordering::Relaxed) {
            FaultEffect::Panic
        } else {
            FaultEffect::None
        }
    }
}

/// Program: does some work, hits an unrecoverable crash (PM after its VM
/// send), then — when syscalls start failing with `ESHUTDOWN` — persists
/// its progress into the data store before going down.
fn saving_program(sys: &mut osiris_kernel::Sys) -> i32 {
    sys.ds_put("progress", b"step-1").unwrap();
    // This fork triggers the unrecoverable crash; during the grace window
    // the call is refused with ESHUTDOWN rather than silently dying.
    match sys.fork_run(|_c| 0) {
        Err(Errno::ESHUTDOWN) | Err(Errno::ECRASH) => {}
        Ok(_) | Err(_) => {}
    }
    // Save state while the grace window lasts. DsPut is save-class.
    match sys.ds_put("progress", b"step-2-saved") {
        Ok(()) => 0,
        Err(_) => 1,
    }
}

fn run_with_grace(grace: u32) -> (RunOutcome, Os) {
    osiris_kernel::install_quiet_panic_hook();
    let mut registry = ProgramRegistry::new();
    registry.register("main", saving_program);
    let mut os = Os::new(OsConfig {
        policy: PolicyKind::Enhanced,
        vm_frames: 1024,
        shutdown_grace: grace,
        ..Default::default()
    });
    os.set_fault_hook(Box::new(CrashOnce {
        site: "pm.fork.vm_sent",
        fired: AtomicBool::new(false),
    }));
    let mut host = Host::new(os, registry);
    let outcome = host.run("main", &[]);
    (outcome, host.into_engine())
}

#[test]
fn without_grace_the_save_is_lost() {
    let (outcome, _os) = run_with_grace(0);
    match outcome {
        RunOutcome::Shutdown(ShutdownKind::Controlled(_)) => {}
        other => panic!("expected immediate controlled shutdown, got {other:?}"),
    }
}

#[test]
fn grace_window_lets_the_application_save() {
    let (outcome, os) = run_with_grace(64);
    // The system still ends in a controlled shutdown…
    match &outcome {
        RunOutcome::Shutdown(ShutdownKind::Controlled(_)) => {}
        // …unless every process finished first, which is also acceptable
        // (all state saved, nothing left to do).
        RunOutcome::Completed { .. } => {}
        other => panic!("expected controlled end, got {other:?}"),
    }
    // …but the save made it into the data store before the end: DS served
    // both the pre-crash put and the grace-window put (plus their writes).
    let ds = os
        .reports()
        .into_iter()
        .find(|r| r.name == "ds")
        .expect("ds exists");
    assert!(ds.messages >= 2, "the grace-window DsPut was served");
    assert!(ds.writes >= 2, "both puts mutated the store");
}

#[test]
fn non_save_syscalls_are_refused_during_grace() {
    osiris_kernel::install_quiet_panic_hook();
    let mut registry = ProgramRegistry::new();
    registry.register("main", |sys| {
        let _ = sys.ds_put("x", b"1");
        let _ = sys.fork_run(|_c| 0); // triggers the unrecoverable crash
                                      // During grace, a spawn (not save-class) must fail with ESHUTDOWN…
        let spawn_err = sys.spawn("main", &[]).unwrap_err();
        // …while a save-class put still succeeds.
        let save_ok = sys.ds_put("x", b"2").is_ok();
        i32::from(!(spawn_err == Errno::ESHUTDOWN && save_ok))
    });
    let mut os = Os::new(OsConfig {
        policy: PolicyKind::Enhanced,
        vm_frames: 1024,
        shutdown_grace: 64,
        ..Default::default()
    });
    os.set_fault_hook(Box::new(CrashOnce {
        site: "pm.fork.vm_sent",
        fired: AtomicBool::new(false),
    }));
    let mut host = Host::new(os, registry);
    let outcome = host.run("main", &[]);
    match outcome {
        // init ran to completion with exit 0 (its checks passed) or the
        // budget ran out first (also a controlled end).
        RunOutcome::Completed { init_code, .. } => assert_eq!(init_code, 0),
        RunOutcome::Shutdown(ShutdownKind::Controlled(_)) => {}
        other => panic!("{other:?}"),
    }
}

#[test]
fn grace_budget_is_bounded() {
    // A hostile program that never stops issuing save calls cannot keep the
    // system alive forever: the delivery budget caps the grace window.
    osiris_kernel::install_quiet_panic_hook();
    let mut registry = ProgramRegistry::new();
    registry.register("main", |sys| {
        let _ = sys.fork_run(|_c| 0); // triggers the crash
        let mut i = 0u64;
        loop {
            i += 1;
            if sys.ds_put(&format!("spam{i}"), b"x").is_err() {
                return 0; // the kernel eventually stops serving
            }
            if i > 10_000 {
                return 1; // unbounded grace: bug
            }
        }
    });
    let mut os = Os::new(OsConfig {
        policy: PolicyKind::Enhanced,
        vm_frames: 1024,
        shutdown_grace: 32,
        ..Default::default()
    });
    os.set_fault_hook(Box::new(CrashOnce {
        site: "pm.fork.vm_sent",
        fired: AtomicBool::new(false),
    }));
    let mut host = Host::new(os, registry);
    let outcome = host.run("main", &[]);
    match outcome {
        RunOutcome::Shutdown(ShutdownKind::Controlled(_))
        | RunOutcome::Completed { init_code: 0, .. } => {}
        other => panic!("grace must be bounded: {other:?}"),
    }
}
