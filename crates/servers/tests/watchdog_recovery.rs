//! Fail-silent fault tolerance end to end: virtual-time watchdog
//! detection, transparent bounded retry of non-state-modifying requests,
//! reply-integrity rejection, and the determinism properties (backoff
//! schedules per seed, byte-identical replies after a transparent retry).

use osiris_axiom::AxiomEvent;
use osiris_faults::{FaultKind, FaultPlan, Injector, SiteId, SiteKindTag};
use osiris_kernel::{Host, ProgramRegistry, RunOutcome, WatchdogConfig};
use osiris_metrics::validate_prometheus;
use osiris_servers::{Os, OsConfig};

fn wd_cfg() -> OsConfig {
    OsConfig {
        watchdog: WatchdogConfig::on(),
        axiom: osiris_axiom::AxiomConfig::on(),
        vm_frames: 2048,
        ..Default::default()
    }
}

fn ds_get_plan(kind: FaultKind) -> FaultPlan {
    FaultPlan {
        site: SiteId {
            component: "ds".into(),
            site: "ds.get.entry".into(),
            kind: SiteKindTag::Block,
        },
        kind,
        transient: true,
    }
}

/// The client program: one acknowledged put, then a get whose reply the
/// fault plan may tamper with. Returns 0 only if the bytes read back are
/// byte-identical to the bytes written — the transparent retry must not
/// change what the client observes.
fn kv_registry() -> ProgramRegistry {
    let mut registry = ProgramRegistry::new();
    registry.register("main", |sys| {
        let payload = b"fail-silent-payload";
        if sys.ds_put("wd-key", payload).is_err() {
            return 3;
        }
        match sys.ds_get("wd-key") {
            Ok(v) if v == payload => 0,
            Ok(_) => 1,
            Err(_) => 2,
        }
    });
    registry
}

fn run_kv(cfg: OsConfig, plan: Option<&FaultPlan>) -> (RunOutcome, Os) {
    osiris_kernel::install_quiet_panic_hook();
    let mut os = Os::new(cfg);
    if let Some(p) = plan {
        os.set_fault_hook(Box::new(Injector::new(p)));
    }
    let mut host = Host::new(os, kv_registry());
    let outcome = host.run("main", &[]);
    (outcome, host.into_engine())
}

/// A dropped reply on a non-state-modifying request is detected by the
/// deadline → probe → reply-lost pipeline and transparently retried: the
/// client completes with byte-identical data and never sees an error.
#[test]
fn dropped_reply_is_transparently_retried() {
    let plan = ds_get_plan(FaultKind::ReplyDrop);
    let (outcome, os) = run_kv(wd_cfg(), Some(&plan));
    assert!(
        matches!(outcome, RunOutcome::Completed { init_code: 0, .. }),
        "client must complete transparently: {outcome:?}"
    );
    let m = os.metrics();
    assert!(m.wd_armed > 0, "requests must arm deadlines");
    assert!(
        m.wd_expired >= 1,
        "the dropped reply must expire a deadline"
    );
    assert_eq!(m.retries_granted, 1, "exactly one transparent retry");
    assert_eq!(m.retries_exhausted, 0);
    assert!(m.wd_verdicts >= 1);
    assert!(os.audit().is_empty(), "audit: {:?}", os.audit());
}

/// Without the watchdog the same run must still be clean — and the
/// fault-free baseline observes the same client-visible bytes (exit 0 in
/// both), proving the retried request is indistinguishable in exports.
#[test]
fn retried_request_is_byte_identical_to_unretried() {
    let (clean, clean_os) = run_kv(wd_cfg(), None);
    let plan = ds_get_plan(FaultKind::ReplyDrop);
    let (retried, retried_os) = run_kv(wd_cfg(), Some(&plan));
    assert!(matches!(clean, RunOutcome::Completed { init_code: 0, .. }));
    assert!(
        matches!(retried, RunOutcome::Completed { init_code: 0, .. }),
        "{retried:?}"
    );
    assert_eq!(clean_os.metrics().retries_granted, 0);
    assert_eq!(retried_os.metrics().retries_granted, 1);
    // Same data-plane effects: the suite's audit invariants hold and the
    // DS served the same acknowledged state in both runs (the program
    // compared the payload bytes itself before exiting 0).
    assert!(clean_os.audit().is_empty());
    assert!(retried_os.audit().is_empty());
}

/// A corrupt reply is rejected by the integrity check, the lying sender is
/// restarted, and the requester's message is retried against the recovered
/// instance — the client still completes with the correct bytes.
#[test]
fn corrupt_reply_is_rejected_and_sender_recovered() {
    let plan = ds_get_plan(FaultKind::ReplyCorrupt);
    let (outcome, os) = run_kv(wd_cfg(), Some(&plan));
    assert!(
        matches!(outcome, RunOutcome::Completed { init_code: 0, .. }),
        "client must complete after the corrupt reply: {outcome:?}"
    );
    let m = os.metrics();
    assert_eq!(m.wd_replies_rejected, 1, "the tampered reply is rejected");
    assert!(m.crashes >= 1, "corrupt reply treated as a sender crash");
    assert!(
        m.recovered_quiescent >= 1,
        "the lying sender must take a quiescent keep-state restart"
    );
    assert!(os.audit().is_empty(), "audit: {:?}", os.audit());
}

/// With the watchdog disabled (the default), fail-silent machinery stays
/// cold: nothing arms, nothing retries — the seed behaviour is untouched.
#[test]
fn disabled_watchdog_arms_nothing() {
    let (outcome, os) = run_kv(OsConfig::default(), None);
    assert!(matches!(
        outcome,
        RunOutcome::Completed { init_code: 0, .. }
    ));
    let m = os.metrics();
    assert_eq!(m.wd_armed, 0);
    assert_eq!(m.wd_expired, 0);
    assert_eq!(m.retries_granted + m.retries_denied, 0);
}

/// Extracts the (msg_id, attempt, granted, backoff) tuples of every sealed
/// retry decision, in order.
fn retry_decisions(os: &Os) -> Vec<(u64, u8, bool, u32)> {
    os.kernel()
        .axiom()
        .records()
        .iter()
        .filter_map(|r| match r.event {
            AxiomEvent::RetryDecision {
                msg_id,
                attempt,
                granted,
                backoff,
                ..
            } => Some((msg_id, attempt, granted, backoff)),
            _ => None,
        })
        .collect()
}

/// Backoff schedules are a pure function of (jitter seed, message id,
/// attempt): identical runs seal identical schedules, and a different
/// seed jitters differently while the decision structure stays the same.
#[test]
fn backoff_schedule_is_deterministic_per_seed() {
    let plan = ds_get_plan(FaultKind::ReplyDrop);
    let (_, a) = run_kv(wd_cfg(), Some(&plan));
    let (_, b) = run_kv(wd_cfg(), Some(&plan));
    let da = retry_decisions(&a);
    assert!(!da.is_empty(), "the drop must seal a retry decision");
    assert_eq!(da, retry_decisions(&b), "same seed, same schedule");
    // The whole control-plane log — not just the retry lane — replays
    // byte-identically.
    assert_eq!(a.kernel().axiom().to_bytes(), b.kernel().axiom().to_bytes());

    let mut cfg = wd_cfg();
    cfg.watchdog.jitter_seed = 0x0DD5_EED5;
    let (_, c) = run_kv(cfg, Some(&plan));
    let dc = retry_decisions(&c);
    assert_eq!(da.len(), dc.len(), "structure must not depend on the seed");
    assert!(
        da.iter().zip(&dc).any(|(x, y)| x.3 != y.3),
        "a different jitter seed must move at least one backoff: {da:?}"
    );
    // Jitter is bounded: every backoff stays within base·2^attempt plus a
    // quarter-base of jitter.
    let wd = wd_cfg().watchdog;
    for (_, attempt, granted, backoff) in &da {
        if !granted {
            continue;
        }
        let base = wd.backoff_base << u64::from(*attempt);
        assert!(u64::from(*backoff) >= base, "backoff under base: {da:?}");
        assert!(
            u64::from(*backoff) < base + (wd.backoff_base / 4).max(1),
            "jitter out of range: {da:?}"
        );
    }
}

/// The watchdog metric families render as well-formed Prometheus
/// exposition (the offline promlint gate) and actually carry samples
/// after a fail-silent incident.
#[test]
fn watchdog_metrics_pass_promlint() {
    let plan = ds_get_plan(FaultKind::ReplyCorrupt);
    let (_, os) = run_kv(wd_cfg(), Some(&plan));
    let prom = os.metrics_prometheus();
    validate_prometheus(&prom).expect("watchdog exposition must lint");
    for family in [
        "osiris_watchdog_armed_total",
        "osiris_watchdog_deadline_expired_total",
        "osiris_watchdog_probes_total",
        "osiris_watchdog_verdicts_total",
        "osiris_watchdog_replies_rejected_total",
        "osiris_watchdog_detection_latency_cycles",
        "osiris_retry_decisions_total",
        "osiris_retry_exhausted_total",
    ] {
        assert!(prom.contains(family), "exposition lacks {family}");
    }
}
