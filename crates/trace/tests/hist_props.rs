//! Edge-case and property-style tests for the log2 histogram: empty
//! summaries, single-bucket populations, saturation at the top of the
//! `u64` domain, and merge algebra (identity, commutativity,
//! associativity) over seeded random shards.

use osiris_rng::Rng;
use osiris_trace::hist::{HistSummary, Log2Hist, BUCKETS};

#[test]
fn empty_summary_is_all_zeros() {
    let h = Log2Hist::new();
    assert!(h.is_empty());
    assert_eq!(h.count(), 0);
    assert_eq!(h.sum(), 0);
    assert_eq!(h.min(), 0);
    assert_eq!(h.max(), 0);
    assert_eq!(h.quantile(0.5), 0);
    assert_eq!(h.summary(), HistSummary::default());
    assert_eq!(h.buckets().iter().sum::<u64>(), 0);
}

#[test]
fn single_bucket_population_pins_every_quantile() {
    // All samples share bucket_of(100) = 7; quantiles clamp into the
    // observed [min, max] range no matter where in the bucket they land.
    let mut h = Log2Hist::new();
    for v in [100u64, 101, 127, 64, 64] {
        h.record(v);
    }
    assert_eq!(h.buckets()[7], 5);
    assert_eq!(h.buckets().iter().sum::<u64>(), 5);
    let s = h.summary();
    assert_eq!((s.min, s.max), (64, 127));
    for q in [0.0, 0.01, 0.5, 0.99, 1.0] {
        let v = h.quantile(q);
        assert!(
            (64..=127).contains(&v),
            "quantile({q}) = {v} left the bucket"
        );
    }
}

#[test]
fn zero_only_population_stays_in_bucket_zero() {
    let mut h = Log2Hist::new();
    for _ in 0..10 {
        h.record(0);
    }
    assert_eq!(h.buckets()[0], 10);
    let s = h.summary();
    assert_eq!((s.min, s.p50, s.p99, s.max, s.mean), (0, 0, 0, 0, 0));
    assert_eq!((s.p90, s.p999), (0, 0));
}

#[test]
fn tail_quantiles_are_ordered_and_clamped() {
    // p50 ≤ p90 ≤ p99 ≤ p99.9 must hold over a mixed-magnitude
    // population, and all of them stay within [min, max].
    let h = shard(0xD1, 5000);
    let s = h.summary();
    assert!(
        s.min <= s.p50 && s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.p999 && s.p999 <= s.max,
        "quantiles out of order: {s}"
    );
}

#[test]
fn tail_quantiles_separate_a_heavy_tail() {
    // 999 fast samples and one huge outlier: p50/p90 stay in the fast
    // bucket, p99.9 must reach the outlier's bucket.
    let mut h = Log2Hist::new();
    for _ in 0..999 {
        h.record(8);
    }
    h.record(1 << 40);
    let s = h.summary();
    assert_eq!(s.p50, 8);
    assert_eq!(s.p90, 8);
    assert_eq!(s.p99, 8);
    assert_eq!(s.p999, 8);
    // With ten outliers the 99.9th rank lands on the tail.
    for _ in 0..10 {
        h.record(1 << 40);
    }
    let s = h.summary();
    assert_eq!(s.p50, 8);
    assert_eq!(s.p90, 8);
    assert_eq!(s.p999, 1 << 40);
}

#[test]
fn single_sample_pins_all_quantiles() {
    let mut h = Log2Hist::new();
    h.record(7);
    let s = h.summary();
    assert_eq!((s.p50, s.p90, s.p99, s.p999), (7, 7, 7, 7));
}

#[test]
fn top_bucket_saturation() {
    // u64::MAX lands in the last bucket and the running sum saturates
    // instead of wrapping.
    let mut h = Log2Hist::new();
    h.record(u64::MAX);
    h.record(u64::MAX);
    h.record(u64::MAX);
    assert_eq!(h.buckets()[BUCKETS - 1], 3);
    assert_eq!(h.sum(), u64::MAX);
    let s = h.summary();
    assert_eq!(s.max, u64::MAX);
    assert_eq!(s.min, u64::MAX);
    // Quantiles clamp to the observed min even though the bucket floor
    // (2^63) is far below the samples.
    assert_eq!(s.p50, u64::MAX);
    assert_eq!(s.p99, u64::MAX);
}

#[test]
fn merge_with_empty_is_identity() {
    let mut r = Rng::new(0x4157_0001);
    let mut h = Log2Hist::new();
    for _ in 0..200 {
        h.record(r.next_u64() >> (r.below(64) as u32));
    }
    let mut merged = h;
    merged.merge(&Log2Hist::new());
    assert_eq!(merged, h);
    let mut other = Log2Hist::new();
    other.merge(&h);
    assert_eq!(other, h);
}

/// Builds a histogram from a seeded stream of mixed-magnitude samples.
fn shard(seed: u64, n: usize) -> Log2Hist {
    let mut r = Rng::new(seed);
    let mut h = Log2Hist::new();
    for _ in 0..n {
        // Shift by a random amount so every bucket scale gets traffic,
        // including 0 (full shift of a small value).
        h.record(r.next_u64() >> (r.below(65) as u32).min(63));
    }
    h
}

#[test]
fn merge_matches_recording_everything_in_one_histogram() {
    let mut all = Log2Hist::new();
    let mut merged = Log2Hist::new();
    for seed in 1..=8u64 {
        let s = shard(seed, 500);
        merged.merge(&s);
        let mut r = Rng::new(seed);
        for _ in 0..500 {
            all.record(r.next_u64() >> (r.below(65) as u32).min(63));
        }
    }
    assert_eq!(merged, all);
}

#[test]
fn merge_is_commutative_and_associative() {
    let a = shard(0xA, 300);
    let b = shard(0xB, 301);
    let c = shard(0xC, 302);

    // Commutativity: a+b == b+a.
    let mut ab = a;
    ab.merge(&b);
    let mut ba = b;
    ba.merge(&a);
    assert_eq!(ab, ba);

    // Associativity: (a+b)+c == a+(b+c).
    let mut ab_c = ab;
    ab_c.merge(&c);
    let mut bc = b;
    bc.merge(&c);
    let mut a_bc = a;
    a_bc.merge(&bc);
    assert_eq!(ab_c, a_bc);

    // And the merged summary is self-consistent.
    let s = ab_c.summary();
    assert_eq!(s.count, 903);
    assert!(s.min <= s.p50 && s.p50 <= s.p99 && s.p99 <= s.max);
}
