//! Tracer behavior: ring wraparound, filtering, sequence numbers, and the
//! black-box tail.

use osiris_trace::{
    render_text, Category, CategoryMask, Severity, TraceConfig, TraceEvent, TraceHandle,
};

fn cfg(capacity: usize) -> TraceConfig {
    TraceConfig {
        enabled: true,
        capacity,
        ..TraceConfig::default()
    }
}

#[test]
fn ring_wraps_and_keeps_newest() {
    let h = TraceHandle::new(cfg(4));
    for i in 0..10u64 {
        h.set_now(i);
        h.emit(0, TraceEvent::IpcDeliver { src: 1, msg_id: i });
    }
    let snap = h.snapshot();
    assert_eq!(snap.len(), 4, "ring holds exactly its capacity");
    // Oldest-first chronological order: the last four emits survive.
    let ids: Vec<u64> = snap
        .iter()
        .map(|r| match r.event {
            TraceEvent::IpcDeliver { msg_id, .. } => msg_id,
            _ => unreachable!(),
        })
        .collect();
    assert_eq!(ids, vec![6, 7, 8, 9]);
    assert_eq!(snap[0].now, 6);
    h.with(|t| {
        assert!(t.has_wrapped());
        assert_eq!(t.total_recorded(), 10);
    });
}

#[test]
fn per_component_sequence_numbers() {
    let h = TraceHandle::new(cfg(16));
    h.emit(0, TraceEvent::WindowOpen);
    h.emit(1, TraceEvent::WindowOpen);
    h.emit(0, TraceEvent::UndoCoalesce);
    let snap = h.snapshot();
    assert_eq!(snap[0].seq, 0);
    assert_eq!(snap[1].seq, 0, "each component has its own counter");
    assert_eq!(snap[2].seq, 1);
}

#[test]
fn category_filter_drops_unselected_events() {
    let h = TraceHandle::new(TraceConfig {
        categories: CategoryMask::of(&[Category::Window]),
        ..cfg(16)
    });
    h.emit(0, TraceEvent::WindowOpen);
    h.emit(0, TraceEvent::UndoAppend { bytes: 8 });
    h.emit(0, TraceEvent::IpcDeliver { src: 1, msg_id: 1 });
    let snap = h.snapshot();
    assert_eq!(snap.len(), 1);
    assert_eq!(snap[0].event, TraceEvent::WindowOpen);
    // Filtered events do not consume sequence numbers.
    h.emit(
        0,
        TraceEvent::WindowClose {
            reason: osiris_trace::CloseCode::Manual,
            class: osiris_trace::SeepClassCode::None,
        },
    );
    assert_eq!(h.snapshot()[1].seq, 1);
}

#[test]
fn severity_filter_drops_low_severity() {
    let h = TraceHandle::new(TraceConfig {
        min_severity: Severity::Warn,
        ..cfg(16)
    });
    h.emit(0, TraceEvent::UndoAppend { bytes: 8 }); // Debug
    h.emit(0, TraceEvent::WindowOpen); // Info
    h.emit(0, TraceEvent::Crash { target: 0 }); // Warn
    h.emit(0, TraceEvent::ShutdownDecision { controlled: false }); // Error
    assert_eq!(h.snapshot().len(), 2);
}

#[test]
fn zero_capacity_counts_but_stores_nothing() {
    let h = TraceHandle::new(cfg(0));
    h.emit(0, TraceEvent::WindowOpen);
    assert!(h.snapshot().is_empty());
    h.with(|t| assert_eq!(t.total_recorded(), 1));
}

#[test]
fn blackbox_tail_is_per_component() {
    let h = TraceHandle::new(TraceConfig {
        blackbox_tail: 2,
        ..cfg(64)
    });
    for i in 0..5u64 {
        h.set_now(i);
        h.emit(0, TraceEvent::IpcDeliver { src: 2, msg_id: i });
    }
    h.emit(1, TraceEvent::WindowOpen);
    let names = vec!["pm".to_string(), "vfs".to_string()];
    let dump = h.blackbox(&names).expect("enabled tracer dumps");
    // Component 0 contributes its last two events only; component 1 its one.
    assert_eq!(dump.matches("msg_id: 3").count(), 1);
    assert_eq!(dump.matches("msg_id: 4").count(), 1);
    assert_eq!(dump.matches("msg_id: 2").count(), 0);
    assert!(dump.contains("vfs"));
}

#[test]
fn render_text_is_deterministic_and_named() {
    let h = TraceHandle::new(cfg(8));
    h.set_now(42);
    h.emit(0, TraceEvent::WindowOpen);
    h.emit(
        osiris_trace::KERNEL_COMP,
        TraceEvent::ShutdownDecision { controlled: true },
    );
    let names = vec!["pm".to_string()];
    let a = render_text(&h.snapshot(), &names);
    let b = render_text(&h.snapshot(), &names);
    assert_eq!(a, b);
    assert!(a.contains("pm"));
    assert!(a.contains("kernel"));
    assert!(a.contains("t=42"));
}

#[test]
fn enable_toggle() {
    let h = TraceHandle::new(TraceConfig::default());
    h.emit(0, TraceEvent::WindowOpen);
    assert!(h.snapshot().is_empty());
    h.set_enabled(true);
    h.emit(0, TraceEvent::WindowOpen);
    assert_eq!(h.snapshot().len(), 1);
    h.set_enabled(false);
    h.emit(0, TraceEvent::WindowOpen);
    assert_eq!(h.snapshot().len(), 1);
}
