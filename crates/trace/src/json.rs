//! A tiny hand-rolled JSON value tree + renderer.
//!
//! Lives in `osiris-trace` so the Chrome `trace_event` exporter and the
//! `reproduce`/bench emitters share one implementation; the workspace
//! builds fully offline with no serialization dependencies.
//! (`osiris-bench` re-exports this type — it used to live there.)

/// A JSON value. Objects preserve insertion order so emitted files diff
/// stably across runs.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (kept exact, no float round-trip).
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A float; non-finite values render as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (ordered key/value pairs).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj<const N: usize>(pairs: [(&str, Json); N]) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Builds an array by converting each item.
    pub fn arr<T, F: FnMut(&T) -> Json>(items: &[T], f: F) -> Json {
        Json::Arr(items.iter().map(f).collect())
    }

    /// Renders with two-space indentation and a trailing newline, the
    /// layout `reproduce` commits to disk.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::UInt(u) => out.push_str(&u.to_string()),
            Json::Num(x) if x.is_finite() => {
                // `{}` on f64 is the shortest exact representation, but
                // renders integral floats without a decimal point; keep the
                // point so the value stays typed as a float for readers.
                let s = format!("{x}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            }
            Json::Num(_) => out.push_str("null"),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                newline_indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                newline_indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, depth: usize) {
    out.push('\n');
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::Json;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.pretty(), "null\n");
        assert_eq!(Json::Bool(true).pretty(), "true\n");
        assert_eq!(Json::Int(-3).pretty(), "-3\n");
        assert_eq!(Json::UInt(u64::MAX).pretty(), format!("{}\n", u64::MAX));
        assert_eq!(Json::Num(1.5).pretty(), "1.5\n");
        assert_eq!(
            Json::Num(2.0).pretty(),
            "2.0\n",
            "integral floats keep the point"
        );
        assert_eq!(Json::Num(f64::NAN).pretty(), "null\n");
    }

    #[test]
    fn strings_escape() {
        let s = Json::Str("a\"b\\c\nd\te\u{1}".into());
        assert_eq!(s.pretty(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"\n");
    }

    #[test]
    fn nesting_indents() {
        let doc = Json::obj([
            ("xs", Json::Arr(vec![Json::Int(1), Json::Int(2)])),
            ("empty", Json::Arr(vec![])),
            ("o", Json::obj([("k", Json::Str("v".into()))])),
        ]);
        let expect = "{\n  \"xs\": [\n    1,\n    2\n  ],\n  \"empty\": [],\n  \"o\": {\n    \"k\": \"v\"\n  }\n}\n";
        assert_eq!(doc.pretty(), expect);
    }
}
