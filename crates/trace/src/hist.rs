//! Fixed-bucket log2 histograms.
//!
//! Buckets are powers of two: bucket 0 holds the value 0, bucket `b ≥ 1`
//! holds values whose bit length is `b`, i.e. the range `[2^(b-1), 2^b)`.
//! 65 buckets cover the whole `u64` domain, the array is `Copy`-sized, and
//! recording a sample is two adds and a `leading_zeros` — cheap enough for
//! per-window sampling and entirely allocation-free.

/// Number of buckets: one for zero plus one per possible bit length.
pub const BUCKETS: usize = 65;

/// An allocation-free log2 histogram over `u64` samples.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Log2Hist {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Log2Hist {
    fn default() -> Self {
        Log2Hist::new()
    }
}

impl Log2Hist {
    /// An empty histogram.
    pub const fn new() -> Log2Hist {
        Log2Hist {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Bucket index for `value` (its bit length; 0 for 0).
    pub fn bucket_of(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Lower bound of bucket `b` (its representative value in summaries).
    pub fn bucket_floor(b: usize) -> u64 {
        if b == 0 {
            0
        } else {
            1u64 << (b - 1)
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating at `u64::MAX`).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample (0 if empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample (0 if empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Folds `other` into `self`. Merging is commutative and associative
    /// (up to sum saturation), so partial histograms from independent
    /// shards can be combined in any order.
    pub fn merge(&mut self, other: &Log2Hist) {
        for (b, n) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += n;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Raw bucket counts.
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// Resets to empty.
    pub fn reset(&mut self) {
        *self = Log2Hist::new();
    }

    /// The value at quantile `q` (0.0–1.0), approximated by the floor of
    /// the bucket containing that rank and clamped to the observed
    /// min/max. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::bucket_floor(b).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Condenses the histogram into a fixed summary.
    pub fn summary(&self) -> HistSummary {
        HistSummary {
            count: self.count,
            min: if self.count == 0 { 0 } else { self.min },
            max: self.max,
            mean: self.sum.checked_div(self.count).unwrap_or(0),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            p999: self.quantile(0.999),
        }
    }
}

/// Fixed-size digest of a [`Log2Hist`], suitable for embedding in reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HistSummary {
    /// Samples recorded.
    pub count: u64,
    /// Smallest sample (0 if empty).
    pub min: u64,
    /// Largest sample (0 if empty).
    pub max: u64,
    /// Integer mean (0 if empty).
    pub mean: u64,
    /// Approximate median (log2-bucket resolution).
    pub p50: u64,
    /// Approximate 90th percentile (log2-bucket resolution).
    pub p90: u64,
    /// Approximate 99th percentile (log2-bucket resolution).
    pub p99: u64,
    /// Approximate 99.9th percentile (log2-bucket resolution).
    pub p999: u64,
}

impl std::fmt::Display for HistSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.count == 0 {
            write!(f, "n=0")
        } else {
            write!(
                f,
                "n={} min={} p50={} p90={} p99={} p999={} max={}",
                self.count, self.min, self.p50, self.p90, self.p99, self.p999, self.max
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_domain() {
        assert_eq!(Log2Hist::bucket_of(0), 0);
        assert_eq!(Log2Hist::bucket_of(1), 1);
        assert_eq!(Log2Hist::bucket_of(2), 2);
        assert_eq!(Log2Hist::bucket_of(3), 2);
        assert_eq!(Log2Hist::bucket_of(4), 3);
        assert_eq!(Log2Hist::bucket_of(u64::MAX), 64);
        assert_eq!(Log2Hist::bucket_floor(0), 0);
        assert_eq!(Log2Hist::bucket_floor(1), 1);
        assert_eq!(Log2Hist::bucket_floor(3), 4);
    }

    #[test]
    fn summary_of_empty() {
        let h = Log2Hist::new();
        assert_eq!(h.summary(), HistSummary::default());
    }

    #[test]
    fn summary_tracks_extremes_and_quantiles() {
        let mut h = Log2Hist::new();
        for v in [5u64, 5, 5, 5, 1000] {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 5);
        assert_eq!(s.max, 1000);
        // p50 falls in bucket_of(5) = 3, floor 4, clamped to min 5.
        assert_eq!(s.p50, 5);
        // p99 falls in the 1000 bucket: floor 512, within [5, 1000].
        assert_eq!(s.p99, 512);
        // p90 rank is ceil(0.9*5)=5, also the 1000 bucket; p99.9 likewise.
        assert_eq!(s.p90, 512);
        assert_eq!(s.p999, 512);
        assert_eq!(s.mean, (5 * 4 + 1000) / 5);
    }

    #[test]
    fn quantiles_clamp_to_observed_range() {
        let mut h = Log2Hist::new();
        h.record(7);
        assert_eq!(h.quantile(0.0), 7);
        assert_eq!(h.quantile(1.0), 7);
    }
}
