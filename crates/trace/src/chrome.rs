//! Chrome `trace_event`-format export.
//!
//! Converts a [`TraceRecord`] stream into the JSON Object Format consumed
//! by `chrome://tracing` and Perfetto: one "process" (the simulated OS)
//! with one "thread" per component, recovery windows and recoveries drawn
//! as duration slices, syscalls as async spans keyed by syscall id, and
//! everything else as instant events. Timestamps are virtual-clock cycles
//! reported in the `ts` microsecond field — the absolute unit is
//! meaningless, only the deterministic relative layout matters.

use crate::json::Json;
use crate::{comp_name, TraceEvent, TraceRecord, KERNEL_COMP};
use osiris_axiom::AxiomRecord;

/// `tid` used for kernel-originated events (Perfetto dislikes 255-ish
/// gaps less than it dislikes colliding tids, so keep it distinct).
const KERNEL_TID: u64 = 999;

/// `tid` for the authoritative control-plane log's lane: axiom events
/// render as instant events on their own named thread so the chained
/// history reads as one ordered track in the viewer.
const AXIOM_TID: u64 = 998;

/// `tid` for the causal-request-span lane: span open/close pairs render as
/// async duration events (`b`/`e` keyed by span id) on their own named
/// thread, so overlapping requests stack instead of colliding.
const SPAN_TID: u64 = 997;

/// `tid` for the watchdog lane: armed deadlines, expiries, probes,
/// verdicts and retry decisions render on their own named thread so the
/// fail-silent detection machinery reads as one ordered track.
const WATCHDOG_TID: u64 = 996;

fn tid(comp: u8) -> u64 {
    if comp == KERNEL_COMP {
        KERNEL_TID
    } else {
        comp as u64
    }
}

fn event_json(name: &str, ph: &str, r: &TraceRecord, mut args: Vec<(String, Json)>) -> Json {
    let mut pairs = vec![
        ("name".to_string(), Json::Str(name.to_string())),
        ("ph".to_string(), Json::Str(ph.to_string())),
        ("ts".to_string(), Json::UInt(r.now)),
        ("pid".to_string(), Json::UInt(1)),
        ("tid".to_string(), Json::UInt(tid(r.comp))),
    ];
    args.push(("seq".to_string(), Json::UInt(r.seq)));
    pairs.push(("args".to_string(), Json::Obj(args)));
    Json::Obj(pairs)
}

fn kv(k: &str, v: Json) -> (String, Json) {
    (k.to_string(), v)
}

/// Rewrites a built event onto the span lane: async-correlation `cat`/`id`
/// fields (the viewer pairs `b`/`e` by them) and the dedicated `tid`.
fn span_lane(mut e: Json, span: u64) -> Json {
    if let Json::Obj(pairs) = &mut e {
        for (k, v) in pairs.iter_mut() {
            if k == "tid" {
                *v = Json::UInt(SPAN_TID);
            }
        }
        pairs.insert(2, ("cat".to_string(), Json::Str("span".into())));
        pairs.insert(3, ("id".to_string(), Json::UInt(span)));
    }
    e
}

/// Rewrites a built event onto the watchdog lane.
fn watchdog_lane(mut e: Json) -> Json {
    if let Json::Obj(pairs) = &mut e {
        for (k, v) in pairs.iter_mut() {
            if k == "tid" {
                *v = Json::UInt(WATCHDOG_TID);
            }
        }
    }
    e
}

/// Renders `records` as a complete Chrome trace document.
///
/// `names` maps component indices to display names (the kernel's component
/// table order); unknown indices fall back to `c<n>`.
pub fn chrome_trace(records: &[TraceRecord], names: &[String]) -> Json {
    chrome_trace_with_axiom(records, names, &[])
}

/// One axiom record rendered as a Chrome instant event on the axiom lane:
/// the event's canonical snake_case name, the full typed payload as a
/// `detail` arg, and the chain digest so a viewer row can be matched back
/// to the exact log record.
pub fn axiom_instant(rec: &AxiomRecord, names: &[String]) -> Json {
    let mut args = vec![
        ("seq".to_string(), Json::UInt(rec.seq)),
        (
            "digest".to_string(),
            Json::Str(format!("{:016x}", rec.digest)),
        ),
        ("detail".to_string(), Json::Str(format!("{:?}", rec.event))),
    ];
    if let Some(comp) = rec.event.comp() {
        args.insert(1, ("comp".to_string(), Json::Str(comp_name(comp, names))));
    }
    Json::Obj(vec![
        (
            "name".to_string(),
            Json::Str(format!("axiom.{}", rec.event.name())),
        ),
        ("ph".to_string(), Json::Str("i".to_string())),
        ("ts".to_string(), Json::UInt(rec.now)),
        ("pid".to_string(), Json::UInt(1)),
        ("tid".to_string(), Json::UInt(AXIOM_TID)),
        ("s".to_string(), Json::Str("t".to_string())),
        ("args".to_string(), Json::Obj(args)),
    ])
}

/// Like [`chrome_trace`], with the authoritative control-plane log
/// rendered as an additional instant-event lane (`tid` 998, thread name
/// `axiom`). Pass an empty slice when axiom retention is disabled.
pub fn chrome_trace_with_axiom(
    records: &[TraceRecord],
    names: &[String],
    axiom: &[AxiomRecord],
) -> Json {
    let mut events = Vec::with_capacity(records.len() + axiom.len() + names.len() + 3);

    // Metadata: name the process and one thread per component.
    events.push(Json::obj([
        ("name", Json::Str("process_name".into())),
        ("ph", Json::Str("M".into())),
        ("pid", Json::UInt(1)),
        (
            "args",
            Json::obj([("name", Json::Str("osiris (virtual cycles)".into()))]),
        ),
    ]));
    for (i, name) in names.iter().enumerate() {
        events.push(Json::obj([
            ("name", Json::Str("thread_name".into())),
            ("ph", Json::Str("M".into())),
            ("pid", Json::UInt(1)),
            ("tid", Json::UInt(i as u64)),
            ("args", Json::obj([("name", Json::Str(name.clone()))])),
        ]));
    }
    events.push(Json::obj([
        ("name", Json::Str("thread_name".into())),
        ("ph", Json::Str("M".into())),
        ("pid", Json::UInt(1)),
        ("tid", Json::UInt(KERNEL_TID)),
        ("args", Json::obj([("name", Json::Str("kernel".into()))])),
    ]));
    if !axiom.is_empty() {
        events.push(Json::obj([
            ("name", Json::Str("thread_name".into())),
            ("ph", Json::Str("M".into())),
            ("pid", Json::UInt(1)),
            ("tid", Json::UInt(AXIOM_TID)),
            ("args", Json::obj([("name", Json::Str("axiom".into()))])),
        ]));
    }
    let has_spans = records.iter().any(|r| {
        matches!(
            r.event,
            TraceEvent::SpanOpen { .. } | TraceEvent::SpanHop { .. } | TraceEvent::SpanClose { .. }
        )
    });
    if has_spans {
        events.push(Json::obj([
            ("name", Json::Str("thread_name".into())),
            ("ph", Json::Str("M".into())),
            ("pid", Json::UInt(1)),
            ("tid", Json::UInt(SPAN_TID)),
            ("args", Json::obj([("name", Json::Str("spans".into()))])),
        ]));
    }
    let has_watchdog = records
        .iter()
        .any(|r| r.event.category() == crate::Category::Watchdog);
    if has_watchdog {
        events.push(Json::obj([
            ("name", Json::Str("thread_name".into())),
            ("ph", Json::Str("M".into())),
            ("pid", Json::UInt(1)),
            ("tid", Json::UInt(WATCHDOG_TID)),
            ("args", Json::obj([("name", Json::Str("watchdog".into()))])),
        ]));
    }

    for r in records {
        match &r.event {
            TraceEvent::IpcSend { dst, msg_id, class } => events.push(event_json(
                "ipc_send",
                "i",
                r,
                vec![
                    kv("dst", Json::Str(comp_name(*dst, names))),
                    kv("msg_id", Json::UInt(*msg_id)),
                    kv("class", Json::Str(format!("{class:?}"))),
                ],
            )),
            TraceEvent::IpcDeliver { src, msg_id } => events.push(event_json(
                "ipc_deliver",
                "i",
                r,
                vec![
                    kv("src", Json::Str(comp_name(*src, names))),
                    kv("msg_id", Json::UInt(*msg_id)),
                ],
            )),
            // Windows never overlap within a component, so B/E pairs on the
            // component's tid nest correctly.
            TraceEvent::WindowOpen => events.push(event_json("window", "B", r, vec![])),
            TraceEvent::WindowClose { reason, class } => {
                // An unmatched E (close without a recorded open, e.g. after
                // ring wraparound) confuses viewers less than an unmatched
                // B, and Perfetto tolerates both.
                events.push(event_json(
                    "window",
                    "E",
                    r,
                    vec![
                        kv("reason", Json::Str(format!("{reason:?}"))),
                        kv("class", Json::Str(format!("{class:?}"))),
                    ],
                ))
            }
            TraceEvent::UndoAppend { bytes } => events.push(event_json(
                "undo_append",
                "i",
                r,
                vec![kv("bytes", Json::UInt(*bytes as u64))],
            )),
            TraceEvent::UndoCoalesce => events.push(event_json("undo_coalesce", "i", r, vec![])),
            TraceEvent::CheckpointMark { log_len } => events.push(event_json(
                "checkpoint_mark",
                "i",
                r,
                vec![kv("log_len", Json::UInt(*log_len as u64))],
            )),
            TraceEvent::Rollback { records, bytes } => events.push(event_json(
                "rollback",
                "i",
                r,
                vec![
                    kv("records", Json::UInt(*records as u64)),
                    kv("bytes", Json::UInt(*bytes as u64)),
                ],
            )),
            TraceEvent::Discard { records, bytes } => events.push(event_json(
                "discard",
                "i",
                r,
                vec![
                    kv("records", Json::UInt(*records as u64)),
                    kv("bytes", Json::UInt(*bytes as u64)),
                ],
            )),
            TraceEvent::Crash { target } => events.push(event_json(
                "crash",
                "i",
                r,
                vec![kv("target", Json::Str(comp_name(*target, names)))],
            )),
            TraceEvent::HangDetected { target } => events.push(event_json(
                "hang_detected",
                "i",
                r,
                vec![kv("target", Json::Str(comp_name(*target, names)))],
            )),
            TraceEvent::RsCrashNotified { target } => events.push(event_json(
                "rs_crash_notified",
                "i",
                r,
                vec![kv("target", Json::Str(comp_name(*target, names)))],
            )),
            TraceEvent::RecoveryDecision { target, action } => events.push(event_json(
                "recovery_decision",
                "i",
                r,
                vec![
                    kv("target", Json::Str(comp_name(*target, names))),
                    kv("action", Json::Str(format!("{action:?}"))),
                ],
            )),
            // Recovery latency renders as a complete slice ending at the
            // RecoveryDone timestamp (the clock has already been charged).
            TraceEvent::RecoveryDone { target, cycles } => {
                let mut e = event_json(
                    "recovery",
                    "X",
                    r,
                    vec![
                        kv("target", Json::Str(comp_name(*target, names))),
                        kv("cycles", Json::UInt(*cycles)),
                    ],
                );
                if let Json::Obj(pairs) = &mut e {
                    for (k, v) in pairs.iter_mut() {
                        if k == "ts" {
                            *v = Json::UInt(r.now.saturating_sub(*cycles));
                        }
                    }
                    pairs.insert(3, ("dur".to_string(), Json::UInt(*cycles)));
                }
                events.push(e)
            }
            // Syscalls to one server can interleave, so use async spans
            // keyed by syscall id instead of B/E stack slices.
            TraceEvent::SyscallEnter { sid, pid } => {
                let mut e = event_json("syscall", "b", r, vec![kv("pid", Json::UInt(*pid as u64))]);
                if let Json::Obj(pairs) = &mut e {
                    pairs.insert(2, ("cat".to_string(), Json::Str("syscall".into())));
                    pairs.insert(3, ("id".to_string(), Json::UInt(*sid)));
                }
                events.push(e)
            }
            TraceEvent::SyscallExit { sid, pid, ok } => {
                let mut e = event_json(
                    "syscall",
                    "e",
                    r,
                    vec![
                        kv("pid", Json::UInt(*pid as u64)),
                        kv("ok", Json::Bool(*ok)),
                    ],
                );
                if let Json::Obj(pairs) = &mut e {
                    pairs.insert(2, ("cat".to_string(), Json::Str("syscall".into())));
                    pairs.insert(3, ("id".to_string(), Json::UInt(*sid)));
                }
                events.push(e)
            }
            TraceEvent::ShutdownDecision { controlled } => events.push(event_json(
                "shutdown_decision",
                "i",
                r,
                vec![kv("controlled", Json::Bool(*controlled))],
            )),
            TraceEvent::BudgetExhausted { target } => events.push(event_json(
                "budget_exhausted",
                "i",
                r,
                vec![kv("target", Json::Str(comp_name(*target, names)))],
            )),
            TraceEvent::BackoffArmed { target, delay } => events.push(event_json(
                "backoff_armed",
                "i",
                r,
                vec![
                    kv("target", Json::Str(comp_name(*target, names))),
                    kv("delay", Json::UInt(*delay)),
                ],
            )),
            TraceEvent::Quarantined { target } => events.push(event_json(
                "quarantined",
                "i",
                r,
                vec![kv("target", Json::Str(comp_name(*target, names)))],
            )),
            TraceEvent::RecoveryFallback { target, from, to } => events.push(event_json(
                "recovery_fallback",
                "i",
                r,
                vec![
                    kv("target", Json::Str(comp_name(*target, names))),
                    kv("from", Json::Str(format!("{from:?}"))),
                    kv("to", Json::Str(format!("{to:?}"))),
                ],
            )),
            TraceEvent::IntentReplayed { target } => events.push(event_json(
                "intent_replayed",
                "i",
                r,
                vec![kv("target", Json::Str(comp_name(*target, names)))],
            )),
            TraceEvent::CowRestore {
                target,
                clean,
                dirty,
                bytes,
            } => events.push(event_json(
                "cow_restore",
                "i",
                r,
                vec![
                    kv("target", Json::Str(comp_name(*target, names))),
                    kv("clean", Json::UInt(*clean as u64)),
                    kv("dirty", Json::UInt(*dirty as u64)),
                    kv("bytes", Json::UInt(*bytes as u64)),
                ],
            )),
            // Requests overlap freely, so spans use async b/e pairs keyed
            // by span id on a dedicated lane, like syscalls on their tids.
            TraceEvent::SpanOpen { span, sid, pid } => {
                let e = event_json(
                    "span",
                    "b",
                    r,
                    vec![
                        kv("sid", Json::UInt(*sid)),
                        kv("pid", Json::UInt(*pid as u64)),
                    ],
                );
                events.push(span_lane(e, *span))
            }
            TraceEvent::SpanHop { span, src, msg_id } => {
                let e = event_json(
                    "span_hop",
                    "n",
                    r,
                    vec![
                        kv("src", Json::Str(comp_name(*src, names))),
                        kv("msg_id", Json::UInt(*msg_id)),
                    ],
                );
                events.push(span_lane(e, *span))
            }
            TraceEvent::SpanClose {
                span,
                ok,
                crossed_recovery,
                latency,
            } => {
                let e = event_json(
                    "span",
                    "e",
                    r,
                    vec![
                        kv("ok", Json::Bool(*ok)),
                        kv("crossed_recovery", Json::Bool(*crossed_recovery)),
                        kv("latency", Json::UInt(*latency)),
                    ],
                );
                events.push(span_lane(e, *span))
            }
            TraceEvent::DeadlineArmed {
                target,
                msg_id,
                deadline,
            } => {
                let e = event_json(
                    "deadline_armed",
                    "i",
                    r,
                    vec![
                        kv("target", Json::Str(comp_name(*target, names))),
                        kv("msg_id", Json::UInt(*msg_id)),
                        kv("deadline", Json::UInt(*deadline)),
                    ],
                );
                events.push(watchdog_lane(e))
            }
            TraceEvent::DeadlineExpired { target, msg_id } => {
                let e = event_json(
                    "deadline_expired",
                    "i",
                    r,
                    vec![
                        kv("target", Json::Str(comp_name(*target, names))),
                        kv("msg_id", Json::UInt(*msg_id)),
                    ],
                );
                events.push(watchdog_lane(e))
            }
            TraceEvent::WatchdogProbe { target, msg_id } => {
                let e = event_json(
                    "watchdog_probe",
                    "i",
                    r,
                    vec![
                        kv("target", Json::Str(comp_name(*target, names))),
                        kv("msg_id", Json::UInt(*msg_id)),
                    ],
                );
                events.push(watchdog_lane(e))
            }
            TraceEvent::WatchdogVerdict {
                target,
                msg_id,
                verdict,
            } => {
                let e = event_json(
                    "watchdog_verdict",
                    "i",
                    r,
                    vec![
                        kv("target", Json::Str(comp_name(*target, names))),
                        kv("msg_id", Json::UInt(*msg_id)),
                        kv("verdict", Json::Str(format!("{verdict:?}"))),
                    ],
                );
                events.push(watchdog_lane(e))
            }
            TraceEvent::RetryScheduled {
                target,
                msg_id,
                attempt,
                backoff,
            } => {
                let e = event_json(
                    "retry_scheduled",
                    "i",
                    r,
                    vec![
                        kv("target", Json::Str(comp_name(*target, names))),
                        kv("msg_id", Json::UInt(*msg_id)),
                        kv("attempt", Json::UInt(*attempt as u64)),
                        kv("backoff", Json::UInt(*backoff)),
                    ],
                );
                events.push(watchdog_lane(e))
            }
            TraceEvent::RetryExhausted { target, msg_id } => {
                let e = event_json(
                    "retry_exhausted",
                    "i",
                    r,
                    vec![
                        kv("target", Json::Str(comp_name(*target, names))),
                        kv("msg_id", Json::UInt(*msg_id)),
                    ],
                );
                events.push(watchdog_lane(e))
            }
            TraceEvent::ReplyRejected { sender, msg_id } => {
                let e = event_json(
                    "reply_rejected",
                    "i",
                    r,
                    vec![
                        kv("sender", Json::Str(comp_name(*sender, names))),
                        kv("msg_id", Json::UInt(*msg_id)),
                    ],
                );
                events.push(watchdog_lane(e))
            }
        }
    }

    for rec in axiom {
        events.push(axiom_instant(rec, names));
    }

    Json::obj([
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::Str("ns".into())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CloseCode, TraceRecord};

    #[test]
    fn exports_valid_structure() {
        let names = vec!["rs".to_string(), "pm".to_string()];
        let recs = vec![
            TraceRecord {
                now: 10,
                seq: 0,
                comp: 1,
                event: TraceEvent::WindowOpen,
            },
            TraceRecord {
                now: 40,
                seq: 1,
                comp: 1,
                event: TraceEvent::WindowClose {
                    reason: CloseCode::Completed,
                    class: crate::SeepClassCode::None,
                },
            },
            TraceRecord {
                now: 900,
                seq: 0,
                comp: 0,
                event: TraceEvent::RecoveryDone {
                    target: 1,
                    cycles: 600,
                },
            },
        ];
        let doc = chrome_trace(&recs, &names);
        let text = doc.pretty();
        assert!(text.contains("\"traceEvents\""));
        assert!(text.contains("\"thread_name\""));
        assert!(text.contains("\"ph\": \"B\""));
        assert!(text.contains("\"ph\": \"E\""));
        // The recovery slice starts at now - cycles.
        assert!(text.contains("\"dur\": 600"));
        assert!(text.contains("\"ts\": 300"));
    }

    #[test]
    fn axiom_lane_renders_instants() {
        use osiris_axiom::{AxiomConfig, AxiomEvent, AxiomLog};
        let mut log = AxiomLog::new(AxiomConfig {
            enabled: true,
            capacity: 4,
        });
        log.append(
            5,
            AxiomEvent::Genesis {
                comps: 2,
                config_digest: 7,
            },
        );
        log.append(9, AxiomEvent::WindowOpen { comp: 1 });
        let names = vec!["rs".to_string(), "pm".to_string()];
        let doc = chrome_trace_with_axiom(&[], &names, log.records());
        let text = doc.pretty();
        assert!(text.contains("\"axiom.genesis\""), "{text}");
        assert!(text.contains("\"axiom.window_open\""), "{text}");
        assert!(text.contains("\"comp\": \"pm\""), "{text}");
        assert!(text.contains("\"tid\": 998"), "{text}");
        // The axiom lane gets its own thread_name metadata row.
        assert!(text.contains("\"name\": \"axiom\""), "{text}");
        // Digests render as fixed-width hex.
        let digest = format!("{:016x}", log.records()[0].digest);
        assert!(text.contains(&digest), "{text}");
        // No lane, no metadata when the axiom is empty.
        let empty = chrome_trace_with_axiom(&[], &names, &[]).pretty();
        assert!(!empty.contains("\"tid\": 998"), "{empty}");
    }

    #[test]
    fn exporter_escapes_event_and_component_names() {
        // Component names flow into event args verbatim; hostile names
        // (quotes, backslashes, control chars) must come out escaped, not
        // as broken JSON.
        let names = vec!["a\"b\\c\nd\u{1}".to_string()];
        let recs = vec![TraceRecord {
            now: 3,
            seq: 0,
            comp: 5,
            event: TraceEvent::Crash { target: 0 },
        }];
        let text = chrome_trace(&recs, &names).pretty();
        assert!(
            text.contains("\"target\": \"a\\\"b\\\\c\\nd\\u0001\""),
            "{text}"
        );
        // Raw quote/backslash/control bytes must never leak unescaped
        // inside a string: the document still balances its quotes.
        let quotes = text.chars().filter(|c| *c == '"').count();
        assert_eq!(quotes % 2, 0, "unbalanced quotes in {text}");
        assert!(!text.contains('\u{1}'), "raw control char leaked: {text}");
    }

    #[test]
    fn span_lane_renders_async_pairs() {
        let names = vec!["pm".to_string()];
        let recs = vec![
            TraceRecord {
                now: 10,
                seq: 0,
                comp: crate::KERNEL_COMP,
                event: TraceEvent::SpanOpen {
                    span: 42,
                    sid: 7,
                    pid: 3,
                },
            },
            TraceRecord {
                now: 15,
                seq: 0,
                comp: 0,
                event: TraceEvent::SpanHop {
                    span: 42,
                    src: crate::KERNEL_COMP,
                    msg_id: 9,
                },
            },
            TraceRecord {
                now: 90,
                seq: 1,
                comp: crate::KERNEL_COMP,
                event: TraceEvent::SpanClose {
                    span: 42,
                    ok: true,
                    crossed_recovery: false,
                    latency: 80,
                },
            },
        ];
        let text = chrome_trace(&recs, &names).pretty();
        // Open/close render as an async pair correlated by cat+id on the
        // dedicated span lane, plus its thread_name metadata row.
        assert!(text.contains("\"ph\": \"b\""), "{text}");
        assert!(text.contains("\"ph\": \"e\""), "{text}");
        assert!(text.contains("\"cat\": \"span\""), "{text}");
        assert!(text.contains("\"id\": 42"), "{text}");
        assert!(text.contains("\"tid\": 997"), "{text}");
        assert!(text.contains("\"name\": \"spans\""), "{text}");
        assert!(text.contains("\"crossed_recovery\": false"), "{text}");
        // No span events → no span lane metadata.
        let empty = chrome_trace(&[], &names).pretty();
        assert!(!empty.contains("\"tid\": 997"), "{empty}");
    }

    #[test]
    fn span_lane_escapes_component_names() {
        // Same hostile-name contract as the axiom/component lanes: a
        // component name with quotes, backslashes and control chars flows
        // into the SpanHop `src` arg and must come out escaped.
        let names = vec!["a\"b\\c\nd\u{1}".to_string()];
        let recs = vec![TraceRecord {
            now: 3,
            seq: 0,
            comp: 5,
            event: TraceEvent::SpanHop {
                span: 1,
                src: 0,
                msg_id: 2,
            },
        }];
        let text = chrome_trace(&recs, &names).pretty();
        assert!(
            text.contains("\"src\": \"a\\\"b\\\\c\\nd\\u0001\""),
            "{text}"
        );
        let quotes = text.chars().filter(|c| *c == '"').count();
        assert_eq!(quotes % 2, 0, "unbalanced quotes in {text}");
        assert!(!text.contains('\u{1}'), "raw control char leaked: {text}");
    }

    #[test]
    fn watchdog_lane_renders_instants() {
        let names = vec!["vfs".to_string()];
        let recs = vec![
            TraceRecord {
                now: 10,
                seq: 0,
                comp: crate::KERNEL_COMP,
                event: TraceEvent::DeadlineArmed {
                    target: 0,
                    msg_id: 7,
                    deadline: 1_500_010,
                },
            },
            TraceRecord {
                now: 1_500_010,
                seq: 1,
                comp: crate::KERNEL_COMP,
                event: TraceEvent::WatchdogVerdict {
                    target: 0,
                    msg_id: 7,
                    verdict: crate::VerdictCode::Hung,
                },
            },
        ];
        let text = chrome_trace(&recs, &names).pretty();
        assert!(text.contains("\"deadline_armed\""), "{text}");
        assert!(text.contains("\"watchdog_verdict\""), "{text}");
        assert!(text.contains("\"verdict\": \"Hung\""), "{text}");
        assert!(text.contains("\"tid\": 996"), "{text}");
        assert!(text.contains("\"name\": \"watchdog\""), "{text}");
        // No watchdog events → no watchdog lane metadata.
        let empty = chrome_trace(&[], &names).pretty();
        assert!(!empty.contains("\"tid\": 996"), "{empty}");
    }

    #[test]
    fn deterministic_render() {
        let names = vec!["pm".to_string()];
        let recs = vec![TraceRecord {
            now: 1,
            seq: 0,
            comp: 0,
            event: TraceEvent::UndoAppend { bytes: 8 },
        }];
        assert_eq!(
            chrome_trace(&recs, &names).pretty(),
            chrome_trace(&recs, &names).pretty()
        );
    }
}
