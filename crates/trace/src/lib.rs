//! # osiris-trace
//!
//! A deterministic, allocation-free-in-steady-state **flight recorder** for
//! the OSIRIS simulator: a fixed-capacity ring buffer of typed
//! [`TraceEvent`] records stamped with the *virtual* clock, per-component
//! sequence numbers, and a cheap severity/category filter.
//!
//! Design constraints (see DESIGN.md §6d):
//!
//! * **Determinism.** Events carry only virtual-clock timestamps and values
//!   derived from simulator state — never wall-clock time, addresses, or
//!   global counters that differ across runs. Two runs of the same workload
//!   produce byte-identical event streams.
//! * **Zero allocation in steady state.** The ring is allocated once, at
//!   construction (or when tracing is first enabled); emitting an event
//!   writes a [`Copy`] record into a pre-existing slot. The `bench_trace`
//!   binary proves this with a counting global allocator.
//! * **No cost-model perturbation.** Emitting never touches the virtual
//!   clock; tracing is an observer of the cost model, not a participant.
//!   The recorder is told the current virtual time via
//!   [`TraceHandle::set_now`].
//! * **Cheap when off.** The disabled path is a single relaxed atomic load,
//!   so always-on emit points in hot paths (undo-log appends) stay within
//!   the `bench_undo` performance envelope.
//!
//! The crate sits just above `osiris-axiom` (the authoritative
//! control-plane log), from which it re-exports the shared
//! [`CloseCode`]/[`SeepClassCode`]/[`ActionCode`] vocabularies; the
//! checkpoint/core/kernel layers all emit through it. The small hand-rolled
//! [`Json`] value tree (used by the Chrome `trace_event` exporter in
//! [`chrome`]) lives here too and is re-exported by `osiris-bench`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod hist;
pub mod json;

pub use hist::{HistSummary, Log2Hist};
pub use json::Json;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// Component id used for events emitted by the kernel itself rather than by
/// a registered component.
pub const KERNEL_COMP: u8 = 0xFF;

/// Severity of a trace event. Ordered: `Debug < Info < Warn < Error`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// High-frequency bookkeeping (undo appends, checkpoint marks).
    Debug,
    /// Normal control flow (IPC, windows, syscalls).
    Info,
    /// Faults and recovery activity.
    Warn,
    /// Shutdown decisions.
    Error,
}

/// Category of a trace event; each category is one bit in a [`CategoryMask`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Category {
    /// Message sends and deliveries.
    Ipc,
    /// Recovery-window opens and closes.
    Window,
    /// Undo-journal appends and coalesced (elided) appends.
    Undo,
    /// Checkpoint marks, rollbacks, and log discards.
    Checkpoint,
    /// Crashes, hangs, and Recovery Server decisions.
    Recovery,
    /// User-process syscall entry and exit.
    Syscall,
    /// Controlled/uncontrolled shutdown decisions.
    Shutdown,
    /// Causal request spans: open/hop/close lifecycle events.
    Span,
    /// Virtual-time watchdog: armed deadlines, expiries, heartbeat probes,
    /// verdicts and transparent-retry decisions.
    Watchdog,
}

impl Category {
    /// The bit this category occupies in a [`CategoryMask`].
    pub fn bit(self) -> u16 {
        1 << (self as u16)
    }
}

/// A set of [`Category`] values, stored as a bitmask.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CategoryMask(pub u16);

impl CategoryMask {
    /// Every category enabled.
    pub const ALL: CategoryMask = CategoryMask(0x1FF);
    /// No category enabled.
    pub const NONE: CategoryMask = CategoryMask(0);

    /// Builds a mask from individual categories.
    pub fn of(cats: &[Category]) -> CategoryMask {
        CategoryMask(cats.iter().fold(0, |m, c| m | c.bit()))
    }

    /// Whether `cat` is enabled in this mask.
    pub fn contains(self, cat: Category) -> bool {
        self.0 & cat.bit() != 0
    }

    /// Union of two masks.
    pub fn union(self, other: CategoryMask) -> CategoryMask {
        CategoryMask(self.0 | other.0)
    }

    /// This mask with `cat` removed.
    pub fn without(self, cat: Category) -> CategoryMask {
        CategoryMask(self.0 & !cat.bit())
    }
}

impl Default for CategoryMask {
    fn default() -> Self {
        CategoryMask::ALL
    }
}

pub use osiris_axiom::{ActionCode, CloseCode, SeepClassCode, VerdictCode};

/// A typed, fixed-size trace event. Every variant is `Copy` and contains no
/// heap-owning field, so emitting one never allocates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A component (or the kernel on behalf of a user process) sent a
    /// message to `dst`.
    IpcSend {
        /// Receiving component.
        dst: u8,
        /// Monotone per-run message id.
        msg_id: u64,
        /// SEEP class engraved on the message.
        class: SeepClassCode,
    },
    /// The kernel delivered message `msg_id` from `src` to the recording
    /// component and is about to dispatch its handler.
    IpcDeliver {
        /// Sending component ([`KERNEL_COMP`] for kernel-originated).
        src: u8,
        /// Monotone per-run message id.
        msg_id: u64,
    },
    /// A recovery window opened (undo logging armed).
    WindowOpen,
    /// A recovery window closed.
    WindowClose {
        /// Why it closed.
        reason: CloseCode,
        /// SEEP class of the send that closed it, if any.
        class: SeepClassCode,
    },
    /// The undo journal appended an old-value record of `bytes` bytes.
    UndoAppend {
        /// Payload bytes captured into the journal.
        bytes: u32,
    },
    /// A write to an already-logged location was elided (coalesced).
    UndoCoalesce,
    /// A checkpoint mark was taken at undo-log length `log_len`.
    CheckpointMark {
        /// Journal length at the mark.
        log_len: u32,
    },
    /// The journal rolled back `records` records (`bytes` payload bytes).
    Rollback {
        /// Records undone.
        records: u32,
        /// Payload bytes restored.
        bytes: u32,
    },
    /// The journal discarded `records` records on commit.
    Discard {
        /// Records discarded.
        records: u32,
        /// Payload bytes released.
        bytes: u32,
    },
    /// Component `target` crashed (fail-stop fault captured).
    Crash {
        /// Crashed component.
        target: u8,
    },
    /// Component `target` was declared hung by the heartbeat protocol.
    HangDetected {
        /// Hung component.
        target: u8,
    },
    /// The Recovery Server was notified of a crash.
    RsCrashNotified {
        /// Crashed component the RS was told about.
        target: u8,
    },
    /// The recovery policy decided how to recover `target`.
    RecoveryDecision {
        /// Component being recovered.
        target: u8,
        /// Chosen action.
        action: ActionCode,
    },
    /// Recovery of `target` finished, charging `cycles` virtual cycles.
    RecoveryDone {
        /// Recovered component.
        target: u8,
        /// Virtual cycles spent (restart + rollback + reconciliation).
        cycles: u64,
    },
    /// A user process entered a syscall serviced by the recording component.
    SyscallEnter {
        /// Monotone syscall id (the kernel's message id for the request).
        sid: u64,
        /// Calling process.
        pid: u32,
    },
    /// A syscall completed and its reply was routed back to the process.
    SyscallExit {
        /// Syscall id matching the corresponding [`TraceEvent::SyscallEnter`].
        sid: u64,
        /// Calling process.
        pid: u32,
        /// Whether the reply is a success (false for error replies,
        /// including virtualized `E_CRASH`).
        ok: bool,
    },
    /// The system decided to shut down.
    ShutdownDecision {
        /// True for a controlled (state-flushing) shutdown, false for an
        /// uncontrolled crash stop.
        controlled: bool,
    },
    /// Component `target` exhausted its restart budget inside the sliding
    /// window: the escalation ladder is stepping past plain restarts.
    BudgetExhausted {
        /// Crash-looping component.
        target: u8,
    },
    /// Recovery of `target` was deferred by `delay` virtual cycles of
    /// exponential restart backoff.
    BackoffArmed {
        /// Component whose recovery is deferred.
        target: u8,
        /// Backoff delay in virtual cycles.
        delay: u64,
    },
    /// Component `target` was quarantined: no further restarts, messages
    /// to it are bounced with an immediate crash reply.
    Quarantined {
        /// Benched component.
        target: u8,
    },
    /// A recovery phase for `target` could not be executed (journal or
    /// image integrity violation, or a fault inside the phase itself); the
    /// kernel degraded from `from` to the next rung of the fallback chain.
    RecoveryFallback {
        /// Component whose recovery degraded.
        target: u8,
        /// The action that failed.
        from: ActionCode,
        /// The action tried next.
        to: ActionCode,
    },
    /// The RS crashed mid-conduct and the persisted recovery intent for
    /// `target` was re-driven (or completed by the kernel directly).
    IntentReplayed {
        /// Component whose in-flight recovery was re-driven.
        target: u8,
    },
    /// A FreshRestart restored `target` from its copy-on-write manifest:
    /// only the `dirty` diverged chunks were written back, the `clean`
    /// chunks were skipped, making restart cost O(dirty state).
    CowRestore {
        /// Restored component.
        target: u8,
        /// Chunks skipped because the live object had not diverged.
        clean: u32,
        /// Chunks verified and written back.
        dirty: u32,
        /// Bytes actually copied into the heap.
        bytes: u32,
    },
    /// A causal request span was minted at a workload entry point.
    SpanOpen {
        /// Span id (monotone per run).
        span: u64,
        /// Syscall id of the originating user request.
        sid: u64,
        /// Calling process.
        pid: u32,
    },
    /// A span-carrying message was delivered to the recording component:
    /// one causal hop of the request's cross-component call chain.
    SpanHop {
        /// Span id.
        span: u64,
        /// Sending component ([`KERNEL_COMP`] for kernel-originated).
        src: u8,
        /// Delivered message id.
        msg_id: u64,
    },
    /// A span closed: the originating request's reply was routed back to
    /// the user process.
    SpanClose {
        /// Span id.
        span: u64,
        /// Whether the reply was a success (false for error replies,
        /// including virtualized `E_CRASH`/`E_SHUTDOWN`).
        ok: bool,
        /// Whether at least one crash/hang capture or completed recovery
        /// happened between span open and close.
        crossed_recovery: bool,
        /// End-to-end virtual cycles from open to close.
        latency: u64,
    },
    /// The kernel armed a per-request watchdog deadline for a message
    /// delivered to `target`.
    DeadlineArmed {
        /// Component the request was delivered to.
        target: u8,
        /// Armed message id.
        msg_id: u64,
        /// Absolute virtual-clock deadline.
        deadline: u64,
    },
    /// An armed deadline expired with no reply observed.
    DeadlineExpired {
        /// Component the request was delivered to.
        target: u8,
        /// Expired message id.
        msg_id: u64,
    },
    /// The watchdog sampled `target`'s progress counters to distinguish a
    /// hung component from a slow one.
    WatchdogProbe {
        /// Probed component.
        target: u8,
        /// Message id of the request under suspicion.
        msg_id: u64,
    },
    /// The watchdog concluded its probe with a verdict.
    WatchdogVerdict {
        /// Component the verdict concerns.
        target: u8,
        /// Message id of the request under suspicion.
        msg_id: u64,
        /// What the probe concluded.
        verdict: VerdictCode,
    },
    /// The kernel granted a transparent retry: the original request will be
    /// re-delivered after `backoff` virtual cycles.
    RetryScheduled {
        /// Component the request targets.
        target: u8,
        /// Retried message id (stable across attempts).
        msg_id: u64,
        /// Attempt number of the upcoming re-delivery (1 = first retry).
        attempt: u8,
        /// Backoff (incl. deterministic jitter) before the resend.
        backoff: u64,
    },
    /// Retries for `msg_id` were denied or exhausted; the requester sees
    /// the virtualized crash reply.
    RetryExhausted {
        /// Component the request targeted.
        target: u8,
        /// Message id whose retries ended.
        msg_id: u64,
    },
    /// A reply failed integrity verification and was rejected; the sender
    /// is treated as crashed.
    ReplyRejected {
        /// Component that sent the corrupt reply.
        sender: u8,
        /// Message id of the rejected reply's request.
        msg_id: u64,
    },
}

impl TraceEvent {
    /// The category this event belongs to.
    pub fn category(&self) -> Category {
        match self {
            TraceEvent::IpcSend { .. } | TraceEvent::IpcDeliver { .. } => Category::Ipc,
            TraceEvent::WindowOpen | TraceEvent::WindowClose { .. } => Category::Window,
            TraceEvent::UndoAppend { .. } | TraceEvent::UndoCoalesce => Category::Undo,
            TraceEvent::CheckpointMark { .. }
            | TraceEvent::Rollback { .. }
            | TraceEvent::Discard { .. } => Category::Checkpoint,
            TraceEvent::Crash { .. }
            | TraceEvent::HangDetected { .. }
            | TraceEvent::RsCrashNotified { .. }
            | TraceEvent::RecoveryDecision { .. }
            | TraceEvent::RecoveryDone { .. }
            | TraceEvent::BudgetExhausted { .. }
            | TraceEvent::BackoffArmed { .. }
            | TraceEvent::Quarantined { .. }
            | TraceEvent::RecoveryFallback { .. }
            | TraceEvent::IntentReplayed { .. }
            | TraceEvent::CowRestore { .. } => Category::Recovery,
            TraceEvent::SyscallEnter { .. } | TraceEvent::SyscallExit { .. } => Category::Syscall,
            TraceEvent::ShutdownDecision { .. } => Category::Shutdown,
            TraceEvent::SpanOpen { .. }
            | TraceEvent::SpanHop { .. }
            | TraceEvent::SpanClose { .. } => Category::Span,
            TraceEvent::DeadlineArmed { .. }
            | TraceEvent::DeadlineExpired { .. }
            | TraceEvent::WatchdogProbe { .. }
            | TraceEvent::WatchdogVerdict { .. }
            | TraceEvent::RetryScheduled { .. }
            | TraceEvent::RetryExhausted { .. }
            | TraceEvent::ReplyRejected { .. } => Category::Watchdog,
        }
    }

    /// The inherent severity of this event.
    pub fn severity(&self) -> Severity {
        match self {
            TraceEvent::UndoAppend { .. }
            | TraceEvent::UndoCoalesce
            | TraceEvent::CheckpointMark { .. }
            | TraceEvent::Discard { .. }
            | TraceEvent::DeadlineArmed { .. }
            | TraceEvent::WatchdogProbe { .. } => Severity::Debug,
            TraceEvent::IpcSend { .. }
            | TraceEvent::IpcDeliver { .. }
            | TraceEvent::WindowOpen
            | TraceEvent::WindowClose { .. }
            | TraceEvent::SyscallEnter { .. }
            | TraceEvent::SyscallExit { .. }
            | TraceEvent::SpanOpen { .. }
            | TraceEvent::SpanHop { .. }
            | TraceEvent::SpanClose { .. } => Severity::Info,
            TraceEvent::Rollback { .. }
            | TraceEvent::Crash { .. }
            | TraceEvent::HangDetected { .. }
            | TraceEvent::RsCrashNotified { .. }
            | TraceEvent::RecoveryDecision { .. }
            | TraceEvent::RecoveryDone { .. }
            | TraceEvent::BudgetExhausted { .. }
            | TraceEvent::BackoffArmed { .. }
            | TraceEvent::Quarantined { .. }
            | TraceEvent::RecoveryFallback { .. }
            | TraceEvent::IntentReplayed { .. }
            | TraceEvent::CowRestore { .. }
            | TraceEvent::DeadlineExpired { .. }
            | TraceEvent::WatchdogVerdict { .. }
            | TraceEvent::RetryScheduled { .. }
            | TraceEvent::RetryExhausted { .. }
            | TraceEvent::ReplyRejected { .. } => Severity::Warn,
            TraceEvent::ShutdownDecision { .. } => Severity::Error,
        }
    }
}

/// One recorded event: virtual timestamp, per-component sequence number,
/// emitting component, payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Virtual-clock cycle at which the event was recorded.
    pub now: u64,
    /// Per-component monotone sequence number (starts at 0).
    pub seq: u64,
    /// Emitting component index, or [`KERNEL_COMP`].
    pub comp: u8,
    /// The event payload.
    pub event: TraceEvent,
}

/// Flight-recorder configuration, embedded in the kernel/OS config.
#[derive(Clone, Debug)]
pub struct TraceConfig {
    /// Master switch. When false, emit points cost one atomic load.
    pub enabled: bool,
    /// Ring capacity in events. The ring overwrites its oldest records
    /// once full (flight-recorder semantics).
    pub capacity: usize,
    /// Categories to record; events outside the mask are dropped.
    pub categories: CategoryMask,
    /// Minimum severity to record.
    pub min_severity: Severity,
    /// Mirror every recorded event to stderr (implies `enabled`). This is
    /// the verbose replacement for the old `OSIRIS_KERNEL_TRACE` prints.
    pub verbose: bool,
    /// Events per component dumped by the post-mortem black box
    /// ([`Tracer::blackbox`]); 0 disables the dump.
    pub blackbox_tail: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            enabled: false,
            capacity: 16 * 1024,
            categories: CategoryMask::ALL,
            min_severity: Severity::Debug,
            verbose: false,
            blackbox_tail: 32,
        }
    }
}

impl TraceConfig {
    /// An enabled config with default capacity and filters.
    pub fn on() -> TraceConfig {
        TraceConfig {
            enabled: true,
            ..TraceConfig::default()
        }
    }
}

/// The recorder: a fixed-capacity ring of [`TraceRecord`]s plus
/// per-component sequence counters.
///
/// Users normally hold a [`TraceHandle`] (cheaply cloneable, shared between
/// the kernel, heaps, and windows) rather than a `Tracer` directly.
#[derive(Debug)]
pub struct Tracer {
    cfg: TraceConfig,
    ring: Vec<TraceRecord>,
    head: usize,
    wrapped: bool,
    seq: [u64; 256],
    total: u64,
    now: u64,
}

impl Tracer {
    /// Creates a recorder. The ring is preallocated up front when the
    /// config enables tracing, so steady-state emits never allocate.
    pub fn new(cfg: TraceConfig) -> Tracer {
        let mut t = Tracer {
            cfg,
            ring: Vec::new(),
            head: 0,
            wrapped: false,
            seq: [0; 256],
            total: 0,
            now: 0,
        };
        if t.cfg.enabled {
            t.ring.reserve_exact(t.cfg.capacity);
        }
        t
    }

    /// The active configuration.
    pub fn config(&self) -> &TraceConfig {
        &self.cfg
    }

    /// Updates the recorder's notion of virtual time. Subsequent events are
    /// stamped with this value.
    pub fn set_now(&mut self, now: u64) {
        self.now = now;
    }

    /// The currently stamped virtual time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Records `event` for component `comp` if it passes the filters.
    /// Never allocates once the ring has been sized.
    pub fn emit(&mut self, comp: u8, event: TraceEvent) {
        if !self.cfg.enabled
            || !self.cfg.categories.contains(event.category())
            || event.severity() < self.cfg.min_severity
        {
            return;
        }
        let seq = self.seq[comp as usize];
        self.seq[comp as usize] += 1;
        self.total += 1;
        let rec = TraceRecord {
            now: self.now,
            seq,
            comp,
            event,
        };
        if self.cfg.verbose {
            eprintln!("[trace t={} c={} #{}] {:?}", rec.now, comp, seq, event);
        }
        if self.cfg.capacity == 0 {
            return;
        }
        if self.ring.len() < self.cfg.capacity {
            self.ring.push(rec);
            if self.ring.len() == self.cfg.capacity {
                // Note for the next write, which will wrap to index 0.
                self.head = 0;
            } else {
                self.head = self.ring.len();
            }
        } else {
            self.ring[self.head] = rec;
            self.head = (self.head + 1) % self.cfg.capacity;
            self.wrapped = true;
        }
    }

    /// Number of records currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether no records are held.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Total events recorded over the recorder's lifetime, including those
    /// already overwritten by the ring.
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// Whether the ring has wrapped (oldest events were overwritten).
    pub fn has_wrapped(&self) -> bool {
        self.wrapped
    }

    /// The held records in chronological order (oldest first).
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        let mut out = Vec::with_capacity(self.ring.len());
        if self.ring.len() < self.cfg.capacity {
            out.extend_from_slice(&self.ring);
        } else {
            out.extend_from_slice(&self.ring[self.head..]);
            out.extend_from_slice(&self.ring[..self.head]);
        }
        out
    }

    /// The last `per_comp` records of each component, in global
    /// chronological order — the post-mortem "black box" view.
    pub fn tail_per_comp(&self, per_comp: usize) -> Vec<TraceRecord> {
        let all = self.snapshot();
        let mut kept = [0usize; 256];
        let mut keep = vec![false; all.len()];
        for (i, r) in all.iter().enumerate().rev() {
            if kept[r.comp as usize] < per_comp {
                kept[r.comp as usize] += 1;
                keep[i] = true;
            }
        }
        all.into_iter()
            .zip(keep)
            .filter_map(|(r, k)| k.then_some(r))
            .collect()
    }

    /// Drops all held records and resets sequence counters.
    pub fn clear(&mut self) {
        self.ring.clear();
        self.head = 0;
        self.wrapped = false;
        self.seq = [0; 256];
        self.total = 0;
    }

    /// Fork support: the recorder's full state — chronological ring
    /// contents, per-component sequence counters, lifetime total and the
    /// stamped virtual time — for [`Tracer::restore_state`] on a same-config
    /// recorder.
    pub fn export_state(&self) -> TracerState {
        TracerState {
            records: self.snapshot(),
            wrapped: self.wrapped,
            seq: self.seq,
            total: self.total,
            now: self.now,
        }
    }

    /// Fork support: overwrites this recorder's state with a donor's. The
    /// ring is rebuilt oldest-first (a rotation the chronological
    /// [`Tracer::snapshot`] cannot observe); subsequent emits continue
    /// exactly as they would have on the donor.
    pub fn restore_state(&mut self, state: &TracerState) {
        self.ring.clear();
        self.ring.extend_from_slice(&state.records);
        self.head = if self.cfg.capacity > 0 && self.ring.len() >= self.cfg.capacity {
            0
        } else {
            self.ring.len()
        };
        self.wrapped = state.wrapped;
        self.seq = state.seq;
        self.total = state.total;
        self.now = state.now;
    }
}

/// Exported [`Tracer`] state for the fork path: ring contents in
/// chronological order plus every counter an emit consults.
#[derive(Clone, Debug)]
pub struct TracerState {
    records: Vec<TraceRecord>,
    wrapped: bool,
    seq: [u64; 256],
    total: u64,
    now: u64,
}

/// A cheaply cloneable, shareable handle to a [`Tracer`].
///
/// The disabled fast path is a single relaxed atomic load — no lock is
/// taken — so handles can sit on undo-log hot paths.
#[derive(Clone, Debug)]
pub struct TraceHandle {
    on: Arc<AtomicBool>,
    inner: Arc<Mutex<Tracer>>,
}

impl TraceHandle {
    /// Creates a handle around a fresh recorder. `verbose` implies
    /// `enabled`.
    pub fn new(mut cfg: TraceConfig) -> TraceHandle {
        if cfg.verbose {
            cfg.enabled = true;
        }
        let on = cfg.enabled;
        TraceHandle {
            on: Arc::new(AtomicBool::new(on)),
            inner: Arc::new(Mutex::new(Tracer::new(cfg))),
        }
    }

    /// A handle that records nothing (default for standalone heaps).
    pub fn disabled() -> TraceHandle {
        TraceHandle::new(TraceConfig::default())
    }

    /// Whether the recorder is currently enabled.
    pub fn is_enabled(&self) -> bool {
        self.on.load(Ordering::Relaxed)
    }

    /// Enables or disables recording. Enabling sizes the ring if it has
    /// not been sized yet (the only allocation the recorder ever makes).
    pub fn set_enabled(&self, enabled: bool) {
        let mut t = self.inner.lock().unwrap();
        t.cfg.enabled = enabled;
        if enabled {
            let want = t.cfg.capacity.saturating_sub(t.ring.len());
            t.ring.reserve_exact(want);
        }
        self.on.store(enabled, Ordering::Relaxed);
    }

    /// Records `event` for `comp` (no-op when disabled).
    #[inline]
    pub fn emit(&self, comp: u8, event: TraceEvent) {
        if !self.on.load(Ordering::Relaxed) {
            return;
        }
        self.inner.lock().unwrap().emit(comp, event);
    }

    /// Stamps the recorder with the current virtual time (no-op when
    /// disabled).
    #[inline]
    pub fn set_now(&self, now: u64) {
        if !self.on.load(Ordering::Relaxed) {
            return;
        }
        self.inner.lock().unwrap().set_now(now);
    }

    /// Runs `f` with shared access to the recorder.
    pub fn with<R>(&self, f: impl FnOnce(&Tracer) -> R) -> R {
        f(&self.inner.lock().unwrap())
    }

    /// Chronological snapshot of the held records.
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        self.inner.lock().unwrap().snapshot()
    }

    /// Drops all held records and resets sequence counters (used to exclude
    /// boot from recorded runs).
    pub fn clear(&self) {
        self.inner.lock().unwrap().clear();
    }

    /// Fork support: exports the recorder's state (see
    /// [`Tracer::export_state`]).
    pub fn export_state(&self) -> TracerState {
        self.inner.lock().unwrap().export_state()
    }

    /// Fork support: overwrites the recorder's state with a donor's (see
    /// [`Tracer::restore_state`]).
    pub fn restore_state(&self, state: &TracerState) {
        self.inner.lock().unwrap().restore_state(state);
    }

    /// Renders the post-mortem black box: the last `blackbox_tail` events
    /// per component, formatted with `names`. Returns `None` when disabled
    /// or when the tail is configured to 0.
    pub fn blackbox(&self, names: &[String]) -> Option<String> {
        if !self.is_enabled() {
            return None;
        }
        let t = self.inner.lock().unwrap();
        if t.cfg.blackbox_tail == 0 {
            return None;
        }
        let tail = t.tail_per_comp(t.cfg.blackbox_tail);
        if tail.is_empty() {
            return None;
        }
        let mut out = String::from("== trace black box (last events per component) ==\n");
        out.push_str(&render_text(&tail, names));
        Some(out)
    }
}

impl Default for TraceHandle {
    fn default() -> Self {
        TraceHandle::disabled()
    }
}

/// Resolves a component id to a display name. Ids beyond `names` render as
/// `kernel` (for [`KERNEL_COMP`]) or `c<n>`.
pub fn comp_name(comp: u8, names: &[String]) -> String {
    if comp == KERNEL_COMP {
        "kernel".to_string()
    } else {
        names
            .get(comp as usize)
            .cloned()
            .unwrap_or_else(|| format!("c{comp}"))
    }
}

/// Renders records as a deterministic line-per-event text stream: the
/// format diffed by the CI determinism gate and byte-compared by the
/// same-seed replay test.
pub fn render_text(records: &[TraceRecord], names: &[String]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&format!(
            "t={:<10} {:<8} #{:<5} {:?}\n",
            r.now,
            comp_name(r.comp, names),
            r.seq,
            r.event
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let h = TraceHandle::disabled();
        h.emit(0, TraceEvent::WindowOpen);
        assert_eq!(h.snapshot().len(), 0);
        assert!(!h.is_enabled());
    }

    #[test]
    fn severity_order() {
        assert!(Severity::Debug < Severity::Info);
        assert!(Severity::Warn < Severity::Error);
    }

    #[test]
    fn mask_ops() {
        let m = CategoryMask::of(&[Category::Ipc, Category::Undo]);
        assert!(m.contains(Category::Ipc));
        assert!(!m.contains(Category::Window));
        assert!(m.without(Category::Ipc).contains(Category::Undo));
        assert!(CategoryMask::ALL.contains(Category::Shutdown));
        assert!(CategoryMask::ALL.contains(Category::Span));
        assert!(CategoryMask::ALL.contains(Category::Watchdog));
    }
}
