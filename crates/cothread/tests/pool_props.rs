//! Randomized properties for the cooperative thread pool: lifecycle
//! legality, conservation of threads, and exact restoration under rollback.
//! Driven by the in-tree deterministic PRNG (`osiris-rng`).

use osiris_checkpoint::Heap;
use osiris_cothread::{CoPool, CoState, ThreadId};
use osiris_rng::Rng;

const CASES: u64 = 160;

#[derive(Clone, Copy, Debug)]
enum Op {
    Activate,
    YieldCurrent(u16),
    ResumeOldestBlocked,
    FinishCurrent,
    FixAfterRestore,
}

fn gen_op(r: &mut Rng) -> Op {
    match r.below(5) {
        0 => Op::Activate,
        1 => Op::YieldCurrent(r.next_u64() as u16),
        2 => Op::ResumeOldestBlocked,
        3 => Op::FinishCurrent,
        _ => Op::FixAfterRestore,
    }
}

fn gen_ops(r: &mut Rng, max: usize) -> Vec<Op> {
    let n = r.below_usize(max);
    (0..n).map(|_| gen_op(r)).collect()
}

/// Reference model of the pool.
#[derive(Clone, Debug, PartialEq)]
struct Model {
    capacity: u32,
    current: Option<u32>,
    blocked: Vec<(u32, u16)>, // (thread, continuation)
    idle: Vec<u32>,
}

impl Model {
    fn new(capacity: u32) -> Self {
        Model {
            capacity,
            current: None,
            blocked: Vec::new(),
            idle: (0..capacity).collect(),
        }
    }
}

fn apply(pool: &CoPool<u16>, heap: &mut Heap, model: &mut Model, op: Op) {
    match op {
        Op::Activate => {
            let got = pool.activate(heap);
            if model.current.is_none() && !model.idle.is_empty() {
                // The pool picks the lowest idle id (BTreeMap order).
                model.idle.sort_unstable();
                let id = model.idle.remove(0);
                model.current = Some(id);
                assert_eq!(got, Some(ThreadId(id)));
            } else {
                assert_eq!(got, None);
            }
        }
        Op::YieldCurrent(cont) => {
            if let Some(id) = model.current.take() {
                pool.yield_blocked(heap, ThreadId(id), cont);
                model.blocked.push((id, cont));
            }
        }
        Op::ResumeOldestBlocked => {
            if model.current.is_none() && !model.blocked.is_empty() {
                let (id, cont) = model.blocked.remove(0);
                assert_eq!(pool.resume(heap, ThreadId(id)), Some(cont));
                model.current = Some(id);
            } else if let Some((id, _)) = model.blocked.first() {
                // Someone is active: resume must refuse.
                assert_eq!(pool.resume(heap, ThreadId(*id)), None);
            }
        }
        Op::FinishCurrent => {
            if let Some(id) = model.current.take() {
                pool.finish(heap, ThreadId(id));
                model.idle.push(id);
            }
        }
        Op::FixAfterRestore => {
            let fixed = pool.fix_after_restore(heap);
            if let Some(id) = model.current.take() {
                assert_eq!(fixed, Some(ThreadId(id)));
                model.idle.push(id);
            } else {
                assert_eq!(fixed, None);
            }
        }
    }
}

fn check_counts(pool: &CoPool<u16>, heap: &Heap, model: &Model) {
    assert_eq!(pool.count(heap, CoState::Idle), model.idle.len());
    assert_eq!(pool.count(heap, CoState::Blocked), model.blocked.len());
    assert_eq!(
        pool.count(heap, CoState::Active),
        usize::from(model.current.is_some())
    );
    assert_eq!(pool.current(heap), model.current.map(ThreadId));
    // Conservation: every thread is in exactly one state.
    assert_eq!(
        model.idle.len() + model.blocked.len() + usize::from(model.current.is_some()),
        model.capacity as usize
    );
}

#[test]
fn pool_matches_model() {
    for case in 0..CASES {
        let mut r = Rng::new(0xC0DE_0001 ^ case);
        let capacity = 1 + r.below(5) as u32;
        let ops = gen_ops(&mut r, 60);
        let mut heap = Heap::new("prop");
        let pool: CoPool<u16> = CoPool::new(&mut heap, capacity);
        let mut model = Model::new(capacity);
        for op in ops {
            apply(&pool, &mut heap, &mut model, op);
            check_counts(&pool, &heap, &model);
        }
    }
}

#[test]
fn rollback_restores_pool_bookkeeping() {
    for case in 0..CASES {
        let mut r = Rng::new(0xC0DE_0002 ^ case);
        let capacity = 1 + r.below(5) as u32;
        let prefix = gen_ops(&mut r, 20);
        let suffix = gen_ops(&mut r, 20);
        let mut heap = Heap::new("prop");
        let pool: CoPool<u16> = CoPool::new(&mut heap, capacity);
        let mut model = Model::new(capacity);
        for op in prefix {
            apply(&pool, &mut heap, &mut model, op);
        }
        heap.set_logging(true);
        let mark = heap.mark();
        let saved = model.clone();
        for op in suffix {
            apply(&pool, &mut heap, &mut model, op);
        }
        heap.rollback_to(mark);
        check_counts(&pool, &heap, &saved);
    }
}
