//! Cooperative threads for multithreaded OSIRIS servers.
//!
//! The paper's VFS is multithreaded "to prevent slow disk operations from
//! effectively blocking the system" (§V), using a *cooperative* thread
//! library whose state is managed by the server itself so that recovery can
//! restore it (§IV-E):
//!
//! * the recovery window is open while a thread is *active* (processing a
//!   message) and **forcibly closed when the thread yields**;
//! * restoring a crashed server's state also restores the inactive threads;
//! * the *active* (crashed) thread needs special handling: after a rollback
//!   the thread library still believes the crashed thread is running, so a
//!   fixup routine clears the current-thread variable and returns the thread
//!   to the pool ([`CoPool::fix_after_restore`]).
//!
//! Threads here are continuations: a blocked thread is its saved
//! continuation value of type `C`, stored in the server's checkpointed heap
//! so that rollback and restart see a consistent thread table.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

use osiris_checkpoint::{Heap, HeapValue, PCell, PMap};

/// Identifier of a cooperative thread within one server.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadId(pub u32);

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cothread-{}", self.0)
    }
}

/// Lifecycle state of one cooperative thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoState {
    /// Free: available to pick up a new request.
    Idle,
    /// Currently executing (at most one thread per pool).
    Active,
    /// Yielded while waiting for an asynchronous event; its continuation is
    /// saved.
    Blocked,
}

#[derive(Clone, Debug)]
struct Slot<C> {
    state: CoState,
    continuation: Option<C>,
}

/// A fixed-capacity pool of cooperative threads whose bookkeeping lives in
/// the owning server's checkpointed [`Heap`].
///
/// `C` is the server-defined continuation type saved when a thread yields.
///
/// ```
/// # use osiris_checkpoint::Heap;
/// # use osiris_cothread::CoPool;
/// let mut heap = Heap::new("vfs");
/// let pool: CoPool<String> = CoPool::new(&mut heap, 4);
/// let tid = pool.activate(&mut heap).expect("a thread is free");
/// pool.yield_blocked(&mut heap, tid, "waiting for disk".into());
/// assert_eq!(pool.resume(&mut heap, tid), Some("waiting for disk".into()));
/// pool.finish(&mut heap, tid);
/// ```
#[derive(Debug)]
pub struct CoPool<C> {
    slots: PMap<u32, Slot<C>>,
    current: PCell<Option<u32>>,
    capacity: u32,
}

// Handles are plain data regardless of the continuation type.
impl<C> Clone for CoPool<C> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<C> Copy for CoPool<C> {}

impl<C: HeapValue> CoPool<C> {
    /// Creates a pool of `capacity` idle threads, allocating its bookkeeping
    /// in `heap`.
    pub fn new(heap: &mut Heap, capacity: u32) -> Self {
        let slots = heap.alloc_map::<u32, Slot<C>>("cothread.slots");
        for id in 0..capacity {
            slots.insert(
                heap,
                id,
                Slot {
                    state: CoState::Idle,
                    continuation: None,
                },
            );
        }
        let current = heap.alloc_cell("cothread.current", None);
        CoPool {
            slots,
            current,
            capacity,
        }
    }

    /// Pool capacity.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// The currently active thread, if any.
    pub fn current(&self, heap: &Heap) -> Option<ThreadId> {
        self.current.get(heap).map(ThreadId)
    }

    /// Number of threads in the given state.
    pub fn count(&self, heap: &Heap, state: CoState) -> usize {
        let mut n = 0;
        self.slots.for_each(heap, |_, s| {
            if s.state == state {
                n += 1;
            }
        });
        n
    }

    /// Picks an idle thread and marks it active for a new request.
    /// Returns `None` if all threads are busy (the caller queues the
    /// request) or if another thread is already active (cooperative pools
    /// run one thread at a time).
    pub fn activate(&self, heap: &mut Heap) -> Option<ThreadId> {
        if self.current.get(heap).is_some() {
            return None;
        }
        let id = self.slots.find_key(heap, |_, s| s.state == CoState::Idle)?;
        self.slots.update(heap, &id, |s| s.state = CoState::Active);
        self.current.set(heap, Some(id));
        Some(ThreadId(id))
    }

    /// Marks a blocked thread active again (e.g. its disk reply arrived) and
    /// takes its saved continuation.
    ///
    /// Returns `None` if the thread is not blocked (it may have been cleaned
    /// up by recovery) or another thread is active.
    pub fn resume(&self, heap: &mut Heap, tid: ThreadId) -> Option<C> {
        if self.current.get(heap).is_some() {
            return None;
        }
        let is_blocked = self
            .slots
            .with(heap, &tid.0, |s| s.state == CoState::Blocked)
            .unwrap_or(false);
        if !is_blocked {
            return None;
        }
        let cont = self
            .slots
            .update(heap, &tid.0, |s| {
                s.state = CoState::Active;
                s.continuation.take()
            })
            .flatten();
        self.current.set(heap, Some(tid.0));
        cont
    }

    /// Yields the active thread, saving `continuation` until it is resumed.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is not the active thread — yielding someone else's
    /// context is a server bug.
    pub fn yield_blocked(&self, heap: &mut Heap, tid: ThreadId, continuation: C) {
        assert_eq!(
            self.current.get(heap),
            Some(tid.0),
            "only the active thread may yield"
        );
        self.slots.update(heap, &tid.0, |s| {
            s.state = CoState::Blocked;
            s.continuation = Some(continuation);
        });
        self.current.set(heap, None);
    }

    /// Finishes the active thread's request, returning it to the idle pool.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is not the active thread.
    pub fn finish(&self, heap: &mut Heap, tid: ThreadId) {
        assert_eq!(
            self.current.get(heap),
            Some(tid.0),
            "only the active thread may finish"
        );
        self.slots.update(heap, &tid.0, |s| {
            s.state = CoState::Idle;
            s.continuation = None;
        });
        self.current.set(heap, None);
    }

    /// Post-recovery fixup (paper §IV-E): after a rollback or restart the
    /// restored state may still name a current thread that crashed. Clears
    /// the current-thread variable and returns that thread to the idle pool
    /// so the library is consistent again. Returns the thread that was
    /// fixed, if any.
    pub fn fix_after_restore(&self, heap: &mut Heap) -> Option<ThreadId> {
        let cur = self.current.get(heap)?;
        self.slots.update(heap, &cur, |s| {
            s.state = CoState::Idle;
            s.continuation = None;
        });
        self.current.set(heap, None);
        Some(ThreadId(cur))
    }

    /// Blocked threads and whether each still holds a continuation —
    /// used by audits and tests.
    pub fn blocked_threads(&self, heap: &Heap) -> Vec<ThreadId> {
        let mut out = Vec::new();
        self.slots.for_each(heap, |id, s| {
            if s.state == CoState::Blocked {
                out.push(ThreadId(*id));
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(cap: u32) -> (Heap, CoPool<u32>) {
        let mut heap = Heap::new("t");
        let p = CoPool::new(&mut heap, cap);
        (heap, p)
    }

    #[test]
    fn activate_yield_resume_finish() {
        let (mut h, p) = pool(2);
        let t = p.activate(&mut h).unwrap();
        assert_eq!(p.current(&h), Some(t));
        p.yield_blocked(&mut h, t, 42);
        assert_eq!(p.current(&h), None);
        assert_eq!(p.count(&h, CoState::Blocked), 1);
        let t2 = p.activate(&mut h).unwrap();
        assert_ne!(t, t2);
        p.finish(&mut h, t2);
        assert_eq!(p.resume(&mut h, t), Some(42));
        p.finish(&mut h, t);
        assert_eq!(p.count(&h, CoState::Idle), 2);
    }

    #[test]
    fn only_one_active_thread() {
        let (mut h, p) = pool(2);
        let _t = p.activate(&mut h).unwrap();
        assert_eq!(p.activate(&mut h), None);
    }

    #[test]
    fn exhausted_pool_returns_none() {
        let (mut h, p) = pool(1);
        let t = p.activate(&mut h).unwrap();
        p.yield_blocked(&mut h, t, 1);
        assert_eq!(p.activate(&mut h), None, "no idle threads left");
    }

    #[test]
    fn resume_nonblocked_thread_is_rejected() {
        let (mut h, p) = pool(2);
        assert_eq!(p.resume(&mut h, ThreadId(0)), None);
        let t = p.activate(&mut h).unwrap();
        assert_eq!(p.resume(&mut h, t), None, "active thread cannot be resumed");
    }

    #[test]
    fn fix_after_restore_clears_current() {
        let (mut h, p) = pool(2);
        let t = p.activate(&mut h).unwrap();
        // Simulate a crash + state restore: current still points at t.
        assert_eq!(p.fix_after_restore(&mut h), Some(t));
        assert_eq!(p.current(&h), None);
        assert_eq!(p.count(&h, CoState::Idle), 2);
        assert_eq!(p.fix_after_restore(&mut h), None);
    }

    #[test]
    fn rollback_restores_thread_table() {
        let (mut h, p) = pool(2);
        let t0 = p.activate(&mut h).unwrap();
        p.yield_blocked(&mut h, t0, 7);
        h.set_logging(true);
        let m = h.mark();
        let t1 = p.activate(&mut h).unwrap();
        p.yield_blocked(&mut h, t1, 8);
        h.rollback_to(m);
        assert_eq!(p.count(&h, CoState::Blocked), 1);
        assert_eq!(p.resume(&mut h, t0), Some(7));
    }

    #[test]
    #[should_panic(expected = "only the active thread")]
    fn yield_by_wrong_thread_panics() {
        let (mut h, p) = pool(2);
        let _t = p.activate(&mut h).unwrap();
        p.yield_blocked(&mut h, ThreadId(99), 0);
    }
}
