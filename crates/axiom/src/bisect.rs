//! Divergence bisection between two axioms.
//!
//! Because every record's digest seals the whole prefix before it, two
//! logs share a prefix **iff** they agree on the digest at its end. That
//! turns "find the first diverging event between these two runs" into a
//! binary search over digest equality — O(log n) comparisons instead of a
//! linear scan — which is what the `axiom_bisect` tool uses to answer
//! "where did the Enhanced run first behave differently from the
//! Pessimistic run?".

use crate::AxiomRecord;

/// The first point at which two axioms disagree.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Divergence {
    /// Index (== sequence number) of the first differing record.
    pub index: usize,
    /// Record at `index` in the first log (`None` if it ended first).
    pub a: Option<AxiomRecord>,
    /// Record at `index` in the second log (`None` if it ended first).
    pub b: Option<AxiomRecord>,
}

impl Divergence {
    /// Human-readable one-line description for tool output.
    pub fn describe(&self) -> String {
        let side = |r: &Option<AxiomRecord>| match r {
            Some(rec) => format!("t={} {} {:?}", rec.now, rec.event.name(), rec.event),
            None => "<log ended>".to_string(),
        };
        format!(
            "first divergence at seq {}:\n  a: {}\n  b: {}",
            self.index,
            side(&self.a),
            side(&self.b)
        )
    }
}

/// Finds the first index at which `a` and `b` diverge, or `None` if one
/// log is a prefix of the other and they agree everywhere they overlap
/// (equal logs included).
///
/// Returns `Some` with `index == min(len)` for a strict prefix, so callers
/// that care can distinguish "identical" (`None`) from "one run simply
/// recorded more" (`a`/`b` side is `None`).
pub fn bisect(a: &[AxiomRecord], b: &[AxiomRecord]) -> Option<Divergence> {
    let n = a.len().min(b.len());
    let prefix_equal = |i: usize| a[i].digest == b[i].digest && a[i] == b[i];
    if n == 0 || prefix_equal(n - 1) {
        // The overlapping prefix agrees in full.
        if a.len() == b.len() {
            return None;
        }
        return Some(Divergence {
            index: n,
            a: a.get(n).copied(),
            b: b.get(n).copied(),
        });
    }
    // Binary search for the first index where the chains disagree. The
    // digest at i seals records 0..=i, so "prefix through i equal" is
    // monotone in i.
    let (mut lo, mut hi) = (0usize, n - 1);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if prefix_equal(mid) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    Some(Divergence {
        index: lo,
        a: Some(a[lo]),
        b: Some(b[lo]),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AxiomConfig, AxiomEvent, AxiomLog};

    fn log_of(comps: &[u8]) -> AxiomLog {
        let mut log = AxiomLog::new(AxiomConfig::on());
        log.append(
            0,
            AxiomEvent::Genesis {
                comps: 6,
                config_digest: 1,
            },
        );
        for (i, &c) in comps.iter().enumerate() {
            log.append(i as u64 + 1, AxiomEvent::WindowOpen { comp: c });
        }
        log
    }

    #[test]
    fn identical_logs_do_not_diverge() {
        let a = log_of(&[1, 2, 3]);
        let b = log_of(&[1, 2, 3]);
        assert_eq!(bisect(a.records(), b.records()), None);
    }

    #[test]
    fn first_differing_event_is_found() {
        let a = log_of(&[1, 2, 3, 4]);
        let b = log_of(&[1, 2, 9, 4]);
        let d = bisect(a.records(), b.records()).unwrap();
        assert_eq!(d.index, 3); // genesis + two matching opens precede it
        assert_eq!(d.a.unwrap().event, AxiomEvent::WindowOpen { comp: 3 });
        assert_eq!(d.b.unwrap().event, AxiomEvent::WindowOpen { comp: 9 });
        assert!(d.describe().contains("seq 3"));
    }

    #[test]
    fn prefix_is_reported_at_the_shorter_end() {
        let a = log_of(&[1, 2]);
        let b = log_of(&[1, 2, 3]);
        let d = bisect(a.records(), b.records()).unwrap();
        assert_eq!(d.index, 3);
        assert_eq!(d.a, None);
        assert_eq!(d.b.unwrap().event, AxiomEvent::WindowOpen { comp: 3 });
    }

    #[test]
    fn empty_vs_empty_and_empty_vs_nonempty() {
        let a = AxiomLog::new(AxiomConfig::on());
        let b = log_of(&[]);
        assert_eq!(bisect(a.records(), a.records()), None);
        let d = bisect(a.records(), b.records()).unwrap();
        assert_eq!(d.index, 0);
        assert_eq!(d.a, None);
    }
}
