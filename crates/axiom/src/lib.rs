//! # osiris-axiom
//!
//! The **axiom log**: a single append-only, totally ordered, FNV-digest-
//! chained history of every *control-plane* transition in an OSIRIS
//! machine — window opens and closes (with the SEEP classification that
//! forced the close), crashes and hangs, recovery decisions and phase
//! fallbacks, escalation steps, quarantines, intent re-drives, clone-pool
//! refreshes, and shutdown decisions.
//!
//! The design follows zero-os's *Axiom principle*: only events recorded in
//! the axiom are real. All kernel + Recovery Server control state —
//! component statuses, the open-window set, the recovery intent slots,
//! escalation pressure, the quarantine set — is a **pure reduction** of the
//! log ([`reduce`]). The kernel keeps its live [`ControlState`] by folding
//! each event as it is appended, so the state a post-mortem reduction
//! reconstructs is the state the kernel actually acted on, by construction.
//!
//! Disciplines inherited from `osiris-trace` (DESIGN.md §6d):
//!
//! * **Determinism.** Events carry only virtual-clock timestamps and values
//!   derived from simulator state. Two runs of the same workload produce
//!   byte-identical axioms.
//! * **Zero allocation in steady state.** [`AxiomEvent`] is `Copy` with no
//!   heap-owning field; the log's backing `Vec` is reserved up front.
//!   `bench_axiom` proves this with a counting global allocator.
//! * **Cheap when off.** With recording disabled, appends reduce to the
//!   control-state fold (a branch-free match on a `Copy` value); no digest
//!   is computed and nothing is retained.
//!
//! Crash consistency comes from the digest chain: every record's digest is
//! FNV-1a64 over the previous digest plus the record's own encoded bytes,
//! and the serialized form carries the head digest. Bit flips, truncation,
//! reordering and torn tails are all detected by [`AxiomLog::from_bytes`]
//! **before** any reduction runs (property-tested in `chain_props.rs`).
//!
//! The crate is a leaf: it depends on nothing in the workspace.
//! `osiris-trace` re-exports the shared [`CloseCode`]/[`SeepClassCode`]/
//! [`ActionCode`] vocabularies from here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bisect;
mod reduce;

pub use bisect::{bisect, Divergence};
pub use reduce::{reduce, CompStatusCode, ControlState, IntentSlot, MAX_COMPS};

/// Component id used for events emitted by the kernel itself rather than on
/// behalf of a registered component (mirrors `osiris_trace::KERNEL_COMP`).
pub const KERNEL_COMP: u8 = 0xFF;

// ---------------------------------------------------------------------------
// Shared control-plane vocabularies
// ---------------------------------------------------------------------------

/// Why a recovery window closed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CloseCode {
    /// The handler ran to completion with the window still open; the
    /// undo log was discarded as the request committed.
    Completed,
    /// A send the active policy classifies as state-externalizing forced
    /// the window shut mid-handler.
    DisallowedSend,
    /// The component's cooperative thread yielded.
    ThreadYield,
    /// The server closed its own window explicitly.
    Manual,
    /// The window was consumed by a rollback during recovery.
    Rollback,
}

/// Side-effect class of the SEEP that participated in a window close
/// (mirrors `osiris-core`'s `SeepClass`, plus `None` for closes that were
/// not caused by a send).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SeepClassCode {
    /// The close was not caused by a send.
    None,
    /// Non-state-modifying at the receiver.
    NonStateModifying,
    /// State-modifying at the receiver.
    StateModifying,
    /// State-modifying but scoped to the requesting process.
    RequesterScoped,
}

/// Recovery action chosen for a crashed component (mirrors `osiris-core`'s
/// `RecoveryAction`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ActionCode {
    /// Roll back to the window mark and answer `E_CRASH`.
    RollbackErrorReply,
    /// Roll back and kill the requesting process to reconcile.
    RollbackKillRequester,
    /// Restart from the pristine boot image.
    FreshRestart,
    /// Naive restart-in-place without state repair.
    ContinueAsIs,
    /// Give up consistently: controlled shutdown.
    ControlledShutdown,
    /// Give up inconsistently: uncontrolled crash.
    UncontrolledCrash,
}

/// Lifecycle phase of a recovery intent (mirrors the kernel's intent
/// bookkeeping; the intent log is a view over the axiom tail).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum IntentPhaseCode {
    /// The RS has been notified of the crash but has not yet decided.
    Notified,
    /// A restart was decided but deferred behind an escalation backoff.
    Deferred,
    /// The RS issued the recovery conduct.
    Issued,
}

/// Watchdog verdict on a component whose armed request deadline expired
/// (mirrors the kernel's fail-silent detection state machine).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum VerdictCode {
    /// No progress since the deadline expired: the component is hung.
    Hung,
    /// The reply eventually arrived after the deadline: slow but correct.
    Slow,
    /// The handler completed but its reply never arrived (dropped in
    /// flight): the request is lost, not the component.
    ReplyLost,
    /// The reply arrived but its integrity digest did not match the
    /// payload: treated as a crash of the sender.
    CorruptReply,
}

/// Terminal outcome of one fault-campaign injection (mirrors
/// `osiris-faults`' run classification).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OutcomeCode {
    /// Workload completed with correct results.
    Recovered,
    /// Completed, but with some service quarantined or results degraded.
    Degraded,
    /// The machine shut down in a controlled fashion.
    ControlledShutdown,
    /// The machine crashed uncontrolled.
    UncontrolledCrash,
    /// Workload hung or produced wrong results.
    Failed,
}

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// A typed, fixed-size control-plane event. Every variant is `Copy` and
/// contains no heap-owning field, so appending never allocates.
///
/// High-frequency data-plane events (undo appends, IPC, syscalls) are
/// deliberately **excluded**: they belong to the trace ring. The axiom
/// records only transitions that change control state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AxiomEvent {
    /// First event of every log: the machine booted. `config_digest` is an
    /// FNV-1a64 digest of the control-relevant configuration (policy name,
    /// instrumentation mode, component count), so two axioms are only
    /// comparable when their configurations match.
    Genesis {
        /// Number of registered components.
        comps: u8,
        /// Digest of the control-relevant configuration.
        config_digest: u64,
    },
    /// A recovery window opened for `comp`.
    WindowOpen {
        /// Component index.
        comp: u8,
    },
    /// The window for `comp` closed, with the SEEP classification that
    /// participated in the close.
    WindowClose {
        /// Component index.
        comp: u8,
        /// Why the window closed.
        reason: CloseCode,
        /// SEEP class of the send that closed it (or `None`).
        class: SeepClassCode,
    },
    /// `comp` crashed (fail-stop).
    Crash {
        /// Component index.
        comp: u8,
    },
    /// `comp` stopped responding to heartbeats.
    HangDetected {
        /// Component index.
        comp: u8,
    },
    /// A recovery intent for `comp` was recorded or refined.
    IntentRecorded {
        /// Component index.
        comp: u8,
        /// Intent lifecycle phase.
        phase: IntentPhaseCode,
    },
    /// The kernel re-drove an interrupted recovery intent for `comp`.
    IntentReplayed {
        /// Component index.
        comp: u8,
    },
    /// The intent for `comp` was resolved (recovery completed, the target
    /// was quarantined, or the machine shut down).
    IntentResolved {
        /// Component index.
        comp: u8,
    },
    /// Recovery of `comp` begins with `action`.
    RecoveryDecision {
        /// Component index.
        comp: u8,
        /// Action chosen for the first attempt.
        action: ActionCode,
    },
    /// A recovery phase faulted and the kernel fell back along the
    /// `Rollback → FreshRestart → ControlledShutdown` chain.
    RecoveryFallback {
        /// Component index.
        comp: u8,
        /// Action that faulted.
        from: ActionCode,
        /// Action attempted next.
        to: ActionCode,
    },
    /// Recovery of `comp` completed after `cycles` virtual cycles.
    RecoveryDone {
        /// Component index.
        comp: u8,
        /// Virtual cycles charged to the recovery.
        cycles: u64,
    },
    /// The escalation ladder observed a restart for `comp`.
    EscalationStep {
        /// Component index.
        comp: u8,
        /// Restarts inside the sliding budget window (after this one).
        restarts_in_window: u32,
        /// Backoff armed before the restart (0 = immediate).
        backoff: u64,
        /// Whether the restart budget is now exhausted.
        exhausted: bool,
    },
    /// `comp` was taken out of service.
    Quarantined {
        /// Component index.
        comp: u8,
    },
    /// The RS refreshed (or skipped refreshing) `comp`'s clone-pool image.
    PoolRefresh {
        /// Component index.
        comp: u8,
        /// Whether the image was actually re-captured.
        refreshed: bool,
    },
    /// The machine decided to shut down.
    ShutdownDecision {
        /// `true` for a controlled shutdown, `false` for an uncontrolled
        /// crash.
        controlled: bool,
    },
    /// One fault-campaign injection finished (campaign-owned axioms only;
    /// never appears in a kernel axiom). `site_digest` identifies the
    /// injection site + fault kind independently of the policy under test,
    /// so [`bisect`] over two campaigns pinpoints the first injection whose
    /// outcome diverges between configurations.
    Injection {
        /// Zero-based injection index within the campaign.
        run: u32,
        /// FNV-1a64 digest of `component.site` + fault kind.
        site_digest: u64,
        /// Terminal outcome of the injection run.
        outcome: OutcomeCode,
    },
    /// The armed deadline for a request to `comp` expired with no reply.
    DeadlineExpired {
        /// Component the request was sent to.
        comp: u8,
        /// Message id of the armed request.
        msg_id: u64,
        /// Delivery attempt the deadline belonged to (0 = first send).
        attempt: u8,
    },
    /// The watchdog concluded its probe of `comp` with a verdict.
    WatchdogVerdict {
        /// Component the verdict concerns.
        comp: u8,
        /// What the heartbeat/progress probe concluded.
        verdict: VerdictCode,
        /// Message id of the request that armed the watchdog.
        msg_id: u64,
    },
    /// The kernel decided whether to transparently retry a failed request.
    RetryDecision {
        /// Component the request targets.
        comp: u8,
        /// Message id of the request.
        msg_id: u64,
        /// Delivery attempt the decision concerns (0 = first send).
        attempt: u8,
        /// Whether the retry was granted (else the requester sees E_CRASH).
        granted: bool,
        /// Backoff (virtual cycles, incl. jitter) armed before the resend.
        backoff: u32,
    },
}

impl AxiomEvent {
    /// Stable short name, used by the Chrome exporter and `bisect` output.
    pub fn name(&self) -> &'static str {
        match self {
            AxiomEvent::Genesis { .. } => "genesis",
            AxiomEvent::WindowOpen { .. } => "window_open",
            AxiomEvent::WindowClose { .. } => "window_close",
            AxiomEvent::Crash { .. } => "crash",
            AxiomEvent::HangDetected { .. } => "hang_detected",
            AxiomEvent::IntentRecorded { .. } => "intent_recorded",
            AxiomEvent::IntentReplayed { .. } => "intent_replayed",
            AxiomEvent::IntentResolved { .. } => "intent_resolved",
            AxiomEvent::RecoveryDecision { .. } => "recovery_decision",
            AxiomEvent::RecoveryFallback { .. } => "recovery_fallback",
            AxiomEvent::RecoveryDone { .. } => "recovery_done",
            AxiomEvent::EscalationStep { .. } => "escalation_step",
            AxiomEvent::Quarantined { .. } => "quarantined",
            AxiomEvent::PoolRefresh { .. } => "pool_refresh",
            AxiomEvent::ShutdownDecision { .. } => "shutdown_decision",
            AxiomEvent::Injection { .. } => "injection",
            AxiomEvent::DeadlineExpired { .. } => "deadline_expired",
            AxiomEvent::WatchdogVerdict { .. } => "watchdog_verdict",
            AxiomEvent::RetryDecision { .. } => "retry_decision",
        }
    }

    /// Component the event concerns, if any.
    pub fn comp(&self) -> Option<u8> {
        match *self {
            AxiomEvent::WindowOpen { comp }
            | AxiomEvent::WindowClose { comp, .. }
            | AxiomEvent::Crash { comp }
            | AxiomEvent::HangDetected { comp }
            | AxiomEvent::IntentRecorded { comp, .. }
            | AxiomEvent::IntentReplayed { comp }
            | AxiomEvent::IntentResolved { comp }
            | AxiomEvent::RecoveryDecision { comp, .. }
            | AxiomEvent::RecoveryFallback { comp, .. }
            | AxiomEvent::RecoveryDone { comp, .. }
            | AxiomEvent::EscalationStep { comp, .. }
            | AxiomEvent::Quarantined { comp }
            | AxiomEvent::PoolRefresh { comp, .. }
            | AxiomEvent::DeadlineExpired { comp, .. }
            | AxiomEvent::WatchdogVerdict { comp, .. }
            | AxiomEvent::RetryDecision { comp, .. } => Some(comp),
            AxiomEvent::Genesis { .. }
            | AxiomEvent::ShutdownDecision { .. }
            | AxiomEvent::Injection { .. } => None,
        }
    }
}

/// One sealed entry of the axiom: an event stamped with the virtual clock,
/// a monotone sequence number, and the chain digest that seals it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AxiomRecord {
    /// Virtual-clock timestamp at append time.
    pub now: u64,
    /// Monotone sequence number (dense from 0).
    pub seq: u64,
    /// The control-plane event.
    pub event: AxiomEvent,
    /// FNV-1a64 over the previous record's digest plus this record's
    /// encoded `now`/`seq`/`event` bytes.
    pub digest: u64,
}

// ---------------------------------------------------------------------------
// FNV-1a64 (shared vocabulary with the checkpoint integrity chains)
// ---------------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Digest the chain is seeded with before the first record.
pub const CHAIN_SEED: u64 = FNV_OFFSET;

/// Plain FNV-1a64 over a byte slice, starting from `seed`. Exposed so
/// callers can build deterministic site/config digests with the same
/// function that seals the chain.
pub fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a64 of a string from the standard offset basis.
pub fn fnv1a_str(s: &str) -> u64 {
    fnv1a(FNV_OFFSET, s.as_bytes())
}

// ---------------------------------------------------------------------------
// Fixed-width binary encoding
// ---------------------------------------------------------------------------

/// Serialized size of one record: `now`(8) + `seq`(8) + tag(1) +
/// payload(16, zero-padded) + `digest`(8).
pub const RECORD_BYTES: usize = 41;
/// Serialized header: magic(8) + record count(8) + head digest(8).
pub const HEADER_BYTES: usize = 24;
const MAGIC: &[u8; 8] = b"AXIOLOG1";
const PAYLOAD_BYTES: usize = 16;

fn close_code_u8(c: CloseCode) -> u8 {
    match c {
        CloseCode::Completed => 0,
        CloseCode::DisallowedSend => 1,
        CloseCode::ThreadYield => 2,
        CloseCode::Manual => 3,
        CloseCode::Rollback => 4,
    }
}

fn close_code_from(b: u8) -> Result<CloseCode, AxiomError> {
    Ok(match b {
        0 => CloseCode::Completed,
        1 => CloseCode::DisallowedSend,
        2 => CloseCode::ThreadYield,
        3 => CloseCode::Manual,
        4 => CloseCode::Rollback,
        _ => return Err(AxiomError::BadEncoding),
    })
}

fn class_u8(c: SeepClassCode) -> u8 {
    match c {
        SeepClassCode::None => 0,
        SeepClassCode::NonStateModifying => 1,
        SeepClassCode::StateModifying => 2,
        SeepClassCode::RequesterScoped => 3,
    }
}

fn class_from(b: u8) -> Result<SeepClassCode, AxiomError> {
    Ok(match b {
        0 => SeepClassCode::None,
        1 => SeepClassCode::NonStateModifying,
        2 => SeepClassCode::StateModifying,
        3 => SeepClassCode::RequesterScoped,
        _ => return Err(AxiomError::BadEncoding),
    })
}

fn action_u8(a: ActionCode) -> u8 {
    match a {
        ActionCode::RollbackErrorReply => 0,
        ActionCode::RollbackKillRequester => 1,
        ActionCode::FreshRestart => 2,
        ActionCode::ContinueAsIs => 3,
        ActionCode::ControlledShutdown => 4,
        ActionCode::UncontrolledCrash => 5,
    }
}

fn action_from(b: u8) -> Result<ActionCode, AxiomError> {
    Ok(match b {
        0 => ActionCode::RollbackErrorReply,
        1 => ActionCode::RollbackKillRequester,
        2 => ActionCode::FreshRestart,
        3 => ActionCode::ContinueAsIs,
        4 => ActionCode::ControlledShutdown,
        5 => ActionCode::UncontrolledCrash,
        _ => return Err(AxiomError::BadEncoding),
    })
}

fn phase_u8(p: IntentPhaseCode) -> u8 {
    match p {
        IntentPhaseCode::Notified => 0,
        IntentPhaseCode::Deferred => 1,
        IntentPhaseCode::Issued => 2,
    }
}

fn phase_from(b: u8) -> Result<IntentPhaseCode, AxiomError> {
    Ok(match b {
        0 => IntentPhaseCode::Notified,
        1 => IntentPhaseCode::Deferred,
        2 => IntentPhaseCode::Issued,
        _ => return Err(AxiomError::BadEncoding),
    })
}

fn verdict_u8(v: VerdictCode) -> u8 {
    match v {
        VerdictCode::Hung => 0,
        VerdictCode::Slow => 1,
        VerdictCode::ReplyLost => 2,
        VerdictCode::CorruptReply => 3,
    }
}

fn verdict_from(b: u8) -> Result<VerdictCode, AxiomError> {
    Ok(match b {
        0 => VerdictCode::Hung,
        1 => VerdictCode::Slow,
        2 => VerdictCode::ReplyLost,
        3 => VerdictCode::CorruptReply,
        _ => return Err(AxiomError::BadEncoding),
    })
}

fn outcome_u8(o: OutcomeCode) -> u8 {
    match o {
        OutcomeCode::Recovered => 0,
        OutcomeCode::Degraded => 1,
        OutcomeCode::ControlledShutdown => 2,
        OutcomeCode::UncontrolledCrash => 3,
        OutcomeCode::Failed => 4,
    }
}

fn outcome_from(b: u8) -> Result<OutcomeCode, AxiomError> {
    Ok(match b {
        0 => OutcomeCode::Recovered,
        1 => OutcomeCode::Degraded,
        2 => OutcomeCode::ControlledShutdown,
        3 => OutcomeCode::UncontrolledCrash,
        4 => OutcomeCode::Failed,
        _ => return Err(AxiomError::BadEncoding),
    })
}

/// Encodes `now`/`seq`/tag/payload into a fixed 33-byte prefix (everything
/// the digest covers).
fn encode_body(now: u64, seq: u64, event: &AxiomEvent) -> [u8; RECORD_BYTES - 8] {
    let mut out = [0u8; RECORD_BYTES - 8];
    out[0..8].copy_from_slice(&now.to_le_bytes());
    out[8..16].copy_from_slice(&seq.to_le_bytes());
    let (tag, payload) = encode_event(event);
    out[16] = tag;
    out[17..17 + PAYLOAD_BYTES].copy_from_slice(&payload);
    out
}

fn encode_event(event: &AxiomEvent) -> (u8, [u8; PAYLOAD_BYTES]) {
    let mut p = [0u8; PAYLOAD_BYTES];
    let tag = match *event {
        AxiomEvent::Genesis {
            comps,
            config_digest,
        } => {
            p[0] = comps;
            p[1..9].copy_from_slice(&config_digest.to_le_bytes());
            0
        }
        AxiomEvent::WindowOpen { comp } => {
            p[0] = comp;
            1
        }
        AxiomEvent::WindowClose {
            comp,
            reason,
            class,
        } => {
            p[0] = comp;
            p[1] = close_code_u8(reason);
            p[2] = class_u8(class);
            2
        }
        AxiomEvent::Crash { comp } => {
            p[0] = comp;
            3
        }
        AxiomEvent::HangDetected { comp } => {
            p[0] = comp;
            4
        }
        AxiomEvent::IntentRecorded { comp, phase } => {
            p[0] = comp;
            p[1] = phase_u8(phase);
            5
        }
        AxiomEvent::IntentReplayed { comp } => {
            p[0] = comp;
            6
        }
        AxiomEvent::IntentResolved { comp } => {
            p[0] = comp;
            7
        }
        AxiomEvent::RecoveryDecision { comp, action } => {
            p[0] = comp;
            p[1] = action_u8(action);
            8
        }
        AxiomEvent::RecoveryFallback { comp, from, to } => {
            p[0] = comp;
            p[1] = action_u8(from);
            p[2] = action_u8(to);
            9
        }
        AxiomEvent::RecoveryDone { comp, cycles } => {
            p[0] = comp;
            p[1..9].copy_from_slice(&cycles.to_le_bytes());
            10
        }
        AxiomEvent::EscalationStep {
            comp,
            restarts_in_window,
            backoff,
            exhausted,
        } => {
            p[0] = comp;
            p[1..5].copy_from_slice(&restarts_in_window.to_le_bytes());
            p[5..13].copy_from_slice(&backoff.to_le_bytes());
            p[13] = exhausted as u8;
            11
        }
        AxiomEvent::Quarantined { comp } => {
            p[0] = comp;
            12
        }
        AxiomEvent::PoolRefresh { comp, refreshed } => {
            p[0] = comp;
            p[1] = refreshed as u8;
            13
        }
        AxiomEvent::ShutdownDecision { controlled } => {
            p[0] = controlled as u8;
            14
        }
        AxiomEvent::Injection {
            run,
            site_digest,
            outcome,
        } => {
            p[0..4].copy_from_slice(&run.to_le_bytes());
            p[4..12].copy_from_slice(&site_digest.to_le_bytes());
            p[12] = outcome_u8(outcome);
            15
        }
        AxiomEvent::DeadlineExpired {
            comp,
            msg_id,
            attempt,
        } => {
            p[0] = comp;
            p[1..9].copy_from_slice(&msg_id.to_le_bytes());
            p[9] = attempt;
            16
        }
        AxiomEvent::WatchdogVerdict {
            comp,
            verdict,
            msg_id,
        } => {
            p[0] = comp;
            p[1] = verdict_u8(verdict);
            p[2..10].copy_from_slice(&msg_id.to_le_bytes());
            17
        }
        AxiomEvent::RetryDecision {
            comp,
            msg_id,
            attempt,
            granted,
            backoff,
        } => {
            p[0] = comp;
            p[1..9].copy_from_slice(&msg_id.to_le_bytes());
            p[9] = attempt;
            p[10] = granted as u8;
            p[11..15].copy_from_slice(&backoff.to_le_bytes());
            18
        }
    };
    (tag, p)
}

fn decode_event(tag: u8, p: &[u8]) -> Result<AxiomEvent, AxiomError> {
    let u32_at = |i: usize| u32::from_le_bytes(p[i..i + 4].try_into().unwrap());
    let u64_at = |i: usize| u64::from_le_bytes(p[i..i + 8].try_into().unwrap());
    Ok(match tag {
        0 => AxiomEvent::Genesis {
            comps: p[0],
            config_digest: u64_at(1),
        },
        1 => AxiomEvent::WindowOpen { comp: p[0] },
        2 => AxiomEvent::WindowClose {
            comp: p[0],
            reason: close_code_from(p[1])?,
            class: class_from(p[2])?,
        },
        3 => AxiomEvent::Crash { comp: p[0] },
        4 => AxiomEvent::HangDetected { comp: p[0] },
        5 => AxiomEvent::IntentRecorded {
            comp: p[0],
            phase: phase_from(p[1])?,
        },
        6 => AxiomEvent::IntentReplayed { comp: p[0] },
        7 => AxiomEvent::IntentResolved { comp: p[0] },
        8 => AxiomEvent::RecoveryDecision {
            comp: p[0],
            action: action_from(p[1])?,
        },
        9 => AxiomEvent::RecoveryFallback {
            comp: p[0],
            from: action_from(p[1])?,
            to: action_from(p[2])?,
        },
        10 => AxiomEvent::RecoveryDone {
            comp: p[0],
            cycles: u64_at(1),
        },
        11 => AxiomEvent::EscalationStep {
            comp: p[0],
            restarts_in_window: u32_at(1),
            backoff: u64_at(5),
            exhausted: p[13] != 0,
        },
        12 => AxiomEvent::Quarantined { comp: p[0] },
        13 => AxiomEvent::PoolRefresh {
            comp: p[0],
            refreshed: p[1] != 0,
        },
        14 => AxiomEvent::ShutdownDecision {
            controlled: p[0] != 0,
        },
        15 => AxiomEvent::Injection {
            run: u32_at(0),
            site_digest: u64_at(4),
            outcome: outcome_from(p[12])?,
        },
        16 => AxiomEvent::DeadlineExpired {
            comp: p[0],
            msg_id: u64_at(1),
            attempt: p[9],
        },
        17 => AxiomEvent::WatchdogVerdict {
            comp: p[0],
            verdict: verdict_from(p[1])?,
            msg_id: u64_at(2),
        },
        18 => AxiomEvent::RetryDecision {
            comp: p[0],
            msg_id: u64_at(1),
            attempt: p[9],
            granted: p[10] != 0,
            backoff: u32_at(11),
        },
        _ => return Err(AxiomError::BadEncoding),
    })
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Why a serialized axiom was rejected. Every corruption class is detected
/// before any reduction runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AxiomError {
    /// The buffer is smaller than a header or carries the wrong magic.
    BadHeader,
    /// The body length is not a whole number of records: the tail was torn
    /// mid-record.
    TornTail,
    /// The header promises more records than the body holds.
    Truncated {
        /// Records the header promised.
        expected: u64,
        /// Whole records actually present.
        found: u64,
    },
    /// A record's digest does not extend the chain: a bit flip, an edited
    /// record, or a reordering.
    ChainMismatch {
        /// Sequence number of the first bad record.
        seq: u64,
    },
    /// Every record chains, but the header's head digest disagrees with the
    /// recomputed chain head.
    HeadMismatch,
    /// An event tag or enum byte is out of range.
    BadEncoding,
}

impl std::fmt::Display for AxiomError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AxiomError::BadHeader => write!(f, "bad axiom header or magic"),
            AxiomError::TornTail => write!(f, "torn tail: body is not a whole number of records"),
            AxiomError::Truncated { expected, found } => {
                write!(
                    f,
                    "truncated axiom: header promises {expected} records, found {found}"
                )
            }
            AxiomError::ChainMismatch { seq } => {
                write!(f, "digest chain breaks at seq {seq}")
            }
            AxiomError::HeadMismatch => write!(f, "head digest does not match recomputed chain"),
            AxiomError::BadEncoding => write!(f, "unknown event tag or enum byte"),
        }
    }
}

impl std::error::Error for AxiomError {}

// ---------------------------------------------------------------------------
// The log
// ---------------------------------------------------------------------------

/// Recording configuration for an [`AxiomLog`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AxiomConfig {
    /// Whether records are retained and chained. The control-state fold in
    /// the kernel runs regardless — only retention is gated.
    pub enabled: bool,
    /// Records reserved up front (`reserve_exact`); appends within this
    /// capacity never allocate.
    pub capacity: usize,
}

impl Default for AxiomConfig {
    fn default() -> Self {
        AxiomConfig {
            enabled: false,
            capacity: 16 * 1024,
        }
    }
}

impl AxiomConfig {
    /// Recording enabled with the default capacity.
    pub fn on() -> AxiomConfig {
        AxiomConfig {
            enabled: true,
            ..AxiomConfig::default()
        }
    }
}

/// The append-only, digest-chained control-plane log.
///
/// The kernel is the single writer, so the log is a plain struct (no lock);
/// observers take snapshots through the kernel's accessors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AxiomLog {
    enabled: bool,
    records: Vec<AxiomRecord>,
    head: u64,
    next_seq: u64,
}

impl AxiomLog {
    /// Creates a log; when `cfg.enabled`, the backing storage is reserved
    /// up front so steady-state appends do not allocate.
    pub fn new(cfg: AxiomConfig) -> AxiomLog {
        let mut records = Vec::new();
        if cfg.enabled {
            records.reserve_exact(cfg.capacity);
        }
        AxiomLog {
            enabled: cfg.enabled,
            records,
            head: CHAIN_SEED,
            next_seq: 0,
        }
    }

    /// Whether records are being retained.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Appends `event` at virtual time `now`, sealing it into the chain.
    /// No-op when recording is disabled.
    ///
    /// `#[inline]` so the disabled-path check folds into the caller's emit
    /// site — the shipping configuration pays one predictable branch, which
    /// `bench_axiom --check` holds to the same bound as the tracer.
    #[inline]
    pub fn append(&mut self, now: u64, event: AxiomEvent) {
        if !self.enabled {
            return;
        }
        self.append_slow(now, event);
    }

    fn append_slow(&mut self, now: u64, event: AxiomEvent) {
        let seq = self.next_seq;
        let body = encode_body(now, seq, &event);
        let digest = fnv1a(fnv1a(FNV_OFFSET, &self.head.to_le_bytes()), &body);
        self.records.push(AxiomRecord {
            now,
            seq,
            event,
            digest,
        });
        self.head = digest;
        self.next_seq += 1;
    }

    /// Discards all records and re-seeds the chain (used at the boot
    /// barrier so the axiom, like the trace ring, excludes boot noise).
    pub fn reset(&mut self) {
        self.records.clear();
        self.head = CHAIN_SEED;
        self.next_seq = 0;
    }

    /// The sealed records, in order.
    pub fn records(&self) -> &[AxiomRecord] {
        &self.records
    }

    /// Number of sealed records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Digest sealing the latest record (== [`CHAIN_SEED`] when empty).
    pub fn head_digest(&self) -> u64 {
        self.head
    }

    /// Serialized size in bytes.
    pub fn bytes_len(&self) -> usize {
        HEADER_BYTES + self.records.len() * RECORD_BYTES
    }

    /// Recomputes the whole chain and checks it against the stored digests
    /// and head.
    pub fn verify(&self) -> Result<(), AxiomError> {
        let mut head = CHAIN_SEED;
        for rec in &self.records {
            let body = encode_body(rec.now, rec.seq, &rec.event);
            let digest = fnv1a(fnv1a(FNV_OFFSET, &head.to_le_bytes()), &body);
            if digest != rec.digest {
                return Err(AxiomError::ChainMismatch { seq: rec.seq });
            }
            head = digest;
        }
        if head != self.head {
            return Err(AxiomError::HeadMismatch);
        }
        Ok(())
    }

    /// Serializes header + records to a crash-consistent byte image.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.bytes_len());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&(self.records.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.head.to_le_bytes());
        for rec in &self.records {
            out.extend_from_slice(&encode_body(rec.now, rec.seq, &rec.event));
            out.extend_from_slice(&rec.digest.to_le_bytes());
        }
        out
    }

    /// Deserializes and **fully verifies** a byte image: magic, tail
    /// integrity, record count, per-record digest chain, head digest, and
    /// event encodings. Corruption is reported before any reduction can
    /// consume the records.
    pub fn from_bytes(bytes: &[u8]) -> Result<AxiomLog, AxiomError> {
        if bytes.len() < HEADER_BYTES || &bytes[0..8] != MAGIC {
            return Err(AxiomError::BadHeader);
        }
        let count = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
        let head = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
        let body = &bytes[HEADER_BYTES..];
        if !body.len().is_multiple_of(RECORD_BYTES) {
            return Err(AxiomError::TornTail);
        }
        let found = (body.len() / RECORD_BYTES) as u64;
        if found != count {
            return Err(AxiomError::Truncated {
                expected: count,
                found,
            });
        }
        let mut records = Vec::with_capacity(found as usize);
        let mut chain = CHAIN_SEED;
        for (i, chunk) in body.chunks_exact(RECORD_BYTES).enumerate() {
            let now = u64::from_le_bytes(chunk[0..8].try_into().unwrap());
            let seq = u64::from_le_bytes(chunk[8..16].try_into().unwrap());
            let digest = u64::from_le_bytes(chunk[33..41].try_into().unwrap());
            let expect = fnv1a(fnv1a(FNV_OFFSET, &chain.to_le_bytes()), &chunk[0..33]);
            if seq != i as u64 || digest != expect {
                return Err(AxiomError::ChainMismatch { seq: i as u64 });
            }
            let event = decode_event(chunk[16], &chunk[17..33])?;
            records.push(AxiomRecord {
                now,
                seq,
                event,
                digest,
            });
            chain = digest;
        }
        if chain != head {
            return Err(AxiomError::HeadMismatch);
        }
        Ok(AxiomLog {
            enabled: true,
            records,
            head: chain,
            next_seq: found,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AxiomLog {
        let mut log = AxiomLog::new(AxiomConfig::on());
        log.append(
            0,
            AxiomEvent::Genesis {
                comps: 6,
                config_digest: fnv1a_str("enhanced"),
            },
        );
        log.append(10, AxiomEvent::WindowOpen { comp: 1 });
        log.append(
            25,
            AxiomEvent::WindowClose {
                comp: 1,
                reason: CloseCode::DisallowedSend,
                class: SeepClassCode::StateModifying,
            },
        );
        log.append(30, AxiomEvent::Crash { comp: 1 });
        log.append(
            31,
            AxiomEvent::IntentRecorded {
                comp: 1,
                phase: IntentPhaseCode::Notified,
            },
        );
        log.append(
            40,
            AxiomEvent::RecoveryDecision {
                comp: 1,
                action: ActionCode::RollbackErrorReply,
            },
        );
        log.append(
            90,
            AxiomEvent::RecoveryDone {
                comp: 1,
                cycles: 50,
            },
        );
        log.append(90, AxiomEvent::IntentResolved { comp: 1 });
        log
    }

    #[test]
    fn round_trip_preserves_records_and_head() {
        let log = sample();
        log.verify().unwrap();
        let bytes = log.to_bytes();
        assert_eq!(bytes.len(), log.bytes_len());
        let back = AxiomLog::from_bytes(&bytes).unwrap();
        assert_eq!(back.records(), log.records());
        assert_eq!(back.head_digest(), log.head_digest());
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = AxiomLog::new(AxiomConfig::default());
        log.append(5, AxiomEvent::WindowOpen { comp: 0 });
        assert!(log.is_empty());
        assert_eq!(log.head_digest(), CHAIN_SEED);
    }

    #[test]
    fn every_event_variant_round_trips() {
        let events = [
            AxiomEvent::Genesis {
                comps: 3,
                config_digest: 0xDEAD_BEEF,
            },
            AxiomEvent::WindowOpen { comp: 7 },
            AxiomEvent::WindowClose {
                comp: 7,
                reason: CloseCode::ThreadYield,
                class: SeepClassCode::RequesterScoped,
            },
            AxiomEvent::Crash { comp: 2 },
            AxiomEvent::HangDetected { comp: 3 },
            AxiomEvent::IntentRecorded {
                comp: 2,
                phase: IntentPhaseCode::Deferred,
            },
            AxiomEvent::IntentReplayed { comp: 2 },
            AxiomEvent::IntentResolved { comp: 2 },
            AxiomEvent::RecoveryDecision {
                comp: 2,
                action: ActionCode::FreshRestart,
            },
            AxiomEvent::RecoveryFallback {
                comp: 2,
                from: ActionCode::RollbackErrorReply,
                to: ActionCode::FreshRestart,
            },
            AxiomEvent::RecoveryDone {
                comp: 2,
                cycles: u64::MAX,
            },
            AxiomEvent::EscalationStep {
                comp: 2,
                restarts_in_window: 9,
                backoff: 400_000,
                exhausted: true,
            },
            AxiomEvent::Quarantined { comp: 2 },
            AxiomEvent::PoolRefresh {
                comp: 2,
                refreshed: false,
            },
            AxiomEvent::ShutdownDecision { controlled: true },
            AxiomEvent::Injection {
                run: 41,
                site_digest: 0x1234,
                outcome: OutcomeCode::Degraded,
            },
            AxiomEvent::DeadlineExpired {
                comp: 4,
                msg_id: u64::MAX - 1,
                attempt: 2,
            },
            AxiomEvent::WatchdogVerdict {
                comp: 4,
                verdict: VerdictCode::ReplyLost,
                msg_id: 99,
            },
            AxiomEvent::RetryDecision {
                comp: 4,
                msg_id: 99,
                attempt: 1,
                granted: true,
                backoff: 250_000,
            },
        ];
        let mut log = AxiomLog::new(AxiomConfig::on());
        for (i, ev) in events.iter().enumerate() {
            log.append(i as u64 * 3, *ev);
        }
        let back = AxiomLog::from_bytes(&log.to_bytes()).unwrap();
        for (rec, ev) in back.records().iter().zip(events.iter()) {
            assert_eq!(rec.event, *ev);
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[0] = b'Z';
        assert_eq!(AxiomLog::from_bytes(&bytes), Err(AxiomError::BadHeader));
    }

    #[test]
    fn appends_within_capacity_do_not_reallocate() {
        let mut log = AxiomLog::new(AxiomConfig {
            enabled: true,
            capacity: 64,
        });
        let cap = log.records.capacity();
        for i in 0..64 {
            log.append(i, AxiomEvent::WindowOpen { comp: 0 });
        }
        assert_eq!(log.records.capacity(), cap);
    }
}
