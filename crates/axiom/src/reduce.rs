//! Pure reduction of an axiom into control state.
//!
//! `ControlState` is the machine's entire control plane as a value: it is
//! what the kernel acts on at runtime (folded incrementally as events are
//! appended) and what a post-mortem [`reduce`] of a recorded axiom
//! reconstructs. The two agree by construction — both run [`ControlState::apply`]
//! over the same event sequence — which is the invariant the
//! `axiom_replay` CI gate enforces end to end.

use crate::{AxiomEvent, AxiomRecord, IntentPhaseCode};

/// Upper bound on component indices tracked by the reduction. The
/// canonical topology registers 6 components; fixed arrays keep
/// [`ControlState`] `Copy`-free but allocation-free.
pub const MAX_COMPS: usize = 32;

/// Liveness status of one component, as reduced from the axiom (mirrors
/// the kernel's `CompStatus`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum CompStatusCode {
    /// Running normally.
    #[default]
    Alive,
    /// Unresponsive to heartbeats; awaiting a kill + recovery.
    Hung,
    /// Fail-stopped; awaiting recovery.
    Crashed,
    /// Taken out of service by the escalation ladder.
    Quarantined,
}

/// One recovery-intent slot: the durable record that a recovery for this
/// component was in flight. The kernel's intent log is exactly the set of
/// active slots — a view over the axiom tail.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct IntentSlot {
    /// Whether an intent is outstanding for this component.
    pub active: bool,
    /// Last recorded lifecycle phase.
    pub phase: Option<IntentPhaseCode>,
    /// Times the kernel re-drove this intent after an RS crash.
    pub replays: u32,
}

/// Kernel + Recovery Server control state as a pure function of the axiom.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ControlState {
    /// Registered component count, from the `Genesis` event.
    pub comps: u8,
    /// Configuration digest, from the `Genesis` event.
    pub config_digest: u64,
    /// Per-component liveness.
    pub statuses: [CompStatusCode; MAX_COMPS],
    /// Bitmap of components with an open recovery window.
    pub windows_open: u32,
    /// Per-component recovery-intent slots.
    pub intents: [IntentSlot; MAX_COMPS],
    /// Per-component restarts inside the sliding escalation window (as of
    /// the last `EscalationStep`).
    pub restarts_in_window: [u32; MAX_COMPS],
    /// Per-component flag: the escalation budget was exhausted.
    pub budget_exhausted: [bool; MAX_COMPS],
    /// Component currently being recovered, if any.
    pub recovering: Option<u8>,
    /// `Some(controlled)` once a shutdown decision was taken.
    pub shutdown: Option<bool>,
    /// Total crashes observed.
    pub crashes: u64,
    /// Total hangs detected.
    pub hangs: u64,
    /// Total recoveries completed.
    pub recoveries: u64,
    /// Total recovery-phase fallbacks taken.
    pub fallbacks: u64,
    /// Total quarantines.
    pub quarantines: u64,
    /// Clone-pool images actually re-captured.
    pub pool_refreshes: u64,
    /// Campaign injections folded (campaign-owned axioms only).
    pub injections: u64,
    /// Armed request deadlines that expired.
    pub deadline_expiries: u64,
    /// Watchdog verdicts concluded (hung, slow, reply-lost, corrupt-reply).
    pub watchdog_verdicts: u64,
    /// Transparent retries granted by the kernel.
    pub retries_granted: u64,
    /// Retry requests denied (the requester saw `E_CRASH`).
    pub retries_denied: u64,
    /// Events folded into this state.
    pub events: u64,
    /// Virtual timestamp of the last event folded.
    pub last_now: u64,
}

impl Default for ControlState {
    fn default() -> Self {
        ControlState::new()
    }
}

impl ControlState {
    /// Pristine state: everything alive, no windows, no intents.
    pub fn new() -> ControlState {
        ControlState {
            comps: 0,
            config_digest: 0,
            statuses: [CompStatusCode::Alive; MAX_COMPS],
            windows_open: 0,
            intents: [IntentSlot::default(); MAX_COMPS],
            restarts_in_window: [0; MAX_COMPS],
            budget_exhausted: [false; MAX_COMPS],
            recovering: None,
            shutdown: None,
            crashes: 0,
            hangs: 0,
            recoveries: 0,
            fallbacks: 0,
            quarantines: 0,
            pool_refreshes: 0,
            injections: 0,
            deadline_expiries: 0,
            watchdog_verdicts: 0,
            retries_granted: 0,
            retries_denied: 0,
            events: 0,
            last_now: 0,
        }
    }

    /// Status of component `comp` (indices past [`MAX_COMPS`] read Alive).
    pub fn status(&self, comp: u8) -> CompStatusCode {
        self.statuses
            .get(comp as usize)
            .copied()
            .unwrap_or_default()
    }

    /// Whether `comp` has an open recovery window.
    pub fn window_open(&self, comp: u8) -> bool {
        (comp as usize) < MAX_COMPS && self.windows_open & (1u32 << comp) != 0
    }

    /// The intent slot for `comp`.
    pub fn intent(&self, comp: u8) -> IntentSlot {
        self.intents.get(comp as usize).copied().unwrap_or_default()
    }

    /// Components with an outstanding recovery intent, lowest index first.
    pub fn active_intents(&self) -> impl Iterator<Item = u8> + '_ {
        self.intents
            .iter()
            .enumerate()
            .filter(|(_, s)| s.active)
            .map(|(i, _)| i as u8)
    }

    /// Components currently quarantined, lowest index first.
    pub fn quarantined_set(&self) -> impl Iterator<Item = u8> + '_ {
        self.statuses
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == CompStatusCode::Quarantined)
            .map(|(i, _)| i as u8)
    }

    /// Folds one event. This is the single transition function shared by
    /// the kernel's live fold and the post-mortem [`reduce`]; it is total
    /// (never panics) and allocation-free.
    pub fn apply(&mut self, now: u64, event: &AxiomEvent) {
        self.events += 1;
        self.last_now = now;
        let idx = |c: u8| (c as usize) < MAX_COMPS;
        match *event {
            AxiomEvent::Genesis {
                comps,
                config_digest,
            } => {
                let events = self.events;
                *self = ControlState::new();
                self.events = events;
                self.last_now = now;
                self.comps = comps;
                self.config_digest = config_digest;
            }
            AxiomEvent::WindowOpen { comp } => {
                if idx(comp) {
                    self.windows_open |= 1u32 << comp;
                }
            }
            AxiomEvent::WindowClose { comp, .. } => {
                if idx(comp) {
                    self.windows_open &= !(1u32 << comp);
                }
            }
            AxiomEvent::Crash { comp } => {
                self.crashes += 1;
                if idx(comp) {
                    self.statuses[comp as usize] = CompStatusCode::Crashed;
                }
            }
            AxiomEvent::HangDetected { comp } => {
                self.hangs += 1;
                if idx(comp) {
                    self.statuses[comp as usize] = CompStatusCode::Hung;
                }
            }
            AxiomEvent::IntentRecorded { comp, phase } => {
                if idx(comp) {
                    let slot = &mut self.intents[comp as usize];
                    slot.active = true;
                    slot.phase = Some(phase);
                }
            }
            AxiomEvent::IntentReplayed { comp } => {
                if idx(comp) {
                    let slot = &mut self.intents[comp as usize];
                    slot.active = true;
                    slot.replays += 1;
                }
            }
            AxiomEvent::IntentResolved { comp } => {
                if idx(comp) {
                    self.intents[comp as usize] = IntentSlot::default();
                }
            }
            AxiomEvent::RecoveryDecision { comp, .. } => {
                self.recovering = Some(comp);
            }
            AxiomEvent::RecoveryFallback { .. } => {
                self.fallbacks += 1;
            }
            AxiomEvent::RecoveryDone { comp, .. } => {
                self.recoveries += 1;
                if self.recovering == Some(comp) {
                    self.recovering = None;
                }
                if idx(comp) {
                    self.statuses[comp as usize] = CompStatusCode::Alive;
                }
            }
            AxiomEvent::EscalationStep {
                comp,
                restarts_in_window,
                exhausted,
                ..
            } => {
                if idx(comp) {
                    self.restarts_in_window[comp as usize] = restarts_in_window;
                    self.budget_exhausted[comp as usize] |= exhausted;
                }
            }
            AxiomEvent::Quarantined { comp } => {
                self.quarantines += 1;
                if self.recovering == Some(comp) {
                    self.recovering = None;
                }
                if idx(comp) {
                    self.statuses[comp as usize] = CompStatusCode::Quarantined;
                    self.windows_open &= !(1u32 << comp);
                    self.intents[comp as usize] = IntentSlot::default();
                }
            }
            AxiomEvent::PoolRefresh { refreshed, .. } => {
                self.pool_refreshes += refreshed as u64;
            }
            AxiomEvent::ShutdownDecision { controlled } => {
                self.shutdown = Some(controlled);
            }
            AxiomEvent::Injection { .. } => {
                self.injections += 1;
            }
            AxiomEvent::DeadlineExpired { .. } => {
                self.deadline_expiries += 1;
            }
            AxiomEvent::WatchdogVerdict { .. } => {
                self.watchdog_verdicts += 1;
            }
            AxiomEvent::RetryDecision { granted, .. } => {
                if granted {
                    self.retries_granted += 1;
                } else {
                    self.retries_denied += 1;
                }
            }
        }
    }
}

/// Deterministically reconstructs control state from a record slice: the
/// pure reduction `reduce ∘ record = live state`.
pub fn reduce(records: &[AxiomRecord]) -> ControlState {
    let mut state = ControlState::new();
    for rec in records {
        state.apply(rec.now, &rec.event);
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ActionCode, AxiomConfig, AxiomLog, CloseCode, SeepClassCode};

    #[test]
    fn reduction_tracks_a_crash_and_recovery() {
        let mut log = AxiomLog::new(AxiomConfig::on());
        log.append(
            0,
            AxiomEvent::Genesis {
                comps: 6,
                config_digest: 7,
            },
        );
        log.append(5, AxiomEvent::WindowOpen { comp: 1 });
        log.append(9, AxiomEvent::Crash { comp: 1 });
        log.append(
            10,
            AxiomEvent::IntentRecorded {
                comp: 1,
                phase: IntentPhaseCode::Issued,
            },
        );
        let mid = reduce(log.records());
        assert_eq!(mid.status(1), CompStatusCode::Crashed);
        assert!(mid.window_open(1));
        assert!(mid.intent(1).active);

        log.append(
            11,
            AxiomEvent::RecoveryDecision {
                comp: 1,
                action: ActionCode::RollbackErrorReply,
            },
        );
        log.append(
            12,
            AxiomEvent::WindowClose {
                comp: 1,
                reason: CloseCode::Rollback,
                class: SeepClassCode::None,
            },
        );
        log.append(
            40,
            AxiomEvent::RecoveryDone {
                comp: 1,
                cycles: 29,
            },
        );
        log.append(40, AxiomEvent::IntentResolved { comp: 1 });
        let end = reduce(log.records());
        assert_eq!(end.status(1), CompStatusCode::Alive);
        assert!(!end.window_open(1));
        assert!(!end.intent(1).active);
        assert_eq!(end.recovering, None);
        assert_eq!(end.recoveries, 1);
        assert_eq!(end.crashes, 1);
        assert_eq!(end.last_now, 40);
    }

    #[test]
    fn quarantine_clears_intent_and_window() {
        let mut log = AxiomLog::new(AxiomConfig::on());
        log.append(
            0,
            AxiomEvent::Genesis {
                comps: 6,
                config_digest: 7,
            },
        );
        log.append(1, AxiomEvent::WindowOpen { comp: 3 });
        log.append(
            2,
            AxiomEvent::IntentRecorded {
                comp: 3,
                phase: IntentPhaseCode::Notified,
            },
        );
        log.append(3, AxiomEvent::Quarantined { comp: 3 });
        let s = reduce(log.records());
        assert_eq!(s.status(3), CompStatusCode::Quarantined);
        assert!(!s.window_open(3));
        assert!(!s.intent(3).active);
        assert_eq!(s.quarantined_set().collect::<Vec<_>>(), vec![3]);
    }

    #[test]
    fn out_of_range_components_are_ignored() {
        let mut s = ControlState::new();
        s.apply(
            1,
            &AxiomEvent::Crash {
                comp: crate::KERNEL_COMP,
            },
        );
        assert_eq!(s.crashes, 1);
        assert_eq!(s.status(crate::KERNEL_COMP), CompStatusCode::Alive);
    }

    #[test]
    fn replays_accumulate_until_resolved() {
        let mut s = ControlState::new();
        s.apply(
            0,
            &AxiomEvent::IntentRecorded {
                comp: 2,
                phase: IntentPhaseCode::Issued,
            },
        );
        s.apply(1, &AxiomEvent::IntentReplayed { comp: 2 });
        s.apply(2, &AxiomEvent::IntentReplayed { comp: 2 });
        assert_eq!(s.intent(2).replays, 2);
        s.apply(3, &AxiomEvent::IntentResolved { comp: 2 });
        assert_eq!(s.intent(2), IntentSlot::default());
    }
}
