//! Chain-integrity properties: every corruption class — bit flips,
//! truncation, record reordering, torn tails — is detected by
//! `AxiomLog::from_bytes` *before* any reduction can consume the records.
//! Mirrors the checkpoint crate's `integrity_proptests`.

use osiris_axiom::{
    bisect, reduce, ActionCode, AxiomConfig, AxiomError, AxiomEvent, AxiomLog, CloseCode,
    IntentPhaseCode, OutcomeCode, SeepClassCode, HEADER_BYTES, RECORD_BYTES,
};
use osiris_rng::Rng;

/// Builds a log of `n` pseudo-random (but deterministic) control events.
fn random_log(seed: u64, n: usize) -> AxiomLog {
    let mut rng = Rng::new(seed);
    let mut log = AxiomLog::new(AxiomConfig::on());
    let mut now = 0u64;
    log.append(
        now,
        AxiomEvent::Genesis {
            comps: 6,
            config_digest: seed,
        },
    );
    for i in 0..n {
        now += rng.range(1, 500);
        let comp = (rng.below(6)) as u8;
        let ev = match rng.below(12) {
            0 => AxiomEvent::WindowOpen { comp },
            1 => AxiomEvent::WindowClose {
                comp,
                reason: CloseCode::DisallowedSend,
                class: SeepClassCode::StateModifying,
            },
            2 => AxiomEvent::Crash { comp },
            3 => AxiomEvent::HangDetected { comp },
            4 => AxiomEvent::IntentRecorded {
                comp,
                phase: IntentPhaseCode::Issued,
            },
            5 => AxiomEvent::IntentReplayed { comp },
            6 => AxiomEvent::RecoveryDecision {
                comp,
                action: ActionCode::RollbackErrorReply,
            },
            7 => AxiomEvent::RecoveryDone {
                comp,
                cycles: rng.below(100_000),
            },
            8 => AxiomEvent::EscalationStep {
                comp,
                restarts_in_window: rng.below(9) as u32,
                backoff: rng.below(400_000),
                exhausted: rng.chance(1, 8),
            },
            9 => AxiomEvent::Quarantined { comp },
            10 => AxiomEvent::PoolRefresh {
                comp,
                refreshed: rng.chance(1, 2),
            },
            _ => AxiomEvent::Injection {
                run: i as u32,
                site_digest: rng.next_u64(),
                outcome: OutcomeCode::Recovered,
            },
        };
        log.append(now, ev);
    }
    log
}

#[test]
fn round_trip_is_lossless_and_reduction_deterministic() {
    for seed in [1u64, 0xBEEF, 0x7ACE_5EED] {
        let log = random_log(seed, 200);
        log.verify().expect("freshly built log verifies");
        let bytes = log.to_bytes();
        let back = AxiomLog::from_bytes(&bytes).expect("round trip");
        assert_eq!(back.records(), log.records());
        assert_eq!(back.head_digest(), log.head_digest());
        assert_eq!(reduce(back.records()), reduce(log.records()));
        assert!(bisect(back.records(), log.records()).is_none());
    }
}

#[test]
fn any_single_bit_flip_in_the_body_is_detected() {
    let log = random_log(0xF11B, 48);
    let bytes = log.to_bytes();
    let mut rng = Rng::new(99);
    // Exhaustive over records, random bit within each: every record must be
    // protected no matter where the flip lands.
    for rec in 0..log.len() {
        let byte = HEADER_BYTES + rec * RECORD_BYTES + rng.below_usize(RECORD_BYTES);
        let bit = 1u8 << rng.below(8);
        let mut corrupt = bytes.clone();
        corrupt[byte] ^= bit;
        let err = AxiomLog::from_bytes(&corrupt).expect_err("bit flip must be detected");
        assert!(
            matches!(
                err,
                AxiomError::ChainMismatch { .. } | AxiomError::HeadMismatch
            ),
            "unexpected error class for flip at byte {byte}: {err:?}"
        );
    }
}

#[test]
fn header_bit_flips_are_detected() {
    let log = random_log(7, 16);
    let bytes = log.to_bytes();
    for byte in 0..HEADER_BYTES {
        let mut corrupt = bytes.clone();
        corrupt[byte] ^= 0x10;
        assert!(
            AxiomLog::from_bytes(&corrupt).is_err(),
            "header flip at byte {byte} must be detected"
        );
    }
}

#[test]
fn truncation_at_record_boundaries_is_detected() {
    let log = random_log(0xDEAD, 32);
    let bytes = log.to_bytes();
    for drop_records in 1..=log.len() {
        let keep = bytes.len() - drop_records * RECORD_BYTES;
        match AxiomLog::from_bytes(&bytes[..keep]) {
            Err(AxiomError::Truncated { expected, found }) => {
                assert_eq!(expected, log.len() as u64);
                assert_eq!(found, (log.len() - drop_records) as u64);
            }
            other => panic!("truncation of {drop_records} records not detected: {other:?}"),
        }
    }
}

#[test]
fn torn_tail_mid_record_is_detected() {
    let log = random_log(0xBAD_7A11, 20);
    let bytes = log.to_bytes();
    let mut rng = Rng::new(3);
    for _ in 0..64 {
        // Tear somewhere that is not a record boundary.
        let cut = HEADER_BYTES + rng.below_usize(bytes.len() - HEADER_BYTES);
        if (cut - HEADER_BYTES).is_multiple_of(RECORD_BYTES) {
            continue;
        }
        assert_eq!(
            AxiomLog::from_bytes(&bytes[..cut]).expect_err("torn tail must be detected"),
            AxiomError::TornTail,
            "cut at {cut}"
        );
    }
}

#[test]
fn reordering_any_two_records_is_detected() {
    let log = random_log(0x5EED, 24);
    let bytes = log.to_bytes();
    let mut rng = Rng::new(11);
    for _ in 0..128 {
        let i = rng.below_usize(log.len());
        let j = rng.below_usize(log.len());
        if i == j {
            continue;
        }
        let mut corrupt = bytes.clone();
        let (lo, hi) = (i.min(j), i.max(j));
        let a = HEADER_BYTES + lo * RECORD_BYTES;
        let b = HEADER_BYTES + hi * RECORD_BYTES;
        for k in 0..RECORD_BYTES {
            corrupt.swap(a + k, b + k);
        }
        let err = AxiomLog::from_bytes(&corrupt).expect_err("reorder must be detected");
        assert!(
            matches!(err, AxiomError::ChainMismatch { seq } if seq == lo as u64),
            "swap {lo}<->{hi}: expected chain break at {lo}, got {err:?}"
        );
    }
}

#[test]
fn appending_after_tamper_cannot_hide_the_break() {
    // Simulate an attacker (or a buggy writer) editing a sealed record and
    // re-serializing without recomputing the downstream chain: verify()
    // still pinpoints the edit.
    let mut log = random_log(0xA77A, 12);
    let bytes = log.to_bytes();
    let mut reloaded = AxiomLog::from_bytes(&bytes).unwrap();
    // A fresh append on the reloaded log continues the chain seamlessly.
    reloaded.append(u64::MAX, AxiomEvent::ShutdownDecision { controlled: true });
    reloaded
        .verify()
        .expect("chain continues across serialize/reload");
    log.append(u64::MAX, AxiomEvent::ShutdownDecision { controlled: true });
    assert_eq!(log.head_digest(), reloaded.head_digest());
}
