//! Criterion microbenchmarks for the OSIRIS building blocks: undo-log
//! costs, checkpoint/rollback, clone images, recovery-window transitions,
//! and end-to-end syscall paths on both OS architectures.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use osiris_checkpoint::Heap;
use osiris_core::{Enhanced, PolicyKind, RecoveryWindow, SeepClass, SeepMeta};
use osiris_kernel::abi::{Pid, Syscall};
use osiris_kernel::{Instrumentation, OsEngine, SyscallId};
use osiris_monolith::Monolith;
use osiris_servers::{Os, OsConfig};

fn bench_undo_log(c: &mut Criterion) {
    let mut g = c.benchmark_group("undo_log");
    g.bench_function("cell_set_logged", |b| {
        let mut heap = Heap::new("bench");
        let cell = heap.alloc_cell("x", 0u64);
        heap.set_logging(true);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            cell.set(&mut heap, i);
            if heap.log_len() > 10_000 {
                heap.discard_log();
            }
        });
    });
    g.bench_function("cell_set_unlogged", |b| {
        let mut heap = Heap::new("bench");
        let cell = heap.alloc_cell("x", 0u64);
        heap.set_logging(false);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            cell.set(&mut heap, i);
        });
    });
    g.bench_function("map_insert_logged", |b| {
        let mut heap = Heap::new("bench");
        let map = heap.alloc_map::<u64, u64>("m");
        heap.set_logging(true);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            map.insert(&mut heap, i % 512, i);
            if heap.log_len() > 10_000 {
                heap.discard_log();
            }
        });
    });
    g.finish();
}

fn bench_rollback(c: &mut Criterion) {
    let mut g = c.benchmark_group("checkpoint");
    for entries in [16usize, 256, 4096] {
        g.bench_function(format!("rollback_{}_entries", entries), |b| {
            b.iter_batched(
                || {
                    let mut heap = Heap::new("bench");
                    let cell = heap.alloc_cell("x", 0u64);
                    heap.set_logging(true);
                    let mark = heap.mark();
                    for i in 0..entries {
                        cell.set(&mut heap, i as u64);
                    }
                    (heap, mark)
                },
                |(mut heap, mark)| heap.rollback_to(mark),
                BatchSize::SmallInput,
            );
        });
    }
    g.bench_function("clone_image_1000_objects", |b| {
        let mut heap = Heap::new("bench");
        for _ in 0..1000 {
            heap.alloc_cell("x", [0u64; 4]);
        }
        b.iter(|| heap.clone_image());
    });
    g.finish();
}

fn bench_window(c: &mut Criterion) {
    c.bench_function("window_open_complete", |b| {
        let mut heap = Heap::new("bench");
        let cell = heap.alloc_cell("x", 0u64);
        let mut w = RecoveryWindow::new();
        b.iter(|| {
            w.open(&mut heap);
            cell.set(&mut heap, 1);
            w.on_send(&Enhanced, &SeepMeta::request(SeepClass::NonStateModifying), &mut heap);
            w.complete(&mut heap);
        });
    });
}

fn bench_syscall_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("syscall_path");
    g.bench_function("osiris_getpid", |b| {
        let mut os = Os::new(OsConfig {
            policy: PolicyKind::Enhanced,
            instrumentation: Instrumentation::WindowGated,
            vm_frames: 1024,
            ..Default::default()
        });
        let mut sid = 0u64;
        b.iter(|| {
            sid += 1;
            os.submit(SyscallId(sid), Pid(1), Syscall::GetPid);
            let replies = os.pump();
            assert_eq!(replies.len(), 1);
        });
    });
    g.bench_function("monolith_getpid", |b| {
        let mut m = Monolith::new();
        let mut sid = 0u64;
        b.iter(|| {
            sid += 1;
            m.submit(SyscallId(sid), Pid(1), Syscall::GetPid);
            let replies = m.pump();
            assert_eq!(replies.len(), 1);
        });
    });
    g.bench_function("osiris_ds_put", |b| {
        let mut os = Os::new(OsConfig { vm_frames: 1024, ..Default::default() });
        let mut sid = 0u64;
        b.iter(|| {
            sid += 1;
            os.submit(
                SyscallId(sid),
                Pid(1),
                Syscall::DsPut { key: format!("k{}", sid % 64), value: vec![1, 2, 3] },
            );
            let replies = os.pump();
            assert_eq!(replies.len(), 1);
        });
    });
    g.finish();
}

/// End-to-end crash-recovery latency: every iteration crashes PM inside
/// its window and includes the full restart/rollback/error-virtualization
/// sequence.
fn bench_recovery_path(c: &mut Criterion) {
    use osiris_kernel::{FaultEffect, FaultHook, Probe};
    #[derive(Clone)]
    struct AlwaysCrashFork;
    impl FaultHook for AlwaysCrashFork {
        fn on_site(&mut self, probe: &Probe) -> FaultEffect {
            if probe.site == "pm.fork.validate" {
                FaultEffect::Panic
            } else {
                FaultEffect::None
            }
        }
    }
    c.bench_function("crash_recover_roundtrip", |b| {
        // The injected crashes unwind as panics; silence their banners.
        osiris_kernel::install_quiet_panic_hook();
        let mut os = Os::new(OsConfig { vm_frames: 1024, ..Default::default() });
        os.set_fault_hook(Box::new(AlwaysCrashFork));
        let mut sid = 0u64;
        b.iter(|| {
            sid += 1;
            os.submit(SyscallId(sid), Pid(1), Syscall::Fork);
            let replies = os.pump();
            assert_eq!(replies.len(), 1, "E_CRASH delivered");
        });
    });
}

fn bench_boot(c: &mut Criterion) {
    c.bench_function("os_boot", |b| {
        b.iter(|| Os::new(OsConfig { vm_frames: 1024, ..Default::default() }));
    });
}

/// Ablation (DESIGN.md): the paper picks request-oriented *undo logging*
/// over full-state snapshotting because servers write little per message.
/// This measures the per-window cost of both strategies across state sizes:
/// the undo log is O(writes-per-window); a full image is O(state).
fn bench_checkpoint_strategy(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_checkpoint_strategy");
    for objects in [64usize, 1024, 16384] {
        // One window = open, a handful of writes, complete.
        g.bench_function(format!("undo_log_{}_objects", objects), |b| {
            let mut heap = Heap::new("bench");
            let cells: Vec<_> = (0..objects).map(|_| heap.alloc_cell("x", 0u64)).collect();
            let mut w = RecoveryWindow::new();
            let mut i = 0u64;
            b.iter(|| {
                w.open(&mut heap);
                for k in 0..8 {
                    cells[(i as usize + k) % objects].set(&mut heap, i);
                }
                i += 1;
                w.complete(&mut heap);
            });
        });
        g.bench_function(format!("full_image_{}_objects", objects), |b| {
            let mut heap = Heap::new("bench");
            let cells: Vec<_> = (0..objects).map(|_| heap.alloc_cell("x", 0u64)).collect();
            let mut i = 0u64;
            b.iter(|| {
                // Snapshot-based window: copy everything up front.
                let image = heap.clone_image();
                for k in 0..8 {
                    cells[(i as usize + k) % objects].set(&mut heap, i);
                }
                i += 1;
                criterion::black_box(&image);
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_undo_log,
    bench_rollback,
    bench_window,
    bench_syscall_paths,
    bench_recovery_path,
    bench_boot,
    bench_checkpoint_strategy
);
criterion_main!(benches);
