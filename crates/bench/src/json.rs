//! Machine-readable results: the `reproduce` harness emits this JSON next
//! to its text tables so reproduction runs can be diffed by tooling.
//!
//! The emitter is hand-rolled (a tiny value tree + renderer) so the
//! workspace builds fully offline with no serialization dependencies.

use crate::experiments::{Fig3Point, SurvivabilityTable, Table1, Table4Row, Table5Row, Table6Row};
use crate::loc::RcbReport;

/// A JSON value. Objects preserve insertion order so emitted files diff
/// stably across runs.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (kept exact, no float round-trip).
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A float; non-finite values render as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (ordered key/value pairs).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj<const N: usize>(pairs: [(&str, Json); N]) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Builds an array by converting each item.
    pub fn arr<T, F: FnMut(&T) -> Json>(items: &[T], f: F) -> Json {
        Json::Arr(items.iter().map(f).collect())
    }

    /// Renders with two-space indentation and a trailing newline, the
    /// layout `reproduce` commits to disk.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::UInt(u) => out.push_str(&u.to_string()),
            Json::Num(x) if x.is_finite() => {
                // `{}` on f64 is the shortest exact representation, but
                // renders integral floats without a decimal point; keep the
                // point so the value stays typed as a float for readers.
                let s = format!("{x}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            }
            Json::Num(_) => out.push_str("null"),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                newline_indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                newline_indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, depth: usize) {
    out.push('\n');
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// JSON mirror of one survivability table (the native types live in
/// `osiris-faults`, which has no serialization code at all).
#[derive(Clone, Debug)]
pub struct SurvivabilityJson {
    /// Fault model name.
    pub model: String,
    /// Faults injected per policy.
    pub faults: usize,
    /// Per-policy outcome counts: (policy, pass, fail, shutdown, crash).
    pub rows: Vec<(String, usize, usize, usize, usize)>,
}

impl From<&SurvivabilityTable> for SurvivabilityJson {
    fn from(t: &SurvivabilityTable) -> Self {
        SurvivabilityJson {
            model: format!("{:?}", t.model),
            faults: t.faults,
            rows: t
                .rows
                .iter()
                .map(|(p, tally)| {
                    (
                        p.to_string(),
                        tally.pass,
                        tally.fail,
                        tally.shutdown,
                        tally.crash,
                    )
                })
                .collect(),
        }
    }
}

impl SurvivabilityJson {
    fn to_json(&self) -> Json {
        Json::obj([
            ("model", Json::Str(self.model.clone())),
            ("faults", Json::UInt(self.faults as u64)),
            (
                "rows",
                Json::arr(&self.rows, |(policy, pass, fail, shutdown, crash)| {
                    Json::obj([
                        ("policy", Json::Str(policy.clone())),
                        ("pass", Json::UInt(*pass as u64)),
                        ("fail", Json::UInt(*fail as u64)),
                        ("shutdown", Json::UInt(*shutdown as u64)),
                        ("crash", Json::UInt(*crash as u64)),
                    ])
                }),
            ),
        ])
    }
}

fn rcb_json(r: &RcbReport) -> Json {
    Json::obj([(
        "crates",
        Json::arr(&r.crates, |c| {
            Json::obj([
                ("name", Json::Str(c.name.clone())),
                ("loc", Json::UInt(c.loc as u64)),
                ("rcb", Json::Bool(c.rcb)),
            ])
        }),
    )])
}

fn table1_json(t: &Table1) -> Json {
    Json::obj([
        (
            "rows",
            Json::arr(&t.rows, |r| {
                Json::obj([
                    ("server", Json::Str(r.server.clone())),
                    ("pessimistic", Json::Num(r.pessimistic)),
                    ("enhanced", Json::Num(r.enhanced)),
                ])
            }),
        ),
        ("weighted_pessimistic", Json::Num(t.weighted_pessimistic)),
        ("weighted_enhanced", Json::Num(t.weighted_enhanced)),
    ])
}

fn table4_json(r: &Table4Row) -> Json {
    Json::obj([
        ("bench", Json::Str(r.bench.clone())),
        ("monolith", Json::Num(r.monolith)),
        ("osiris", Json::Num(r.osiris)),
        ("slowdown", Json::Num(r.slowdown)),
    ])
}

fn table5_json(r: &Table5Row) -> Json {
    Json::obj([
        ("bench", Json::Str(r.bench.clone())),
        ("without_opt", Json::Num(r.without_opt)),
        ("pessimistic", Json::Num(r.pessimistic)),
        ("enhanced", Json::Num(r.enhanced)),
    ])
}

fn table6_json(r: &Table6Row) -> Json {
    Json::obj([
        ("server", Json::Str(r.server.clone())),
        ("base_kb", Json::Num(r.base_kb)),
        ("clone_kb", Json::Num(r.clone_kb)),
        ("undo_kb", Json::Num(r.undo_kb)),
    ])
}

fn fig3_json(p: &Fig3Point) -> Json {
    Json::obj([
        ("bench", Json::Str(p.bench.clone())),
        ("interval", Json::UInt(p.interval)),
        ("score", Json::Num(p.score)),
        ("crashes", Json::UInt(p.crashes)),
        ("ok", Json::Bool(p.ok)),
    ])
}

/// Everything one `reproduce` run measured.
#[derive(Clone, Debug)]
pub struct ResultsJson {
    /// RCB accounting.
    pub rcb: RcbReport,
    /// Table I.
    pub table1: Table1,
    /// Table II.
    pub table2: SurvivabilityJson,
    /// Table III.
    pub table3: SurvivabilityJson,
    /// Table IV.
    pub table4: Vec<Table4Row>,
    /// Table V.
    pub table5: Vec<Table5Row>,
    /// Table VI.
    pub table6: Vec<Table6Row>,
    /// Figure 3.
    pub figure3: Vec<Fig3Point>,
}

impl ResultsJson {
    /// Renders the full results document.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("rcb", rcb_json(&self.rcb)),
            ("table1", table1_json(&self.table1)),
            ("table2", self.table2.to_json()),
            ("table3", self.table3.to_json()),
            ("table4", Json::arr(&self.table4, table4_json)),
            ("table5", Json::arr(&self.table5, table5_json)),
            ("table6", Json::arr(&self.table6, table6_json)),
            ("figure3", Json::arr(&self.figure3, fig3_json)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::Json;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.pretty(), "null\n");
        assert_eq!(Json::Bool(true).pretty(), "true\n");
        assert_eq!(Json::Int(-3).pretty(), "-3\n");
        assert_eq!(Json::UInt(u64::MAX).pretty(), format!("{}\n", u64::MAX));
        assert_eq!(Json::Num(1.5).pretty(), "1.5\n");
        assert_eq!(
            Json::Num(2.0).pretty(),
            "2.0\n",
            "integral floats keep the point"
        );
        assert_eq!(Json::Num(f64::NAN).pretty(), "null\n");
    }

    #[test]
    fn strings_escape() {
        let s = Json::Str("a\"b\\c\nd\te\u{1}".into());
        assert_eq!(s.pretty(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"\n");
    }

    #[test]
    fn nesting_indents() {
        let doc = Json::obj([
            ("xs", Json::Arr(vec![Json::Int(1), Json::Int(2)])),
            ("empty", Json::Arr(vec![])),
            ("o", Json::obj([("k", Json::Str("v".into()))])),
        ]);
        let expect = "{\n  \"xs\": [\n    1,\n    2\n  ],\n  \"empty\": [],\n  \"o\": {\n    \"k\": \"v\"\n  }\n}\n";
        assert_eq!(doc.pretty(), expect);
    }
}
