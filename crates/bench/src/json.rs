//! Machine-readable results: the `reproduce` harness emits this JSON next
//! to its text tables so reproduction runs can be diffed by tooling.
//!
//! The emitter is hand-rolled (a tiny value tree + renderer) so the
//! workspace builds fully offline with no serialization dependencies. The
//! [`Json`] value type itself lives in `osiris-trace` (which also uses it
//! for the Chrome trace exporter) and is re-exported here.

use crate::experiments::{Fig3Point, SurvivabilityTable, Table1, Table4Row, Table5Row, Table6Row};
use crate::loc::RcbReport;
use osiris_trace::HistSummary;

pub use osiris_trace::Json;

/// Ordered JSON-object builder for the `BENCH_*.json` writers. The bench
/// emitters share whole blocks (per-mode throughput, the disabled-overhead
/// bound) and splice bench-specific fields between them — a shape
/// `Json::obj`'s fixed-size array can't express without duplicating the
/// shared blocks at every writer.
#[derive(Clone, Debug, Default)]
pub struct JsonObj(Vec<(String, Json)>);

impl JsonObj {
    /// An empty object.
    pub fn new() -> JsonObj {
        JsonObj(Vec::new())
    }

    /// Appends one field (insertion order is render order).
    pub fn field(mut self, key: &str, value: Json) -> JsonObj {
        self.0.push((key.to_string(), value));
        self
    }

    /// Finishes the object.
    pub fn build(self) -> Json {
        Json::Obj(self.0)
    }
}

/// An optional allocator-call count: `null` when no counting allocator was
/// installed (shared by every `steady_state_allocs` /
/// `cow_restore_allocs` field).
pub fn alloc_count_json(n: Option<u64>) -> Json {
    match n {
        Some(n) => Json::UInt(n),
        None => Json::Null,
    }
}

/// The per-mode throughput object shared by the trace, metrics and axiom
/// benches: ns per write, implied writes/s, and the allocator-call proof.
pub fn write_mode_json(
    ns_per_write: f64,
    writes_per_sec: f64,
    steady_state_allocs: Option<u64>,
) -> Json {
    Json::obj([
        ("ns_per_write", Json::Num(ns_per_write)),
        ("writes_per_sec", Json::Num(writes_per_sec)),
        ("steady_state_allocs", alloc_count_json(steady_state_allocs)),
    ])
}

/// Appends the standard disabled/enabled overhead block — the shipping
/// "attached but off" configuration's ≤[`crate::DISABLED_BOUND_PCT`]%-or-
/// ε bound shared by the trace, metrics and axiom benches.
pub fn overhead_fields(
    obj: JsonObj,
    disabled_pct: f64,
    disabled_ns: f64,
    within_bound: bool,
    enabled_pct: f64,
) -> JsonObj {
    obj.field("disabled_overhead_pct", Json::Num(disabled_pct))
        .field("disabled_overhead_ns_per_write", Json::Num(disabled_ns))
        .field("disabled_bound_pct", Json::Num(crate::DISABLED_BOUND_PCT))
        .field("disabled_epsilon_ns", Json::Num(crate::DISABLED_EPSILON_NS))
        .field("disabled_within_bound", Json::Bool(within_bound))
        .field("enabled_overhead_pct", Json::Num(enabled_pct))
}

/// JSON mirror of one survivability table (the native types live in
/// `osiris-faults`, which has no serialization code at all).
#[derive(Clone, Debug)]
pub struct SurvivabilityJson {
    /// Fault model name.
    pub model: String,
    /// Faults injected per policy.
    pub faults: usize,
    /// Per-policy outcome counts: (policy, pass, fail, shutdown, crash).
    pub rows: Vec<(String, usize, usize, usize, usize)>,
}

impl From<&SurvivabilityTable> for SurvivabilityJson {
    fn from(t: &SurvivabilityTable) -> Self {
        SurvivabilityJson {
            model: format!("{:?}", t.model),
            faults: t.faults,
            rows: t
                .rows
                .iter()
                .map(|(p, tally)| {
                    (
                        p.to_string(),
                        tally.pass,
                        tally.fail,
                        tally.shutdown,
                        tally.crash,
                    )
                })
                .collect(),
        }
    }
}

impl SurvivabilityJson {
    fn to_json(&self) -> Json {
        Json::obj([
            ("model", Json::Str(self.model.clone())),
            ("faults", Json::UInt(self.faults as u64)),
            (
                "rows",
                Json::arr(&self.rows, |(policy, pass, fail, shutdown, crash)| {
                    Json::obj([
                        ("policy", Json::Str(policy.clone())),
                        ("pass", Json::UInt(*pass as u64)),
                        ("fail", Json::UInt(*fail as u64)),
                        ("shutdown", Json::UInt(*shutdown as u64)),
                        ("crash", Json::UInt(*crash as u64)),
                    ])
                }),
            ),
        ])
    }
}

fn rcb_json(r: &RcbReport) -> Json {
    Json::obj([(
        "crates",
        Json::arr(&r.crates, |c| {
            Json::obj([
                ("name", Json::Str(c.name.clone())),
                ("loc", Json::UInt(c.loc as u64)),
                ("rcb", Json::Bool(c.rcb)),
            ])
        }),
    )])
}

fn table1_json(t: &Table1) -> Json {
    Json::obj([
        (
            "rows",
            Json::arr(&t.rows, |r| {
                Json::obj([
                    ("server", Json::Str(r.server.clone())),
                    ("pessimistic", Json::Num(r.pessimistic)),
                    ("enhanced", Json::Num(r.enhanced)),
                ])
            }),
        ),
        ("weighted_pessimistic", Json::Num(t.weighted_pessimistic)),
        ("weighted_enhanced", Json::Num(t.weighted_enhanced)),
    ])
}

fn table4_json(r: &Table4Row) -> Json {
    Json::obj([
        ("bench", Json::Str(r.bench.clone())),
        ("monolith", Json::Num(r.monolith)),
        ("osiris", Json::Num(r.osiris)),
        ("slowdown", Json::Num(r.slowdown)),
    ])
}

fn table5_json(r: &Table5Row) -> Json {
    Json::obj([
        ("bench", Json::Str(r.bench.clone())),
        ("without_opt", Json::Num(r.without_opt)),
        ("pessimistic", Json::Num(r.pessimistic)),
        ("enhanced", Json::Num(r.enhanced)),
    ])
}

/// Renders a histogram summary as an ordered JSON object.
pub fn hist_json(h: &HistSummary) -> Json {
    Json::obj([
        ("count", Json::UInt(h.count)),
        ("min", Json::UInt(h.min)),
        ("p50", Json::UInt(h.p50)),
        ("p90", Json::UInt(h.p90)),
        ("p99", Json::UInt(h.p99)),
        ("p999", Json::UInt(h.p999)),
        ("max", Json::UInt(h.max)),
        ("mean", Json::UInt(h.mean)),
    ])
}

fn table6_json(r: &Table6Row) -> Json {
    Json::obj([
        ("server", Json::Str(r.server.clone())),
        ("base_kb", Json::Num(r.base_kb)),
        ("clone_dedup_kb", Json::Num(r.clone_dedup_kb)),
        ("clone_kb", Json::Num(r.clone_kb)),
        ("undo_kb", Json::Num(r.undo_kb)),
        ("recovery_latency", hist_json(&r.recovery_latency)),
    ])
}

fn fig3_json(p: &Fig3Point) -> Json {
    Json::obj([
        ("bench", Json::Str(p.bench.clone())),
        ("interval", Json::UInt(p.interval)),
        ("score", Json::Num(p.score)),
        ("crashes", Json::UInt(p.crashes)),
        ("ok", Json::Bool(p.ok)),
    ])
}

/// Everything one `reproduce` run measured.
#[derive(Clone, Debug)]
pub struct ResultsJson {
    /// RCB accounting.
    pub rcb: RcbReport,
    /// Table I.
    pub table1: Table1,
    /// Table II.
    pub table2: SurvivabilityJson,
    /// Table III.
    pub table3: SurvivabilityJson,
    /// Table IV.
    pub table4: Vec<Table4Row>,
    /// Table V.
    pub table5: Vec<Table5Row>,
    /// Table VI.
    pub table6: Vec<Table6Row>,
    /// Figure 3.
    pub figure3: Vec<Fig3Point>,
}

impl ResultsJson {
    /// Renders the full results document.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("rcb", rcb_json(&self.rcb)),
            ("table1", table1_json(&self.table1)),
            ("table2", self.table2.to_json()),
            ("table3", self.table3.to_json()),
            ("table4", Json::arr(&self.table4, table4_json)),
            ("table5", Json::arr(&self.table5, table5_json)),
            ("table6", Json::arr(&self.table6, table6_json)),
            ("figure3", Json::arr(&self.figure3, fig3_json)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::{hist_json, Json};
    use osiris_trace::HistSummary;

    #[test]
    fn hist_summary_renders_all_fields() {
        let h = HistSummary {
            count: 2,
            min: 1,
            max: 4,
            mean: 2,
            p50: 1,
            p90: 4,
            p99: 4,
            p999: 4,
        };
        let j = hist_json(&h).pretty();
        assert!(j.contains("\"count\": 2"));
        assert!(j.contains("\"mean\": 2"));
        assert!(j.contains("\"p90\": 4"));
        assert!(j.contains("\"p999\": 4"));
    }

    #[test]
    fn reexported_json_still_renders() {
        assert_eq!(Json::Null.pretty(), "null\n");
    }
}
