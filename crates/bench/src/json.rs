//! Machine-readable results: the `reproduce` harness emits this JSON next
//! to its text tables so reproduction runs can be diffed by tooling.

use serde::Serialize;

use crate::experiments::{Fig3Point, SurvivabilityTable, Table1, Table4Row, Table5Row, Table6Row};
use crate::loc::RcbReport;

/// JSON mirror of one survivability row (the native types live in
/// `osiris-faults`, which deliberately has no serde dependency).
#[derive(Clone, Debug, Serialize)]
pub struct SurvivabilityJson {
    /// Fault model name.
    pub model: String,
    /// Faults injected per policy.
    pub faults: usize,
    /// Per-policy outcome counts: (policy, pass, fail, shutdown, crash).
    pub rows: Vec<(String, usize, usize, usize, usize)>,
}

impl From<&SurvivabilityTable> for SurvivabilityJson {
    fn from(t: &SurvivabilityTable) -> Self {
        SurvivabilityJson {
            model: format!("{:?}", t.model),
            faults: t.faults,
            rows: t
                .rows
                .iter()
                .map(|(p, tally)| {
                    (p.to_string(), tally.pass, tally.fail, tally.shutdown, tally.crash)
                })
                .collect(),
        }
    }
}

/// Everything one `reproduce` run measured.
#[derive(Clone, Debug, Serialize)]
pub struct ResultsJson {
    /// RCB accounting.
    pub rcb: RcbReport,
    /// Table I.
    pub table1: Table1,
    /// Table II.
    pub table2: SurvivabilityJson,
    /// Table III.
    pub table3: SurvivabilityJson,
    /// Table IV.
    pub table4: Vec<Table4Row>,
    /// Table V.
    pub table5: Vec<Table5Row>,
    /// Table VI.
    pub table6: Vec<Table6Row>,
    /// Figure 3.
    pub figure3: Vec<Fig3Point>,
}
