//! Microbenchmark for the axiom (control-plane log) emit path.
//!
//! Every control-plane transition the kernel seals runs the same two-step
//! emit: fold the event into the live [`ControlState`] (always — the fold
//! *is* the control plane) and append it to the digest-chained
//! [`AxiomLog`] (a single branch when retention is off). This bench drives
//! identical synthetic window/recovery event schedules through that emit
//! path under three recorder configurations and compares nanoseconds per
//! event:
//!
//! * **baseline** — control fold only, no log attached at all.
//! * **disabled** — fold plus an append on a disabled [`AxiomLog`]; each
//!   emit pays one branch on the `enabled` bool. This is the configuration
//!   every production run ships with, so its overhead over the baseline is
//!   the headline number (`bench_axiom --check` enforces the same
//!   ≤[`DISABLED_BOUND_PCT`]%-or-ε bound as `bench_trace`).
//! * **enabled** — full retention; each emit FNV-chains a fixed-width
//!   record into the preallocated log.
//!
//! The log is sized at [`AxiomLog::new`] time and reset (capacity
//! retained) between repetitions, so enabled-mode steady state must make
//! **zero** allocator calls; when the caller supplies an allocation
//! counter (see `src/bin/bench_axiom.rs`) the harness proves it.
//!
//! Timing discipline mirrors `trace_bench`: the three modes run
//! interleaved, min-of-[`REPS`] repetitions, fresh state per repetition so
//! every mode samples the same allocator placement.

use std::time::Instant;

use osiris_axiom::{
    ActionCode, AxiomConfig, AxiomEvent, AxiomLog, CloseCode, ControlState, IntentPhaseCode,
    SeepClassCode,
};
use osiris_rng::Rng;

use crate::json::Json;
use crate::{DISABLED_BOUND_PCT, DISABLED_EPSILON_NS};

/// Benchmark configuration.
#[derive(Clone, Copy, Debug)]
pub struct AxiomBenchConfig {
    /// Synthetic recovery windows (open → close [→ crash → decision →
    /// done]) per measured mode.
    pub windows: u64,
    /// Windows run before measuring, to warm caches and the log arena.
    pub warmup_windows: u64,
    /// Every `crash_every`-th window ends in a crash + full recovery
    /// sequence instead of a clean close, so the fold's heavier arms are
    /// on the measured path.
    pub crash_every: u64,
    /// Reads the process-wide allocation count, if the caller installed a
    /// counting allocator.
    pub alloc_count: Option<fn() -> u64>,
}

impl Default for AxiomBenchConfig {
    fn default() -> Self {
        AxiomBenchConfig {
            windows: 200_000,
            warmup_windows: 2_000,
            crash_every: 16,
            alloc_count: None,
        }
    }
}

impl AxiomBenchConfig {
    /// A scaled-down configuration for the CI gate (`bench_axiom
    /// --check`): large enough for min-of-reps timing to be stable, small
    /// enough to finish in well under a second.
    pub fn quick() -> AxiomBenchConfig {
        AxiomBenchConfig {
            windows: 40_000,
            warmup_windows: 1_000,
            crash_every: 16,
            alloc_count: None,
        }
    }
}

/// Measurements for one recorder configuration.
#[derive(Clone, Copy, Debug)]
pub struct AxiomModeResult {
    /// Nanoseconds per emitted event (fastest repetition).
    pub ns_per_event: f64,
    /// Events per second implied by `ns_per_event`.
    pub events_per_sec: f64,
    /// Allocator calls during one measured (post-warmup) repetition, if an
    /// allocation counter was supplied.
    pub steady_state_allocs: Option<u64>,
}

/// The full comparison.
#[derive(Clone, Copy, Debug)]
pub struct AxiomBenchResult {
    /// Configuration echoed back.
    pub windows: u64,
    /// Events emitted per measured repetition.
    pub events_per_rep: u64,
    /// Control fold only.
    pub baseline: AxiomModeResult,
    /// Fold + disabled log — the shipping configuration.
    pub disabled: AxiomModeResult,
    /// Full retention.
    pub enabled: AxiomModeResult,
    /// Records the enabled log held after one repetition.
    pub records_retained: u64,
    /// Bytes of the enabled log's serialized image.
    pub log_bytes: u64,
}

impl AxiomBenchResult {
    /// Disabled-recorder overhead over the fold-only baseline, in percent
    /// (clamped at zero).
    pub fn disabled_overhead_pct(&self) -> f64 {
        overhead_pct(self.baseline.ns_per_event, self.disabled.ns_per_event)
    }

    /// Disabled-recorder overhead in absolute ns/event (clamped at zero).
    pub fn disabled_overhead_ns(&self) -> f64 {
        (self.disabled.ns_per_event - self.baseline.ns_per_event).max(0.0)
    }

    /// Full-retention overhead over the fold-only baseline, in percent.
    pub fn enabled_overhead_pct(&self) -> f64 {
        overhead_pct(self.baseline.ns_per_event, self.enabled.ns_per_event)
    }

    /// The headline check, same bar as `bench_trace`/`bench_metrics`: the
    /// shipping (attached-but-disabled) recorder costs at most
    /// [`DISABLED_BOUND_PCT`] percent over the bare fold, or at most
    /// [`DISABLED_EPSILON_NS`] ns absolute — whichever is more permissive.
    pub fn disabled_within_bound(&self) -> bool {
        self.disabled_overhead_pct() <= DISABLED_BOUND_PCT
            || self.disabled_overhead_ns() <= DISABLED_EPSILON_NS
    }

    /// Renders a human-readable summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "axiom emit path: {} windows, {} events/rep\n",
            self.windows, self.events_per_rep
        ));
        let row = |name: &str, r: &AxiomModeResult| {
            let allocs = match r.steady_state_allocs {
                Some(n) => format!("{n}"),
                None => "-".to_string(),
            };
            format!(
                "{:<22} {:>8.2} ns/event {:>14.0} ev/s {:>8} allocs\n",
                name, r.ns_per_event, r.events_per_sec, allocs
            )
        };
        out.push_str(&row("fold only", &self.baseline));
        out.push_str(&row("attached, disabled", &self.disabled));
        out.push_str(&row("attached, recording", &self.enabled));
        out.push_str(&format!(
            "disabled overhead: {:.2}% ({:.3} ns/event, bound {}% or {} ns)  \
             recording overhead: {:.2}%\n",
            self.disabled_overhead_pct(),
            self.disabled_overhead_ns(),
            DISABLED_BOUND_PCT,
            DISABLED_EPSILON_NS,
            self.enabled_overhead_pct()
        ));
        out.push_str(&format!(
            "records retained: {} ({} serialized bytes)\n",
            self.records_retained, self.log_bytes
        ));
        out
    }

    /// Machine-readable form (written to `BENCH_axiom.json`).
    pub fn to_json(&self) -> Json {
        let mode = |r: &AxiomModeResult| {
            crate::json::write_mode_json(r.ns_per_event, r.events_per_sec, r.steady_state_allocs)
        };
        let obj = crate::json::JsonObj::new()
            .field("windows", Json::UInt(self.windows))
            .field("events_per_rep", Json::UInt(self.events_per_rep))
            .field("baseline_fold_only", mode(&self.baseline))
            .field("attached_disabled", mode(&self.disabled))
            .field("attached_recording", mode(&self.enabled));
        crate::json::overhead_fields(
            obj,
            self.disabled_overhead_pct(),
            self.disabled_overhead_ns(),
            self.disabled_within_bound(),
            self.enabled_overhead_pct(),
        )
        .field("records_retained", Json::UInt(self.records_retained))
        .field("log_bytes", Json::UInt(self.log_bytes))
        .build()
    }
}

fn overhead_pct(base_ns: f64, mode_ns: f64) -> f64 {
    ((mode_ns - base_ns).max(0.0) / base_ns.max(1e-9)) * 100.0
}

/// The recorder attachment under test.
#[derive(Clone, Copy)]
enum Attach {
    None,
    Disabled,
    Enabled,
}

/// Timing repetitions per mode, interleaved like `trace_bench`.
const REPS: usize = 9;

/// Mode order within each repetition.
const ATTACHES: [Attach; 3] = [Attach::None, Attach::Disabled, Attach::Enabled];

/// Generates the event schedule outside the timed loop: one open/close
/// pair per window, with every `crash_every`-th window expanded into the
/// full crash → intent → decision → done sequence so the fold's array
/// writes are exercised, not just the counters.
fn gen_schedule(r: &mut Rng, cfg: &AxiomBenchConfig) -> Vec<AxiomEvent> {
    let mut events = Vec::new();
    events.push(AxiomEvent::Genesis {
        comps: 6,
        config_digest: 0xA71,
    });
    for w in 0..cfg.windows {
        let comp = (r.below(6)) as u8;
        events.push(AxiomEvent::WindowOpen { comp });
        if cfg.crash_every > 0 && w % cfg.crash_every == cfg.crash_every - 1 {
            events.push(AxiomEvent::WindowClose {
                comp,
                reason: CloseCode::Rollback,
                class: SeepClassCode::StateModifying,
            });
            events.push(AxiomEvent::Crash { comp });
            events.push(AxiomEvent::IntentRecorded {
                comp,
                phase: IntentPhaseCode::Notified,
            });
            events.push(AxiomEvent::RecoveryDecision {
                comp,
                action: ActionCode::RollbackErrorReply,
            });
            events.push(AxiomEvent::RecoveryDone {
                comp,
                cycles: r.below(10_000),
            });
        } else {
            events.push(AxiomEvent::WindowClose {
                comp,
                reason: CloseCode::Completed,
                class: SeepClassCode::None,
            });
        }
    }
    events
}

struct ModeState {
    control: ControlState,
    log: Option<AxiomLog>,
}

fn setup(attach: Attach, events: &[AxiomEvent], warmup: &[AxiomEvent]) -> ModeState {
    // Every mode constructs a log — the baseline simply never appends to
    // its (placebo) one — so all modes issue the same allocation sequence
    // before the measured loop.
    let log = AxiomLog::new(AxiomConfig {
        enabled: matches!(attach, Attach::Enabled),
        capacity: events.len(),
    });
    let mut m = ModeState {
        control: ControlState::new(),
        log: Some(log),
    };
    run_rep(&mut m, attach, warmup);
    reset_rep(&mut m);
    m
}

#[inline]
fn run_rep(m: &mut ModeState, attach: Attach, events: &[AxiomEvent]) {
    let mut now = 0u64;
    match attach {
        Attach::None => {
            for e in events {
                now += 7;
                m.control.apply(now, e);
            }
        }
        Attach::Disabled | Attach::Enabled => {
            let log = m.log.as_mut().expect("log attached");
            for e in events {
                now += 7;
                m.control.apply(now, e);
                log.append(now, *e);
            }
        }
    }
}

#[inline]
fn reset_rep(m: &mut ModeState) {
    m.control = ControlState::new();
    if let Some(log) = m.log.as_mut() {
        log.reset();
    }
}

/// Runs the comparison.
pub fn bench_axiom(cfg: AxiomBenchConfig) -> AxiomBenchResult {
    let mut r = Rng::new(0xA10);
    let events = gen_schedule(&mut r, &cfg);
    let warmup = gen_schedule(
        &mut r,
        &AxiomBenchConfig {
            windows: cfg.warmup_windows,
            ..cfg
        },
    );

    let mut best = [f64::INFINITY; ATTACHES.len()];
    let mut steady_state_allocs: [Option<u64>; ATTACHES.len()] = [None; ATTACHES.len()];
    let mut records_retained = 0u64;
    let mut log_bytes = 0u64;

    for rep in 0..REPS {
        for (i, attach) in ATTACHES.iter().enumerate() {
            let mut m = setup(*attach, &events, &warmup);
            let allocs_before = cfg.alloc_count.map(|f| f());
            let start = Instant::now();
            run_rep(&mut m, *attach, &events);
            best[i] = best[i].min(start.elapsed().as_secs_f64().max(1e-9));
            if rep == 0 {
                steady_state_allocs[i] = cfg.alloc_count.map(|f| f() - allocs_before.unwrap_or(0));
            }
            if matches!(attach, Attach::Enabled) {
                let log = m.log.as_ref().expect("enabled mode keeps its log");
                records_retained = log.len() as u64;
                log_bytes = log.bytes_len() as u64;
            }
        }
    }

    let total_events = events.len() as u64;
    let result = |i: usize| AxiomModeResult {
        ns_per_event: best[i] * 1e9 / total_events as f64,
        events_per_sec: total_events as f64 / best[i],
        steady_state_allocs: steady_state_allocs[i],
    };
    AxiomBenchResult {
        windows: cfg.windows,
        events_per_rep: total_events,
        baseline: result(0),
        disabled: result(1),
        enabled: result(2),
        records_retained,
        log_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_sane_numbers() {
        let cfg = AxiomBenchConfig {
            windows: 2_000,
            warmup_windows: 100,
            crash_every: 8,
            alloc_count: None,
        };
        let r = bench_axiom(cfg);
        assert!(r.baseline.ns_per_event > 0.0);
        assert!(r.disabled.ns_per_event > 0.0);
        assert!(r.enabled.ns_per_event > 0.0);
        assert_eq!(r.records_retained, r.events_per_rep);
        assert_eq!(r.log_bytes, 24 + r.records_retained * 41);
        let j = r.to_json().pretty();
        assert!(j.contains("disabled_overhead_pct"));
        assert!(j.contains("attached_recording"));
        assert!(j.contains("records_retained"));
    }
}
