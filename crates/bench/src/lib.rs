//! The OSIRIS experiment harness.
//!
//! One function per table/figure of the paper's evaluation (§VI). Each
//! returns structured data and can render the paper-style text table; the
//! `src/bin/*` binaries are thin wrappers. Experiment sizes are
//! parameterized so integration tests can run scaled-down versions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod axiom_bench;
pub mod campaign_bench;
pub mod experiments;
pub mod json;
pub mod loc;
pub mod metrics_bench;
pub mod restart_bench;
pub mod span_bench;
pub mod timeout_bench;
pub mod trace_bench;
pub mod undo_bench;

pub use axiom_bench::{bench_axiom, AxiomBenchConfig, AxiomBenchResult, AxiomModeResult};
pub use campaign_bench::{
    bench_campaign, CampaignBenchConfig, CampaignBenchResult, ReadoptAllocs, READOPT_ALLOC_BOUND,
    RECOVERY_COVERAGE_FLOOR, SPEEDUP_FLOOR,
};
pub use experiments::*;
pub use json::{Json, ResultsJson, SurvivabilityJson};
pub use loc::{count_workspace_loc, CrateLoc, RcbReport};
pub use metrics_bench::{bench_metrics, MetricsBenchConfig, MetricsBenchResult, MetricsModeResult};
pub use restart_bench::{
    bench_restart, PoolDedupResult, RestartBenchConfig, RestartBenchResult, RestartPoint,
};
pub use span_bench::{bench_spans, SpanBenchConfig, SpanBenchResult, SpanModeResult};
pub use timeout_bench::{bench_timeouts, TimeoutBenchConfig, TimeoutBenchResult};
pub use trace_bench::{
    bench_trace, TraceBenchConfig, TraceBenchResult, TraceModeResult, DISABLED_BOUND_PCT,
    DISABLED_EPSILON_NS,
};
pub use undo_bench::{bench_undo, UndoBenchConfig, UndoBenchResult, UndoModeResult};

/// Installs a counting wrapper around the system allocator plus an
/// `alloc_calls()` reader, so a `bench_*` binary can *prove* a
/// zero-allocator-calls steady-state claim. Expand once at the top level
/// of a binary; the expansion defines the `#[global_allocator]` for that
/// binary, so it cannot be used from a library or more than once.
///
/// The expansion contains the only `unsafe` in the workspace's bench
/// tooling: a `GlobalAlloc` impl that delegates every operation unchanged
/// to [`std::alloc::System`], with a relaxed atomic counter on the
/// allocation entry points.
#[macro_export]
macro_rules! counting_allocator {
    () => {
        static ALLOC_CALLS: ::std::sync::atomic::AtomicU64 = ::std::sync::atomic::AtomicU64::new(0);

        /// System allocator wrapper that counts every allocation entry
        /// point.
        struct CountingAlloc;

        // SAFETY: delegates every operation unchanged to the system
        // allocator; the counter is a relaxed atomic with no effect on
        // allocation behavior.
        unsafe impl ::std::alloc::GlobalAlloc for CountingAlloc {
            unsafe fn alloc(&self, layout: ::std::alloc::Layout) -> *mut u8 {
                ALLOC_CALLS.fetch_add(1, ::std::sync::atomic::Ordering::Relaxed);
                unsafe { ::std::alloc::System.alloc(layout) }
            }

            unsafe fn dealloc(&self, ptr: *mut u8, layout: ::std::alloc::Layout) {
                unsafe { ::std::alloc::System.dealloc(ptr, layout) }
            }

            unsafe fn realloc(
                &self,
                ptr: *mut u8,
                layout: ::std::alloc::Layout,
                new_size: usize,
            ) -> *mut u8 {
                ALLOC_CALLS.fetch_add(1, ::std::sync::atomic::Ordering::Relaxed);
                unsafe { ::std::alloc::System.realloc(ptr, layout, new_size) }
            }

            unsafe fn alloc_zeroed(&self, layout: ::std::alloc::Layout) -> *mut u8 {
                ALLOC_CALLS.fetch_add(1, ::std::sync::atomic::Ordering::Relaxed);
                unsafe { ::std::alloc::System.alloc_zeroed(layout) }
            }
        }

        #[global_allocator]
        static GLOBAL: CountingAlloc = CountingAlloc;

        /// Allocator entry-point calls so far, process-wide.
        fn alloc_calls() -> u64 {
            ALLOC_CALLS.load(::std::sync::atomic::Ordering::Relaxed)
        }
    };
}

/// Geometric mean of a non-empty slice (returns 0 for empty input).
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = xs.iter().map(|x| x.max(1e-12).ln()).sum();
    (log_sum / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::geomean;

    #[test]
    fn geomean_basics() {
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-9);
    }
}
