//! The OSIRIS experiment harness.
//!
//! One function per table/figure of the paper's evaluation (§VI). Each
//! returns structured data and can render the paper-style text table; the
//! `src/bin/*` binaries are thin wrappers. Experiment sizes are
//! parameterized so integration tests can run scaled-down versions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod json;
pub mod loc;
pub mod metrics_bench;
pub mod restart_bench;
pub mod trace_bench;
pub mod undo_bench;

pub use experiments::*;
pub use json::{Json, ResultsJson, SurvivabilityJson};
pub use loc::{count_workspace_loc, CrateLoc, RcbReport};
pub use metrics_bench::{bench_metrics, MetricsBenchConfig, MetricsBenchResult, MetricsModeResult};
pub use restart_bench::{
    bench_restart, PoolDedupResult, RestartBenchConfig, RestartBenchResult, RestartPoint,
};
pub use trace_bench::{
    bench_trace, TraceBenchConfig, TraceBenchResult, TraceModeResult, DISABLED_BOUND_PCT,
    DISABLED_EPSILON_NS,
};
pub use undo_bench::{bench_undo, UndoBenchConfig, UndoBenchResult, UndoModeResult};

/// Geometric mean of a non-empty slice (returns 0 for empty input).
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = xs.iter().map(|x| x.max(1e-12).ln()).sum();
    (log_sum / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::geomean;

    #[test]
    fn geomean_basics() {
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-9);
    }
}
