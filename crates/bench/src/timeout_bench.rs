//! Fail-silent watchdog benchmark: hang-detection latency and the
//! armed-deadline hot path's allocation discipline.
//!
//! Two claims from the fail-silent design are enforced here:
//!
//! * **Detection latency is bounded.** A wedged component is declared dead
//!   within its armed deadline plus one heartbeat period: deadlines are
//!   serviced at every pump iteration and after every timer fire, so the
//!   only slack past the deadline itself is the gap to the next timer —
//!   the RS heartbeat in the worst (fully idle) case. The benchmark wedges
//!   a server repeatedly and checks the kernel's
//!   `osiris_watchdog_detection_latency_cycles` histogram against the
//!   bound, exact-max included.
//! * **Arming is allocation-free in steady state.** The watchdog slot table
//!   is preallocated at boot ([`WatchdogConfig::capacity`]), so arming and
//!   disarming a deadline on every request must add **zero** allocator
//!   calls over the same workload with the watchdog disabled. Boot-time
//!   costs differ (the slot table itself), so the benchmark measures the
//!   *increment*: allocator calls of a double-length run minus a
//!   single-length run, per mode — identical increments mean the armed
//!   hot path never touches the allocator.
//!
//! `bench_timeouts --check` runs the scaled-down config and asserts both
//! claims; the full run also writes `BENCH_timeouts.json`.

use osiris_kernel::{
    FaultEffect, FaultHook, Host, Probe, ProgramRegistry, RunOutcome, WatchdogConfig,
};
use osiris_metrics::SeriesValue;
use osiris_servers::{Os, OsConfig};

use crate::json::{Json, JsonObj};

/// Benchmark configuration.
#[derive(Clone, Copy, Debug)]
pub struct TimeoutBenchConfig {
    /// Request rounds in the steady-state (no-fault) allocation runs.
    pub steady_rounds: u64,
    /// Hang incidents injected in the detection-latency run.
    pub hang_incidents: u64,
    /// Reads the process-wide allocation count, if the caller installed a
    /// counting allocator (see `counting_allocator!`).
    pub alloc_count: Option<fn() -> u64>,
}

impl Default for TimeoutBenchConfig {
    fn default() -> Self {
        TimeoutBenchConfig {
            steady_rounds: 400,
            hang_incidents: 12,
            alloc_count: None,
        }
    }
}

impl TimeoutBenchConfig {
    /// Scaled-down configuration for the CI gate (`bench_timeouts
    /// --check`).
    pub fn quick() -> TimeoutBenchConfig {
        TimeoutBenchConfig {
            steady_rounds: 120,
            hang_incidents: 5,
            alloc_count: None,
        }
    }
}

/// The measurements.
#[derive(Clone, Copy, Debug)]
pub struct TimeoutBenchResult {
    /// Watchdog configuration the runs used (for the bound).
    pub watchdog: WatchdogConfig,
    /// Hang incidents the fault hook actually injected.
    pub hangs: u64,
    /// Samples in the detection-latency histogram (hung verdicts).
    pub detect_count: u64,
    /// Exact largest detection latency observed, virtual cycles.
    pub detect_max: u64,
    /// Mean detection latency, virtual cycles.
    pub detect_mean: f64,
    /// The bound: max armed deadline + one heartbeat period.
    pub detect_bound: u64,
    /// The heartbeat period the bound uses.
    pub heartbeat: u64,
    /// Rounds per steady-state run (the increment base).
    pub steady_rounds: u64,
    /// Allocator-call increment (double run minus single run), watchdog
    /// disabled, if a counter was installed.
    pub allocs_off: Option<u64>,
    /// Allocator-call increment with the watchdog armed on every request.
    pub allocs_on: Option<u64>,
}

impl TimeoutBenchResult {
    /// The latency claim: every hung verdict landed within the armed
    /// deadline plus one heartbeat period.
    pub fn detection_within_bound(&self) -> bool {
        self.detect_count > 0 && self.detect_max <= self.detect_bound
    }

    /// Allocator calls the armed-deadline hot path added per steady-state
    /// run (`None` without a counting allocator).
    pub fn armed_hot_path_allocs(&self) -> Option<i64> {
        Some(self.allocs_on? as i64 - self.allocs_off? as i64)
    }

    /// The allocation claim: arming deadlines on every request adds zero
    /// allocator calls in steady state.
    pub fn zero_armed_allocs(&self) -> bool {
        self.armed_hot_path_allocs() == Some(0)
    }

    /// Renders a human-readable summary.
    pub fn render(&self) -> String {
        let allocs = |v: Option<u64>| match v {
            Some(n) => format!("{n}"),
            None => "-".to_string(),
        };
        format!(
            "watchdog timeouts: {} hangs injected, {} hung verdicts\n\
             detection latency: max {} cycles, mean {:.0} cycles \
             (bound: deadline {} + heartbeat {} = {})\n\
             steady-state allocator increment over {} rounds: \
             watchdog off {} calls, on {} calls (delta {})\n",
            self.hangs,
            self.detect_count,
            self.detect_max,
            self.detect_mean,
            self.detect_bound - self.heartbeat,
            self.heartbeat,
            self.detect_bound,
            self.steady_rounds,
            allocs(self.allocs_off),
            allocs(self.allocs_on),
            self.armed_hot_path_allocs()
                .map(|d| d.to_string())
                .unwrap_or_else(|| "-".to_string()),
        )
    }

    /// Machine-readable form (written to `BENCH_timeouts.json`).
    pub fn to_json(&self) -> Json {
        let opt = |v: Option<u64>| match v {
            Some(n) => Json::UInt(n),
            None => Json::Null,
        };
        JsonObj::new()
            .field("hangs_injected", Json::UInt(self.hangs))
            .field("hung_verdicts", Json::UInt(self.detect_count))
            .field("detect_max_cycles", Json::UInt(self.detect_max))
            .field("detect_mean_cycles", Json::Num(self.detect_mean))
            .field("detect_bound_cycles", Json::UInt(self.detect_bound))
            .field(
                "detection_within_bound",
                Json::Bool(self.detection_within_bound()),
            )
            .field("steady_rounds", Json::UInt(self.steady_rounds))
            .field("steady_allocs_watchdog_off", opt(self.allocs_off))
            .field("steady_allocs_watchdog_on", opt(self.allocs_on))
            .build()
    }
}

/// Wedges one component (fail-silent hang, no crash signal) whenever its
/// window is open and `interval` cycles have passed since the last wedge,
/// up to `remaining` incidents.
struct PeriodicHang {
    component: &'static str,
    interval: u64,
    next_at: u64,
    remaining: u64,
    injected: u64,
}

impl FaultHook for PeriodicHang {
    fn on_site(&mut self, probe: &Probe) -> FaultEffect {
        if self.remaining > 0
            && probe.now >= self.next_at
            && probe.window_open
            && probe.replyable
            && probe.component == self.component
        {
            self.next_at = probe.now + self.interval;
            self.remaining -= 1;
            self.injected += 1;
            FaultEffect::Hang
        } else {
            FaultEffect::None
        }
    }
}

/// The workload: a fixed number of put/get rounds against one key, with
/// transparent ECRASH retry so injected wedges never surface to the
/// program. One key keeps the store's footprint — and therefore the
/// allocation profile per round — constant across run lengths.
fn kv_registry(rounds: u64) -> ProgramRegistry {
    let mut registry = ProgramRegistry::new();
    registry.register("main", move |sys| {
        sys.set_retry_ecrash(true);
        for _ in 0..rounds {
            if sys.ds_put("bench-key", b"timeout-bench-payload").is_err() {
                return 1;
            }
            match sys.ds_get("bench-key") {
                Ok(v) if v == b"timeout-bench-payload" => {}
                _ => return 2,
            }
        }
        0
    });
    registry
}

fn run(cfg: OsConfig, hook: Option<Box<dyn FaultHook>>, rounds: u64) -> (RunOutcome, Os) {
    osiris_kernel::install_quiet_panic_hook();
    let mut os = Os::new(cfg);
    if let Some(h) = hook {
        os.set_fault_hook(h);
    }
    let mut host = Host::new(os, kv_registry(rounds));
    let outcome = host.run("main", &[]);
    (outcome, host.into_engine())
}

fn wd_cfg() -> OsConfig {
    OsConfig {
        watchdog: WatchdogConfig::on(),
        vm_frames: 2048,
        ..Default::default()
    }
}

/// Allocator calls consumed by one complete run (boot included).
fn run_allocs(cfg: &TimeoutBenchConfig, os_cfg: OsConfig, rounds: u64) -> Option<u64> {
    let count = cfg.alloc_count?;
    let before = count();
    let (outcome, _os) = run(os_cfg, None, rounds);
    assert!(
        matches!(outcome, RunOutcome::Completed { init_code: 0, .. }),
        "steady-state run must complete: {outcome:?}"
    );
    Some(count() - before)
}

/// Runs the measurements.
pub fn bench_timeouts(cfg: TimeoutBenchConfig) -> TimeoutBenchResult {
    // Detection-latency run: wedge the DS repeatedly; each wedge is only
    // visible through the watchdog (a hang has no crash signal).
    let os_cfg = wd_cfg();
    let wd = os_cfg.watchdog;
    let heartbeat = os_cfg.cost.heartbeat_interval;
    let hang_rounds = cfg.hang_incidents * 4 + 20;
    let mut os_cfg_hang = wd_cfg();
    os_cfg_hang.escalation = osiris_core::EscalationPolicy::unbounded();
    let hook = Box::new(PeriodicHang {
        component: "ds",
        interval: 1_000_000,
        next_at: 0,
        remaining: cfg.hang_incidents,
        injected: 0,
    });
    let (outcome, os) = run(os_cfg_hang, Some(hook), hang_rounds);
    assert!(
        matches!(outcome, RunOutcome::Completed { init_code: 0, .. }),
        "hang run must complete: {outcome:?}"
    );
    let hangs = os.metrics().hangs;
    let snap = os.metrics_snapshot();
    let hist = match snap.find("osiris_watchdog_detection_latency_cycles", &[]) {
        Some(SeriesValue::Hist(h)) => **h,
        _ => panic!("detection-latency histogram not registered"),
    };
    let detect_count = hist.count();
    let detect_max = hist.max();
    let detect_mean = if detect_count == 0 {
        0.0
    } else {
        hist.sum() as f64 / detect_count as f64
    };

    // Steady-state allocation increments: (2R rounds) − (R rounds), per
    // mode, cancels boot-time allocation differences (the slot table).
    let r = cfg.steady_rounds;
    let off = OsConfig {
        vm_frames: 2048,
        ..Default::default()
    };
    let allocs_off = run_allocs(&cfg, off.clone(), 2 * r)
        .zip(run_allocs(&cfg, off, r))
        .map(|(double, single)| double - single);
    let allocs_on = run_allocs(&cfg, wd_cfg(), 2 * r)
        .zip(run_allocs(&cfg, wd_cfg(), r))
        .map(|(double, single)| double - single);

    TimeoutBenchResult {
        watchdog: wd,
        hangs,
        detect_count,
        detect_max,
        detect_mean,
        detect_bound: wd.deadline.max(wd.deadline_state_modifying) + heartbeat,
        heartbeat,
        steady_rounds: r,
        allocs_off,
        allocs_on,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_holds_both_claims() {
        let r = bench_timeouts(TimeoutBenchConfig::quick());
        assert!(r.hangs >= 1, "the hook must wedge the DS: {r:?}");
        assert!(r.detect_count >= 1, "wedges must produce hung verdicts");
        assert!(
            r.detection_within_bound(),
            "detection latency {} exceeds bound {}",
            r.detect_max,
            r.detect_bound
        );
        // Without a counting allocator the alloc claim is unmeasured.
        assert!(r.armed_hot_path_allocs().is_none());
        let j = r.to_json().pretty();
        assert!(j.contains("detect_max_cycles"));
        assert!(j.contains("detection_within_bound"));
    }
}
