//! Microbenchmark for the metrics-registry hot path.
//!
//! Drives an identical stream of metric writes (counter adds interleaved
//! with histogram observations) through three configurations and compares
//! nanoseconds per write:
//!
//! * **baseline** — no registry at all; a plain `u64` accumulator and a
//!   stack-local [`Log2Hist`]. This is what the instrumented code would
//!   cost if the instrumentation were deleted.
//! * **disabled** — handles registered against a [`MetricsHandle`] whose
//!   registry is off; every write is one relaxed atomic load and a
//!   predictable branch. Production runs that opt out of metrics ship this
//!   configuration, so its overhead over the baseline is the headline
//!   number (`bench_metrics` enforces ≤2% or ≤0.5 ns).
//! * **enabled** — full recording: counter writes are relaxed
//!   `fetch_add`s on a shared slot, histogram writes take the series
//!   mutex and bump a bucket.
//!
//! Slots are allocated once at registration, so enabled-mode steady state
//! must make **zero** allocator calls; when the caller supplies an
//! allocation counter (see `src/bin/bench_metrics.rs`) the harness proves
//! it.
//!
//! Methodology matches `trace_bench`: the three modes are timed
//! interleaved and each keeps its fastest repetition, because
//! sub-nanosecond deltas are far below run-to-run machine drift.

use std::hint::black_box;
use std::time::Instant;

use osiris_metrics::{Counter, Hist, MetricsConfig, MetricsHandle};
use osiris_rng::Rng;
use osiris_trace::hist::Log2Hist;

use crate::json::Json;
use crate::{DISABLED_BOUND_PCT, DISABLED_EPSILON_NS};

/// Benchmark configuration.
#[derive(Clone, Copy, Debug)]
pub struct MetricsBenchConfig {
    /// Measured rounds per repetition.
    pub rounds: u64,
    /// Metric writes per round (half counter adds, half observations).
    pub writes_per_round: u64,
    /// Rounds run before measuring, to warm caches and the registry.
    pub warmup_rounds: u64,
    /// Reads the process-wide allocation count, if the caller installed a
    /// counting allocator. Used to prove enabled-mode recording makes zero
    /// allocator calls once registration is done.
    pub alloc_count: Option<fn() -> u64>,
}

impl Default for MetricsBenchConfig {
    fn default() -> Self {
        MetricsBenchConfig {
            rounds: 400,
            writes_per_round: 4_096,
            warmup_rounds: 8,
            alloc_count: None,
        }
    }
}

impl MetricsBenchConfig {
    /// Scaled-down configuration for CI gates (`bench_metrics --check`):
    /// big enough for stable min-of-reps timing, small enough to finish in
    /// well under a second.
    pub fn quick() -> MetricsBenchConfig {
        MetricsBenchConfig {
            rounds: 100,
            writes_per_round: 2_048,
            warmup_rounds: 4,
            alloc_count: None,
        }
    }
}

/// Measurements for one registry configuration.
#[derive(Clone, Copy, Debug)]
pub struct MetricsModeResult {
    /// Nanoseconds per metric write (fastest repetition).
    pub ns_per_write: f64,
    /// Metric writes per second implied by `ns_per_write`.
    pub writes_per_sec: f64,
    /// Allocator calls during one measured (post-warmup) repetition, if an
    /// allocation counter was supplied.
    pub steady_state_allocs: Option<u64>,
}

/// The full comparison.
#[derive(Clone, Copy, Debug)]
pub struct MetricsBenchResult {
    /// Configuration echoed back.
    pub rounds: u64,
    /// Configuration echoed back.
    pub writes_per_round: u64,
    /// No registry; plain field updates.
    pub baseline: MetricsModeResult,
    /// Registered handles against a disabled registry.
    pub disabled: MetricsModeResult,
    /// Full recording.
    pub enabled: MetricsModeResult,
    /// Counter total the enabled run accumulated (sanity: every write
    /// landed).
    pub counter_total: u64,
    /// Observations the enabled run's histogram recorded.
    pub observations: u64,
}

impl MetricsBenchResult {
    /// Disabled-registry overhead over the no-registry baseline, in
    /// percent (clamped at zero: timing jitter can make the disabled run
    /// faster).
    pub fn disabled_overhead_pct(&self) -> f64 {
        overhead_pct(self.baseline.ns_per_write, self.disabled.ns_per_write)
    }

    /// Disabled-registry overhead in absolute ns/write (clamped at zero).
    pub fn disabled_overhead_ns(&self) -> f64 {
        (self.disabled.ns_per_write - self.baseline.ns_per_write).max(0.0)
    }

    /// Enabled-registry overhead over the baseline, in percent.
    pub fn enabled_overhead_pct(&self) -> f64 {
        overhead_pct(self.baseline.ns_per_write, self.enabled.ns_per_write)
    }

    /// The headline check: a disabled registry costs at most
    /// [`DISABLED_BOUND_PCT`] percent over no registry at all, or at most
    /// [`DISABLED_EPSILON_NS`] absolute — whichever is more permissive,
    /// because on sub-10ns write paths the relative bound is finer than
    /// the clock.
    pub fn disabled_within_bound(&self) -> bool {
        self.disabled_overhead_pct() <= DISABLED_BOUND_PCT
            || self.disabled_overhead_ns() <= DISABLED_EPSILON_NS
    }

    /// Renders a human-readable summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "metrics registry: {} rounds x {} writes\n",
            self.rounds, self.writes_per_round
        ));
        let row = |name: &str, r: &MetricsModeResult| {
            let allocs = match r.steady_state_allocs {
                Some(n) => format!("{n}"),
                None => "-".to_string(),
            };
            format!(
                "{:<22} {:>8.2} ns/write {:>14.0} wr/s {:>8} allocs\n",
                name, r.ns_per_write, r.writes_per_sec, allocs
            )
        };
        out.push_str(&row("no registry", &self.baseline));
        out.push_str(&row("registered, disabled", &self.disabled));
        out.push_str(&row("registered, recording", &self.enabled));
        out.push_str(&format!(
            "disabled overhead: {:.2}% ({:.3} ns/write, bound {}% or {} ns)  \
             recording overhead: {:.2}%\n",
            self.disabled_overhead_pct(),
            self.disabled_overhead_ns(),
            DISABLED_BOUND_PCT,
            DISABLED_EPSILON_NS,
            self.enabled_overhead_pct()
        ));
        out.push_str(&format!(
            "enabled totals: counter {} / {} observations\n",
            self.counter_total, self.observations
        ));
        out
    }

    /// Machine-readable form (written to `BENCH_metrics.json`).
    pub fn to_json(&self) -> Json {
        let mode = |r: &MetricsModeResult| {
            crate::json::write_mode_json(r.ns_per_write, r.writes_per_sec, r.steady_state_allocs)
        };
        let obj = crate::json::JsonObj::new()
            .field("rounds", Json::UInt(self.rounds))
            .field("writes_per_round", Json::UInt(self.writes_per_round))
            .field("baseline_no_registry", mode(&self.baseline))
            .field("registered_disabled", mode(&self.disabled))
            .field("registered_recording", mode(&self.enabled));
        crate::json::overhead_fields(
            obj,
            self.disabled_overhead_pct(),
            self.disabled_overhead_ns(),
            self.disabled_within_bound(),
            self.enabled_overhead_pct(),
        )
        .field("counter_total", Json::UInt(self.counter_total))
        .field("observations", Json::UInt(self.observations))
        .build()
    }
}

fn overhead_pct(base_ns: f64, mode_ns: f64) -> f64 {
    ((mode_ns - base_ns).max(0.0) / base_ns.max(1e-9)) * 100.0
}

/// One precomputed metric write; the schedule is generated outside the
/// timed loop so the measurement isolates the write path itself. The mix
/// alternates counter adds and histogram observations so both hot paths
/// are on the measured loop.
#[derive(Clone, Copy)]
enum Op {
    Add(u64),
    Observe(u64),
}

fn gen_schedule(r: &mut Rng, writes: u64) -> Vec<Op> {
    (0..writes)
        .map(|i| {
            // Small deltas and latency-like magnitudes, as production
            // counters see.
            let v = r.below(1 << 14) + 1;
            if i % 2 == 0 {
                Op::Add(v % 7 + 1)
            } else {
                Op::Observe(v)
            }
        })
        .collect()
}

/// Plain-field state standing in for un-instrumented code.
struct Baseline {
    total: u64,
    hist: Log2Hist,
}

/// Registered handles (shared between the disabled and enabled modes'
/// setup paths, with independent registries).
struct Registered {
    handle: MetricsHandle,
    counter: Counter,
    hist: Hist,
}

fn register(cfg: MetricsConfig) -> Registered {
    let handle = MetricsHandle::new(cfg);
    let counter = handle.counter(
        "osiris_bench_ops_total",
        "benchmark counter",
        &[("component", "bench")],
    );
    let hist = handle.hist(
        "osiris_bench_latency_cycles",
        "benchmark histogram",
        &[("component", "bench")],
    );
    Registered {
        handle,
        counter,
        hist,
    }
}

#[inline]
fn run_baseline(b: &mut Baseline, ops: &[Op]) {
    for op in ops {
        match *op {
            Op::Add(v) => b.total = b.total.wrapping_add(v),
            Op::Observe(v) => b.hist.record(v),
        }
    }
    // Keep the accumulator alive so the adds aren't folded away.
    black_box(b.total);
}

#[inline]
fn run_registered(r: &Registered, ops: &[Op]) {
    for op in ops {
        match *op {
            Op::Add(v) => r.counter.add(v),
            Op::Observe(v) => r.hist.observe(v),
        }
    }
}

/// Timing repetitions per mode, interleaved (baseline rep, disabled rep,
/// enabled rep, baseline rep, …); fastest repetition kept per mode.
const REPS: usize = 9;

/// Runs the comparison.
pub fn bench_metrics(cfg: MetricsBenchConfig) -> MetricsBenchResult {
    let mut r = Rng::new(0x3E7A);
    let ops = gen_schedule(&mut r, cfg.writes_per_round);

    let mut baseline = Baseline {
        total: 0,
        hist: Log2Hist::new(),
    };
    let disabled = register(MetricsConfig::off());
    let enabled = register(MetricsConfig::on());

    for _ in 0..cfg.warmup_rounds {
        run_baseline(&mut baseline, &ops);
        run_registered(&disabled, &ops);
        run_registered(&enabled, &ops);
    }

    let mut best = [f64::INFINITY; 3];
    let mut steady_allocs = [None; 3];
    for rep in 0..REPS {
        for mode in 0..3 {
            let allocs_before = cfg.alloc_count.map(|f| f());
            let start = Instant::now();
            for _ in 0..cfg.rounds {
                match mode {
                    0 => run_baseline(&mut baseline, &ops),
                    1 => run_registered(&disabled, &ops),
                    _ => run_registered(&enabled, &ops),
                }
            }
            let secs = start.elapsed().as_secs_f64().max(1e-9);
            best[mode] = best[mode].min(secs);
            if rep == 0 {
                steady_allocs[mode] = cfg.alloc_count.map(|f| f() - allocs_before.unwrap_or(0));
            }
        }
    }

    let total_writes = cfg.rounds * cfg.writes_per_round;
    let result = |mode: usize| MetricsModeResult {
        ns_per_write: best[mode] * 1e9 / total_writes as f64,
        writes_per_sec: total_writes as f64 / best[mode],
        steady_state_allocs: steady_allocs[mode],
    };
    let counter_total = enabled.counter.get();
    let observations = enabled.hist.get().count();
    // The disabled registry must have recorded nothing at all.
    debug_assert_eq!(disabled.counter.get(), 0);
    debug_assert_eq!(disabled.handle.snapshot().families.len(), 2);
    MetricsBenchResult {
        rounds: cfg.rounds,
        writes_per_round: cfg.writes_per_round,
        baseline: result(0),
        disabled: result(1),
        enabled: result(2),
        counter_total,
        observations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_sane_numbers() {
        let r = bench_metrics(MetricsBenchConfig::quick());
        assert!(r.baseline.ns_per_write > 0.0);
        assert!(r.disabled.ns_per_write > 0.0);
        assert!(r.enabled.ns_per_write > 0.0);
        // (warmup + REPS) rounds, half the writes are counter adds of ≥1.
        assert!(r.counter_total > 0);
        assert!(r.observations > 0);
        let j = r.to_json().pretty();
        assert!(j.contains("disabled_overhead_pct"));
        assert!(j.contains("registered_recording"));
    }
}
