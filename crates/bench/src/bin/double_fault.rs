//! CI smoke for the hardened recovery path: a transient crash on VFS's hot
//! read site (the primary) paired with a secondary fault *inside* the
//! recovery machinery — the kernel's rollback/restart/reconciliation phases
//! and the RS conduct sites — via [`DoubleInjector`]. The campaign must
//! complete with survivability above zero, never classify a run as an
//! uncontrolled crash, and carry the `during-recovery` model through
//! `campaign_report.json`; the fallback and journal-integrity metric
//! families must be present in the Prometheus export. Exits nonzero
//! otherwise — the gate `ci.sh` runs.
//!
//! ```text
//! cargo run --release -p osiris-bench --bin double_fault
//! ```

use osiris_core::PolicyKind;
use osiris_faults::{
    classify_run, plan_faults, Campaign, DoubleInjector, FaultKind, FaultModel, FaultPlan, Outcome,
    RecoveryActionTag, SiteId, SiteKindTag, SiteProfile,
};
use osiris_kernel::abi::{Errno, OpenFlags};
use osiris_kernel::{Host, ProgramRegistry};
use osiris_servers::{Os, OsConfig};

/// The recovery-triggering primary: one transient crash on the hot read
/// path, same site the table campaigns hammer.
fn primary() -> FaultPlan {
    FaultPlan {
        site: SiteId {
            component: "vfs".to_string(),
            site: "vfs.read.entry".to_string(),
            kind: SiteKindTag::Block,
        },
        kind: FaultKind::Crash,
        transient: true,
    }
}

/// A client holding no VFS state across the crashing read, tolerant of the
/// one virtualized `E_CRASH` reply, which then proves the recovered server
/// still serves fresh work. Works unchanged whether the recovery rolls
/// back, degrades to a fresh restart, or is re-driven after an RS crash.
fn registry() -> ProgramRegistry {
    let mut registry = ProgramRegistry::new();
    registry.register("main", |sys| {
        let fd = match sys.open("/tmp/df", OpenFlags::RDWR_CREATE) {
            Ok(fd) => fd,
            Err(_) => return 10,
        };
        if sys.write(fd, &[7u8; 128]).is_err() {
            return 11;
        }
        if sys.close(fd).is_err() || sys.unlink("/tmp/df").is_err() {
            return 12;
        }
        match sys.read(fd, 32) {
            Err(Errno::ECRASH) => {}
            _ => return 13,
        }
        match sys.read(fd, 32) {
            Err(Errno::EBADF) => {}
            _ => return 14,
        }
        let fd2 = match sys.open("/tmp/df2", OpenFlags::RDWR_CREATE) {
            Ok(fd) => fd,
            Err(_) => return 15,
        };
        if sys.write(fd2, &[9u8; 64]).is_err() {
            return 16;
        }
        if sys.close(fd2).is_err() || sys.unlink("/tmp/df2").is_err() {
            return 17;
        }
        0
    });
    registry
}

fn run_one(secondary: &FaultPlan, campaign: &Campaign) -> (Outcome, String) {
    let mut cfg = OsConfig::with_policy(PolicyKind::Enhanced);
    // Retain the axiom: run_attribution folds its record stream into the
    // per-injection recovery critical path (zeros without retention).
    cfg.axiom = osiris_axiom::AxiomConfig::on();
    let mut os = Os::new(cfg);
    os.set_fault_hook(Box::new(DoubleInjector::new(&primary(), secondary)));
    let mut host = Host::new(os, registry());
    let outcome = host.run("main", &[]);
    let os = host.into_engine();
    let violations = if outcome.completed() {
        os.audit().len()
    } else {
        0
    };
    let m = os.metrics();
    let class = classify_run(&outcome, violations, m.quarantines);
    let (critical_path, span_latency_clean, span_latency_recovery) =
        osiris_faults::run_attribution(os.kernel().axiom().records(), &os.metrics_snapshot());
    campaign.record(osiris_faults::InjectionRecord {
        site: secondary.site.clone(),
        kind: secondary.kind,
        policy: PolicyKind::Enhanced.to_string(),
        outcome: class,
        action: RecoveryActionTag::from_counts(
            m.recovered_rollback,
            m.recovered_fresh,
            m.recovered_quiescent,
            m.recovered_naive,
            m.controlled_shutdowns,
        ),
        run_cycles: os.kernel().now(),
        recoveries: m.recovered_rollback
            + m.recovered_fresh
            + m.recovered_quiescent
            + m.recovered_naive,
        recovery_cycles: m.recovery_cycles,
        critical_path,
        span_latency_clean,
        span_latency_recovery,
        blackbox: None,
    });
    println!(
        "  {:<28} -> {class}",
        format!("{}:{}", secondary.site.component, secondary.site.site)
    );
    (class, os.metrics_prometheus())
}

fn main() {
    osiris_kernel::install_quiet_panic_hook();

    // The secondary plans are synthesized (recovery sites never show up in
    // a fault-free profile), so the profile argument is unused.
    let plans = plan_faults(&SiteProfile::default(), FaultModel::DuringRecovery, 1);
    let campaign = Campaign::new(
        "double-fault-smoke",
        FaultModel::DuringRecovery,
        plans.len(),
    );
    println!(
        "transient crash on vfs.read.entry + secondary in the recovery path, {} runs:",
        plans.len()
    );

    let mut classes = Vec::new();
    let mut family_checked = false;
    let mut failed = false;
    for plan in &plans {
        let (class, prom) = run_one(plan, &campaign);
        classes.push(class);
        // The new metric families must be registered in every kernel; check
        // the export of the rollback-phase run where both fire.
        if plan.site.site == "kernel.recovery.rollback" {
            family_checked = true;
            for family in [
                "osiris_recovery_fallback_total",
                "osiris_journal_integrity_checks_total",
                "osiris_recovery_fallback_intent_replays_total",
            ] {
                if !prom.contains(family) {
                    eprintln!("double_fault: metric family {family} missing from export");
                    failed = true;
                }
            }
        }
    }

    let out = std::env::var("OSIRIS_CAMPAIGN_OUT")
        .unwrap_or_else(|_| "target/double_fault_report.json".to_string());
    if let Some(parent) = std::path::Path::new(&out).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create report dir");
        }
    }
    let report = campaign.report_json().pretty();
    std::fs::write(&out, &report).expect("write campaign report");
    println!("(report written to {out})");

    // The gate: the campaign survives faults in its own recovery path.
    if classes.contains(&Outcome::Crash) {
        eprintln!("double_fault: a fault during recovery crashed the system");
        failed = true;
    }
    let survived = classes
        .iter()
        .filter(|c| {
            matches!(
                c,
                Outcome::Pass | Outcome::Fail | Outcome::Degraded | Outcome::Quarantined
            )
        })
        .count();
    if survived == 0 {
        eprintln!("double_fault: zero survivability under faults during recovery");
        failed = true;
    }
    if !report.contains("during-recovery") {
        eprintln!("double_fault: report JSON does not carry the during-recovery model");
        failed = true;
    }
    if !family_checked {
        eprintln!("double_fault: rollback-phase plan missing from the synthesized set");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "ok: {survived}/{} runs survived; during-recovery model and fallback metric families present",
        classes.len()
    );
}
