//! Regenerates Table V: the slowdown of the recovery instrumentation
//! (always-on vs window-gated, pessimistic vs enhanced).

fn main() {
    let rows = osiris_bench::table5(1.0);
    print!("{}", osiris_bench::render_table5(&rows));
}
