//! Fail-silent watchdog gate: hang-detection latency bound and
//! zero-allocation armed-deadline hot path, with allocator-call counting.
//!
//! `--check` runs the scaled-down workload and enforces both invariants
//! without writing the JSON artifact — the CI gate.

use osiris_bench::{bench_timeouts, TimeoutBenchConfig};

osiris_bench::counting_allocator!();

fn main() {
    let check = std::env::args().any(|a| a == "--check" || a == "--quick");
    let mut cfg = if check {
        TimeoutBenchConfig::quick()
    } else {
        TimeoutBenchConfig::default()
    };
    cfg.alloc_count = Some(alloc_calls);

    let result = bench_timeouts(cfg);
    print!("{}", result.render());

    if !check {
        std::fs::write("BENCH_timeouts.json", result.to_json().pretty())
            .expect("write BENCH_timeouts.json");
        println!("results written to BENCH_timeouts.json");
    }

    // The two headline claims, enforced so regressions fail loudly in CI.
    assert!(
        result.detection_within_bound(),
        "hang-detection latency {} cycles exceeds the armed-deadline + \
         one-heartbeat bound of {} cycles",
        result.detect_max,
        result.detect_bound,
    );
    let delta = result.armed_hot_path_allocs().expect("counter installed");
    assert_eq!(
        delta, 0,
        "arming deadlines must not touch the allocator in steady state \
         (saw {delta} extra calls over {} rounds)",
        result.steady_rounds,
    );
    println!(
        "OK: detection within bound ({} <= {}), armed hot path added {} allocator calls",
        result.detect_max, result.detect_bound, delta
    );
}
