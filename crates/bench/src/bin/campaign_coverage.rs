//! Coverage gate for the snapshot-fork campaign forge.
//!
//! Runs the coverage-guided sweep (reachability boundaries, the
//! quickstart-scale workload) with the fail-silent wave enabled and
//! enforces the sweep-completeness gates: 100% of the planned FailStop
//! matrix, ≥90% of the full DoubleFault × DuringRecovery space within the
//! budget, 100% of the fail-silent Hang and ReplyDrop plan space (every
//! watchdog-detected fault kind at every core server, per policy), plus a
//! live frontier (the policy spread must produce outcome-class flips, or
//! the coverage-guided wave has nothing to refine). Unless invoked with
//! `--check`, writes the coverage report to `<base>.json` and the
//! campaign registry's Prometheus exposition (which carries the
//! `osiris_forge_*` families) to `<base>.prom`, where `<base>` is
//! `$OSIRIS_FORGE_OUT` or `campaign_coverage`.
//!
//! ```text
//! cargo run --release -p osiris-bench --bin campaign_coverage [--check]
//! ```

use osiris_bench::RECOVERY_COVERAGE_FLOOR;
use osiris_faults::{forge_config_fail_silent, Forge, ForgeConfig};

fn main() {
    let check = std::env::args().any(|a| a == "--check" || a == "--quick");
    let forge = Forge::new(ForgeConfig {
        // The fail-silent wave (hang / stall / reply-drop / reply-corrupt
        // at every core server, per policy) requires armed deadlines, so
        // the whole sweep runs under the watchdog-enabled config. The
        // budget absorbs the extra wave without deferring anything — the
        // `dropped == 0` gate below keeps that honest.
        fail_silent_wave: true,
        os_config: forge_config_fail_silent,
        budget: 1024,
        ..ForgeConfig::default()
    });
    let result = forge.run();
    let report = &result.report;

    println!("{}", result.campaign.render_matrix());
    println!(
        "coverage: fail-stop {:.0}% ({}/{} cells), recovery space {:.0}% ({}/{} cells)",
        report.fail_stop_pct(),
        report.fail_stop.1,
        report.fail_stop.0,
        report.recovery_space_pct(),
        report.recovery_space.1,
        report.recovery_space.0,
    );
    println!(
        "fail-silent: {:.0}% ({}/{} cells; hang {}/{}, reply-drop {}/{})",
        report.fail_silent_pct(),
        report.fail_silent.1,
        report.fail_silent.0,
        report.fail_silent_hang.1,
        report.fail_silent_hang.0,
        report.fail_silent_reply_drop.1,
        report.fail_silent_reply_drop.0,
    );
    println!(
        "frontier: {} flips across {} sites, {} refinements, {} outcome cells",
        report.frontier.flips,
        report.frontier.sites.len(),
        report.refinements,
        report.outcome_cells,
    );

    if !check {
        let base =
            std::env::var("OSIRIS_FORGE_OUT").unwrap_or_else(|_| "campaign_coverage".to_string());
        std::fs::write(format!("{base}.json"), result.report_json().pretty())
            .expect("write coverage report");
        std::fs::write(
            format!("{base}.prom"),
            result.campaign.metrics_handle().prometheus(),
        )
        .expect("write coverage exposition");
        println!("results written to {base}.json / {base}.prom");
    }

    assert_eq!(
        report.fail_stop_pct(),
        100.0,
        "FailStop matrix not fully covered: {:?}",
        report.fail_stop
    );
    assert!(
        report.recovery_space_pct() >= RECOVERY_COVERAGE_FLOOR,
        "DoubleFault x DuringRecovery coverage {:.0}% below {RECOVERY_COVERAGE_FLOOR}% \
         within the default budget",
        report.recovery_space_pct()
    );
    assert!(
        report.fail_silent_hang.0 > 0,
        "the fail-silent wave must plan hang cells"
    );
    assert_eq!(
        report.fail_silent_hang_pct(),
        100.0,
        "fail-silent Hang plan space not fully covered: {:?}",
        report.fail_silent_hang
    );
    assert!(
        report.fail_silent_reply_drop.0 > 0,
        "the fail-silent wave must plan reply-drop cells"
    );
    assert_eq!(
        report.fail_silent_reply_drop_pct(),
        100.0,
        "fail-silent ReplyDrop plan space not fully covered: {:?}",
        report.fail_silent_reply_drop
    );
    assert!(
        report.frontier.flips > 0,
        "no recovery-failure frontier found — the policy sweep should disagree somewhere"
    );
    assert_eq!(
        report.dropped, 0,
        "the budget must not truncate the base waves"
    );
    println!(
        "OK: coverage {:.0}%/{:.0}%/{:.0}%, {} frontier flips",
        report.fail_stop_pct(),
        report.recovery_space_pct(),
        report.fail_silent_pct(),
        report.frontier.flips
    );
}
