//! Snapshot-fork campaign benchmark with allocator-call counting.
//!
//! Runs the forge's late-window fault campaign and a from-boot rerun
//! baseline over the same variant plan, proves the forged records are
//! byte-identical to the from-boot records, enforces the throughput and
//! allocation-discipline gates, and writes `BENCH_campaign.json`.
//!
//! `--check` shrinks the baseline sample (the CI gate); the forge sweep,
//! the prefix length and every gate stay unchanged.

use osiris_bench::{
    bench_campaign, CampaignBenchConfig, READOPT_ALLOC_BOUND, RECOVERY_COVERAGE_FLOOR,
    SPEEDUP_FLOOR,
};

osiris_bench::counting_allocator!();

fn main() {
    let check = std::env::args().any(|a| a == "--check" || a == "--quick");
    let mut cfg = if check {
        CampaignBenchConfig::quick()
    } else {
        CampaignBenchConfig::default()
    };
    cfg.alloc_count = Some(alloc_calls);

    let result = bench_campaign(cfg);
    print!("{}", result.render());

    if !check {
        std::fs::write("BENCH_campaign.json", result.to_json().pretty())
            .expect("write BENCH_campaign.json");
        println!("results written to BENCH_campaign.json");
    }

    assert_eq!(
        result.record_mismatches, 0,
        "forged records must be byte-identical to from-boot reruns"
    );
    assert!(
        result.speedup() >= SPEEDUP_FLOOR,
        "forged throughput {:.1}x from-boot is below the {SPEEDUP_FLOOR}x floor \
         ({:.0} vs {:.0} inj/s)",
        result.speedup(),
        result.forge_rate,
        result.baseline_rate,
    );
    let allocs = result.readopt_allocs.expect("counter installed");
    assert!(
        allocs.small_prefix <= READOPT_ALLOC_BOUND && allocs.large_prefix <= READOPT_ALLOC_BOUND,
        "snapshot adoption allocates too much: {} / {} calls (bound {READOPT_ALLOC_BOUND})",
        allocs.small_prefix,
        allocs.large_prefix,
    );
    assert_eq!(
        allocs.small_prefix, allocs.large_prefix,
        "adoption allocator calls must not grow with prefix length"
    );
    let report = &result.forge.report;
    assert_eq!(
        report.fail_stop_pct(),
        100.0,
        "FailStop matrix not fully covered: {:?}",
        report.fail_stop
    );
    assert!(
        report.recovery_space_pct() >= RECOVERY_COVERAGE_FLOOR,
        "DoubleFault x DuringRecovery coverage {:.0}% below {RECOVERY_COVERAGE_FLOOR}%",
        report.recovery_space_pct()
    );
    println!(
        "OK: {:.1}x forged vs from-boot, {} allocator calls per adoption at both prefix scales, \
         coverage {:.0}%/{:.0}%",
        result.speedup(),
        allocs.small_prefix,
        report.fail_stop_pct(),
        report.recovery_space_pct(),
    );
}
