//! Regenerates Table II: survivability under fail-stop fault injection,
//! one fault per triggered site, for all four recovery policies.

use osiris_faults::FaultModel;

fn main() {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let t = osiris_bench::survivability(FaultModel::FailStop, threads, 0xfa11_5709);
    print!("{}", t.render());
}
