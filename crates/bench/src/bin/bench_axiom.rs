//! Axiom emit-path microbenchmark with allocator-call counting.
//!
//! Installs a counting wrapper around the system allocator so the run can
//! *prove* the axiom log's "zero allocator calls in steady state" claim,
//! then benchmarks the control fold alone vs fold + disabled log vs full
//! digest-chained retention, and writes `BENCH_axiom.json`.
//!
//! `--check` runs a scaled-down workload and enforces the same invariants
//! without writing the JSON artifact — the CI gate.

use osiris_bench::{bench_axiom, AxiomBenchConfig};

osiris_bench::counting_allocator!();

fn main() {
    let check = std::env::args().any(|a| a == "--check" || a == "--quick");
    let mut cfg = if check {
        AxiomBenchConfig::quick()
    } else {
        AxiomBenchConfig::default()
    };
    cfg.alloc_count = Some(alloc_calls);

    let result = bench_axiom(cfg);
    print!("{}", result.render());

    if !check {
        std::fs::write("BENCH_axiom.json", result.to_json().pretty())
            .expect("write BENCH_axiom.json");
        println!("results written to BENCH_axiom.json");
    }

    // The two headline claims, enforced so regressions fail loudly in CI.
    let enabled_allocs = result
        .enabled
        .steady_state_allocs
        .expect("counter installed");
    assert_eq!(
        enabled_allocs, 0,
        "steady-state axiom retention must not touch the allocator"
    );
    assert!(
        result.disabled_within_bound(),
        "disabled recorder overhead {:.2}% ({:.3} ns/event) exceeds the {}%/{}ns bound",
        result.disabled_overhead_pct(),
        result.disabled_overhead_ns(),
        osiris_bench::DISABLED_BOUND_PCT,
        osiris_bench::DISABLED_EPSILON_NS,
    );
    println!(
        "OK: disabled overhead {:.2}% within bound, retention made {} allocator calls",
        result.disabled_overhead_pct(),
        enabled_allocs
    );
}
