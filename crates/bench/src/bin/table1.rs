//! Regenerates Table I: recovery coverage per server under the pessimistic
//! and enhanced policies, running the prototype test suite.

fn main() {
    let t = osiris_bench::table1();
    print!("{}", t.render());
}
