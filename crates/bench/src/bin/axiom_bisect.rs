//! Divergence bisection between two recorded axioms.
//!
//! ```text
//! axiom_bisect <a.bin> <b.bin>
//! ```
//!
//! Loads two axiom images, verifies each digest chain, and binary-searches
//! for the first event at which the two histories disagree — e.g. the
//! first recovery decision where an Enhanced campaign run behaved
//! differently from a Pessimistic one. Exit status: 0 when the logs are
//! identical, 1 when they diverge (the diverging records are printed),
//! 2 on usage or decode errors.

use std::process::ExitCode;

use osiris_axiom::{bisect, AxiomLog};

fn load(path: &str) -> Result<AxiomLog, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("read {path}: {e}"))?;
    let log = AxiomLog::from_bytes(&bytes).map_err(|e| format!("decode {path}: {e:?}"))?;
    log.verify()
        .map_err(|e| format!("chain broken in {path}: {e:?}"))?;
    Ok(log)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let (a_path, b_path) = match (args.get(1), args.get(2)) {
        (Some(a), Some(b)) => (a.clone(), b.clone()),
        _ => {
            eprintln!("usage: axiom_bisect <a.bin> <b.bin>");
            return ExitCode::from(2);
        }
    };
    let (a, b) = match (load(&a_path), load(&b_path)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("axiom_bisect: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "a: {a_path} — {} events, head {:016x}",
        a.len(),
        a.head_digest()
    );
    println!(
        "b: {b_path} — {} events, head {:016x}",
        b.len(),
        b.head_digest()
    );
    match bisect(a.records(), b.records()) {
        None => {
            println!("identical: the two runs recorded the same history");
            ExitCode::SUCCESS
        }
        Some(d) => {
            println!("{}", d.describe());
            ExitCode::from(1)
        }
    }
}
