//! Regenerates Table III: survivability under the full EDFI fault mix
//! (crashes, hangs, flipped branches, corrupted values).

use osiris_faults::FaultModel;

fn main() {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let t = osiris_bench::survivability(FaultModel::FullEdfi, threads, 0xedf1_edf1);
    print!("{}", t.render());
}
