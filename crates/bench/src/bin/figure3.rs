//! Regenerates Figure 3: Unixbench score as a function of the
//! service-disruption interval (periodic fail-stop faults injected into PM
//! inside its recovery window; benchmarks retry on E_CRASH and must finish
//! without functional degradation).

fn main() {
    let intervals: Vec<u64> = (0..10).map(|k| 25_000u64 << k).collect(); // 25k .. 12.8M cycles
    let points = osiris_bench::figure3(&intervals, 1.0);
    print!("{}", osiris_bench::render_figure3(&points, &intervals));
}
