//! Span record-path microbenchmark with allocator-call counting.
//!
//! Installs a counting wrapper around the system allocator so the run can
//! *prove* the span recorder's "zero allocator calls in steady state"
//! claim, then benchmarks bare span arithmetic vs arithmetic + disabled
//! recorders vs full recording (ring + registry), and writes
//! `BENCH_spans.json`.
//!
//! `--check` runs a scaled-down workload and enforces the same invariants
//! without writing the JSON artifact — the CI gate.

use osiris_bench::{bench_spans, SpanBenchConfig};

osiris_bench::counting_allocator!();

fn main() {
    let check = std::env::args().any(|a| a == "--check" || a == "--quick");
    let mut cfg = if check {
        SpanBenchConfig::quick()
    } else {
        SpanBenchConfig::default()
    };
    cfg.alloc_count = Some(alloc_calls);

    let result = bench_spans(cfg);
    print!("{}", result.render());

    if !check {
        std::fs::write("BENCH_spans.json", result.to_json().pretty())
            .expect("write BENCH_spans.json");
        println!("results written to BENCH_spans.json");
    }

    // The two headline claims, enforced so regressions fail loudly in CI.
    let enabled_allocs = result
        .enabled
        .steady_state_allocs
        .expect("counter installed");
    assert_eq!(
        enabled_allocs, 0,
        "steady-state span recording must not touch the allocator"
    );
    assert!(
        result.disabled_within_bound(),
        "disabled span-recorder overhead {:.2}% ({:.3} ns/msg) exceeds the {}%/{}ns bound",
        result.disabled_overhead_pct(),
        result.disabled_overhead_ns(),
        osiris_bench::DISABLED_BOUND_PCT,
        osiris_bench::DISABLED_EPSILON_NS,
    );
    println!(
        "OK: disabled overhead {:.2}% within bound, recording made {} allocator calls",
        result.disabled_overhead_pct(),
        enabled_allocs
    );
}
