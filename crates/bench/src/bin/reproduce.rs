//! Runs the complete evaluation: RCB accounting, Tables I-VI and Figure 3,
//! in paper order. Expect a few minutes of runtime for the fault-injection
//! campaigns.

use osiris_faults::FaultModel;

fn main() {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);

    println!("=== RCB (paper V-A) ===");
    let rcb = osiris_bench::count_workspace_loc();
    println!(
        "RCB {} LoC of {} total ({:.1}%)\n",
        rcb.rcb_total(),
        rcb.total(),
        rcb.rcb_pct()
    );

    println!("=== Table I ===");
    let table1 = osiris_bench::table1();
    println!("{}", table1.render());

    println!("=== Table II ===");
    let table2 = osiris_bench::survivability(FaultModel::FailStop, threads, 0xfa11_5709);
    println!("{}", table2.render());

    println!("=== Table III ===");
    let table3 = osiris_bench::survivability(FaultModel::FullEdfi, threads, 0xedf1_edf1);
    println!("{}", table3.render());

    println!("=== Table IV ===");
    let table4 = osiris_bench::table4(1.0);
    println!("{}", osiris_bench::render_table4(&table4));

    println!("=== Table V ===");
    let table5 = osiris_bench::table5(1.0);
    println!("{}", osiris_bench::render_table5(&table5));

    println!("=== Table VI ===");
    let table6 = osiris_bench::table6();
    println!("{}", osiris_bench::render_table6(&table6));

    println!("=== Figure 3 ===");
    let intervals: Vec<u64> = (0..10).map(|k| 25_000u64 << k).collect();
    let figure3 = osiris_bench::figure3(&intervals, 1.0);
    print!("{}", osiris_bench::render_figure3(&figure3, &intervals));

    let results = osiris_bench::ResultsJson {
        rcb,
        table1,
        table2: (&table2).into(),
        table3: (&table3).into(),
        table4,
        table5,
        table6,
        figure3,
    };
    let json = results.to_json().pretty();
    std::fs::write("reproduce_results.json", &json).expect("write results json");
    println!("\n(machine-readable copy written to reproduce_results.json)");

    // Full per-injection campaign report (matrix + records for both fault
    // models), the machine-readable companion to Tables II/III.
    let campaign = osiris_bench::Json::obj([
        ("fail_stop", table2.report.clone()),
        ("full_edfi", table3.report.clone()),
    ]);
    let campaign_path = std::env::var("OSIRIS_CAMPAIGN_OUT")
        .unwrap_or_else(|_| "target/campaign_report.json".to_string());
    if let Some(parent) = std::path::Path::new(&campaign_path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create campaign report dir");
        }
    }
    std::fs::write(&campaign_path, campaign.pretty()).expect("write campaign report");
    println!("(campaign report written to {campaign_path})");

    // Metrics registry exposition from one fault-free suite run.
    let metrics_base = std::env::var("OSIRIS_METRICS_OUT")
        .unwrap_or_else(|_| "target/reproduce_metrics".to_string());
    let (prom, mjson) =
        osiris_bench::export_suite_metrics(&metrics_base).expect("write metrics exports");
    println!(
        "(metrics written to {} and {})",
        prom.display(),
        mjson.display()
    );

    println!("\n=== Undo-journal microbenchmark ===");
    let undo = osiris_bench::bench_undo(osiris_bench::UndoBenchConfig::default());
    print!("{}", undo.render());
    std::fs::write("BENCH_undo.json", undo.to_json().pretty()).expect("write undo json");
    println!("(machine-readable copy written to BENCH_undo.json)");

    println!("\n=== Metrics-registry microbenchmark ===");
    let mb = osiris_bench::bench_metrics(osiris_bench::MetricsBenchConfig::default());
    print!("{}", mb.render());
    std::fs::write("BENCH_metrics.json", mb.to_json().pretty()).expect("write metrics json");
    println!("(machine-readable copy written to BENCH_metrics.json)");
}
