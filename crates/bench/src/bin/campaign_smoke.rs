//! CI smoke for the escalation ladder's campaign plumbing: a persistent
//! fail-stop crash loop on VFS's hot read site, run under both conservative
//! policies with a tight restart budget, must classify as the new
//! `degraded` / `quarantined` outcome classes and carry them through the
//! `campaign_report.json` document. Exits nonzero if either class is
//! missing — the gate `ci.sh` runs.
//!
//! ```text
//! cargo run --release -p osiris-bench --bin campaign_smoke
//! ```

use osiris_core::{EscalationPolicy, PolicyKind, RestartBudget};
use osiris_faults::{
    classify_run, Campaign, FaultKind, FaultModel, FaultPlan, Injector, Outcome, RecoveryActionTag,
    SiteId, SiteKindTag,
};
use osiris_kernel::abi::{Errno, OpenFlags};
use osiris_kernel::{Host, ProgramRegistry, RunOutcome};
use osiris_servers::{Os, OsConfig};

const READS: u32 = 10;

/// Tight ladder so the smoke quarantines after three restarts.
fn tight_ladder() -> EscalationPolicy {
    EscalationPolicy {
        budget: RestartBudget {
            window: 50_000_000,
            max_restarts: 3,
        },
        backoff_base: 5_000,
        backoff_max: 40_000,
        max_quarantined: 2,
    }
}

fn hot_read_plan() -> FaultPlan {
    FaultPlan {
        site: SiteId {
            component: "vfs".to_string(),
            site: "vfs.read.entry".to_string(),
            kind: SiteKindTag::Block,
        },
        kind: FaultKind::Crash,
        transient: false,
    }
}

/// Two clients against the crash-looping read path: the tolerant one
/// expects `E_CRASH` and exits 0 (→ degraded), the naive one treats any
/// read error as fatal and exits 1 (→ quarantined).
fn registry() -> ProgramRegistry {
    let mut registry = ProgramRegistry::new();
    registry.register("tolerant", |sys| {
        let fd = match sys.open("/tmp/smoke", OpenFlags::RDWR_CREATE) {
            Ok(fd) => fd,
            Err(_) => return 10,
        };
        if sys.write(fd, &[9u8; 256]).is_err() {
            return 11;
        }
        // Release all VFS state up front: a quarantined server never sees
        // exit-time cleanup, and leftovers would trip the audit.
        if sys.close(fd).is_err() || sys.unlink("/tmp/smoke").is_err() {
            return 12;
        }
        let mut bounced = 0;
        for _ in 0..READS {
            if let Err(Errno::ECRASH) = sys.read(fd, 32) {
                bounced += 1;
            }
        }
        if bounced == READS {
            0
        } else {
            13
        }
    });
    registry.register("naive", |sys| {
        let fd = match sys.open("/tmp/smoke", OpenFlags::RDWR_CREATE) {
            Ok(fd) => fd,
            Err(_) => return 10,
        };
        if sys.write(fd, &[9u8; 256]).is_err() {
            return 11;
        }
        if sys.close(fd).is_err() || sys.unlink("/tmp/smoke").is_err() {
            return 12;
        }
        let mut rc = 0;
        for _ in 0..READS {
            if sys.read(fd, 32).is_err() {
                rc = 1; // fatal to this program, but it still terminates
            }
        }
        rc
    });
    registry
}

fn run_one(program: &str, policy: PolicyKind, campaign: &Campaign) -> Outcome {
    let plan = hot_read_plan();
    let mut cfg = OsConfig::with_policy(policy);
    cfg.escalation = tight_ladder();
    // Retain the axiom: run_attribution folds its record stream into the
    // per-injection recovery critical path (zeros without retention).
    cfg.axiom = osiris_axiom::AxiomConfig::on();
    let mut os = Os::new(cfg);
    os.set_fault_hook(Box::new(Injector::new(&plan)));
    let mut host = Host::new(os, registry());
    let outcome = host.run(program, &[]);
    let os = host.into_engine();
    let violations = if outcome.completed() {
        os.audit().len()
    } else {
        0
    };
    let m = os.metrics();
    let class = classify_run(&outcome, violations, m.quarantines);
    let (critical_path, span_latency_clean, span_latency_recovery) =
        osiris_faults::run_attribution(os.kernel().axiom().records(), &os.metrics_snapshot());
    campaign.record(osiris_faults::InjectionRecord {
        site: plan.site,
        kind: plan.kind,
        policy: policy.to_string(),
        outcome: class,
        action: RecoveryActionTag::from_counts(
            m.recovered_rollback,
            m.recovered_fresh,
            m.recovered_quiescent,
            m.recovered_naive,
            m.controlled_shutdowns,
        ),
        run_cycles: os.kernel().now(),
        recoveries: m.recovered_rollback
            + m.recovered_fresh
            + m.recovered_quiescent
            + m.recovered_naive,
        recovery_cycles: m.recovery_cycles,
        critical_path,
        span_latency_clean,
        span_latency_recovery,
        blackbox: None,
    });
    if !matches!(outcome, RunOutcome::Completed { .. }) {
        eprintln!("campaign_smoke: {program}/{policy} did not terminate cleanly: {outcome:?}");
        std::process::exit(1);
    }
    println!("  {program:<10} {policy:<12} -> {class}");
    class
}

fn main() {
    osiris_kernel::install_quiet_panic_hook();

    let programs = ["tolerant", "naive"];
    let policies = [PolicyKind::Enhanced, PolicyKind::Pessimistic];
    let campaign = Campaign::new(
        "escalation-smoke",
        FaultModel::FailStop,
        programs.len() * policies.len(),
    );
    println!(
        "persistent fail-stop on vfs.read.entry, {} runs:",
        programs.len() * policies.len()
    );
    let mut classes = Vec::new();
    for policy in policies {
        for program in programs {
            classes.push(run_one(program, policy, &campaign));
        }
    }

    let out = std::env::var("OSIRIS_CAMPAIGN_OUT")
        .unwrap_or_else(|_| "target/campaign_smoke_report.json".to_string());
    if let Some(parent) = std::path::Path::new(&out).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create report dir");
        }
    }
    let report = campaign.report_json().pretty();
    std::fs::write(&out, &report).expect("write campaign report");
    println!("(report written to {out})");

    // The gate: both escalation outcome classes must be observed and must
    // survive the trip through the report document.
    let mut failed = false;
    for (class, label) in [
        (Outcome::Degraded, "degraded"),
        (Outcome::Quarantined, "quarantined"),
    ] {
        if !classes.contains(&class) {
            eprintln!("campaign_smoke: no run classified as {label}");
            failed = true;
        }
        if !report.contains(&format!("\"{label}\"")) {
            eprintln!("campaign_smoke: report JSON does not mention {label}");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("ok: degraded and quarantined classes present in the report");
}
