//! Copy-on-write restart microbenchmark with allocator-call counting.
//!
//! Installs a counting wrapper around the system allocator so the run can
//! *prove* the COW restore path's "zero allocator calls" claim, sweeps
//! restore latency and bytes copied across heap sizes and dirty ratios
//! (COW manifest vs the deep-copy reference image), and writes
//! `BENCH_restart.json`. With `--check`, additionally enforces the O(dirty)
//! gates: >=10x over the deep copy at the largest heap with <=1% dirty,
//! bytes copied bounded by the dirty set, zero restore-path allocations,
//! and a deduplicating clone pool.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use osiris_bench::{bench_restart, RestartBenchConfig};

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

/// System allocator wrapper that counts every allocation entry point.
struct CountingAlloc;

// SAFETY: delegates every operation unchanged to the system allocator; the
// counter is a relaxed atomic with no effect on allocation behavior.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_calls() -> u64 {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let cfg = RestartBenchConfig {
        alloc_count: Some(alloc_calls),
        ..Default::default()
    };
    let result = bench_restart(cfg);
    print!("{}", result.render());
    std::fs::write("BENCH_restart.json", result.to_json().pretty())
        .expect("write BENCH_restart.json");
    println!("results written to BENCH_restart.json");

    if check {
        if let Err(violation) = result.gate() {
            eprintln!("bench_restart --check FAILED: {violation}");
            std::process::exit(1);
        }
        println!("bench_restart --check passed: restart cost is O(dirty state)");
    }
}
