//! Copy-on-write restart microbenchmark with allocator-call counting.
//!
//! Installs a counting wrapper around the system allocator so the run can
//! *prove* the COW restore path's "zero allocator calls" claim, sweeps
//! restore latency and bytes copied across heap sizes and dirty ratios
//! (COW manifest vs the deep-copy reference image), and writes
//! `BENCH_restart.json`. With `--check`, additionally enforces the O(dirty)
//! gates: >=10x over the deep copy at the largest heap with <=1% dirty,
//! bytes copied bounded by the dirty set, zero restore-path allocations,
//! and a deduplicating clone pool.

use osiris_bench::{bench_restart, RestartBenchConfig};

osiris_bench::counting_allocator!();

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let cfg = RestartBenchConfig {
        alloc_count: Some(alloc_calls),
        ..Default::default()
    };
    let result = bench_restart(cfg);
    print!("{}", result.render());
    std::fs::write("BENCH_restart.json", result.to_json().pretty())
        .expect("write BENCH_restart.json");
    println!("results written to BENCH_restart.json");

    if check {
        if let Err(violation) = result.gate() {
            eprintln!("bench_restart --check FAILED: {violation}");
            std::process::exit(1);
        }
        println!("bench_restart --check passed: restart cost is O(dirty state)");
    }
}
