//! Undo-journal microbenchmark with allocator-call counting.
//!
//! Installs a counting wrapper around the system allocator so the run can
//! *prove* the typed journal's "zero allocator calls in steady state"
//! claim, then benchmarks the boxed-closure baseline against the typed
//! journal (with and without write coalescing) and writes `BENCH_undo.json`.

use osiris_bench::{bench_undo, UndoBenchConfig};

osiris_bench::counting_allocator!();

fn main() {
    let cfg = UndoBenchConfig {
        alloc_count: Some(alloc_calls),
        ..Default::default()
    };
    let result = bench_undo(cfg);
    print!("{}", result.render());

    let typed_allocs = result.typed.steady_state_allocs.expect("counter installed");
    println!(
        "steady-state allocator calls (typed, warm arena): {typed_allocs} \
         across {} windows x {} writes",
        result.windows, result.writes_per_window
    );
    std::fs::write("BENCH_undo.json", result.to_json().pretty()).expect("write BENCH_undo.json");
    println!("results written to BENCH_undo.json");

    // The two headline claims, enforced so regressions fail loudly in CI.
    assert!(
        result.speedup() >= 5.0,
        "typed journal logging overhead must be >=5x faster than the boxed baseline, got {:.2}x",
        result.speedup()
    );
    assert_eq!(
        typed_allocs, 0,
        "steady-state logging must not touch the allocator"
    );
}
