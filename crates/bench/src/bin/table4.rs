//! Regenerates Table IV: Unixbench analogs on the monolithic baseline
//! ("Linux") vs the uninstrumented compartmentalized OSIRIS baseline.

fn main() {
    let rows = osiris_bench::table4(1.0);
    print!("{}", osiris_bench::render_table4(&rows));
}
