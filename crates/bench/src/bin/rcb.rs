//! Reproduces the RCB accounting of paper §V-A: the share of the code base
//! that must be trusted to be free of faults.

fn main() {
    let report = osiris_bench::count_workspace_loc();
    println!("Reliable Computing Base accounting (SLOCCount analog)");
    println!("{:<14} {:>8}  RCB?", "Crate", "LoC");
    for c in &report.crates {
        println!(
            "{:<14} {:>8}  {}",
            c.name,
            c.loc,
            if c.rcb { "yes" } else { "" }
        );
    }
    println!("{:<14} {:>8}", "total", report.total());
    println!(
        "{:<14} {:>8}  ({:.1}% of the code base)",
        "RCB",
        report.rcb_total(),
        report.rcb_pct()
    );
}
