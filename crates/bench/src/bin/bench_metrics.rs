//! Metrics-registry microbenchmark with allocator-call counting.
//!
//! Installs a counting wrapper around the system allocator so the run can
//! *prove* the registry's "zero allocator calls in steady state" claim,
//! then benchmarks metric writes with no registry vs registered-but-off
//! handles vs full recording, and writes `BENCH_metrics.json`.
//!
//! `--check` runs a scaled-down workload and enforces the same invariants
//! without writing the JSON artifact — the CI gate.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use osiris_bench::{bench_metrics, MetricsBenchConfig};

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

/// System allocator wrapper that counts every allocation entry point.
struct CountingAlloc;

// SAFETY: delegates every operation unchanged to the system allocator; the
// counter is a relaxed atomic with no effect on allocation behavior.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_calls() -> u64 {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

fn main() {
    let check = std::env::args().any(|a| a == "--check" || a == "--quick");
    let mut cfg = if check {
        MetricsBenchConfig::quick()
    } else {
        MetricsBenchConfig::default()
    };
    cfg.alloc_count = Some(alloc_calls);

    let result = bench_metrics(cfg);
    print!("{}", result.render());

    if !check {
        std::fs::write("BENCH_metrics.json", result.to_json().pretty())
            .expect("write BENCH_metrics.json");
        println!("results written to BENCH_metrics.json");
    }

    // The two headline claims, enforced so regressions fail loudly in CI.
    let enabled_allocs = result
        .enabled
        .steady_state_allocs
        .expect("counter installed");
    assert_eq!(
        enabled_allocs, 0,
        "steady-state recording must not touch the allocator"
    );
    assert!(
        result.disabled_within_bound(),
        "disabled registry overhead {:.2}% ({:.3} ns/write) exceeds the {}%/{}ns bound",
        result.disabled_overhead_pct(),
        result.disabled_overhead_ns(),
        osiris_bench::DISABLED_BOUND_PCT,
        osiris_bench::DISABLED_EPSILON_NS,
    );
    println!(
        "OK: disabled overhead {:.2}% within bound, recording made {} allocator calls",
        result.disabled_overhead_pct(),
        enabled_allocs
    );
}
