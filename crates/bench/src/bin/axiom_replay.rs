//! Deterministic whole-system replay against a recorded axiom.
//!
//! Loads the axiom written by a previous `quickstart` run (path from the
//! first argument, `OSIRIS_AXIOM_OUT`, or `target/quickstart_axiom.bin`),
//! verifies its digest chain, then re-executes the identical quickstart
//! workload fresh. Because every event is timestamped by the virtual clock
//! and chained in sequence order, the fresh run must re-derive the
//! recorded history *exactly* — `bisect` of the two axioms must find no
//! divergence — and its reduction must match the live kernel's control
//! state and per-component statuses.
//!
//! The fresh run's trace and metrics exports are written alongside
//! (`OSIRIS_REPLAY_TRACE_OUT` / `OSIRIS_REPLAY_METRICS_OUT`); the `ci.sh`
//! `axiom_replay` gate byte-compares them against the recorded run's.
//! Finally the tool rebuilds a whole machine from the recorded bytes via
//! [`Os::replay`] — simulated reboot persistence — and cross-checks the
//! adopted control state.
//!
//! Exits non-zero (panics) on any chain corruption, divergence, or
//! reduction mismatch.

use std::sync::atomic::{AtomicBool, Ordering};

use osiris_axiom::{reduce, AxiomLog};
use osiris_core::PolicyKind;
use osiris_kernel::abi::{Errno, OpenFlags};
use osiris_kernel::{FaultEffect, FaultHook, Host, Probe, ProgramRegistry};
use osiris_servers::{Os, OsConfig};
use osiris_trace::TraceConfig;

/// The quickstart fault: a single fail-stop crash in PM's fork path.
struct CrashForkOnce(AtomicBool);

impl FaultHook for CrashForkOnce {
    fn on_site(&mut self, probe: &Probe) -> FaultEffect {
        if probe.site == "pm.fork.validate" && !self.0.swap(true, Ordering::Relaxed) {
            FaultEffect::Panic
        } else {
            FaultEffect::None
        }
    }
}

/// The quickstart programs, byte-for-byte the same syscall sequence the
/// recorded run executed.
fn quickstart_registry() -> ProgramRegistry {
    let mut registry = ProgramRegistry::new();
    registry.register("worker", |sys| {
        let fd = sys.open("/tmp/out", OpenFlags::CREATE).unwrap();
        sys.write(fd, b"results").unwrap();
        sys.close(fd).unwrap();
        sys.compute(10_000);
        7
    });
    registry.register("main", |sys| {
        let child = sys.spawn("worker", &[]).expect("spawn works");
        sys.waitpid(child).expect("waitpid works");
        match sys.fork_run(|_child| 0) {
            Err(Errno::ECRASH) => {}
            other => panic!("unexpected fork result: {other:?}"),
        }
        let child = sys.fork_run(|_child| 3).expect("PM recovered");
        sys.waitpid(child).expect("waitpid after recovery");
        0
    });
    registry
}

fn quickstart_cfg() -> OsConfig {
    let mut cfg = OsConfig::with_policy(PolicyKind::Enhanced);
    cfg.trace = TraceConfig::on();
    cfg.axiom = osiris_axiom::AxiomConfig::on();
    // Quickstart samples the virtual-time series and folds counter lanes
    // into its Chrome document; the replay must do the same for the
    // byte-compare to hold.
    cfg.timeseries = osiris_metrics::TimeseriesConfig::on();
    cfg
}

fn main() {
    osiris_kernel::install_quiet_panic_hook();

    // 1. Load and verify the recorded axiom.
    let recorded_path = std::env::args().nth(1).unwrap_or_else(|| {
        std::env::var("OSIRIS_AXIOM_OUT").unwrap_or_else(|_| "target/quickstart_axiom.bin".into())
    });
    let bytes = std::fs::read(&recorded_path)
        .unwrap_or_else(|e| panic!("read recorded axiom {recorded_path}: {e}"));
    let recorded = AxiomLog::from_bytes(&bytes).expect("decode recorded axiom");
    recorded.verify().expect("recorded chain intact");
    println!(
        "recorded:  {} chained events from {recorded_path} (head {:016x})",
        recorded.len(),
        recorded.head_digest()
    );

    // 2. Re-execute the identical workload fresh.
    let mut os = Os::new(quickstart_cfg());
    os.set_fault_hook(Box::new(CrashForkOnce(AtomicBool::new(false))));
    let mut host = Host::new(os, quickstart_registry());
    let outcome = host.run("main", &[]);
    let mut os = host.into_engine();
    assert!(outcome.completed(), "replayed workload must complete");
    println!(
        "replayed:  {} chained events re-derived (head {:016x})",
        os.axiom().len(),
        os.axiom().head_digest()
    );

    // 3. Export the fresh run's trace + metrics for the ci byte-compare.
    //    This happens before any verification so the metric counters sit
    //    exactly where the recorded run's did at its own export point
    //    (quickstart also exports before verifying).
    let trace_out = std::env::var("OSIRIS_REPLAY_TRACE_OUT")
        .unwrap_or_else(|_| "target/replay_trace.json".into());
    if let Some(parent) = std::path::Path::new(&trace_out).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create trace output dir");
        }
    }
    std::fs::write(&trace_out, os.chrome_trace().pretty()).expect("write replay trace");
    let metrics_base = std::env::var("OSIRIS_REPLAY_METRICS_OUT")
        .unwrap_or_else(|_| "target/replay_metrics".into());
    let (prom, json) = os
        .write_metrics(&metrics_base)
        .expect("write replay metrics");
    let ts_out = std::env::var("OSIRIS_REPLAY_TIMESERIES_OUT")
        .unwrap_or_else(|_| "target/replay_timeseries.json".into());
    let ts_path = os
        .write_timeseries(&ts_out)
        .expect("write replay timeseries");
    println!(
        "exports:   {trace_out}, {}, {} and {}",
        prom.display(),
        json.display(),
        ts_path.display()
    );
    os.verify_axiom().expect("fresh chain intact");

    // 4. The fresh run must re-derive the recorded history exactly.
    if let Some(d) = os.kernel().check_replay_divergence(recorded.records()) {
        panic!("replay diverged from the recorded axiom\n{}", d.describe());
    }
    println!("bisect:    no divergence — replay re-derived the recorded history");

    // 5. The pure reduction of the recorded log must equal the live
    //    control state, and both must agree with the kernel's own
    //    per-component bookkeeping.
    let reduced = reduce(recorded.records());
    assert_eq!(
        &reduced,
        os.control_state(),
        "reduce(recorded) must equal the live control state"
    );
    let statuses = os.kernel().status_codes();
    for (i, status) in statuses.iter().enumerate() {
        assert_eq!(
            reduced.status(i as u8),
            *status,
            "component {i} status must match the reduction"
        );
    }
    println!(
        "reduce:    control state reconstructed; {} component statuses cross-checked",
        statuses.len()
    );

    // 6. Simulated reboot persistence: rebuild a machine from the recorded
    //    bytes alone and confirm it adopted the proven history.
    let rebooted = Os::replay(quickstart_cfg(), &bytes).expect("rebuild from recorded axiom");
    assert_eq!(
        rebooted.control_state(),
        &reduced,
        "rebooted machine must adopt the recorded reduction"
    );
    assert_eq!(
        rebooted.axiom().head_digest(),
        recorded.head_digest(),
        "rebooted machine must continue the recorded chain"
    );
    println!(
        "reboot:    Os::replay rebuilt control state from {} bytes (head {:016x})",
        bytes.len(),
        rebooted.axiom().head_digest()
    );
    println!("OK: replay is consistent with the recorded axiom");
}
