//! Regenerates Table VI: per-component memory overhead (base state, spare
//! clone image, peak undo log).

fn main() {
    let rows = osiris_bench::table6();
    print!("{}", osiris_bench::render_table6(&rows));
}
