//! Ablation for the paper's §VII extension: requester-scoped SEEPs with the
//! kill-requester reconciliation (`enhanced-kill`) vs the stock enhanced
//! policy. The extension widens recovery windows across exit-path resource
//! releases, converting a slice of controlled shutdowns into survivals.

use osiris_core::PolicyKind;
use osiris_faults::FaultModel;

fn main() {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let t = osiris_bench::survivability_for(
        &[PolicyKind::Enhanced, PolicyKind::EnhancedKill],
        FaultModel::TransientFailStop,
        threads,
        0xfa11_5709,
    );
    print!("{}", t.render());
}
