//! Microbenchmark for copy-on-write restarts: chunked content-addressed
//! heap images vs the historical deep-copy images.
//!
//! Builds component heaps of increasing size, snapshots them into a
//! [`ChunkStore`]-backed manifest and into the deep-copy reference image,
//! then measures restore latency and bytes copied at dirty ratios of 0%,
//! 1%, 10% and 100% of the heap. The headline claim is that COW restore
//! cost is O(dirty state): at the largest heap with at most 1% dirtied,
//! restoring the manifest must be at least an order of magnitude faster
//! than the deep copy, and (when the caller supplies an allocation counter
//! — see `src/bin/bench_restart.rs`) the COW write-back must make zero
//! allocator calls, since clean chunks are skipped and dirty byte pages are
//! written into capacity the live buffers already own.
//!
//! A second scenario clones one image per simulated spare copy into the
//! shared store and reports deduplicated resident bytes against the
//! per-copy accounting, demonstrating the clone-pool dedup.

use std::time::Instant;

use osiris_checkpoint::{ChunkStore, Heap, PBuf, CHUNK_SIZE};
use osiris_rng::Rng;

use crate::json::Json;

/// Benchmark configuration.
#[derive(Clone, Debug)]
pub struct RestartBenchConfig {
    /// Heap sizes to sweep, in [`CHUNK_SIZE`]-byte pages (one page-sized
    /// buffer object per page, so dirty ratios map to whole objects).
    pub heap_pages: Vec<usize>,
    /// Dirty ratios to sweep, in percent of the heap's pages.
    pub dirty_pcts: Vec<u32>,
    /// Timing repetitions per point; the fastest is kept.
    pub reps: usize,
    /// Spare copies cloned into one shared store for the dedup scenario.
    pub pool_clones: usize,
    /// Reads the process-wide allocation count, if the caller installed a
    /// counting allocator. Used to prove the COW restore path makes zero
    /// allocator calls.
    pub alloc_count: Option<fn() -> u64>,
}

impl Default for RestartBenchConfig {
    fn default() -> Self {
        RestartBenchConfig {
            // 64 KiB, 1 MiB, 8 MiB.
            heap_pages: vec![16, 256, 2048],
            dirty_pcts: vec![0, 1, 10, 100],
            reps: 5,
            pool_clones: 6,
            alloc_count: None,
        }
    }
}

/// One (heap size, dirty ratio) measurement.
#[derive(Clone, Copy, Debug)]
pub struct RestartPoint {
    /// Heap size in KiB.
    pub heap_kb: f64,
    /// Requested dirty ratio in percent.
    pub dirty_pct: u32,
    /// Pages actually dirtied per repetition.
    pub dirty_pages: usize,
    /// Fastest copy-on-write restore, nanoseconds.
    pub cow_restore_ns: f64,
    /// Fastest deep-copy restore, nanoseconds.
    pub deep_restore_ns: f64,
    /// Bytes the COW restore actually copied back.
    pub cow_bytes_copied: u64,
    /// Bytes the deep restore copies (always the full image).
    pub deep_bytes_copied: u64,
    /// Chunks the COW restore skipped as clean.
    pub cow_clean_chunks: u64,
    /// Chunks the COW restore verified and wrote back.
    pub cow_dirty_chunks: u64,
    /// Allocator calls made by one measured COW restore, if a counter was
    /// supplied.
    pub cow_restore_allocs: Option<u64>,
}

impl RestartPoint {
    /// Deep-over-COW restore speedup at this point.
    pub fn speedup(&self) -> f64 {
        self.deep_restore_ns / self.cow_restore_ns.max(1.0)
    }
}

/// The clone-pool dedup scenario: identical spare copies share one store.
#[derive(Clone, Copy, Debug)]
pub struct PoolDedupResult {
    /// Spare copies cloned.
    pub clones: usize,
    /// What the pool would cost under per-copy accounting.
    pub per_copy_bytes: u64,
    /// Deduplicated bytes resident in the shared store.
    pub resident_bytes: u64,
    /// Chunk insertions satisfied by an already-resident chunk.
    pub dedup_hits: u64,
}

/// The full sweep.
#[derive(Clone, Debug)]
pub struct RestartBenchResult {
    /// Timing repetitions per point (fastest kept).
    pub reps: usize,
    /// All measured points, in sweep order.
    pub points: Vec<RestartPoint>,
    /// The clone-pool dedup scenario.
    pub pool: PoolDedupResult,
}

impl RestartBenchResult {
    /// The O(dirty) headline gate: at the largest heap with at most 1%
    /// dirtied, COW restore must beat the deep copy by at least 10x, every
    /// COW restore must copy no more than it dirtied (plus chunk rounding),
    /// and — when an allocation counter was installed — the COW write-back
    /// must not touch the allocator. Returns a description of the first
    /// violated claim.
    pub fn gate(&self) -> Result<(), String> {
        let largest = self.points.iter().map(|p| p.heap_kb).fold(0.0f64, f64::max);
        for p in &self.points {
            if p.heap_kb >= largest && p.dirty_pct <= 1 && p.speedup() < 10.0 {
                return Err(format!(
                    "O(dirty) claim violated: {:.0} KiB heap at {}% dirty restored only {:.1}x \
                     faster than the deep copy (need >=10x)",
                    p.heap_kb,
                    p.dirty_pct,
                    p.speedup()
                ));
            }
            let dirty_bound = (p.dirty_pages as u64 + 1) * CHUNK_SIZE as u64;
            if p.cow_bytes_copied > dirty_bound {
                return Err(format!(
                    "COW restore copied {} bytes with only {} pages dirty",
                    p.cow_bytes_copied, p.dirty_pages
                ));
            }
            if let Some(n) = p.cow_restore_allocs {
                if n != 0 {
                    return Err(format!(
                        "COW restore made {n} allocator calls at {:.0} KiB / {}% dirty (need 0)",
                        p.heap_kb, p.dirty_pct
                    ));
                }
            }
        }
        if self.pool.resident_bytes >= self.pool.per_copy_bytes {
            return Err(format!(
                "clone pool did not dedup: {} resident vs {} per-copy bytes",
                self.pool.resident_bytes, self.pool.per_copy_bytes
            ));
        }
        Ok(())
    }

    /// Renders a human-readable summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "restart: COW manifest vs deep-copy restore (best of {} reps)\n",
            self.reps
        ));
        out.push_str(&format!(
            "{:>9} {:>7} {:>12} {:>12} {:>9} {:>13} {:>13} {:>7}\n",
            "heap", "dirty", "cow-ns", "deep-ns", "speedup", "cow-copied", "deep-copied", "allocs"
        ));
        for p in &self.points {
            let allocs = match p.cow_restore_allocs {
                Some(n) => format!("{n}"),
                None => "-".to_string(),
            };
            out.push_str(&format!(
                "{:>7.0}kB {:>6}% {:>12.0} {:>12.0} {:>8.1}x {:>12}B {:>12}B {:>7}\n",
                p.heap_kb,
                p.dirty_pct,
                p.cow_restore_ns,
                p.deep_restore_ns,
                p.speedup(),
                p.cow_bytes_copied,
                p.deep_bytes_copied,
                allocs
            ));
        }
        out.push_str(&format!(
            "clone pool: {} spare copies, {} B per-copy -> {} B resident ({} dedup hits)\n",
            self.pool.clones,
            self.pool.per_copy_bytes,
            self.pool.resident_bytes,
            self.pool.dedup_hits
        ));
        out
    }

    /// Machine-readable form (written to `BENCH_restart.json`).
    pub fn to_json(&self) -> Json {
        let point = |p: &RestartPoint| {
            Json::obj([
                ("heap_kb", Json::Num(p.heap_kb)),
                ("dirty_pct", Json::UInt(p.dirty_pct as u64)),
                ("dirty_pages", Json::UInt(p.dirty_pages as u64)),
                ("cow_restore_ns", Json::Num(p.cow_restore_ns)),
                ("deep_restore_ns", Json::Num(p.deep_restore_ns)),
                ("speedup_deep_over_cow", Json::Num(p.speedup())),
                ("cow_bytes_copied", Json::UInt(p.cow_bytes_copied)),
                ("deep_bytes_copied", Json::UInt(p.deep_bytes_copied)),
                ("cow_clean_chunks", Json::UInt(p.cow_clean_chunks)),
                ("cow_dirty_chunks", Json::UInt(p.cow_dirty_chunks)),
                (
                    "cow_restore_allocs",
                    crate::json::alloc_count_json(p.cow_restore_allocs),
                ),
            ])
        };
        Json::obj([
            ("reps", Json::UInt(self.reps as u64)),
            ("chunk_size", Json::UInt(CHUNK_SIZE as u64)),
            ("points", Json::arr(&self.points, point)),
            (
                "pool",
                Json::obj([
                    ("clones", Json::UInt(self.pool.clones as u64)),
                    ("per_copy_bytes", Json::UInt(self.pool.per_copy_bytes)),
                    ("resident_bytes", Json::UInt(self.pool.resident_bytes)),
                    ("dedup_hits", Json::UInt(self.pool.dedup_hits)),
                ]),
            ),
        ])
    }
}

/// A component heap of `pages` page-sized buffers plus a handful of hot
/// cells, the shape of a real server's recoverable state.
struct World {
    bufs: Vec<PBuf>,
    /// Allocated so the image covers opaque objects too; never dirtied, so
    /// the restore's clean-skip path is exercised on both payload kinds.
    _cells: Vec<osiris_checkpoint::PCell<u64>>,
}

fn build_world(heap: &mut Heap, pages: usize, r: &mut Rng) -> World {
    let bufs: Vec<PBuf> = (0..pages).map(|_| heap.alloc_buf("page")).collect();
    for b in &bufs {
        b.write_at(heap, 0, &r.bytes(CHUNK_SIZE));
    }
    let cells = (0..4)
        .map(|_| heap.alloc_cell("cell", r.next_u64()))
        .collect();
    World {
        bufs,
        _cells: cells,
    }
}

/// Dirties `dirty_pages` buffers (one byte each — epoch divergence is what
/// matters, not volume) and one spare write that restores never see. The
/// cells stay clean so the zero-allocation claim covers the byte-page path
/// the write-back actually exercises.
fn dirty(heap: &mut Heap, w: &World, dirty_pages: usize, r: &mut Rng) {
    for b in w.bufs.iter().take(dirty_pages) {
        b.write_at(heap, r.below_usize(CHUNK_SIZE - 1), &[r.byte()]);
    }
}

fn dirty_count(pages: usize, pct: u32) -> usize {
    if pct == 0 {
        0
    } else {
        ((pages * pct as usize) / 100).max(1).min(pages)
    }
}

fn measure_point(pages: usize, pct: u32, cfg: &RestartBenchConfig) -> RestartPoint {
    let mut r = Rng::new(0xC0117 ^ ((pages as u64) << 8) ^ pct as u64);
    let mut heap = Heap::new("bench-restart");
    let w = build_world(&mut heap, pages, &mut r);
    let mut store = ChunkStore::new();
    let cow = heap.clone_image(&mut store, None);
    let deep = heap.clone_image_deep();
    let baseline = heap.state_digest();
    let dirty_pages = dirty_count(pages, pct);

    // COW restores: dirty (untimed), restore (timed), digest-checked.
    let mut cow_ns = f64::INFINITY;
    let mut stats = osiris_checkpoint::RestoreStats::default();
    let mut cow_restore_allocs = None;
    for rep in 0..cfg.reps {
        dirty(&mut heap, &w, dirty_pages, &mut r);
        let before = cfg.alloc_count.map(|f| f());
        let start = Instant::now();
        stats = heap.restore_image(&cow, &store).expect("cow restore");
        cow_ns = cow_ns.min(start.elapsed().as_nanos() as f64);
        if rep == 0 {
            cow_restore_allocs = cfg.alloc_count.map(|f| f() - before.unwrap_or(0));
        }
        assert_eq!(heap.state_digest(), baseline, "cow restore must be exact");
    }

    // Deep restores over the identical dirty schedule.
    let mut deep_ns = f64::INFINITY;
    for _ in 0..cfg.reps {
        dirty(&mut heap, &w, dirty_pages, &mut r);
        let start = Instant::now();
        heap.restore_image_deep(&deep);
        deep_ns = deep_ns.min(start.elapsed().as_nanos() as f64);
        assert_eq!(heap.state_digest(), baseline, "deep restore must be exact");
    }

    cow.release(&mut store);
    assert!(store.is_empty(), "bench leaked chunk refs");
    RestartPoint {
        heap_kb: (pages * CHUNK_SIZE) as f64 / 1024.0,
        dirty_pct: pct,
        dirty_pages,
        cow_restore_ns: cow_ns,
        deep_restore_ns: deep_ns,
        cow_bytes_copied: stats.bytes_restored as u64,
        deep_bytes_copied: deep.bytes() as u64,
        cow_clean_chunks: stats.clean_chunks,
        cow_dirty_chunks: stats.dirty_chunks,
        cow_restore_allocs,
    }
}

/// The dedup scenario: `clones` spare copies of the same component state
/// cloned into one shared store.
fn measure_pool(cfg: &RestartBenchConfig) -> PoolDedupResult {
    let pages = cfg.heap_pages.iter().copied().max().unwrap_or(16).min(256);
    let mut store = ChunkStore::new();
    let mut images = Vec::new();
    let mut per_copy = 0u64;
    for _ in 0..cfg.pool_clones {
        // Each spare copy comes from its own heap with identical content,
        // as the RS's clone pool holds one image per recovery epoch.
        let mut rr = Rng::new(0xD0D1);
        let mut heap = Heap::new("bench-pool");
        build_world(&mut heap, pages, &mut rr);
        let img = heap.clone_image(&mut store, None);
        per_copy += img.bytes() as u64;
        images.push(img);
    }
    let result = PoolDedupResult {
        clones: cfg.pool_clones,
        per_copy_bytes: per_copy,
        resident_bytes: store.resident_bytes() as u64,
        dedup_hits: store.dedup_hits(),
    };
    for img in images {
        img.release(&mut store);
    }
    assert!(store.is_empty(), "pool scenario leaked chunk refs");
    result
}

/// Runs the sweep.
pub fn bench_restart(cfg: RestartBenchConfig) -> RestartBenchResult {
    let mut points = Vec::new();
    for &pages in &cfg.heap_pages {
        for &pct in &cfg.dirty_pcts {
            points.push(measure_point(pages, pct, &cfg));
        }
    }
    let pool = measure_pool(&cfg);
    RestartBenchResult {
        reps: cfg.reps,
        points,
        pool,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_run_is_o_dirty() {
        let cfg = RestartBenchConfig {
            heap_pages: vec![8, 64],
            dirty_pcts: vec![0, 1, 100],
            reps: 2,
            pool_clones: 3,
            alloc_count: None,
        };
        let r = bench_restart(cfg);
        assert_eq!(r.points.len(), 6);
        for p in &r.points {
            assert!(p.cow_restore_ns > 0.0 && p.deep_restore_ns > 0.0);
            // O(dirty) accounting: copied bytes track the dirty pages, not
            // the heap size.
            assert!(p.cow_bytes_copied <= (p.dirty_pages as u64 + 1) * CHUNK_SIZE as u64);
            assert!(p.deep_bytes_copied as usize > p.dirty_pages * CHUNK_SIZE);
        }
        assert!(r.pool.resident_bytes < r.pool.per_copy_bytes);
        assert!(r.pool.dedup_hits > 0);
        let j = r.to_json().pretty();
        assert!(j.contains("speedup_deep_over_cow"));
        assert!(j.contains("dedup_hits"));
    }
}
