//! Microbenchmark for the flight-recorder hot path.
//!
//! Drives identical logged-write windows through a [`Heap`] under three
//! tracer configurations and compares nanoseconds per write:
//!
//! * **baseline** — no tracer attached; each emit point is one `Option`
//!   check.
//! * **disabled** — a [`TraceHandle`] is attached but tracing is off; each
//!   emit point additionally pays one branch on a bool the heap caches at
//!   window boundaries (see `Heap::set_tracer`). This is the configuration
//!   every production run ships with, so its overhead over the baseline is
//!   the headline number (`bench_trace` enforces ≤2%).
//! * **enabled** — full recording; each logged write lands one
//!   [`osiris_trace::TraceEvent`] in the preallocated ring.
//!
//! The ring is sized at [`TraceHandle::new`] time, so enabled-mode steady
//! state must make **zero** allocator calls; when the caller supplies an
//! allocation counter (see `src/bin/bench_trace.rs`) the harness proves it.
//!
//! Per-write deltas in the fraction-of-a-nanosecond range are at the edge
//! of what wall-clock timing resolves, so each mode keeps the fastest of
//! several repetitions and the pass criterion accepts either the relative
//! bound or a small absolute epsilon (see
//! [`TraceBenchResult::disabled_within_bound`]). Each repetition builds a
//! mode's state from scratch and drops it before the next mode runs: modes
//! then reuse the same freed allocator blocks, so they are compared on
//! identical data placement rather than on whatever cache-set alignment
//! three simultaneously-live heaps happen to get.

use std::time::Instant;

use osiris_checkpoint::Heap;
use osiris_rng::Rng;
use osiris_trace::{TraceConfig, TraceHandle};

use crate::json::Json;

/// Benchmark configuration.
#[derive(Clone, Copy, Debug)]
pub struct TraceBenchConfig {
    /// Recovery windows (mark → writes → rollback) per measured mode.
    pub windows: u64,
    /// Logged writes per window.
    pub writes_per_window: u64,
    /// Windows run before measuring, to warm caches, the undo arena and
    /// the trace ring.
    pub warmup_windows: u64,
    /// Reads the process-wide allocation count, if the caller installed a
    /// counting allocator. Used to prove enabled-mode recording makes zero
    /// allocator calls once the ring exists.
    pub alloc_count: Option<fn() -> u64>,
}

impl Default for TraceBenchConfig {
    fn default() -> Self {
        TraceBenchConfig {
            windows: 400,
            writes_per_window: 4_096,
            warmup_windows: 8,
            alloc_count: None,
        }
    }
}

impl TraceBenchConfig {
    /// A scaled-down configuration for CI gates (`bench_trace --check`):
    /// large enough to exercise ring wraparound and to keep min-of-reps
    /// timing stable against scheduler noise, small enough to finish in
    /// well under a second.
    pub fn quick() -> TraceBenchConfig {
        TraceBenchConfig {
            windows: 100,
            writes_per_window: 2_048,
            warmup_windows: 4,
            alloc_count: None,
        }
    }
}

/// Measurements for one tracer configuration.
#[derive(Clone, Copy, Debug)]
pub struct TraceModeResult {
    /// Nanoseconds per logged write (fastest repetition).
    pub ns_per_write: f64,
    /// Logged writes per second implied by `ns_per_write`.
    pub writes_per_sec: f64,
    /// Allocator calls during one measured (post-warmup) repetition, if an
    /// allocation counter was supplied.
    pub steady_state_allocs: Option<u64>,
}

/// The full comparison.
#[derive(Clone, Copy, Debug)]
pub struct TraceBenchResult {
    /// Configuration echoed back.
    pub windows: u64,
    /// Configuration echoed back.
    pub writes_per_window: u64,
    /// No tracer attached.
    pub baseline: TraceModeResult,
    /// Tracer attached but off — the shipping configuration.
    pub disabled: TraceModeResult,
    /// Full recording.
    pub enabled: TraceModeResult,
    /// Events the enabled run actually recorded (post-warmup repetitions).
    pub events_recorded: u64,
    /// Whether the enabled run's ring wrapped, i.e. the benchmark exercised
    /// the steady-state overwrite path rather than only initial fills.
    pub ring_wrapped: bool,
}

/// Absolute overhead (ns/write) below which the disabled-tracer check
/// passes regardless of the relative bound: half a nanosecond per write is
/// the cost of the relaxed atomic load itself and is unresolvable against
/// store workloads that finish in a few nanoseconds.
pub const DISABLED_EPSILON_NS: f64 = 0.5;

/// Relative bound on the disabled-tracer overhead.
pub const DISABLED_BOUND_PCT: f64 = 2.0;

impl TraceBenchResult {
    /// Disabled-tracer overhead over the no-tracer baseline, in percent
    /// (clamped at zero: timing jitter can make the disabled run faster).
    pub fn disabled_overhead_pct(&self) -> f64 {
        overhead_pct(self.baseline.ns_per_write, self.disabled.ns_per_write)
    }

    /// Disabled-tracer overhead in absolute ns/write (clamped at zero).
    pub fn disabled_overhead_ns(&self) -> f64 {
        (self.disabled.ns_per_write - self.baseline.ns_per_write).max(0.0)
    }

    /// Enabled-tracer overhead over the no-tracer baseline, in percent.
    pub fn enabled_overhead_pct(&self) -> f64 {
        overhead_pct(self.baseline.ns_per_write, self.enabled.ns_per_write)
    }

    /// The headline check: the shipping (attached-but-disabled) tracer
    /// costs at most [`DISABLED_BOUND_PCT`] percent over no tracer at all,
    /// or at most [`DISABLED_EPSILON_NS`] absolute — whichever is more
    /// permissive, because on sub-10ns write paths the relative bound is
    /// finer than the clock.
    pub fn disabled_within_bound(&self) -> bool {
        self.disabled_overhead_pct() <= DISABLED_BOUND_PCT
            || self.disabled_overhead_ns() <= DISABLED_EPSILON_NS
    }

    /// Renders a human-readable summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "flight recorder: {} windows x {} logged writes\n",
            self.windows, self.writes_per_window
        ));
        let row = |name: &str, r: &TraceModeResult| {
            let allocs = match r.steady_state_allocs {
                Some(n) => format!("{n}"),
                None => "-".to_string(),
            };
            format!(
                "{:<22} {:>8.2} ns/write {:>14.0} wr/s {:>8} allocs\n",
                name, r.ns_per_write, r.writes_per_sec, allocs
            )
        };
        out.push_str(&row("no tracer", &self.baseline));
        out.push_str(&row("attached, disabled", &self.disabled));
        out.push_str(&row("attached, recording", &self.enabled));
        out.push_str(&format!(
            "disabled overhead: {:.2}% ({:.3} ns/write, bound {}% or {} ns)  \
             recording overhead: {:.2}%\n",
            self.disabled_overhead_pct(),
            self.disabled_overhead_ns(),
            DISABLED_BOUND_PCT,
            DISABLED_EPSILON_NS,
            self.enabled_overhead_pct()
        ));
        out.push_str(&format!(
            "events recorded: {} (ring wrapped: {})\n",
            self.events_recorded, self.ring_wrapped
        ));
        out
    }

    /// Machine-readable form (written to `BENCH_trace.json`).
    pub fn to_json(&self) -> Json {
        let mode = |r: &TraceModeResult| {
            crate::json::write_mode_json(r.ns_per_write, r.writes_per_sec, r.steady_state_allocs)
        };
        let obj = crate::json::JsonObj::new()
            .field("windows", Json::UInt(self.windows))
            .field("writes_per_window", Json::UInt(self.writes_per_window))
            .field("baseline_no_tracer", mode(&self.baseline))
            .field("attached_disabled", mode(&self.disabled))
            .field("attached_recording", mode(&self.enabled));
        crate::json::overhead_fields(
            obj,
            self.disabled_overhead_pct(),
            self.disabled_overhead_ns(),
            self.disabled_within_bound(),
            self.enabled_overhead_pct(),
        )
        .field("events_recorded", Json::UInt(self.events_recorded))
        .field("ring_wrapped", Json::Bool(self.ring_wrapped))
        .build()
    }
}

fn overhead_pct(base_ns: f64, mode_ns: f64) -> f64 {
    ((mode_ns - base_ns).max(0.0) / base_ns.max(1e-9)) * 100.0
}

/// The tracer attachment under test.
#[derive(Clone, Copy)]
enum Attach {
    None,
    Disabled,
    Enabled,
}

struct World {
    hot: osiris_checkpoint::PCell<u64>,
    scratch: Vec<osiris_checkpoint::PCell<u64>>,
}

/// One precomputed logged write; the schedule is generated outside the
/// timed loop so the measurement isolates the store+log+trace path.
#[derive(Clone, Copy)]
enum Op {
    Cell(u64),
    Scratch(u32, u64),
}

/// The write mix: skewed toward one hot cell (coalesced appends, which
/// emit `UndoCoalesce`) with a minority of scattered stores (fresh appends,
/// which emit `UndoAppend`), so both trace emit points are on the measured
/// path.
fn gen_schedule(r: &mut Rng, writes: u64, scratch_cells: usize) -> Vec<Op> {
    (0..writes)
        .map(|_| match r.below(4) {
            0..=2 => Op::Cell(r.next_u64()),
            _ => Op::Scratch(r.below(scratch_cells as u64) as u32, r.next_u64()),
        })
        .collect()
}

#[inline]
fn apply_ops(heap: &mut Heap, w: &World, ops: &[Op]) {
    for op in ops {
        match *op {
            Op::Cell(v) => w.hot.set(heap, v),
            Op::Scratch(i, v) => w.scratch[i as usize].set(heap, v),
        }
    }
}

fn run_window(heap: &mut Heap, w: &World, ops: &[Op]) {
    heap.set_logging(true);
    let mark = heap.mark();
    apply_ops(heap, w, ops);
    heap.rollback_to(mark);
    heap.set_logging(false);
}

/// Timing repetitions per mode. The three modes are timed **interleaved**
/// (baseline rep, disabled rep, enabled rep, baseline rep, …) and the
/// fastest repetition per mode is kept: sub-nanosecond deltas are far below
/// run-to-run machine drift, so the modes must sample the same conditions
/// for their difference to mean anything.
const REPS: usize = 9;

/// Mode order within each repetition.
const ATTACHES: [Attach; 3] = [Attach::None, Attach::Disabled, Attach::Enabled];

struct ModeState {
    heap: Heap,
    w: World,
    handle: Option<TraceHandle>,
}

fn setup(attach: Attach, cfg: &TraceBenchConfig, ops: &[Op]) -> ModeState {
    let mut heap = Heap::new("bench-trace");
    // Every mode constructs a handle — the baseline simply never attaches
    // its (placebo) one — so all modes issue the same allocation sequence
    // and their heaps reuse the same allocator chunks at the same
    // addresses. Without this the baseline/disabled comparison is partly a
    // comparison of data placements, which at sub-ns/write resolution can
    // exceed the effect under test.
    let handle = match attach {
        Attach::None | Attach::Disabled => Some(TraceHandle::new(TraceConfig::default())),
        Attach::Enabled => Some(TraceHandle::new(TraceConfig::on())),
    };
    if !matches!(attach, Attach::None) {
        if let Some(h) = &handle {
            heap.set_tracer(h.clone(), 0);
        }
    }
    let w = World {
        hot: heap.alloc_cell("hot", 0),
        scratch: (0..8).map(|_| heap.alloc_cell("scratch", 0)).collect(),
    };
    for _ in 0..cfg.warmup_windows {
        run_window(&mut heap, &w, ops);
    }
    ModeState { heap, w, handle }
}

/// Runs the comparison.
pub fn bench_trace(cfg: TraceBenchConfig) -> TraceBenchResult {
    let mut r = Rng::new(0x7ACE);
    // 8 scratch cells, matching `setup`'s world.
    let ops = gen_schedule(&mut r, cfg.writes_per_window, 8);

    let mut best = [f64::INFINITY; ATTACHES.len()];
    let mut steady_state_allocs: [Option<u64>; ATTACHES.len()] = [None; ATTACHES.len()];
    let mut events_recorded = 0u64;
    let mut ring_wrapped = false;

    for rep in 0..REPS {
        for (i, attach) in ATTACHES.iter().enumerate() {
            // Each mode gets a fresh state that is dropped before the next
            // mode's setup runs, so every mode's heap, undo arena and
            // coalescing index land on the allocator blocks the previous
            // mode just freed. Keeping three long-lived states instead
            // gives each mode permanently different data placement, and at
            // sub-ns/write resolution cache-set luck between placements is
            // larger than the effect under test.
            let mut m = setup(*attach, &cfg, &ops);
            // Allocator accounting covers one post-warmup repetition
            // exactly; the remaining repetitions only refine the timing.
            let allocs_before = cfg.alloc_count.map(|f| f());
            let start = Instant::now();
            for _ in 0..cfg.windows {
                run_window(&mut m.heap, &m.w, &ops);
            }
            best[i] = best[i].min(start.elapsed().as_secs_f64().max(1e-9));
            if rep == 0 {
                steady_state_allocs[i] = cfg.alloc_count.map(|f| f() - allocs_before.unwrap_or(0));
            }
            if matches!(attach, Attach::Enabled) {
                let (n, w) = m
                    .handle
                    .as_ref()
                    .expect("enabled mode attaches a tracer")
                    .with(|t| (t.total_recorded(), t.has_wrapped()));
                events_recorded = n;
                ring_wrapped = w;
            }
        }
    }

    let total_writes = cfg.windows * cfg.writes_per_window;
    let result = |i: usize| TraceModeResult {
        ns_per_write: best[i] * 1e9 / total_writes as f64,
        writes_per_sec: total_writes as f64 / best[i],
        steady_state_allocs: steady_state_allocs[i],
    };
    TraceBenchResult {
        windows: cfg.windows,
        writes_per_window: cfg.writes_per_window,
        baseline: result(0),
        disabled: result(1),
        enabled: result(2),
        events_recorded,
        ring_wrapped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_sane_numbers() {
        let r = bench_trace(TraceBenchConfig::quick());
        assert!(r.baseline.ns_per_write > 0.0);
        assert!(r.disabled.ns_per_write > 0.0);
        assert!(r.enabled.ns_per_write > 0.0);
        // One repetition's (warmup + measured) windows * writes, minus
        // nothing: every logged write emits exactly one event (append or
        // coalesce), plus per-window mark/rollback events.
        assert!(r.events_recorded > 0);
        assert!(
            r.ring_wrapped,
            "quick config must exercise ring wraparound ({} events)",
            r.events_recorded
        );
        let j = r.to_json().pretty();
        assert!(j.contains("disabled_overhead_pct"));
        assert!(j.contains("attached_recording"));
    }
}
