//! Microbenchmark for the causal request-span record path.
//!
//! Every user request the kernel serves carries a [`SpanInfo`]: minted at
//! `send_user_request`, copied through every message hop, and closed at
//! the reply with a latency observation split by recovery overlap. The
//! span *bookkeeping* (minting the `Copy` struct, carrying it on
//! messages) is unconditional; the *recording* decision is sampled once
//! at mint time — `tracer.is_enabled() || metrics.enabled()` — and
//! carried in the span's `record` flag, so every downstream hop and the
//! close site branch on a plain bool instead of re-consulting the
//! handles' shared atomics (the caching discipline `Heap::set_tracer`
//! documents for the undo path).
//!
//! This bench drives identical synthetic span lifecycles (mint → hops →
//! close, with a recovery-epoch bump every `recovery_every`-th span so
//! the crossed-recovery arm is on the measured path) under three
//! attachments, and reports nanoseconds per span-carrying *message*
//! (open + hops + close), the unit the feature taxes:
//!
//! * **baseline** — span bookkeeping only, recording deleted: mint and
//!   carry the struct, never consult a recorder.
//! * **disabled** — bookkeeping plus the shipping disabled path: the
//!   mint site pays the two relaxed loads, every later site one
//!   predictable branch on the cached flag. Its overhead over the
//!   baseline is the headline number; `bench_spans --check` holds it to
//!   the same ≤[`DISABLED_BOUND_PCT`]%-or-≤[`DISABLED_EPSILON_NS`] ns
//!   per-message bound as `bench_trace`/`bench_axiom`.
//! * **enabled** — full recording: `SpanOpen`/`SpanHop`/`SpanClose`
//!   events into the preallocated trace ring plus the `osiris_span_*`
//!   counter and histogram writes. The ring is sized up front and the
//!   histogram buckets live inline, so enabled-mode steady state must
//!   make **zero** allocator calls; when the caller supplies an
//!   allocation counter (see `src/bin/bench_spans.rs`) the harness
//!   proves it.
//!
//! Timing discipline matches `trace_bench`: modes run interleaved,
//! min-of-[`REPS`] repetitions, fresh state per repetition.

use std::time::Instant;

use osiris_kernel::SpanInfo;
use osiris_metrics::{Counter, Hist, MetricsConfig, MetricsHandle};
use osiris_trace::{TraceConfig, TraceEvent, TraceHandle, KERNEL_COMP};

use crate::json::Json;
use crate::{DISABLED_BOUND_PCT, DISABLED_EPSILON_NS};

/// Benchmark configuration.
#[derive(Clone, Copy, Debug)]
pub struct SpanBenchConfig {
    /// Synthetic request spans per measured repetition.
    pub spans: u64,
    /// Spans run before measuring, to warm caches and the ring.
    pub warmup_spans: u64,
    /// Message hops between open and close (IPC fan-out per request).
    pub hops_per_span: u64,
    /// Every `recovery_every`-th span closes after a recovery-epoch bump,
    /// so the crossed-recovery split is on the measured path.
    pub recovery_every: u64,
    /// Reads the process-wide allocation count, if the caller installed a
    /// counting allocator.
    pub alloc_count: Option<fn() -> u64>,
}

impl Default for SpanBenchConfig {
    fn default() -> Self {
        SpanBenchConfig {
            spans: 200_000,
            warmup_spans: 2_000,
            hops_per_span: 3,
            recovery_every: 16,
            alloc_count: None,
        }
    }
}

impl SpanBenchConfig {
    /// A scaled-down configuration for the CI gate (`bench_spans
    /// --check`): large enough for min-of-reps timing to be stable, small
    /// enough to finish in well under a second.
    pub fn quick() -> SpanBenchConfig {
        SpanBenchConfig {
            spans: 40_000,
            warmup_spans: 1_000,
            hops_per_span: 3,
            recovery_every: 16,
            alloc_count: None,
        }
    }

    /// Span-carrying messages per span: the opening request delivery,
    /// each hop, and the closing reply.
    pub fn msgs_per_span(&self) -> u64 {
        2 + self.hops_per_span
    }
}

/// Measurements for one attachment.
#[derive(Clone, Copy, Debug)]
pub struct SpanModeResult {
    /// Nanoseconds per span-carrying message (fastest repetition).
    pub ns_per_msg: f64,
    /// Span-carrying messages per second implied by `ns_per_msg`.
    pub msgs_per_sec: f64,
    /// Allocator calls during one measured (post-warmup) repetition, if an
    /// allocation counter was supplied.
    pub steady_state_allocs: Option<u64>,
}

/// The full comparison.
#[derive(Clone, Copy, Debug)]
pub struct SpanBenchResult {
    /// Configuration echoed back.
    pub spans: u64,
    /// Hops per span, echoed back.
    pub hops_per_span: u64,
    /// Span-carrying messages per span (open + hops + close).
    pub msgs_per_span: u64,
    /// Span bookkeeping only; recording deleted.
    pub baseline: SpanModeResult,
    /// Bookkeeping + mint-site consult + cached-flag branches — the
    /// shipping configuration.
    pub disabled: SpanModeResult,
    /// Full recording.
    pub enabled: SpanModeResult,
    /// Spans the enabled registry counted in one repetition (sanity).
    pub spans_recorded: u64,
}

impl SpanBenchResult {
    /// Disabled-recorder overhead over the bookkeeping-only baseline, in
    /// percent (clamped at zero).
    pub fn disabled_overhead_pct(&self) -> f64 {
        overhead_pct(self.baseline.ns_per_msg, self.disabled.ns_per_msg)
    }

    /// Disabled-recorder overhead in absolute ns per span-carrying
    /// message (clamped at zero).
    pub fn disabled_overhead_ns(&self) -> f64 {
        (self.disabled.ns_per_msg - self.baseline.ns_per_msg).max(0.0)
    }

    /// Full-recording overhead over the baseline, in percent.
    pub fn enabled_overhead_pct(&self) -> f64 {
        overhead_pct(self.baseline.ns_per_msg, self.enabled.ns_per_msg)
    }

    /// The headline check, same bar as `bench_trace`/`bench_axiom`: the
    /// shipping (attached-but-disabled) span recorder costs at most
    /// [`DISABLED_BOUND_PCT`] percent over bare span bookkeeping, or at
    /// most [`DISABLED_EPSILON_NS`] ns per span-carrying message —
    /// whichever is more permissive, because against a bookkeeping loop
    /// that finishes in fractions of a nanosecond per message the
    /// relative bound is finer than the clock.
    pub fn disabled_within_bound(&self) -> bool {
        self.disabled_overhead_pct() <= DISABLED_BOUND_PCT
            || self.disabled_overhead_ns() <= DISABLED_EPSILON_NS
    }

    /// Renders a human-readable summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "span record path: {} spans, {} hops each ({} messages/span)\n",
            self.spans, self.hops_per_span, self.msgs_per_span
        ));
        let row = |name: &str, r: &SpanModeResult| {
            let allocs = match r.steady_state_allocs {
                Some(n) => format!("{n}"),
                None => "-".to_string(),
            };
            format!(
                "{:<22} {:>8.2} ns/msg {:>14.0} msg/s {:>8} allocs\n",
                name, r.ns_per_msg, r.msgs_per_sec, allocs
            )
        };
        out.push_str(&row("bookkeeping only", &self.baseline));
        out.push_str(&row("attached, disabled", &self.disabled));
        out.push_str(&row("attached, recording", &self.enabled));
        out.push_str(&format!(
            "disabled overhead: {:.2}% ({:.3} ns/msg, bound {}% or {} ns)  \
             recording overhead: {:.2}%\n",
            self.disabled_overhead_pct(),
            self.disabled_overhead_ns(),
            DISABLED_BOUND_PCT,
            DISABLED_EPSILON_NS,
            self.enabled_overhead_pct()
        ));
        out.push_str(&format!("spans recorded: {}\n", self.spans_recorded));
        out
    }

    /// Machine-readable form (written to `BENCH_spans.json`).
    pub fn to_json(&self) -> Json {
        let mode = |r: &SpanModeResult| {
            crate::json::write_mode_json(r.ns_per_msg, r.msgs_per_sec, r.steady_state_allocs)
        };
        let obj = crate::json::JsonObj::new()
            .field("spans", Json::UInt(self.spans))
            .field("hops_per_span", Json::UInt(self.hops_per_span))
            .field("msgs_per_span", Json::UInt(self.msgs_per_span))
            .field("baseline_bookkeeping", mode(&self.baseline))
            .field("attached_disabled", mode(&self.disabled))
            .field("attached_recording", mode(&self.enabled));
        crate::json::overhead_fields(
            obj,
            self.disabled_overhead_pct(),
            self.disabled_overhead_ns(),
            self.disabled_within_bound(),
            self.enabled_overhead_pct(),
        )
        .field("spans_recorded", Json::UInt(self.spans_recorded))
        .build()
    }
}

fn overhead_pct(base_ns: f64, mode_ns: f64) -> f64 {
    ((mode_ns - base_ns).max(0.0) / base_ns.max(1e-9)) * 100.0
}

/// The recorder attachment under test.
#[derive(Clone, Copy)]
enum Attach {
    None,
    Disabled,
    Enabled,
}

/// Timing repetitions per mode, interleaved like `trace_bench`.
const REPS: usize = 9;

/// Mode order within each repetition.
const ATTACHES: [Attach; 3] = [Attach::None, Attach::Disabled, Attach::Enabled];

/// The span-relevant slice of the kernel's registry, registered on a
/// per-mode [`MetricsHandle`] exactly as `KernelCounters::register` does.
struct SpanSeries {
    started: Counter,
    completed_none: Counter,
    completed_recovery: Counter,
    latency_none: Hist,
    latency_recovery: Hist,
    hops: Counter,
}

struct ModeState {
    tracer: TraceHandle,
    metrics: MetricsHandle,
    series: SpanSeries,
}

fn setup(attach: Attach, cfg: &SpanBenchConfig) -> ModeState {
    // Every mode constructs both recorders — the baseline simply never
    // consults its (placebo) ones — so all modes issue the same allocation
    // sequence before the measured loop.
    let on = matches!(attach, Attach::Enabled);
    let tracer = TraceHandle::new(TraceConfig {
        enabled: on,
        capacity: 16_384,
        ..Default::default()
    });
    let metrics = MetricsHandle::new(MetricsConfig { enabled: on });
    let completed = |overlap: &str| {
        metrics.counter(
            "osiris_span_completed_total",
            "spans closed",
            &[("overlap", overlap)],
        )
    };
    let latency = |overlap: &str| {
        metrics.hist(
            "osiris_span_latency_cycles",
            "cycles per span",
            &[("overlap", overlap)],
        )
    };
    let series = SpanSeries {
        started: metrics.counter("osiris_span_started_total", "spans minted", &[]),
        completed_none: completed("none"),
        completed_recovery: completed("recovery"),
        latency_none: latency("none"),
        latency_recovery: latency("recovery"),
        hops: metrics.counter("osiris_span_hops_total", "span hops", &[]),
    };
    let mut m = ModeState {
        tracer,
        metrics,
        series,
    };
    run_rep(
        &mut m,
        attach,
        &SpanBenchConfig {
            spans: cfg.warmup_spans,
            ..*cfg
        },
    );
    reset_rep(&mut m);
    m
}

/// One repetition: the full span lifecycle loop, mirroring the kernel's
/// mint / hop / close sequence and its gating exactly. Returns a checksum
/// over the span bookkeeping so it cannot be optimized away in the
/// baseline mode.
#[inline]
fn run_rep(m: &mut ModeState, attach: Attach, cfg: &SpanBenchConfig) -> u64 {
    let consult = !matches!(attach, Attach::None);
    let mut now = 0u64;
    let mut epoch = 0u64;
    let mut checksum = 0u64;
    for s in 0..cfg.spans {
        // Mint at the workload entry point: the id unconditionally, the
        // recording decision sampled once from the handles' atomics.
        now += 13;
        let span = SpanInfo {
            id: s + 1,
            opened_at: now,
            epoch_at_open: epoch,
            record: consult && (m.tracer.is_enabled() || m.metrics.enabled()),
        };
        checksum = checksum.wrapping_add(span.id ^ span.opened_at);
        if span.record {
            m.series.started.inc();
            m.tracer.set_now(now);
            m.tracer.emit(
                KERNEL_COMP,
                TraceEvent::SpanOpen {
                    span: span.id,
                    sid: s,
                    pid: 1,
                },
            );
        }
        // Propagate across hops: each delivery branches on the cached
        // flag, exactly like the kernel's `SpanHop` site.
        for h in 0..cfg.hops_per_span {
            now += 7;
            if span.record {
                m.series.hops.inc();
                m.tracer.set_now(now);
                m.tracer.emit(
                    (h % 6) as u8,
                    TraceEvent::SpanHop {
                        span: span.id,
                        src: ((h + 1) % 6) as u8,
                        msg_id: s * cfg.hops_per_span + h,
                    },
                );
            }
        }
        // Every `recovery_every`-th span crosses a recovery before it
        // closes: epoch bump, recovery charge.
        if cfg.recovery_every > 0 && s % cfg.recovery_every == cfg.recovery_every - 1 {
            epoch += 1;
            now += 400;
        }
        // Close at the reply, mirroring `close_span`: the flag short-
        // circuits the overlap split, the latency computation and all
        // record writes.
        now += 13;
        if span.record {
            let crossed = span.epoch_at_open != epoch;
            let latency = now - span.opened_at;
            let (completed, hist) = if crossed {
                (&m.series.completed_recovery, &m.series.latency_recovery)
            } else {
                (&m.series.completed_none, &m.series.latency_none)
            };
            completed.inc();
            hist.observe(latency);
            m.tracer.set_now(now);
            m.tracer.emit(
                KERNEL_COMP,
                TraceEvent::SpanClose {
                    span: span.id,
                    ok: !crossed,
                    crossed_recovery: crossed,
                    latency,
                },
            );
        }
    }
    checksum
}

#[inline]
fn reset_rep(m: &mut ModeState) {
    m.tracer.clear();
    m.metrics.reset();
}

/// Runs the comparison.
pub fn bench_spans(cfg: SpanBenchConfig) -> SpanBenchResult {
    let mut best = [f64::INFINITY; ATTACHES.len()];
    let mut steady_state_allocs: [Option<u64>; ATTACHES.len()] = [None; ATTACHES.len()];
    let mut spans_recorded = 0u64;
    let mut sink = 0u64;

    for rep in 0..REPS {
        for (i, attach) in ATTACHES.iter().enumerate() {
            // Fresh state per repetition, dropped before the next mode's
            // setup, so all modes reuse the same freed allocator blocks
            // (see trace_bench on why placement parity matters at this
            // resolution).
            let mut m = setup(*attach, &cfg);
            let allocs_before = cfg.alloc_count.map(|f| f());
            let start = Instant::now();
            sink = sink.wrapping_add(run_rep(&mut m, *attach, &cfg));
            best[i] = best[i].min(start.elapsed().as_secs_f64().max(1e-9));
            if rep == 0 {
                steady_state_allocs[i] = cfg.alloc_count.map(|f| f() - allocs_before.unwrap_or(0));
            }
            if matches!(attach, Attach::Enabled) {
                spans_recorded = m.series.started.get();
            }
        }
    }
    std::hint::black_box(sink);

    let total_msgs = cfg.spans * cfg.msgs_per_span();
    let result = |i: usize| SpanModeResult {
        ns_per_msg: best[i] * 1e9 / total_msgs as f64,
        msgs_per_sec: total_msgs as f64 / best[i],
        steady_state_allocs: steady_state_allocs[i],
    };
    SpanBenchResult {
        spans: cfg.spans,
        hops_per_span: cfg.hops_per_span,
        msgs_per_span: cfg.msgs_per_span(),
        baseline: result(0),
        disabled: result(1),
        enabled: result(2),
        spans_recorded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_sane_numbers() {
        let cfg = SpanBenchConfig {
            spans: 2_000,
            warmup_spans: 100,
            hops_per_span: 3,
            recovery_every: 8,
            alloc_count: None,
        };
        let r = bench_spans(cfg);
        assert!(r.baseline.ns_per_msg > 0.0);
        assert!(r.disabled.ns_per_msg > 0.0);
        assert!(r.enabled.ns_per_msg > 0.0);
        assert_eq!(r.spans_recorded, r.spans);
        assert_eq!(r.msgs_per_span, 5);
        let j = r.to_json().pretty();
        assert!(j.contains("disabled_overhead_pct"));
        assert!(j.contains("attached_recording"));
        assert!(j.contains("spans_recorded"));
    }

    #[test]
    fn enabled_mode_splits_by_recovery_overlap() {
        // Drive one enabled repetition directly and check the registry
        // split: with recovery_every=8, every 8th span closes crossed.
        let cfg = SpanBenchConfig {
            spans: 64,
            warmup_spans: 0,
            hops_per_span: 2,
            recovery_every: 8,
            alloc_count: None,
        };
        let mut m = setup(Attach::Enabled, &cfg);
        run_rep(&mut m, Attach::Enabled, &cfg);
        assert_eq!(m.series.started.get(), 64);
        assert_eq!(m.series.completed_recovery.get(), 8);
        assert_eq!(m.series.completed_none.get(), 56);
        assert_eq!(m.series.hops.get(), 128);
        // Crossed spans absorbed the recovery charge: strictly slower.
        assert!(m.series.latency_recovery.summary().p50 > m.series.latency_none.summary().p50);
    }

    #[test]
    fn disabled_mode_records_nothing() {
        let cfg = SpanBenchConfig {
            spans: 32,
            warmup_spans: 0,
            hops_per_span: 2,
            recovery_every: 8,
            alloc_count: None,
        };
        let mut m = setup(Attach::Disabled, &cfg);
        let a = run_rep(&mut m, Attach::Disabled, &cfg);
        assert_eq!(m.series.started.get(), 0);
        assert_eq!(m.tracer.snapshot().len(), 0);
        // Bookkeeping is identical across modes: same checksum baseline.
        let mut b = setup(Attach::None, &cfg);
        assert_eq!(a, run_rep(&mut b, Attach::None, &cfg));
    }
}
