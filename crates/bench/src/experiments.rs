//! The experiments behind every table and figure of the paper.

use osiris_core::{EscalationPolicy, PolicyKind};
use osiris_faults::{
    campaign::model_label, classify_run, plan_faults, run_parallel, Campaign, DoubleInjector,
    FaultKind, FaultModel, FaultPlan, InjectionRecord, Injector, Outcome, PeriodicCrash, Recorder,
    RecoveryActionTag, SiteProfile, Tally,
};
use osiris_kernel::FaultHook;
use osiris_kernel::{Instrumentation, OsEngine, ProgramRegistry};
use osiris_monolith::Monolith;
use osiris_servers::{Os, OsConfig};
use osiris_workloads::{
    default_iters, register_unixbench, run_benchmark_with, run_suite_with, BENCHMARKS,
};

use crate::geomean;

/// The five core servers of Tables I/II/III/VI, in paper order.
pub const SERVERS: [&str; 5] = ["pm", "vfs", "vm", "ds", "rs"];

fn campaign_config(policy: PolicyKind) -> OsConfig {
    OsConfig {
        policy,
        // A smaller frame pool keeps stateless-restart image copies cheap
        // during the thousands of campaign runs; recovery semantics are
        // unaffected.
        vm_frames: 8192,
        ..Default::default()
    }
}

/// Campaign config for injected runs: flight-record quietly (small ring,
/// kernel auto-dump off) so a run that ends in an uncontrolled crash can
/// hand its trace tail to the campaign observer's black-box dump.
fn injection_config(policy: PolicyKind) -> OsConfig {
    let mut cfg = campaign_config(policy);
    cfg.trace = osiris_trace::TraceConfig {
        enabled: true,
        capacity: 2048,
        blackbox_tail: 0,
        ..Default::default()
    };
    // Retain the axiom so each injection's MTTR can be decomposed into its
    // recovery critical path (detect → execute → replay) after the run.
    cfg.axiom = osiris_axiom::AxiomConfig::on();
    cfg
}

// ---------------------------------------------------------------------
// Table I: recovery coverage
// ---------------------------------------------------------------------

/// One row of Table I.
#[derive(Clone, Debug)]
pub struct CoverageRow {
    /// Server name.
    pub server: String,
    /// Coverage (%) under the pessimistic policy.
    pub pessimistic: f64,
    /// Coverage (%) under the enhanced policy.
    pub enhanced: f64,
}

/// Table I: percentage of execution spent inside recovery windows.
#[derive(Clone, Debug)]
pub struct Table1 {
    /// Per-server rows.
    pub rows: Vec<CoverageRow>,
    /// Mean weighted by time spent running each server (pessimistic).
    pub weighted_pessimistic: f64,
    /// Mean weighted by time spent running each server (enhanced).
    pub weighted_enhanced: f64,
}

fn coverage_run(policy: PolicyKind) -> Vec<(String, f64, u64)> {
    let (_, os) = run_suite_with(campaign_config(policy), None);
    os.reports()
        .into_iter()
        .filter(|r| SERVERS.contains(&r.name))
        .map(|r| {
            (
                r.name.to_string(),
                100.0 * r.window.coverage_by_sites(),
                r.cycles,
            )
        })
        .collect()
}

/// Runs the Table I experiment: the prototype test suite under each OSIRIS
/// policy, counting instrumentation sites (basic-block analogs) executed
/// inside vs outside recovery windows.
pub fn table1() -> Table1 {
    let pess = coverage_run(PolicyKind::Pessimistic);
    let enh = coverage_run(PolicyKind::Enhanced);
    let mut rows = Vec::new();
    let mut wp = 0.0;
    let mut we = 0.0;
    let mut cycles_p = 0.0;
    let mut cycles_e = 0.0;
    for server in SERVERS {
        let (pc, pw) = pess
            .iter()
            .find(|(n, _, _)| n == server)
            .map(|(_, c, w)| (*c, *w as f64))
            .unwrap_or((0.0, 0.0));
        let (ec, ew) = enh
            .iter()
            .find(|(n, _, _)| n == server)
            .map(|(_, c, w)| (*c, *w as f64))
            .unwrap_or((0.0, 0.0));
        wp += pc * pw;
        cycles_p += pw;
        we += ec * ew;
        cycles_e += ew;
        rows.push(CoverageRow {
            server: server.to_string(),
            pessimistic: pc,
            enhanced: ec,
        });
    }
    Table1 {
        rows,
        weighted_pessimistic: if cycles_p > 0.0 { wp / cycles_p } else { 0.0 },
        weighted_enhanced: if cycles_e > 0.0 { we / cycles_e } else { 0.0 },
    }
}

impl Table1 {
    /// Renders the paper-style table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("Table I: recovery coverage (% of executed sites inside windows)\n");
        out.push_str(&format!(
            "{:<10} {:>12} {:>12}\n",
            "Server", "Pessimistic", "Enhanced"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:<10} {:>12.1} {:>12.1}\n",
                r.server, r.pessimistic, r.enhanced
            ));
        }
        out.push_str(&format!(
            "{:<10} {:>12.1} {:>12.1}\n",
            "weighted", self.weighted_pessimistic, self.weighted_enhanced
        ));
        out
    }
}

// ---------------------------------------------------------------------
// Tables II/III: survivability under fault injection
// ---------------------------------------------------------------------

/// Tables II/III: outcome distribution per recovery policy.
#[derive(Clone, Debug)]
pub struct SurvivabilityTable {
    /// Fault model used.
    pub model: FaultModel,
    /// Number of faults injected (one run each, per policy).
    pub faults: usize,
    /// Outcome tallies, in policy order.
    pub rows: Vec<(PolicyKind, Tally)>,
    /// Per-injection records (site, fault, outcome, recovery action,
    /// latency), in completion order across all policies.
    pub records: Vec<InjectionRecord>,
    /// The campaign observer's final report document — the payload of
    /// `campaign_report.json`.
    pub report: osiris_trace::Json,
}

/// Profiles the suite once (paper: "a separate profiling run to determine
/// which fault candidates actually get triggered") and restricts the sites
/// to the five core servers.
pub fn profile_suite() -> SiteProfile {
    let recorder = Recorder::new();
    let handle = recorder.clone();
    let (_, _) = run_suite_with(
        campaign_config(PolicyKind::Enhanced),
        Some(Box::new(recorder)),
    );
    handle.profile().restrict_to(&SERVERS)
}

/// Runs one survivability campaign: every planned fault, injected in its
/// own fresh run, for each of the four recovery policies.
pub fn survivability(model: FaultModel, threads: usize, seed: u64) -> SurvivabilityTable {
    survivability_for(&PolicyKind::STANDARD, model, threads, seed)
}

/// Runs the benchmark suite once fault-free under the default policy and
/// writes the kernel's metrics registry as Prometheus text plus JSON,
/// rooted at `base` (producing `<base>.prom` and `<base>.json`).
pub fn export_suite_metrics(
    base: &str,
) -> std::io::Result<(std::path::PathBuf, std::path::PathBuf)> {
    let (_, os) = run_suite_with(OsConfig::default(), None);
    os.write_metrics(base)
}

/// Like [`survivability`], for an arbitrary policy set (used by the
/// kill-requester ablation of paper §VII).
pub fn survivability_for(
    policies: &[PolicyKind],
    model: FaultModel,
    threads: usize,
    seed: u64,
) -> SurvivabilityTable {
    let profile = profile_suite();
    let plans = plan_faults(&profile, model, seed);
    // Recovery-path models plan *secondary* faults (sites that only execute
    // during a recovery); each run pairs one with a deterministic primary
    // crash that triggers the recovery in the first place.
    let primary =
        matches!(model, FaultModel::DuringRecovery | FaultModel::DoubleFault).then(|| {
            let sites = profile.triggered_sites();
            let site = sites
                .iter()
                .find(|s| s.component == "vfs")
                .or_else(|| sites.first())
                .expect("profiled workload triggered at least one site")
                .clone();
            FaultPlan {
                site,
                kind: FaultKind::Crash,
                transient: true,
            }
        });
    let campaign = Campaign::new(model_label(model), model, plans.len() * policies.len());
    let mut rows = Vec::new();
    for (policy_i, &policy) in policies.iter().enumerate() {
        // Slot-addressed recording: each worker writes its own plan-index
        // slot, so records, axiom chain and report are identical on every
        // thread count.
        let jobs: Vec<_> = plans.iter().cloned().enumerate().collect();
        let campaign = &campaign;
        let primary = &primary;
        let runs = plans.len();
        let outcomes: Vec<Outcome> = run_parallel(jobs, threads, |(idx, plan)| {
            let injector: Box<dyn FaultHook> = match primary {
                Some(p) => Box::new(DoubleInjector::new(p, &plan)),
                None => Box::new(Injector::new(&plan)),
            };
            let (outcome, os) = run_suite_with(injection_config(policy), Some(injector));
            let violations = if outcome.completed() {
                os.audit().len()
            } else {
                0
            };
            let m = os.metrics();
            let class = classify_run(&outcome, violations, m.quarantines);
            // An uncontrolled crash carries its flight-recorder tail so the
            // campaign observer can dump a post-mortem black box.
            let blackbox = (class == Outcome::Crash).then(|| {
                let tail = os.trace_handle().with(|t| t.tail_per_comp(12));
                osiris_trace::render_text(&tail, &os.kernel().trace_names())
            });
            // Join the run's axiom + span metrics into the per-injection
            // MTTR critical path and request-latency split.
            let (critical_path, span_latency_clean, span_latency_recovery) =
                osiris_faults::run_attribution(
                    os.kernel().axiom().records(),
                    &os.metrics_snapshot(),
                );
            campaign.record_at(
                policy_i * runs + idx,
                InjectionRecord {
                    site: plan.site.clone(),
                    kind: plan.kind,
                    policy: policy.to_string(),
                    outcome: class,
                    action: RecoveryActionTag::from_counts(
                        m.recovered_rollback,
                        m.recovered_fresh,
                        m.recovered_quiescent,
                        m.recovered_naive,
                        m.controlled_shutdowns,
                    ),
                    run_cycles: os.kernel().now(),
                    recoveries: m.recovered_rollback
                        + m.recovered_fresh
                        + m.recovered_quiescent
                        + m.recovered_naive,
                    recovery_cycles: m.recovery_cycles,
                    critical_path,
                    span_latency_clean,
                    span_latency_recovery,
                    blackbox,
                },
            );
            class
        });
        rows.push((policy, outcomes.into_iter().collect()));
    }
    SurvivabilityTable {
        model,
        faults: plans.len(),
        rows,
        records: campaign.records(),
        report: campaign.report_json(),
    }
}

impl SurvivabilityTable {
    /// Renders the paper-style table.
    pub fn render(&self) -> String {
        let which = match self.model {
            FaultModel::FailStop => "II (fail-stop faults)",
            FaultModel::TransientFailStop => "II-t (transient fail-stop faults)",
            FaultModel::FullEdfi => "III (full EDFI faults)",
            FaultModel::DuringRecovery => "II-r (faults during recovery)",
            FaultModel::DoubleFault => "II-d (persistent double faults)",
            FaultModel::FailSilent => "II-s (fail-silent faults)",
        };
        let mut out = format!(
            "Table {}: survivability under {} injected faults per policy\n",
            which, self.faults
        );
        out.push_str(&format!(
            "{:<14} {:>8} {:>8} {:>10} {:>12} {:>10} {:>8}\n",
            "Recovery mode", "Pass", "Fail", "Degraded", "Quarantined", "Shutdown", "Crash"
        ));
        for (policy, t) in &self.rows {
            out.push_str(&format!(
                "{:<14} {:>7.1}% {:>7.1}% {:>9.1}% {:>11.1}% {:>9.1}% {:>7.1}%\n",
                policy.to_string(),
                t.pct(t.pass),
                t.pct(t.fail),
                t.pct(t.degraded),
                t.pct(t.quarantined),
                t.pct(t.shutdown),
                t.pct(t.crash)
            ));
        }
        out
    }
}

// ---------------------------------------------------------------------
// Table IV: microkernel baseline vs monolith
// ---------------------------------------------------------------------

/// One Table IV row.
#[derive(Clone, Debug)]
pub struct Table4Row {
    /// Benchmark name.
    pub bench: String,
    /// Monolith ("Linux") score.
    pub monolith: f64,
    /// OSIRIS baseline (no recovery instrumentation) score.
    pub osiris: f64,
    /// Slowdown factor (monolith / OSIRIS; > 1 means OSIRIS slower).
    pub slowdown: f64,
}

fn ub_registry() -> ProgramRegistry {
    let mut r = ProgramRegistry::new();
    register_unixbench(&mut r);
    r
}

fn osiris_engine(policy: PolicyKind, instr: Instrumentation) -> Os {
    Os::new(OsConfig {
        policy,
        instrumentation: instr,
        ..Default::default()
    })
}

fn bench_score<E: OsEngine>(engine: E, bench: &str, scale: f64) -> f64 {
    let iters = ((default_iters(bench) as f64 * scale) as u64).max(2);
    let r = run_benchmark_with(engine, ub_registry(), bench, iters, false);
    assert!(r.ok, "benchmark {} failed", bench);
    r.score
}

/// Runs Table IV: every Unixbench analog on the monolith and on the
/// uninstrumented OSIRIS baseline. `scale` multiplies iteration counts.
pub fn table4(scale: f64) -> Vec<Table4Row> {
    BENCHMARKS
        .iter()
        .map(|bench| {
            let monolith = bench_score(
                Monolith::with_cost(Default::default(), 64, 65_536),
                bench,
                scale,
            );
            let osiris = bench_score(
                osiris_engine(PolicyKind::Enhanced, Instrumentation::Off),
                bench,
                scale,
            );
            Table4Row {
                bench: bench.to_string(),
                monolith,
                osiris,
                slowdown: monolith / osiris,
            }
        })
        .collect()
}

/// Renders Table IV.
pub fn render_table4(rows: &[Table4Row]) -> String {
    let mut out = String::new();
    out.push_str("Table IV: baseline performance vs the monolith (scores, higher is better)\n");
    out.push_str(&format!(
        "{:<18} {:>12} {:>12} {:>10}\n",
        "Benchmark", "Monolith", "OSIRIS", "Slowdown"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<18} {:>12.1} {:>12.1} {:>9.2}x\n",
            r.bench, r.monolith, r.osiris, r.slowdown
        ));
    }
    let gm = geomean(&rows.iter().map(|r| r.slowdown).collect::<Vec<_>>());
    out.push_str(&format!(
        "{:<18} {:>12} {:>12} {:>9.2}x\n",
        "geomean", "", "", gm
    ));
    out
}

// ---------------------------------------------------------------------
// Table V: recovery-instrumentation slowdown
// ---------------------------------------------------------------------

/// One Table V row: slowdown ratios relative to the uninstrumented
/// baseline (lower is better).
#[derive(Clone, Debug)]
pub struct Table5Row {
    /// Benchmark name.
    pub bench: String,
    /// Full instrumentation, never gated (the paper's "Without opt.").
    pub without_opt: f64,
    /// Window-gated, pessimistic policy.
    pub pessimistic: f64,
    /// Window-gated, enhanced policy.
    pub enhanced: f64,
}

/// Runs Table V: each benchmark under baseline / always-on / pessimistic /
/// enhanced instrumentation.
pub fn table5(scale: f64) -> Vec<Table5Row> {
    BENCHMARKS
        .iter()
        .map(|bench| {
            let base = bench_score(
                osiris_engine(PolicyKind::Enhanced, Instrumentation::Off),
                bench,
                scale,
            );
            let noopt = bench_score(
                osiris_engine(PolicyKind::Enhanced, Instrumentation::Always),
                bench,
                scale,
            );
            let pess = bench_score(
                osiris_engine(PolicyKind::Pessimistic, Instrumentation::WindowGated),
                bench,
                scale,
            );
            let enh = bench_score(
                osiris_engine(PolicyKind::Enhanced, Instrumentation::WindowGated),
                bench,
                scale,
            );
            Table5Row {
                bench: bench.to_string(),
                without_opt: base / noopt,
                pessimistic: base / pess,
                enhanced: base / enh,
            }
        })
        .collect()
}

/// Renders Table V.
pub fn render_table5(rows: &[Table5Row]) -> String {
    let mut out = String::new();
    out.push_str(
        "Table V: slowdown of recovery instrumentation (ratio vs baseline, lower is better)\n",
    );
    out.push_str(&format!(
        "{:<18} {:>13} {:>13} {:>13}\n",
        "Benchmark", "Without opt.", "Pessimistic", "Enhanced"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<18} {:>13.3} {:>13.3} {:>13.3}\n",
            r.bench, r.without_opt, r.pessimistic, r.enhanced
        ));
    }
    let gm = |f: fn(&Table5Row) -> f64| geomean(&rows.iter().map(f).collect::<Vec<_>>());
    out.push_str(&format!(
        "{:<18} {:>13.3} {:>13.3} {:>13.3}\n",
        "geomean",
        gm(|r| r.without_opt),
        gm(|r| r.pessimistic),
        gm(|r| r.enhanced)
    ));
    out
}

// ---------------------------------------------------------------------
// Table VI: memory overhead
// ---------------------------------------------------------------------

/// One Table VI row, in kilobytes.
#[derive(Clone, Debug)]
pub struct Table6Row {
    /// Server name.
    pub server: String,
    /// Resident state after the workload.
    pub base_kb: f64,
    /// Deduplicated store bytes the spare clone image actually adds: each
    /// chunk of the content-addressed pool is charged once, to the first
    /// component referencing it. This is the honest "+clone" cost.
    pub clone_dedup_kb: f64,
    /// Spare clone image under the historical per-copy accounting (what a
    /// non-shared deep copy would cost), kept for comparison.
    pub clone_kb: f64,
    /// Peak undo-log size sampled at window close (equal to the append-time
    /// peak under window-gated instrumentation; excludes out-of-window log
    /// growth under `Always`, which matters for long runs).
    pub undo_kb: f64,
    /// Recovery-latency distribution (virtual cycles per recovery) from the
    /// faulted companion run.
    pub recovery_latency: osiris_trace::HistSummary,
}

impl Table6Row {
    /// Total recovery overhead (deduped clone + undo log).
    pub fn overhead_kb(&self) -> f64 {
        self.clone_dedup_kb + self.undo_kb
    }
}

/// Runs Table VI: the test suite under the enhanced policy at full VM
/// scale, reporting per-server memory. A second, faulted pass (periodic
/// fail-stop crashes in PM) populates the recovery-latency histograms the
/// fault-free memory pass cannot produce.
pub fn table6() -> Vec<Table6Row> {
    let (_, os) = run_suite_with(OsConfig::with_policy(PolicyKind::Enhanced), None);
    let (_, faulted) = {
        let mut cfg = OsConfig::with_policy(PolicyKind::Enhanced);
        cfg.vm_frames = 8192;
        // The periodic-crash companion run measures recovery latency, not
        // the escalation ladder: restart forever so every crash recovers.
        cfg.escalation = EscalationPolicy::unbounded();
        run_suite_with(cfg, Some(Box::new(PeriodicCrash::new("pm", 200_000))))
    };
    let latencies: Vec<(String, osiris_trace::HistSummary)> = faulted
        .reports()
        .into_iter()
        .map(|r| (r.name.to_string(), r.recovery_latency))
        .collect();
    os.reports()
        .into_iter()
        .filter(|r| SERVERS.contains(&r.name))
        .map(|r| Table6Row {
            server: r.name.to_string(),
            base_kb: r.heap_bytes as f64 / 1024.0,
            clone_dedup_kb: r.clone_dedup_bytes as f64 / 1024.0,
            clone_kb: r.clone_bytes as f64 / 1024.0,
            undo_kb: r.undo_window_peak_bytes as f64 / 1024.0,
            recovery_latency: latencies
                .iter()
                .find(|(n, _)| *n == r.name)
                .map(|(_, h)| *h)
                .unwrap_or_default(),
        })
        .collect()
}

/// Renders Table VI.
pub fn render_table6(rows: &[Table6Row]) -> String {
    let mut out = String::new();
    out.push_str("Table VI: per-component memory overhead (kB)\n");
    out.push_str(&format!(
        "{:<10} {:>10} {:>10} {:>12} {:>12} {:>14}\n",
        "Server", "Base", "+clone", "(per-copy)", "+undo log", "Total overhead"
    ));
    let mut totals = (0.0, 0.0, 0.0, 0.0, 0.0);
    for r in rows {
        out.push_str(&format!(
            "{:<10} {:>10.1} {:>10.1} {:>12.1} {:>12.1} {:>14.1}\n",
            r.server,
            r.base_kb,
            r.clone_dedup_kb,
            r.clone_kb,
            r.undo_kb,
            r.overhead_kb()
        ));
        totals.0 += r.base_kb;
        totals.1 += r.clone_dedup_kb;
        totals.2 += r.clone_kb;
        totals.3 += r.undo_kb;
        totals.4 += r.overhead_kb();
    }
    out.push_str(&format!(
        "{:<10} {:>10.1} {:>10.1} {:>12.1} {:>12.1} {:>14.1}\n",
        "total", totals.0, totals.1, totals.2, totals.3, totals.4
    ));
    out.push_str(
        "(+clone is the deduplicated content-addressed pool cost; per-copy is the\n \
         historical non-shared accounting kept for comparison)\n",
    );
    out.push_str("\nRecovery latency (virtual cycles, faulted companion run)\n");
    out.push_str(&format!(
        "{:<10} {:>7} {:>12} {:>12} {:>12} {:>12}\n",
        "Server", "n", "min", "p50", "p99", "max"
    ));
    for r in rows {
        let h = &r.recovery_latency;
        if h.count == 0 {
            out.push_str(&format!("{:<10} {:>7}\n", r.server, 0));
        } else {
            out.push_str(&format!(
                "{:<10} {:>7} {:>12} {:>12} {:>12} {:>12}\n",
                r.server, h.count, h.min, h.p50, h.p99, h.max
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------
// Figure 3: service disruption
// ---------------------------------------------------------------------

/// One point of Figure 3.
#[derive(Clone, Debug)]
pub struct Fig3Point {
    /// Benchmark name.
    pub bench: String,
    /// Injection interval in cycles (larger = fewer faults).
    pub interval: u64,
    /// Benchmark score under that fault load.
    pub score: f64,
    /// PM crashes injected during the run.
    pub crashes: u64,
    /// Whether the benchmark completed without functional degradation.
    pub ok: bool,
}

/// Runs Figure 3: each Unixbench analog under periodic fail-stop faults
/// injected into PM inside its recovery window, across the given intervals.
pub fn figure3(intervals: &[u64], scale: f64) -> Vec<Fig3Point> {
    let mut points = Vec::new();
    for bench in BENCHMARKS {
        for &interval in intervals {
            // Figure 3 measures throughput under sustained crash-recover
            // cycles: the escalation ladder must not bench PM mid-run.
            let mut os = Os::new(OsConfig {
                policy: PolicyKind::Enhanced,
                instrumentation: Instrumentation::WindowGated,
                escalation: EscalationPolicy::unbounded(),
                ..Default::default()
            });
            os.set_fault_hook(Box::new(PeriodicCrash::new("pm", interval)));
            let iters = ((default_iters(bench) as f64 * scale) as u64).max(2);
            let r = run_benchmark_with(os, ub_registry(), bench, iters, true);
            points.push(Fig3Point {
                bench: bench.to_string(),
                interval,
                score: r.score,
                crashes: 0, // filled below if the engine were retained
                ok: r.ok,
            });
        }
    }
    points
}

/// Renders Figure 3 as a score matrix (benchmarks × intervals).
pub fn render_figure3(points: &[Fig3Point], intervals: &[u64]) -> String {
    let mut out = String::new();
    out.push_str(
        "Figure 3: Unixbench score vs service-disruption interval (PM faults in-window)\n",
    );
    out.push_str(&format!("{:<18}", "Benchmark"));
    for i in intervals {
        out.push_str(&format!(" {:>10}", format!("{}k", i / 1000)));
    }
    out.push('\n');
    for bench in BENCHMARKS {
        out.push_str(&format!("{:<18}", bench));
        for &interval in intervals {
            let p = points
                .iter()
                .find(|p| p.bench == bench && p.interval == interval)
                .expect("point computed");
            let marker = if p.ok { ' ' } else { '!' };
            out.push_str(&format!(" {:>9.1}{}", p.score, marker));
        }
        out.push('\n');
    }
    out.push_str("('!' marks runs with functional degradation)\n");
    out
}
